//! Intents as text: operators write queries in the textual intent
//! language (parse → validate → compile → install), no Rust required.
//!
//! ```sh
//! cargo run --example text_intents
//! cargo run --example text_intents -- --report          # epoch table
//! cargo run --example text_intents -- --json run.jsonl  # telemetry journal
//! ```

use newton::net::Topology;
use newton::packet::flow::fmt_ipv4;
use newton::query::{parse_query, to_text, validate};
use newton::report::ReportOptions;
use newton::trace::attacks::InjectSpec;
use newton::trace::background::TraceConfig;
use newton::trace::{AttackKind, Trace};
use newton::{HostMapping, NewtonSystem};

/// The operator's intent file (e.g. loaded from disk or an API call).
const INTENTS: &[(&str, &str)] = &[
    (
        "web_conn_burst",
        "filter(proto == 6) | filter(tcp.flags == 2) | map(dip) \
         | reduce(dip, count) | where >= 40",
    ),
    (
        "port_scanners",
        "filter(proto == 6) | filter(tcp.flags == 2) | map(sip, dport) \
         | distinct(sip, dport) | map(sip) | reduce(sip, count) | where >= 30",
    ),
    ("jumbo_senders", "map(sip) | reduce(sip, max(len)) | where >= 1200"),
];

/// An intent with a bug, to show the validator at work.
const BROKEN: &str = "filter(proto == 999) | where >= 0";

fn main() {
    let mut sys = NewtonSystem::new(Topology::chain(3));
    sys.set_mapping(HostMapping::Fixed { ingress: 0, egress: 2 });
    let opts = ReportOptions::from_args();
    if opts.wants_recorder() {
        sys.enable_recorder();
    }

    let mut names = std::collections::HashMap::new();
    for (name, text) in INTENTS {
        let query = parse_query(name, text).expect("intent parses");
        let problems = validate(&query);
        assert!(problems.is_empty(), "{name}: {problems:?}");
        let receipt = sys.install(&query).expect("install");
        println!("installed `{name}` ({} rules, {:.1} ms):", receipt.rules, receipt.delay_ms);
        println!("    {}", to_text(&query).replace('\n', "\n    "));
        names.insert(receipt.id, name.to_string());
    }

    // The broken intent is rejected BEFORE it reaches any switch.
    let broken = parse_query("broken", BROKEN).expect("syntactically fine");
    let problems = validate(&broken);
    println!("\nrejected `broken` with {} problem(s):", problems.len());
    for p in &problems {
        println!("    {p}");
    }
    assert!(!problems.is_empty());

    // Traffic with a port scan and some jumbo frames.
    let mut trace = Trace::background(&TraceConfig {
        packets: 20_000,
        flows: 1_000,
        duration_ms: 300,
        ..Default::default()
    });
    trace.inject(
        AttackKind::PortScan,
        &InjectSpec { intensity: 120, window_ns: 250_000_000, ..Default::default() },
    );

    let report = sys.run_trace(&trace, 100);
    println!("\n{}", newton::report::render_summary(&report));
    println!("findings:");
    for i in report.incidents.incidents() {
        println!("  [{}] {}", names[&i.query], fmt_ipv4(i.key as u32));
    }
    newton::report::emit(&mut sys, &report, &opts);
    let scanner = *trace.guilty(AttackKind::PortScan).iter().next().unwrap();
    assert!(
        report.reported.values().any(|k| k.contains(&(scanner as u64))),
        "scanner must be found"
    );
    println!("\ntext intents end to end: parse → validate → compile → detect.");
}
