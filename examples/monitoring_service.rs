//! A monitoring service in five lines per intent: the [`NewtonSystem`]
//! facade drives the whole stack — network, controller, analyzer — while
//! the operator only writes queries and reads incidents. Also exports the
//! workload as a pcap for inspection with standard tools.
//!
//! ```sh
//! cargo run --example monitoring_service            # all cores
//! cargo run --example monitoring_service -- --threads 4
//! cargo run --example monitoring_service -- --threads 1   # sequential
//! cargo run --example monitoring_service -- --report            # epoch table
//! cargo run --example monitoring_service -- --json run.jsonl    # telemetry journal
//! ```
//!
//! `--threads N` sets the epoch executor's worker count; results are
//! bit-identical at every setting (see DESIGN.md, "Parallel execution
//! model"). `--report` renders the per-epoch time series; `--json PATH`
//! writes the deterministic telemetry journal (plus the executor profile)
//! as JSONL.
//!
//! [`NewtonSystem`]: newton::NewtonSystem

use newton::net::{Parallelism, Topology};
use newton::packet::flow::fmt_ipv4;
use newton::query::catalog;
use newton::report::ReportOptions;
use newton::trace::attacks::InjectSpec;
use newton::trace::background::TraceConfig;
use newton::trace::pcap;
use newton::trace::{AttackKind, Trace};
use newton::{HostMapping, NewtonSystem};

/// Parse `--threads N` from the command line; default is all cores.
fn parallelism_from_args() -> Parallelism {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--threads" {
            let n = args
                .next()
                .and_then(|v| v.parse::<usize>().ok())
                .expect("--threads expects a positive integer");
            return Parallelism::new(n);
        }
    }
    Parallelism::default()
}

fn main() {
    // One fabric, one system handle.
    let mut sys = NewtonSystem::new(Topology::fat_tree(4));
    sys.set_mapping(HostMapping::Fixed { ingress: 6, egress: 19 });
    let par = parallelism_from_args();
    sys.set_parallelism(par);
    println!("epoch executor: {} worker thread(s)", par.threads);
    let opts = ReportOptions::from_args();
    if opts.wants_recorder() {
        sys.enable_recorder();
    }

    // The operator's standing intents.
    let intents = [
        catalog::q1_new_tcp(),
        catalog::q4_port_scan(),
        catalog::q6_syn_flood(),
        catalog::q9_dns_no_tcp(),
    ];
    let mut names = std::collections::HashMap::new();
    for q in &intents {
        let receipt = sys.install(q).expect("install");
        println!(
            "installed {:<18} — {} rules on {} switches in {:.1} ms{}",
            q.name,
            receipt.rules,
            receipt.switches,
            receipt.delay_ms,
            if receipt.slices > 1 {
                format!(" ({} CQE slices)", receipt.slices)
            } else {
                String::new()
            },
        );
        names.insert(receipt.id, q.name.clone());
    }

    // Today's traffic: background plus three incidents.
    let mut trace = Trace::background(&TraceConfig {
        packets: 40_000,
        flows: 2_000,
        duration_ms: 400,
        ..Default::default()
    });
    for (kind, start) in [
        (AttackKind::PortScan, 0u64),
        (AttackKind::SynFlood, 100_000_000),
        (AttackKind::DnsNoTcp, 200_000_000),
    ] {
        trace.inject(
            kind,
            &InjectSpec {
                intensity: 200,
                start_ns: start,
                window_ns: 80_000_000,
                ..Default::default()
            },
        );
    }

    // Keep an auditable capture of what was monitored.
    let path = std::env::temp_dir().join("newton_monitoring_service.pcap");
    let file = std::fs::File::create(&path).expect("create pcap");
    pcap::write_pcap(std::io::BufWriter::new(file), trace.packets()).expect("write pcap");
    println!("\nworkload captured to {} ({} packets)", path.display(), trace.packets().len());

    // Run the day.
    let report = sys.run_trace(&trace, 100);
    println!("\n{}", newton::report::render_summary(&report));
    newton::report::emit(&mut sys, &report, &opts);

    println!("\nincidents (with epoch spans):");
    let incidents = report.incidents.incidents();
    for i in &incidents {
        println!(
            "  [{}] {} — epochs {}..{} ({} epoch(s) reported)",
            names[&i.query],
            fmt_ipv4(i.key as u32),
            i.first_epoch,
            i.last_epoch,
            i.epochs_reported
        );
    }
    assert!(incidents.len() >= 3, "all three injected incidents must surface");

    // Verify the injected identities were all caught.
    for kind in [AttackKind::PortScan, AttackKind::SynFlood, AttackKind::DnsNoTcp] {
        for guilty in trace.guilty(kind) {
            let caught = report.reported.values().any(|keys| keys.contains(&(guilty as u64)));
            assert!(caught, "{kind:?} culprit {} missed", fmt_ipv4(guilty));
        }
    }
    println!("\nall injected incidents detected; forwarding was never touched.");
}
