//! An operator session against a resident `newtond` daemon.
//!
//! Boots the daemon in-process on an ephemeral port (exactly what the
//! `newtond` binary does behind `--listen 127.0.0.1:0`), then speaks the
//! socket protocol like an operator console would: install intents,
//! inspect the slot inventory, break a switch and watch the repair on a
//! subscription stream, replay traffic, and read the report back.
//!
//! Run with: `cargo run --release --example newtond_client`

use newtond::json::Value;
use newtond::{Client, Daemon, DaemonConfig, ErrorKind};
use std::time::Duration;

fn main() {
    let topology = newton::net::Topology::fat_tree(4);
    let edge = topology.edge_switches()[0];
    let cfg = DaemonConfig {
        topology,
        register_slots: 4,
        workload: newton::trace::StreamConfig {
            segments: 4,
            segment: newton::trace::TraceConfig {
                packets: 20_000,
                duration_ms: 100,
                ..Default::default()
            },
            ..Default::default()
        },
        ..Default::default()
    };
    let daemon = Daemon::start(cfg, "127.0.0.1:0").expect("bind an ephemeral port");
    let addr = daemon.addr().to_string();
    println!("daemon up on {addr}\n");

    let timeout = Duration::from_secs(30);
    let mut ctl = Client::connect(&addr, timeout).expect("connect");

    // A second connection watches the telemetry journal live.
    let mut sub = Client::connect(&addr, timeout)
        .expect("subscriber connect")
        .subscribe()
        .expect("subscribe");

    println!("== install intents over the socket");
    for (name, intent) in [
        (
            "web_conn_burst",
            "filter(proto == 6) | filter(tcp.flags == 2) | map(dip) \
             | reduce(dip, count) | where >= 40",
        ),
        (
            "port_scanners",
            "filter(proto == 6) | filter(tcp.flags == 2) | map(sip, dport) \
             | distinct(sip, dport) | map(sip) | reduce(sip, count) | where >= 30",
        ),
        ("jumbo_senders", "map(sip) | reduce(sip, max(len)) | where >= 1200"),
        ("busy_dsts", "map(dip) | reduce(dip, count) | where >= 1000"),
    ] {
        let r = ctl.install(name, intent).expect("install");
        println!("  {r}");
    }

    println!("\n== the 5th intent finds every register slot taken");
    let err = ctl
        .install("one_too_many", "map(sip) | reduce(sip, count) | where >= 10")
        .expect_err("slots are full");
    assert!(err.is_kind(ErrorKind::SlotsExhausted));
    println!("  rejected: {err}");

    println!("\n== live inventory");
    println!("  {}", ctl.list().expect("list"));

    println!("\n== fail edge switch {edge}, restore it blank, repair");
    println!("  inject: {}", ctl.fail_switch(edge).expect("fail"));
    println!("  restore: {}", ctl.restore_switch(edge).expect("restore"));
    println!("  repair: {}", ctl.repair().expect("repair"));
    let repair_event = sub
        .wait_for(|e| e.get("type").and_then(Value::as_str) == Some("repair"))
        .expect("stream readable")
        .expect("stream open");
    println!("  streamed to subscriber: {repair_event}");

    println!("\n== replay the workload and read the report back");
    let run = ctl.run(None, Some(0xD05)).expect("run");
    println!("  run: {run}");
    let report = ctl.report().expect("report");
    assert_eq!(report.get("packets"), run.get("packets"));

    ctl.shutdown().expect("shutdown");
    daemon.join();
    println!("\ndaemon stopped cleanly");
}
