//! Replay a pcap capture through the Newton pipeline.
//!
//! ```sh
//! cargo run --example replay_pcap -- /path/to/capture.pcap
//! ```
//!
//! Without an argument, a synthetic capture is generated first, so the
//! example is self-contained. Any classic little-endian pcap whose frames
//! are Ethernet/IPv4/TCP-or-UDP works (convert pcapng with
//! `tcpdump -r in.pcapng -w out.pcap`).

use newton::compiler::{compile, CompilerConfig};
use newton::dataplane::{PipelineConfig, Switch};
use newton::packet::flow::fmt_ipv4;
use newton::packet::FieldVector;
use newton::query::catalog;
use newton::telemetry::render_table;
use newton::trace::attacks::InjectSpec;
use newton::trace::background::TraceConfig;
use newton::trace::{pcap, AttackKind, Trace};

fn main() {
    let path = match std::env::args().nth(1) {
        Some(p) => std::path::PathBuf::from(p),
        None => {
            // Self-contained mode: synthesize a capture with a SYN flood.
            let mut trace = Trace::background(&TraceConfig {
                packets: 20_000,
                flows: 1_000,
                duration_ms: 300,
                ..Default::default()
            });
            trace.inject(
                AttackKind::SynFlood,
                &InjectSpec { intensity: 200, window_ns: 250_000_000, ..Default::default() },
            );
            let path = std::env::temp_dir().join("newton_replay_demo.pcap");
            let f = std::fs::File::create(&path).expect("create pcap");
            pcap::write_pcap(std::io::BufWriter::new(f), trace.packets()).expect("write");
            println!("no capture given; synthesized {}", path.display());
            path
        }
    };

    let file = std::fs::File::open(&path).unwrap_or_else(|e| {
        eprintln!("cannot open {}: {e}", path.display());
        std::process::exit(1);
    });
    let packets = pcap::read_pcap(std::io::BufReader::new(file)).unwrap_or_else(|e| {
        eprintln!("cannot parse {}: {e}", path.display());
        std::process::exit(1);
    });
    println!("loaded {} packets from {}", packets.len(), path.display());

    // Monitor the capture with the whole catalog, each query on its own
    // register slice.
    let mut sw = Switch::new(PipelineConfig::default());
    let queries = catalog::all_queries();
    let slice = 4096 / queries.len() as u32;
    let mut plans = std::collections::HashMap::new();
    for (i, q) in queries.iter().enumerate() {
        let cfg = CompilerConfig {
            registers_per_array: slice,
            register_offset: i as u32 * slice,
            ..Default::default()
        };
        let compiled = compile(q, i as u32 + 1, &cfg);
        sw.install(&compiled.rules).expect("install");
        plans.insert(
            i as u32 + 1,
            (q.name.clone(), compiled.plan.branches[compiled.plan.driver as usize].report_field),
        );
    }

    // Replay in 100 ms epochs (pcap timestamps drive the windows).
    let trace = Trace::from_packets(packets);
    let mut incidents = std::collections::BTreeSet::new();
    for (e, epoch) in trace.epochs(100).enumerate() {
        for p in epoch {
            for r in sw.process(p, None).reports {
                let (name, field) = &plans[&r.query];
                incidents.insert((
                    e,
                    name.clone(),
                    fmt_ipv4(FieldVector(r.op_keys).get(*field) as u32),
                ));
            }
        }
        sw.clear_state();
    }

    if incidents.is_empty() {
        println!("no intents fired on this capture.");
    } else {
        let rows: Vec<Vec<String>> = incidents
            .iter()
            .map(|(e, name, key)| vec![e.to_string(), name.clone(), key.clone()])
            .collect();
        print!("{}", render_table("incidents", &["epoch", "intent", "key"], &rows));
    }
}
