//! Quickstart: express an intent, compile it to table rules, install it
//! into a running switch, and watch it fire on a synthetic trace.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use newton::analyzer::OverheadMeter;
use newton::compiler::{compile, CompilerConfig};
use newton::dataplane::{PipelineConfig, Switch};
use newton::packet::flow::fmt_ipv4;
use newton::packet::FieldVector;
use newton::query::catalog;
use newton::telemetry::{render_table, Event, Recorder};
use newton::trace::attacks::InjectSpec;
use newton::trace::background::TraceConfig;
use newton::trace::{AttackKind, Trace};

fn main() {
    // 1. The intent: "monitor hosts receiving many new TCP connections"
    //    (the paper's Q1), written with the Spark-flavoured builder API in
    //    `newton::query::catalog::q1_new_tcp`.
    let query = catalog::q1_new_tcp();
    println!("intent:\n{query}");

    // 2. Compile: primitives decompose into 𝕂/ℍ/𝕊/ℝ module rules
    //    (Algorithm 1 applies Opt.1–3).
    let compiled = compile(&query, 1, &CompilerConfig::default());
    println!(
        "compiled: {} module rules + {} newton_init entries, {} stages (naive would use {})",
        compiled.rules.module_rule_count(),
        compiled.rules.init.len(),
        compiled.composition.stages(),
        compiled.stats.naive_stages(),
    );

    // 3. Install into a live switch — a pure table-rule operation.
    let mut switch = Switch::new(PipelineConfig::default());
    switch.install(&compiled.rules).expect("rules fit the pipeline");

    // 4. A workload: CAIDA-like background with a burst of new connections
    //    against one server.
    let mut trace = Trace::background(&TraceConfig {
        packets: 40_000,
        flows: 2_000,
        duration_ms: 500,
        ..Default::default()
    });
    let injection = trace
        .inject(
            AttackKind::NewTcpBurst,
            &InjectSpec {
                intensity: 300,
                start_ns: 120_000_000,
                window_ns: 60_000_000,
                ..Default::default()
            },
        )
        .clone();
    let stats = trace.stats();
    println!(
        "trace: {} packets, {} flows; injected {} connection attempts against {}",
        stats.packets,
        stats.flows,
        injection.packets,
        fmt_ipv4(injection.guilty),
    );
    let victim = injection.guilty;

    // 5. Run the trace through the pipeline in 100 ms epochs, with a
    //    telemetry recorder observing the hot path (`process_sink` with
    //    the default `NoopSink` costs nothing; a `Recorder` journals every
    //    report).
    let mut meter = OverheadMeter::new();
    let mut recorder = Recorder::new();
    let report_field = compiled.plan.branches[0].report_field;
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (e, epoch) in trace.epochs(100).enumerate() {
        for pkt in epoch {
            meter.packet();
            for report in switch.process_sink(pkt, None, &mut recorder).reports {
                meter.message(32);
                let key = FieldVector(report.op_keys).get(report_field);
                rows.push(vec![
                    e.to_string(),
                    fmt_ipv4(key as u32),
                    report.state_result.to_string(),
                ]);
                assert_eq!(key as u32, victim, "the reported victim is the injected one");
            }
        }
        switch.clear_state();
    }
    print!("{}", render_table("detections", &["epoch", "victim", "new connections"], &rows));

    let journaled = recorder
        .journal
        .events()
        .iter()
        .filter(|e| matches!(e, Event::SwitchReport { .. }))
        .count();
    println!(
        "monitoring overhead: {} messages / {} packets = {:.6} (per-packet exporters sit \
         near 1.0); telemetry journaled {journaled} report event(s)",
        meter.messages(),
        meter.raw_packets(),
        meter.ratio()
    );
    assert_eq!(journaled as u64, meter.messages(), "the sink saw every report");
}
