//! Dynamic query reconfiguration: detect a UDP DDoS, then — *while the
//! switch keeps forwarding* — install a drill-down query scoped to the
//! victim to identify the attack's source prefixes.
//!
//! This is the capability that separates Newton from Sonata/Marple (§1):
//! there, changing the query set recompiles the P4 program and reboots the
//! switch (~7.5 s outage, Fig. 10); here it is a ~10 ms table-rule update
//! with zero forwarding interruption.
//!
//! ```sh
//! cargo run --example ddos_drilldown
//! ```

use newton::baselines::RebootModel;
use newton::compiler::CompilerConfig;
use newton::controller::Controller;
use newton::dataplane::PipelineConfig;
use newton::net::{Network, Topology};
use newton::packet::flow::fmt_ipv4;
use newton::packet::{Field, FieldVector};
use newton::query::ast::{CmpOp, FieldExpr, ReduceFunc};
use newton::query::{catalog, QueryBuilder};
use newton::telemetry::render_table;
use newton::trace::attacks::InjectSpec;
use newton::trace::background::TraceConfig;
use newton::trace::{AttackKind, Trace};

fn main() {
    let mut net = Network::new(Topology::chain(2), PipelineConfig::default());
    let mut controller = Controller::new(CompilerConfig::default(), 7);

    // Phase 1: the standing intent — Q5, "monitor hosts under UDP DDoS".
    let q5 = catalog::q5_udp_ddos();
    let receipt = controller.install(&q5, &mut net, 12).expect("install q5");
    println!(
        "[t=0ms] installed {} ({} rules) in {:.1} ms — forwarding untouched",
        q5.name, receipt.rules, receipt.delay_ms
    );

    // Traffic: background + a UDP flood.
    let mut trace = Trace::background(&TraceConfig {
        packets: 30_000,
        flows: 1_500,
        duration_ms: 300,
        ..Default::default()
    });
    let injection = trace
        .inject(
            AttackKind::UdpDdos,
            &InjectSpec {
                intensity: 3_000,
                start_ns: 0,
                window_ns: 250_000_000,
                ..Default::default()
            },
        )
        .clone();

    // Run the first epoch; the installed Q5 flags the victim.
    let mut victim = None;
    let forwarded_before = net.switch(0).forwarded();
    for epoch in trace.epochs(100) {
        for pkt in epoch {
            for (_, report) in net.deliver(pkt, 0, 1).reports {
                if report.query == receipt.id {
                    victim = Some(FieldVector(report.op_keys).get(Field::DstIp) as u32);
                }
            }
        }
        net.clear_state();
        if victim.is_some() {
            break;
        }
    }
    let victim = victim.expect("flood detected");
    assert_eq!(victim, injection.guilty);
    println!("[t=100ms] Q5 fired: {} is under UDP DDoS", fmt_ipv4(victim));

    // Phase 2: drill down. A NEW query, created at runtime, scoped to the
    // victim: which /16 source prefixes drive the flood?
    let drilldown = QueryBuilder::new("drilldown_sources")
        .filter_eq(Field::Proto, 17)
        .filter_eq(Field::DstIp, victim as u64)
        .map_exprs(vec![FieldExpr::prefix(Field::SrcIp, 16)])
        .reduce_exprs(vec![FieldExpr::prefix(Field::SrcIp, 16)], ReduceFunc::Count)
        .result_filter(CmpOp::Ge, 20)
        .build();
    let receipt2 = controller.install(&drilldown, &mut net, 12).expect("install drill-down");
    println!(
        "[t=100ms] installed drill-down ({} rules) in {:.1} ms — Newton outage: 0 ms; \
         Sonata would have stalled forwarding for {:.1} s",
        receipt2.rules,
        receipt2.delay_ms,
        RebootModel::default().outage_ms(2_000, 8_000) / 1_000.0
    );

    // Phase 3: the drill-down answers within the next epochs.
    let mut prefixes = std::collections::BTreeSet::new();
    for epoch in trace.epochs(100) {
        for pkt in epoch {
            for (_, report) in net.deliver(pkt, 0, 1).reports {
                if report.query == receipt2.id {
                    let sip = FieldVector(report.op_keys).get(Field::SrcIp) as u32;
                    prefixes.insert(sip >> 16);
                }
            }
        }
        net.clear_state();
    }
    let rows: Vec<Vec<String>> =
        prefixes.iter().map(|p| vec![format!("{}/16", fmt_ipv4(p << 16))]).collect();
    print!("{}", render_table("[t=300ms] attack sources", &["prefix"], &rows));
    assert!(!prefixes.is_empty(), "drill-down must find source prefixes");

    // Phase 4: the incident is handled; remove the drill-down at runtime.
    let removal = controller.remove(receipt2.id, &mut net).expect("remove");
    println!("[t=300ms] removed drill-down in {:.1} ms", removal.delay_ms);

    let forwarded_after = net.switch(0).forwarded();
    println!(
        "forwarding counter moved {} → {} across install/remove: no interruption",
        forwarded_before, forwarded_after
    );
}
