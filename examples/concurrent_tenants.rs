//! Concurrent queries as a service: many tenants, one pipeline.
//!
//! Cloud providers "offer network monitoring as services for tenants"
//! (§3.1). With Newton, every tenant's query is just *rules* in the same
//! shared module instances: `newton_init` dispatches each tenant's traffic
//! slice to its own query, and module/stage usage stays flat while only
//! rule counts grow (the P-Newton curve of Fig. 16).
//!
//! ```sh
//! cargo run --example concurrent_tenants
//! ```

use newton::compiler::{compile, concurrent, sonata_estimate, CompilerConfig};
use newton::dataplane::{PipelineConfig, Switch};
use newton::packet::{Field, FieldVector, PacketBuilder, TcpFlags};
use newton::query::ast::{CmpOp, ReduceFunc};
use newton::query::{catalog, QueryBuilder};
use newton::telemetry::render_table;

fn main() {
    let cfg = CompilerConfig::default();
    let mut switch = Switch::new(PipelineConfig::default());

    // Each tenant owns a /24 under 172.16.T.0 and wants port scans against
    // its prefix detected. The query template is Q4 scoped per tenant.
    let tenants = 12u32;
    let mut total_rules = 0;
    for t in 0..tenants {
        let prefix = 0xAC10_0000 | (t << 8);
        let q = QueryBuilder::new(format!("tenant{t}_port_scan"))
            .filter_eq(Field::Proto, 6)
            .filter_eq(Field::TcpFlags, 2)
            .filter(
                newton::query::ast::FieldExpr::prefix(Field::DstIp, 24),
                CmpOp::Eq,
                (prefix >> 8) as u64,
            )
            .map(&[Field::SrcIp, Field::DstPort])
            .distinct(&[Field::SrcIp, Field::DstPort])
            .map(&[Field::SrcIp])
            .reduce(&[Field::SrcIp], ReduceFunc::Count)
            .result_filter(CmpOp::Ge, 25)
            .build();
        let compiled = compile(&q, t + 1, &cfg);
        switch.install(&compiled.rules).expect("shared modules have rule capacity");
        total_rules += compiled.rules.total_rule_count();
    }
    println!(
        "installed {tenants} tenant queries into ONE pipeline: {} rules total, {} rules live",
        total_rules,
        switch.total_rule_count()
    );

    // Scan tenant 5's prefix: only tenant 5's query fires.
    let victim_prefix = 0xAC10_0000 | (5 << 8);
    let mut fired = Vec::new();
    for port in 0..40u16 {
        let pkt = PacketBuilder::new()
            .src_ip(0x0A00_0001)
            .dst_ip(victim_prefix | 0x42)
            .src_port(40_000)
            .dst_port(1_000 + port)
            .tcp_flags(TcpFlags::SYN)
            .build();
        for r in switch.process(&pkt, None).reports {
            fired.push((r.query, FieldVector(r.op_keys).get(Field::SrcIp)));
        }
    }
    println!("scan against tenant 5: reports {fired:?}");
    // The threshold-crossing window is POLLUTION_SLACK + 1 steps wide, so a
    // scanner that keeps going reports once per packet inside it; the
    // analyzer deduplicates. What matters: only tenant 5's query fired.
    let window = 1 + newton::compiler::POLLUTION_SLACK as usize;
    assert!((1..=window).contains(&fired.len()), "got {} reports", fired.len());
    assert!(fired.iter().all(|&(q, _)| q == 6), "query id 6 = tenant 5");

    // The Fig. 16 comparison at N = 1, 10, 100 concurrent clones of Q4.
    let q4 = catalog::q4_port_scan();
    let rows: Vec<Vec<String>> = [1usize, 10, 50, 100]
        .iter()
        .map(|&n| {
            let so = concurrent::sonata_chained(&q4, n);
            let s = concurrent::s_newton(&q4, n, &cfg);
            let p = concurrent::p_newton(&q4, n, &cfg);
            vec![
                n.to_string(),
                format!("{}/{}", so.modules, so.stages),
                format!("{}/{}", s.modules, s.stages),
                format!("{}/{}", p.modules, p.stages),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "Fig.16-style scaling (clones of Q4, modules/stages)",
            &["N", "Sonata", "S-Newton", "P-Newton"],
            &rows,
        )
    );
    let sonata_100 = sonata_estimate(&q4).stages * 100;
    println!(
        "\nat N=100: Sonata needs {sonata_100} stages (≈{} switches); P-Newton still fits one pipeline",
        sonata_100.div_ceil(12)
    );
}
