//! Bounded-memory streamed replay: monitor a trace that is generated
//! *while it replays*, never materialized.
//!
//! ```sh
//! cargo run --release --example streaming_soak                  # 10⁶ packets
//! cargo run --release --example streaming_soak -- --packets 20000000
//! cargo run --release --example streaming_soak -- --producers 2 --queue-depth 8
//! ```
//!
//! A [`StreamConfig`] describes the workload as fixed-shape segments —
//! segment `i` is a pure function of `(seed, i)` — so a producer pool can
//! generate them on the fly through bounded queues while the epoch
//! executor consumes them in order. Peak memory is the pool shape
//! (`producers × (queue_depth + 2)` segment buffers, recycled), not the
//! trace length; epoch reports are checkpointed to a rolling window. The
//! full-scale version of this, with RSS and throughput gates, is
//! `cargo bench -p newton-bench --bench soak`.

use newton::net::Topology;
use newton::query::catalog;
use newton::trace::stream::{PulseSpec, ReplayOptions, StreamConfig};
use newton::trace::{AttackKind, TraceConfig};
use newton::NewtonSystem;
use std::time::Instant;

fn arg(name: &str) -> Option<u64> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == name {
            return Some(args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                panic!("{name} expects a positive integer");
            }));
        }
    }
    None
}

fn main() {
    const SEGMENT_PACKETS: usize = 50_000;
    const EPOCH_MS: u64 = 100;
    let total = arg("--packets").unwrap_or(1_000_000);
    let opts = ReplayOptions {
        producers: arg("--producers").unwrap_or(1) as usize,
        queue_depth: arg("--queue-depth").unwrap_or(4) as usize,
    };

    // The workload: an endless-shape stream of background traffic with a
    // port scan pulsing every third 100 ms segment.
    let cfg = StreamConfig {
        seed: 7,
        segments: (total / SEGMENT_PACKETS as u64).max(1),
        segment: TraceConfig {
            packets: SEGMENT_PACKETS,
            flows: 2_000,
            duration_ms: EPOCH_MS,
            ..TraceConfig::default()
        },
        pulses: vec![PulseSpec { kind: AttackKind::PortScan, intensity: 300, period: 3, phase: 0 }],
    };

    let mut sys = NewtonSystem::new(Topology::fat_tree(4));
    let receipt = sys.install(&catalog::q4_port_scan()).expect("install");
    println!(
        "installed q4_port_scan — {} rules on {} switches; streaming {} packets \
         through {} producer(s) × depth-{} queues",
        receipt.rules,
        receipt.switches,
        cfg.segments * SEGMENT_PACKETS as u64,
        opts.producers,
        opts.queue_depth,
    );

    // Keep only the newest 64 closed epochs: the report stays a window,
    // however long the stream runs.
    sys.set_epoch_retention(Some(64));

    let start = Instant::now();
    let report = sys.run_stream(&cfg, EPOCH_MS, &opts);
    let secs = start.elapsed().as_secs_f64();
    println!(
        "\nreplayed {} packets in {:.1}s ({:.2} Mpkt/s): {} epochs closed, {} held in the report",
        report.packets,
        secs,
        report.packets as f64 / secs / 1e6,
        report.epoch_count,
        report.epochs.len(),
    );

    let scanner = cfg.guilty(AttackKind::PortScan).expect("scan pulse") as u64;
    let caught = report.reported.values().any(|keys| keys.contains(&scanner));
    assert!(caught, "the pulsed port scanner must be reported");
    println!("pulsed port scanner detected; nothing was ever materialized.");
}
