//! Network-wide monitoring with resilient placement and cross-switch query
//! execution, surviving a link failure (Fig. 9's scenario).
//!
//! A port-scan query (Q4) is placed on a 4-ary fat-tree with only 5 module
//! stages per switch — too few for the whole query, so it slices across
//! consecutive hops (CQE). Algorithm 2 pre-places every slice along every
//! possible path, so when a link fails and ECMP reroutes the scanner's
//! flows, monitoring keeps working with **no controller intervention**.
//!
//! A *switch* failure is the harder case: the crashed switch reboots
//! blank, so its slice of the query is simply gone. The fat-tree's
//! multiplexed placement still detects (another ordered slice chain on
//! the path covers the hole), but the redundancy margin is spent — and
//! `Controller::repair` is what restores it, re-placing the orphaned
//! slice on the rebooted switch. Pick the victim with `--fail-switch N`
//! (default: the first aggregation hop on the scanner's path):
//!
//! ```sh
//! cargo run --example network_wide
//! cargo run --example network_wide -- --fail-switch 17
//! ```
//!
//! When a crashed switch is the *sole* holder of a slice (a single
//! monitored edge), detection genuinely dies with it and only repair
//! brings it back — `tests/failure_timeline.rs` scripts that timeline
//! end to end.

use newton::compiler::CompilerConfig;
use newton::controller::Controller;
use newton::dataplane::PipelineConfig;
use newton::net::{Network, Topology};
use newton::packet::flow::fmt_ipv4;
use newton::packet::{PacketBuilder, TcpFlags};
use newton::query::catalog;
use newton::telemetry::render_table;

fn main() {
    let topo = Topology::fat_tree(4);
    let (ingress, egress) = (topo.edge_switches()[0], topo.edge_switches()[7]);
    println!(
        "topology: {} ({} switches, {} links); monitoring enters at edge {ingress}, exits at edge {egress}",
        topo.name(),
        topo.len(),
        topo.link_count()
    );

    let mut net = Network::new(topo, PipelineConfig::default());
    // Pin each host pair to one path (pair-hash ECMP) so sliced query
    // state stays on the flows' common path.
    net.router_mut().set_ecmp_mode(newton::net::EcmpMode::PairHash);
    let mut controller = Controller::new(CompilerConfig::default(), 11);

    // Deploy Q4 with a 5-stage-per-switch budget → CQE slices.
    let q4 = catalog::q4_port_scan();
    let receipt = controller.install(&q4, &mut net, 5).expect("placement");
    println!(
        "placed {}: {} slices, {} rules over {} switches, install {:.1} ms",
        q4.name, receipt.slices, receipt.rules, receipt.switches, receipt.delay_ms
    );

    let scanner = 0x0A00_DEAD;
    let mut timeline: Vec<Vec<String>> = Vec::new();
    let mut row = |epoch: usize, state: &str, detected: usize| {
        timeline.push(vec![epoch.to_string(), state.to_string(), detected.to_string()]);
    };
    let run_scan = |net: &mut Network, port_base: u16| -> usize {
        let mut reports = 0;
        for port in 0..catalog::thresholds::PORT_SCAN as u16 {
            let pkt = PacketBuilder::new()
                .src_ip(scanner)
                .dst_ip(0xAC10_0001)
                .src_port(40_000)
                .dst_port(port_base + port)
                .tcp_flags(TcpFlags::SYN)
                .build();
            reports += net.deliver(&pkt, ingress, egress).reports.len();
        }
        reports
    };

    // Epoch 1: the scan is detected on the healthy network.
    let detected = run_scan(&mut net, 1_000);
    row(1, "healthy", detected);
    assert_eq!(detected, 1);
    net.clear_state();

    // A core link on the scan's current path fails; ECMP reroutes.
    let probe = PacketBuilder::new()
        .src_ip(scanner)
        .dst_ip(0xAC10_0001)
        .src_port(40_000)
        .dst_port(1)
        .tcp_flags(TcpFlags::SYN)
        .build();
    let old_path = net.deliver(&probe, ingress, egress).path;
    net.clear_state();
    net.router_mut().fail_link(old_path[1], old_path[2]);
    let new_path = net
        .router()
        .path(ingress, egress, &probe.flow_key())
        .expect("fat-tree survives one failure");
    println!("link ({},{}) failed: path {:?} → {:?}", old_path[1], old_path[2], old_path, new_path);
    assert_ne!(old_path, new_path);

    // Epoch 2: same scan, rerouted — the pre-placed slices on the new path
    // still execute the query end to end.
    let detected = run_scan(&mut net, 1_000);
    row(2, "rerouted", detected);
    assert_eq!(detected, 1, "resilient placement keeps monitoring correct after rerouting");

    println!("resilient placement held: no rule changes were needed after the failure");
    net.clear_state();
    net.router_mut().restore_link(old_path[1], old_path[2]);

    // Act 2: a switch crashes and reboots *blank* — its slice of the
    // query (and all register state) is gone for good. The multiplexed
    // placement detects through the hole, but the redundancy Algorithm 2
    // paid for is spent until `Controller::repair` re-places the slice.
    let victim = std::env::args()
        .skip_while(|a| a != "--fail-switch")
        .nth(1)
        .map(|n| n.parse().expect("--fail-switch takes a switch id"))
        .unwrap_or(old_path[1]);
    let default_victim = victim == old_path[1];
    let rules_before = net.switch(victim).total_rule_count();

    net.fail_switch(victim);
    println!("\nswitch {victim} crashed ({rules_before} rules and all register state wiped)");
    let detected = run_scan(&mut net, 2_000);
    row(3, "crashed", detected);
    if default_victim {
        assert_eq!(detected, 1, "pre-placed slices on the detour keep monitoring live");
    }
    net.clear_state();

    net.restore_switch(victim);
    let detected = run_scan(&mut net, 3_000);
    row(4, "rebooted blank", detected);
    if default_victim {
        assert_eq!(detected, 1, "another slice chain on the path covers the hole — for now");
        assert_eq!(net.switch(victim).total_rule_count(), 0, "the reboot lost the slice");
    }
    net.clear_state();

    let outcome = controller.repair(&mut net);
    println!(
        "repair: {}/{} queries re-placed, {} rules over {} switch(es), {:.1} ms of rule pushes",
        outcome.repaired.len(),
        outcome.examined,
        outcome.rules_installed,
        outcome.switches_touched,
        outcome.delay_ms
    );
    let detected = run_scan(&mut net, 4_000);
    row(5, "repaired", detected);
    print!(
        "{}",
        render_table(
            &format!("failure timeline — scanner {}", fmt_ipv4(scanner)),
            &["epoch", "network state", "reports"],
            &timeline,
        )
    );
    if default_victim {
        assert!(outcome.rules_installed > 0, "repair found the blank switch");
        assert_eq!(
            net.switch(victim).total_rule_count(),
            rules_before,
            "the orphaned slice is back where Algorithm 2 wanted it"
        );
        assert_eq!(detected, 1, "detection at pre-failure accuracy, redundancy margin restored");
    }
}
