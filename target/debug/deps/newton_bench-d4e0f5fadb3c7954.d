/root/repo/target/debug/deps/newton_bench-d4e0f5fadb3c7954.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/newton_bench-d4e0f5fadb3c7954: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
