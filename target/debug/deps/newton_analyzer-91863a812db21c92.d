/root/repo/target/debug/deps/newton_analyzer-91863a812db21c92.d: crates/analyzer/src/lib.rs crates/analyzer/src/accuracy.rs crates/analyzer/src/analyzer.rs crates/analyzer/src/incidents.rs crates/analyzer/src/overhead.rs

/root/repo/target/debug/deps/libnewton_analyzer-91863a812db21c92.rlib: crates/analyzer/src/lib.rs crates/analyzer/src/accuracy.rs crates/analyzer/src/analyzer.rs crates/analyzer/src/incidents.rs crates/analyzer/src/overhead.rs

/root/repo/target/debug/deps/libnewton_analyzer-91863a812db21c92.rmeta: crates/analyzer/src/lib.rs crates/analyzer/src/accuracy.rs crates/analyzer/src/analyzer.rs crates/analyzer/src/incidents.rs crates/analyzer/src/overhead.rs

crates/analyzer/src/lib.rs:
crates/analyzer/src/accuracy.rs:
crates/analyzer/src/analyzer.rs:
crates/analyzer/src/incidents.rs:
crates/analyzer/src/overhead.rs:
