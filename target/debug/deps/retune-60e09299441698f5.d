/root/repo/target/debug/deps/retune-60e09299441698f5.d: tests/retune.rs

/root/repo/target/debug/deps/retune-60e09299441698f5: tests/retune.rs

tests/retune.rs:
