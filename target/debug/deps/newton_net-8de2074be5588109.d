/root/repo/target/debug/deps/newton_net-8de2074be5588109.d: crates/net/src/lib.rs crates/net/src/events.rs crates/net/src/routing.rs crates/net/src/sim.rs crates/net/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/libnewton_net-8de2074be5588109.rmeta: crates/net/src/lib.rs crates/net/src/events.rs crates/net/src/routing.rs crates/net/src/sim.rs crates/net/src/topology.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/events.rs:
crates/net/src/routing.rs:
crates/net/src/sim.rs:
crates/net/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
