/root/repo/target/debug/deps/fig12-ffe27dd44912e840.d: crates/bench/benches/fig12.rs Cargo.toml

/root/repo/target/debug/deps/libfig12-ffe27dd44912e840.rmeta: crates/bench/benches/fig12.rs Cargo.toml

crates/bench/benches/fig12.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
