/root/repo/target/debug/deps/differential_device-943ff31c8311d7e5.d: tests/differential_device.rs

/root/repo/target/debug/deps/differential_device-943ff31c8311d7e5: tests/differential_device.rs

tests/differential_device.rs:
