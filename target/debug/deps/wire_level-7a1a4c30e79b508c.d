/root/repo/target/debug/deps/wire_level-7a1a4c30e79b508c.d: tests/wire_level.rs

/root/repo/target/debug/deps/wire_level-7a1a4c30e79b508c: tests/wire_level.rs

tests/wire_level.rs:
