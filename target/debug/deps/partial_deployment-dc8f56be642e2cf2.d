/root/repo/target/debug/deps/partial_deployment-dc8f56be642e2cf2.d: tests/partial_deployment.rs

/root/repo/target/debug/deps/partial_deployment-dc8f56be642e2cf2: tests/partial_deployment.rs

tests/partial_deployment.rs:
