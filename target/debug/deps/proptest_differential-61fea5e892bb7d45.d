/root/repo/target/debug/deps/proptest_differential-61fea5e892bb7d45.d: tests/proptest_differential.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_differential-61fea5e892bb7d45.rmeta: tests/proptest_differential.rs Cargo.toml

tests/proptest_differential.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
