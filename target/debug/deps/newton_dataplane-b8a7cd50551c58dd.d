/root/repo/target/debug/deps/newton_dataplane-b8a7cd50551c58dd.d: crates/dataplane/src/lib.rs crates/dataplane/src/debug.rs crates/dataplane/src/exec.rs crates/dataplane/src/init.rs crates/dataplane/src/layout.rs crates/dataplane/src/mirror.rs crates/dataplane/src/modules.rs crates/dataplane/src/phv.rs crates/dataplane/src/resources.rs crates/dataplane/src/rules.rs crates/dataplane/src/switch.rs Cargo.toml

/root/repo/target/debug/deps/libnewton_dataplane-b8a7cd50551c58dd.rmeta: crates/dataplane/src/lib.rs crates/dataplane/src/debug.rs crates/dataplane/src/exec.rs crates/dataplane/src/init.rs crates/dataplane/src/layout.rs crates/dataplane/src/mirror.rs crates/dataplane/src/modules.rs crates/dataplane/src/phv.rs crates/dataplane/src/resources.rs crates/dataplane/src/rules.rs crates/dataplane/src/switch.rs Cargo.toml

crates/dataplane/src/lib.rs:
crates/dataplane/src/debug.rs:
crates/dataplane/src/exec.rs:
crates/dataplane/src/init.rs:
crates/dataplane/src/layout.rs:
crates/dataplane/src/mirror.rs:
crates/dataplane/src/modules.rs:
crates/dataplane/src/phv.rs:
crates/dataplane/src/resources.rs:
crates/dataplane/src/rules.rs:
crates/dataplane/src/switch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
