/root/repo/target/debug/deps/newton_analyzer-1294becd24dd0e4f.d: crates/analyzer/src/lib.rs crates/analyzer/src/accuracy.rs crates/analyzer/src/analyzer.rs crates/analyzer/src/incidents.rs crates/analyzer/src/overhead.rs Cargo.toml

/root/repo/target/debug/deps/libnewton_analyzer-1294becd24dd0e4f.rmeta: crates/analyzer/src/lib.rs crates/analyzer/src/accuracy.rs crates/analyzer/src/analyzer.rs crates/analyzer/src/incidents.rs crates/analyzer/src/overhead.rs Cargo.toml

crates/analyzer/src/lib.rs:
crates/analyzer/src/accuracy.rs:
crates/analyzer/src/analyzer.rs:
crates/analyzer/src/incidents.rs:
crates/analyzer/src/overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
