/root/repo/target/debug/deps/fig15-858d134751315481.d: crates/bench/benches/fig15.rs Cargo.toml

/root/repo/target/debug/deps/libfig15-858d134751315481.rmeta: crates/bench/benches/fig15.rs Cargo.toml

crates/bench/benches/fig15.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
