/root/repo/target/debug/deps/network_cqe-3c593f32b2025618.d: tests/network_cqe.rs Cargo.toml

/root/repo/target/debug/deps/libnetwork_cqe-3c593f32b2025618.rmeta: tests/network_cqe.rs Cargo.toml

tests/network_cqe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
