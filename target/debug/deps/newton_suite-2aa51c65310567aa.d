/root/repo/target/debug/deps/newton_suite-2aa51c65310567aa.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnewton_suite-2aa51c65310567aa.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
