/root/repo/target/debug/deps/newton-d85823c2367d00a5.d: crates/core/src/lib.rs crates/core/src/system.rs

/root/repo/target/debug/deps/newton-d85823c2367d00a5: crates/core/src/lib.rs crates/core/src/system.rs

crates/core/src/lib.rs:
crates/core/src/system.rs:
