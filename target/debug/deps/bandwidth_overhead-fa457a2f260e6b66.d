/root/repo/target/debug/deps/bandwidth_overhead-fa457a2f260e6b66.d: tests/bandwidth_overhead.rs

/root/repo/target/debug/deps/bandwidth_overhead-fa457a2f260e6b66: tests/bandwidth_overhead.rs

tests/bandwidth_overhead.rs:
