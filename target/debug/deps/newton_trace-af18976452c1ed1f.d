/root/repo/target/debug/deps/newton_trace-af18976452c1ed1f.d: crates/trace/src/lib.rs crates/trace/src/attacks.rs crates/trace/src/background.rs crates/trace/src/pcap.rs crates/trace/src/presets.rs crates/trace/src/stats.rs crates/trace/src/trace.rs crates/trace/src/zipf.rs

/root/repo/target/debug/deps/libnewton_trace-af18976452c1ed1f.rlib: crates/trace/src/lib.rs crates/trace/src/attacks.rs crates/trace/src/background.rs crates/trace/src/pcap.rs crates/trace/src/presets.rs crates/trace/src/stats.rs crates/trace/src/trace.rs crates/trace/src/zipf.rs

/root/repo/target/debug/deps/libnewton_trace-af18976452c1ed1f.rmeta: crates/trace/src/lib.rs crates/trace/src/attacks.rs crates/trace/src/background.rs crates/trace/src/pcap.rs crates/trace/src/presets.rs crates/trace/src/stats.rs crates/trace/src/trace.rs crates/trace/src/zipf.rs

crates/trace/src/lib.rs:
crates/trace/src/attacks.rs:
crates/trace/src/background.rs:
crates/trace/src/pcap.rs:
crates/trace/src/presets.rs:
crates/trace/src/stats.rs:
crates/trace/src/trace.rs:
crates/trace/src/zipf.rs:
