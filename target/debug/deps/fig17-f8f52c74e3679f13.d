/root/repo/target/debug/deps/fig17-f8f52c74e3679f13.d: crates/bench/benches/fig17.rs Cargo.toml

/root/repo/target/debug/deps/libfig17-f8f52c74e3679f13.rmeta: crates/bench/benches/fig17.rs Cargo.toml

crates/bench/benches/fig17.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
