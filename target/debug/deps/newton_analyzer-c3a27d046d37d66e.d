/root/repo/target/debug/deps/newton_analyzer-c3a27d046d37d66e.d: crates/analyzer/src/lib.rs crates/analyzer/src/accuracy.rs crates/analyzer/src/analyzer.rs crates/analyzer/src/incidents.rs crates/analyzer/src/overhead.rs Cargo.toml

/root/repo/target/debug/deps/libnewton_analyzer-c3a27d046d37d66e.rmeta: crates/analyzer/src/lib.rs crates/analyzer/src/accuracy.rs crates/analyzer/src/analyzer.rs crates/analyzer/src/incidents.rs crates/analyzer/src/overhead.rs Cargo.toml

crates/analyzer/src/lib.rs:
crates/analyzer/src/accuracy.rs:
crates/analyzer/src/analyzer.rs:
crates/analyzer/src/incidents.rs:
crates/analyzer/src/overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
