/root/repo/target/debug/deps/newton-e6fe3f207eb8cc77.d: crates/core/src/lib.rs crates/core/src/system.rs Cargo.toml

/root/repo/target/debug/deps/libnewton-e6fe3f207eb8cc77.rmeta: crates/core/src/lib.rs crates/core/src/system.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/system.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
