/root/repo/target/debug/deps/newton_sketch-2115eeacc5da2a35.d: crates/sketch/src/lib.rs crates/sketch/src/bloom.rs crates/sketch/src/cms.rs crates/sketch/src/exact.rs crates/sketch/src/hash.rs

/root/repo/target/debug/deps/newton_sketch-2115eeacc5da2a35: crates/sketch/src/lib.rs crates/sketch/src/bloom.rs crates/sketch/src/cms.rs crates/sketch/src/exact.rs crates/sketch/src/hash.rs

crates/sketch/src/lib.rs:
crates/sketch/src/bloom.rs:
crates/sketch/src/cms.rs:
crates/sketch/src/exact.rs:
crates/sketch/src/hash.rs:
