/root/repo/target/debug/deps/fig10-98a1dd407e762643.d: crates/bench/benches/fig10.rs Cargo.toml

/root/repo/target/debug/deps/libfig10-98a1dd407e762643.rmeta: crates/bench/benches/fig10.rs Cargo.toml

crates/bench/benches/fig10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
