/root/repo/target/debug/deps/differential_device-96bc7530d68426a9.d: tests/differential_device.rs Cargo.toml

/root/repo/target/debug/deps/libdifferential_device-96bc7530d68426a9.rmeta: tests/differential_device.rs Cargo.toml

tests/differential_device.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
