/root/repo/target/debug/deps/proptest-522e2b6972485929.d: shims/proptest/src/lib.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs

/root/repo/target/debug/deps/proptest-522e2b6972485929: shims/proptest/src/lib.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs

shims/proptest/src/lib.rs:
shims/proptest/src/strategy.rs:
shims/proptest/src/test_runner.rs:
