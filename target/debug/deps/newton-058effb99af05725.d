/root/repo/target/debug/deps/newton-058effb99af05725.d: crates/core/src/lib.rs crates/core/src/system.rs

/root/repo/target/debug/deps/libnewton-058effb99af05725.rlib: crates/core/src/lib.rs crates/core/src/system.rs

/root/repo/target/debug/deps/libnewton-058effb99af05725.rmeta: crates/core/src/lib.rs crates/core/src/system.rs

crates/core/src/lib.rs:
crates/core/src/system.rs:
