/root/repo/target/debug/deps/wire_level-5056952172b20691.d: tests/wire_level.rs Cargo.toml

/root/repo/target/debug/deps/libwire_level-5056952172b20691.rmeta: tests/wire_level.rs Cargo.toml

tests/wire_level.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
