/root/repo/target/debug/deps/newton_controller-ad3cf886c1e2472c.d: crates/controller/src/lib.rs crates/controller/src/allocation.rs crates/controller/src/controller.rs crates/controller/src/placement.rs crates/controller/src/timing.rs

/root/repo/target/debug/deps/libnewton_controller-ad3cf886c1e2472c.rlib: crates/controller/src/lib.rs crates/controller/src/allocation.rs crates/controller/src/controller.rs crates/controller/src/placement.rs crates/controller/src/timing.rs

/root/repo/target/debug/deps/libnewton_controller-ad3cf886c1e2472c.rmeta: crates/controller/src/lib.rs crates/controller/src/allocation.rs crates/controller/src/controller.rs crates/controller/src/placement.rs crates/controller/src/timing.rs

crates/controller/src/lib.rs:
crates/controller/src/allocation.rs:
crates/controller/src/controller.rs:
crates/controller/src/placement.rs:
crates/controller/src/timing.rs:
