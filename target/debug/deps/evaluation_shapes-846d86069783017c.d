/root/repo/target/debug/deps/evaluation_shapes-846d86069783017c.d: tests/evaluation_shapes.rs

/root/repo/target/debug/deps/evaluation_shapes-846d86069783017c: tests/evaluation_shapes.rs

tests/evaluation_shapes.rs:
