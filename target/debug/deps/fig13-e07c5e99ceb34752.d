/root/repo/target/debug/deps/fig13-e07c5e99ceb34752.d: crates/bench/benches/fig13.rs Cargo.toml

/root/repo/target/debug/deps/libfig13-e07c5e99ceb34752.rmeta: crates/bench/benches/fig13.rs Cargo.toml

crates/bench/benches/fig13.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
