/root/repo/target/debug/deps/newton_sketch-daf8ff2317478559.d: crates/sketch/src/lib.rs crates/sketch/src/bloom.rs crates/sketch/src/cms.rs crates/sketch/src/exact.rs crates/sketch/src/hash.rs Cargo.toml

/root/repo/target/debug/deps/libnewton_sketch-daf8ff2317478559.rmeta: crates/sketch/src/lib.rs crates/sketch/src/bloom.rs crates/sketch/src/cms.rs crates/sketch/src/exact.rs crates/sketch/src/hash.rs Cargo.toml

crates/sketch/src/lib.rs:
crates/sketch/src/bloom.rs:
crates/sketch/src/cms.rs:
crates/sketch/src/exact.rs:
crates/sketch/src/hash.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
