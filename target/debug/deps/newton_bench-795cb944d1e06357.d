/root/repo/target/debug/deps/newton_bench-795cb944d1e06357.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnewton_bench-795cb944d1e06357.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
