/root/repo/target/debug/deps/fig16-b81bf31286d3fb11.d: crates/bench/benches/fig16.rs Cargo.toml

/root/repo/target/debug/deps/libfig16-b81bf31286d3fb11.rmeta: crates/bench/benches/fig16.rs Cargo.toml

crates/bench/benches/fig16.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
