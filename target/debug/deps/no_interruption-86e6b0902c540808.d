/root/repo/target/debug/deps/no_interruption-86e6b0902c540808.d: tests/no_interruption.rs Cargo.toml

/root/repo/target/debug/deps/libno_interruption-86e6b0902c540808.rmeta: tests/no_interruption.rs Cargo.toml

tests/no_interruption.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
