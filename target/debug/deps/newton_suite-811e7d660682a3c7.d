/root/repo/target/debug/deps/newton_suite-811e7d660682a3c7.d: src/lib.rs

/root/repo/target/debug/deps/newton_suite-811e7d660682a3c7: src/lib.rs

src/lib.rs:
