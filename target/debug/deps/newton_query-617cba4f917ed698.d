/root/repo/target/debug/deps/newton_query-617cba4f917ed698.d: crates/query/src/lib.rs crates/query/src/ast.rs crates/query/src/builder.rs crates/query/src/catalog.rs crates/query/src/interp.rs crates/query/src/parse.rs crates/query/src/validate.rs

/root/repo/target/debug/deps/libnewton_query-617cba4f917ed698.rlib: crates/query/src/lib.rs crates/query/src/ast.rs crates/query/src/builder.rs crates/query/src/catalog.rs crates/query/src/interp.rs crates/query/src/parse.rs crates/query/src/validate.rs

/root/repo/target/debug/deps/libnewton_query-617cba4f917ed698.rmeta: crates/query/src/lib.rs crates/query/src/ast.rs crates/query/src/builder.rs crates/query/src/catalog.rs crates/query/src/interp.rs crates/query/src/parse.rs crates/query/src/validate.rs

crates/query/src/lib.rs:
crates/query/src/ast.rs:
crates/query/src/builder.rs:
crates/query/src/catalog.rs:
crates/query/src/interp.rs:
crates/query/src/parse.rs:
crates/query/src/validate.rs:
