/root/repo/target/debug/deps/newton_bench-b701d16b2b541f70.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnewton_bench-b701d16b2b541f70.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
