/root/repo/target/debug/deps/newton_compiler-d1f9198ba26dc4bb.d: crates/compiler/src/lib.rs crates/compiler/src/compose.rs crates/compiler/src/concurrent.rs crates/compiler/src/decompose.rs crates/compiler/src/plan.rs crates/compiler/src/rulegen.rs crates/compiler/src/slicing.rs crates/compiler/src/sonata.rs

/root/repo/target/debug/deps/libnewton_compiler-d1f9198ba26dc4bb.rlib: crates/compiler/src/lib.rs crates/compiler/src/compose.rs crates/compiler/src/concurrent.rs crates/compiler/src/decompose.rs crates/compiler/src/plan.rs crates/compiler/src/rulegen.rs crates/compiler/src/slicing.rs crates/compiler/src/sonata.rs

/root/repo/target/debug/deps/libnewton_compiler-d1f9198ba26dc4bb.rmeta: crates/compiler/src/lib.rs crates/compiler/src/compose.rs crates/compiler/src/concurrent.rs crates/compiler/src/decompose.rs crates/compiler/src/plan.rs crates/compiler/src/rulegen.rs crates/compiler/src/slicing.rs crates/compiler/src/sonata.rs

crates/compiler/src/lib.rs:
crates/compiler/src/compose.rs:
crates/compiler/src/concurrent.rs:
crates/compiler/src/decompose.rs:
crates/compiler/src/plan.rs:
crates/compiler/src/rulegen.rs:
crates/compiler/src/slicing.rs:
crates/compiler/src/sonata.rs:
