/root/repo/target/debug/deps/network_cqe-7444dc721422b01d.d: tests/network_cqe.rs

/root/repo/target/debug/deps/network_cqe-7444dc721422b01d: tests/network_cqe.rs

tests/network_cqe.rs:
