/root/repo/target/debug/deps/fig11-a8dc47e2acc482d3.d: crates/bench/benches/fig11.rs Cargo.toml

/root/repo/target/debug/deps/libfig11-a8dc47e2acc482d3.rmeta: crates/bench/benches/fig11.rs Cargo.toml

crates/bench/benches/fig11.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
