/root/repo/target/debug/deps/newton_controller-1145dcaba45308da.d: crates/controller/src/lib.rs crates/controller/src/allocation.rs crates/controller/src/controller.rs crates/controller/src/placement.rs crates/controller/src/timing.rs Cargo.toml

/root/repo/target/debug/deps/libnewton_controller-1145dcaba45308da.rmeta: crates/controller/src/lib.rs crates/controller/src/allocation.rs crates/controller/src/controller.rs crates/controller/src/placement.rs crates/controller/src/timing.rs Cargo.toml

crates/controller/src/lib.rs:
crates/controller/src/allocation.rs:
crates/controller/src/controller.rs:
crates/controller/src/placement.rs:
crates/controller/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
