/root/repo/target/debug/deps/dynamics_state_loss-b3d36261c6413c33.d: tests/dynamics_state_loss.rs Cargo.toml

/root/repo/target/debug/deps/libdynamics_state_loss-b3d36261c6413c33.rmeta: tests/dynamics_state_loss.rs Cargo.toml

tests/dynamics_state_loss.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
