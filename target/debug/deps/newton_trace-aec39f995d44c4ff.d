/root/repo/target/debug/deps/newton_trace-aec39f995d44c4ff.d: crates/trace/src/lib.rs crates/trace/src/attacks.rs crates/trace/src/background.rs crates/trace/src/pcap.rs crates/trace/src/presets.rs crates/trace/src/stats.rs crates/trace/src/trace.rs crates/trace/src/zipf.rs Cargo.toml

/root/repo/target/debug/deps/libnewton_trace-aec39f995d44c4ff.rmeta: crates/trace/src/lib.rs crates/trace/src/attacks.rs crates/trace/src/background.rs crates/trace/src/pcap.rs crates/trace/src/presets.rs crates/trace/src/stats.rs crates/trace/src/trace.rs crates/trace/src/zipf.rs Cargo.toml

crates/trace/src/lib.rs:
crates/trace/src/attacks.rs:
crates/trace/src/background.rs:
crates/trace/src/pcap.rs:
crates/trace/src/presets.rs:
crates/trace/src/stats.rs:
crates/trace/src/trace.rs:
crates/trace/src/zipf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
