/root/repo/target/debug/deps/newton-efda6cb9bae5f0a6.d: crates/core/src/lib.rs crates/core/src/system.rs Cargo.toml

/root/repo/target/debug/deps/libnewton-efda6cb9bae5f0a6.rmeta: crates/core/src/lib.rs crates/core/src/system.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/system.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
