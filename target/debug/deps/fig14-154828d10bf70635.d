/root/repo/target/debug/deps/fig14-154828d10bf70635.d: crates/bench/benches/fig14.rs Cargo.toml

/root/repo/target/debug/deps/libfig14-154828d10bf70635.rmeta: crates/bench/benches/fig14.rs Cargo.toml

crates/bench/benches/fig14.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
