/root/repo/target/debug/deps/proptest_invariants-1e0de8a3474ef4de.d: tests/proptest_invariants.rs

/root/repo/target/debug/deps/proptest_invariants-1e0de8a3474ef4de: tests/proptest_invariants.rs

tests/proptest_invariants.rs:
