/root/repo/target/debug/deps/newton_suite-2d8b538e6fc800b3.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnewton_suite-2d8b538e6fc800b3.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
