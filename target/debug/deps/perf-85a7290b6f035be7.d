/root/repo/target/debug/deps/perf-85a7290b6f035be7.d: crates/bench/benches/perf.rs Cargo.toml

/root/repo/target/debug/deps/libperf-85a7290b6f035be7.rmeta: crates/bench/benches/perf.rs Cargo.toml

crates/bench/benches/perf.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
