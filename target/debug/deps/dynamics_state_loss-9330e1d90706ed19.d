/root/repo/target/debug/deps/dynamics_state_loss-9330e1d90706ed19.d: tests/dynamics_state_loss.rs

/root/repo/target/debug/deps/dynamics_state_loss-9330e1d90706ed19: tests/dynamics_state_loss.rs

tests/dynamics_state_loss.rs:
