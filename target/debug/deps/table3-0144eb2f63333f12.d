/root/repo/target/debug/deps/table3-0144eb2f63333f12.d: crates/bench/benches/table3.rs Cargo.toml

/root/repo/target/debug/deps/libtable3-0144eb2f63333f12.rmeta: crates/bench/benches/table3.rs Cargo.toml

crates/bench/benches/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
