/root/repo/target/debug/deps/bandwidth_overhead-bd7f707724e211c9.d: tests/bandwidth_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libbandwidth_overhead-bd7f707724e211c9.rmeta: tests/bandwidth_overhead.rs Cargo.toml

tests/bandwidth_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
