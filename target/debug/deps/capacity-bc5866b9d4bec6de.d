/root/repo/target/debug/deps/capacity-bc5866b9d4bec6de.d: tests/capacity.rs

/root/repo/target/debug/deps/capacity-bc5866b9d4bec6de: tests/capacity.rs

tests/capacity.rs:
