/root/repo/target/debug/deps/proptest_exec_equivalence-117d55470bf7fdf7.d: tests/proptest_exec_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_exec_equivalence-117d55470bf7fdf7.rmeta: tests/proptest_exec_equivalence.rs Cargo.toml

tests/proptest_exec_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
