/root/repo/target/debug/deps/newton_packet-e41173f005ab2996.d: crates/packet/src/lib.rs crates/packet/src/field.rs crates/packet/src/flow.rs crates/packet/src/headers.rs crates/packet/src/packet.rs crates/packet/src/snapshot.rs crates/packet/src/wire.rs Cargo.toml

/root/repo/target/debug/deps/libnewton_packet-e41173f005ab2996.rmeta: crates/packet/src/lib.rs crates/packet/src/field.rs crates/packet/src/flow.rs crates/packet/src/headers.rs crates/packet/src/packet.rs crates/packet/src/snapshot.rs crates/packet/src/wire.rs Cargo.toml

crates/packet/src/lib.rs:
crates/packet/src/field.rs:
crates/packet/src/flow.rs:
crates/packet/src/headers.rs:
crates/packet/src/packet.rs:
crates/packet/src/snapshot.rs:
crates/packet/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
