/root/repo/target/debug/deps/newton_net-7d38f65bcc325730.d: crates/net/src/lib.rs crates/net/src/events.rs crates/net/src/routing.rs crates/net/src/sim.rs crates/net/src/topology.rs

/root/repo/target/debug/deps/libnewton_net-7d38f65bcc325730.rlib: crates/net/src/lib.rs crates/net/src/events.rs crates/net/src/routing.rs crates/net/src/sim.rs crates/net/src/topology.rs

/root/repo/target/debug/deps/libnewton_net-7d38f65bcc325730.rmeta: crates/net/src/lib.rs crates/net/src/events.rs crates/net/src/routing.rs crates/net/src/sim.rs crates/net/src/topology.rs

crates/net/src/lib.rs:
crates/net/src/events.rs:
crates/net/src/routing.rs:
crates/net/src/sim.rs:
crates/net/src/topology.rs:
