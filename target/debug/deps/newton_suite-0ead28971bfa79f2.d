/root/repo/target/debug/deps/newton_suite-0ead28971bfa79f2.d: src/lib.rs

/root/repo/target/debug/deps/libnewton_suite-0ead28971bfa79f2.rlib: src/lib.rs

/root/repo/target/debug/deps/libnewton_suite-0ead28971bfa79f2.rmeta: src/lib.rs

src/lib.rs:
