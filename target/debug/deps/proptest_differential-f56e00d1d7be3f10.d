/root/repo/target/debug/deps/proptest_differential-f56e00d1d7be3f10.d: tests/proptest_differential.rs

/root/repo/target/debug/deps/proptest_differential-f56e00d1d7be3f10: tests/proptest_differential.rs

tests/proptest_differential.rs:
