/root/repo/target/debug/deps/capacity-b27a23be447d40cd.d: tests/capacity.rs Cargo.toml

/root/repo/target/debug/deps/libcapacity-b27a23be447d40cd.rmeta: tests/capacity.rs Cargo.toml

tests/capacity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
