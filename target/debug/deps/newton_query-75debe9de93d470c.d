/root/repo/target/debug/deps/newton_query-75debe9de93d470c.d: crates/query/src/lib.rs crates/query/src/ast.rs crates/query/src/builder.rs crates/query/src/catalog.rs crates/query/src/interp.rs crates/query/src/parse.rs crates/query/src/validate.rs Cargo.toml

/root/repo/target/debug/deps/libnewton_query-75debe9de93d470c.rmeta: crates/query/src/lib.rs crates/query/src/ast.rs crates/query/src/builder.rs crates/query/src/catalog.rs crates/query/src/interp.rs crates/query/src/parse.rs crates/query/src/validate.rs Cargo.toml

crates/query/src/lib.rs:
crates/query/src/ast.rs:
crates/query/src/builder.rs:
crates/query/src/catalog.rs:
crates/query/src/interp.rs:
crates/query/src/parse.rs:
crates/query/src/validate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
