/root/repo/target/debug/deps/newton_compiler-1f972032d8cdde76.d: crates/compiler/src/lib.rs crates/compiler/src/compose.rs crates/compiler/src/concurrent.rs crates/compiler/src/decompose.rs crates/compiler/src/plan.rs crates/compiler/src/rulegen.rs crates/compiler/src/slicing.rs crates/compiler/src/sonata.rs Cargo.toml

/root/repo/target/debug/deps/libnewton_compiler-1f972032d8cdde76.rmeta: crates/compiler/src/lib.rs crates/compiler/src/compose.rs crates/compiler/src/concurrent.rs crates/compiler/src/decompose.rs crates/compiler/src/plan.rs crates/compiler/src/rulegen.rs crates/compiler/src/slicing.rs crates/compiler/src/sonata.rs Cargo.toml

crates/compiler/src/lib.rs:
crates/compiler/src/compose.rs:
crates/compiler/src/concurrent.rs:
crates/compiler/src/decompose.rs:
crates/compiler/src/plan.rs:
crates/compiler/src/rulegen.rs:
crates/compiler/src/slicing.rs:
crates/compiler/src/sonata.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
