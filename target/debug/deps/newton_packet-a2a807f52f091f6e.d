/root/repo/target/debug/deps/newton_packet-a2a807f52f091f6e.d: crates/packet/src/lib.rs crates/packet/src/field.rs crates/packet/src/flow.rs crates/packet/src/headers.rs crates/packet/src/packet.rs crates/packet/src/snapshot.rs crates/packet/src/wire.rs

/root/repo/target/debug/deps/newton_packet-a2a807f52f091f6e: crates/packet/src/lib.rs crates/packet/src/field.rs crates/packet/src/flow.rs crates/packet/src/headers.rs crates/packet/src/packet.rs crates/packet/src/snapshot.rs crates/packet/src/wire.rs

crates/packet/src/lib.rs:
crates/packet/src/field.rs:
crates/packet/src/flow.rs:
crates/packet/src/headers.rs:
crates/packet/src/packet.rs:
crates/packet/src/snapshot.rs:
crates/packet/src/wire.rs:
