/root/repo/target/debug/deps/newton_net-8163341deb127e78.d: crates/net/src/lib.rs crates/net/src/events.rs crates/net/src/routing.rs crates/net/src/sim.rs crates/net/src/topology.rs

/root/repo/target/debug/deps/newton_net-8163341deb127e78: crates/net/src/lib.rs crates/net/src/events.rs crates/net/src/routing.rs crates/net/src/sim.rs crates/net/src/topology.rs

crates/net/src/lib.rs:
crates/net/src/events.rs:
crates/net/src/routing.rs:
crates/net/src/sim.rs:
crates/net/src/topology.rs:
