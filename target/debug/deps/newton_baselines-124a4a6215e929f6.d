/root/repo/target/debug/deps/newton_baselines-124a4a6215e929f6.d: crates/baselines/src/lib.rs crates/baselines/src/flowradar.rs crates/baselines/src/scream.rs crates/baselines/src/sonata.rs crates/baselines/src/starflow.rs crates/baselines/src/turboflow.rs Cargo.toml

/root/repo/target/debug/deps/libnewton_baselines-124a4a6215e929f6.rmeta: crates/baselines/src/lib.rs crates/baselines/src/flowradar.rs crates/baselines/src/scream.rs crates/baselines/src/sonata.rs crates/baselines/src/starflow.rs crates/baselines/src/turboflow.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/flowradar.rs:
crates/baselines/src/scream.rs:
crates/baselines/src/sonata.rs:
crates/baselines/src/starflow.rs:
crates/baselines/src/turboflow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
