/root/repo/target/debug/deps/naive_layout-2c91d4ccc04b5ebd.d: tests/naive_layout.rs

/root/repo/target/debug/deps/naive_layout-2c91d4ccc04b5ebd: tests/naive_layout.rs

tests/naive_layout.rs:
