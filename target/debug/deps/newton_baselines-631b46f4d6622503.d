/root/repo/target/debug/deps/newton_baselines-631b46f4d6622503.d: crates/baselines/src/lib.rs crates/baselines/src/flowradar.rs crates/baselines/src/scream.rs crates/baselines/src/sonata.rs crates/baselines/src/starflow.rs crates/baselines/src/turboflow.rs

/root/repo/target/debug/deps/libnewton_baselines-631b46f4d6622503.rlib: crates/baselines/src/lib.rs crates/baselines/src/flowradar.rs crates/baselines/src/scream.rs crates/baselines/src/sonata.rs crates/baselines/src/starflow.rs crates/baselines/src/turboflow.rs

/root/repo/target/debug/deps/libnewton_baselines-631b46f4d6622503.rmeta: crates/baselines/src/lib.rs crates/baselines/src/flowradar.rs crates/baselines/src/scream.rs crates/baselines/src/sonata.rs crates/baselines/src/starflow.rs crates/baselines/src/turboflow.rs

crates/baselines/src/lib.rs:
crates/baselines/src/flowradar.rs:
crates/baselines/src/scream.rs:
crates/baselines/src/sonata.rs:
crates/baselines/src/starflow.rs:
crates/baselines/src/turboflow.rs:
