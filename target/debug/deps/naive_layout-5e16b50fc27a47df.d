/root/repo/target/debug/deps/naive_layout-5e16b50fc27a47df.d: tests/naive_layout.rs Cargo.toml

/root/repo/target/debug/deps/libnaive_layout-5e16b50fc27a47df.rmeta: tests/naive_layout.rs Cargo.toml

tests/naive_layout.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
