/root/repo/target/debug/deps/newton_bench-c41a434d29b0056e.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libnewton_bench-c41a434d29b0056e.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libnewton_bench-c41a434d29b0056e.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
