/root/repo/target/debug/deps/newton_sketch-9b079eb907ae5561.d: crates/sketch/src/lib.rs crates/sketch/src/bloom.rs crates/sketch/src/cms.rs crates/sketch/src/exact.rs crates/sketch/src/hash.rs

/root/repo/target/debug/deps/libnewton_sketch-9b079eb907ae5561.rlib: crates/sketch/src/lib.rs crates/sketch/src/bloom.rs crates/sketch/src/cms.rs crates/sketch/src/exact.rs crates/sketch/src/hash.rs

/root/repo/target/debug/deps/libnewton_sketch-9b079eb907ae5561.rmeta: crates/sketch/src/lib.rs crates/sketch/src/bloom.rs crates/sketch/src/cms.rs crates/sketch/src/exact.rs crates/sketch/src/hash.rs

crates/sketch/src/lib.rs:
crates/sketch/src/bloom.rs:
crates/sketch/src/cms.rs:
crates/sketch/src/exact.rs:
crates/sketch/src/hash.rs:
