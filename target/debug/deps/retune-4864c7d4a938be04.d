/root/repo/target/debug/deps/retune-4864c7d4a938be04.d: tests/retune.rs Cargo.toml

/root/repo/target/debug/deps/libretune-4864c7d4a938be04.rmeta: tests/retune.rs Cargo.toml

tests/retune.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
