/root/repo/target/debug/deps/scripted_dynamics-2247190ed980f223.d: tests/scripted_dynamics.rs Cargo.toml

/root/repo/target/debug/deps/libscripted_dynamics-2247190ed980f223.rmeta: tests/scripted_dynamics.rs Cargo.toml

tests/scripted_dynamics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
