/root/repo/target/debug/deps/newton_dataplane-61c3a762c183a833.d: crates/dataplane/src/lib.rs crates/dataplane/src/debug.rs crates/dataplane/src/exec.rs crates/dataplane/src/init.rs crates/dataplane/src/layout.rs crates/dataplane/src/mirror.rs crates/dataplane/src/modules.rs crates/dataplane/src/phv.rs crates/dataplane/src/resources.rs crates/dataplane/src/rules.rs crates/dataplane/src/switch.rs

/root/repo/target/debug/deps/newton_dataplane-61c3a762c183a833: crates/dataplane/src/lib.rs crates/dataplane/src/debug.rs crates/dataplane/src/exec.rs crates/dataplane/src/init.rs crates/dataplane/src/layout.rs crates/dataplane/src/mirror.rs crates/dataplane/src/modules.rs crates/dataplane/src/phv.rs crates/dataplane/src/resources.rs crates/dataplane/src/rules.rs crates/dataplane/src/switch.rs

crates/dataplane/src/lib.rs:
crates/dataplane/src/debug.rs:
crates/dataplane/src/exec.rs:
crates/dataplane/src/init.rs:
crates/dataplane/src/layout.rs:
crates/dataplane/src/mirror.rs:
crates/dataplane/src/modules.rs:
crates/dataplane/src/phv.rs:
crates/dataplane/src/resources.rs:
crates/dataplane/src/rules.rs:
crates/dataplane/src/switch.rs:
