/root/repo/target/debug/deps/newton_query-8f6bc775e0b12819.d: crates/query/src/lib.rs crates/query/src/ast.rs crates/query/src/builder.rs crates/query/src/catalog.rs crates/query/src/interp.rs crates/query/src/parse.rs crates/query/src/validate.rs

/root/repo/target/debug/deps/newton_query-8f6bc775e0b12819: crates/query/src/lib.rs crates/query/src/ast.rs crates/query/src/builder.rs crates/query/src/catalog.rs crates/query/src/interp.rs crates/query/src/parse.rs crates/query/src/validate.rs

crates/query/src/lib.rs:
crates/query/src/ast.rs:
crates/query/src/builder.rs:
crates/query/src/catalog.rs:
crates/query/src/interp.rs:
crates/query/src/parse.rs:
crates/query/src/validate.rs:
