/root/repo/target/debug/deps/newton_packet-11362cb2c06dfa69.d: crates/packet/src/lib.rs crates/packet/src/field.rs crates/packet/src/flow.rs crates/packet/src/headers.rs crates/packet/src/packet.rs crates/packet/src/snapshot.rs crates/packet/src/wire.rs

/root/repo/target/debug/deps/libnewton_packet-11362cb2c06dfa69.rlib: crates/packet/src/lib.rs crates/packet/src/field.rs crates/packet/src/flow.rs crates/packet/src/headers.rs crates/packet/src/packet.rs crates/packet/src/snapshot.rs crates/packet/src/wire.rs

/root/repo/target/debug/deps/libnewton_packet-11362cb2c06dfa69.rmeta: crates/packet/src/lib.rs crates/packet/src/field.rs crates/packet/src/flow.rs crates/packet/src/headers.rs crates/packet/src/packet.rs crates/packet/src/snapshot.rs crates/packet/src/wire.rs

crates/packet/src/lib.rs:
crates/packet/src/field.rs:
crates/packet/src/flow.rs:
crates/packet/src/headers.rs:
crates/packet/src/packet.rs:
crates/packet/src/snapshot.rs:
crates/packet/src/wire.rs:
