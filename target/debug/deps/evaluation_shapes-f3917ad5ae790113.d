/root/repo/target/debug/deps/evaluation_shapes-f3917ad5ae790113.d: tests/evaluation_shapes.rs Cargo.toml

/root/repo/target/debug/deps/libevaluation_shapes-f3917ad5ae790113.rmeta: tests/evaluation_shapes.rs Cargo.toml

tests/evaluation_shapes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
