/root/repo/target/debug/deps/proptest_exec_equivalence-d963e5f3d5c9d5f9.d: tests/proptest_exec_equivalence.rs

/root/repo/target/debug/deps/proptest_exec_equivalence-d963e5f3d5c9d5f9: tests/proptest_exec_equivalence.rs

tests/proptest_exec_equivalence.rs:
