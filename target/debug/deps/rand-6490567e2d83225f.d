/root/repo/target/debug/deps/rand-6490567e2d83225f.d: shims/rand/src/lib.rs

/root/repo/target/debug/deps/rand-6490567e2d83225f: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
