/root/repo/target/debug/deps/newton_controller-b009c296f2d596d8.d: crates/controller/src/lib.rs crates/controller/src/allocation.rs crates/controller/src/controller.rs crates/controller/src/placement.rs crates/controller/src/timing.rs

/root/repo/target/debug/deps/newton_controller-b009c296f2d596d8: crates/controller/src/lib.rs crates/controller/src/allocation.rs crates/controller/src/controller.rs crates/controller/src/placement.rs crates/controller/src/timing.rs

crates/controller/src/lib.rs:
crates/controller/src/allocation.rs:
crates/controller/src/controller.rs:
crates/controller/src/placement.rs:
crates/controller/src/timing.rs:
