/root/repo/target/debug/deps/newton_baselines-1bed75cf0b3ff453.d: crates/baselines/src/lib.rs crates/baselines/src/flowradar.rs crates/baselines/src/scream.rs crates/baselines/src/sonata.rs crates/baselines/src/starflow.rs crates/baselines/src/turboflow.rs

/root/repo/target/debug/deps/newton_baselines-1bed75cf0b3ff453: crates/baselines/src/lib.rs crates/baselines/src/flowradar.rs crates/baselines/src/scream.rs crates/baselines/src/sonata.rs crates/baselines/src/starflow.rs crates/baselines/src/turboflow.rs

crates/baselines/src/lib.rs:
crates/baselines/src/flowradar.rs:
crates/baselines/src/scream.rs:
crates/baselines/src/sonata.rs:
crates/baselines/src/starflow.rs:
crates/baselines/src/turboflow.rs:
