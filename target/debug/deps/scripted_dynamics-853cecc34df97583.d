/root/repo/target/debug/deps/scripted_dynamics-853cecc34df97583.d: tests/scripted_dynamics.rs

/root/repo/target/debug/deps/scripted_dynamics-853cecc34df97583: tests/scripted_dynamics.rs

tests/scripted_dynamics.rs:
