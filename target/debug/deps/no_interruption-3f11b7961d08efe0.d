/root/repo/target/debug/deps/no_interruption-3f11b7961d08efe0.d: tests/no_interruption.rs

/root/repo/target/debug/deps/no_interruption-3f11b7961d08efe0: tests/no_interruption.rs

tests/no_interruption.rs:
