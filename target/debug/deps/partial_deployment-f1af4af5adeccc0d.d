/root/repo/target/debug/deps/partial_deployment-f1af4af5adeccc0d.d: tests/partial_deployment.rs Cargo.toml

/root/repo/target/debug/deps/libpartial_deployment-f1af4af5adeccc0d.rmeta: tests/partial_deployment.rs Cargo.toml

tests/partial_deployment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
