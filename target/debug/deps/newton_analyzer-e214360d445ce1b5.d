/root/repo/target/debug/deps/newton_analyzer-e214360d445ce1b5.d: crates/analyzer/src/lib.rs crates/analyzer/src/accuracy.rs crates/analyzer/src/analyzer.rs crates/analyzer/src/incidents.rs crates/analyzer/src/overhead.rs

/root/repo/target/debug/deps/newton_analyzer-e214360d445ce1b5: crates/analyzer/src/lib.rs crates/analyzer/src/accuracy.rs crates/analyzer/src/analyzer.rs crates/analyzer/src/incidents.rs crates/analyzer/src/overhead.rs

crates/analyzer/src/lib.rs:
crates/analyzer/src/accuracy.rs:
crates/analyzer/src/analyzer.rs:
crates/analyzer/src/incidents.rs:
crates/analyzer/src/overhead.rs:
