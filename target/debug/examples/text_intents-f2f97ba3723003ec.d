/root/repo/target/debug/examples/text_intents-f2f97ba3723003ec.d: examples/text_intents.rs Cargo.toml

/root/repo/target/debug/examples/libtext_intents-f2f97ba3723003ec.rmeta: examples/text_intents.rs Cargo.toml

examples/text_intents.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
