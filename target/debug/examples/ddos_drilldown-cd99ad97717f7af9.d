/root/repo/target/debug/examples/ddos_drilldown-cd99ad97717f7af9.d: examples/ddos_drilldown.rs

/root/repo/target/debug/examples/ddos_drilldown-cd99ad97717f7af9: examples/ddos_drilldown.rs

examples/ddos_drilldown.rs:
