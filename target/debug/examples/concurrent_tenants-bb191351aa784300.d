/root/repo/target/debug/examples/concurrent_tenants-bb191351aa784300.d: examples/concurrent_tenants.rs Cargo.toml

/root/repo/target/debug/examples/libconcurrent_tenants-bb191351aa784300.rmeta: examples/concurrent_tenants.rs Cargo.toml

examples/concurrent_tenants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
