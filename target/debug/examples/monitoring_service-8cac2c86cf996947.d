/root/repo/target/debug/examples/monitoring_service-8cac2c86cf996947.d: examples/monitoring_service.rs

/root/repo/target/debug/examples/monitoring_service-8cac2c86cf996947: examples/monitoring_service.rs

examples/monitoring_service.rs:
