/root/repo/target/debug/examples/network_wide-132e89274836b2f2.d: examples/network_wide.rs

/root/repo/target/debug/examples/network_wide-132e89274836b2f2: examples/network_wide.rs

examples/network_wide.rs:
