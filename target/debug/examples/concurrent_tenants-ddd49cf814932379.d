/root/repo/target/debug/examples/concurrent_tenants-ddd49cf814932379.d: examples/concurrent_tenants.rs

/root/repo/target/debug/examples/concurrent_tenants-ddd49cf814932379: examples/concurrent_tenants.rs

examples/concurrent_tenants.rs:
