/root/repo/target/debug/examples/network_wide-07ec4ea4eb1f0c7b.d: examples/network_wide.rs Cargo.toml

/root/repo/target/debug/examples/libnetwork_wide-07ec4ea4eb1f0c7b.rmeta: examples/network_wide.rs Cargo.toml

examples/network_wide.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
