/root/repo/target/debug/examples/ddos_drilldown-a84c29cb1a0b5b1d.d: examples/ddos_drilldown.rs Cargo.toml

/root/repo/target/debug/examples/libddos_drilldown-a84c29cb1a0b5b1d.rmeta: examples/ddos_drilldown.rs Cargo.toml

examples/ddos_drilldown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
