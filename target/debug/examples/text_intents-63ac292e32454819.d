/root/repo/target/debug/examples/text_intents-63ac292e32454819.d: examples/text_intents.rs

/root/repo/target/debug/examples/text_intents-63ac292e32454819: examples/text_intents.rs

examples/text_intents.rs:
