/root/repo/target/debug/examples/replay_pcap-1696f42702a4d3e8.d: examples/replay_pcap.rs Cargo.toml

/root/repo/target/debug/examples/libreplay_pcap-1696f42702a4d3e8.rmeta: examples/replay_pcap.rs Cargo.toml

examples/replay_pcap.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
