/root/repo/target/debug/examples/quickstart-7db2708e76cd79d4.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-7db2708e76cd79d4: examples/quickstart.rs

examples/quickstart.rs:
