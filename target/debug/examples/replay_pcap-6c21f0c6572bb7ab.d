/root/repo/target/debug/examples/replay_pcap-6c21f0c6572bb7ab.d: examples/replay_pcap.rs

/root/repo/target/debug/examples/replay_pcap-6c21f0c6572bb7ab: examples/replay_pcap.rs

examples/replay_pcap.rs:
