/root/repo/target/debug/examples/monitoring_service-57cb2043a147f624.d: examples/monitoring_service.rs Cargo.toml

/root/repo/target/debug/examples/libmonitoring_service-57cb2043a147f624.rmeta: examples/monitoring_service.rs Cargo.toml

examples/monitoring_service.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
