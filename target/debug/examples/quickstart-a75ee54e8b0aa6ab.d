/root/repo/target/debug/examples/quickstart-a75ee54e8b0aa6ab.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-a75ee54e8b0aa6ab.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
