/root/repo/target/release/examples/probe_tmp-182b0581c7334979.d: examples/probe_tmp.rs

/root/repo/target/release/examples/probe_tmp-182b0581c7334979: examples/probe_tmp.rs

examples/probe_tmp.rs:
