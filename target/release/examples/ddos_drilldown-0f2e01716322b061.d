/root/repo/target/release/examples/ddos_drilldown-0f2e01716322b061.d: examples/ddos_drilldown.rs

/root/repo/target/release/examples/ddos_drilldown-0f2e01716322b061: examples/ddos_drilldown.rs

examples/ddos_drilldown.rs:
