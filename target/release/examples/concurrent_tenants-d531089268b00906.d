/root/repo/target/release/examples/concurrent_tenants-d531089268b00906.d: examples/concurrent_tenants.rs

/root/repo/target/release/examples/concurrent_tenants-d531089268b00906: examples/concurrent_tenants.rs

examples/concurrent_tenants.rs:
