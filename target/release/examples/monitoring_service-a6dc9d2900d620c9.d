/root/repo/target/release/examples/monitoring_service-a6dc9d2900d620c9.d: examples/monitoring_service.rs

/root/repo/target/release/examples/monitoring_service-a6dc9d2900d620c9: examples/monitoring_service.rs

examples/monitoring_service.rs:
