/root/repo/target/release/examples/_probe_verify-79c8d50f54faa6fe.d: examples/_probe_verify.rs

/root/repo/target/release/examples/_probe_verify-79c8d50f54faa6fe: examples/_probe_verify.rs

examples/_probe_verify.rs:
