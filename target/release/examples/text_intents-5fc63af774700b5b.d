/root/repo/target/release/examples/text_intents-5fc63af774700b5b.d: examples/text_intents.rs

/root/repo/target/release/examples/text_intents-5fc63af774700b5b: examples/text_intents.rs

examples/text_intents.rs:
