/root/repo/target/release/examples/quickstart-385a75dc256208f1.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-385a75dc256208f1: examples/quickstart.rs

examples/quickstart.rs:
