/root/repo/target/release/examples/network_wide-6988b08fe3be8911.d: examples/network_wide.rs

/root/repo/target/release/examples/network_wide-6988b08fe3be8911: examples/network_wide.rs

examples/network_wide.rs:
