/root/repo/target/release/deps/newton_bench-096b96f8857c12e6.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libnewton_bench-096b96f8857c12e6.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libnewton_bench-096b96f8857c12e6.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
