/root/repo/target/release/deps/newton_net-171a561b15e96f99.d: crates/net/src/lib.rs crates/net/src/events.rs crates/net/src/routing.rs crates/net/src/sim.rs crates/net/src/topology.rs

/root/repo/target/release/deps/libnewton_net-171a561b15e96f99.rlib: crates/net/src/lib.rs crates/net/src/events.rs crates/net/src/routing.rs crates/net/src/sim.rs crates/net/src/topology.rs

/root/repo/target/release/deps/libnewton_net-171a561b15e96f99.rmeta: crates/net/src/lib.rs crates/net/src/events.rs crates/net/src/routing.rs crates/net/src/sim.rs crates/net/src/topology.rs

crates/net/src/lib.rs:
crates/net/src/events.rs:
crates/net/src/routing.rs:
crates/net/src/sim.rs:
crates/net/src/topology.rs:
