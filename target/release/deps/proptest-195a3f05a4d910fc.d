/root/repo/target/release/deps/proptest-195a3f05a4d910fc.d: shims/proptest/src/lib.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-195a3f05a4d910fc.rlib: shims/proptest/src/lib.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-195a3f05a4d910fc.rmeta: shims/proptest/src/lib.rs shims/proptest/src/strategy.rs shims/proptest/src/test_runner.rs

shims/proptest/src/lib.rs:
shims/proptest/src/strategy.rs:
shims/proptest/src/test_runner.rs:
