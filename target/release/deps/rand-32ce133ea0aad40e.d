/root/repo/target/release/deps/rand-32ce133ea0aad40e.d: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-32ce133ea0aad40e.rlib: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-32ce133ea0aad40e.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
