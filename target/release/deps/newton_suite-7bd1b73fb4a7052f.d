/root/repo/target/release/deps/newton_suite-7bd1b73fb4a7052f.d: src/lib.rs

/root/repo/target/release/deps/libnewton_suite-7bd1b73fb4a7052f.rlib: src/lib.rs

/root/repo/target/release/deps/libnewton_suite-7bd1b73fb4a7052f.rmeta: src/lib.rs

src/lib.rs:
