/root/repo/target/release/deps/newton_compiler-8f36f33f6cc8c89c.d: crates/compiler/src/lib.rs crates/compiler/src/compose.rs crates/compiler/src/concurrent.rs crates/compiler/src/decompose.rs crates/compiler/src/plan.rs crates/compiler/src/rulegen.rs crates/compiler/src/slicing.rs crates/compiler/src/sonata.rs

/root/repo/target/release/deps/libnewton_compiler-8f36f33f6cc8c89c.rlib: crates/compiler/src/lib.rs crates/compiler/src/compose.rs crates/compiler/src/concurrent.rs crates/compiler/src/decompose.rs crates/compiler/src/plan.rs crates/compiler/src/rulegen.rs crates/compiler/src/slicing.rs crates/compiler/src/sonata.rs

/root/repo/target/release/deps/libnewton_compiler-8f36f33f6cc8c89c.rmeta: crates/compiler/src/lib.rs crates/compiler/src/compose.rs crates/compiler/src/concurrent.rs crates/compiler/src/decompose.rs crates/compiler/src/plan.rs crates/compiler/src/rulegen.rs crates/compiler/src/slicing.rs crates/compiler/src/sonata.rs

crates/compiler/src/lib.rs:
crates/compiler/src/compose.rs:
crates/compiler/src/concurrent.rs:
crates/compiler/src/decompose.rs:
crates/compiler/src/plan.rs:
crates/compiler/src/rulegen.rs:
crates/compiler/src/slicing.rs:
crates/compiler/src/sonata.rs:
