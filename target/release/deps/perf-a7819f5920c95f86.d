/root/repo/target/release/deps/perf-a7819f5920c95f86.d: crates/bench/benches/perf.rs

/root/repo/target/release/deps/perf-a7819f5920c95f86: crates/bench/benches/perf.rs

crates/bench/benches/perf.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
