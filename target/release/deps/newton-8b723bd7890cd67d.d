/root/repo/target/release/deps/newton-8b723bd7890cd67d.d: crates/core/src/lib.rs crates/core/src/system.rs

/root/repo/target/release/deps/libnewton-8b723bd7890cd67d.rlib: crates/core/src/lib.rs crates/core/src/system.rs

/root/repo/target/release/deps/libnewton-8b723bd7890cd67d.rmeta: crates/core/src/lib.rs crates/core/src/system.rs

crates/core/src/lib.rs:
crates/core/src/system.rs:
