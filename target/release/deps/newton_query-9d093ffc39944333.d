/root/repo/target/release/deps/newton_query-9d093ffc39944333.d: crates/query/src/lib.rs crates/query/src/ast.rs crates/query/src/builder.rs crates/query/src/catalog.rs crates/query/src/interp.rs crates/query/src/parse.rs crates/query/src/validate.rs

/root/repo/target/release/deps/libnewton_query-9d093ffc39944333.rlib: crates/query/src/lib.rs crates/query/src/ast.rs crates/query/src/builder.rs crates/query/src/catalog.rs crates/query/src/interp.rs crates/query/src/parse.rs crates/query/src/validate.rs

/root/repo/target/release/deps/libnewton_query-9d093ffc39944333.rmeta: crates/query/src/lib.rs crates/query/src/ast.rs crates/query/src/builder.rs crates/query/src/catalog.rs crates/query/src/interp.rs crates/query/src/parse.rs crates/query/src/validate.rs

crates/query/src/lib.rs:
crates/query/src/ast.rs:
crates/query/src/builder.rs:
crates/query/src/catalog.rs:
crates/query/src/interp.rs:
crates/query/src/parse.rs:
crates/query/src/validate.rs:
