/root/repo/target/release/deps/newton_controller-cc5f092cd6bbffc9.d: crates/controller/src/lib.rs crates/controller/src/allocation.rs crates/controller/src/controller.rs crates/controller/src/placement.rs crates/controller/src/timing.rs

/root/repo/target/release/deps/libnewton_controller-cc5f092cd6bbffc9.rlib: crates/controller/src/lib.rs crates/controller/src/allocation.rs crates/controller/src/controller.rs crates/controller/src/placement.rs crates/controller/src/timing.rs

/root/repo/target/release/deps/libnewton_controller-cc5f092cd6bbffc9.rmeta: crates/controller/src/lib.rs crates/controller/src/allocation.rs crates/controller/src/controller.rs crates/controller/src/placement.rs crates/controller/src/timing.rs

crates/controller/src/lib.rs:
crates/controller/src/allocation.rs:
crates/controller/src/controller.rs:
crates/controller/src/placement.rs:
crates/controller/src/timing.rs:
