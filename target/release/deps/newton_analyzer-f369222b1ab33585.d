/root/repo/target/release/deps/newton_analyzer-f369222b1ab33585.d: crates/analyzer/src/lib.rs crates/analyzer/src/accuracy.rs crates/analyzer/src/analyzer.rs crates/analyzer/src/incidents.rs crates/analyzer/src/overhead.rs

/root/repo/target/release/deps/libnewton_analyzer-f369222b1ab33585.rlib: crates/analyzer/src/lib.rs crates/analyzer/src/accuracy.rs crates/analyzer/src/analyzer.rs crates/analyzer/src/incidents.rs crates/analyzer/src/overhead.rs

/root/repo/target/release/deps/libnewton_analyzer-f369222b1ab33585.rmeta: crates/analyzer/src/lib.rs crates/analyzer/src/accuracy.rs crates/analyzer/src/analyzer.rs crates/analyzer/src/incidents.rs crates/analyzer/src/overhead.rs

crates/analyzer/src/lib.rs:
crates/analyzer/src/accuracy.rs:
crates/analyzer/src/analyzer.rs:
crates/analyzer/src/incidents.rs:
crates/analyzer/src/overhead.rs:
