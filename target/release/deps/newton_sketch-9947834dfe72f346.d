/root/repo/target/release/deps/newton_sketch-9947834dfe72f346.d: crates/sketch/src/lib.rs crates/sketch/src/bloom.rs crates/sketch/src/cms.rs crates/sketch/src/exact.rs crates/sketch/src/hash.rs

/root/repo/target/release/deps/libnewton_sketch-9947834dfe72f346.rlib: crates/sketch/src/lib.rs crates/sketch/src/bloom.rs crates/sketch/src/cms.rs crates/sketch/src/exact.rs crates/sketch/src/hash.rs

/root/repo/target/release/deps/libnewton_sketch-9947834dfe72f346.rmeta: crates/sketch/src/lib.rs crates/sketch/src/bloom.rs crates/sketch/src/cms.rs crates/sketch/src/exact.rs crates/sketch/src/hash.rs

crates/sketch/src/lib.rs:
crates/sketch/src/bloom.rs:
crates/sketch/src/cms.rs:
crates/sketch/src/exact.rs:
crates/sketch/src/hash.rs:
