/root/repo/target/release/deps/newton_baselines-9baca7374cca194e.d: crates/baselines/src/lib.rs crates/baselines/src/flowradar.rs crates/baselines/src/scream.rs crates/baselines/src/sonata.rs crates/baselines/src/starflow.rs crates/baselines/src/turboflow.rs

/root/repo/target/release/deps/libnewton_baselines-9baca7374cca194e.rlib: crates/baselines/src/lib.rs crates/baselines/src/flowradar.rs crates/baselines/src/scream.rs crates/baselines/src/sonata.rs crates/baselines/src/starflow.rs crates/baselines/src/turboflow.rs

/root/repo/target/release/deps/libnewton_baselines-9baca7374cca194e.rmeta: crates/baselines/src/lib.rs crates/baselines/src/flowradar.rs crates/baselines/src/scream.rs crates/baselines/src/sonata.rs crates/baselines/src/starflow.rs crates/baselines/src/turboflow.rs

crates/baselines/src/lib.rs:
crates/baselines/src/flowradar.rs:
crates/baselines/src/scream.rs:
crates/baselines/src/sonata.rs:
crates/baselines/src/starflow.rs:
crates/baselines/src/turboflow.rs:
