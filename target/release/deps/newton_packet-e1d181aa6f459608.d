/root/repo/target/release/deps/newton_packet-e1d181aa6f459608.d: crates/packet/src/lib.rs crates/packet/src/field.rs crates/packet/src/flow.rs crates/packet/src/headers.rs crates/packet/src/packet.rs crates/packet/src/snapshot.rs crates/packet/src/wire.rs

/root/repo/target/release/deps/libnewton_packet-e1d181aa6f459608.rlib: crates/packet/src/lib.rs crates/packet/src/field.rs crates/packet/src/flow.rs crates/packet/src/headers.rs crates/packet/src/packet.rs crates/packet/src/snapshot.rs crates/packet/src/wire.rs

/root/repo/target/release/deps/libnewton_packet-e1d181aa6f459608.rmeta: crates/packet/src/lib.rs crates/packet/src/field.rs crates/packet/src/flow.rs crates/packet/src/headers.rs crates/packet/src/packet.rs crates/packet/src/snapshot.rs crates/packet/src/wire.rs

crates/packet/src/lib.rs:
crates/packet/src/field.rs:
crates/packet/src/flow.rs:
crates/packet/src/headers.rs:
crates/packet/src/packet.rs:
crates/packet/src/snapshot.rs:
crates/packet/src/wire.rs:
