/root/repo/target/release/deps/newton_dataplane-a4e038dd6760816e.d: crates/dataplane/src/lib.rs crates/dataplane/src/debug.rs crates/dataplane/src/exec.rs crates/dataplane/src/init.rs crates/dataplane/src/layout.rs crates/dataplane/src/mirror.rs crates/dataplane/src/modules.rs crates/dataplane/src/phv.rs crates/dataplane/src/resources.rs crates/dataplane/src/rules.rs crates/dataplane/src/switch.rs

/root/repo/target/release/deps/libnewton_dataplane-a4e038dd6760816e.rlib: crates/dataplane/src/lib.rs crates/dataplane/src/debug.rs crates/dataplane/src/exec.rs crates/dataplane/src/init.rs crates/dataplane/src/layout.rs crates/dataplane/src/mirror.rs crates/dataplane/src/modules.rs crates/dataplane/src/phv.rs crates/dataplane/src/resources.rs crates/dataplane/src/rules.rs crates/dataplane/src/switch.rs

/root/repo/target/release/deps/libnewton_dataplane-a4e038dd6760816e.rmeta: crates/dataplane/src/lib.rs crates/dataplane/src/debug.rs crates/dataplane/src/exec.rs crates/dataplane/src/init.rs crates/dataplane/src/layout.rs crates/dataplane/src/mirror.rs crates/dataplane/src/modules.rs crates/dataplane/src/phv.rs crates/dataplane/src/resources.rs crates/dataplane/src/rules.rs crates/dataplane/src/switch.rs

crates/dataplane/src/lib.rs:
crates/dataplane/src/debug.rs:
crates/dataplane/src/exec.rs:
crates/dataplane/src/init.rs:
crates/dataplane/src/layout.rs:
crates/dataplane/src/mirror.rs:
crates/dataplane/src/modules.rs:
crates/dataplane/src/phv.rs:
crates/dataplane/src/resources.rs:
crates/dataplane/src/rules.rs:
crates/dataplane/src/switch.rs:
