/root/repo/target/release/deps/newton_trace-57284905fdefe023.d: crates/trace/src/lib.rs crates/trace/src/attacks.rs crates/trace/src/background.rs crates/trace/src/pcap.rs crates/trace/src/presets.rs crates/trace/src/stats.rs crates/trace/src/trace.rs crates/trace/src/zipf.rs

/root/repo/target/release/deps/libnewton_trace-57284905fdefe023.rlib: crates/trace/src/lib.rs crates/trace/src/attacks.rs crates/trace/src/background.rs crates/trace/src/pcap.rs crates/trace/src/presets.rs crates/trace/src/stats.rs crates/trace/src/trace.rs crates/trace/src/zipf.rs

/root/repo/target/release/deps/libnewton_trace-57284905fdefe023.rmeta: crates/trace/src/lib.rs crates/trace/src/attacks.rs crates/trace/src/background.rs crates/trace/src/pcap.rs crates/trace/src/presets.rs crates/trace/src/stats.rs crates/trace/src/trace.rs crates/trace/src/zipf.rs

crates/trace/src/lib.rs:
crates/trace/src/attacks.rs:
crates/trace/src/background.rs:
crates/trace/src/pcap.rs:
crates/trace/src/presets.rs:
crates/trace/src/stats.rs:
crates/trace/src/trace.rs:
crates/trace/src/zipf.rs:
