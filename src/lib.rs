//! Newton suite: examples and integration tests live in this package.
