#!/usr/bin/env bash
# Smoke-test the resident controller end to end, as CI's newtond-smoke
# job: boot the release daemon on an ephemeral port, drive it through an
# operator round trip with the --client CLI (ping → install → list →
# run → report → shutdown), and require a clean daemon exit. Every step
# runs under a timeout so a wedged daemon fails the job instead of
# hanging it.
set -euo pipefail

STEP_TIMEOUT="${STEP_TIMEOUT:-60}"
BOOT_TIMEOUT="${BOOT_TIMEOUT:-30}"
WORKDIR="$(mktemp -d)"
PORT_FILE="$WORKDIR/port"
DAEMON_LOG="$WORKDIR/daemon.log"
trap 'kill "$DAEMON_PID" 2>/dev/null || true; rm -rf "$WORKDIR"' EXIT

cargo build --release -p newtond

BIN=target/release/newtond
"$BIN" --listen 127.0.0.1:0 --port-file "$PORT_FILE" \
    --topology chain:4 --slots 4 >"$DAEMON_LOG" 2>&1 &
DAEMON_PID=$!

# Wait for the port file (written atomically once the socket is bound).
for _ in $(seq 1 $((BOOT_TIMEOUT * 10))); do
    [ -s "$PORT_FILE" ] && break
    kill -0 "$DAEMON_PID" 2>/dev/null || {
        echo "daemon died during boot:"
        cat "$DAEMON_LOG"
        exit 1
    }
    sleep 0.1
done
[ -s "$PORT_FILE" ] || { echo "daemon never wrote $PORT_FILE"; exit 1; }
ADDR="$(cat "$PORT_FILE")"
echo "daemon up on $ADDR (pid $DAEMON_PID)"

client() {
    timeout "$STEP_TIMEOUT" "$BIN" --client "$ADDR" "$@"
}

client ping
INSTALL_OUT="$(client install smoke_scan \
    'filter(proto == 6) | filter(tcp.flags == 2) | map(dip) | reduce(dip, count) | where >= 40')"
echo "install: $INSTALL_OUT"
grep -q '"slot":' <<<"$INSTALL_OUT" || { echo "install lost its slot"; exit 1; }

LIST_OUT="$(client list)"
echo "list: $LIST_OUT"
grep -q '"in_use":1' <<<"$LIST_OUT" || { echo "inventory disagrees"; exit 1; }

RUN_OUT="$(client run 2)"
echo "run: $RUN_OUT"
grep -q '"packets":' <<<"$RUN_OUT" || { echo "run returned no packet count"; exit 1; }

REPORT_OUT="$(client report)"
echo "report: $REPORT_OUT"
PACKETS="$(sed -n 's/.*"packets":\([0-9]*\).*/\1/p' <<<"$RUN_OUT")"
grep -q "\"packets\":$PACKETS" <<<"$REPORT_OUT" || {
    echo "report does not match the run it summarizes"
    exit 1
}
grep -q '"cache":{' <<<"$REPORT_OUT" || { echo "report lost its cache stats"; exit 1; }
grep -q '"channel":{' <<<"$REPORT_OUT" || { echo "report lost its channel stats"; exit 1; }

# Live metrics: the JSON snapshot carries the per-op request histograms
# fed by the steps above, and the install the controller timed.
METRICS_OUT="$(client metrics)"
echo "metrics: ${METRICS_OUT:0:200}..."
for key in '"histograms"' '"daemon_request_ns_ping"' '"daemon_request_ns_run"' \
    '"controller_install_ns"' '"daemon_active_connections"' '"channel_bytes_total"'; do
    grep -q "$key" <<<"$METRICS_OUT" || { echo "metrics snapshot missing $key"; exit 1; }
done

# The same registry in the Prometheus text format: HELP/TYPE pairs
# present, and every histogram's cumulative buckets monotone with the
# +Inf bucket equal to _count.
PROM_OUT="$(client metrics --prom)"
grep -q '^# HELP daemon_request_ns_run ' <<<"$PROM_OUT" || { echo "missing HELP line"; exit 1; }
grep -q '^# TYPE daemon_request_ns_run histogram$' <<<"$PROM_OUT" || {
    echo "missing TYPE line"
    exit 1
}
awk '
    /_bucket\{le="/ {
        name = $1; sub(/\{.*/, "", name)
        if (name == prev && $2 + 0 < last + 0) {
            print "non-monotone buckets in " name; exit 1
        }
        prev = name; last = $2; inf[name] = $2
        next
    }
    /_count / {
        name = $1; sub(/_count$/, "", name); name = name "_bucket"
        if (inf[name] != "" && inf[name] + 0 != $2 + 0) {
            print "+Inf bucket disagrees with _count for " $1; exit 1
        }
    }
' <<<"$PROM_OUT" || exit 1
echo "prometheus rendering OK ($(grep -c '^# TYPE' <<<"$PROM_OUT") metrics)"

client shutdown

# The daemon must exit on its own after shutdown.
if ! timeout "$STEP_TIMEOUT" tail --pid="$DAEMON_PID" -f /dev/null; then
    echo "daemon still running after shutdown:"
    cat "$DAEMON_LOG"
    exit 1
fi
wait "$DAEMON_PID" || { echo "daemon exited non-zero"; cat "$DAEMON_LOG"; exit 1; }
echo "newtond smoke OK"
