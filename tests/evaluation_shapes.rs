//! Fast shape guards for every reproduced table/figure, so `cargo test`
//! alone protects the evaluation (the bench targets assert the same claims
//! at full scale; these run in milliseconds at reduced scale).

use newton::analyzer::DetectionMetrics;
use newton::baselines::{ExportModel, RebootModel, StarFlow, TurboFlow};
use newton::compiler::{compile, p_newton, s_newton, sonata_estimate, stats_for, CompilerConfig};
use newton::controller::{place_query, RuleTimingModel};
use newton::dataplane::resources::{module_costs, SWITCH_P4_REFERENCE};
use newton::dataplane::{Layout, LayoutKind, PipelineConfig, Switch};
use newton::net::Topology;
use newton::packet::{Field, FieldVector};
use newton::query::{catalog, Interpreter};
use std::collections::HashSet;

/// Table 3: compact layout quadruples per-stage utilization; per-module
/// profile matches the paper's structure.
#[test]
fn table3_shape() {
    let naive = Layout::new(LayoutKind::Naive, 12).total_cost();
    let compact = Layout::new(LayoutKind::Compact, 12).total_cost();
    let ratio = compact.crossbar / naive.crossbar;
    assert!((3.9..4.1).contains(&ratio));
    let s = module_costs::STATE_BANK.normalized(&SWITCH_P4_REFERENCE);
    assert!(s.salu > 5.0 && s.salu < 6.0, "𝕊 owns ~5.5% of switch.p4's SALUs");
}

/// Fig. 10: Sonata outage seconds-scale and linear; Newton zero.
#[test]
fn fig10_shape() {
    let m = RebootModel::default();
    assert!(m.outage_ms(0, 0) > 7_000.0);
    let d1 = m.outage_ms(20_000, 0) - m.outage_ms(10_000, 0);
    let d2 = m.outage_ms(30_000, 0) - m.outage_ms(20_000, 0);
    assert!((d1 - d2).abs() < 1e-9, "linear in entries");
    assert_eq!(m.newton_outage_ms(), 0.0);
}

/// Fig. 11: every catalog query installs and removes within 20 ms.
#[test]
fn fig11_shape() {
    let cfg = CompilerConfig::default();
    let mut t = RuleTimingModel::new(1);
    for q in catalog::all_queries() {
        let rules = compile(&q, 1, &cfg).rules.total_rule_count();
        assert!(t.install_ms(rules) <= 20.0, "{}", q.name);
        assert!(t.remove_ms(rules) <= 20.0, "{}", q.name);
    }
}

/// Fig. 12: per-packet exporters cost orders of magnitude more than
/// Newton's intent-precise reports on the same workload.
#[test]
fn fig12_shape() {
    let trace = newton::trace::caida_like(3, 10_000);
    let run = |m: &mut dyn ExportModel| -> u64 {
        let mut msgs = 0;
        for e in trace.epochs(100) {
            for p in e {
                msgs += m.observe(p);
            }
            msgs += m.end_epoch();
        }
        msgs
    };
    let star = run(&mut StarFlow::default_model());
    let turbo = run(&mut TurboFlow::default_model());

    // Newton: all nine queries on one pipeline, register slices per query.
    let mut sw = Switch::new(PipelineConfig::default());
    for (i, q) in catalog::all_queries().iter().enumerate() {
        let cfg = CompilerConfig {
            registers_per_array: 455,
            register_offset: i as u32 * 455,
            ..Default::default()
        };
        sw.install(&compile(q, i as u32 + 1, &cfg).rules).unwrap();
    }
    let mut newton_msgs = 0u64;
    for e in trace.epochs(100) {
        for p in e {
            newton_msgs += sw.process(p, None).reports.len() as u64;
        }
        sw.clear_state();
    }
    assert!(star > newton_msgs.max(1) * 100, "*Flow {star} vs Newton {newton_msgs}");
    assert!(turbo > newton_msgs.max(1) * 100, "TurboFlow {turbo} vs Newton {newton_msgs}");
}

/// Fig. 14: pooled CQE registers beat a single switch's memory.
#[test]
fn fig14_shape() {
    let workload = {
        use newton::packet::{PacketBuilder, TcpFlags};
        let mut v = Vec::new();
        for h in 0..400u32 {
            for c in 0..1 + (h * 80) / 400 {
                v.push(
                    PacketBuilder::new()
                        .src_ip(0x0A00_0000 + h * 131 + c)
                        .dst_ip(0xAC10_0000 + h)
                        .src_port((c % 60_000) as u16 + 1_024)
                        .tcp_flags(TcpFlags::SYN)
                        .build(),
                );
            }
        }
        v
    };
    let mut interp = Interpreter::new(catalog::q1_new_tcp());
    for p in &workload {
        interp.observe(p);
    }
    let truth = interp.end_epoch().reported;
    assert!(!truth.is_empty());

    let accuracy = |registers: u32| -> f64 {
        let cfg = CompilerConfig { registers_per_array: registers, ..Default::default() };
        let compiled = compile(&catalog::q1_new_tcp(), 1, &cfg);
        let mut sw = Switch::new(PipelineConfig {
            registers_per_array: registers as usize,
            ..Default::default()
        });
        sw.install(&compiled.rules).unwrap();
        let mut reported = HashSet::new();
        for p in &workload {
            for r in sw.process(p, None).reports {
                reported.insert(FieldVector(r.op_keys).get(Field::DstIp));
            }
        }
        DetectionMetrics::compare(&reported, &truth).accuracy()
    };
    let sonata = accuracy(128);
    let newton3 = accuracy(128 * 3);
    assert!(
        newton3 > sonata,
        "3 switches of pooled memory must beat one ({newton3:.3} vs {sonata:.3})"
    );
}

/// Figs. 15/7: every query fits a Tofino after optimization, beats Sonata's
/// stage estimate, and reductions are substantial.
#[test]
fn fig15_shape() {
    let cfg = CompilerConfig::default();
    for q in catalog::all_queries() {
        let s = stats_for(&q, &cfg);
        assert!(s.final_stages() <= 12, "{}", q.name);
        assert!(s.final_stages() <= sonata_estimate(&q).stages, "{}", q.name);
        assert!(s.module_reduction() > 0.3, "{}", q.name);
        assert!(s.stage_reduction() > 0.5, "{}", q.name);
    }
}

/// Fig. 16: P-Newton constant, S-Newton/Sonata linear.
#[test]
fn fig16_shape() {
    let cfg = CompilerConfig::default();
    let q = catalog::q4_port_scan();
    assert_eq!(p_newton(&q, 1, &cfg).stages, p_newton(&q, 100, &cfg).stages);
    assert_eq!(s_newton(&q, 100, &cfg).stages, 100 * s_newton(&q, 1, &cfg).stages);
}

/// Fig. 17: totals grow with scale; the per-switch average stabilizes.
#[test]
fn fig17_shape() {
    let cfg = CompilerConfig::default();
    let rules = compile(&catalog::q4_port_scan(), 1, &cfg).rules;
    let mut prev_total = 0;
    let mut prev_avg = None::<f64>;
    for k in [4usize, 8] {
        let topo = Topology::fat_tree(k);
        let p = place_query(&rules, &topo, topo.edge_switches(), 5);
        assert!(p.total_entries() > prev_total);
        prev_total = p.total_entries();
        if let Some(a) = prev_avg {
            assert!((p.avg_entries_per_switch() - a).abs() / a < 0.2, "average stabilizes");
        }
        prev_avg = Some(p.avg_entries_per_switch());
    }
}
