//! Partial deployment (§7): Newton coexists with plain switches. Plain
//! hops forward everything (snapshot frames pass through untouched);
//! whole queries keep working from any Newton-enabled edge; and CQE only
//! works across *adjacent* Newton-enabled switches — a plain switch
//! between two slices breaks the chain, exactly as the paper states.

use newton::compiler::CompilerConfig;
use newton::controller::Controller;
use newton::dataplane::PipelineConfig;
use newton::net::{Network, Topology};
use newton::packet::{PacketBuilder, TcpFlags};
use newton::query::catalog;

fn syn(i: u16, dst: u32) -> newton::packet::Packet {
    PacketBuilder::new()
        .src_ip(0x0A00_0000 + i as u32)
        .dst_ip(dst)
        .src_port(1000 + i)
        .tcp_flags(TcpFlags::SYN)
        .build()
}

#[test]
fn whole_query_survives_plain_transit_switches() {
    let mut net = Network::new(Topology::chain(4), PipelineConfig::default());
    let mut ctl = Controller::new(CompilerConfig::default(), 61);
    ctl.install(&catalog::q1_new_tcp(), &mut net, 12).unwrap();
    // The two middle switches are plain (no Newton).
    net.set_newton_enabled(1, false);
    net.set_newton_enabled(2, false);

    let mut reports = 0;
    for i in 0..catalog::thresholds::NEW_TCP as u16 {
        let out = net.deliver(&syn(i, 0xAC10_0077), 0, 3);
        assert!(out.clean_delivery);
        reports += out.reports.len();
    }
    assert_eq!(reports, 1, "the Newton-enabled ingress edge still detects");
    assert_eq!(net.switch(1).forwarded(), 0, "plain switches never run the pipeline");
}

#[test]
fn cqe_requires_adjacent_newton_switches() {
    // Q4 sliced over a 4-chain needs every hop; disabling hop 1 severs the
    // snapshot relay (slice 1 never executes, so slices 2-3 never resume)
    // and the report is lost — the documented adjacency restriction.
    let build = |disable_mid: bool| -> usize {
        let mut net = Network::new(Topology::chain(4), PipelineConfig::default());
        let mut ctl = Controller::new(CompilerConfig::default(), 62);
        let receipt = ctl.install(&catalog::q4_port_scan(), &mut net, 4).unwrap();
        assert_eq!(receipt.slices, 4);
        if disable_mid {
            net.set_newton_enabled(1, false);
        }
        let mut reports = 0;
        for port in 0..catalog::thresholds::PORT_SCAN as u16 {
            let pkt = PacketBuilder::new()
                .src_ip(0xDEAD)
                .dst_ip(0xAC10_0001)
                .src_port(41_000)
                .dst_port(1_000 + port)
                .tcp_flags(TcpFlags::SYN)
                .build();
            reports += net.deliver(&pkt, 0, 3).reports.len();
        }
        reports
    };
    assert_eq!(build(false), 1, "fully-enabled chain detects");
    assert_eq!(build(true), 0, "a plain switch mid-chain severs CQE (paper §7)");
}
