//! Characterization of the §7 limitation: "as for CQE, states in stateful
//! query primitives could be lost in dynamic scenarios where forwarding
//! paths are dynamically altered, and the solo switch query execution
//! model has the same limitation."
//!
//! These tests pin down the *expected* behaviour under path changes — both
//! the failure mode (counts fragment, reports can be missed within the
//! epoch of the change) and the recovery (the next epoch is correct on the
//! new path, with no controller involvement thanks to resilient
//! placement).

use newton::compiler::CompilerConfig;
use newton::controller::Controller;
use newton::dataplane::PipelineConfig;
use newton::net::{EcmpMode, Network, Topology};
use newton::packet::{PacketBuilder, TcpFlags};
use newton::query::catalog;

fn syn(src: u32, dst: u32, sport: u16) -> newton::packet::Packet {
    PacketBuilder::new()
        .src_ip(src)
        .dst_ip(dst)
        .src_port(sport)
        .dst_port(80)
        .tcp_flags(TcpFlags::SYN)
        .build()
}

/// Mid-epoch rerouting can split one flow's state across two paths and
/// miss the threshold crossing — the documented state-loss window.
#[test]
fn mid_epoch_reroute_fragments_state() {
    let topo = Topology::fat_tree(4);
    let (ingress, egress) = (topo.edge_switches()[0], topo.edge_switches()[7]);
    let mut net = Network::new(topo, PipelineConfig::default());
    net.router_mut().set_ecmp_mode(EcmpMode::PairHash);
    let mut ctl = Controller::new(CompilerConfig::default(), 21);
    ctl.install(&catalog::q1_new_tcp(), &mut net, 12).unwrap();

    let victim = 0xAC10_0031;
    let threshold = catalog::thresholds::NEW_TCP as u16;

    // Half the flood, then a failure on the used path, then the other half.
    let mut reports = 0;
    for i in 0..threshold / 2 {
        reports += net
            .deliver(&syn(0x0A000000 + i as u32, victim, 1000 + i), ingress, egress)
            .reports
            .len();
    }
    let probe = syn(1, victim, 1);
    let path = net.router().path(ingress, egress, &probe.flow_key()).unwrap();
    net.router_mut().fail_link(path[1], path[2]);
    for i in threshold / 2..threshold {
        reports += net
            .deliver(&syn(0x0A000000 + i as u32, victim, 1000 + i), ingress, egress)
            .reports
            .len();
    }
    // The counts split across the old and new ingress-edge replicas of the
    // query state... except Q1's state lives at the INGRESS edge switch,
    // which did not change — so this reroute loses nothing and the report
    // still fires. That is exactly why Algorithm 2 anchors slice 0 at the
    // edge.
    assert_eq!(reports, 1, "edge-anchored state survives a core reroute");
}

/// When the INGRESS edge itself changes (traffic enters elsewhere), state
/// fragments and the epoch's report is lost — and the next epoch recovers
/// with zero rule changes.
#[test]
fn ingress_change_loses_the_epoch_but_recovers() {
    let topo = Topology::fat_tree(4);
    let edges = topo.edge_switches().to_vec();
    let (in_a, in_b, egress) = (edges[0], edges[1], edges[7]);
    let mut net = Network::new(topo, PipelineConfig::default());
    let mut ctl = Controller::new(CompilerConfig::default(), 22);
    ctl.install(&catalog::q1_new_tcp(), &mut net, 12).unwrap();

    let victim = 0xAC10_0032;
    let threshold = catalog::thresholds::NEW_TCP as u16;

    // Epoch 1: the host's attachment point migrates mid-epoch (e.g. a LAG
    // failover): half the SYNs enter at edge A, half at edge B.
    let mut reports = 0;
    for i in 0..threshold {
        let ingress = if i < threshold / 2 { in_a } else { in_b };
        reports += net
            .deliver(&syn(0x0B000000 + i as u32, victim, 2000 + i), ingress, egress)
            .reports
            .len();
    }
    assert_eq!(reports, 0, "fragmented state must miss the threshold (documented loss)");

    // Epoch 2: stable on edge B — correct again without any rule change.
    net.clear_state();
    let mut reports = 0;
    for i in 0..threshold {
        reports +=
            net.deliver(&syn(0x0C000000 + i as u32, victim, 3000 + i), in_b, egress).reports.len();
    }
    assert_eq!(reports, 1, "resilient placement recovers on the next epoch");
}
