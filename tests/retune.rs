//! In-place threshold retuning: the cheapest form of the paper's "update
//! monitoring tasks" — one or two rule modifications, epoch state intact.

use newton::compiler::CompilerConfig;
use newton::controller::Controller;
use newton::dataplane::PipelineConfig;
use newton::net::{Network, Topology};
use newton::packet::{PacketBuilder, TcpFlags};
use newton::query::catalog;

fn syn(i: u16, dst: u32) -> newton::packet::Packet {
    PacketBuilder::new()
        .src_ip(0x0A00_0000 + i as u32)
        .dst_ip(dst)
        .src_port(5_000 + i)
        .tcp_flags(TcpFlags::SYN)
        .build()
}

#[test]
fn retuning_applies_immediately_and_keeps_state() {
    let mut net = Network::new(Topology::chain(2), PipelineConfig::default());
    let mut ctl = Controller::new(CompilerConfig::default(), 71);
    let receipt = ctl.install(&catalog::q1_new_tcp(), &mut net, 12).unwrap();

    // 25 SYNs: below the default threshold of 40.
    let victim = 0xAC10_0042;
    let mut reports = 0;
    for i in 0..25 {
        reports += net.deliver(&syn(i, victim), 0, 1).reports.len();
    }
    assert_eq!(reports, 0);

    // Drill down: drop the threshold to 30 — WITHOUT reinstalling, so the
    // 25 already-counted connections still count.
    let retune = ctl.retune_threshold(receipt.id, 30, &mut net).expect("query installed");
    assert!(retune.rules >= 1, "at least the reporting rule was modified");
    assert!(
        retune.delay_ms < receipt.delay_ms,
        "retune ({:.1} ms) must be cheaper than install ({:.1} ms)",
        retune.delay_ms,
        receipt.delay_ms
    );

    // 5 more SYNs cross the NEW threshold at exactly 30 — proof the old
    // state survived the retune.
    for i in 25..30 {
        reports += net.deliver(&syn(i, victim), 0, 1).reports.len();
    }
    assert_eq!(reports, 1, "crossing fires at the retuned threshold with preserved state");
}

#[test]
fn retuning_a_merged_query_moves_the_global_threshold() {
    let mut net = Network::new(Topology::chain(2), PipelineConfig::default());
    let mut ctl = Controller::new(CompilerConfig::default(), 72);
    let receipt = ctl.install(&catalog::q6_syn_flood(), &mut net, 12).unwrap();

    let victim = 0xAC10_0066;
    // Lower the flood threshold from 40 to 10.
    ctl.retune_threshold(receipt.id, 10, &mut net).unwrap();
    let mut reports = 0;
    for i in 0..12 {
        reports += net.deliver(&syn(i, victim), 0, 1).reports.len();
    }
    // The crossing window is POLLUTION_SLACK + 1 wide, so a key that keeps
    // transmitting reports once per packet while inside it; the analyzer
    // deduplicates. What matters here: it fires at the NEW threshold.
    let window = 1 + newton::compiler::POLLUTION_SLACK as usize;
    assert!(
        (1..=window).contains(&reports),
        "the merged (global) threshold was retuned (got {reports} reports)"
    );
}

#[test]
fn retuning_unknown_query_is_a_structured_error() {
    let mut net = Network::new(Topology::chain(2), PipelineConfig::default());
    let mut ctl = Controller::new(CompilerConfig::default(), 73);
    assert_eq!(
        ctl.retune_threshold(99, 5, &mut net),
        Err(newton::controller::RetuneError::UnknownQuery(99))
    );
}

#[test]
fn retuning_beyond_u32_is_rejected_at_the_boundary() {
    // The silent-wrap regression: `as u32` used to turn u32::MAX + 1 into
    // threshold 0, reporting every key. The boundary itself must work,
    // one past it must be a structured rejection that changes nothing.
    let mut net = Network::new(Topology::chain(2), PipelineConfig::default());
    let mut ctl = Controller::new(CompilerConfig::default(), 74);
    let receipt = ctl.install(&catalog::q1_new_tcp(), &mut net, 12).unwrap();

    assert!(ctl.retune_threshold(receipt.id, u64::from(u32::MAX), &mut net).is_ok());
    let err = ctl.retune_threshold(receipt.id, u64::from(u32::MAX) + 1, &mut net).unwrap_err();
    assert_eq!(
        err,
        newton::controller::RetuneError::ThresholdOutOfRange {
            requested: u64::from(u32::MAX) + 1,
            max: u32::MAX,
        }
    );

    // With the threshold pinned at the ceiling, a small burst must NOT
    // report — under the wrap bug (threshold 0) every SYN reported.
    let mut reports = 0;
    for i in 0..25 {
        reports += net.deliver(&syn(i, 0xAC10_0099), 0, 1).reports.len();
    }
    assert_eq!(reports, 0, "a u32::MAX threshold never fires on 25 SYNs");
}
