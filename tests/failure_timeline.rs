//! Fig. 9-style failure timeline, scripted end to end: a switch that is
//! the *sole* holder of a query slice crashes mid-trace, reboots blank,
//! and only the controller's repair loop brings detection back.
//!
//! Topology: one monitored edge (switch 0) with two redundant paths to
//! the egress — so routing survives everything except the monitored
//! edge itself dying:
//!
//! ```text
//!        1 --- 3
//!       /       \
//!      0         5        edge-marked: {0}
//!       \       /
//!        2 --- 4
//! ```
//!
//! Timeline (epoch = 100 ms, four epochs, one port scan per epoch):
//!
//! * epoch 0 — healthy; the scan is detected in hardware.
//! * t = 100 ms — `FailSwitch{0}`: the edge reboots, losing its rules
//!   (one state-loss event). Every packet is unrouted (the fixed ingress
//!   is down); the repair pass cannot re-place (no live edge) and
//!   degrades the query to the software interpreter, which still
//!   detects epoch 1's scanner.
//! * t = 200 ms — `RestoreSwitch{0}`: the switch returns *blank*. Repair
//!   re-places the orphaned slice (charging rule-channel delay) and the
//!   software twin retires at the epoch boundary.
//! * epochs 2-3 — detection is back at pre-failure accuracy, in
//!   hardware.
//!
//! Without repair (`set_repair(false)`) the same schedule loses every
//! detection after epoch 0: unrouted during the outage, a blank switch
//! forever after. The with-repair run must also be bit-identical across
//! thread counts {1, 2, 4, 8}.

use newton::net::{EventSchedule, NetworkEvent, Parallelism, Topology};
use newton::query::catalog;
use newton::trace::attacks::InjectSpec;
use newton::trace::background::TraceConfig;
use newton::trace::{AttackKind, Trace};
use newton::{HostMapping, NewtonSystem, RunReport};
use std::collections::{BTreeMap, BTreeSet};

const EPOCH_MS: u64 = 100;
// 1 ns past the epoch-0/1 boundary: the crash belongs to epoch 1, so
// epoch 0's end-of-epoch register probe still sees intact state. (An
// event at exactly the boundary fires before the probe — hardware loses
// state before the epoch read-out.)
const FAIL_NS: u64 = 100_000_001;
const RESTORE_NS: u64 = 200_000_000;

/// Two disjoint paths 0→5; only switch 0 is a monitored edge, so it is
/// the sole holder of every query's slice 0.
fn sole_edge_topo() -> Topology {
    let mut t = Topology::new("sole-edge-diamond", 6);
    t.add_link(0, 1);
    t.add_link(0, 2);
    t.add_link(1, 3);
    t.add_link(2, 4);
    t.add_link(3, 5);
    t.add_link(4, 5);
    t.mark_edge(0);
    t
}

/// One port scan per 100 ms epoch (the injector's attacker IP is fixed,
/// so every epoch's scan comes from the same scanner — one incident
/// whose per-epoch coverage is the detection record). Returns
/// (trace, scanner IP).
fn scan_every_epoch() -> (Trace, u32) {
    let mut trace = Trace::background(&TraceConfig {
        packets: 4_000,
        flows: 300,
        duration_ms: 400,
        ..Default::default()
    });
    let mut scanner = 0;
    for epoch in 0..4u64 {
        scanner = trace
            .inject(
                AttackKind::PortScan,
                &InjectSpec {
                    seed: 11 + epoch,
                    intensity: 120,
                    start_ns: epoch * 100_000_000 + 5_000_000,
                    window_ns: 85_000_000,
                },
            )
            .guilty;
    }
    (trace, scanner)
}

fn schedule() -> EventSchedule {
    EventSchedule::new()
        .at(FAIL_NS, NetworkEvent::FailSwitch { s: 0 })
        .at(RESTORE_NS, NetworkEvent::RestoreSwitch { s: 0 })
}

fn run(trace: &Trace, repair: bool, threads: usize) -> (u32, RunReport) {
    let mut sys = NewtonSystem::new(sole_edge_topo());
    sys.set_mapping(HostMapping::Fixed { ingress: 0, egress: 5 });
    sys.set_parallelism(Parallelism::new(threads));
    sys.set_repair(repair);
    let receipt = sys.install(&catalog::q4_port_scan()).unwrap();
    let mut events = schedule();
    let report = sys.run_trace_with_events(trace, EPOCH_MS, &mut events);
    assert_eq!(events.pending(), 0, "all scheduled events fired");
    (receipt.id, report)
}

/// The scanner's incident for `query`: (first_epoch, last_epoch,
/// epochs_reported) — the per-epoch detection record.
fn scanner_incident(report: &RunReport, query: u32, key: u64) -> (usize, usize, usize) {
    let i = report
        .incidents
        .incidents()
        .into_iter()
        .find(|i| i.query == query && i.key == key)
        .expect("the scanner was detected at least once");
    (i.first_epoch, i.last_epoch, i.epochs_reported)
}

#[test]
fn repair_restores_detection_after_a_switch_reboot() {
    let (trace, scanner) = scan_every_epoch();
    let (id, report) = run(&trace, true, 1);
    assert_eq!(report.epochs.len(), 4);

    // Every epoch detects: epoch 0 in hardware, epoch 1 by the degraded
    // software twin, epochs 2-3 in re-placed hardware at pre-failure
    // accuracy.
    assert_eq!(
        scanner_incident(&report, id, scanner as u64),
        (0, 3, 4),
        "scanner {scanner:#x} must be reported in all four epochs"
    );

    assert_eq!(report.state_loss_events, 1, "the crash wiped installed rules exactly once");
    assert!(report.unrouted > 0, "the outage window dropped traffic at the dead ingress");
    assert_eq!(report.repairs, 1, "the restored-blank switch was re-placed");
    assert!(report.repair_delay_ms > 0.0, "rule pushes cost modelled channel time");
    assert_eq!(
        report.degraded_query_epochs, 1,
        "software degradation covered exactly the outage epoch"
    );
}

#[test]
fn without_repair_the_query_dies_with_its_switch() {
    let (trace, scanner) = scan_every_epoch();
    let (id, report) = run(&trace, false, 1);
    assert_eq!(report.epochs.len(), 4);

    // Epoch 0 is pre-failure and detects; after the crash nothing ever
    // detects again — epoch 1's packets are unrouted and the rebooted
    // switch stays blank for epochs 2-3.
    assert_eq!(
        scanner_incident(&report, id, scanner as u64),
        (0, 0, 1),
        "detection must die with the switch when repair is off"
    );

    assert_eq!(report.state_loss_events, 1);
    assert!(report.unrouted > 0);
    assert_eq!(report.repairs, 0, "repair was disabled");
    assert_eq!(report.repair_delay_ms, 0.0);
    assert_eq!(report.degraded_query_epochs, 0, "no software fallback without the repair loop");
}

#[test]
fn failure_timeline_is_thread_count_invariant() {
    let (trace, _) = scan_every_epoch();
    let runs: Vec<_> = [1usize, 2, 4, 8]
        .into_iter()
        .map(|threads| {
            let (_, r) = run(&trace, true, threads);
            let reported: BTreeMap<u32, BTreeSet<u64>> =
                r.reported.iter().map(|(&id, keys)| (id, keys.iter().copied().collect())).collect();
            (threads, reported, r)
        })
        .collect();

    let (_, base_reported, base) = &runs[0];
    assert!(base.repairs >= 1 && base.unrouted > 0, "scenario exercised the failure path");
    for (threads, reported, r) in &runs[1..] {
        assert_eq!(reported, base_reported, "detections diverged at {threads} threads");
        assert_eq!(
            (r.packets, &r.epochs, r.snapshot_bytes, r.messages),
            (base.packets, &base.epochs, base.snapshot_bytes, base.messages),
            "traffic accounting diverged at {threads} threads"
        );
        assert_eq!(
            (r.unrouted, r.repairs, r.degraded_query_epochs, r.state_loss_events),
            (base.unrouted, base.repairs, base.degraded_query_epochs, base.state_loss_events),
            "failure accounting diverged at {threads} threads"
        );
        assert_eq!(
            r.repair_delay_ms.to_bits(),
            base.repair_delay_ms.to_bits(),
            "repair delay diverged at {threads} threads"
        );
    }
}
