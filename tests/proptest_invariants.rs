//! Property-based invariants over the core data structures and the
//! compiler, on randomized inputs.

use newton::compiler::{compile, compile_sliced, CompilerConfig, OptLevel};
use newton::packet::{
    Field, FieldVector, Packet, PacketBuilder, Protocol, SnapshotHeader, TcpFlags,
};
use newton::query::ast::{CmpOp, ReduceFunc};
use newton::query::QueryBuilder;
use newton::sketch::{BloomFilter, CountMinSketch};
use proptest::prelude::*;

fn arb_packet() -> impl Strategy<Value = newton::packet::Packet> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u16>(),
        any::<u16>(),
        prop_oneof![Just(Protocol::Tcp), Just(Protocol::Udp), Just(Protocol::Icmp)],
        any::<u8>(),
        64u16..1514,
    )
        .prop_map(|(sip, dip, sp, dp, proto, flags, len)| {
            let mut b = PacketBuilder::new()
                .src_ip(sip)
                .dst_ip(dip)
                .src_port(sp)
                .dst_port(dp)
                .protocol(proto)
                .wire_len(len);
            if proto == Protocol::Tcp {
                b = b.tcp_flags(TcpFlags::from_bits(flags & 0x3F));
            }
            b.build()
        })
}

proptest! {
    /// The field vector is a faithful, invertible packing of every field.
    #[test]
    fn field_vector_roundtrips(pkt in arb_packet()) {
        let v = FieldVector::from_packet(&pkt);
        prop_assert_eq!(v.get(Field::SrcIp), pkt.src_ip as u64);
        prop_assert_eq!(v.get(Field::DstIp), pkt.dst_ip as u64);
        prop_assert_eq!(v.get(Field::SrcPort), pkt.src_port as u64);
        prop_assert_eq!(v.get(Field::DstPort), pkt.dst_port as u64);
        prop_assert_eq!(v.get(Field::PktLen), pkt.wire_len as u64);
        prop_assert_eq!(v.get(Field::Proto), pkt.protocol.number() as u64);
        prop_assert_eq!(v.get(Field::TcpFlags), pkt.tcp_flags.bits() as u64);
    }

    /// Wire encode/decode is lossless, snapshot or not.
    #[test]
    fn frames_roundtrip(pkt in arb_packet(), with_sp in any::<bool>(), cursor in 0u8..5) {
        let sp = with_sp.then_some(SnapshotHeader {
            cursor,
            active_mask: 0b111,
            hash_result: 42,
            state_result: 7,
            global_result: 9,
        });
        let bytes = newton::packet::wire::encode(&pkt, sp.as_ref());
        let frame = newton::packet::wire::decode(&bytes).unwrap();
        prop_assert_eq!(frame.snapshot, sp);
        prop_assert_eq!(frame.packet.src_ip, pkt.src_ip);
        prop_assert_eq!(frame.packet.tcp_flags, pkt.tcp_flags);
        // Ports only exist on the wire for TCP/UDP.
        if matches!(pkt.protocol, Protocol::Tcp | Protocol::Udp) {
            prop_assert_eq!(frame.packet.dst_port, pkt.dst_port);
            prop_assert_eq!(frame.packet.src_port, pkt.src_port);
        } else {
            prop_assert_eq!(frame.packet.dst_port, 0);
        }
    }

    /// Count-Min never underestimates, for arbitrary key/count streams.
    #[test]
    fn cms_never_underestimates(
        stream in prop::collection::vec((0u128..64, 1u32..16), 1..300),
        width in 8u32..256,
        depth in 1usize..4,
    ) {
        let mut cm = CountMinSketch::new(depth, width, 0xFEED);
        let mut truth = std::collections::HashMap::new();
        for &(k, c) in &stream {
            cm.update(k, c);
            *truth.entry(k).or_insert(0u64) += c as u64;
        }
        for (&k, &t) in &truth {
            prop_assert!(cm.query(k) as u64 >= t);
        }
    }

    /// Bloom filters have no false negatives, for arbitrary insert sets.
    #[test]
    fn bloom_has_no_false_negatives(
        keys in prop::collection::hash_set(any::<u128>(), 1..200),
        bits in 64u32..4096,
        k in 1usize..5,
    ) {
        let mut bf = BloomFilter::new(k, bits, 3);
        for &key in &keys {
            bf.insert(key);
        }
        for &key in &keys {
            prop_assert!(bf.contains(key));
        }
    }

    /// Randomly-shaped single-branch queries always compile, pack without
    /// hazards, and slice within any budget.
    #[test]
    fn random_queries_compile_and_slice(
        proto in prop_oneof![Just(6u64), Just(17u64)],
        key in prop_oneof![Just(Field::SrcIp), Just(Field::DstIp)],
        use_distinct in any::<bool>(),
        threshold in 1u64..1000,
        budget in 2usize..8,
    ) {
        let mut b = QueryBuilder::new("random")
            .filter_eq(Field::Proto, proto)
            .map(&[key]);
        if use_distinct {
            b = b.distinct(&[key, Field::SrcPort]);
        }
        let q = b
            .reduce(&[key], ReduceFunc::Count)
            .result_filter(CmpOp::Ge, threshold)
            .build();

        let cfg = CompilerConfig::default();
        let c = compile(&q, 1, &cfg);
        prop_assert!(c.rules.module_rule_count() > 0);
        prop_assert!(c.composition.stages() <= c.composition.modules());

        let sliced = compile_sliced(&q, 1, &cfg, budget);
        for count in &sliced.slice_stage_counts {
            prop_assert!(*count <= budget);
        }
        // Optimization ladder is monotone for arbitrary queries too.
        let stats = &c.stats;
        for w in stats.levels.windows(2) {
            prop_assert!(w[1].1 <= w[0].1);
            prop_assert!(w[1].2 <= w[0].2);
        }
        let _ = OptLevel::ladder();
    }

    /// Placement covers all path prefixes on random chain lengths/budgets.
    #[test]
    fn chain_placement_prefix_property(n in 2usize..8, budget in 1usize..6) {
        use newton::controller::place_query;
        use newton::net::Topology;
        let q = newton::query::catalog::q1_new_tcp();
        let rules = compile(&q, 1, &CompilerConfig::default()).rules;
        let topo = Topology::chain(n);
        let p = place_query(&rules, &topo, &[0], budget);
        for d in 0..p.slice_count.min(n) {
            prop_assert!(p.slices[d].contains(&d), "depth {d} missing slice {d}");
        }
    }
}

proptest! {
    /// The pcap reader never panics on arbitrary bytes — it errors.
    #[test]
    fn pcap_reader_is_total_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..600)) {
        let _ = newton::trace::pcap::read_pcap(&bytes[..]);
    }

    /// Valid pcap files with arbitrary packet mixes roundtrip.
    #[test]
    fn pcap_roundtrips_arbitrary_packets(packets in prop::collection::vec(arb_stream_packet(), 0..40)) {
        let mut buf = Vec::new();
        newton::trace::pcap::write_pcap(&mut buf, &packets).unwrap();
        let back = newton::trace::pcap::read_pcap(&buf[..]).unwrap();
        prop_assert_eq!(back.len(), packets.len());
        for (a, b) in packets.iter().zip(&back) {
            prop_assert_eq!(a.flow_key(), b.flow_key());
            prop_assert_eq!(a.tcp_flags, b.tcp_flags);
        }
    }
}

/// A single arbitrary packet (shared by the pcap roundtrip property).
fn arb_stream_packet() -> impl Strategy<Value = Packet> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u16>(),
        any::<u16>(),
        any::<bool>(),
        any::<u8>(),
        64u16..1514,
    )
        .prop_map(|(s, d, sp, dp, tcp, flags, len)| {
            let mut b =
                PacketBuilder::new().src_ip(s).dst_ip(d).src_port(sp).dst_port(dp).wire_len(len);
            if tcp {
                b = b.tcp_flags(TcpFlags::from_bits(flags & 0x3F));
            } else {
                b = b.protocol(Protocol::Udp);
            }
            b.build()
        })
}

proptest! {
    /// Any query expressible in the textual grammar roundtrips through
    /// `to_text` → `parse_query` unchanged.
    #[test]
    fn query_text_roundtrips(
        proto in prop_oneof![Just(6u64), Just(17u64)],
        key in prop_oneof![Just(Field::SrcIp), Just(Field::DstIp), Just(Field::DstPort)],
        prefix_bits in 1u32..=32,
        use_distinct in any::<bool>(),
        func_sel in 0u8..3,
        threshold in 1u64..10_000,
        two_branches in any::<bool>(),
    ) {
        use newton::query::ast::FieldExpr;
        let fe = FieldExpr::prefix(key, prefix_bits.min(key.width()));
        let func = match func_sel {
            0 => ReduceFunc::Count,
            1 => ReduceFunc::SumField(Field::PktLen),
            _ => ReduceFunc::MaxField(Field::PktLen),
        };
        let mut b = QueryBuilder::new("t")
            .filter_eq(Field::Proto, proto)
            .map_exprs(vec![fe]);
        if use_distinct {
            b = b.distinct(&[key, Field::SrcPort]);
        }
        b = b.reduce_exprs(vec![fe], func).result_filter(CmpOp::Ge, threshold);
        let q = if two_branches {
            b.branch()
                .filter_eq(Field::Proto, if proto == 6 { 17 } else { 6 })
                .reduce(&[key], ReduceFunc::Count)
                .merge_combine(newton::query::ast::MergeOp::Min, CmpOp::Ge, threshold)
                .build()
        } else {
            b.build()
        };
        let text = newton::query::to_text(&q);
        let back = newton::query::parse_query("t", &text).map_err(|e| {
            TestCaseError::fail(format!("{e}\n{text}"))
        })?;
        prop_assert_eq!(back, q, "text was:\n{}", text);
    }
}
