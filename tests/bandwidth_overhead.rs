//! The §5.1 bandwidth claim: "we only need to reserve 12 bytes for SP and
//! incur less than 1% bandwidth overhead (assume 1500 bytes per packet),
//! when packets need to execute queries cross switches."

use newton::compiler::CompilerConfig;
use newton::controller::Controller;
use newton::dataplane::PipelineConfig;
use newton::net::{Network, Topology};
use newton::packet::{PacketBuilder, TcpFlags};
use newton::query::catalog;

#[test]
fn snapshot_overhead_stays_below_one_percent_at_mtu() {
    let mut net = Network::new(Topology::chain(4), PipelineConfig::default());
    let mut ctl = Controller::new(CompilerConfig::default(), 44);
    // Slice Q4 so the snapshot rides every internal link.
    let receipt = ctl.install(&catalog::q4_port_scan(), &mut net, 4).unwrap();
    assert!(receipt.slices >= 2);

    for i in 0..2_000u16 {
        let pkt = PacketBuilder::new()
            .src_ip(0x0A00_0001)
            .dst_ip(0xAC10_0001)
            .src_port(41_000)
            .dst_port(1 + i)
            .tcp_flags(TcpFlags::SYN)
            .wire_len(1500) // MTU-sized, as the paper assumes
            .build();
        net.deliver(&pkt, 0, 3);
    }

    let peak = net.peak_link_overhead();
    assert!(peak > 0.0, "snapshots must actually be on the wire");
    assert!(peak < 0.01, "snapshot overhead {peak:.4} must stay below 1% at 1500 B");

    // Every internal link carried both payload and snapshots.
    for (a, b) in [(0, 1), (1, 2), (2, 3)] {
        let load = net.link_load(a, b);
        assert!(load.payload_bytes > 0);
        assert!(load.snapshot_bytes > 0, "link ({a},{b}) missing snapshot traffic");
        assert_eq!(load.snapshot_bytes, 12 * 2_000);
    }
}

#[test]
fn unmonitored_traffic_carries_no_snapshot_bytes() {
    let mut net = Network::new(Topology::chain(3), PipelineConfig::default());
    let mut ctl = Controller::new(CompilerConfig::default(), 45);
    // Q5 monitors UDP only; TCP traffic must stay header-free.
    ctl.install(&catalog::q5_udp_ddos(), &mut net, 12).unwrap();
    for i in 0..500u16 {
        let pkt =
            PacketBuilder::new().src_port(1000 + i).tcp_flags(TcpFlags::ACK).wire_len(1500).build();
        net.deliver(&pkt, 0, 2);
    }
    assert_eq!(net.peak_link_overhead(), 0.0, "TCP packets must not carry the SP header");
}
