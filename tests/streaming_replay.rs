//! Streamed replay is the *same execution* as materialized replay: for
//! any pool shape (inline, one producer, many producers) × queue depth ×
//! thread count — with or without a failure schedule — `run_stream` must
//! produce a `RunReport` equal field-for-field and a telemetry journal
//! identical byte-for-byte to `run_trace` over the materialized twin of
//! the same `StreamConfig`. Backpressure stalls, producer interleavings,
//! and segment-boundary batch flushes must all be unobservable in modeled
//! time.
//!
//! The epoch length is chosen to NOT divide the segment length, so epoch
//! windows straddle segment boundaries and the mid-window hand-off path
//! is genuinely exercised.

use newton::net::{EventSchedule, NetworkEvent, Parallelism, Topology};
use newton::query::catalog;
use newton::trace::stream::{PulseSpec, ReplayOptions, StreamConfig};
use newton::trace::{AttackKind, TraceConfig};
use newton::{NewtonSystem, RunReport};

/// 4 segments × 3 000 packets of 50 ms each, with a port scan on every
/// segment and a completed-connections pulse on the odd ones.
fn stream_cfg() -> StreamConfig {
    StreamConfig {
        seed: 0xBEEF,
        segments: 4,
        segment: TraceConfig {
            packets: 3_000,
            flows: 200,
            duration_ms: 50,
            ..TraceConfig::default()
        },
        pulses: vec![
            PulseSpec { kind: AttackKind::PortScan, intensity: 200, period: 1, phase: 0 },
            PulseSpec { kind: AttackKind::CompletedConns, intensity: 15, period: 2, phase: 1 },
        ],
    }
}

/// 20 ms epochs over 50 ms segments: every other epoch window crosses a
/// segment boundary.
const EPOCH_MS: u64 = 20;

fn system(threads: usize) -> NewtonSystem {
    let mut sys = NewtonSystem::new(Topology::fat_tree(4));
    sys.set_parallelism(Parallelism::new(threads));
    sys.install(&catalog::q4_port_scan()).unwrap();
    sys.install(&catalog::q1_new_tcp()).unwrap();
    sys.enable_recorder();
    sys
}

/// A crash + reboot of a rule-holding edge switch, mid-stream.
fn failure_schedule() -> EventSchedule {
    let victim = Topology::fat_tree(4).edge_switches()[0];
    EventSchedule::new()
        .at(60_000_001, NetworkEvent::FailSwitch { s: victim })
        .at(130_000_000, NetworkEvent::RestoreSwitch { s: victim })
}

fn run_materialized(
    cfg: &StreamConfig,
    threads: usize,
    schedule: Option<EventSchedule>,
) -> (RunReport, String) {
    let trace = cfg.materialize();
    let mut sys = system(threads);
    let report = match schedule {
        Some(mut events) => {
            let r = sys.run_trace_with_events(&trace, EPOCH_MS, &mut events);
            assert_eq!(events.pending(), 0);
            r
        }
        None => sys.run_trace(&trace, EPOCH_MS),
    };
    (report, sys.take_recorder().expect("recorder").journal.to_jsonl())
}

fn run_streamed(
    cfg: &StreamConfig,
    threads: usize,
    opts: &ReplayOptions,
    schedule: Option<EventSchedule>,
) -> (RunReport, String) {
    let mut sys = system(threads);
    let report = match schedule {
        Some(mut events) => {
            let r = sys.run_stream_with_events(cfg, EPOCH_MS, opts, &mut events);
            assert_eq!(events.pending(), 0);
            r
        }
        None => sys.run_stream(cfg, EPOCH_MS, opts),
    };
    (report, sys.take_recorder().expect("recorder").journal.to_jsonl())
}

#[test]
fn streamed_equals_materialized_across_pool_shapes_and_threads() {
    let cfg = stream_cfg();
    let (base_report, base_journal) = run_materialized(&cfg, 1, None);
    assert!(base_report.packets > 0);
    assert!(base_journal.contains("\"type\":\"epoch\""));
    // The scan fires every segment, so the run genuinely detects.
    let scanner = cfg.guilty(AttackKind::PortScan).unwrap() as u64;
    assert!(
        base_report.reported.values().any(|keys| keys.contains(&scanner)),
        "port scanner not reported"
    );
    for threads in [1usize, 4] {
        // Materialized runs must agree across thread counts first…
        let (mr, mj) = run_materialized(&cfg, threads, None);
        assert_eq!(mr, base_report, "materialized report diverged at {threads} threads");
        assert_eq!(mj, base_journal, "materialized journal diverged at {threads} threads");
        // …then every streamed pool shape must match them byte for byte.
        for producers in [0usize, 1, 2] {
            for queue_depth in [1usize, 4, 64] {
                let opts = ReplayOptions { producers, queue_depth };
                let (sr, sj) = run_streamed(&cfg, threads, &opts, None);
                assert_eq!(
                    sr, base_report,
                    "streamed report diverged: threads={threads} producers={producers} depth={queue_depth}"
                );
                assert_eq!(
                    sj, base_journal,
                    "streamed journal diverged: threads={threads} producers={producers} depth={queue_depth}"
                );
            }
        }
    }
}

#[test]
fn streamed_equals_materialized_under_failures() {
    let cfg = stream_cfg();
    let (base_report, base_journal) = run_materialized(&cfg, 1, Some(failure_schedule()));
    assert!(base_journal.contains("\"state_loss\""), "crash journals state loss");
    assert!(base_journal.contains("\"repair\""), "repair pass journals a span");
    for threads in [1usize, 4] {
        for queue_depth in [1usize, 4, 64] {
            let opts = ReplayOptions { producers: 1, queue_depth };
            let (sr, sj) = run_streamed(&cfg, threads, &opts, Some(failure_schedule()));
            assert_eq!(
                sr, base_report,
                "failure-path report diverged: threads={threads} depth={queue_depth}"
            );
            assert_eq!(
                sj, base_journal,
                "failure-path journal diverged: threads={threads} depth={queue_depth}"
            );
        }
    }
}

/// Soak-horizon equivalence: a 16-segment stream (64 000 packets, 40
/// epochs) with THREE full fail/repair cycles spread across it — two
/// victims, overlapping mid-stream — must stay byte-identical to the
/// materialized run at every thread count and pool shape tried. This is
/// the long-haul version of `streamed_equals_materialized_under_failures`:
/// repeated repair passes, re-placed slices, and degraded/healed churn
/// accumulate journal state for hundreds of events, so any drift between
/// the streamed and materialized drivers compounds and gets caught.
#[test]
fn soak_stream_with_repeated_failures_matches_materialized_across_threads() {
    let cfg = StreamConfig {
        seed: 0x50AC,
        segments: 16,
        segment: TraceConfig {
            packets: 4_000,
            flows: 300,
            duration_ms: 50,
            ..TraceConfig::default()
        },
        pulses: vec![
            PulseSpec { kind: AttackKind::PortScan, intensity: 150, period: 3, phase: 0 },
            PulseSpec { kind: AttackKind::CompletedConns, intensity: 10, period: 4, phase: 2 },
        ],
    };
    // Three crash/reboot cycles over the 800 ms stream, on two different
    // edge switches; the second victim's outage overlaps a pulse segment.
    let edges = Topology::fat_tree(4).edge_switches().to_vec();
    let (a, b) = (edges[0], edges[1]);
    let schedule = move || {
        EventSchedule::new()
            .at(70_000_001, NetworkEvent::FailSwitch { s: a })
            .at(150_000_000, NetworkEvent::RestoreSwitch { s: a })
            .at(310_000_003, NetworkEvent::FailSwitch { s: b })
            .at(420_000_000, NetworkEvent::RestoreSwitch { s: b })
            .at(585_000_007, NetworkEvent::FailSwitch { s: a })
            .at(730_000_000, NetworkEvent::RestoreSwitch { s: a })
    };

    let (base_report, base_journal) = run_materialized(&cfg, 1, Some(schedule()));
    assert_eq!(base_report.epoch_count, 40, "16 × 50 ms over 20 ms epochs");
    assert!(
        base_report.state_loss_events >= 3,
        "every crash destroys rules: {}",
        base_report.state_loss_events
    );
    assert!(base_report.repairs >= 3, "every cycle repairs: {}", base_report.repairs);
    assert!(base_journal.matches("\"type\":\"repair\"").count() >= 3);

    for threads in [1usize, 4] {
        let (mr, mj) = run_materialized(&cfg, threads, Some(schedule()));
        assert_eq!(mr, base_report, "soak materialized report diverged at {threads} threads");
        assert_eq!(mj, base_journal, "soak materialized journal diverged at {threads} threads");
        for opts in [
            ReplayOptions { producers: 0, queue_depth: 1 },
            ReplayOptions { producers: 2, queue_depth: 3 },
        ] {
            let (sr, sj) = run_streamed(&cfg, threads, &opts, Some(schedule()));
            assert_eq!(
                sr, base_report,
                "soak streamed report diverged: threads={threads} opts={opts:?}"
            );
            assert_eq!(
                sj, base_journal,
                "soak streamed journal diverged: threads={threads} opts={opts:?}"
            );
        }
    }
}

#[test]
fn epoch_retention_keeps_the_tail_and_counts_every_epoch() {
    let cfg = stream_cfg();
    let opts = ReplayOptions::default();
    let full = {
        let mut sys = system(1);
        sys.run_stream(&cfg, EPOCH_MS, &opts)
    };
    assert_eq!(full.epoch_count as usize, full.epochs.len());
    assert!(full.epoch_count > 3, "enough epochs to trim");
    let trimmed = {
        let mut sys = system(1);
        sys.set_epoch_retention(Some(3));
        sys.run_stream(&cfg, EPOCH_MS, &opts)
    };
    assert_eq!(trimmed.epoch_count, full.epoch_count, "retention must not change the count");
    assert_eq!(trimmed.epochs.len(), 3);
    assert_eq!(
        trimmed.epochs[..],
        full.epochs[full.epochs.len() - 3..],
        "retention must keep exactly the trailing window"
    );
    // Cumulative totals are checkpoint-independent.
    assert_eq!(trimmed.packets, full.packets);
    assert_eq!(trimmed.messages, full.messages);
    assert_eq!(trimmed.reported, full.reported);
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]
        #[test]
        fn streamed_replay_is_materialized_replay(
            seed in any::<u64>(),
            intensity in 20u32..120,
            period in 1u64..3,
            producers in 0usize..3,
            queue_depth in 1usize..8,
            threads in 1usize..5,
            fail in any::<bool>(),
        ) {
            let cfg = StreamConfig {
                seed,
                segments: 3,
                segment: TraceConfig {
                    packets: 2_000,
                    flows: 150,
                    duration_ms: 50,
                    ..TraceConfig::default()
                },
                pulses: vec![PulseSpec {
                    kind: AttackKind::PortScan,
                    intensity,
                    period,
                    phase: 0,
                }],
            };
            let schedule = || fail.then(super::failure_schedule);
            let (mr, mj) = run_materialized(&cfg, 1, schedule());
            let opts = ReplayOptions { producers, queue_depth };
            let (sr, sj) = run_streamed(&cfg, threads, &opts, schedule());
            prop_assert_eq!(sr, mr, "report diverged (seed={})", seed);
            prop_assert_eq!(sj, mj, "journal diverged (seed={})", seed);
        }
    }
}
