//! Differential test: compiled data-plane execution vs. the reference
//! interpreter, on a single switch.
//!
//! For every catalog query that completes on the data plane, the set of
//! keys the switch reports over an epoch must match what the exact
//! reference interpreter computes — up to sketch error, which is driven to
//! ~zero here by giving the pipeline large register arrays relative to the
//! workload.

use newton::compiler::{compile, CompilerConfig};
use newton::dataplane::{PipelineConfig, Switch};
use newton::packet::Packet;
use newton::query::ast::Query;
use newton::query::{catalog, Interpreter};
use newton::trace::attacks::InjectSpec;
use newton::trace::background::TraceConfig;
use newton::trace::{AttackKind, Trace};
use std::collections::HashSet;

/// Run one epoch of `packets` through both the interpreter and a freshly
/// provisioned switch; return (reference report set, data-plane report set).
fn run_both(query: &Query, packets: &[Packet]) -> (HashSet<u64>, HashSet<u64>) {
    // Reference semantics.
    let mut interp = Interpreter::new(query.clone());
    for p in packets {
        interp.observe(p);
    }
    let reference = interp.end_epoch().reported;

    // Compiled execution. Large arrays -> negligible sketch error.
    let cfg = CompilerConfig { registers_per_array: 1 << 20, ..Default::default() };
    let compiled = compile(query, 1, &cfg);
    let mut switch = Switch::new(PipelineConfig {
        stages: compiled.composition.stages().max(12),
        registers_per_array: 1 << 20,
        ..Default::default()
    });
    switch.install(&compiled.rules).expect("install");

    let report_field = compiled.plan.branches[compiled.plan.driver as usize].report_field;
    let mut reported = HashSet::new();
    for p in packets {
        for r in switch.process(p, None).reports {
            let keys = newton::packet::FieldVector(r.op_keys);
            reported.insert(keys.get(report_field));
        }
    }
    (reference, reported)
}

fn workload(kind: AttackKind) -> Vec<Packet> {
    let mut trace = Trace::background(&TraceConfig {
        packets: 8_000,
        flows: 400,
        duration_ms: 100, // single epoch
        ..Default::default()
    });
    trace.inject(kind, &InjectSpec { intensity: 150, window_ns: 90_000_000, ..Default::default() });
    trace.packets().to_vec()
}

/// Queries whose report set must match the reference exactly on the data
/// plane (single-branch monotone thresholds and the Q6 data-plane merge).
#[test]
fn data_plane_matches_reference_for_dp_complete_queries() {
    let cases = [
        (catalog::q1_new_tcp(), AttackKind::NewTcpBurst),
        (catalog::q2_ssh_brute(), AttackKind::SshBrute),
        (catalog::q3_super_spreader(), AttackKind::SuperSpreader),
        (catalog::q4_port_scan(), AttackKind::PortScan),
        (catalog::q5_udp_ddos(), AttackKind::UdpDdos),
        (catalog::q6_syn_flood(), AttackKind::SynFlood),
    ];
    for (query, attack) in cases {
        let packets = workload(attack);
        let (reference, reported) = run_both(&query, &packets);
        assert!(
            !reference.is_empty(),
            "{}: workload failed to trigger the reference query",
            query.name
        );
        assert_eq!(reported, reference, "{}: data plane and reference disagree", query.name);
    }
}

/// The attack victim must be among the reported keys.
#[test]
fn injected_attacks_are_detected_on_the_data_plane() {
    let cases = [
        (catalog::q1_new_tcp(), AttackKind::NewTcpBurst),
        (catalog::q4_port_scan(), AttackKind::PortScan),
        (catalog::q6_syn_flood(), AttackKind::SynFlood),
    ];
    for (query, attack) in cases {
        let mut trace = Trace::background(&TraceConfig {
            packets: 5_000,
            flows: 300,
            duration_ms: 100,
            ..Default::default()
        });
        let guilty = trace
            .inject(
                attack,
                &InjectSpec { intensity: 200, window_ns: 90_000_000, ..Default::default() },
            )
            .guilty;
        let (_, reported) = run_both(&query, trace.packets());
        assert!(
            reported.contains(&(guilty as u64)),
            "{}: injected {:?} victim {:#x} not reported",
            query.name,
            attack,
            guilty
        );
    }
}

/// A quiet background trace with no attack must produce no reports for the
/// attack-detection queries (no false alarms at these thresholds).
#[test]
fn quiet_background_produces_no_reports() {
    let trace = Trace::background(&TraceConfig {
        packets: 4_000,
        flows: 600,
        duration_ms: 100,
        ..Default::default()
    });
    for query in [catalog::q4_port_scan(), catalog::q5_udp_ddos(), catalog::q6_syn_flood()] {
        let (reference, reported) = run_both(&query, trace.packets());
        assert!(reference.is_empty(), "{}: reference fired on background", query.name);
        assert!(reported.is_empty(), "{}: data plane fired on background", query.name);
    }
}
