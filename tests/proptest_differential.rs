//! Differential property test: for RANDOM queries and RANDOM packet
//! streams, the compiled data-plane pipeline reports exactly the keys the
//! exact reference interpreter reports (given collision-free register
//! sizing).

use newton::compiler::{compile, CompilerConfig};
use newton::dataplane::{PipelineConfig, Switch};
use newton::packet::{Field, FieldVector, Packet, PacketBuilder, Protocol, TcpFlags};
use newton::query::ast::{CmpOp, Query, ReduceFunc};
use newton::query::{Interpreter, QueryBuilder};
use proptest::prelude::*;
use std::collections::HashSet;

/// Packets from a small universe so counts actually accumulate.
fn arb_stream() -> impl Strategy<Value = Vec<Packet>> {
    prop::collection::vec(
        (
            0u32..6,       // src hosts
            0u32..6,       // dst hosts
            0u16..8,       // src ports
            0u16..4,       // dst ports
            any::<bool>(), // tcp?
            prop_oneof![Just(0u8), Just(0x02), Just(0x10), Just(0x11), Just(0x12)],
            64u16..512,
        )
            .prop_map(|(s, d, sp, dp, tcp, flags, len)| {
                let mut b = PacketBuilder::new()
                    .src_ip(0x0A00_0000 + s)
                    .dst_ip(0xAC10_0000 + d)
                    .src_port(1000 + sp)
                    .dst_port(if dp == 0 { 80 } else { 8000 + dp })
                    .wire_len(len);
                if tcp {
                    b = b.protocol(Protocol::Tcp).tcp_flags(TcpFlags::from_bits(flags));
                } else {
                    b = b.protocol(Protocol::Udp);
                }
                b.build()
            }),
        20..400,
    )
}

/// Random single-branch queries over the small universe.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Func {
    Count,
    SumLen,
    MaxLen,
}

#[derive(Debug, Clone)]
struct QuerySpec {
    filter_proto: Option<u64>,
    filter_flags: Option<u64>,
    key: Field,
    distinct_extra: Option<Field>,
    func: Func,
    threshold: u64,
}

fn arb_query() -> impl Strategy<Value = QuerySpec> {
    (
        prop_oneof![Just(None), Just(Some(6u64)), Just(Some(17u64))],
        prop_oneof![Just(None), Just(Some(0x02u64)), Just(Some(0x10u64))],
        prop_oneof![Just(Field::SrcIp), Just(Field::DstIp), Just(Field::DstPort)],
        prop_oneof![Just(None), Just(Some(Field::SrcPort)), Just(Some(Field::SrcIp))],
        prop_oneof![Just(Func::Count), Just(Func::SumLen), Just(Func::MaxLen)],
        1u64..30,
    )
        .prop_map(|(filter_proto, filter_flags, key, distinct_extra, func, threshold)| {
            QuerySpec { filter_proto, filter_flags, key, distinct_extra, func, threshold }
        })
}

fn build(spec: &QuerySpec) -> Query {
    let mut b = QueryBuilder::new("prop");
    if let Some(p) = spec.filter_proto {
        b = b.filter_eq(Field::Proto, p);
    }
    if let Some(f) = spec.filter_flags {
        b = b.filter_eq(Field::Proto, 6).filter_eq(Field::TcpFlags, f);
    }
    b = b.map(&[spec.key]);
    if let Some(extra) = spec.distinct_extra {
        if extra != spec.key {
            b = b.distinct(&[spec.key, extra]);
        }
    }
    let (func, threshold) = match spec.func {
        Func::Count => (ReduceFunc::Count, spec.threshold),
        Func::SumLen => (ReduceFunc::SumField(Field::PktLen), spec.threshold * 200),
        Func::MaxLen => (ReduceFunc::MaxField(Field::PktLen), 64 + spec.threshold * 10),
    };
    b.reduce(&[spec.key], func).result_filter(CmpOp::Ge, threshold).build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn compiled_pipeline_matches_interpreter(spec in arb_query(), stream in arb_stream()) {
        let query = build(&spec);

        // Reference.
        let mut interp = Interpreter::new(query.clone());
        for p in &stream {
            interp.observe(p);
        }
        let reference = interp.end_epoch().reported;

        // Compiled, with huge registers (no collisions).
        let cfg = CompilerConfig { registers_per_array: 1 << 22, ..Default::default() };
        let compiled = compile(&query, 1, &cfg);
        let mut sw = Switch::new(PipelineConfig {
            registers_per_array: 1 << 22,
            ..Default::default()
        });
        sw.install(&compiled.rules).unwrap();
        let field = compiled.plan.branches[0].report_field;
        let mut reported: HashSet<u64> = HashSet::new();
        for p in &stream {
            for r in sw.process(p, None).reports {
                reported.insert(FieldVector(r.op_keys).get(field));
            }
        }
        prop_assert_eq!(
            &reported, &reference,
            "query {:?}: pipeline {:?} vs interpreter {:?}", spec, reported, reference
        );
    }
}
