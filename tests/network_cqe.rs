//! Cross-switch query execution, end to end: sliced deployments must
//! produce exactly the reports a single big switch would.

use newton::compiler::{compile, CompilerConfig};
use newton::controller::Controller;
use newton::dataplane::{PipelineConfig, Switch};
use newton::net::{Network, Topology};
use newton::packet::{FieldVector, Packet};
use newton::query::catalog;
use newton::trace::attacks::InjectSpec;
use newton::trace::background::TraceConfig;
use newton::trace::{AttackKind, Trace};
use std::collections::HashSet;

fn workload(kind: AttackKind) -> Vec<Packet> {
    let mut t = Trace::background(&TraceConfig {
        packets: 6_000,
        flows: 400,
        duration_ms: 100,
        ..Default::default()
    });
    t.inject(kind, &InjectSpec { intensity: 150, window_ns: 90_000_000, ..Default::default() });
    t.packets().to_vec()
}

/// Report keys from a single whole-query switch.
fn single_switch_keys(query: &newton::query::ast::Query, packets: &[Packet]) -> HashSet<u64> {
    let compiled = compile(query, 1, &CompilerConfig::default());
    let mut sw = Switch::new(PipelineConfig::default());
    sw.install(&compiled.rules).unwrap();
    let field = compiled.plan.branches[compiled.plan.driver as usize].report_field;
    let mut keys = HashSet::new();
    for p in packets {
        for r in sw.process(p, None).reports {
            keys.insert(FieldVector(r.op_keys).get(field));
        }
    }
    keys
}

/// Report keys from a CQE deployment over a chain, every packet crossing
/// the whole chain.
fn sliced_chain_keys(
    query: &newton::query::ast::Query,
    packets: &[Packet],
    chain_len: usize,
    stages_per_switch: usize,
) -> (HashSet<u64>, usize) {
    let mut net = Network::new(Topology::chain(chain_len), PipelineConfig::default());
    let mut ctl = Controller::new(CompilerConfig::default(), 3);
    let receipt = ctl.install(query, &mut net, stages_per_switch).unwrap();
    let compiled = compile(query, receipt.id, &CompilerConfig::default());
    let field = compiled.plan.branches[compiled.plan.driver as usize].report_field;
    let mut keys = HashSet::new();
    for p in packets {
        for (_, r) in net.deliver(p, 0, chain_len - 1).reports {
            keys.insert(FieldVector(r.op_keys).get(field));
        }
    }
    (keys, receipt.slices)
}

#[test]
fn sliced_q1_matches_single_switch() {
    let q = catalog::q1_new_tcp();
    let packets = workload(AttackKind::NewTcpBurst);
    let whole = single_switch_keys(&q, &packets);
    assert!(!whole.is_empty(), "workload must trigger Q1");
    // Q1 is small; 3-stage switches force slicing.
    let (sliced, slices) = sliced_chain_keys(&q, &packets, 4, 3);
    assert!(slices >= 2, "Q1 must actually slice (got {slices})");
    assert_eq!(sliced, whole, "CQE must report the same keys as one big switch");
}

#[test]
fn sliced_q4_matches_single_switch() {
    let q = catalog::q4_port_scan();
    let packets = workload(AttackKind::PortScan);
    let whole = single_switch_keys(&q, &packets);
    assert!(!whole.is_empty());
    let (sliced, slices) = sliced_chain_keys(&q, &packets, 4, 4);
    assert_eq!(slices, 4);
    assert_eq!(sliced, whole);
}

#[test]
fn sliced_q6_merge_travels_in_the_snapshot() {
    // Q6's data-plane merge accumulates in the global result, which must
    // survive slice boundaries inside the snapshot.
    let q = catalog::q6_syn_flood();
    let packets = workload(AttackKind::SynFlood);
    let whole = single_switch_keys(&q, &packets);
    assert!(!whole.is_empty(), "flood must trigger Q6");
    let (sliced, slices) = sliced_chain_keys(&q, &packets, 5, 6);
    assert!(slices >= 2);
    assert_eq!(sliced, whole);
}

#[test]
fn cqe_reports_once_regardless_of_path_length() {
    // Fig. 13's mechanism: the same flood through 1-, 2- and 3-hop Newton
    // paths produces the same number of reports (one per victim), because
    // the network acts as one consolidated pipeline.
    let q = catalog::q1_new_tcp();
    let packets = workload(AttackKind::NewTcpBurst);
    let mut counts = Vec::new();
    for hops in [1usize, 2, 3] {
        let mut net = Network::new(Topology::chain(hops.max(1)), PipelineConfig::default());
        let mut ctl = Controller::new(CompilerConfig::default(), 1);
        ctl.install(&q, &mut net, 12).unwrap();
        let mut n = 0;
        for p in &packets {
            n += net.deliver(p, 0, hops - 1).reports.len();
        }
        counts.push(n);
    }
    assert_eq!(counts[0], counts[1]);
    assert_eq!(counts[1], counts[2], "report count must be hop-agnostic: {counts:?}");
}
