//! The §6.1 headline: Newton's query operations never interrupt packet
//! forwarding, while Sonata's update path stalls the switch for seconds.

use newton::baselines::RebootModel;
use newton::compiler::CompilerConfig;
use newton::controller::Controller;
use newton::dataplane::PipelineConfig;
use newton::net::{Network, Topology};
use newton::packet::{PacketBuilder, TcpFlags};
use newton::query::catalog;

#[test]
fn heavy_query_churn_never_drops_a_packet() {
    let mut net = Network::new(Topology::chain(3), PipelineConfig::default());
    let mut ctl = Controller::new(CompilerConfig::default(), 99);
    let pkt = PacketBuilder::new().tcp_flags(TcpFlags::SYN).build();

    let mut delivered = 0u64;
    let mut sent = 0u64;
    let mut live: Vec<u32> = Vec::new();
    for round in 0..30 {
        // Interleave forwarding with constant query churn.
        for _ in 0..10 {
            sent += 1;
            delivered += u64::from(net.deliver(&pkt, 0, 2).clean_delivery);
        }
        let q = &catalog::all_queries()[round % 9];
        let receipt = ctl.install(q, &mut net, 12).expect("install");
        live.push(receipt.id);
        if live.len() > 3 {
            let victim = live.remove(0);
            ctl.remove(victim, &mut net).expect("remove");
        }
    }
    assert_eq!(delivered, sent, "every packet delivered through 30 rounds of churn");
    assert_eq!(net.switch(1).forwarded(), sent);
}

#[test]
fn newton_update_beats_sonata_by_orders_of_magnitude() {
    let mut net = Network::new(Topology::chain(2), PipelineConfig::default());
    let mut ctl = Controller::new(CompilerConfig::default(), 5);

    let first = ctl.install(&catalog::q1_new_tcp(), &mut net, 12).unwrap();
    let update = ctl.update(first.id, &catalog::q4_port_scan(), &mut net, 12).unwrap();

    // Newton: milliseconds, zero forwarding outage.
    assert!(update.delay_ms < 40.0, "Newton update took {:.1} ms", update.delay_ms);

    // Sonata: reboot + forwarding-table restore. With a realistic 20K-rule
    // forwarding table the outage is seconds.
    let sonata = RebootModel::default();
    let outage = sonata.outage_ms(8_000, 12_000);
    assert!(outage > 7_000.0);
    assert!(
        outage / update.delay_ms > 100.0,
        "expected ≥2 orders of magnitude: sonata {outage:.0} ms vs newton {:.1} ms",
        update.delay_ms
    );
}

#[test]
fn all_nine_queries_install_and_remove_within_twenty_ms() {
    let mut net = Network::new(Topology::chain(2), PipelineConfig::default());
    let mut ctl = Controller::new(CompilerConfig::default(), 31);
    for q in catalog::all_queries() {
        let r = ctl.install(&q, &mut net, 12).expect("install");
        assert!(r.delay_ms <= 20.0, "{}: install {:.1} ms", q.name, r.delay_ms);
        let rm = ctl.remove(r.id, &mut net).expect("remove");
        assert!(rm.delay_ms <= 20.0, "{}: removal {:.1} ms", q.name, rm.delay_ms);
    }
    assert_eq!(net.total_rules(), 0);
}
