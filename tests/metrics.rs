//! Live metrics stay strictly outside the determinism contract: attaching
//! a `MetricsRegistry` to a run must not move the telemetry journal by a
//! byte. Wall-clock facts (operation latencies, throughput counters, lane
//! occupancy) live only in the registry, which is explicitly
//! nondeterministic — the dual of the `Profile` rule pinned by
//! `telemetry_journal.rs`.
//!
//! Also covered here:
//! * the controller op histograms count exactly one observation per
//!   control-plane call, and the cache/channel mirror counters equal the
//!   controller's own structs;
//! * the executor counters move under the parallel path and agree with
//!   the run's packet count;
//! * the streamed replay registers its lane/recycle family and the
//!   recycle counters balance against segments produced.

use newton::metrics::MetricsRegistry;
use newton::net::{Parallelism, Topology};
use newton::query::catalog;
use newton::trace::attacks::InjectSpec;
use newton::trace::background::TraceConfig;
use newton::trace::{AttackKind, ReplayOptions, StreamConfig, Trace};
use newton::NewtonSystem;

/// Busy enough that >1 thread genuinely takes the parallel executor path
/// (well over `PAR_BATCH_MIN` packets per 50 ms epoch).
fn busy_trace() -> Trace {
    let mut trace = Trace::background(&TraceConfig {
        packets: 6_000,
        flows: 400,
        duration_ms: 100,
        ..Default::default()
    });
    trace.inject(
        AttackKind::PortScan,
        &InjectSpec { intensity: 150, window_ns: 90_000_000, ..Default::default() },
    );
    trace
}

/// A streamed twin of [`busy_trace`]'s shape: 3 segments of background
/// traffic replayed through the bounded-memory producer/consumer path.
fn stream_config() -> StreamConfig {
    StreamConfig {
        segments: 3,
        segment: TraceConfig { packets: 2_000, flows: 200, duration_ms: 100, ..Default::default() },
        ..Default::default()
    }
}

fn fresh_system(threads: usize, metrics: Option<&MetricsRegistry>) -> NewtonSystem {
    let mut sys = NewtonSystem::new(Topology::fat_tree(4));
    sys.set_parallelism(Parallelism::new(threads));
    if let Some(reg) = metrics {
        sys.enable_metrics(reg);
    }
    sys.install(&catalog::q4_port_scan()).unwrap();
    sys.install(&catalog::q1_new_tcp()).unwrap();
    sys
}

#[test]
fn journal_bytes_are_identical_with_and_without_metrics() {
    let trace = busy_trace();
    let journal = |threads: usize, metrics: Option<&MetricsRegistry>| {
        let mut sys = fresh_system(threads, metrics);
        sys.enable_recorder();
        sys.run_trace(&trace, 50);
        sys.take_recorder().expect("recorder attached").journal.to_jsonl()
    };
    for threads in [1usize, 4] {
        let plain = journal(threads, None);
        assert!(!plain.is_empty(), "a busy run journals events");
        let registry = MetricsRegistry::new();
        let observed = journal(threads, Some(&registry));
        assert_eq!(observed, plain, "attaching metrics moved journal bytes at {threads} threads");
        // The comparison is non-vacuous: the registry really recorded the
        // run it rode along on.
        assert_eq!(
            registry.histogram_snapshot("controller_install_ns").map(|h| h.count()),
            Some(2),
            "one observation per install"
        );
    }
}

#[test]
fn streamed_journal_bytes_are_identical_with_and_without_metrics() {
    let cfg = stream_config();
    let journal = |threads: usize, producers: usize, metrics: Option<&MetricsRegistry>| {
        let mut sys = fresh_system(threads, metrics);
        sys.enable_recorder();
        sys.run_stream(&cfg, 50, &ReplayOptions { producers, queue_depth: 2 });
        sys.take_recorder().expect("recorder attached").journal.to_jsonl()
    };
    for (threads, producers) in [(1usize, 0usize), (4, 2)] {
        let plain = journal(threads, producers, None);
        assert!(!plain.is_empty());
        let registry = MetricsRegistry::new();
        let observed = journal(threads, producers, Some(&registry));
        assert_eq!(
            observed, plain,
            "streamed journal diverged at {threads} threads / {producers} producers"
        );
        // The stream family registered and balanced: every segment the
        // replay handed out came from either a recycled or a fresh buffer.
        let hits = registry.value("stream_recycle_hits_total").unwrap_or(0);
        let misses = registry.value("stream_recycle_misses_total").unwrap_or(0);
        assert_eq!(hits + misses, cfg.segments, "recycle hits+misses covers every segment");
    }
}

#[test]
fn controller_op_histograms_and_mirrors_track_the_control_plane() {
    let registry = MetricsRegistry::new();
    let mut sys = NewtonSystem::new(Topology::fat_tree(4));
    sys.enable_metrics(&registry);

    let a = sys.install(&catalog::q4_port_scan()).unwrap();
    let b = sys.install(&catalog::q1_new_tcp()).unwrap();
    sys.retune_threshold(a.id, 40).unwrap();
    sys.update(b.id, &catalog::q2_ssh_brute()).unwrap();
    sys.remove(a.id).unwrap();

    let count = |name: &str| {
        registry.histogram_snapshot(name).unwrap_or_else(|| panic!("{name} registered")).count()
    };
    assert_eq!(count("controller_install_ns"), 2);
    assert_eq!(count("controller_retune_ns"), 1);
    assert_eq!(count("controller_update_ns"), 1);
    assert_eq!(count("controller_remove_ns"), 1);

    // Latency histograms are sane: every op took measurable time and the
    // quantiles are ordered.
    let h = registry.histogram_snapshot("controller_install_ns").unwrap();
    assert!(h.sum > 0, "installs take nonzero wall-clock");
    assert!(h.p50() <= h.p90() && h.p90() <= h.p99() && h.p99() <= h.max);

    // The live mirrors equal the controller's own structs, lazily synced
    // after every timed op.
    let cache = sys.controller().cache_stats();
    assert_eq!(registry.value("compile_cache_hits_total"), Some(cache.hits));
    assert_eq!(registry.value("compile_cache_misses_total"), Some(cache.misses));
    let ch = sys.controller().channel_stats();
    assert_eq!(registry.value("channel_rules_installed_total"), Some(ch.rules_installed));
    assert_eq!(registry.value("channel_rules_removed_total"), Some(ch.rules_removed));
    assert_eq!(registry.value("channel_rules_modified_total"), Some(ch.rules_modified));
    assert_eq!(registry.value("channel_messages_total"), Some(ch.messages));
    assert_eq!(registry.value("channel_bytes_total"), Some(ch.bytes));
    assert!(ch.rules_installed > 0, "the mirror comparison is non-trivial");
}

#[test]
fn executor_counters_are_the_live_twin_of_the_drained_profile() {
    use newton::compiler::{compile, CompilerConfig};
    use newton::dataplane::PipelineConfig;
    use newton::net::{Network, NodeId, PoolMetrics};
    use newton::packet::{Packet, PacketBuilder, TcpFlags};

    // Drive the pool directly with an explicit thread count: the system
    // loop clamps its thread budget to the host's cores, so on a
    // single-core runner it would never take the observed parallel path.
    let registry = MetricsRegistry::new();
    let mut net = Network::new(Topology::fat_tree(4), PipelineConfig::default());
    net.set_metrics(Some(PoolMetrics::register(&registry)));
    let compiled = compile(&catalog::q4_port_scan(), 1, &CompilerConfig::default());
    let edges: Vec<NodeId> = net.topology().edge_switches().to_vec();
    net.switch_mut(edges[0]).install(&compiled.rules).unwrap();

    let pkts: Vec<Packet> = (0..400u32)
        .map(|i| {
            PacketBuilder::new()
                .src_ip(0x0A00_0000 + i)
                .dst_ip(0xAC10_0001)
                .src_port(40_000 + (i % 1000) as u16)
                .dst_port((i % 512) as u16)
                .tcp_flags(TcpFlags::SYN)
                .ts_ns(u64::from(i) * 1_000)
                .build()
        })
        .collect();
    let triples: Vec<(&Packet, NodeId, NodeId)> = pkts
        .iter()
        .enumerate()
        .map(|(i, p)| (p, edges[i % edges.len()], edges[(i + 3) % edges.len()]))
        .collect();
    for _ in 0..3 {
        net.deliver_batch_parallel(&triples, 2);
    }

    // The registry counters and the drained profile are fed the same
    // per-batch deltas, so the two views agree exactly.
    let profile = net.take_parallel_profile();
    assert_eq!(profile.batches, 3, "one profile batch per delivery");
    assert_eq!(registry.value("executor_batches_total"), Some(profile.batches));
    assert_eq!(registry.value("executor_hops_total"), Some(profile.hops));
    assert_eq!(registry.value("executor_busy_ns_total"), Some(profile.busy_ns));
    assert_eq!(registry.value("executor_max_queue_depth"), Some(profile.max_queue_depth as u64));
    assert!(profile.hops > 0, "the batch walked real hops");
}
