//! Concurrency capacity: "the capacity of Newton for supporting concurrent
//! queries is determined by both available data plane resources (including
//! the table size of all modules and the register memory size of 𝕊) and
//! monitoring intents" (§4.1). These tests exercise the limits.

use newton::compiler::{compile, CompilerConfig};
use newton::dataplane::{PipelineConfig, Switch, SwitchError};
use newton::packet::Field;
use newton::query::ast::{CmpOp, ReduceFunc};
use newton::query::QueryBuilder;

fn tenant_query(t: u32) -> newton::query::ast::Query {
    QueryBuilder::new(format!("tenant{t}"))
        .filter_eq(Field::Proto, 6)
        .filter_eq(Field::DstPort, 10_000 + t as u64)
        .map(&[Field::DstIp])
        .reduce(&[Field::DstIp], ReduceFunc::Count)
        .result_filter(CmpOp::Ge, 10)
        .build()
}

#[test]
fn table_capacity_bounds_concurrent_queries_and_rejects_cleanly() {
    // Tiny 8-rule module tables: installs succeed until an instance fills,
    // then fail atomically (the failing query leaves nothing behind).
    let mut sw = Switch::new(PipelineConfig { rule_capacity: 8, ..Default::default() });
    let slice = 4096 / 64;
    let mut installed = 0u32;
    let mut rejected = None;
    for t in 0..64 {
        let cfg = CompilerConfig {
            registers_per_array: slice,
            register_offset: t * slice,
            ..Default::default()
        };
        let compiled = compile(&tenant_query(t), t + 1, &cfg);
        match sw.install(&compiled.rules) {
            Ok(()) => installed += 1,
            Err(e) => {
                rejected = Some(e);
                break;
            }
        }
    }
    let err = rejected.expect("capacity must eventually be exhausted");
    assert!(matches!(err, SwitchError::Install(_)), "unexpected error {err:?}");
    assert!(installed >= 3, "several queries should fit before exhaustion ({installed})");

    // Atomicity: the rejected query contributed zero rules.
    let total_before = sw.total_rule_count();
    assert_eq!(sw.rules_of_query(installed + 1), 0);
    assert_eq!(sw.total_rule_count(), total_before);

    // Removing one tenant frees room for another.
    let removed = sw.remove_query(1);
    assert!(removed > 0);
    let cfg = CompilerConfig {
        registers_per_array: slice,
        register_offset: 63 * slice,
        ..Default::default()
    };
    let compiled = compile(&tenant_query(99), 999, &cfg);
    sw.install(&compiled.rules).expect("freed capacity must be reusable");
}

#[test]
fn occupancy_gauge_tracks_installs() {
    let mut sw = Switch::new(PipelineConfig { rule_capacity: 64, ..Default::default() });
    assert_eq!(sw.peak_table_occupancy(), 0.0);
    let mut last = 0.0;
    for t in 0..8 {
        let cfg = CompilerConfig {
            registers_per_array: 512,
            register_offset: t * 512,
            ..Default::default()
        };
        sw.install(&compile(&tenant_query(t), t + 1, &cfg).rules).unwrap();
        let occ = sw.peak_table_occupancy();
        assert!(occ > last, "occupancy must grow with installs");
        last = occ;
    }
    assert!(last <= 1.0);
    // Per-query accounting sums to the total (minus nothing).
    let per_query: usize = (1..=8).map(|id| sw.rules_of_query(id)).sum();
    assert_eq!(per_query, sw.total_rule_count());
}

#[test]
fn resource_usage_grows_with_rules_and_stays_normalized_sane() {
    use newton::dataplane::resources::SWITCH_P4_REFERENCE;
    let mut sw = Switch::new(PipelineConfig::default());
    let empty = sw.resource_usage();
    sw.install(
        &compile(&newton::query::catalog::q4_port_scan(), 1, &CompilerConfig::default()).rules,
    )
    .unwrap();
    let loaded = sw.resource_usage();
    assert!(loaded.sram > empty.sram, "rules add amortized SRAM share");
    // Whole Newton deployment (layout + one heavy query) must fit the
    // physical chip: per category, usage ≤ 12 stages × per-stage budget.
    let chip = newton::dataplane::StageBudget::capacity() * 12.0;
    assert!(loaded.fits_within(&chip), "deployment exceeds the chip: {loaded}");
    // And the normalization API stays well-defined.
    let n = loaded.normalized(&SWITCH_P4_REFERENCE);
    assert!(n.as_array().iter().all(|v| v.is_finite()));
}

#[test]
fn default_capacity_hosts_well_over_the_nine_catalog_queries() {
    // The paper configures 256 rules per module; the whole catalog barely
    // dents that.
    let mut sw = Switch::new(PipelineConfig::default());
    let queries = newton::query::catalog::all_queries();
    let slice = 4096 / queries.len() as u32;
    for (i, q) in queries.iter().enumerate() {
        let cfg = CompilerConfig {
            registers_per_array: slice,
            register_offset: i as u32 * slice,
            ..Default::default()
        };
        sw.install(&compile(q, i as u32 + 1, &cfg).rules).unwrap();
    }
    assert!(
        sw.peak_table_occupancy() < 0.15,
        "nine queries should use <15% of any table (got {:.2})",
        sw.peak_table_occupancy()
    );
}
