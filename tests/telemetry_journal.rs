//! The deterministic telemetry journal is part of the execution contract:
//! the `Recorder`'s event stream is keyed purely by modeled time (epoch
//! index), so its JSONL serialization must be **byte-identical** across
//! thread counts {1, 2, 4, 8} — with and without mid-trace failures — and
//! between the batched and parallel executors. The same holds for the
//! pipeline's packets-per-batch budget: every batch-lanes setting {1, 32,
//! 128} × thread count {1, 4} must journal the same bytes. Wall-clock
//! facts live only in the separate `Profile` section, which is excluded
//! from these comparisons by construction.
//!
//! Also covered here:
//! * `NoopSink` functional equivalence: `Switch::process_sink` with the
//!   no-op sink is bit-identical to plain `Switch::process` (the
//!   `ENABLED = false` branch compiles to the uninstrumented path).
//! * The `NEWTON_TRACE_PACKET` hook (via its programmatic twin
//!   [`NewtonSystem::set_trace_packet`]): the journaled `packet_trace`
//!   event is itself thread-count invariant.

use newton::net::{EventSchedule, NetworkEvent, Parallelism, Topology};
use newton::query::catalog;
use newton::telemetry::Event;
use newton::trace::attacks::InjectSpec;
use newton::trace::background::TraceConfig;
use newton::trace::{AttackKind, Trace};
use newton::NewtonSystem;

/// A trace whose 50 ms epochs each carry well over `PAR_BATCH_MIN` (256)
/// packets, so runs at >1 thread genuinely exercise the parallel executor.
fn busy_trace() -> Trace {
    let mut trace = Trace::background(&TraceConfig {
        packets: 6_000,
        flows: 400,
        duration_ms: 100,
        ..Default::default()
    });
    trace.inject(
        AttackKind::PortScan,
        &InjectSpec { intensity: 150, window_ns: 90_000_000, ..Default::default() },
    );
    trace
}

/// Run the full system loop at `threads` with the recorder attached and
/// return the journal's JSONL bytes (profile excluded: it is the
/// explicitly nondeterministic section).
fn journal_at(
    trace: &Trace,
    threads: usize,
    schedule: Option<EventSchedule>,
    trace_packet: Option<u64>,
) -> String {
    let mut sys = NewtonSystem::new(Topology::fat_tree(4));
    sys.set_parallelism(Parallelism::new(threads));
    sys.install(&catalog::q4_port_scan()).unwrap();
    sys.install(&catalog::q1_new_tcp()).unwrap();
    sys.set_trace_packet(trace_packet);
    sys.enable_recorder();
    match schedule {
        Some(mut events) => {
            sys.run_trace_with_events(trace, 50, &mut events);
            assert_eq!(events.pending(), 0, "all scheduled events fired");
        }
        None => {
            sys.run_trace(trace, 50);
        }
    }
    sys.take_recorder().expect("recorder attached").journal.to_jsonl()
}

#[test]
fn journal_is_byte_identical_across_thread_counts() {
    let trace = busy_trace();
    let base = journal_at(&trace, 1, None, None);
    assert!(!base.is_empty(), "a busy run journals events");
    assert!(base.contains("\"type\":\"epoch\""), "epoch summaries present");
    assert!(base.contains("\"stage_gauge\""), "stage gauges present");
    assert!(base.contains("\"link_load\""), "link loads present");
    for threads in [2usize, 4, 8] {
        let j = journal_at(&trace, threads, None, None);
        assert_eq!(j, base, "journal bytes diverged at {threads} threads");
    }
}

#[test]
fn journal_is_byte_identical_across_batch_sizes_and_threads() {
    // The packets-per-batch budget of the batch-first pipeline path is a
    // pure throughput knob: reports are re-emitted in canonical per-lane
    // order whatever the batch geometry, so the journal must not move by
    // a byte across batch sizes (1 = effectively scalar) × thread counts.
    let trace = busy_trace();
    let journal = |lanes: usize, threads: usize| {
        let mut sys = NewtonSystem::new(Topology::fat_tree(4));
        sys.set_batch_lanes(lanes);
        sys.set_parallelism(Parallelism::new(threads));
        sys.install(&catalog::q4_port_scan()).unwrap();
        sys.install(&catalog::q1_new_tcp()).unwrap();
        sys.enable_recorder();
        sys.run_trace(&trace, 50);
        sys.take_recorder().expect("recorder attached").journal.to_jsonl()
    };
    let base = journal_at(&trace, 1, None, None);
    for lanes in [1usize, 32, 128] {
        for threads in [1usize, 4] {
            let j = journal(lanes, threads);
            assert_eq!(j, base, "journal bytes diverged at batch_lanes={lanes}, threads={threads}");
        }
    }
}

#[test]
fn journal_is_byte_identical_across_threads_under_failures() {
    // A switch crash + reboot mid-trace: the repair loop, state-loss and
    // degraded-query events must all journal identically at any thread
    // count.
    let trace = busy_trace();
    // Fail an *edge* switch: only a switch holding installed rules counts
    // as a state-loss event.
    let victim = Topology::fat_tree(4).edge_switches()[0];
    let schedule = || {
        EventSchedule::new()
            .at(30_000_001, NetworkEvent::FailSwitch { s: victim })
            .at(60_000_000, NetworkEvent::RestoreSwitch { s: victim })
    };
    let base = journal_at(&trace, 1, Some(schedule()), None);
    assert!(base.contains("\"state_loss\""), "the crash journals a state-loss event");
    assert!(base.contains("\"repair\""), "the repair pass journals a span");
    for threads in [2usize, 4, 8] {
        let j = journal_at(&trace, threads, Some(schedule()), None);
        assert_eq!(j, base, "failure-path journal diverged at {threads} threads");
    }
}

#[test]
fn packet_trace_event_is_thread_count_invariant() {
    use newton::packet::{Protocol, TcpFlags};

    // The NEWTON_TRACE_PACKET hook (programmatic form): journal one
    // packet's per-module execution trace. The traced packet is picked by
    // global arrival index, which is thread-count independent. Pick a TCP
    // SYN so the installed queries (Q1/Q4 both classify on SYN) actually
    // fire modules during the walk.
    let trace = busy_trace();
    let idx = trace
        .packets()
        .iter()
        .position(|p| p.protocol == Protocol::Tcp && p.tcp_flags == TcpFlags::SYN)
        .expect("the trace carries TCP SYNs") as u64;
    let base = journal_at(&trace, 1, None, Some(idx));
    assert!(base.contains("\"packet_trace\""), "the traced packet journals its trace");
    for threads in [2usize, 4, 8] {
        let j = journal_at(&trace, threads, None, Some(idx));
        assert_eq!(j, base, "packet trace diverged at {threads} threads");
    }

    // The event itself carries the requested index and a non-empty
    // rendered trace.
    let mut sys = NewtonSystem::new(Topology::fat_tree(4));
    sys.install(&catalog::q4_port_scan()).unwrap();
    sys.install(&catalog::q1_new_tcp()).unwrap();
    sys.set_trace_packet(Some(idx));
    sys.enable_recorder();
    sys.run_trace(&trace, 50);
    let rec = sys.take_recorder().unwrap();
    let traced: Vec<_> = rec
        .journal
        .events()
        .iter()
        .filter_map(|e| match e {
            Event::PacketTrace { index, traces, .. } => Some((*index, traces.len())),
            _ => None,
        })
        .collect();
    assert_eq!(traced.len(), 1, "exactly one packet is traced");
    assert_eq!(traced[0].0, idx);
    assert!(traced[0].1 > 0, "the trace renders at least one module line");
}

#[test]
fn noop_sink_is_functionally_identical_to_plain_process() {
    use newton::compiler::{compile, CompilerConfig};
    use newton::dataplane::{PipelineConfig, Switch};
    use newton::telemetry::{NoopSink, Recorder, Telemetry};

    // NoopSink advertises ENABLED = false, so every instrumentation site
    // is a dead branch.
    const { assert!(!<NoopSink as Telemetry>::ENABLED) };

    let trace = busy_trace();
    let compiled = compile(&catalog::q4_port_scan(), 1, &CompilerConfig::default());
    let mut plain = Switch::new(PipelineConfig::default());
    let mut noop = Switch::new(PipelineConfig::default());
    let mut recorded = Switch::new(PipelineConfig::default());
    for sw in [&mut plain, &mut noop, &mut recorded] {
        sw.install(&compiled.rules).unwrap();
    }

    let mut sink = NoopSink;
    let mut rec = Recorder::new();
    let mut reports = 0usize;
    for pkt in trace.packets() {
        let a = plain.process(pkt, None);
        let b = noop.process_sink(pkt, None, &mut sink);
        let c = recorded.process_sink(pkt, None, &mut rec);
        assert_eq!(a.reports, b.reports, "NoopSink changed reports on {pkt:?}");
        assert_eq!(a.snapshot, b.snapshot, "NoopSink changed snapshots on {pkt:?}");
        assert_eq!(a.reports, c.reports, "Recorder changed reports on {pkt:?}");
        reports += a.reports.len();
    }
    assert!(reports > 0, "the scan fires, so the comparison is non-trivial");
    // The recorder journaled exactly one switch_report event per report.
    let journaled =
        rec.journal.events().iter().filter(|e| matches!(e, Event::SwitchReport { .. })).count();
    assert_eq!(journaled, reports);
}

mod proptests {
    use super::*;
    use newton::net::NodeId;
    use proptest::prelude::*;

    /// (kind, subject, timestamp): mirrors
    /// `proptest_exec_equivalence::dynamic_equivalence`.
    fn arb_events() -> impl Strategy<Value = Vec<(u8, usize, u64)>> {
        prop::collection::vec((0u8..4, 0usize..64, 1_000_000u64..99_000_000), 0..4)
    }

    fn links_of(topo: &Topology) -> Vec<(NodeId, NodeId)> {
        let mut links = Vec::new();
        for a in 0..topo.len() {
            for b in topo.neighbors(a) {
                if a < b {
                    links.push((a, b));
                }
            }
        }
        links
    }

    fn schedule(topo: &Topology, raw: &[(u8, usize, u64)]) -> EventSchedule {
        let links = links_of(topo);
        let mut events = EventSchedule::new();
        for &(kind, subject, ts) in raw {
            let s = subject % topo.len();
            let (a, b) = links[subject % links.len()];
            events = events.at(
                ts,
                match kind {
                    0 => NetworkEvent::FailSwitch { s },
                    1 => NetworkEvent::RestoreSwitch { s },
                    2 => NetworkEvent::FailLink { a, b },
                    _ => NetworkEvent::RestoreLink { a, b },
                },
            );
        }
        events
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn journal_thread_invariance_under_random_dynamics(
            raw_events in arb_events(),
            seed in any::<u64>(),
            intensity in 80u32..200,
            repair in any::<bool>(),
        ) {
            let topo = Topology::fat_tree(4);
            let mut trace = Trace::background(&TraceConfig {
                packets: 3_000,
                flows: 300,
                duration_ms: 100,
                ..Default::default()
            });
            trace.inject(
                AttackKind::PortScan,
                &InjectSpec { seed, intensity, window_ns: 90_000_000, ..Default::default() },
            );

            let run = |threads: usize| {
                let mut sys = NewtonSystem::new(Topology::fat_tree(4));
                sys.set_parallelism(Parallelism::new(threads));
                sys.set_repair(repair);
                sys.install(&catalog::q4_port_scan()).unwrap();
                sys.install(&catalog::q1_new_tcp()).unwrap();
                sys.enable_recorder();
                let mut events = schedule(&topo, &raw_events);
                sys.run_trace_with_events(&trace, 50, &mut events);
                sys.take_recorder().unwrap().journal.to_jsonl()
            };

            let base = run(1);
            prop_assert!(!base.is_empty());
            for threads in [2usize, 4, 8] {
                let j = run(threads);
                prop_assert_eq!(
                    &j, &base,
                    "journal bytes diverged at {} threads (repair={})", threads, repair
                );
            }
        }
    }
}
