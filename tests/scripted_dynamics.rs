//! Fig. 9 scripted: monitoring survives a mid-trace link failure with no
//! controller intervention, driven through the NewtonSystem facade and a
//! scheduled event timeline.

use newton::net::{EventSchedule, NetworkEvent, Topology};
use newton::query::catalog;
use newton::trace::attacks::InjectSpec;
use newton::trace::background::TraceConfig;
use newton::trace::{AttackKind, Trace};
use newton::{HostMapping, NewtonSystem};

fn short_trace() -> Trace {
    Trace::background(&TraceConfig {
        packets: 1_000,
        flows: 100,
        duration_ms: 100,
        ..Default::default()
    })
}

#[test]
fn scan_detected_in_epochs_before_and_after_a_failure() {
    let topo = Topology::fat_tree(4);
    let (ingress, egress) = (topo.edge_switches()[0], topo.edge_switches()[7]);
    let mut sys = NewtonSystem::new(topo);
    sys.set_mapping(HostMapping::Fixed { ingress, egress });
    sys.network_mut().router_mut().set_ecmp_mode(newton::net::EcmpMode::PairHash);
    let receipt = sys.install(&catalog::q4_port_scan()).unwrap();

    // Two epochs of scanning; a core link on the scan's path dies between
    // them (t = 100 ms).
    let mut trace = Trace::background(&TraceConfig {
        packets: 2_000,
        flows: 200,
        duration_ms: 200,
        ..Default::default()
    });
    trace.inject(
        AttackKind::PortScan,
        &InjectSpec { intensity: 100, start_ns: 0, window_ns: 90_000_000, ..Default::default() },
    );
    trace.inject(
        AttackKind::PortScan,
        &InjectSpec { seed: 9, intensity: 100, start_ns: 100_000_000, window_ns: 90_000_000 },
    );
    let scanner = *trace.guilty(AttackKind::PortScan).iter().next().unwrap();

    // Find the link the scan currently uses and schedule its death.
    let probe =
        trace.packets().iter().find(|p| p.src_ip == scanner).expect("scan packets exist").clone();
    let path = sys.network().router().path(ingress, egress, &probe.flow_key()).unwrap();
    let mut events =
        EventSchedule::new().at(100_000_000, NetworkEvent::FailLink { a: path[1], b: path[2] });

    let report = sys.run_trace_with_events(&trace, 100, &mut events);
    assert_eq!(report.epochs.len(), 2);
    assert_eq!(events.pending(), 0, "the failure fired");
    assert!(
        report.reported[&receipt.id].contains(&(scanner as u64)),
        "scanner must be reported despite the failure: {:?}",
        report.reported
    );
}

/// A link failure that partitions a chain mid-trace: every packet after
/// the cut has no route, and the report says so instead of silently
/// dropping the count (the seed discarded `BatchOutcome::unrouted` at
/// both flush sites).
#[test]
fn partitioning_link_failure_shows_up_as_unrouted_packets() {
    let mut sys = NewtonSystem::new(Topology::chain(3));
    sys.set_mapping(HostMapping::Fixed { ingress: 0, egress: 2 });
    let trace = short_trace();
    let mut events = EventSchedule::new().at(50_000_000, NetworkEvent::FailLink { a: 0, b: 1 });

    let report = sys.run_trace_with_events(&trace, 100, &mut events);
    assert_eq!(events.pending(), 0);
    assert!(report.unrouted > 0, "the cut chain must drop packets: {report:?}");
    assert!(report.unrouted < report.packets, "packets before the cut were delivered: {report:?}");
}

/// Events timestamped after the trace's last packet still fire: the run
/// drains the schedule, so a replay on the same (healed) network sees
/// current link state, not a stale cursor. The seed left such events
/// pending forever.
#[test]
fn trailing_events_past_trace_end_still_fire() {
    let mut sys = NewtonSystem::new(Topology::chain(3));
    sys.set_mapping(HostMapping::Fixed { ingress: 0, egress: 2 });
    let trace = short_trace();
    // Fail mid-trace; the repair crew only arrives long after the last
    // packet (t = 10 s on a 100 ms trace).
    let mut events = EventSchedule::new()
        .at(50_000_000, NetworkEvent::FailLink { a: 1, b: 2 })
        .at(10_000_000_000, NetworkEvent::RestoreLink { a: 1, b: 2 });

    let report = sys.run_trace_with_events(&trace, 100, &mut events);
    assert_eq!(events.pending(), 0, "the trailing restore must fire in the drain");
    assert!(report.unrouted > 0, "the mid-trace cut partitioned the chain");
    assert!(
        sys.network().router().link_up(1, 2),
        "the drained restore healed the link for the next run"
    );
    // And the healed network really does deliver again.
    let report2 = sys.run_trace(&trace, 100);
    assert_eq!(report2.unrouted, 0, "no drops after the restore: {report2:?}");
}
