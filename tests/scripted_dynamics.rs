//! Fig. 9 scripted: monitoring survives a mid-trace link failure with no
//! controller intervention, driven through the NewtonSystem facade and a
//! scheduled event timeline.

use newton::net::{EventSchedule, NetworkEvent, Topology};
use newton::query::catalog;
use newton::trace::attacks::InjectSpec;
use newton::trace::background::TraceConfig;
use newton::trace::{AttackKind, Trace};
use newton::{HostMapping, NewtonSystem};

#[test]
fn scan_detected_in_epochs_before_and_after_a_failure() {
    let topo = Topology::fat_tree(4);
    let (ingress, egress) = (topo.edge_switches()[0], topo.edge_switches()[7]);
    let mut sys = NewtonSystem::new(topo);
    sys.set_mapping(HostMapping::Fixed { ingress, egress });
    sys.network_mut().router_mut().set_ecmp_mode(newton::net::EcmpMode::PairHash);
    let receipt = sys.install(&catalog::q4_port_scan()).unwrap();

    // Two epochs of scanning; a core link on the scan's path dies between
    // them (t = 100 ms).
    let mut trace = Trace::background(&TraceConfig {
        packets: 2_000,
        flows: 200,
        duration_ms: 200,
        ..Default::default()
    });
    trace.inject(
        AttackKind::PortScan,
        &InjectSpec { intensity: 100, start_ns: 0, window_ns: 90_000_000, ..Default::default() },
    );
    trace.inject(
        AttackKind::PortScan,
        &InjectSpec { seed: 9, intensity: 100, start_ns: 100_000_000, window_ns: 90_000_000 },
    );
    let scanner = *trace.guilty(AttackKind::PortScan).iter().next().unwrap();

    // Find the link the scan currently uses and schedule its death.
    let probe =
        trace.packets().iter().find(|p| p.src_ip == scanner).expect("scan packets exist").clone();
    let path = sys.network().router().path(ingress, egress, &probe.flow_key()).unwrap();
    let mut events =
        EventSchedule::new().at(100_000_000, NetworkEvent::FailLink { a: path[1], b: path[2] });

    let report = sys.run_trace_with_events(&trace, 100, &mut events);
    assert_eq!(report.epochs, 2);
    assert_eq!(events.pending(), 0, "the failure fired");
    assert!(
        report.reported[&receipt.id].contains(&(scanner as u64)),
        "scanner must be reported despite the failure: {:?}",
        report.reported
    );
}
