//! Query churn: incremental compilation, diff-based update, and the
//! stable-id update path, exercised end to end.
//!
//! The contract under test: `Controller::update` keeps the query's id and
//! register slot, pushes only changed slices when the placement shape is
//! unchanged, restores the old query (surfacing the restore's modelled
//! delay) when the new rules are rejected, and — the core equivalence —
//! a diff-installed network is **indistinguishable** from a from-scratch
//! remove+reinstall twin: identical per-switch configuration, identical
//! `RunReport`, identical telemetry journal on a subsequent run.

use newton::compiler::CompilerConfig;
use newton::controller::Controller;
use newton::dataplane::PipelineConfig;
use newton::net::{Network, Topology};
use newton::packet::{PacketBuilder, TcpFlags};
use newton::query::ast::Primitive;
use newton::query::{catalog, Query};
use newton::trace::background::TraceConfig;
use newton::trace::Trace;
use newton::NewtonSystem;
use proptest::prelude::*;

/// `query` with every `result_filter` threshold shifted by `delta`.
fn with_threshold_delta(query: &Query, delta: u64) -> Query {
    let mut q = query.clone();
    for b in &mut q.branches {
        for p in &mut b.primitives {
            if let Primitive::ResultFilter { value, .. } = p {
                *value += delta;
            }
        }
    }
    q
}

fn syn(i: u16, dst: u32) -> newton::packet::Packet {
    PacketBuilder::new()
        .src_ip(0x0A00_0000 + i as u32)
        .dst_ip(dst)
        .src_port(5_000 + i)
        .tcp_flags(TcpFlags::SYN)
        .build()
}

/// Canonical rendering of a whole network's installed configuration.
fn net_digest(net: &Network) -> String {
    (0..net.switch_count()).map(|sw| net.switch(sw).config_digest()).collect()
}

#[test]
fn repeated_updates_keep_id_slot_and_keep_detecting() {
    let mut net = Network::new(Topology::chain(2), PipelineConfig::default());
    let mut ctl = Controller::new(CompilerConfig::default(), 81);
    let base = catalog::q1_new_tcp();
    let first = ctl.install(&base, &mut net, 12).unwrap();

    // A drill-down session: the same intent retuned over and over. Every
    // generation must keep the id, and the cache must serve the repeats.
    for round in 0..6u64 {
        let variant = with_threshold_delta(&base, (round % 3) * 10);
        let receipt = ctl.update(first.id, &variant, &mut net, 12).unwrap();
        assert_eq!(receipt.id, first.id, "round {round}: id must never churn");
        assert_eq!(ctl.installed().len(), 1);
        assert!(receipt.diff, "same shape: every round takes the diff path");
    }
    let stats = ctl.cache_stats();
    assert!(
        stats.hits >= 3,
        "three distinct variants cycled twice: the second cycle hits ({stats:?})"
    );

    // The last variant ran round=5 → delta 20 → threshold 60. 59 SYNs
    // stay silent, the 60th fires: the *final* definition is live.
    let final_threshold = catalog::thresholds::NEW_TCP + 20;
    let mut reports = 0;
    for i in 0..final_threshold as u16 {
        reports += net.deliver(&syn(i, 0xAC10_0099), 0, 1).reports.len();
    }
    assert_eq!(reports, 1, "the last update's threshold is the live one");
}

#[test]
fn update_while_holder_down_converges_after_repair() {
    // Q4 sliced across a 4-chain. A threshold change rewrites the final
    // slice's reporting rules, and edge switch 0 holds that slice (it
    // sits at depth 3 from the far edge). Update while switch 0 is down:
    // the diff path can only touch live switches; the repair pass must
    // later bring the rebooted holder back with the *new* definition —
    // byte-identical to a twin network that never failed.
    let build = || {
        let mut net = Network::new(Topology::chain(4), PipelineConfig::default());
        let mut ctl = Controller::new(CompilerConfig::default(), 82);
        let r = ctl.install(&catalog::q4_port_scan(), &mut net, 4).unwrap();
        assert_eq!(r.slices, 4);
        (ctl, net, r)
    };
    let tighter = with_threshold_delta(&catalog::q4_port_scan(), 7);

    let (mut ctl, mut net, r) = build();
    assert!(net.fail_switch(0));
    let receipt = ctl.update(r.id, &tighter, &mut net, 4).unwrap();
    assert_eq!(receipt.id, r.id);
    net.restore_switch(0);
    assert_eq!(net.switch(0).total_rule_count(), 0, "rebooted blank");
    let out = ctl.repair(&mut net);
    assert_eq!(out.repaired, vec![r.id], "repair re-places the lost slice");
    assert!(out.degraded.is_empty());

    // Twin that did the same update with all switches up.
    let (mut twin_ctl, mut twin_net, twin_r) = build();
    twin_ctl.update(twin_r.id, &tighter, &mut twin_net, 4).unwrap();
    assert_eq!(
        net_digest(&net),
        net_digest(&twin_net),
        "post-repair network must match the never-failed twin"
    );

    // And the updated CQE chain detects at the tightened threshold.
    let threshold = catalog::thresholds::PORT_SCAN + 7;
    let mut reports = Vec::new();
    for port in 0..threshold as u16 {
        let pkt = PacketBuilder::new()
            .src_ip(0xBEEF)
            .dst_ip(0xAC10_0002)
            .src_port(41_000)
            .dst_port(1_000 + port)
            .tcp_flags(TcpFlags::SYN)
            .build();
        reports.extend(net.deliver(&pkt, 0, 3).reports);
    }
    assert_eq!(reports.len(), 1, "repaired chain runs the updated definition");
}

#[test]
fn retune_receipt_counts_touched_switches() {
    let mut net = Network::new(Topology::chain(3), PipelineConfig::default());
    let mut ctl = Controller::new(CompilerConfig::default(), 83);
    let r = ctl.install(&catalog::q1_new_tcp(), &mut net, 12).unwrap();
    // Chain(3): both ends are edges, each holds the single slice.
    let retune = ctl.retune_threshold(r.id, 25, &mut net).unwrap();
    assert!(retune.rules >= 2, "both holders' reporting rules rewritten");
    assert_eq!(retune.switches, 2, "receipt counts switches actually touched");
    assert_eq!(retune.id, r.id);
    assert_eq!(retune.slices, 1);
}

#[test]
fn repair_reinstalls_retuned_rules_not_stale_artifacts() {
    // Retune, then crash + reboot the holder: the repair pass installs
    // from the stored artifacts, which must carry the retuned threshold —
    // not the install-time one.
    let mut net = Network::new(Topology::chain(2), PipelineConfig::default());
    let mut ctl = Controller::new(CompilerConfig::default(), 84);
    let r = ctl.install(&catalog::q1_new_tcp(), &mut net, 12).unwrap();
    ctl.retune_threshold(r.id, 25, &mut net).unwrap();
    let retuned_digest = net.switch(0).config_digest();

    assert!(net.fail_switch(0));
    net.restore_switch(0);
    let out = ctl.repair(&mut net);
    assert_eq!(out.repaired, vec![r.id]);
    assert_eq!(
        net.switch(0).config_digest(),
        retuned_digest,
        "the rebooted holder comes back with the retuned rules"
    );

    // Behavioral check: 25 fresh SYNs cross the retuned threshold (the
    // epoch state died with the switch; the threshold must not have).
    let mut reports = 0;
    for i in 0..25 {
        reports += net.deliver(&syn(i, 0xAC10_0042), 0, 1).reports.len();
    }
    assert_eq!(reports, 1, "retuned threshold survives the reboot");
}

#[test]
fn update_journal_spans_stay_on_the_stable_id() {
    let mut sys = NewtonSystem::new(Topology::fat_tree(4));
    let r = sys.install(&catalog::q6_syn_flood()).unwrap();
    sys.enable_recorder();
    let tighter = with_threshold_delta(&catalog::q6_syn_flood(), 5);
    let up = sys.update(r.id, &tighter).unwrap();
    assert_eq!(up.id, r.id);
    let journal = sys.take_recorder().unwrap().journal.to_jsonl();
    let expected = format!("\"type\":\"update\",\"epoch\":0,\"query\":{}", r.id);
    assert!(
        journal.contains(&expected),
        "update span keyed to the stable id; journal was: {journal}"
    );
    assert!(journal.contains("\"diff\":true"), "same shape → diff path recorded");
}

/// The operations a churn schedule draws from. Retunes and removals ride
/// along to prove the diff path composes with the rest of the runtime
/// reconfiguration surface.
#[derive(Debug, Clone, Copy)]
enum ChurnOp {
    /// Update query `slot` to the structure-preserving threshold variant.
    Update { slot: usize, delta: u64 },
    /// Retune query `slot`'s threshold in place.
    Retune { slot: usize, threshold: u64 },
    /// Remove query `slot` and immediately re-install it (a fresh id —
    /// identical on both twins since they mint ids in lockstep).
    Cycle { slot: usize },
}

fn arb_op() -> impl Strategy<Value = ChurnOp> {
    // Updates dominate the mix (4/7), retunes ride along (2/7), and the
    // occasional remove+reinstall cycle (1/7) keeps id minting honest.
    (0u8..7, 0usize..3, 0u64..60).prop_map(|(kind, slot, x)| match kind {
        0..=3 => ChurnOp::Update { slot, delta: (x % 3) * 5 },
        4 | 5 => ChurnOp::Retune { slot, threshold: 15 + (x % 45) },
        _ => ChurnOp::Cycle { slot },
    })
}

/// Build a system, install the three base queries, and play `ops`.
/// `diff` selects the update path; everything else is identical.
fn churned_system(ops: &[ChurnOp], diff: bool) -> (NewtonSystem, Vec<newton::dataplane::QueryId>) {
    // chain(4) with a 6-stage budget: Q1 and Q8 install whole, Q4 slices —
    // the schedule exercises both the whole-query and the CQE diff. (Only
    // one sliced query: the data plane rejects two queries sharing a resume
    // cursor index on a switch, so a second 11-stage query cannot coexist.)
    // Q8 has no ResultFilter, so threshold "updates" to it are no-op diffs.
    let mut sys = NewtonSystem::with_config(
        Topology::chain(4),
        PipelineConfig::default(),
        CompilerConfig::default(),
        6,
    );
    sys.controller_mut().set_diff_install(diff);
    let bases = [catalog::q1_new_tcp(), catalog::q4_port_scan(), catalog::q8_slowloris()];
    let mut ids: Vec<newton::dataplane::QueryId> =
        bases.iter().map(|q| sys.install(q).unwrap().id).collect();
    for op in ops {
        match *op {
            ChurnOp::Update { slot, delta } => {
                let variant = with_threshold_delta(&bases[slot], delta);
                let r = sys.update(ids[slot], &variant).unwrap();
                assert_eq!(r.id, ids[slot], "updates never mint a new id");
            }
            ChurnOp::Retune { slot, threshold } => {
                sys.retune_threshold(ids[slot], threshold).unwrap();
            }
            ChurnOp::Cycle { slot } => {
                sys.remove(ids[slot]).unwrap();
                ids[slot] = sys.install(&bases[slot]).unwrap().id;
            }
        }
    }
    (sys, ids)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole equivalence: after ANY churn schedule, the
    /// diff-installed network is indistinguishable from the from-scratch
    /// twin — identical per-switch configuration, and a subsequent trace
    /// run produces an identical `RunReport` and byte-identical telemetry
    /// journal. (Recorders attach *after* the churn: the two paths model
    /// different rule-channel timings by design, which is exactly the
    /// saving the churn bench measures.)
    #[test]
    fn diff_install_is_equivalent_to_from_scratch(
        ops in proptest::collection::vec(arb_op(), 1..12),
        seed in 0u64..1000,
    ) {
        let (mut diff_sys, diff_ids) = churned_system(&ops, true);
        let (mut full_sys, full_ids) = churned_system(&ops, false);
        prop_assert_eq!(&diff_ids, &full_ids, "twins mint ids in lockstep");
        prop_assert_eq!(
            net_digest(diff_sys.network()),
            net_digest(full_sys.network()),
            "switch configuration diverged after {:?}", ops
        );

        let trace = Trace::background(&TraceConfig {
            packets: 1_500,
            flows: 120,
            duration_ms: 100,
            seed,
            ..Default::default()
        });
        diff_sys.enable_recorder();
        full_sys.enable_recorder();
        let diff_report = diff_sys.run_trace(&trace, 50);
        let full_report = full_sys.run_trace(&trace, 50);
        prop_assert_eq!(diff_report, full_report, "RunReport diverged");
        prop_assert_eq!(
            diff_sys.take_recorder().unwrap().journal.to_jsonl(),
            full_sys.take_recorder().unwrap().journal.to_jsonl(),
            "telemetry journal diverged"
        );
    }
}
