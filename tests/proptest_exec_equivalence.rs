//! Old-vs-new equivalence: the compiled [`ExecPlan`] packet path and the
//! batched delivery API must be bit-identical to the seed semantics.
//!
//! Two properties over random queries, topologies and traces:
//!
//! 1. `Switch::process` (plan + scratch) ≡ `Switch::process_reference`
//!    (per-packet dispatch rebuild + per-stage PHV clone), for whole and
//!    CQE-sliced queries: same reports, same snapshot headers, same
//!    register state. `Switch::process_batch` ≡ the same reference, at
//!    arbitrary batch sizes (remainder chunks included), with mixed
//!    drop/mirror/resume lanes and through the CQE snapshot path.
//! 2. `Network::deliver_batch` ≡ sequential `Network::deliver`: same
//!    reports, same snapshot bytes, same per-link load counters.
//! 3. `Network::deliver_batch_parallel` ≡ `Network::deliver_batch` at any
//!    thread count (1, 2, 4, 8), for whole and CQE-sliced installs — with
//!    (2), the parallel executor is transitively bit-identical to the
//!    per-packet path. A second batch on the same network re-checks the
//!    property through the *reused* persistent worker pool and scratch
//!    buffers. The full system loop is likewise invariant in
//!    [`Parallelism`](newton::net::Parallelism).

use newton::compiler::{compile, compile_sliced, CompilerConfig};
use newton::dataplane::{BatchOutput, BatchSchedule, PipelineConfig, SliceInfo, Switch};
use newton::net::{Network, NodeId, Topology};
use newton::packet::Field;
use newton::packet::{Packet, PacketBuilder, Protocol, SnapshotHeader, TcpFlags};
use newton::query::ast::{CmpOp, Query, ReduceFunc};
use newton::query::QueryBuilder;
use newton::telemetry::NoopSink;
use proptest::prelude::*;

/// Packets from a small universe so counts actually accumulate.
fn arb_stream() -> impl Strategy<Value = Vec<Packet>> {
    prop::collection::vec(
        (
            0u32..6,
            0u32..6,
            0u16..8,
            0u16..4,
            any::<bool>(),
            prop_oneof![Just(0u8), Just(0x02), Just(0x10), Just(0x11), Just(0x12)],
            64u16..512,
        )
            .prop_map(|(s, d, sp, dp, tcp, flags, len)| {
                let mut b = PacketBuilder::new()
                    .src_ip(0x0A00_0000 + s)
                    .dst_ip(0xAC10_0000 + d)
                    .src_port(1000 + sp)
                    .dst_port(if dp == 0 { 80 } else { 8000 + dp })
                    .wire_len(len);
                if tcp {
                    b = b.protocol(Protocol::Tcp).tcp_flags(TcpFlags::from_bits(flags));
                } else {
                    b = b.protocol(Protocol::Udp);
                }
                b.build()
            }),
        20..300,
    )
}

#[derive(Debug, Clone)]
struct QuerySpec {
    filter_tcp: bool,
    key: Field,
    distinct: bool,
    sum_len: bool,
    threshold: u64,
}

fn arb_query() -> impl Strategy<Value = QuerySpec> {
    (
        any::<bool>(),
        prop_oneof![Just(Field::SrcIp), Just(Field::DstIp), Just(Field::DstPort)],
        any::<bool>(),
        any::<bool>(),
        1u64..25,
    )
        .prop_map(|(filter_tcp, key, distinct, sum_len, threshold)| QuerySpec {
            filter_tcp,
            key,
            distinct,
            sum_len,
            threshold,
        })
}

fn build(spec: &QuerySpec, name: &str) -> Query {
    let mut b = QueryBuilder::new(name);
    if spec.filter_tcp {
        b = b.filter_eq(Field::Proto, 6);
    }
    b = b.map(&[spec.key]);
    if spec.distinct {
        b = b.distinct(&[spec.key, Field::SrcPort]);
    }
    let (func, threshold) = if spec.sum_len {
        (ReduceFunc::SumField(Field::PktLen), spec.threshold * 200)
    } else {
        (ReduceFunc::Count, spec.threshold)
    };
    b.reduce(&[spec.key], func).result_filter(CmpOp::Ge, threshold).build()
}

const BIG_REGS: usize = 1 << 20;

fn pipeline() -> PipelineConfig {
    PipelineConfig { registers_per_array: BIG_REGS, ..Default::default() }
}

fn compiler_cfg() -> CompilerConfig {
    CompilerConfig { registers_per_array: BIG_REGS as u32, ..Default::default() }
}

/// Assert both switches expose identical 𝕊 register state at the rule
/// addresses of `rules`, sampling a spread of indices.
fn assert_registers_eq(planned: &Switch, reference: &Switch, rules: &newton::dataplane::RuleSet) {
    for (addr, _) in &rules.s {
        for idx in (0..BIG_REGS).step_by(BIG_REGS / 64) {
            assert_eq!(
                planned.read_register(*addr, idx),
                reference.read_register(*addr, idx),
                "register {addr:?}[{idx}] diverged"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn planned_process_matches_reference_whole(
        specs in prop::collection::vec(arb_query(), 1..3),
        stream in arb_stream(),
    ) {
        let mut planned = Switch::new(pipeline());
        let mut reference = Switch::new(pipeline());
        let mut rulesets = Vec::new();
        for (i, spec) in specs.iter().enumerate() {
            let compiled = compile(&build(spec, "prop"), i as u32 + 1, &compiler_cfg());
            planned.install(&compiled.rules).unwrap();
            reference.install(&compiled.rules).unwrap();
            rulesets.push(compiled.rules);
        }
        for pkt in &stream {
            let a = planned.process(pkt, None);
            let b = reference.process_reference(pkt, None);
            prop_assert_eq!(&a.reports, &b.reports, "reports diverged on {:?}", pkt);
            prop_assert_eq!(a.snapshot, b.snapshot, "snapshot diverged on {:?}", pkt);
        }
        for rules in &rulesets {
            assert_registers_eq(&planned, &reference, rules);
        }
    }

    #[test]
    fn planned_process_matches_reference_sliced(
        spec in arb_query(),
        stream in arb_stream(),
        budget in 2usize..5,
    ) {
        // CQE: slice one query over a chain of switches; each hop's planned
        // pipeline must mirror its reference twin, snapshot headers
        // included.
        let sliced = compile_sliced(&build(&spec, "prop"), 1, &compiler_cfg(), budget);
        let n = sliced.slice_count();
        prop_assume!(n >= 2);
        let mut planned: Vec<Switch> = (0..n).map(|_| Switch::new(pipeline())).collect();
        let mut reference: Vec<Switch> = (0..n).map(|_| Switch::new(pipeline())).collect();
        for i in 0..n {
            let info = SliceInfo {
                index: i as u8,
                total: n as u8,
                capture_set: sliced.capture_sets[i],
                restore_set: if i == 0 { sliced.capture_sets[0] } else { sliced.capture_sets[i - 1] },
                stages: (0, 12),
            };
            planned[i].install(&sliced.slices[i]).unwrap();
            planned[i].set_slice(1, info).unwrap();
            reference[i].install(&sliced.slices[i]).unwrap();
            reference[i].set_slice(1, info).unwrap();
        }
        for pkt in &stream {
            let mut sp_a = None;
            let mut sp_b = None;
            for i in 0..n {
                let a = planned[i].process(pkt, sp_a.as_ref());
                let b = reference[i].process_reference(pkt, sp_b.as_ref());
                prop_assert_eq!(&a.reports, &b.reports, "hop {} reports diverged", i);
                prop_assert_eq!(a.snapshot, b.snapshot, "hop {} snapshot diverged", i);
                sp_a = a.snapshot;
                sp_b = b.snapshot;
            }
        }
        for i in 0..n {
            assert_registers_eq(&planned[i], &reference[i], &sliced.slices[i]);
        }
    }

    #[test]
    fn process_batch_matches_reference_whole(
        specs in prop::collection::vec(arb_query(), 1..3),
        stream in arb_stream(),
        batch_size in 1usize..40,
        schedule in prop_oneof![Just(BatchSchedule::Sequential), Just(BatchSchedule::StageMajor)],
    ) {
        // The batched SoA path at arbitrary batch sizes — stream lengths
        // are rarely multiples of `batch_size`, so remainder chunks are
        // exercised constantly. Drop/mirror lanes arise from the random
        // queries' result filters and distinct StopBranch rules. Both walk
        // schedules must match the scalar reference bit for bit.
        let mut planned = Switch::new(PipelineConfig { batch_schedule: schedule, ..pipeline() });
        let mut reference = Switch::new(pipeline());
        let mut rulesets = Vec::new();
        for (i, spec) in specs.iter().enumerate() {
            let compiled = compile(&build(spec, "prop"), i as u32 + 1, &compiler_cfg());
            planned.install(&compiled.rules).unwrap();
            reference.install(&compiled.rules).unwrap();
            rulesets.push(compiled.rules);
        }
        let mut sink = NoopSink;
        let mut bout = BatchOutput::default();
        for chunk in stream.chunks(batch_size) {
            let tuples: Vec<(&Packet, Option<SnapshotHeader>)> =
                chunk.iter().map(|p| (p, None)).collect();
            planned.process_batch(&tuples, &mut sink, &mut bout);
            let mut want_reports = Vec::new();
            let mut want_snapshots = Vec::new();
            for (i, pkt) in chunk.iter().enumerate() {
                let o = reference.process_reference(pkt, None);
                want_reports.extend(o.reports.into_iter().map(|r| (i as u32, r)));
                want_snapshots.push(o.snapshot);
            }
            prop_assert_eq!(&bout.reports, &want_reports, "reports diverged in a chunk");
            prop_assert_eq!(&bout.snapshots, &want_snapshots, "snapshots diverged in a chunk");
        }
        for rules in &rulesets {
            assert_registers_eq(&planned, &reference, rules);
        }
    }

    #[test]
    fn process_batch_matches_reference_sliced_cqe(
        spec in arb_query(),
        stream in arb_stream(),
        budget in 2usize..5,
        batch_size in 1usize..40,
        schedule in prop_oneof![Just(BatchSchedule::Sequential), Just(BatchSchedule::StageMajor)],
    ) {
        // CQE through the batch path: whole batches traverse the sliced
        // chain hop by hop, resume lanes carrying each packet's snapshot
        // header (live cursors, DEAD markers, and pass-throughs mixed in
        // one batch).
        let sliced = compile_sliced(&build(&spec, "prop"), 1, &compiler_cfg(), budget);
        let n = sliced.slice_count();
        prop_assume!(n >= 2);
        let mut planned: Vec<Switch> = (0..n)
            .map(|_| Switch::new(PipelineConfig { batch_schedule: schedule, ..pipeline() }))
            .collect();
        let mut reference: Vec<Switch> = (0..n).map(|_| Switch::new(pipeline())).collect();
        for i in 0..n {
            let info = SliceInfo {
                index: i as u8,
                total: n as u8,
                capture_set: sliced.capture_sets[i],
                restore_set: if i == 0 { sliced.capture_sets[0] } else { sliced.capture_sets[i - 1] },
                stages: (0, 12),
            };
            planned[i].install(&sliced.slices[i]).unwrap();
            planned[i].set_slice(1, info).unwrap();
            reference[i].install(&sliced.slices[i]).unwrap();
            reference[i].set_slice(1, info).unwrap();
        }
        let mut sink = NoopSink;
        let mut bout = BatchOutput::default();
        for chunk in stream.chunks(batch_size) {
            let mut sp_a: Vec<Option<SnapshotHeader>> = vec![None; chunk.len()];
            let mut sp_b = sp_a.clone();
            for i in 0..n {
                let tuples: Vec<(&Packet, Option<SnapshotHeader>)> =
                    chunk.iter().zip(&sp_a).map(|(p, sp)| (p, *sp)).collect();
                planned[i].process_batch(&tuples, &mut sink, &mut bout);
                let mut want_reports = Vec::new();
                for (j, pkt) in chunk.iter().enumerate() {
                    let o = reference[i].process_reference(pkt, sp_b[j].as_ref());
                    want_reports.extend(o.reports.into_iter().map(|r| (j as u32, r)));
                    sp_b[j] = o.snapshot;
                }
                prop_assert_eq!(&bout.reports, &want_reports, "hop {} reports diverged", i);
                prop_assert_eq!(&bout.snapshots, &sp_b, "hop {} snapshots diverged", i);
                sp_a.copy_from_slice(&bout.snapshots);
            }
        }
        for i in 0..n {
            assert_registers_eq(&planned[i], &reference[i], &sliced.slices[i]);
        }
    }

    #[test]
    fn deliver_batch_matches_sequential_deliver(
        specs in prop::collection::vec(arb_query(), 1..3),
        stream in arb_stream(),
        topo_pick in 0usize..3,
        endpoint_seed in any::<u64>(),
    ) {
        let make_topo = || match topo_pick {
            0 => Topology::chain(3),
            1 => Topology::chain(5),
            _ => Topology::fat_tree(4),
        };
        let topo = make_topo();
        let edges = topo.edge_switches();
        let build_net = || {
            let mut net = Network::new(make_topo(), pipeline());
            // Spread the queries over the edge switches.
            for (i, spec) in specs.iter().enumerate() {
                let compiled = compile(&build(spec, "prop"), i as u32 + 1, &compiler_cfg());
                let sw = edges[i % edges.len()];
                net.switch_mut(sw).install(&compiled.rules).unwrap();
            }
            net
        };
        let pick = |i: usize, salt: u64| {
            edges[((endpoint_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (i as u64 + salt))
                % edges.len() as u64) as usize]
        };
        let triples: Vec<(&Packet, NodeId, NodeId)> = stream
            .iter()
            .enumerate()
            .map(|(i, p)| (p, pick(i, 1), pick(i, 2)))
            .collect();

        let mut seq = build_net();
        let mut seq_reports = Vec::new();
        let mut seq_sp = 0usize;
        let mut seq_delivered = 0usize;
        for &(p, ig, eg) in &triples {
            let r = seq.deliver(p, ig, eg);
            seq_reports.extend(r.reports);
            seq_sp += r.snapshot_bytes;
            seq_delivered += usize::from(r.clean_delivery);
        }

        let mut bat = build_net();
        let out = bat.deliver_batch(&triples);
        prop_assert_eq!(&out.reports, &seq_reports);
        prop_assert_eq!(out.snapshot_bytes, seq_sp);
        prop_assert_eq!(out.delivered, seq_delivered);
        prop_assert_eq!(out.unrouted, triples.len() - seq_delivered);
        for a in 0..seq.switch_count() {
            for b in a + 1..seq.switch_count() {
                prop_assert_eq!(seq.link_load(a, b), bat.link_load(a, b), "link ({}, {})", a, b);
            }
        }
    }

    #[test]
    fn parallel_batch_matches_sequential_at_any_thread_count(
        specs in prop::collection::vec(arb_query(), 1..3),
        stream in arb_stream(),
        topo_pick in 0usize..3,
        endpoint_seed in any::<u64>(),
        slice_first in any::<bool>(),
    ) {
        let make_topo = || match topo_pick {
            0 => Topology::chain(3),
            1 => Topology::chain(5),
            _ => Topology::fat_tree(4),
        };
        let topo = make_topo();
        let edges = topo.edge_switches().to_vec();
        // Optionally CQE-slice the first query over the edge switches so
        // snapshot headers must flow between hops; remaining queries
        // install whole. Equivalence must hold either way.
        let sliced = slice_first
            .then(|| compile_sliced(&build(&specs[0], "prop"), 1, &compiler_cfg(), 3))
            .filter(|s| (2..=edges.len()).contains(&s.slice_count()));
        let build_net = || {
            let mut net = Network::new(make_topo(), pipeline());
            let mut next_id = 1u32;
            if let Some(s) = &sliced {
                let n = s.slice_count();
                for (i, &edge) in edges.iter().enumerate().take(n) {
                    let info = SliceInfo {
                        index: i as u8,
                        total: n as u8,
                        capture_set: s.capture_sets[i],
                        restore_set: if i == 0 {
                            s.capture_sets[0]
                        } else {
                            s.capture_sets[i - 1]
                        },
                        stages: (0, 12),
                    };
                    net.switch_mut(edge).install(&s.slices[i]).unwrap();
                    net.switch_mut(edge).set_slice(1, info).unwrap();
                }
                next_id = 2;
            }
            for (i, spec) in specs.iter().enumerate().skip(usize::from(sliced.is_some())) {
                let compiled = compile(&build(spec, "prop"), next_id, &compiler_cfg());
                next_id += 1;
                net.switch_mut(edges[i % edges.len()]).install(&compiled.rules).unwrap();
            }
            net
        };
        let pick = |i: usize, salt: u64| {
            edges[((endpoint_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (i as u64 + salt))
                % edges.len() as u64) as usize]
        };
        let triples: Vec<(&Packet, NodeId, NodeId)> = stream
            .iter()
            .enumerate()
            .map(|(i, p)| (p, pick(i, 1), pick(i, 2)))
            .collect();

        let mut seq = build_net();
        let base = seq.deliver_batch(&triples);
        // Second batch on the same (now stateful) network: equivalence must
        // survive the persistent pool and scratch buffers being *reused*.
        let base2 = seq.deliver_batch(&triples);
        for threads in [1usize, 2, 4, 8] {
            let mut par = build_net();
            let out = par.deliver_batch_parallel(&triples, threads);
            prop_assert_eq!(&out.reports, &base.reports, "reports diverged at {} threads", threads);
            prop_assert_eq!(out.snapshot_bytes, base.snapshot_bytes, "threads={}", threads);
            prop_assert_eq!(out.delivered, base.delivered, "threads={}", threads);
            prop_assert_eq!(out.unrouted, base.unrouted, "threads={}", threads);
            let out2 = par.deliver_batch_parallel(&triples, threads);
            prop_assert_eq!(
                &out2.reports, &base2.reports,
                "reused-pool reports diverged at {} threads", threads
            );
            prop_assert_eq!(out2.snapshot_bytes, base2.snapshot_bytes, "reuse threads={}", threads);
            prop_assert_eq!(out2.delivered, base2.delivered, "reuse threads={}", threads);
            prop_assert_eq!(out2.unrouted, base2.unrouted, "reuse threads={}", threads);
            for a in 0..seq.switch_count() {
                for b in a + 1..seq.switch_count() {
                    prop_assert_eq!(
                        seq.link_load(a, b),
                        par.link_load(a, b),
                        "link ({}, {}) at {} threads", a, b, threads
                    );
                }
            }
        }
    }
}

/// The production loop end to end: identical [`RunReport`]s — detections,
/// packet/epoch counts, snapshot bytes — at every thread count, on a trace
/// large enough that epochs cross the parallel-batch threshold.
#[test]
fn system_run_is_thread_count_invariant() {
    use newton::net::Parallelism;
    use newton::query::catalog;
    use newton::system::NewtonSystem;
    use newton::trace::attacks::InjectSpec;
    use newton::trace::{AttackKind, Trace, TraceConfig};
    use std::collections::{BTreeMap, BTreeSet};

    let mut trace = Trace::background(&TraceConfig {
        packets: 6_000,
        flows: 400,
        duration_ms: 100,
        ..Default::default()
    });
    let scanner = trace
        .inject(
            AttackKind::PortScan,
            &InjectSpec { intensity: 150, window_ns: 90_000_000, ..Default::default() },
        )
        .guilty;

    let runs: Vec<_> = [1usize, 2, 4, 8]
        .into_iter()
        .map(|threads| {
            let mut sys = NewtonSystem::new(Topology::fat_tree(4));
            sys.set_parallelism(Parallelism::new(threads));
            let q4 = sys.install(&catalog::q4_port_scan()).unwrap();
            sys.install(&catalog::q1_new_tcp()).unwrap();
            let r = sys.run_trace(&trace, 50);
            let reported: BTreeMap<u32, BTreeSet<u64>> =
                r.reported.iter().map(|(&id, keys)| (id, keys.iter().copied().collect())).collect();
            (threads, q4.id, reported, r.packets, r.epochs, r.snapshot_bytes)
        })
        .collect();

    let (_, q4, reported, packets, epochs, snapshot_bytes) = runs[0].clone();
    assert!(packets > 0 && epochs.len() >= 2);
    assert!(
        reported.get(&q4).is_some_and(|k| k.contains(&(scanner as u64))),
        "scanner {scanner:#x} not reported: {reported:?}"
    );
    for (threads, _, rep, pk, ep, sp) in &runs[1..] {
        assert_eq!(*rep, reported, "detections diverged at {threads} threads");
        assert_eq!((*pk, ep, *sp), (packets, &epochs, snapshot_bytes), "at {threads} threads");
    }
}

/// Random mid-trace dynamics — switch crashes, reboots, link cuts and
/// restores — must leave the full system loop thread-count invariant:
/// identical detections, unrouted counts and repair outcomes at 1, 2, 4
/// and 8 threads, repair loop included.
mod dynamic_equivalence {
    use super::*;
    use newton::net::{EventSchedule, NetworkEvent, Parallelism};
    use newton::query::catalog;
    use newton::system::NewtonSystem;
    use newton::trace::attacks::InjectSpec;
    use newton::trace::{AttackKind, Trace, TraceConfig};
    use std::collections::{BTreeMap, BTreeSet};

    /// (kind, subject, timestamp-in-trace): kind picks fail/restore of a
    /// switch or a link; subjects index into the node/link tables.
    fn arb_events() -> impl Strategy<Value = Vec<(u8, usize, u64)>> {
        prop::collection::vec((0u8..4, 0usize..64, 1_000_000u64..99_000_000), 1..5)
    }

    fn links_of(topo: &Topology) -> Vec<(NodeId, NodeId)> {
        let mut links = Vec::new();
        for a in 0..topo.len() {
            for b in topo.neighbors(a) {
                if a < b {
                    links.push((a, b));
                }
            }
        }
        links
    }

    fn schedule(topo: &Topology, raw: &[(u8, usize, u64)]) -> EventSchedule {
        let links = links_of(topo);
        let mut events = EventSchedule::new();
        for &(kind, subject, ts) in raw {
            let s = subject % topo.len();
            let (a, b) = links[subject % links.len()];
            events = events.at(
                ts,
                match kind {
                    0 => NetworkEvent::FailSwitch { s },
                    1 => NetworkEvent::RestoreSwitch { s },
                    2 => NetworkEvent::FailLink { a, b },
                    _ => NetworkEvent::RestoreLink { a, b },
                },
            );
        }
        events
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn system_with_dynamics_is_thread_count_invariant(
            raw_events in arb_events(),
            topo_pick in 0usize..2,
            repair in any::<bool>(),
        ) {
            let make_topo = || match topo_pick {
                0 => Topology::chain(5),
                _ => Topology::fat_tree(4),
            };
            let mut trace = Trace::background(&TraceConfig {
                packets: 2_000,
                flows: 200,
                duration_ms: 100,
                ..Default::default()
            });
            trace.inject(
                AttackKind::PortScan,
                &InjectSpec { intensity: 120, window_ns: 90_000_000, ..Default::default() },
            );

            let runs: Vec<_> = [1usize, 2, 4, 8]
                .into_iter()
                .map(|threads| {
                    let mut sys = NewtonSystem::new(make_topo());
                    sys.set_parallelism(Parallelism::new(threads));
                    sys.set_repair(repair);
                    sys.install(&catalog::q4_port_scan()).unwrap();
                    sys.install(&catalog::q1_new_tcp()).unwrap();
                    let mut events = schedule(&make_topo(), &raw_events);
                    let r = sys.run_trace_with_events(&trace, 50, &mut events);
                    prop_assert_eq!(events.pending(), 0, "schedules always drain");
                    let reported: BTreeMap<u32, BTreeSet<u64>> = r
                        .reported
                        .iter()
                        .map(|(&id, keys)| (id, keys.iter().copied().collect()))
                        .collect();
                    Ok((threads, reported, r))
                })
                .collect::<Result<_, _>>()?;

            let (_, base_reported, base) = &runs[0];
            for (threads, reported, r) in &runs[1..] {
                prop_assert_eq!(reported, base_reported, "detections diverged at {} threads", threads);
                prop_assert_eq!(
                    (r.packets, &r.epochs, r.snapshot_bytes, r.messages, r.unrouted),
                    (base.packets, &base.epochs, base.snapshot_bytes, base.messages, base.unrouted),
                    "traffic accounting diverged at {} threads", threads
                );
                prop_assert_eq!(
                    (r.repairs, r.degraded_query_epochs, r.state_loss_events,
                     r.repair_delay_ms.to_bits()),
                    (base.repairs, base.degraded_query_epochs, base.state_loss_events,
                     base.repair_delay_ms.to_bits()),
                    "repair outcomes diverged at {} threads", threads
                );
            }
        }
    }
}
