//! The naive module layout is not just an accounting baseline — it
//! executes. Running Q1 on a naive-layout pipeline produces exactly the
//! same reports as the compact layout, while burning ~4× the stages
//! (§4.2's utilization argument, demonstrated end to end).

use newton::compiler::{
    compile, compose_naive_executable, decompose_query, generate_rules, retarget_to_naive,
    CompilerConfig,
};
use newton::dataplane::{LayoutKind, PipelineConfig, Switch};
use newton::packet::{FieldVector, PacketBuilder, TcpFlags};
use newton::query::catalog;
use std::collections::HashSet;

#[test]
fn naive_layout_executes_q1_like_compact() {
    let q = catalog::q1_new_tcp();
    let cfg = CompilerConfig::default();

    // Compact pipeline.
    let compact = compile(&q, 1, &cfg);
    let mut compact_sw = Switch::new(PipelineConfig::default());
    compact_sw.install(&compact.rules).unwrap();

    // Naive pipeline: modules strictly one per stage, kinds cycling.
    let decomp = decompose_query(&q, &cfg);
    let naive = compose_naive_executable(&q, &decomp);
    let (rules, _) = generate_rules(&q, 1, &decomp, &naive, &cfg);
    let rules = retarget_to_naive(&rules);
    let naive_stages = naive.stages();
    assert!(
        naive_stages >= compact.composition.stages() * 2,
        "naive must burn at least twice the stages ({naive_stages} vs {})",
        compact.composition.stages()
    );
    let mut naive_sw = Switch::new(PipelineConfig {
        layout: LayoutKind::Naive,
        stages: naive_stages,
        ..Default::default()
    });
    naive_sw.install(&rules).unwrap();

    // Same traffic through both; same report keys out.
    let field = compact.plan.branches[0].report_field;
    let mut compact_keys = HashSet::new();
    let mut naive_keys = HashSet::new();
    for victim in [0xAC10_0001u32, 0xAC10_0002] {
        for i in 0..catalog::thresholds::NEW_TCP as u16 {
            let pkt = PacketBuilder::new()
                .src_ip(0x0A00_0000 + i as u32)
                .dst_ip(victim)
                .src_port(2_000 + i)
                .tcp_flags(TcpFlags::SYN)
                .build();
            for r in compact_sw.process(&pkt, None).reports {
                compact_keys.insert(FieldVector(r.op_keys).get(field));
            }
            for r in naive_sw.process(&pkt, None).reports {
                naive_keys.insert(FieldVector(r.op_keys).get(field));
            }
        }
    }
    assert_eq!(compact_keys.len(), 2, "both victims detected on compact");
    assert_eq!(naive_keys, compact_keys, "naive layout computes the same answer");
}

#[test]
fn naive_composition_respects_kind_cycle() {
    let q = catalog::q4_port_scan();
    let cfg = CompilerConfig::default();
    let decomp = decompose_query(&q, &cfg);
    let naive = compose_naive_executable(&q, &decomp);
    use newton::dataplane::ModuleKind;
    for (m, &stage) in naive.kept.iter().zip(&naive.stage_of) {
        assert_eq!(ModuleKind::ALL[stage % 4], m.kind, "stage {stage} hosts the wrong kind");
    }
    // Strictly increasing stages: one module per stage.
    for w in naive.stage_of.windows(2) {
        assert!(w[0] < w[1]);
    }
}
