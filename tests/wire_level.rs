//! Byte-level fidelity: CQE works when every inter-switch hop actually
//! serializes the frame to wire bytes and re-parses it — proving the
//! 12-byte snapshot header composes with real Ethernet/IPv4/TCP formats
//! and that hosts receive byte-identical clean packets.

use newton::compiler::{compile, compile_sliced, CompilerConfig};
use newton::dataplane::{PipelineConfig, SliceInfo, Switch};
use newton::packet::wire;
use newton::packet::{PacketBuilder, SnapshotHeader, TcpFlags, SP_HEADER_LEN};
use newton::query::catalog;

#[test]
fn cqe_over_serialized_frames() {
    // Slice Q1 across two switches with a 3-stage budget.
    let cfg = CompilerConfig::default();
    let sliced = compile_sliced(&catalog::q1_new_tcp(), 1, &cfg, 3);
    assert!(sliced.slice_count() >= 2);

    let mut switches: Vec<Switch> =
        (0..sliced.slice_count()).map(|_| Switch::new(PipelineConfig::default())).collect();
    for (i, rules) in sliced.slices.iter().enumerate() {
        switches[i].install(rules).unwrap();
        switches[i]
            .set_slice(
                1,
                SliceInfo {
                    index: i as u8,
                    total: sliced.slice_count() as u8,
                    capture_set: sliced.capture_sets[i],
                    restore_set: if i == 0 {
                        sliced.capture_sets[0]
                    } else {
                        sliced.capture_sets[i - 1]
                    },
                    stages: (0, 12),
                },
            )
            .unwrap();
    }

    let mut reports = 0usize;
    for i in 0..catalog::thresholds::NEW_TCP as u16 {
        let pkt = PacketBuilder::new()
            .src_ip(0x0A00_0000 + i as u32)
            .dst_ip(0xAC10_0009)
            .src_port(1000 + i)
            .dst_port(443)
            .tcp_flags(TcpFlags::SYN)
            .wire_len(128)
            .build();

        // Hop chain with REAL serialization between every pair of hops.
        let mut wire_bytes = wire::encode(&pkt, None);
        for sw in switches.iter_mut() {
            let frame = wire::decode(&wire_bytes).expect("parse at switch ingress");
            let out = sw.process(&frame.packet, frame.snapshot.as_ref());
            reports += out.reports.len();
            wire_bytes = wire::encode(&frame.packet, out.snapshot.as_ref());
            if out.snapshot.is_some() {
                assert_eq!(
                    wire_bytes.len(),
                    128 + SP_HEADER_LEN,
                    "snapshot costs exactly 12 wire bytes"
                );
            }
        }

        // The last hop strips the header before host delivery.
        let final_frame = wire::decode(&wire_bytes).unwrap();
        let delivered = wire::encode(&final_frame.packet, None);
        assert_eq!(delivered, wire::encode(&pkt, None), "host gets a byte-identical packet");
    }
    assert_eq!(reports, 1, "threshold crossed exactly once across serialized hops");
}

#[test]
fn snapshot_survives_a_hostile_middlebox_copy() {
    // A snapshot-bearing frame copied byte-for-byte (e.g. through a
    // non-Newton switch) must decode to the identical snapshot.
    let pkt = PacketBuilder::new().tcp_flags(TcpFlags::SYN).wire_len(1500).build();
    let sp = SnapshotHeader {
        cursor: 2,
        active_mask: 0b101,
        hash_result: 4095,
        state_result: 123_456,
        global_result: u32::MAX - 1,
    };
    let bytes = wire::encode(&pkt, Some(&sp));
    let copied = bytes.clone();
    let frame = wire::decode(&copied).unwrap();
    assert_eq!(frame.snapshot, Some(sp));
    assert_eq!(frame.packet.wire_len, 1500);
}

#[test]
fn pcap_export_drives_the_pipeline_identically() {
    // Running a trace straight vs through a pcap write/read roundtrip
    // yields identical reports (timestamps are epoch metadata only here).
    use newton::trace::{caida_like, pcap};
    let mut trace = caida_like(0x77, 4_000);
    trace.inject(
        newton::trace::AttackKind::NewTcpBurst,
        &newton::trace::attacks::InjectSpec {
            intensity: 100,
            window_ns: 80_000_000,
            ..Default::default()
        },
    );

    let mut buf = Vec::new();
    pcap::write_pcap(&mut buf, trace.packets()).unwrap();
    let replayed = pcap::read_pcap(&buf[..]).unwrap();

    let run = |packets: &[newton::packet::Packet]| -> usize {
        let compiled = compile(&catalog::q1_new_tcp(), 1, &CompilerConfig::default());
        let mut sw = Switch::new(PipelineConfig::default());
        sw.install(&compiled.rules).unwrap();
        packets.iter().map(|p| sw.process(p, None).reports.len()).sum()
    };
    assert_eq!(run(trace.packets()), run(&replayed));
}
