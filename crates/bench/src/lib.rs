//! Shared plumbing for the reproduction harness.
//!
//! Every `benches/figNN.rs` / `benches/table3.rs` target regenerates one
//! table or figure of the paper's evaluation (§6) and prints the same
//! rows/series the paper reports. `cargo bench -p newton-bench` runs them
//! all; see EXPERIMENTS.md for the paper-vs-measured record.

use newton::packet::Packet;
use newton::trace::attacks::InjectSpec;
use newton::trace::{AttackKind, Trace};

/// Print a Markdown-ish table: header row, separator, then rows. The
/// rendering itself lives in `newton-telemetry`, shared with the examples'
/// `--report` output.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    print!("{}", newton::telemetry::render_table(title, header, rows));
}

/// The two evaluation traces (CAIDA-like, MAWI-like) with every attack
/// behaviour injected so all nine queries have signal.
pub fn evaluation_traces(packets: usize) -> Vec<(&'static str, Trace)> {
    let mut out = Vec::new();
    for (name, mut trace) in [
        ("CAIDA-like", newton::trace::caida_like(0xCA1DA, packets)),
        ("MAWI-like", newton::trace::mawi_like(0x3A31, packets)),
    ] {
        for (i, kind) in [
            AttackKind::NewTcpBurst,
            AttackKind::SshBrute,
            AttackKind::SuperSpreader,
            AttackKind::PortScan,
            AttackKind::UdpDdos,
            AttackKind::SynFlood,
            AttackKind::CompletedConns,
            AttackKind::Slowloris,
            AttackKind::DnsNoTcp,
        ]
        .into_iter()
        .enumerate()
        {
            trace.inject(
                kind,
                &InjectSpec {
                    seed: 100 + i as u64,
                    intensity: 150,
                    start_ns: (i as u64 % 5) * 100_000_000,
                    window_ns: 80_000_000,
                },
            );
        }
        out.push((name, trace));
    }
    out
}

/// A many-victim Q1 workload for accuracy experiments: `hosts` servers
/// receive 1..=`max_conns` connection attempts each (uniform spread), so
/// the true heavy-hitter set is dense around the threshold.
pub fn graded_syn_workload(hosts: u32, max_conns: u32, seed: u64) -> Vec<Packet> {
    use newton::packet::{PacketBuilder, TcpFlags};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut packets = Vec::new();
    for h in 0..hosts {
        let conns = 1 + (h * max_conns) / hosts;
        for c in 0..conns {
            packets.push(
                PacketBuilder::new()
                    .src_ip(0x0A00_0000 + rng.gen_range(0..1 << 20))
                    .dst_ip(0xAC10_0000 + h)
                    .src_port(rng.gen_range(1024..u16::MAX))
                    .dst_port(443)
                    .tcp_flags(TcpFlags::SYN)
                    .ts_ns((h as u64 * 131 + c as u64 * 7919) % 99_000_000)
                    .build(),
            );
        }
    }
    packets.sort_by_key(|p| p.ts_ns);
    packets
}

/// The process's peak resident set size in bytes (Linux `VmHWM` from
/// `/proc/self/status`), or `None` where that interface doesn't exist.
/// Benches report this as JSON `null` rather than guessing. One shared
/// reader lives in `newton-metrics` (the daemon polls it into a live
/// `process_peak_rss_bytes` gauge; the soak bench does the same during
/// runs); this wrapper only adds the `Option` for JSON `null`.
pub fn peak_rss_bytes() -> Option<u64> {
    match newton::metrics::peak_rss_bytes() {
        0 => None,
        b => Some(b),
    }
}

/// [`peak_rss_bytes`] rendered for hand-rolled JSON: the number, or
/// `null` on platforms without the procfs interface.
pub fn peak_rss_json() -> String {
    peak_rss_bytes().map_or_else(|| "null".into(), |b| b.to_string())
}

/// Pretty format a ratio in scientific-ish notation.
pub fn fmt_ratio(r: f64) -> String {
    if r == 0.0 {
        "0".into()
    } else if r >= 0.01 {
        format!("{r:.4}")
    } else {
        format!("{r:.2e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_formatting() {
        assert_eq!(fmt_ratio(0.0), "0");
        assert_eq!(fmt_ratio(0.0438), "0.0438");
        assert!(fmt_ratio(0.00047).contains('e'), "small ratios use scientific notation");
    }

    #[test]
    fn graded_workload_is_deterministic_and_graded() {
        let a = graded_syn_workload(100, 50, 9);
        let b = graded_syn_workload(100, 50, 9);
        assert_eq!(a, b);
        // Host h receives 1 + h*max/hosts connections: strictly graded.
        let count = |host: u32| a.iter().filter(|p| p.dst_ip == 0xAC10_0000 + host).count();
        assert!(count(99) > count(0));
        assert_eq!(count(0), 1);
    }

    #[test]
    fn peak_rss_is_sane_on_linux() {
        match peak_rss_bytes() {
            // A running test process owns at least a megabyte and well
            // under a terabyte.
            Some(b) => {
                assert!(b > 1 << 20, "VmHWM {b} implausibly small");
                assert!(b < 1 << 40, "VmHWM {b} implausibly large");
                assert_eq!(peak_rss_json(), b.to_string());
            }
            None => assert_eq!(peak_rss_json(), "null"),
        }
    }

    #[test]
    fn evaluation_traces_cover_all_attacks() {
        let traces = evaluation_traces(2_000);
        assert_eq!(traces.len(), 2);
        for (_, t) in &traces {
            assert_eq!(t.injections().len(), 9, "all nine attack kinds injected");
        }
    }
}
