//! Fig. 12: monitoring overhead — messages per raw packet — for Newton
//! and the five comparison systems, on both evaluation traces.
//!
//! Newton and Sonata export only what the intents ask for (two orders of
//! magnitude below the rest); TurboFlow/\*Flow scale with traffic;
//! FlowRadar sits near 1 %.

use newton::analyzer::OverheadMeter;
use newton::baselines::{ExportModel, FlowRadar, Scream, SonataExporter, StarFlow, TurboFlow};
use newton::compiler::{compile, CompilerConfig};
use newton::dataplane::{PipelineConfig, Switch};
use newton::query::catalog;
use newton::trace::Trace;
use newton_bench::{evaluation_traces, fmt_ratio, print_table};

/// Newton's overhead: install all nine queries in one pipeline, run the
/// trace in 100 ms epochs, count mirrored reports.
fn newton_ratio(trace: &Trace) -> f64 {
    let mut sw = Switch::new(PipelineConfig::default());
    let queries = catalog::all_queries();
    let slice = 4096 / queries.len() as u32;
    for (i, q) in queries.iter().enumerate() {
        // Disjoint register slices per query (§4.1's flexible allocation).
        let cfg = CompilerConfig {
            registers_per_array: slice,
            register_offset: i as u32 * slice,
            ..Default::default()
        };
        let compiled = compile(q, i as u32 + 1, &cfg);
        sw.install(&compiled.rules).expect("all queries fit");
    }
    let mut meter = OverheadMeter::new();
    for epoch in trace.epochs(100) {
        for p in epoch {
            meter.packet();
            for _ in sw.process(p, None).reports {
                meter.message(32);
            }
        }
        sw.clear_state();
    }
    meter.ratio()
}

/// Sonata: exact per-intent exportation via the reference interpreter, all
/// nine queries.
fn sonata_ratio(trace: &Trace) -> f64 {
    let mut exporters: Vec<SonataExporter> =
        catalog::all_queries().into_iter().map(SonataExporter::new).collect();
    let mut meter = OverheadMeter::new();
    for epoch in trace.epochs(100) {
        for p in epoch {
            meter.packet();
            for e in &mut exporters {
                for _ in 0..e.observe(p) {
                    meter.message(e.message_bytes());
                }
            }
        }
        for e in &mut exporters {
            for _ in 0..e.end_epoch() {
                meter.message(e.message_bytes());
            }
        }
    }
    meter.ratio()
}

fn model_ratio(model: &mut dyn ExportModel, trace: &Trace) -> f64 {
    let mut meter = OverheadMeter::new();
    for epoch in trace.epochs(100) {
        for p in epoch {
            meter.packet();
            for _ in 0..model.observe(p) {
                meter.message(model.message_bytes());
            }
        }
        for _ in 0..model.end_epoch() {
            meter.message(model.message_bytes());
        }
    }
    meter.ratio()
}

fn main() {
    let traces = evaluation_traces(60_000);
    let mut rows = Vec::new();
    let mut ratios = std::collections::HashMap::new();
    for (name, trace) in &traces {
        let newton = newton_ratio(trace);
        let sonata = sonata_ratio(trace);
        let star = model_ratio(&mut StarFlow::default_model(), trace);
        let turbo = model_ratio(&mut TurboFlow::default_model(), trace);
        let radar = model_ratio(&mut FlowRadar::default_model(), trace);
        let scream = model_ratio(&mut Scream::default_model(), trace);
        for (sys, r) in [
            ("Newton", newton),
            ("Sonata", sonata),
            ("*Flow", star),
            ("TurboFlow", turbo),
            ("FlowRadar", radar),
            ("SCREAM", scream),
        ] {
            rows.push(vec![name.to_string(), sys.into(), fmt_ratio(r)]);
            ratios.insert((*name, sys), r);
        }
    }
    print_table(
        "Fig. 12 — monitoring overhead (messages / raw packets)",
        &["Trace", "System", "Ratio"],
        &rows,
    );

    // Shape assertions from the paper.
    for (name, _) in &traces {
        let n = ratios[&(*name, "Newton")];
        let worst_precise = n.max(ratios[&(*name, "Sonata")]);
        for heavy in ["*Flow", "TurboFlow"] {
            let h = ratios[&(*name, heavy)];
            assert!(
                h / worst_precise.max(1e-9) >= 100.0,
                "{name}: {heavy} ({h:.4}) should be ≥2 orders above Newton/Sonata ({worst_precise:.6})"
            );
        }
        let fr = ratios[&(*name, "FlowRadar")];
        assert!((0.001..0.15).contains(&fr), "{name}: FlowRadar ratio {fr:.4} (~1% expected)");
    }
    println!(
        "\nNewton/Sonata sit ≥2 orders of magnitude below the per-packet exporters (paper: same)."
    );
}
