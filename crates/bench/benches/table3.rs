//! Table 3: hardware resources consumed by Newton, normalized by the
//! resource usage of a switch.p4-like reference program.
//!
//! Three categories, exactly as in the paper:
//! * per-stage — the naïve layout (one module/stage) vs the compact layout
//!   (all four modules/stage);
//! * per-module — 𝕂, ℍ, 𝕊, ℝ individually;
//! * per-primitive — the four example primitives, with each module's cost
//!   amortized over its 256-rule capacity.

use newton::dataplane::resources::{module_costs, ResourceVector, SWITCH_P4_REFERENCE};
use newton::dataplane::{Layout, LayoutKind, ModuleKind};
use newton_bench::print_table;

fn row(name: &str, v: ResourceVector) -> Vec<String> {
    let n = v.normalized(&SWITCH_P4_REFERENCE);
    let mut cells = vec![name.to_string()];
    cells.extend(n.as_array().iter().map(|x| format!("{x:.3}%")));
    cells
}

fn main() {
    let header = ["Metric", "Crossbar", "SRAM", "TCAM", "VLIW", "Hash Bits", "SALU", "Gateway"];

    // Per-stage: average per-stage usage of each layout over 12 stages.
    let naive = Layout::new(LayoutKind::Naive, 12);
    let compact = Layout::new(LayoutKind::Compact, 12);
    let naive_avg = naive.total_cost() * (1.0 / 12.0);
    let compact_avg = compact.total_cost() * (1.0 / 12.0);
    print_table(
        "Table 3 — per-stage (normalized by switch.p4)",
        &header,
        &[row("Baseline (naive layout)", naive_avg), row("Compact module layout", compact_avg)],
    );

    // Per-module.
    print_table(
        "Table 3 — per-module",
        &header,
        &[
            row("Field/Key Selection (K)", module_costs::KEY_SELECTION),
            row("Hash Calculation (H)", module_costs::HASH_CALCULATION),
            row("State Bank (S)", module_costs::STATE_BANK),
            row("Result Process (R)", module_costs::RESULT_PROCESS),
        ],
    );

    // Per-primitive: module suites amortized over 256 rules, matching the
    // paper's "each module supports up to 256 queries" accounting. A
    // filter/map uses one suite; reduce uses 2 (CM rows); distinct 3 (BF
    // arrays).
    let amortize = |suites: f64| {
        (module_costs::KEY_SELECTION
            + module_costs::HASH_CALCULATION
            + module_costs::STATE_BANK
            + module_costs::RESULT_PROCESS)
            * (suites / 256.0)
    };
    print_table(
        "Table 3 — per-primitive (amortized over 256 rules/module)",
        &header,
        &[
            row("filter(pkt.tcp.flags==2)", amortize(1.0)),
            row("map(pkt=>(pkt.dip))", amortize(1.0)),
            row("reduce(keys=(pkt.dip),f=sum)", amortize(2.0)),
            row("distinct(keys=(pkt.dip,pkt.sip))", amortize(3.0)),
        ],
    );

    // Sanity: the compact layout packs 4x the naive layout's per-stage use.
    let ratio = compact_avg.normalized(&SWITCH_P4_REFERENCE).crossbar
        / naive_avg.normalized(&SWITCH_P4_REFERENCE).crossbar;
    println!("\ncompact/naive per-stage utilization ratio: {ratio:.2}x (paper: ~4x)");
    for kind in ModuleKind::ALL {
        assert!(kind.cost().fits_within(&newton::dataplane::StageBudget::capacity()));
    }
}
