//! Fig. 14: Q1's monitoring accuracy and false-positive rate vs the number
//! of registers per array, for Sonata (one switch's memory) and Newton
//! with 1–3 hops of CQE-pooled memory.
//!
//! Mechanism reproduced: Q1's `reduce` runs on Count-Min rows in 𝕊
//! register arrays. Small arrays collide; collisions (a) inflate small
//! hosts past the threshold (false positives) and (b) make true hosts'
//! estimates jump *over* the exact crossing window (missed reports →
//! accuracy loss). CQE lets one query use the register arrays of every
//! switch on the path, so Newton over h hops behaves like a single switch
//! with h× the registers — exactly the experiment's setup ("Q1 can
//! utilize registers among all switches").

use newton::analyzer::DetectionMetrics;
use newton::compiler::{compile, CompilerConfig};
use newton::dataplane::{PipelineConfig, Switch};
use newton::packet::{Field, FieldVector};
use newton::query::catalog::{self, thresholds};
use newton::query::Interpreter;
use newton_bench::{graded_syn_workload, print_table};
use std::collections::HashSet;

/// Run Q1 with `registers` per array; return (accuracy, fpr) against the
/// exact ground truth.
fn run(
    registers: u32,
    workload: &[newton::packet::Packet],
    truth: &HashSet<u64>,
    hosts: usize,
) -> (f64, f64) {
    let cfg = CompilerConfig { registers_per_array: registers, ..Default::default() };
    let compiled = compile(&catalog::q1_new_tcp(), 1, &cfg);
    let mut sw = Switch::new(PipelineConfig {
        registers_per_array: registers as usize,
        ..Default::default()
    });
    sw.install(&compiled.rules).unwrap();
    let mut reported = HashSet::new();
    for p in workload {
        for r in sw.process(p, None).reports {
            reported.insert(FieldVector(r.op_keys).get(Field::DstIp));
        }
    }
    let m = DetectionMetrics::compare(&reported, truth);
    (m.accuracy(), m.fpr(hosts))
}

fn main() {
    let hosts = 2_000u32;
    let workload = graded_syn_workload(hosts, 80, 0xF1614);

    // Exact ground truth from the reference interpreter.
    let mut interp = Interpreter::new(catalog::q1_new_tcp());
    for p in &workload {
        interp.observe(p);
    }
    let truth = interp.end_epoch().reported;
    println!(
        "workload: {} packets over {hosts} hosts; {} true victims at threshold {}",
        workload.len(),
        truth.len(),
        thresholds::NEW_TCP
    );

    let mut rows = Vec::new();
    let mut acc_256 = Vec::new();
    let mut acc_4096 = Vec::new();
    for registers in [256u32, 512, 1024, 2048, 4096] {
        for hops in [0usize, 1, 2, 3] {
            // hops == 0 row is Sonata (sole switch); Newton_h pools h× the
            // registers via CQE.
            let effective = registers * hops.max(1) as u32;
            let (acc, fpr) = run(effective, &workload, &truth, hosts as usize);
            let label = if hops == 0 { "Sonata".into() } else { format!("Newton_{hops}") };
            rows.push(vec![registers.to_string(), label, format!("{acc:.3}"), format!("{fpr:.4}")]);
            if registers == 256 {
                acc_256.push(acc);
            }
            if registers == 4096 {
                acc_4096.push(acc);
            }
        }
    }
    print_table(
        "Fig. 14 — Q1 accuracy and FPR vs registers per array",
        &["Registers", "System", "Accuracy", "FPR"],
        &rows,
    );

    // Shape checks: more pooled memory → higher accuracy; Newton_3 beats
    // Sonata substantially at 256 registers.
    let sonata_256 = acc_256[0];
    let newton3_256 = acc_256[3];
    assert!(
        newton3_256 > sonata_256,
        "Newton_3 ({newton3_256:.3}) must beat Sonata ({sonata_256:.3}) at 256 registers"
    );
    assert!(acc_4096[0] >= sonata_256, "accuracy must improve with memory");
    println!(
        "\nAt 256 registers: Sonata accuracy {sonata_256:.3} vs Newton_3 {newton3_256:.3} \
         ({:.0}% relative improvement; paper reports ~350% at its trace scale).",
        (newton3_256 / sonata_256 - 1.0) * 100.0
    );
}
