//! Query churn: incremental compile + diff install vs from-scratch.
//!
//! A monitoring deployment does not install its query set once and walk
//! away — operators tighten thresholds, swap variants in and out, and
//! retire queries continuously (§2.1's runtime reconfiguration is the
//! paper's core pitch against recompile-the-world systems). This bench
//! measures what that churn costs on the rule channel:
//!
//! 1. Install a base population of renamed Q1–Q9 catalog structures on a
//!    fat-tree, one register slot each.
//! 2. Play a Zipf-ranked op stream over the population — threshold-variant
//!    updates dominate, in-place retunes ride along, and occasional
//!    remove+reinstall cycles keep id minting honest (the same mix the
//!    churn proptest pins for equivalence).
//! 3. Play the *identical* stream against a twin controller with
//!    `set_diff_install(false)`: every update becomes a full
//!    remove+reinstall — the from-scratch baseline that Sonata-style
//!    systems cannot beat even in spirit.
//!
//! Reported: p50/p99 modelled per-op rule-channel latency on both paths,
//! cumulative rule-channel bytes on both paths (and their ratio), the
//! compilation-cache hit rate, and wall-clock ops/sec. Results merge into
//! `BENCH_perf.json` as `churn_*` keys — run after `--bench perf`, which
//! rewrites the file wholesale.
//!
//! `NEWTON_PERF_SMOKE=1` shrinks population and stream for CI and gates
//! on the one inequality that makes diff install worth shipping: the diff
//! path must move strictly fewer rule-channel bytes than from-scratch.

use std::time::Instant;

use newton::compiler::CompilerConfig;
use newton::controller::Controller;
use newton::dataplane::{PipelineConfig, QueryId};
use newton::net::{Network, Topology};
use newton::query::{catalog, Primitive, Query};
use newton::trace::zipf::Zipf;
use newton_bench::print_table;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const STAGES: usize = 12;
/// Threshold presets the update stream cycles through — structure-
/// preserving, so the diff path touches only ℝ reporting rules and the
/// compilation cache converges on one entry per (structure, preset, slot).
const DELTAS: [u64; 4] = [0, 5, 10, 15];

/// One churn operation over the query population.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Re-submit member `rank` as a threshold variant (`DELTAS[preset]`).
    Update { rank: usize, preset: usize },
    /// Retune member `rank`'s reporting threshold in place.
    Retune { rank: usize, threshold: u64 },
    /// Remove member `rank` and immediately re-install it.
    Cycle { rank: usize },
}

/// The base population: catalog structures round-robin, renamed per slot
/// (the compile cache keys on structure + config, not name, so the
/// renames share cache entries across the population's repeats).
fn population(n: usize) -> Vec<Query> {
    let structures = catalog::all_queries();
    (0..n)
        .map(|i| {
            let mut q = structures[i % structures.len()].clone();
            q.name = format!("{}#{i}", q.name);
            q
        })
        .collect()
}

/// Shift every `ResultFilter` threshold by `delta` — the structure-
/// preserving variant an operator submits to tighten a query. Queries
/// that report via merge thresholds (Q8, Q9) have no `ResultFilter`, so
/// their "variant" is identical — the diff path detects the no-op and
/// moves nothing, while from-scratch pays the full reinstall anyway.
fn with_threshold_delta(query: &Query, delta: u64) -> Query {
    let mut q = query.clone();
    for b in &mut q.branches {
        for p in &mut b.primitives {
            if let Primitive::ResultFilter { value, .. } = p {
                *value += delta;
            }
        }
    }
    q
}

/// Generate the op stream once; both twins play it verbatim.
fn op_stream(ops: usize, n: usize, seed: u64) -> Vec<Op> {
    let zipf = Zipf::new(n, 1.1);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..ops)
        .map(|_| {
            let rank = zipf.sample(&mut rng);
            match rng.gen_range(0..7u8) {
                // Updates dominate (4/7), retunes ride along (2/7), the
                // occasional cycle (1/7) forces the full install path.
                0..=3 => {
                    Op::Update { rank, preset: rng.gen_range(0..DELTAS.len() as u32) as usize }
                }
                4 | 5 => Op::Retune { rank, threshold: 15 + rng.gen_range(0..45u32) as u64 },
                _ => Op::Cycle { rank },
            }
        })
        .collect()
}

struct ChurnRun {
    /// Modelled rule-channel latency per op, milliseconds.
    latencies: Vec<f64>,
    /// Rule-channel bytes over the stream (base install excluded).
    bytes: u64,
    /// Compile-cache hit rate over the whole run.
    cache_hit_rate: f64,
    /// Wall-clock ops/sec playing the stream.
    ops_per_sec: f64,
}

/// Install the population and play `ops`; `diff` selects the update path.
fn run_churn(pop: &[Query], ops: &[Op], diff: bool) -> ChurnRun {
    // A churn-scale population needs churn-scale tables: the default
    // 256-rule capacity models a lean ASIC profile and caps out near 200
    // concurrent queries; provision 4096 so the 512-query population fits
    // with headroom. Register arrays stay at their default.
    let pipeline = PipelineConfig { rule_capacity: 4096, ..PipelineConfig::default() };
    let mut net = Network::new(Topology::fat_tree(4), pipeline);
    let mut ctl = Controller::with_slots(CompilerConfig::default(), 0xC0FFEE, pop.len() as u32);
    ctl.set_diff_install(diff);
    let mut ids: Vec<QueryId> =
        pop.iter().map(|q| ctl.install(q, &mut net, STAGES).unwrap().id).collect();
    // Steady-state accounting: the base install is the same on both paths.
    ctl.reset_channel_stats();

    let mut latencies = Vec::with_capacity(ops.len());
    let start = Instant::now();
    for op in ops {
        let delay = match *op {
            Op::Update { rank, preset } => {
                let variant = with_threshold_delta(&pop[rank], DELTAS[preset]);
                let r = ctl.update(ids[rank], &variant, &mut net, STAGES).unwrap();
                assert_eq!(r.id, ids[rank], "updates never mint a new id");
                r.delay_ms
            }
            Op::Retune { rank, threshold } => {
                ctl.retune_threshold(ids[rank], threshold, &mut net).unwrap().delay_ms
            }
            Op::Cycle { rank } => {
                let removed = ctl.remove(ids[rank], &mut net).unwrap();
                let fresh = ctl.install(&pop[rank], &mut net, STAGES).unwrap();
                ids[rank] = fresh.id;
                removed.delay_ms + fresh.delay_ms
            }
        };
        latencies.push(delay);
    }
    let elapsed = start.elapsed().as_secs_f64();
    ChurnRun {
        latencies,
        bytes: ctl.channel_stats().bytes,
        cache_hit_rate: ctl.cache_stats().hit_rate(),
        ops_per_sec: ops.len() as f64 / elapsed,
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn stats(run: &ChurnRun) -> (f64, f64) {
    let mut s = run.latencies.clone();
    s.sort_by(f64::total_cmp);
    (percentile(&s, 0.50), percentile(&s, 0.99))
}

/// Merge the churn keys into `BENCH_perf.json` if `--bench perf` wrote it
/// (insert before the final brace), else write a standalone object.
#[allow(clippy::too_many_arguments)]
fn write_json(
    pop: usize,
    ops: usize,
    diff: &ChurnRun,
    scratch: &ChurnRun,
    d50: f64,
    d99: f64,
    s50: f64,
    s99: f64,
) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_perf.json");
    let keys = format!(
        "  \"churn_workload\": \"fat_tree(4), {pop} renamed Q1-Q9 structures, {ops} \
         Zipf(1.1) update/retune/cycle ops\",\n  \
         \"churn_install_p50_ms\": {d50:.3},\n  \
         \"churn_install_p99_ms\": {d99:.3},\n  \
         \"churn_scratch_p50_ms\": {s50:.3},\n  \
         \"churn_scratch_p99_ms\": {s99:.3},\n  \
         \"churn_diff_bytes\": {},\n  \
         \"churn_scratch_bytes\": {},\n  \
         \"churn_bytes_ratio\": {:.4},\n  \
         \"churn_cache_hit_rate\": {:.4},\n  \
         \"churn_ops_per_sec\": {:.0}\n",
        diff.bytes,
        scratch.bytes,
        diff.bytes as f64 / scratch.bytes as f64,
        diff.cache_hit_rate,
        diff.ops_per_sec,
    );
    let json = match std::fs::read_to_string(path) {
        Ok(existing) if existing.trim_end().ends_with('}') => {
            let head = existing.trim_end();
            let head = head[..head.len() - 1].trim_end().trim_end_matches(',');
            format!("{head},\n{keys}}}\n")
        }
        _ => format!("{{\n{keys}}}\n"),
    };
    std::fs::write(path, json).expect("write BENCH_perf.json");
    println!("\nwrote churn_* keys to {path}");
}

fn main() {
    let smoke = std::env::var_os("NEWTON_PERF_SMOKE").is_some();
    let (pop_n, ops_n) = if smoke { (64, 200) } else { (512, 2_000) };

    let pop = population(pop_n);
    let ops = op_stream(ops_n, pop_n, 0xC4D4_11CE);
    let diff = run_churn(&pop, &ops, true);
    let scratch = run_churn(&pop, &ops, false);

    let (d50, d99) = stats(&diff);
    let (s50, s99) = stats(&scratch);
    let ratio = diff.bytes as f64 / scratch.bytes as f64;

    print_table(
        &format!("Query churn ({pop_n} queries, {ops_n} ops, Zipf 1.1)"),
        &["Path", "p50 latency", "p99 latency", "Channel bytes", "Cache hits"],
        &[
            vec![
                "diff install".into(),
                format!("{d50:.2} ms"),
                format!("{d99:.2} ms"),
                format!("{}", diff.bytes),
                format!("{:.1}%", diff.cache_hit_rate * 100.0),
            ],
            vec![
                "from scratch".into(),
                format!("{s50:.2} ms"),
                format!("{s99:.2} ms"),
                format!("{}", scratch.bytes),
                format!("{:.1}%", scratch.cache_hit_rate * 100.0),
            ],
        ],
    );
    println!(
        "bytes ratio {ratio:.3} (diff/scratch); {:.0} ops/sec on the diff path",
        diff.ops_per_sec
    );

    // The inequality that justifies the diff path: strictly fewer bytes on
    // the rule channel for the same observable outcome (the churn proptest
    // pins the equivalence; this pins the saving).
    assert!(
        diff.bytes < scratch.bytes,
        "acceptance: diff install must move strictly fewer rule-channel bytes \
         than from-scratch ({} vs {})",
        diff.bytes,
        scratch.bytes,
    );

    if smoke {
        println!("\nsmoke mode: churn gate passed, skipping BENCH_perf.json");
        return;
    }
    write_json(pop_n, ops_n, &diff, &scratch, d50, d99, s50, s99);
}
