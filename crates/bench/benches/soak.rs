//! Soak-scale streaming replay: bounded-memory ingestion at 10⁸ packets.
//!
//! The streaming tentpole claims two things that only a long run can
//! prove: peak RSS is a function of the producer-pool shape (lanes ×
//! queue depth × segment size), **not** of trace length; and streamed
//! ingestion — generation, queue hand-off, epoch bookkeeping and all —
//! delivers within 15% of sequentially replaying the same packets from
//! memory. This bench measures both:
//!
//! 1. Run a *small* soak (a tenth of the target), record `VmHWM`.
//! 2. Run the *full* soak (default 10⁸ packets, override with
//!    `NEWTON_SOAK_PACKETS`), record `VmHWM` again.
//! 3. Gate: the high-water mark may grow at most 10% between the runs —
//!    a leak proportional to trace length (the bug class streaming
//!    exists to kill: 10⁸ packets materialized is ~5 GB) trips this
//!    instantly, because `VmHWM` is monotone over the process lifetime.
//! 4. Gate: `soak_pkts_per_sec` must be ≥ 0.85× the materialized
//!    sequential delivery rate of the *same workload* — a slice of the
//!    stream is materialized and pushed through `Network::deliver`
//!    packet by packet on the system's own routes
//!    ([`NewtonSystem::endpoints`]). Same trace, same queries, same
//!    paths; the only difference is everything streaming adds.
//!
//! The perf bench's `delivery_sequential_pkts_per_sec` is measured on a
//! *different* workload (one query per edge switch; the soak installs
//! the full Q1–Q9 catalog network-wide via the controller, several
//! times the per-packet execution work), so the in-bench baseline is
//! the apples-to-apples number. Results merge into `BENCH_perf.json`
//! as `soak_*` keys — run this bench *after* `--bench perf`, which
//! rewrites the file wholesale.
//!
//! `NEWTON_PERF_SMOKE=1` shrinks the run for CI: ≥10⁶ packets at queue
//! depth 2 (a nearly-full queue exercises backpressure), RSS flatness
//! between the 1× and 5× runs within 25% (the smaller runs sit closer
//! to the process baseline, so the ratio is noisier), and the rate gate
//! re-measures both sides once before failing, like every other smoke
//! gate.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use newton::compiler::CompilerConfig;
use newton::dataplane::PipelineConfig;
use newton::metrics::MetricsRegistry;
use newton::net::Topology;
use newton::query::catalog;
use newton::trace::stream::{PulseSpec, ReplayOptions, StreamConfig};
use newton::trace::{AttackKind, TraceConfig};
use newton::{NewtonSystem, RunReport};
use newton_bench::{peak_rss_bytes, print_table};

/// Packets per generated segment; with [`EPOCH_MS`] equal to the segment
/// length, one segment is one epoch window.
const SEGMENT_PACKETS: usize = 50_000;
const EPOCH_MS: u64 = 100;
/// Closed epochs kept in the rolling `RunReport` window — the
/// checkpointed-reporting bound that keeps a 10⁸-packet report small.
const EPOCH_RETENTION: usize = 256;
/// Segments materialized for the sequential-delivery baseline (10⁶
/// packets — long enough to time, small enough to hold in memory).
const BASELINE_SEGMENTS: u64 = 20;

/// The soak workload: `segments` × 50 000 background packets per 100 ms,
/// with three attack behaviours pulsing round-robin so the installed
/// queries do real reporting work the whole run.
fn soak_cfg(segments: u64) -> StreamConfig {
    StreamConfig {
        seed: 0x50AC_50AC,
        segments,
        segment: TraceConfig {
            packets: SEGMENT_PACKETS,
            flows: 2_000,
            duration_ms: EPOCH_MS,
            ..TraceConfig::default()
        },
        pulses: vec![
            PulseSpec { kind: AttackKind::PortScan, intensity: 300, period: 3, phase: 0 },
            PulseSpec { kind: AttackKind::SynFlood, intensity: 300, period: 3, phase: 1 },
            PulseSpec { kind: AttackKind::UdpDdos, intensity: 300, period: 3, phase: 2 },
        ],
    }
}

/// Fat-tree with the full Q1–Q9 catalog installed and a bounded epoch
/// window — the same shape a long-lived monitoring deployment would run.
/// The slot budget is sized to the catalog: the default 8 concurrent-query
/// slots would reject the ninth install with `SlotsExhausted`.
fn soak_system() -> NewtonSystem {
    let queries = catalog::all_queries();
    let mut sys = NewtonSystem::with_config_slots(
        Topology::fat_tree(4),
        PipelineConfig::default(),
        CompilerConfig::default(),
        12,
        queries.len() as u32,
    );
    for q in &queries {
        sys.install(q).unwrap();
    }
    sys.set_epoch_retention(Some(EPOCH_RETENTION));
    sys
}

/// One streamed soak run: returns (packets/sec over actual delivered
/// packets, report, live metrics registry). Single-pass timing — a soak
/// *is* one long pass; the rate gate re-measures before failing instead.
///
/// A live [`MetricsRegistry`] rides along: the replay's recycle/stall
/// counters register through the system, and a poller thread samples the
/// process high-water mark into `process_peak_rss_bytes` *during* the
/// run — the live max-tracked gauge a resident deployment would scrape,
/// rather than one end-of-run read.
fn run_streamed(segments: u64, opts: &ReplayOptions) -> (f64, RunReport, MetricsRegistry) {
    let cfg = soak_cfg(segments);
    let mut sys = soak_system();
    let registry = MetricsRegistry::new();
    sys.enable_metrics(&registry);
    let rss = registry
        .max_gauge("process_peak_rss_bytes", "Peak resident set size sampled during the run");
    let stop = Arc::new(AtomicBool::new(false));
    let poller = {
        let stop = Arc::clone(&stop);
        let rss = rss.clone();
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                rss.observe(newton::metrics::peak_rss_bytes());
                std::thread::sleep(Duration::from_millis(50));
            }
        })
    };
    let start = Instant::now();
    let report = sys.run_stream(&cfg, EPOCH_MS, opts);
    let rate = report.packets as f64 / start.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    let _ = poller.join();
    // One final sample so a run shorter than the poll period still lands.
    rss.observe(newton::metrics::peak_rss_bytes());
    (rate, report, registry)
}

/// The materialized sequential-delivery baseline: the same packets the
/// stream generates, pre-built in memory and walked one at a time
/// through `Network::deliver` on the system's own routes. Fastest of
/// `passes` after one untimed warm-up, per the perf bench's measurement
/// discipline.
fn sequential_delivery_rate(passes: usize) -> f64 {
    let trace = soak_cfg(BASELINE_SEGMENTS).materialize();
    let mut sys = soak_system();
    let triples: Vec<_> = trace
        .packets()
        .iter()
        .map(|p| {
            let (ig, eg) = sys.endpoints(p);
            (p, ig, eg)
        })
        .collect();
    let mut best = f64::INFINITY;
    for i in 0..=passes {
        let start = Instant::now();
        let mut reports = 0usize;
        for &(pkt, ig, eg) in &triples {
            reports += sys.network_mut().deliver(pkt, ig, eg).reports.len();
        }
        std::hint::black_box(reports);
        if i > 0 {
            best = best.min(start.elapsed().as_secs_f64());
        }
    }
    triples.len() as f64 / best
}

/// Every-run sanity pins: the bounded window held, every epoch was
/// counted, and the port scanner the pulse schedule promises was caught.
fn check_report(report: &RunReport, cfg: &StreamConfig, label: &str) {
    assert!(
        report.epochs.len() <= EPOCH_RETENTION,
        "{label}: retention window exceeded ({} epochs held)",
        report.epochs.len()
    );
    assert!(
        report.epoch_count >= cfg.segments,
        "{label}: expected >= {} epochs, counted {}",
        cfg.segments,
        report.epoch_count
    );
    let scanner = cfg.guilty(AttackKind::PortScan).expect("scan pulse present") as u64;
    assert!(
        report.reported.values().any(|keys| keys.contains(&scanner)),
        "{label}: port scanner never reported"
    );
}

fn fmt_rate(r: f64) -> String {
    format!("{:.2} Mpkt/s", r / 1e6)
}

fn fmt_mib(b: u64) -> String {
    format!("{:.1} MiB", b as f64 / (1 << 20) as f64)
}

/// Merge the soak keys into `BENCH_perf.json` if `--bench perf` wrote it
/// (insert before the final brace), else write a standalone object.
fn write_json(packets: u64, rate: f64, hwm: u64, small_hwm: u64, seq: f64, recycle_rate: f64) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_perf.json");
    let keys = format!(
        "  \"soak_workload\": \"Q1-Q9 network-wide, streamed {SEGMENT_PACKETS}-packet/\
         {EPOCH_MS}ms segments, epoch retention {EPOCH_RETENTION}\",\n  \
         \"soak_packets\": {packets},\n  \
         \"soak_pkts_per_sec\": {rate:.0},\n  \
         \"soak_peak_rss_bytes\": {hwm},\n  \
         \"soak_rss_note\": \"process_peak_rss_bytes gauge, polled every 50ms during the \
         run (not a single end-of-run read)\",\n  \
         \"soak_small_run_rss_bytes\": {small_hwm},\n  \
         \"soak_rss_ratio\": {:.3},\n  \
         \"soak_recycle_hit_rate\": {recycle_rate:.4},\n  \
         \"soak_delivery_sequential_pkts_per_sec\": {seq:.0},\n  \
         \"soak_vs_sequential\": {:.3}\n",
        hwm as f64 / small_hwm as f64,
        rate / seq,
    );
    let json = match std::fs::read_to_string(path) {
        Ok(existing) if existing.trim_end().ends_with('}') => {
            let head = existing.trim_end();
            let head = head[..head.len() - 1].trim_end().trim_end_matches(',');
            format!("{head},\n{keys}}}\n")
        }
        _ => format!("{{\n{keys}}}\n"),
    };
    std::fs::write(path, json).expect("write BENCH_perf.json");
    println!("\nwrote soak_* keys to {path}");
}

fn main() {
    let smoke = std::env::var_os("NEWTON_PERF_SMOKE").is_some();
    let total: u64 = std::env::var("NEWTON_SOAK_PACKETS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 1_000_000 } else { 100_000_000 });
    let segments = (total / SEGMENT_PACKETS as u64).max(1);
    // CI exercises backpressure (a nearly full queue) with a shallow
    // depth; the full soak uses the default pool shape it documents.
    let opts = if smoke {
        ReplayOptions { producers: 1, queue_depth: 2 }
    } else {
        ReplayOptions::default()
    };
    // The RSS-flatness ratio: the small run is 1/10th of the target (1×
    // vs 5× in smoke, where a tenth would sit too close to the process
    // baseline to time meaningfully).
    let small_segments = if smoke { segments } else { (segments / 10).max(1) };
    let big_segments = if smoke { segments * 5 } else { segments };

    // VmHWM is monotone, so run small-before-big (and both before the
    // baseline materializes anything): any growth the big run shows over
    // the small one is genuinely the big run's doing.
    let (small_rate, small_report, small_metrics) = run_streamed(small_segments, &opts);
    check_report(&small_report, &soak_cfg(small_segments), "small run");
    peak_rss_bytes().expect("soak requires /proc/self/status (Linux)");
    let small_hwm = small_metrics
        .value("process_peak_rss_bytes")
        .filter(|&b| b > 0)
        .expect("the RSS poller sampled the small run");

    let (mut rate, report, metrics) = run_streamed(big_segments, &opts);
    check_report(&report, &soak_cfg(big_segments), "full run");
    let hwm = metrics
        .value("process_peak_rss_bytes")
        .filter(|&b| b > 0)
        .expect("the RSS poller sampled the full run");
    let rss_ratio = hwm as f64 / small_hwm as f64;
    // Buffer-recycle effectiveness of the full run's replay: in steady
    // state nearly every segment buffer should come back from the pool.
    let recycle_hits = metrics.value("stream_recycle_hits_total").unwrap_or(0);
    let recycle_misses = metrics.value("stream_recycle_misses_total").unwrap_or(0);
    let recycle_rate = if recycle_hits + recycle_misses == 0 {
        0.0
    } else {
        recycle_hits as f64 / (recycle_hits + recycle_misses) as f64
    };

    print_table(
        &format!("Streaming soak (Q1-Q9, {} packets)", report.packets),
        &["Run", "Packets", "Rate", "VmHWM"],
        &[
            vec![
                "small".into(),
                small_report.packets.to_string(),
                fmt_rate(small_rate),
                fmt_mib(small_hwm),
            ],
            vec!["full".into(), report.packets.to_string(), fmt_rate(rate), fmt_mib(hwm)],
        ],
    );
    println!(
        "epochs: {} counted, {} held (retention {EPOCH_RETENTION}); rss ratio {rss_ratio:.3}; \
         buffer recycle {:.1}% ({recycle_hits} hits / {recycle_misses} misses)",
        report.epoch_count,
        report.epochs.len(),
        recycle_rate * 100.0,
    );

    // Gate 1: bounded memory. A longer trace may not move the high-water
    // mark more than the budget — O(trace) state anywhere in the replay
    // path shows up here as a multiple, not a percent.
    let rss_budget = if smoke { 1.25 } else { 1.10 };
    assert!(
        rss_ratio <= rss_budget,
        "acceptance: peak RSS must stay within {rss_budget}x across run lengths \
         (got {rss_ratio:.3}x: {} -> {})",
        fmt_mib(small_hwm),
        fmt_mib(hwm),
    );

    // Gate 2: streaming speed vs materialized sequential delivery of the
    // same workload. Re-measure before failing — the soak itself is a
    // single pass on a possibly shared machine, so a first miss gets one
    // more baseline measurement (and in smoke, one more streamed run)
    // before the job fails.
    let seq_passes = if smoke { 2 } else { 3 };
    let mut seq = sequential_delivery_rate(seq_passes);
    let mut ratio = rate / seq;
    if ratio < 0.85 {
        println!("note: rate gate at {ratio:.3}x on first measurement, re-measuring once");
        if smoke {
            let (rate2, _, _) = run_streamed(big_segments, &opts);
            rate = rate.max(rate2);
        }
        seq = seq.min(sequential_delivery_rate(seq_passes));
        ratio = rate / seq;
    }
    println!(
        "rate gate: streamed {} vs materialized sequential {} = {ratio:.3}x",
        fmt_rate(rate),
        fmt_rate(seq)
    );
    assert!(
        ratio >= 0.85,
        "acceptance: streamed ingestion must hold >= 0.85x the materialized \
         sequential delivery rate (got {ratio:.3}x)"
    );

    if smoke {
        println!("\nsmoke mode: soak gates passed, skipping BENCH_perf.json");
        return;
    }
    write_json(report.packets, rate, hwm, small_hwm, seq, recycle_rate);
}
