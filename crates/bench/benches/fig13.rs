//! Fig. 13: network-wide monitoring overhead for Q1 vs forwarding-path
//! length.
//!
//! Systems that treat switches as independent entities run the same query
//! at every hop, so each hop reports (or exports) independently — overhead
//! grows linearly with the hop count. Newton treats the path as one
//! consolidated pipeline (CQE + the processed-marker header): the network
//! reports once no matter how long the path is.

use newton::baselines::{ExportModel, FlowRadar, SonataExporter, StarFlow, TurboFlow};
use newton::compiler::CompilerConfig;
use newton::controller::Controller;
use newton::dataplane::PipelineConfig;
use newton::net::{Network, Topology};
use newton::query::catalog;
use newton::trace::attacks::InjectSpec;
use newton::trace::background::TraceConfig;
use newton::trace::{AttackKind, Trace};
use newton_bench::{fmt_ratio, print_table};

fn workload() -> Trace {
    let mut t = Trace::background(&TraceConfig {
        packets: 20_000,
        flows: 1_200,
        duration_ms: 500,
        ..Default::default()
    });
    t.inject(
        AttackKind::NewTcpBurst,
        &InjectSpec { intensity: 300, window_ns: 400_000_000, ..Default::default() },
    );
    t
}

/// Newton network-wide: Q1 deployed by the controller over an h-hop chain;
/// count reports from ALL switches.
fn newton_messages(trace: &Trace, hops: usize) -> u64 {
    let mut net = Network::new(Topology::chain(hops), PipelineConfig::default());
    let mut ctl = Controller::new(CompilerConfig::default(), 13);
    ctl.install(&catalog::q1_new_tcp(), &mut net, 12).unwrap();
    let mut messages = 0u64;
    for epoch in trace.epochs(100) {
        for p in epoch {
            messages += net.deliver(p, 0, hops - 1).reports.len() as u64;
        }
        net.clear_state();
    }
    messages
}

/// Sole-execution systems: every hop runs its own instance and exports
/// independently.
fn sole_messages(mk: impl Fn() -> Box<dyn ExportModel>, trace: &Trace, hops: usize) -> u64 {
    let mut instances: Vec<Box<dyn ExportModel>> = (0..hops).map(|_| mk()).collect();
    let mut messages = 0u64;
    for epoch in trace.epochs(100) {
        for p in epoch {
            for inst in &mut instances {
                messages += inst.observe(p);
            }
        }
        for inst in &mut instances {
            messages += inst.end_epoch();
        }
    }
    messages
}

fn main() {
    let trace = workload();
    let packets = trace.packets().len() as u64;
    let mut rows = Vec::new();
    let mut newton_series = Vec::new();
    for hops in [1usize, 2, 3] {
        let newton = newton_messages(&trace, hops);
        newton_series.push(newton);
        let sonata =
            sole_messages(|| Box::new(SonataExporter::new(catalog::q1_new_tcp())), &trace, hops);
        let turbo = sole_messages(|| Box::new(TurboFlow::default_model()), &trace, hops);
        let star = sole_messages(|| Box::new(StarFlow::default_model()), &trace, hops);
        let radar = sole_messages(|| Box::new(FlowRadar::default_model()), &trace, hops);
        for (sys, m) in [
            ("Newton", newton),
            ("Sonata", sonata),
            ("TurboFlow", turbo),
            ("*Flow", star),
            ("FlowRadar", radar),
        ] {
            rows.push(vec![
                hops.to_string(),
                sys.into(),
                m.to_string(),
                fmt_ratio(m as f64 / packets as f64),
            ]);
        }
    }
    print_table(
        "Fig. 13 — network-wide monitoring overhead for Q1 vs hop count",
        &["Hops", "System", "Messages", "Msgs/pkt"],
        &rows,
    );

    assert_eq!(
        newton_series[0], newton_series[2],
        "Newton's overhead must be hop-agnostic: {newton_series:?}"
    );
    println!(
        "\nNewton reports once per intent regardless of path length; the others grow linearly with hops (paper: same)."
    );
}
