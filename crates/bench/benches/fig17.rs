//! Fig. 17: network-wide placement of Q4 (Algorithm 2).
//!
//! (a) total and average table entries vs the number of switches the query
//!     needs (stages-per-switch ∈ {10, 5, 4, 3, 2} → 1–5+ required
//!     switches), on an 8-ary fat-tree and the ISP backbone, monitoring
//!     traffic from the edge (fat-tree: ToR uplinks; ISP: California).
//! (b) table entries vs fat-tree scale: totals grow linearly, the average
//!     per switch stabilizes.

use newton::compiler::{compile, CompilerConfig};
use newton::controller::place_query;
use newton::net::Topology;
use newton::query::catalog;
use newton_bench::print_table;

fn main() {
    let cfg = CompilerConfig::default();
    let compiled = compile(&catalog::q4_port_scan(), 1, &cfg);
    let rules = &compiled.rules;
    println!(
        "Q4 compiled: {} stages, {} module rules (paper: 10 stages / 19 modules)",
        compiled.composition.stages(),
        rules.module_rule_count()
    );

    // (a) entries vs required switches.
    let fat = Topology::fat_tree(8);
    let isp = Topology::isp_backbone();
    let mut rows = Vec::new();
    for stages_per_switch in [10usize, 5, 4, 3, 2] {
        for (tname, topo) in [("fat-tree-8", &fat), ("ISP backbone", &isp)] {
            let p = place_query(rules, topo, topo.edge_switches(), stages_per_switch);
            rows.push(vec![
                stages_per_switch.to_string(),
                p.slice_count.to_string(),
                tname.to_string(),
                p.total_entries().to_string(),
                format!("{:.1}", p.avg_entries_per_switch()),
                p.covered_switches().to_string(),
            ]);
        }
    }
    print_table(
        "Fig. 17(a) — Q4 placement vs required switches",
        &[
            "Stages/switch",
            "Required switches",
            "Topology",
            "Total entries",
            "Avg entries",
            "Covered",
        ],
        &rows,
    );

    // (b) entries vs fat-tree scale at 5 stages per switch.
    let mut rows_b = Vec::new();
    let mut totals = Vec::new();
    let mut avgs = Vec::new();
    for k in [4usize, 8, 12, 16] {
        let topo = Topology::fat_tree(k);
        let p = place_query(rules, &topo, topo.edge_switches(), 5);
        totals.push(p.total_entries());
        avgs.push(p.avg_entries_per_switch());
        rows_b.push(vec![
            format!("k={k}"),
            topo.len().to_string(),
            p.total_entries().to_string(),
            format!("{:.1}", p.avg_entries_per_switch()),
        ]);
    }
    print_table(
        "Fig. 17(b) — Q4 placement vs fat-tree scale (5 stages/switch)",
        &["Fat-tree", "Switches", "Total entries", "Avg entries"],
        &rows_b,
    );

    // Shape checks.
    for w in totals.windows(2) {
        assert!(w[1] > w[0], "total entries must grow with scale");
    }
    let spread = (avgs[3] - avgs[1]).abs() / avgs[1];
    assert!(spread < 0.35, "average entries must stabilize: {avgs:?}");
    println!(
        "\nTotal entries grow with topology scale while the average per switch stabilizes \
         (~{:.0} entries/switch) — acceptable overhead at scale (paper: same shape).",
        avgs[3]
    );
}
