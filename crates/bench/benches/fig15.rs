//! Fig. 15 (and Fig. 7): query compilation evaluation.
//!
//! (a) primitives per query; (b) modules and stages per query at each
//! cumulative optimization level (baseline → +Opt.1 → +Opt.2 → +Opt.3),
//! plus Sonata's logical tables / estimated stages for comparison; and the
//! Fig. 7 overall reduction ratios.

use newton::compiler::{sonata_estimate, stats_for, CompilerConfig};
use newton::query::catalog;
use newton_bench::print_table;

fn main() {
    let cfg = CompilerConfig::default();
    let queries = catalog::all_queries();

    // Fig. 15(a): primitives per query.
    let rows: Vec<Vec<String>> = queries
        .iter()
        .enumerate()
        .map(|(i, q)| vec![format!("Q{}", i + 1), q.primitive_count().to_string()])
        .collect();
    print_table("Fig. 15(a) — primitives per query", &["Query", "Primitives"], &rows);

    // Fig. 15(b): modules and stages per optimization level + Sonata.
    let mut mod_rows = Vec::new();
    let mut stage_rows = Vec::new();
    let mut min_mod_red = f64::MAX;
    let mut min_stage_red = f64::MAX;
    let mut fig7 = Vec::new();
    for (i, q) in queries.iter().enumerate() {
        let stats = stats_for(q, &cfg);
        let sonata = sonata_estimate(q);
        let m: Vec<usize> = stats.levels.iter().map(|l| l.1).collect();
        let s: Vec<usize> = stats.levels.iter().map(|l| l.2).collect();
        mod_rows.push(vec![
            format!("Q{}", i + 1),
            m[0].to_string(),
            m[1].to_string(),
            m[2].to_string(),
            m[3].to_string(),
            sonata.tables.to_string(),
        ]);
        stage_rows.push(vec![
            format!("Q{}", i + 1),
            s[0].to_string(),
            s[1].to_string(),
            s[2].to_string(),
            s[3].to_string(),
            sonata.stages.to_string(),
        ]);
        min_mod_red = min_mod_red.min(stats.module_reduction());
        min_stage_red = min_stage_red.min(stats.stage_reduction());
        fig7.push(vec![
            format!("Q{}", i + 1),
            format!("{:.1}%", stats.module_reduction() * 100.0),
            format!("{:.1}%", stats.stage_reduction() * 100.0),
        ]);
        assert!(s[3] <= 12, "Q{}: optimized stages must fit a Tofino", i + 1);
        assert!(
            s[3] <= sonata.stages,
            "Q{}: optimized Newton must not exceed Sonata stages",
            i + 1
        );
    }
    print_table(
        "Fig. 15(b) — modules per query",
        &["Query", "baseline", "+opt1", "+opt2", "+opt3", "Sonata tables"],
        &mod_rows,
    );
    print_table(
        "Fig. 15(b) — stages per query",
        &["Query", "baseline", "+opt1", "+opt2", "+opt3", "Sonata stages"],
        &stage_rows,
    );

    print_table("Fig. 7 — optimization reduction ratios", &["Query", "Modules", "Stages"], &fig7);
    println!(
        "\nminimum reductions across Q1–Q9: modules {:.1}%, stages {:.1}% (paper: 42.4% / 69.7%)",
        min_mod_red * 100.0,
        min_stage_red * 100.0
    );
}
