//! Fig. 10: forwarding interruption caused by updating queries.
//!
//! (a) Sonata's update reloads the P4 program: ~7.5 s outage even with an
//!     empty forwarding table, while Newton's rule update causes none.
//! (b) The outage grows linearly with the number of forwarding-table
//!     entries (TCAM or SRAM) that must be restored — ~0.5 min at 60 K.

use newton::baselines::RebootModel;
use newton::compiler::CompilerConfig;
use newton::controller::Controller;
use newton::dataplane::PipelineConfig;
use newton::net::{Network, Topology};
use newton::query::catalog;
use newton_bench::print_table;

fn main() {
    let model = RebootModel::default();

    // (a) Throughput outage for one query update at a typical table size.
    let mut net = Network::new(Topology::chain(2), PipelineConfig::default());
    let mut ctl = Controller::new(CompilerConfig::default(), 10);
    let first = ctl.install(&catalog::q1_new_tcp(), &mut net, 12).unwrap();
    let newton_update = ctl.update(first.id, &catalog::q6_syn_flood(), &mut net, 12).unwrap();

    print_table(
        "Fig. 10(a) — interruption of one query update",
        &["System", "Forwarding outage", "Notes"],
        &[
            vec![
                "Sonata".into(),
                format!("{:.1} s", model.outage_ms(0, 0) / 1000.0),
                "program reload, empty table".into(),
            ],
            vec![
                "Sonata (20K rules)".into(),
                format!("{:.1} s", model.outage_ms(10_000, 10_000) / 1000.0),
                "reload + rule restore".into(),
            ],
            vec![
                "Newton".into(),
                "0 ms".into(),
                format!("rule update finished in {:.1} ms", newton_update.delay_ms),
            ],
        ],
    );

    // (b) Outage vs table entries, TCAM and SRAM series.
    let mut rows = Vec::new();
    for entries in (0..=60_000).step_by(10_000) {
        rows.push(vec![
            format!("{entries}"),
            format!("{:.2}", model.outage_ms(entries, 0) / 1000.0),
            format!("{:.2}", model.outage_ms(0, entries) / 1000.0),
            "0.00".into(),
        ]);
    }
    print_table(
        "Fig. 10(b) — interruption delay vs restored table entries",
        &["Entries", "Sonata TCAM (s)", "Sonata SRAM (s)", "Newton (s)"],
        &rows,
    );

    // Shape checks the paper states.
    assert!((7.0..8.0).contains(&(model.outage_ms(0, 0) / 1000.0)));
    let at_60k = model.outage_ms(30_000, 30_000) / 1000.0;
    assert!((25.0..35.0).contains(&at_60k), "~0.5 min at 60K entries, got {at_60k:.1}s");
}
