//! Library performance: single-switch pipeline throughput (compiled
//! [`ExecPlan`] path vs the per-packet reference path) and network delivery
//! throughput (sequential `deliver` vs `deliver_batch`), on the full Q1–Q9
//! workload.
//!
//! Prints a table and writes machine-readable results to `BENCH_perf.json`
//! at the repository root. The refactor's acceptance bar is a ≥2× pipeline
//! speedup; the bench asserts it.

use std::time::Instant;

use newton::compiler::{compile, CompilerConfig};
use newton::dataplane::{PipelineConfig, Switch};
use newton::net::{Network, NodeId, Topology};
use newton::packet::Packet;
use newton::query::catalog;
use newton_bench::{evaluation_traces, print_table};

/// Timed passes over the trace; small enough to keep the bench under a
/// minute, large enough that per-packet costs dominate setup.
const PIPELINE_REPS: usize = 5;
const DELIVERY_REPS: usize = 3;

fn q19_switch() -> Switch {
    let mut sw = Switch::new(PipelineConfig::default());
    for (i, q) in catalog::all_queries().iter().enumerate() {
        let compiled = compile(q, i as u32 + 1, &CompilerConfig::default());
        sw.install(&compiled.rules).unwrap();
    }
    sw
}

/// Packets/sec over `reps` passes of the trace; the returned `sink` keeps
/// report counts observable so the loop isn't optimized away.
fn time_pipeline(
    mut sw: Switch,
    packets: &[Packet],
    reps: usize,
    mut run: impl FnMut(&mut Switch, &Packet) -> usize,
) -> (f64, usize) {
    let mut sink = 0usize;
    // Warm-up pass: populate registers and fault in the dispatch path.
    for p in packets {
        sink += run(&mut sw, p);
    }
    let start = Instant::now();
    for _ in 0..reps {
        for p in packets {
            sink += run(&mut sw, p);
        }
    }
    let secs = start.elapsed().as_secs_f64();
    ((reps * packets.len()) as f64 / secs, sink)
}

fn q19_network() -> (Network, Vec<NodeId>) {
    let topo = Topology::fat_tree(4);
    let edges: Vec<NodeId> = topo.edge_switches().to_vec();
    let mut net = Network::new(topo, PipelineConfig::default());
    for (i, q) in catalog::all_queries().iter().enumerate() {
        let compiled = compile(q, i as u32 + 1, &CompilerConfig::default());
        let sw = edges[i % edges.len()];
        net.switch_mut(sw).install(&compiled.rules).unwrap();
    }
    (net, edges)
}

fn endpoints(edges: &[NodeId], n: usize) -> Vec<(NodeId, NodeId)> {
    (0..n)
        .map(|i| {
            let x = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            (
                edges[(x % edges.len() as u64) as usize],
                edges[((x >> 32) % edges.len() as u64) as usize],
            )
        })
        .collect()
}

fn fmt_rate(r: f64) -> String {
    format!("{:.2} Mpkt/s", r / 1e6)
}

fn main() {
    // One evaluation trace with all nine attack behaviours injected, so
    // every query has work to do.
    let traces = evaluation_traces(40_000);
    let packets = traces[0].1.packets();

    // --- Single-switch pipeline: ExecPlan path vs reference path. ---
    let (ref_rate, ref_sink) = time_pipeline(q19_switch(), packets, PIPELINE_REPS, |sw, p| {
        sw.process_reference(p, None).reports.len()
    });
    let (plan_rate, plan_sink) = time_pipeline(q19_switch(), packets, PIPELINE_REPS, |sw, p| {
        sw.process(p, None).reports.len()
    });
    assert_eq!(plan_sink, ref_sink, "planned and reference paths must emit equal report counts");
    let pipeline_speedup = plan_rate / ref_rate;

    // --- Network delivery: sequential deliver vs deliver_batch. ---
    let pairs = endpoints(&q19_network().1, packets.len());
    let triples: Vec<(&Packet, NodeId, NodeId)> =
        packets.iter().zip(&pairs).map(|(p, &(ig, eg))| (p, ig, eg)).collect();

    let mut seq_reports = 0usize;
    let (mut net, _) = q19_network();
    let start = Instant::now();
    for _ in 0..DELIVERY_REPS {
        for &(p, ig, eg) in &triples {
            seq_reports += net.deliver(p, ig, eg).reports.len();
        }
    }
    let seq_rate = (DELIVERY_REPS * triples.len()) as f64 / start.elapsed().as_secs_f64();

    let mut batch_reports = 0usize;
    let (mut net, _) = q19_network();
    let start = Instant::now();
    for _ in 0..DELIVERY_REPS {
        batch_reports += net.deliver_batch(&triples).reports.len();
    }
    let batch_rate = (DELIVERY_REPS * triples.len()) as f64 / start.elapsed().as_secs_f64();
    assert_eq!(
        batch_reports, seq_reports,
        "batch and sequential delivery must emit equal report counts"
    );
    let delivery_speedup = batch_rate / seq_rate;

    print_table(
        "Pipeline & delivery throughput (Q1–Q9 workload)",
        &["Path", "Throughput", "Speedup"],
        &[
            vec!["Switch::process_reference".into(), fmt_rate(ref_rate), "1.00x".into()],
            vec![
                "Switch::process (ExecPlan)".into(),
                fmt_rate(plan_rate),
                format!("{pipeline_speedup:.2}x"),
            ],
            vec!["Network::deliver (sequential)".into(), fmt_rate(seq_rate), "1.00x".into()],
            vec![
                "Network::deliver_batch".into(),
                fmt_rate(batch_rate),
                format!("{delivery_speedup:.2}x"),
            ],
        ],
    );

    let json = format!(
        "{{\n  \"workload\": \"Q1-Q9, CAIDA-like trace, {} packets\",\n  \
         \"pipeline_reference_pkts_per_sec\": {ref_rate:.0},\n  \
         \"pipeline_execplan_pkts_per_sec\": {plan_rate:.0},\n  \
         \"pipeline_speedup\": {pipeline_speedup:.3},\n  \
         \"delivery_sequential_pkts_per_sec\": {seq_rate:.0},\n  \
         \"delivery_batch_pkts_per_sec\": {batch_rate:.0},\n  \
         \"delivery_speedup\": {delivery_speedup:.3}\n}}\n",
        packets.len(),
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_perf.json");
    std::fs::write(out, &json).expect("write BENCH_perf.json");
    println!("\nwrote {out}");

    assert!(
        pipeline_speedup >= 2.0,
        "acceptance: ExecPlan pipeline must be >= 2x reference (got {pipeline_speedup:.2}x)"
    );
}
