//! Library performance: single-switch pipeline throughput (compiled
//! [`ExecPlan`] path vs the per-packet reference path) and network delivery
//! throughput (sequential `deliver` vs `deliver_batch` vs the multi-core
//! `deliver_batch_parallel`), on the full Q1–Q9 workload.
//!
//! Prints a table and writes machine-readable results to `BENCH_perf.json`
//! at the repository root, including a `thread_scaling` series for the
//! parallel executor. Acceptance bars asserted here: the ExecPlan pipeline
//! is ≥2× the reference path, and — on machines with ≥4 cores — parallel
//! delivery is ≥2× the sequential batch path.
//!
//! Set `NEWTON_PERF_SMOKE=1` for a CI-sized run: a small trace, one timed
//! pass, threads {1, 2}, equality assertions only, and no JSON output.

use std::time::Instant;

use newton::compiler::{compile, CompilerConfig};
use newton::dataplane::{PipelineConfig, Switch};
use newton::net::{Network, NodeId, Topology};
use newton::packet::Packet;
use newton::query::catalog;
use newton_bench::{evaluation_traces, print_table};

/// Timed passes over the trace; small enough to keep the bench under a
/// minute, large enough that per-packet costs dominate setup.
const PIPELINE_REPS: usize = 5;
const DELIVERY_REPS: usize = 3;

fn q19_switch() -> Switch {
    let mut sw = Switch::new(PipelineConfig::default());
    for (i, q) in catalog::all_queries().iter().enumerate() {
        let compiled = compile(q, i as u32 + 1, &CompilerConfig::default());
        sw.install(&compiled.rules).unwrap();
    }
    sw
}

/// Packets/sec over `reps` passes of the trace; the returned `sink` keeps
/// report counts observable so the loop isn't optimized away.
fn time_pipeline(
    mut sw: Switch,
    packets: &[Packet],
    reps: usize,
    mut run: impl FnMut(&mut Switch, &Packet) -> usize,
) -> (f64, usize) {
    let mut sink = 0usize;
    // Warm-up pass: populate registers and fault in the dispatch path.
    for p in packets {
        sink += run(&mut sw, p);
    }
    let start = Instant::now();
    for _ in 0..reps {
        for p in packets {
            sink += run(&mut sw, p);
        }
    }
    let secs = start.elapsed().as_secs_f64();
    ((reps * packets.len()) as f64 / secs, sink)
}

fn q19_network() -> (Network, Vec<NodeId>) {
    let topo = Topology::fat_tree(4);
    let edges: Vec<NodeId> = topo.edge_switches().to_vec();
    let mut net = Network::new(topo, PipelineConfig::default());
    for (i, q) in catalog::all_queries().iter().enumerate() {
        let compiled = compile(q, i as u32 + 1, &CompilerConfig::default());
        let sw = edges[i % edges.len()];
        net.switch_mut(sw).install(&compiled.rules).unwrap();
    }
    (net, edges)
}

fn endpoints(edges: &[NodeId], n: usize) -> Vec<(NodeId, NodeId)> {
    (0..n)
        .map(|i| {
            let x = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            (
                edges[(x % edges.len() as u64) as usize],
                edges[((x >> 32) % edges.len() as u64) as usize],
            )
        })
        .collect()
}

fn fmt_rate(r: f64) -> String {
    format!("{:.2} Mpkt/s", r / 1e6)
}

/// Packets/sec (and total reports) for `reps` parallel passes at a fixed
/// thread count.
fn time_parallel(
    triples: &[(&Packet, NodeId, NodeId)],
    threads: usize,
    reps: usize,
) -> (f64, usize) {
    let (mut net, _) = q19_network();
    let mut reports = 0usize;
    let start = Instant::now();
    for _ in 0..reps {
        reports += net.deliver_batch_parallel(triples, threads).reports.len();
    }
    ((reps * triples.len()) as f64 / start.elapsed().as_secs_f64(), reports)
}

fn main() {
    let smoke = std::env::var_os("NEWTON_PERF_SMOKE").is_some();
    let (trace_len, pipeline_reps, delivery_reps, thread_counts): (usize, usize, usize, &[usize]) =
        if smoke {
            (4_000, 1, 1, &[1, 2])
        } else {
            (40_000, PIPELINE_REPS, DELIVERY_REPS, &[1, 2, 4, 8])
        };

    // One evaluation trace with all nine attack behaviours injected, so
    // every query has work to do.
    let traces = evaluation_traces(trace_len);
    let packets = traces[0].1.packets();

    // --- Single-switch pipeline: ExecPlan path vs reference path. ---
    let (ref_rate, ref_sink) = time_pipeline(q19_switch(), packets, pipeline_reps, |sw, p| {
        sw.process_reference(p, None).reports.len()
    });
    let (plan_rate, plan_sink) = time_pipeline(q19_switch(), packets, pipeline_reps, |sw, p| {
        sw.process(p, None).reports.len()
    });
    assert_eq!(plan_sink, ref_sink, "planned and reference paths must emit equal report counts");
    let pipeline_speedup = plan_rate / ref_rate;

    // --- Network delivery: sequential deliver vs deliver_batch. ---
    let pairs = endpoints(&q19_network().1, packets.len());
    let triples: Vec<(&Packet, NodeId, NodeId)> =
        packets.iter().zip(&pairs).map(|(p, &(ig, eg))| (p, ig, eg)).collect();

    let mut seq_reports = 0usize;
    let (mut net, _) = q19_network();
    let start = Instant::now();
    for _ in 0..delivery_reps {
        for &(p, ig, eg) in &triples {
            seq_reports += net.deliver(p, ig, eg).reports.len();
        }
    }
    let seq_rate = (delivery_reps * triples.len()) as f64 / start.elapsed().as_secs_f64();

    let mut batch_reports = 0usize;
    let (mut net, _) = q19_network();
    let start = Instant::now();
    for _ in 0..delivery_reps {
        batch_reports += net.deliver_batch(&triples).reports.len();
    }
    let batch_rate = (delivery_reps * triples.len()) as f64 / start.elapsed().as_secs_f64();
    assert_eq!(
        batch_reports, seq_reports,
        "batch and sequential delivery must emit equal report counts"
    );
    let delivery_speedup = batch_rate / seq_rate;

    // --- Multi-core delivery: deliver_batch_parallel at each thread count.
    // The executor is bit-identical to deliver_batch by construction; the
    // report-count equality below is the smoke-level check of that claim.
    let mut scaling: Vec<(usize, f64)> = Vec::new();
    for &threads in thread_counts {
        let (rate, reports) = time_parallel(&triples, threads, delivery_reps);
        assert_eq!(
            reports, batch_reports,
            "parallel delivery at {threads} threads must emit equal report counts"
        );
        scaling.push((threads, rate));
    }
    let par_rate = scaling.iter().map(|&(_, r)| r).fold(0.0f64, f64::max);
    let par_speedup = par_rate / batch_rate;

    let mut rows = vec![
        vec!["Switch::process_reference".into(), fmt_rate(ref_rate), "1.00x".into()],
        vec![
            "Switch::process (ExecPlan)".into(),
            fmt_rate(plan_rate),
            format!("{pipeline_speedup:.2}x"),
        ],
        vec!["Network::deliver (sequential)".into(), fmt_rate(seq_rate), "1.00x".into()],
        vec![
            "Network::deliver_batch".into(),
            fmt_rate(batch_rate),
            format!("{delivery_speedup:.2}x"),
        ],
    ];
    for &(threads, rate) in &scaling {
        rows.push(vec![
            format!("deliver_batch_parallel ({threads}t)"),
            fmt_rate(rate),
            format!("{:.2}x", rate / batch_rate),
        ]);
    }
    print_table(
        "Pipeline & delivery throughput (Q1–Q9 workload)",
        &["Path", "Throughput", "Speedup"],
        &rows,
    );

    if smoke {
        println!("\nsmoke mode: equality checks passed, skipping BENCH_perf.json");
        return;
    }

    let scaling_json = scaling
        .iter()
        .map(|&(threads, rate)| {
            format!(
                "    {{ \"threads\": {threads}, \"pkts_per_sec\": {rate:.0}, \"speedup_vs_batch\": {:.3} }}",
                rate / batch_rate
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"workload\": \"Q1-Q9, CAIDA-like trace, {} packets\",\n  \
         \"pipeline_reference_pkts_per_sec\": {ref_rate:.0},\n  \
         \"pipeline_execplan_pkts_per_sec\": {plan_rate:.0},\n  \
         \"pipeline_speedup\": {pipeline_speedup:.3},\n  \
         \"delivery_sequential_pkts_per_sec\": {seq_rate:.0},\n  \
         \"delivery_batch_pkts_per_sec\": {batch_rate:.0},\n  \
         \"delivery_speedup\": {delivery_speedup:.3},\n  \
         \"delivery_parallel_pkts_per_sec\": {par_rate:.0},\n  \
         \"delivery_parallel_speedup\": {par_speedup:.3},\n  \
         \"benched_on_cores\": {cores},\n  \
         \"thread_scaling\": [\n{scaling_json}\n  ]\n}}\n",
        packets.len(),
        cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1),
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_perf.json");
    std::fs::write(out, &json).expect("write BENCH_perf.json");
    println!("\nwrote {out}");

    assert!(
        pipeline_speedup >= 2.0,
        "acceptance: ExecPlan pipeline must be >= 2x reference (got {pipeline_speedup:.2}x)"
    );
    // The parallel speedup bar only means something with real cores under
    // it; single-core machines still run the equality checks above.
    let cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
    if cores >= 4 {
        assert!(
            par_speedup >= 2.0,
            "acceptance: parallel delivery must be >= 2x batch on {cores} cores \
             (got {par_speedup:.2}x)"
        );
    } else {
        println!("note: {cores} core(s) available, skipping the >=2x parallel speedup bar");
    }
}
