//! Library performance (Criterion): not a paper figure, but the numbers a
//! downstream user of this simulator cares about — pipeline throughput,
//! compile latency, placement latency.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use newton::compiler::{compile, compile_sliced, CompilerConfig};
use newton::controller::place_query;
use newton::dataplane::{PipelineConfig, Switch};
use newton::net::Topology;
use newton::query::catalog;
use newton::trace::caida_like;

fn pipeline_throughput(c: &mut Criterion) {
    let cfg = CompilerConfig::default();
    let mut sw = Switch::new(PipelineConfig::default());
    for (i, q) in catalog::all_queries().iter().enumerate() {
        sw.install(&compile(q, i as u32 + 1, &cfg).rules).unwrap();
    }
    let trace = caida_like(7, 10_000);
    let packets = trace.packets().to_vec();

    let mut g = c.benchmark_group("pipeline");
    g.throughput(Throughput::Elements(packets.len() as u64));
    g.bench_function("process_10k_packets_9_queries", |b| {
        b.iter(|| {
            let mut reports = 0usize;
            for p in &packets {
                reports += sw.process(p, None).reports.len();
            }
            std::hint::black_box(reports)
        })
    });
    g.finish();
}

fn compile_latency(c: &mut Criterion) {
    let cfg = CompilerConfig::default();
    let queries = catalog::all_queries();
    c.bench_function("compile_all_nine_queries", |b| {
        b.iter(|| {
            for (i, q) in queries.iter().enumerate() {
                std::hint::black_box(compile(q, i as u32 + 1, &cfg));
            }
        })
    });
    c.bench_function("compile_sliced_q4_budget4", |b| {
        b.iter(|| std::hint::black_box(compile_sliced(&queries[3], 1, &cfg, 4)))
    });
}

fn placement_latency(c: &mut Criterion) {
    let cfg = CompilerConfig::default();
    let rules = compile(&catalog::q4_port_scan(), 1, &cfg).rules;
    let topo = Topology::fat_tree(16);
    c.bench_function("place_q4_fat_tree_16", |b| {
        b.iter(|| std::hint::black_box(place_query(&rules, &topo, topo.edge_switches(), 5)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = pipeline_throughput, compile_latency, placement_latency
}
criterion_main!(benches);
