//! Library performance: single-switch pipeline throughput (compiled
//! [`ExecPlan`] path vs the per-packet reference path vs the batch-first
//! `process_batch` path, with a batch-size sweep) and network delivery
//! throughput (sequential `deliver` vs `deliver_batch` vs the multi-core
//! `deliver_batch_parallel`), on the full Q1–Q9 workload.
//!
//! Prints a table and writes machine-readable results to `BENCH_perf.json`
//! at the repository root, including a `thread_scaling` series for the
//! parallel executor.
//!
//! ## Honest measurement
//!
//! Every path is timed as **fastest-of-N passes after one untimed warm-up
//! pass**: the minimum pass time is the best estimator of the code's true
//! cost on a shared machine, where scheduler noise, frequency scaling and
//! cold caches only ever make a pass *slower*. All compared paths run the
//! same pass count, so the report-count equality checks still pin them to
//! bit-identical behaviour.
//!
//! Thread counts are **capped at the machine's cores** — running more
//! workers than cores measures time-slicing, not scaling, and must not be
//! published as scaling data. `NEWTON_BENCH_THREADS=1,2,16` overrides the
//! list; entries beyond the core count are then tagged
//! `oversubscribed: true` and excluded from the headline parallel speedup.
//!
//! Acceptance bars asserted here: the ExecPlan pipeline is ≥2× the
//! reference path; parallel delivery at 1 worker stays within 10% of both
//! `deliver_batch` *and* sequential `deliver` (it dispatches to the plain
//! per-packet walk, which must never lose to either reference path); and —
//! on machines with ≥4 cores — parallel delivery is ≥2× the sequential
//! batch path.
//!
//! Set `NEWTON_PERF_SMOKE=1` for a CI-sized run: a small trace, fewer
//! passes, threads {1, 2} (2 kept even on one core, purely as a
//! bit-equality check of the pool), the speedup gate at 1 worker
//! (re-measured once before failing, so shared-runner noise can't flake
//! the job), loosened wall-clock margins (the tiny trace is noisier than
//! the full one), and no JSON output.

use std::time::Instant;

use newton::compiler::{compile, CompilerConfig};
use newton::dataplane::{BatchOutput, PipelineConfig, Switch, DEFAULT_BATCH_LANES};
use newton::metrics::MetricsRegistry;
use newton::net::{effective_parallelism, Network, NodeId, PoolMetrics, Topology};
use newton::packet::{Packet, SnapshotHeader};
use newton::query::catalog;
use newton::telemetry::{NoopSink, Recorder};
use newton_bench::{evaluation_traces, peak_rss_json, print_table};

/// Timed passes over the trace; small enough to keep the bench under a
/// minute, large enough that per-packet costs dominate setup.
const PIPELINE_REPS: usize = 5;
const DELIVERY_REPS: usize = 4;

fn q19_switch() -> Switch {
    let mut sw = Switch::new(PipelineConfig::default());
    for (i, q) in catalog::all_queries().iter().enumerate() {
        let compiled = compile(q, i as u32 + 1, &CompilerConfig::default());
        sw.install(&compiled.rules).unwrap();
    }
    sw
}

/// Fastest-pass packets/sec over `passes` timed passes of `pass` (after
/// one untimed warm-up pass that faults in pages, grows maps and spawns
/// worker pools), plus the report-count sink across **all** passes so the
/// work is observable and comparable across paths.
fn best_rate(packets: usize, passes: usize, mut pass: impl FnMut() -> usize) -> (f64, usize) {
    let mut sink = pass();
    let mut best = f64::INFINITY;
    for _ in 0..passes {
        let start = Instant::now();
        sink += pass();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (packets as f64 / best, sink)
}

fn q19_network() -> (Network, Vec<NodeId>) {
    let topo = Topology::fat_tree(4);
    let edges: Vec<NodeId> = topo.edge_switches().to_vec();
    let mut net = Network::new(topo, PipelineConfig::default());
    for (i, q) in catalog::all_queries().iter().enumerate() {
        let compiled = compile(q, i as u32 + 1, &CompilerConfig::default());
        let sw = edges[i % edges.len()];
        net.switch_mut(sw).install(&compiled.rules).unwrap();
    }
    (net, edges)
}

fn endpoints(edges: &[NodeId], n: usize) -> Vec<(NodeId, NodeId)> {
    (0..n)
        .map(|i| {
            let x = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            (
                edges[(x % edges.len() as u64) as usize],
                edges[((x >> 32) % edges.len() as u64) as usize],
            )
        })
        .collect()
}

fn fmt_rate(r: f64) -> String {
    format!("{:.2} Mpkt/s", r / 1e6)
}

/// One `thread_scaling` measurement.
struct ScalingEntry {
    threads: usize,
    rate: f64,
    /// More workers than the machine has cores: bit-identical output, but
    /// the timing measures time-slicing, not scaling.
    oversubscribed: bool,
}

/// The thread counts to measure: `{1, 2, 4, 8} ∪ {cores}` capped at the
/// core count, or the `NEWTON_BENCH_THREADS` override (which may
/// oversubscribe — those entries get tagged). Smoke mode keeps `{1, 2}`
/// even on one core so CI always bit-checks the pool; the 2-worker timing
/// is then marked oversubscribed and carries no gate.
fn thread_counts(cores: usize, smoke: bool) -> Vec<(usize, bool)> {
    if let Ok(list) = std::env::var("NEWTON_BENCH_THREADS") {
        let mut counts: Vec<(usize, bool)> = list
            .split(',')
            .filter_map(|s| s.trim().parse::<usize>().ok())
            .map(|t| (t.max(1), t > cores))
            .collect();
        counts.sort_unstable();
        counts.dedup();
        if !counts.is_empty() {
            return counts;
        }
    }
    let base: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };
    let mut counts: Vec<(usize, bool)> =
        base.iter().copied().filter(|&t| t <= cores).map(|t| (t, false)).collect();
    if !smoke && cores > 1 && !counts.iter().any(|&(t, _)| t == cores) {
        counts.push((cores, false));
    }
    if smoke && !counts.iter().any(|&(t, _)| t == 2) {
        counts.push((2, true));
    }
    counts.sort_unstable();
    counts
}

fn main() {
    let smoke = std::env::var_os("NEWTON_PERF_SMOKE").is_some();
    let cores = effective_parallelism();
    // Smoke passes stay cheap (~ms each on the small trace) but there must
    // be several of them: fastest-of-1 on a shared CI runner is noise, and
    // the wall-clock gates below would flake on it.
    let (trace_len, pipeline_reps, delivery_reps): (usize, usize, usize) =
        if smoke { (8_000, 3, 3) } else { (40_000, PIPELINE_REPS, DELIVERY_REPS) };
    let counts = thread_counts(cores, smoke);

    // One evaluation trace with all nine attack behaviours injected, so
    // every query has work to do.
    let traces = evaluation_traces(trace_len);
    let packets = traces[0].1.packets();

    // --- Single-switch pipeline: ExecPlan path vs reference path. ---
    let mut sw = q19_switch();
    let (ref_rate, ref_sink) = best_rate(packets.len(), pipeline_reps, || {
        packets.iter().map(|p| sw.process_reference(p, None).reports.len()).sum()
    });
    let mut sw = q19_switch();
    let (plan_rate, plan_sink) = best_rate(packets.len(), pipeline_reps, || {
        packets.iter().map(|p| sw.process(p, None).reports.len()).sum()
    });
    assert_eq!(plan_sink, ref_sink, "planned and reference paths must emit equal report counts");
    let pipeline_speedup = plan_rate / ref_rate;

    // --- Telemetry sinks on the same hot path. `process_sink::<NoopSink>`
    // must monomorphize to the plain `process` (the `if T::ENABLED` guard
    // compiles the sink branch away), so its rate is gated within 2% of
    // the ExecPlan rate; the recording sink pays for event pushes and is
    // gated within 15%.
    let mut sw = q19_switch();
    let mut noop = NoopSink;
    let (noop_rate, noop_sink) = best_rate(packets.len(), pipeline_reps, || {
        packets.iter().map(|p| sw.process_sink(p, None, &mut noop).reports.len()).sum()
    });
    assert_eq!(noop_sink, plan_sink, "the no-op sink must not change pipeline behaviour");
    let mut sw = q19_switch();
    let mut recorder = Recorder::new();
    let (recorder_rate, recorder_sink) = best_rate(packets.len(), pipeline_reps, || {
        recorder.clear();
        packets.iter().map(|p| sw.process_sink(p, None, &mut recorder).reports.len()).sum()
    });
    assert_eq!(recorder_sink, plan_sink, "the recorder sink must not change pipeline behaviour");

    // --- Batch-first pipeline: `process_batch` over chunked slices of the
    // trace, swept across batch sizes. Bit-identical to the scalar path
    // (the report-count sink pins that per size); only throughput moves.
    let batch_tuples: Vec<(&Packet, Option<SnapshotHeader>)> =
        packets.iter().map(|p| (p, None)).collect();
    let measure_batched = |lanes: usize| {
        let mut sw = q19_switch();
        sw.reserve_batch(lanes, lanes * 2);
        let mut sink = NoopSink;
        let mut bout = BatchOutput::default();
        best_rate(packets.len(), pipeline_reps, || {
            batch_tuples
                .chunks(lanes)
                .map(|chunk| {
                    sw.process_batch(chunk, &mut sink, &mut bout);
                    bout.reports.len()
                })
                .sum()
        })
    };
    let batch_sweep: Vec<(usize, f64)> = [16usize, 32, 64, 128]
        .into_iter()
        .map(|lanes| {
            let (rate, sink) = measure_batched(lanes);
            assert_eq!(
                sink, plan_sink,
                "batched pipeline at {lanes} lanes must emit equal report counts"
            );
            (lanes, rate)
        })
        .collect();
    let batch_rate_default = batch_sweep
        .iter()
        .find(|&&(lanes, _)| lanes == DEFAULT_BATCH_LANES)
        .map(|&(_, rate)| rate)
        .expect("the sweep covers the default batch size");

    // --- Network delivery: sequential deliver vs deliver_batch vs the
    // multi-core executor, all timed identically (fastest of N passes).
    let pairs = endpoints(&q19_network().1, packets.len());
    let triples: Vec<(&Packet, NodeId, NodeId)> =
        packets.iter().zip(&pairs).map(|(p, &(ig, eg))| (p, ig, eg)).collect();

    let (mut net, _) = q19_network();
    let (seq_rate, seq_reports) = best_rate(triples.len(), delivery_reps, || {
        triples.iter().map(|&(p, ig, eg)| net.deliver(p, ig, eg).reports.len()).sum()
    });

    let (mut net, _) = q19_network();
    let (batch_rate, batch_reports) =
        best_rate(triples.len(), delivery_reps, || net.deliver_batch(&triples).reports.len());
    assert_eq!(
        batch_reports, seq_reports,
        "batch and sequential delivery must emit equal report counts"
    );
    let delivery_speedup = batch_rate / seq_rate;

    // The executor is bit-identical to deliver_batch by construction; the
    // report-count equality below is the smoke-level check of that claim.
    let mut scaling: Vec<ScalingEntry> = Vec::new();
    for &(threads, oversubscribed) in &counts {
        let (mut net, _) = q19_network();
        let (rate, reports) = best_rate(triples.len(), delivery_reps, || {
            net.deliver_batch_parallel(&triples, threads).reports.len()
        });
        assert_eq!(
            reports, batch_reports,
            "parallel delivery at {threads} threads must emit equal report counts"
        );
        scaling.push(ScalingEntry { threads, rate, oversubscribed });
    }
    // --- Metrics-enabled delivery: the same executor with a live
    // `PoolMetrics` attached. The handles are relaxed atomics updated once
    // per *batch* (never per packet), so the rate must stay within 2% of
    // the plain executor at the same thread count (smoke: 15%) — the
    // "observability is free enough to leave on" contract.
    let metrics_threads =
        counts.iter().filter(|&&(_, over)| !over).map(|&(t, _)| t).max().unwrap_or(1);
    let measure_with_metrics = || {
        let (mut net, _) = q19_network();
        let registry = MetricsRegistry::new();
        net.set_metrics(Some(PoolMetrics::register(&registry)));
        let out = best_rate(triples.len(), delivery_reps, || {
            net.deliver_batch_parallel(&triples, metrics_threads).reports.len()
        });
        (out, registry)
    };
    let ((metrics_rate, metrics_reports), metrics_registry) = measure_with_metrics();
    assert_eq!(
        metrics_reports, batch_reports,
        "metrics-observed delivery must emit equal report counts"
    );
    if metrics_threads > 1 {
        // threads <= 1 short-circuits to the sequential walk, which the
        // executor profile (and thus the metrics family) documents as
        // unobserved; with real workers the counters must have moved.
        assert!(
            metrics_registry.value("executor_batches_total").unwrap_or(0) > 0,
            "PoolMetrics must observe executor batches during the measurement"
        );
    }

    // `None` when every measured thread count oversubscribes the machine
    // (only possible via a NEWTON_BENCH_THREADS override) — the headline
    // parallel speedup is then meaningless and its bar is skipped.
    let par_rate: Option<f64> = scaling
        .iter()
        .filter(|e| !e.oversubscribed)
        .map(|e| e.rate)
        .fold(None, |best: Option<f64>, r| Some(best.map_or(r, |b| b.max(r))));
    let par_speedup = par_rate.map(|r| r / batch_rate);
    let par1_rate = scaling.iter().find(|e| e.threads == 1).map(|e| e.rate);
    let par1_speedup = par1_rate.map(|r| r / batch_rate);

    let mut rows = vec![
        vec!["Switch::process_reference".into(), fmt_rate(ref_rate), "1.00x".into()],
        vec![
            "Switch::process (ExecPlan)".into(),
            fmt_rate(plan_rate),
            format!("{pipeline_speedup:.2}x"),
        ],
        vec![
            "Switch::process_sink (NoopSink)".into(),
            fmt_rate(noop_rate),
            format!("{:.2}x", noop_rate / plan_rate),
        ],
        vec![
            "Switch::process_sink (Recorder)".into(),
            fmt_rate(recorder_rate),
            format!("{:.2}x", recorder_rate / plan_rate),
        ],
    ];
    for &(lanes, rate) in &batch_sweep {
        let tag = if lanes == DEFAULT_BATCH_LANES { ", default" } else { "" };
        rows.push(vec![
            format!("Switch::process_batch ({lanes} lanes{tag})"),
            fmt_rate(rate),
            format!("{:.2}x", rate / plan_rate),
        ]);
    }
    rows.extend([
        vec!["Network::deliver (sequential)".into(), fmt_rate(seq_rate), "1.00x".into()],
        vec![
            "Network::deliver_batch".into(),
            fmt_rate(batch_rate),
            format!("{delivery_speedup:.2}x"),
        ],
    ]);
    for e in &scaling {
        let label = if e.oversubscribed {
            format!("deliver_batch_parallel ({}t, oversubscribed)", e.threads)
        } else {
            format!("deliver_batch_parallel ({}t)", e.threads)
        };
        rows.push(vec![label, fmt_rate(e.rate), format!("{:.2}x", e.rate / batch_rate)]);
    }
    rows.push(vec![
        format!("deliver_batch_parallel ({metrics_threads}t, metrics on)"),
        fmt_rate(metrics_rate),
        format!("{:.2}x", metrics_rate / batch_rate),
    ]);
    print_table(
        "Pipeline & delivery throughput (Q1–Q9 workload)",
        &["Path", "Throughput", "Speedup"],
        &rows,
    );

    // Smoke gates run on shared CI runners with a deliberately tiny trace;
    // their margins are loosened so only a real regression — not
    // noisy-neighbor scheduling — fails the job. The full run keeps the
    // publication bars.
    let pipeline_floor = if smoke { 1.5 } else { 2.0 };
    assert!(
        pipeline_speedup >= pipeline_floor,
        "acceptance: ExecPlan pipeline must be >= {pipeline_floor}x reference \
         (got {pipeline_speedup:.2}x)"
    );
    // Telemetry overhead gates. The no-op sink runs the *same machine
    // code* as `process`, so a measured gap is pure scheduler noise —
    // re-measure both sides once before failing, as with the 1-worker
    // gate below. Smoke margins are loosened like the pipeline bar above:
    // the tiny smoke trace swings ±15% under noisy neighbors.
    let (noop_floor, recorder_floor) = if smoke { (0.85, 0.70) } else { (0.98, 0.85) };
    let mut noop_ratio = noop_rate / plan_rate;
    let mut recorder_ratio = recorder_rate / plan_rate;
    if noop_ratio < noop_floor || recorder_ratio < recorder_floor {
        println!(
            "note: telemetry gate at noop {noop_ratio:.3}x / recorder {recorder_ratio:.3}x \
             on first measurement, re-measuring once"
        );
        let mut sw = q19_switch();
        let (plan2, _) = best_rate(packets.len(), pipeline_reps, || {
            packets.iter().map(|p| sw.process(p, None).reports.len()).sum()
        });
        let mut sw = q19_switch();
        let (noop2, _) = best_rate(packets.len(), pipeline_reps, || {
            packets.iter().map(|p| sw.process_sink(p, None, &mut noop).reports.len()).sum()
        });
        let mut sw = q19_switch();
        let (rec2, _) = best_rate(packets.len(), pipeline_reps, || {
            recorder.clear();
            packets.iter().map(|p| sw.process_sink(p, None, &mut recorder).reports.len()).sum()
        });
        noop_ratio = noop_ratio.max(noop2 / plan2);
        recorder_ratio = recorder_ratio.max(rec2 / plan2);
    }
    assert!(
        noop_ratio >= noop_floor,
        "acceptance: NoopSink pipeline rate must stay within 2% of process \
         (smoke: 15%) — got {noop_ratio:.3}x"
    );
    assert!(
        recorder_ratio >= recorder_floor,
        "acceptance: Recorder pipeline rate must stay within 15% of process \
         (smoke: 30%) — got {recorder_ratio:.3}x"
    );
    // Batch-path gate. `process` now *is* the batch engine at batch size 1
    // (the paths were unified), so the per-packet API already carries the
    // engine's full speedup and the batch call's only remaining edge is
    // amortized per-call overhead — measured at ~5-10% on this workload,
    // inside runner noise. The gate is therefore a no-regression guard
    // (batching must never lose to per-packet calls), not a speedup bar;
    // smoke loosens it further (the tiny trace under-fills batches) and
    // both modes re-measure once before failing, like the other gates.
    let batch_floor = if smoke { 0.85 } else { 0.98 };
    let mut batch_ratio = batch_rate_default / plan_rate;
    if batch_ratio < batch_floor {
        println!(
            "note: batch-path gate at {batch_ratio:.3}x on first measurement, re-measuring once"
        );
        let mut sw = q19_switch();
        let (plan2, _) = best_rate(packets.len(), pipeline_reps, || {
            packets.iter().map(|p| sw.process(p, None).reports.len()).sum()
        });
        let (batch2, _) = measure_batched(DEFAULT_BATCH_LANES);
        batch_ratio = batch_ratio.max(batch2 / plan2);
    }
    assert!(
        batch_ratio >= batch_floor,
        "acceptance: the batched pipeline at {DEFAULT_BATCH_LANES} lanes must not \
         regress below {batch_floor}x the per-packet path (got {batch_ratio:.3}x)"
    );
    // Metrics-overhead gate: attaching a registry must not slow the
    // executor measurably. Same re-measure-once discipline as the other
    // wall-clock gates — only a reproducible gap fails the job.
    let metrics_floor = if smoke { 0.85 } else { 0.98 };
    let metrics_base = scaling
        .iter()
        .find(|e| e.threads == metrics_threads)
        .map(|e| e.rate)
        .expect("metrics_threads comes from the measured set");
    let mut metrics_ratio = metrics_rate / metrics_base;
    if metrics_ratio < metrics_floor {
        println!(
            "note: metrics gate at {metrics_ratio:.3}x on first measurement, re-measuring once"
        );
        let (mut net, _) = q19_network();
        let (base2, _) = best_rate(triples.len(), delivery_reps, || {
            net.deliver_batch_parallel(&triples, metrics_threads).reports.len()
        });
        let ((m2, _), _) = measure_with_metrics();
        metrics_ratio = metrics_ratio.max(m2 / base2);
    }
    assert!(
        metrics_ratio >= metrics_floor,
        "acceptance: the metrics-observed executor must stay within 2% of the plain \
         executor (smoke: 15%) — got {metrics_ratio:.3}x"
    );
    // The 1-worker parallel path dispatches to the plain per-packet walk
    // (`deliver_batch_sequential`), not the batch engine: on one core the
    // engine's queue/flight-slot machinery costs more than its stage-major
    // locality buys (see `delivery_note` in the JSON). So the 1-worker rate
    // must stay within 10% of *both* references — `deliver_batch` (the
    // engine it used to dispatch to; losing to it would mean the dispatch
    // decision is wrong on this machine) and sequential `deliver` (the walk
    // it now shares, where a gap means per-batch overhead crept in). Smoke
    // runs on shared CI runners, where a noisy neighbor can skew even a
    // fastest-of-N comparison: re-measure both sides once before failing,
    // so only a *reproducible* gap fails the job.
    if let Some(s1) = par1_speedup {
        let mut s1_batch = s1;
        let mut s1_seq = par1_rate.expect("par1_speedup implies par1_rate") / seq_rate;
        if smoke && (s1_batch < 0.9 || s1_seq < 0.9) {
            println!(
                "note: 1-worker gate at {s1_batch:.2}x batch / {s1_seq:.2}x seq on first \
                 measurement, re-measuring once"
            );
            let (mut net, _) = q19_network();
            let (b2, _) = best_rate(triples.len(), delivery_reps, || {
                net.deliver_batch(&triples).reports.len()
            });
            let (mut net, _) = q19_network();
            let (q2, _) = best_rate(triples.len(), delivery_reps, || {
                triples.iter().map(|&(p, ig, eg)| net.deliver(p, ig, eg).reports.len()).sum()
            });
            let (mut net, _) = q19_network();
            let (p2, _) = best_rate(triples.len(), delivery_reps, || {
                net.deliver_batch_parallel(&triples, 1).reports.len()
            });
            s1_batch = s1_batch.max(p2 / b2);
            s1_seq = s1_seq.max(p2 / q2);
        }
        assert!(
            s1_batch >= 0.9,
            "acceptance: parallel delivery at 1 worker must stay within 10% of \
             deliver_batch (got {s1_batch:.2}x)"
        );
        assert!(
            s1_seq >= 0.9,
            "acceptance: parallel delivery at 1 worker must stay within 10% of \
             sequential deliver (got {s1_seq:.2}x)"
        );
    }
    // Scaling must not go backwards as real cores are added.
    let scaling_floor = if smoke { 0.8 } else { 0.9 };
    let measured: Vec<&ScalingEntry> = scaling.iter().filter(|e| !e.oversubscribed).collect();
    for pair in measured.windows(2) {
        assert!(
            pair[1].rate >= pair[0].rate * scaling_floor,
            "acceptance: thread scaling regressed from {}t ({}) to {}t ({})",
            pair[0].threads,
            fmt_rate(pair[0].rate),
            pair[1].threads,
            fmt_rate(pair[1].rate),
        );
    }
    // On a single-core machine the scaling series degenerates to the
    // 1-thread entry (plus oversubscribed bit-checks): say so explicitly,
    // here and in the JSON, so nobody reads a flat series as a regression.
    let scaling_degenerate = scaling.iter().filter(|e| !e.oversubscribed).count() <= 1;
    if scaling_degenerate {
        println!(
            "note: thread_scaling has only the 1-core entry ({cores} core(s) available); \
             multi-core scaling was not measured on this machine"
        );
    }
    // The parallel speedup bar only means something with real cores under
    // it; single-core machines still run the equality checks above.
    if cores < 4 {
        println!("note: {cores} core(s) available, skipping the >=2x parallel speedup bar");
    } else if let Some(s) = par_speedup {
        assert!(
            s >= 2.0,
            "acceptance: parallel delivery must be >= 2x batch on {cores} cores (got {s:.2}x)"
        );
    } else {
        println!(
            "note: every NEWTON_BENCH_THREADS count oversubscribes the {cores} cores, \
             skipping the >=2x parallel speedup bar"
        );
    }

    if smoke {
        println!("\nsmoke mode: equality + speedup gates passed, skipping BENCH_perf.json");
        return;
    }

    let scaling_json = scaling
        .iter()
        .map(|e| {
            format!(
                "    {{ \"threads\": {}, \"pkts_per_sec\": {:.0}, \"speedup_vs_batch\": {:.3}, \
                 \"oversubscribed\": {} }}",
                e.threads,
                e.rate,
                e.rate / batch_rate,
                e.oversubscribed,
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    // `null` when no non-oversubscribed thread count was measured (a
    // NEWTON_BENCH_THREADS override) — better absent than oversubscription
    // noise published as a headline rate.
    let par_rate_json = par_rate.map_or_else(|| "null".into(), |r| format!("{r:.0}"));
    let par_speedup_json = par_speedup.map_or_else(|| "null".into(), |s| format!("{s:.3}"));
    let sweep_json = batch_sweep
        .iter()
        .map(|&(lanes, rate)| format!("    {{ \"lanes\": {lanes}, \"pkts_per_sec\": {rate:.0} }}"))
        .collect::<Vec<_>>()
        .join(",\n");
    let scaling_note_json = if scaling_degenerate {
        format!(
            ",\n  \"thread_scaling_note\": \"only the 1-core entry was measured \
             ({cores} core(s) available); multi-core scaling not measured on this machine\""
        )
    } else {
        String::new()
    };
    let json = format!(
        "{{\n  \"workload\": \"Q1-Q9, CAIDA-like trace, {} packets\",\n  \
         \"timing\": \"fastest of {delivery_reps} passes after 1 warm-up pass\",\n  \
         \"pipeline_reference_pkts_per_sec\": {ref_rate:.0},\n  \
         \"pipeline_execplan_pkts_per_sec\": {plan_rate:.0},\n  \
         \"pipeline_speedup\": {pipeline_speedup:.3},\n  \
         \"pipeline_batch_pkts_per_sec\": {batch_rate_default:.0},\n  \
         \"pipeline_batch_speedup_vs_execplan\": {batch_ratio:.3},\n  \
         \"default_batch_lanes\": {DEFAULT_BATCH_LANES},\n  \
         \"batch_lanes_rationale\": \"sweep is flat within noise from 32 lanes up (the \
         walk is compute-bound on an L1-resident working set); 64 amortizes per-call \
         overhead fully while keeping per-switch scratch small\",\n  \
         \"batch_note\": \"process() shares the batch engine at batch size 1, so the \
         per-packet path already carries the engine speedup; the batch call's edge is \
         amortized per-call overhead only (~5-10%)\",\n  \
         \"batch_sweep\": [\n{sweep_json}\n  ],\n  \
         \"pipeline_noop_sink_pkts_per_sec\": {noop_rate:.0},\n  \
         \"pipeline_recorder_pkts_per_sec\": {recorder_rate:.0},\n  \
         \"delivery_sequential_pkts_per_sec\": {seq_rate:.0},\n  \
         \"delivery_batch_pkts_per_sec\": {batch_rate:.0},\n  \
         \"delivery_speedup\": {delivery_speedup:.3},\n  \
         \"delivery_note\": \"delivery_speedup compares the single-worker batch engine \
         against sequential deliver and lands below 1.0 on single-core machines: the \
         engine's per-switch queues, flight slots and report re-sort cost ~15-20% there, \
         more than its stage-major locality buys without a second core. That is expected \
         and documented, not a regression: deliver_batch_parallel dispatches threads<=1 \
         to the plain per-packet walk (bit-identical by contract), so no caller pays the \
         coordination cost single-threaded — the thread_scaling 1t entry is the rate \
         callers actually get\",\n  \
         \"delivery_parallel_pkts_per_sec\": {par_rate_json},\n  \
         \"delivery_parallel_speedup\": {par_speedup_json},\n  \
         \"pipeline_metrics_pkts_per_sec\": {metrics_rate:.0},\n  \
         \"pipeline_metrics_threads\": {metrics_threads},\n  \
         \"pipeline_metrics_ratio_vs_plain\": {metrics_ratio:.3},\n  \
         \"peak_rss_bytes\": {},\n  \
         \"benched_on_cores\": {cores}{scaling_note_json},\n  \
         \"thread_scaling\": [\n{scaling_json}\n  ]\n}}\n",
        packets.len(),
        peak_rss_json(),
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_perf.json");
    std::fs::write(out, &json).expect("write BENCH_perf.json");
    println!("\nwrote {out}");
}
