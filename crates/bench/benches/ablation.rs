//! Ablations of Newton's design choices (not paper figures; the design
//! decisions DESIGN.md calls out, quantified):
//!
//! 1. **Sketch depth** — Count-Min rows trade stages for accuracy: more
//!    rows suppress false positives but cost one ℍ/𝕊/ℝ suite each.
//! 2. **Bloom arrays** — same trade for `distinct`.
//! 3. **Compact vs naive layout** — how many optimized catalog queries fit
//!    a 12-stage pipeline under each layout.
//! 4. **Front-filter absorption (Opt.1) alone** — how much of the total
//!    win each optimization contributes on average.

use newton::analyzer::DetectionMetrics;
use newton::compiler::{compile, stats_for, CompilerConfig, OptLevel};
use newton::dataplane::{PipelineConfig, Switch};
use newton::packet::{Field, FieldVector};
use newton::query::catalog;
use newton::query::Interpreter;
use newton_bench::{graded_syn_workload, print_table};
use std::collections::HashSet;

fn q1_accuracy(cm_depth: usize, registers: u32) -> (f64, f64, usize) {
    let cfg = CompilerConfig { cm_depth, registers_per_array: registers, ..Default::default() };
    let compiled = compile(&catalog::q1_new_tcp(), 1, &cfg);
    let stages = compiled.composition.stages();
    let mut sw = Switch::new(PipelineConfig {
        registers_per_array: registers as usize,
        ..Default::default()
    });
    sw.install(&compiled.rules).unwrap();

    let workload = graded_syn_workload(1_200, 80, 0xAB1A);
    let mut interp = Interpreter::new(catalog::q1_new_tcp());
    let mut reported = HashSet::new();
    for p in &workload {
        interp.observe(p);
        for r in sw.process(p, None).reports {
            reported.insert(FieldVector(r.op_keys).get(Field::DstIp));
        }
    }
    let truth = interp.end_epoch().reported;
    let m = DetectionMetrics::compare(&reported, &truth);
    (m.accuracy(), m.fpr(1_200), stages)
}

fn main() {
    // 1. CM depth ablation at a fixed small register budget.
    let mut rows = Vec::new();
    for depth in [1usize, 2, 3, 4] {
        let (acc, fpr, stages) = q1_accuracy(depth, 512);
        rows.push(vec![
            depth.to_string(),
            format!("{acc:.3}"),
            format!("{fpr:.4}"),
            stages.to_string(),
        ]);
    }
    print_table(
        "Ablation 1 — Q1 Count-Min rows vs accuracy (512 registers/array)",
        &["CM rows", "Accuracy", "FPR", "Stages"],
        &rows,
    );

    // 2. How many catalog queries fit a 12-stage pipeline per layout.
    //    Naive layout hosts one module per stage (no sharing), so a query
    //    needs as many stages as modules; compact packs up to 4 per stage.
    let cfg = CompilerConfig::default();
    let mut rows = Vec::new();
    let mut fit_naive = 0;
    let mut fit_compact = 0;
    for (i, q) in catalog::all_queries().iter().enumerate() {
        let stats = stats_for(q, &cfg);
        let compact = stats.final_stages();
        let naive = stats.final_modules(); // one module per stage
        if naive <= 12 {
            fit_naive += 1;
        }
        if compact <= 12 {
            fit_compact += 1;
        }
        rows.push(vec![format!("Q{}", i + 1), naive.to_string(), compact.to_string()]);
    }
    print_table(
        "Ablation 2 — stage cost per layout (same optimized module set)",
        &["Query", "Naive layout stages", "Compact layout stages"],
        &rows,
    );
    println!(
        "\nqueries fitting one 12-stage pipeline: naive {fit_naive}/9, compact {fit_compact}/9"
    );
    assert_eq!(fit_compact, 9);
    assert!(fit_naive < fit_compact);

    // 3. Per-optimization contribution, averaged over the catalog.
    let mut avg = [0.0f64; 4];
    for q in catalog::all_queries() {
        let s = stats_for(&q, &cfg);
        for (i, (_, _, stages)) in s.levels.iter().enumerate() {
            avg[i] += *stages as f64 / 9.0;
        }
    }
    let mut rows = Vec::new();
    for (i, (label, _)) in OptLevel::ladder().iter().enumerate() {
        rows.push(vec![label.to_string(), format!("{:.1}", avg[i])]);
    }
    print_table(
        "Ablation 3 — average stage count per cumulative optimization",
        &["Level", "Avg stages (Q1–Q9)"],
        &rows,
    );
    assert!(avg[3] < avg[2] && avg[2] < avg[1] && avg[1] < avg[0]);
    println!(
        "\neach optimization contributes: Opt.1 −{:.1}, Opt.2 −{:.1}, Opt.3 −{:.1} stages on average",
        avg[0] - avg[1],
        avg[1] - avg[2],
        avg[2] - avg[3]
    );

    // 4. Register allocation policy (the paper's §7 open question):
    //    Q1 (1 sketch row of demand) and Q4 (3) share tight arrays; the
    //    weighted policy shifts registers to the demand.
    use newton::controller::{allocate, AllocationPolicy};
    let q1 = catalog::q1_new_tcp();
    let q4 = catalog::q4_port_scan();
    let mut rows = Vec::new();
    for (name, policy) in
        [("even", AllocationPolicy::Even), ("weighted", AllocationPolicy::WeightedByState)]
    {
        let slices = allocate(&[q1.clone(), q4.clone()], 1024, policy);
        let (a1, f1, _) = {
            let cfg = CompilerConfig {
                registers_per_array: slices[0].range,
                register_offset: slices[0].offset,
                ..Default::default()
            };
            q1_accuracy_with(&cfg)
        };
        rows.push(vec![
            name.into(),
            format!("{}/{}", slices[0].range, slices[1].range),
            format!("{a1:.3}"),
            format!("{f1:.4}"),
        ]);
    }
    print_table(
        "Ablation 4 — register allocation policy (Q1+Q4 sharing 1024 registers)",
        &["Policy", "Q1/Q4 registers", "Q1 accuracy", "Q1 FPR"],
        &rows,
    );
    println!(
        "\nweighted allocation moves registers to the distinct-heavy Q4 at a small, \
         quantified cost to Q1 — the §7 scheduling trade made explicit."
    );
}

/// Q1 accuracy with an explicit compiler config (register slice).
fn q1_accuracy_with(cfg: &CompilerConfig) -> (f64, f64, usize) {
    let compiled = compile(&catalog::q1_new_tcp(), 1, cfg);
    let stages = compiled.composition.stages();
    let mut sw = Switch::new(PipelineConfig { registers_per_array: 4096, ..Default::default() });
    sw.install(&compiled.rules).unwrap();
    let workload = graded_syn_workload(1_200, 80, 0xAB1A);
    let mut interp = Interpreter::new(catalog::q1_new_tcp());
    let mut reported = HashSet::new();
    for p in &workload {
        interp.observe(p);
        for r in sw.process(p, None).reports {
            reported.insert(FieldVector(r.op_keys).get(Field::DstIp));
        }
    }
    let truth = interp.end_epoch().reported;
    let m = DetectionMetrics::compare(&reported, &truth);
    (m.accuracy(), m.fpr(1_200), stages)
}
