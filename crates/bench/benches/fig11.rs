//! Fig. 11: query installation and removal delay, per catalog query,
//! repeated 100 times (the paper's methodology). All operations complete
//! within 20 ms; Q1 installs in ~5 ms.

use newton::compiler::{compile, CompilerConfig};
use newton::controller::RuleTimingModel;
use newton::query::catalog;
use newton_bench::print_table;

fn stats(samples: &[f64]) -> (f64, f64, f64) {
    let min = samples.iter().copied().fold(f64::MAX, f64::min);
    let max = samples.iter().copied().fold(f64::MIN, f64::max);
    let avg = samples.iter().sum::<f64>() / samples.len() as f64;
    (min, avg, max)
}

fn main() {
    let cfg = CompilerConfig::default();
    let mut timing = RuleTimingModel::new(0xF1611);
    let mut rows = Vec::new();
    for (i, q) in catalog::all_queries().iter().enumerate() {
        let rules = compile(q, i as u32 + 1, &cfg).rules.total_rule_count();
        let installs: Vec<f64> = (0..100).map(|_| timing.install_ms(rules)).collect();
        let removals: Vec<f64> = (0..100).map(|_| timing.remove_ms(rules)).collect();
        let (i_min, i_avg, i_max) = stats(&installs);
        let (r_min, r_avg, r_max) = stats(&removals);
        rows.push(vec![
            format!("Q{}", i + 1),
            format!("{rules}"),
            format!("{i_min:.1}/{i_avg:.1}/{i_max:.1}"),
            format!("{r_min:.1}/{r_avg:.1}/{r_max:.1}"),
        ]);
        assert!(i_max <= 20.0, "Q{}: install {i_max:.1} ms exceeds 20 ms", i + 1);
        assert!(r_max <= 20.0, "Q{}: removal {r_max:.1} ms exceeds 20 ms", i + 1);
    }
    print_table(
        "Fig. 11 — query install/removal delay (100 runs, ms, min/avg/max)",
        &["Query", "Rules", "Install (ms)", "Removal (ms)"],
        &rows,
    );
    println!("\nAll operations ≤ 20 ms; Q1 installs in ~5 ms (paper: same bounds).");
}
