//! Fig. 16: resource multiplexing over concurrent clones of Q4.
//!
//! Sonata and S-Newton (clones over the *same* traffic) grow linearly in
//! modules and stages; P-Newton (clones over *different* traffic) reuses
//! the same module instances and only adds rules.

use newton::compiler::{concurrent, CompilerConfig};
use newton::query::catalog;
use newton_bench::print_table;

fn main() {
    let cfg = CompilerConfig::default();
    let q4 = catalog::q4_port_scan();
    let mut mod_rows = Vec::new();
    let mut stage_rows = Vec::new();
    for n in [1usize, 5, 10, 20, 40, 60, 80, 100] {
        let so = concurrent::sonata_chained(&q4, n);
        let s = concurrent::s_newton(&q4, n, &cfg);
        let p = concurrent::p_newton(&q4, n, &cfg);
        mod_rows.push(vec![
            n.to_string(),
            so.modules.to_string(),
            s.modules.to_string(),
            p.modules.to_string(),
            p.rules.to_string(),
        ]);
        stage_rows.push(vec![
            n.to_string(),
            so.stages.to_string(),
            s.stages.to_string(),
            p.stages.to_string(),
        ]);
    }
    print_table(
        "Fig. 16(a) — module number vs concurrent Q4 queries",
        &["N", "Sonata (tables)", "S-Newton", "P-Newton", "P-Newton rules"],
        &mod_rows,
    );
    print_table(
        "Fig. 16(b) — stage number vs concurrent Q4 queries",
        &["N", "Sonata", "S-Newton", "P-Newton"],
        &stage_rows,
    );

    let p1 = concurrent::p_newton(&q4, 1, &cfg);
    let p100 = concurrent::p_newton(&q4, 100, &cfg);
    assert_eq!(p1.modules, p100.modules, "P-Newton modules must be constant");
    assert_eq!(p1.stages, p100.stages, "P-Newton stages must be constant");
    assert_eq!(
        concurrent::s_newton(&q4, 100, &cfg).stages,
        100 * concurrent::s_newton(&q4, 1, &cfg).stages,
        "S-Newton must be linear"
    );
    println!(
        "\nP-Newton holds {} modules / {} stages even at 100 queries; \
         Sonata and S-Newton grow linearly (paper: same shape).",
        p100.modules, p100.stages
    );
}
