//! Packet-level execution tracing: what fired at every stage.
//!
//! Debugging a compiled query on hardware means staring at register dumps;
//! the simulator can do better. [`trace_packet`] walks one packet through
//! a switch (without mutating it — registers are cloned) and records every
//! module firing: which instance, for which query/branch, and what it wrote
//! into the PHV. The rendering reads like a P4 behavioral-model log.

use crate::phv::{Phv, SetId};
use crate::rules::QueryId;
use crate::switch::Switch;
use newton_packet::Packet;
use std::fmt;

/// One module firing during a traced walk.
#[derive(Debug, Clone, PartialEq)]
pub struct Firing {
    pub stage: usize,
    pub slot: usize,
    pub kind: char,
    pub branch: u8,
    /// Human-readable effect (what changed in the PHV).
    pub effect: String,
}

/// The trace of one (packet, query) walk.
#[derive(Debug, Clone, Default)]
pub struct ExecutionTrace {
    pub query: QueryId,
    pub firings: Vec<Firing>,
    /// Branches still active at pipeline exit.
    pub active_at_exit: u32,
    /// Reports the walk would emit.
    pub reports: usize,
}

impl fmt::Display for ExecutionTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "query {}:", self.query)?;
        for fi in &self.firings {
            writeln!(
                f,
                "  stage {:>2} slot {} [{}] branch {}: {}",
                fi.stage, fi.slot, fi.kind, fi.branch, fi.effect
            )?;
        }
        writeln!(
            f,
            "  exit: active branches {:#b}, {} report(s)",
            self.active_at_exit, self.reports
        )
    }
}

/// Trace one packet through a (cloned) switch: every module firing for
/// every query the packet matches. The real switch is untouched.
pub fn trace_packet(switch: &Switch, pkt: &Packet) -> Vec<ExecutionTrace> {
    // Work on a clone: tracing must not consume epoch state.
    let mut shadow = switch.clone();
    let before: Vec<Phv> = shadow.debug_walk_prepare(pkt);
    let mut traces = Vec::new();
    for phv in before {
        traces.push(shadow.debug_walk(phv));
    }
    traces
}

impl Switch {
    /// Build the initial PHVs `process` would walk for this packet
    /// (slice 0 dispatch only — tracing is a single-switch view).
    pub(crate) fn debug_walk_prepare(&self, pkt: &Packet) -> Vec<Phv> {
        self.classify_for_debug(pkt)
            .into_iter()
            .map(|(query, mask)| {
                let mut phv = Phv::new(pkt, query, 0);
                phv.active_branches = mask;
                phv
            })
            .collect()
    }

    /// Walk one PHV recording per-stage diffs.
    pub(crate) fn debug_walk(&mut self, mut phv: Phv) -> ExecutionTrace {
        let mut trace = ExecutionTrace { query: phv.query, ..Default::default() };
        let stages = self.stage_count_for_debug();
        for stage in 0..stages {
            if !phv.any_active() {
                break;
            }
            let input = phv.clone();
            self.execute_stage_for_debug(stage, &input, &mut phv);
            // Record diffs per slot by comparing PHVs.
            for (slot, effect) in diff_phv(&input, &phv) {
                trace.firings.push(Firing {
                    stage,
                    slot,
                    kind: ['K', 'H', 'S', 'R'][slot.min(3)],
                    branch: 0, // the diff is PHV-level; branch shown as 0
                    effect,
                });
            }
        }
        trace.active_at_exit = phv.active_branches;
        trace.reports = phv.reports.len();
        trace
    }
}

/// Describe what changed between stage entry and exit, slot-attributed by
/// container kind (op-keys ⇒ 𝕂, hash ⇒ ℍ, state ⇒ 𝕊, global/report/branch
/// ⇒ ℝ).
fn diff_phv(before: &Phv, after: &Phv) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for set in [SetId::Set1, SetId::Set2] {
        let (b, a) = (before.set(set), after.set(set));
        if b.op_keys != a.op_keys {
            out.push((0, format!("op_keys[{set:?}] <- {:#034x}", a.op_keys)));
        }
        if b.hash_result != a.hash_result {
            out.push((1, format!("hash[{set:?}] <- {}", a.hash_result)));
        }
        if b.state_result != a.state_result {
            out.push((2, format!("state[{set:?}] <- {}", a.state_result)));
        }
    }
    if before.global_result != after.global_result {
        out.push((3, format!("global <- {}", after.global_result)));
    }
    if before.active_branches != after.active_branches {
        out.push((
            3,
            format!("branches {:#b} -> {:#b}", before.active_branches, after.active_branches),
        ));
    }
    if before.reports.len() != after.reports.len() {
        out.push((3, format!("REPORT #{}", after.reports.len())));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::switch::PipelineConfig;
    use newton_packet::{PacketBuilder, TcpFlags};

    fn q1_switch() -> Switch {
        // Hand-compiled Q1-like ruleset from the switch tests.
        use crate::phv::SetId;
        use crate::rules::*;
        use crate::ModuleAddr;
        use newton_packet::Field;
        let mut sw = Switch::new(PipelineConfig::default());
        let set = SetId::Set1;
        let rs = RuleSet {
            init: vec![InitRule {
                query: 1,
                branch_mask: 1,
                matches: vec![(Field::Proto, 6, 0xFF), (Field::TcpFlags, 2, 0xFF)],
            }],
            k: vec![(
                ModuleAddr { stage: 0, slot: 0 },
                KRule { query: 1, branch: 0, set, mask: Field::DstIp.mask() },
            )],
            h: vec![(
                ModuleAddr { stage: 1, slot: 1 },
                HRule {
                    query: 1,
                    branch: 0,
                    set,
                    mode: HashMode::Hash { seed: 1, range: 256 },
                    offset: 0,
                },
            )],
            s: vec![(
                ModuleAddr { stage: 2, slot: 2 },
                SRule { query: 1, branch: 0, set, op: SaluOp::Add(Operand::Const(1)) },
            )],
            r: vec![(
                ModuleAddr { stage: 3, slot: 3 },
                RRule {
                    query: 1,
                    branch: 0,
                    set,
                    priority: 0,
                    state_match: RMatch::at_least(2),
                    global_match: RMatch::ANY,
                    actions: vec![RAction::Report],
                },
            )],
        };
        sw.install(&rs).unwrap();
        sw
    }

    #[test]
    fn trace_shows_the_module_chain() {
        let sw = q1_switch();
        let pkt = PacketBuilder::new().dst_ip(9).tcp_flags(TcpFlags::SYN).build();
        let traces = trace_packet(&sw, &pkt);
        assert_eq!(traces.len(), 1);
        let t = &traces[0];
        let kinds: Vec<char> = t.firings.iter().map(|f| f.kind).collect();
        assert_eq!(kinds, vec!['K', 'H', 'S'], "K→H→S fire; R below threshold stays silent");
        assert_eq!(t.reports, 0);
        let rendered = t.to_string();
        assert!(rendered.contains("op_keys"));
        assert!(rendered.contains("hash"));
    }

    #[test]
    fn tracing_does_not_mutate_the_switch() {
        let mut sw = q1_switch();
        let pkt = PacketBuilder::new().dst_ip(9).tcp_flags(TcpFlags::SYN).build();
        for _ in 0..10 {
            trace_packet(&sw, &pkt);
        }
        // A fresh count: the traces above must not have incremented state.
        assert!(sw.process(&pkt, None).reports.is_empty(), "first real packet: count 1 < 2");
        let out = sw.process(&pkt, None);
        assert_eq!(out.reports.len(), 1, "second real packet crosses");
    }

    #[test]
    fn unmatched_packets_trace_empty() {
        let sw = q1_switch();
        let udp = PacketBuilder::new().protocol(newton_packet::Protocol::Udp).build();
        assert!(trace_packet(&sw, &udp).is_empty());
    }

    #[test]
    fn report_firing_is_visible_in_the_trace() {
        let sw = q1_switch();
        let pkt = PacketBuilder::new().dst_ip(9).tcp_flags(TcpFlags::SYN).build();
        // Warm a shadow copy ourselves: trace twice against a pre-warmed
        // switch clone.
        let mut warm = sw.clone();
        warm.process(&pkt, None);
        warm.process(&pkt, None);
        let traces = trace_packet(&warm, &pkt);
        assert_eq!(traces[0].reports, 1);
        assert!(traces[0].to_string().contains("REPORT"));
    }
}
