//! The four reconfigurable module implementations.
//!
//! Each module instance is a match-action table (plus, for 𝕊, a register
//! array). Rules match on `(query, branch)`; actions are interpreted per
//! packet. Instances execute with *stage semantics*: they read the PHV as
//! it entered the stage and write their outputs into the PHV that exits it,
//! which is exactly why write-read-dependent modules cannot share a stage
//! (Fig. 4) and why the two metadata sets make the compact layout work.

use crate::batch::{lane_branch_active, PhvBatch};
use crate::phv::{Phv, Report, GLOBAL_INIT};
use crate::rules::{HRule, HashMode, KRule, Operand, QueryId, RAction, RRule, SRule, SaluOp};
use newton_packet::FieldVector;
use newton_sketch::HashFn;

/// One batched op: the lane to execute plus its pre-resolved rule-table
/// indices. Modules run all lanes of a stage bucket back-to-back, so the
/// rule table is read hot across the whole batch.
pub(crate) type BatchOp<'a> = (u32, &'a [u32]);

/// Default rule capacity per module instance ("we configure each module to
/// accommodate 256 rules", §6.2).
pub const DEFAULT_RULE_CAPACITY: usize = 256;

/// Errors installing a rule into a module instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstallError {
    /// The instance's rule table is full.
    CapacityExceeded { capacity: usize },
    /// A rule for this (query, branch) already exists on this instance.
    Duplicate { query: QueryId, branch: u8 },
}

impl std::fmt::Display for InstallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InstallError::CapacityExceeded { capacity } => {
                write!(f, "module rule table full (capacity {capacity})")
            }
            InstallError::Duplicate { query, branch } => {
                write!(f, "rule for query {query} branch {branch} already installed")
            }
        }
    }
}

impl std::error::Error for InstallError {}

fn resolve(op: Operand, fields: FieldVector) -> u32 {
    match op {
        Operand::Const(c) => c,
        Operand::Field(f) => fields.get(f) as u32,
    }
}

/// Key-selection module instance (𝕂).
#[derive(Debug, Clone)]
pub struct KModule {
    rules: Vec<KRule>,
    capacity: usize,
}

/// Hash-calculation module instance (ℍ).
#[derive(Debug, Clone)]
pub struct HModule {
    rules: Vec<HRule>,
    capacity: usize,
}

/// State-bank module instance (𝕊): rule table + register array.
#[derive(Debug, Clone)]
pub struct SModule {
    rules: Vec<SRule>,
    capacity: usize,
    registers: Vec<u32>,
    stats: BankStats,
    /// `len - 1` when the register array length is a power of two (the
    /// default 4096 is), so the hot index reduction is an `AND` instead of
    /// an integer division; `0` otherwise (which also happens to be the
    /// correct mask for a length-1 array).
    pow2_mask: usize,
}

/// State-bank activity counters, accumulated per epoch: how full the
/// sketch rows are getting (insertions), how often distinct keys land on
/// an occupied register (collisions), and how often a `Write`/`Max`
/// displaces a live value (evictions). Plain saturating-free `u64` adds
/// on the SALU path; the epoch driver drains them with
/// [`SModule::take_stats`] before the register reset.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BankStats {
    /// Operations that turned a zero register nonzero.
    pub insertions: u64,
    /// Operations that touched an already-nonzero register.
    pub collisions: u64,
    /// `Write`/`Max` operations that replaced a live value with a
    /// different one.
    pub evictions: u64,
}

impl BankStats {
    /// Fold another bank's counters into this one.
    pub fn merge(&mut self, o: &BankStats) {
        self.insertions += o.insertions;
        self.collisions += o.collisions;
        self.evictions += o.evictions;
    }

    #[inline(always)]
    fn observe(&mut self, old: u32, new: u32, evicting: bool) {
        self.insertions += u64::from(old == 0 && new != 0);
        self.collisions += u64::from(old != 0);
        self.evictions += u64::from(evicting && old != 0 && new != old);
    }
}

/// Result-process module instance (ℝ).
#[derive(Debug, Clone)]
pub struct RModule {
    rules: Vec<RRule>,
    capacity: usize,
}

macro_rules! impl_table {
    ($ty:ident, $rule:ident) => {
        impl $ty {
            /// Installed rule count.
            pub fn rule_count(&self) -> usize {
                self.rules.len()
            }

            /// Remaining rule capacity.
            pub fn free_capacity(&self) -> usize {
                self.capacity - self.rules.len()
            }

            /// Remove all rules of `query`; returns how many were removed.
            pub fn remove_query(&mut self, query: QueryId) -> usize {
                let before = self.rules.len();
                self.rules.retain(|r| r.query != query);
                before - self.rules.len()
            }

            /// Iterate over installed rules.
            pub fn rules(&self) -> &[$rule] {
                &self.rules
            }
        }
    };
}

impl_table!(KModule, KRule);
impl_table!(HModule, HRule);
impl_table!(SModule, SRule);
impl_table!(RModule, RRule);

impl KModule {
    pub fn new(capacity: usize) -> Self {
        KModule { rules: Vec::new(), capacity }
    }

    /// Install a rule. At most one rule per (query, branch) per instance.
    pub fn install(&mut self, rule: KRule) -> Result<(), InstallError> {
        if self.rules.iter().any(|r| r.query == rule.query && r.branch == rule.branch) {
            return Err(InstallError::Duplicate { query: rule.query, branch: rule.branch });
        }
        if self.rules.len() >= self.capacity {
            return Err(InstallError::CapacityExceeded { capacity: self.capacity });
        }
        self.rules.push(rule);
        Ok(())
    }

    /// Execute: select operation keys for each matching active branch.
    pub fn execute(&self, input: &Phv, output: &mut Phv) {
        for r in &self.rules {
            if r.query == input.query && input.branch_active(r.branch) {
                output.set_mut(r.set).op_keys = input.fields.masked(r.mask).0;
            }
        }
    }

    /// Execute the pre-resolved ops of one stage bucket across all lanes
    /// (the compiled [`ExecPlan`](crate::ExecPlan) batch path): the plan
    /// guarantees every rule index holds a rule of the lane's query, in
    /// table order. Reads are against the frozen `entry_*` columns, writes
    /// land in `cur_*` — identical stage semantics to
    /// [`execute`](Self::execute).
    pub(crate) fn execute_batch<'a>(
        &self,
        ops: impl Iterator<Item = BatchOp<'a>>,
        b: &mut PhvBatch,
    ) {
        for (lane, idx) in ops {
            let l = lane as usize;
            let active = b.entry[l].active;
            let fields = b.fields[b.lane_pkt[l] as usize];
            for &i in idx {
                let r = &self.rules[i as usize];
                if lane_branch_active(active, r.branch) {
                    b.cur[l].sets[r.set.index()].op_keys = fields.masked(r.mask).0;
                }
            }
        }
    }
}

impl HModule {
    pub fn new(capacity: usize) -> Self {
        HModule { rules: Vec::new(), capacity }
    }

    pub fn install(&mut self, rule: HRule) -> Result<(), InstallError> {
        if self.rules.iter().any(|r| r.query == rule.query && r.branch == rule.branch) {
            return Err(InstallError::Duplicate { query: rule.query, branch: rule.branch });
        }
        if self.rules.len() >= self.capacity {
            return Err(InstallError::CapacityExceeded { capacity: self.capacity });
        }
        self.rules.push(rule);
        Ok(())
    }

    /// Execute: compute the hash result over the *stage-entry* operation
    /// keys (𝕂 in the same stage cannot feed ℍ — Fig. 4).
    pub fn execute(&self, input: &Phv, output: &mut Phv) {
        for r in &self.rules {
            if r.query == input.query && input.branch_active(r.branch) {
                Self::fire(r, input, output);
            }
        }
    }

    /// Execute the pre-resolved ops of one stage bucket across all lanes
    /// (compiled plan batch path).
    pub(crate) fn execute_batch<'a>(
        &self,
        ops: impl Iterator<Item = BatchOp<'a>>,
        b: &mut PhvBatch,
    ) {
        for (lane, idx) in ops {
            let l = lane as usize;
            let active = b.entry[l].active;
            for &i in idx {
                let r = &self.rules[i as usize];
                if lane_branch_active(active, r.branch) {
                    let keys = FieldVector(b.entry[l].sets[r.set.index()].op_keys);
                    b.cur[l].sets[r.set.index()].hash_result =
                        Self::hash_of(r, keys).wrapping_add(r.offset);
                }
            }
        }
    }

    #[inline(always)]
    fn hash_of(r: &HRule, keys: FieldVector) -> u32 {
        match r.mode {
            HashMode::Hash { seed, range } => HashFn::new(seed, range).hash(keys.0),
            HashMode::Direct(field) => keys.get(field) as u32,
        }
    }

    fn fire(r: &HRule, input: &Phv, output: &mut Phv) {
        let keys = FieldVector(input.set(r.set).op_keys);
        output.set_mut(r.set).hash_result = Self::hash_of(r, keys).wrapping_add(r.offset);
    }
}

impl SModule {
    pub fn new(capacity: usize, registers: usize) -> Self {
        assert!(registers > 0, "state bank needs at least one register");
        SModule {
            rules: Vec::new(),
            capacity,
            registers: vec![0; registers],
            stats: BankStats::default(),
            pow2_mask: if registers.is_power_of_two() { registers - 1 } else { 0 },
        }
    }

    /// Register index of a hash result: `hash % len`, reduced to an `AND`
    /// for power-of-two array lengths (identical result, no division).
    #[inline(always)]
    fn reg_index(pow2_mask: usize, len: usize, hash: u32) -> usize {
        if pow2_mask != 0 {
            hash as usize & pow2_mask
        } else {
            hash as usize % len
        }
    }

    pub fn install(&mut self, rule: SRule) -> Result<(), InstallError> {
        if self.rules.iter().any(|r| r.query == rule.query && r.branch == rule.branch) {
            return Err(InstallError::Duplicate { query: rule.query, branch: rule.branch });
        }
        if self.rules.len() >= self.capacity {
            return Err(InstallError::CapacityExceeded { capacity: self.capacity });
        }
        self.rules.push(rule);
        Ok(())
    }

    /// Register array length.
    pub fn register_count(&self) -> usize {
        self.registers.len()
    }

    /// Read a register (tests / analyzer draining).
    pub fn register(&self, idx: usize) -> u32 {
        self.registers[idx % self.registers.len()]
    }

    /// Reset all registers (the 100 ms epoch reset). Activity counters
    /// survive the reset; drain them with [`take_stats`](Self::take_stats).
    pub fn clear_registers(&mut self) {
        self.registers.fill(0);
    }

    /// Activity counters accumulated since the last
    /// [`take_stats`](Self::take_stats).
    pub fn stats(&self) -> BankStats {
        self.stats
    }

    /// Drain and reset the activity counters (end of epoch).
    pub fn take_stats(&mut self) -> BankStats {
        std::mem::take(&mut self.stats)
    }

    /// Execute: one transactional SALU operation per matching branch.
    pub fn execute(&mut self, input: &Phv, output: &mut Phv) {
        let pow2_mask = self.pow2_mask;
        for r in &self.rules {
            if r.query != input.query || !input.branch_active(r.branch) {
                continue;
            }
            let hash = input.set(r.set).hash_result;
            let idx = Self::reg_index(pow2_mask, self.registers.len(), hash);
            let state =
                Self::salu(r, &mut self.registers, &mut self.stats, idx, hash, input.fields);
            output.set_mut(r.set).state_result = state;
        }
    }

    /// Execute the pre-resolved ops of one stage bucket across all lanes
    /// (compiled plan batch path). Lanes are applied in lane order, so
    /// each register sees operations in exactly the scalar per-packet
    /// order — register contents and [`BankStats`] stay bit-identical.
    pub(crate) fn execute_batch<'a>(
        &mut self,
        ops: impl Iterator<Item = BatchOp<'a>>,
        b: &mut PhvBatch,
    ) {
        let SModule { rules, registers, stats, pow2_mask, .. } = self;
        for (lane, idx) in ops {
            let l = lane as usize;
            let active = b.entry[l].active;
            let fields = b.fields[b.lane_pkt[l] as usize];
            for &i in idx {
                let r = &rules[i as usize];
                if lane_branch_active(active, r.branch) {
                    let hash = b.entry[l].sets[r.set.index()].hash_result;
                    let ridx = Self::reg_index(*pow2_mask, registers.len(), hash);
                    let state = Self::salu(r, registers, stats, ridx, hash, fields);
                    b.cur[l].sets[r.set.index()].state_result = state;
                }
            }
        }
    }

    /// The transactional SALU core shared by both execution paths:
    /// read-modify-write one register, return the rule's state result.
    #[inline(always)]
    fn salu(
        r: &SRule,
        registers: &mut [u32],
        stats: &mut BankStats,
        idx: usize,
        hash: u32,
        fields: FieldVector,
    ) -> u32 {
        match r.op {
            SaluOp::PassHash => hash,
            SaluOp::Add(op) => {
                let v = resolve(op, fields);
                let old = registers[idx];
                registers[idx] = old.saturating_add(v);
                stats.observe(old, registers[idx], false);
                registers[idx]
            }
            SaluOp::Or(op) => {
                let v = resolve(op, fields);
                let old = registers[idx];
                registers[idx] |= v;
                stats.observe(old, registers[idx], false);
                old
            }
            SaluOp::Max(op) => {
                let v = resolve(op, fields);
                let old = registers[idx];
                registers[idx] = old.max(v);
                stats.observe(old, registers[idx], true);
                registers[idx]
            }
            SaluOp::Write(op) => {
                let v = resolve(op, fields);
                let old = registers[idx];
                registers[idx] = v;
                stats.observe(old, v, true);
                old
            }
        }
    }
}

impl RModule {
    pub fn new(capacity: usize) -> Self {
        RModule { rules: Vec::new(), capacity }
    }

    /// Install a rule. ℝ allows several rules per (query, branch) —
    /// priority-ordered ternary entries (e.g. "≥ threshold → report",
    /// "else → stop").
    pub fn install(&mut self, rule: RRule) -> Result<(), InstallError> {
        if self.rules.len() >= self.capacity {
            return Err(InstallError::CapacityExceeded { capacity: self.capacity });
        }
        self.rules.push(rule);
        Ok(())
    }

    /// Apply `f` to every installed rule of `query`; returns how many
    /// rules were touched. This is the in-place rule *modification* path —
    /// e.g. retuning a report threshold without reinstalling the query.
    pub fn update_rules(&mut self, query: QueryId, f: &mut dyn FnMut(&mut RRule)) -> usize {
        let mut touched = 0;
        for r in self.rules.iter_mut().filter(|r| r.query == query) {
            f(r);
            touched += 1;
        }
        touched
    }

    /// Execute: for each (query, branch), the highest-priority matching
    /// rule fires its actions.
    pub fn execute(&self, input: &Phv, output: &mut Phv) {
        // Group by branch: collect candidate rules for this query.
        let mut fired: Vec<(u8, &RRule)> = Vec::new();
        for r in &self.rules {
            if r.query != input.query || !input.branch_active(r.branch) {
                continue;
            }
            if !r.state_match.contains(input.set(r.set).state_result)
                || !r.global_match.contains(input.global_result)
            {
                continue;
            }
            match fired.iter_mut().find(|(b, _)| *b == r.branch) {
                Some((_, best)) if best.priority >= r.priority => {}
                Some(slot) => slot.1 = r,
                None => fired.push((r.branch, r)),
            }
        }
        for (branch, rule) in fired {
            Self::fire(rule, branch, input, output);
        }
    }

    /// Execute the pre-resolved ops of one stage bucket across all lanes
    /// (compiled plan batch path). Same per-branch highest-priority
    /// selection as [`execute`](Self::execute), tracked in the batch's
    /// generation-tagged winner scratch: the PHV's branch mask is a `u32`,
    /// so at most 32 branches can be active, and bumping the generation
    /// replaces the 32-entry clear the scalar path paid per op.
    pub(crate) fn execute_batch<'a>(
        &self,
        ops: impl Iterator<Item = BatchOp<'a>>,
        b: &mut PhvBatch,
    ) {
        for (lane, idx) in ops {
            let l = lane as usize;
            let tag = b.r_next_gen();
            let mut n = 0usize;
            let active = b.entry[l].active;
            for &i in idx {
                let r = &self.rules[i as usize];
                if !lane_branch_active(active, r.branch) {
                    continue;
                }
                if !r.state_match.contains(b.entry[l].sets[r.set.index()].state_result)
                    || !r.global_match.contains(b.entry[l].global)
                {
                    continue;
                }
                // Mirror `branch_active`'s release-mode shift masking so an
                // out-of-range branch aliases the same mask bit it tests.
                let bb = (r.branch & 31) as usize;
                if b.r_tag[bb] != tag {
                    b.r_tag[bb] = tag;
                    b.r_best[bb] = i;
                    b.r_order[n] = r.branch;
                    n += 1;
                } else if self.rules[b.r_best[bb] as usize].priority < r.priority {
                    b.r_best[bb] = i;
                }
            }
            for k in 0..n {
                let branch = b.r_order[k];
                let rule = &self.rules[b.r_best[(branch & 31) as usize] as usize];
                Self::fire_batch(rule, branch, l, b);
            }
        }
    }

    /// Apply a fired rule's actions to one lane's columns — the batched
    /// twin of [`fire`](Self::fire): reads come from the frozen `entry_*`
    /// columns, the global accumulator and branch mask mutate `cur_*`, and
    /// reports are tagged `(lane, seq)` for canonical re-ordering.
    fn fire_batch(rule: &RRule, branch: u8, l: usize, b: &mut PhvBatch) {
        for action in &rule.actions {
            let state = b.entry[l].sets[rule.set.index()].state_result;
            match action {
                RAction::Report => {
                    let set = &b.entry[l].sets[rule.set.index()];
                    let report = Report {
                        query: b.lane_query[l],
                        branch,
                        op_keys: set.op_keys,
                        hash_result: set.hash_result,
                        state_result: set.state_result,
                        global_result: b.cur[l].global,
                    };
                    let seq = b.reports.len() as u32;
                    b.reports.push((l as u32, seq, report));
                }
                RAction::StopBranch => b.cur[l].active &= !(1 << branch),
                RAction::GlobalMin => {
                    b.cur[l].global = b.cur[l].global.min(state);
                }
                RAction::GlobalMax => {
                    let g = if b.cur[l].global == GLOBAL_INIT { 0 } else { b.cur[l].global };
                    b.cur[l].global = g.max(state);
                }
                RAction::GlobalAdd => {
                    let g = if b.cur[l].global == GLOBAL_INIT { 0 } else { b.cur[l].global };
                    b.cur[l].global = g.saturating_add(state);
                }
                RAction::GlobalSub => {
                    let g = if b.cur[l].global == GLOBAL_INIT { 0 } else { b.cur[l].global };
                    b.cur[l].global = g.saturating_sub(state);
                }
                RAction::GlobalSet => b.cur[l].global = state,
                RAction::GlobalReset => b.cur[l].global = GLOBAL_INIT,
            }
        }
    }

    /// Apply a fired rule's actions (shared by both execution paths).
    fn fire(rule: &RRule, branch: u8, input: &Phv, output: &mut Phv) {
        for action in &rule.actions {
            let state = input.set(rule.set).state_result;
            match action {
                RAction::Report => {
                    let set = input.set(rule.set);
                    output.reports.push(Report {
                        query: input.query,
                        branch,
                        op_keys: set.op_keys,
                        hash_result: set.hash_result,
                        state_result: set.state_result,
                        global_result: output.global_result,
                    });
                }
                RAction::StopBranch => output.deactivate_branch(branch),
                RAction::GlobalMin => {
                    output.global_result = output.global_result.min(state);
                }
                RAction::GlobalMax => {
                    let g =
                        if output.global_result == GLOBAL_INIT { 0 } else { output.global_result };
                    output.global_result = g.max(state);
                }
                RAction::GlobalAdd => {
                    let g =
                        if output.global_result == GLOBAL_INIT { 0 } else { output.global_result };
                    output.global_result = g.saturating_add(state);
                }
                RAction::GlobalSub => {
                    let g =
                        if output.global_result == GLOBAL_INIT { 0 } else { output.global_result };
                    output.global_result = g.saturating_sub(state);
                }
                RAction::GlobalSet => output.global_result = state,
                RAction::GlobalReset => output.global_result = GLOBAL_INIT,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phv::SetId;
    use crate::rules::RMatch;
    use newton_packet::{Field, PacketBuilder};

    fn phv() -> Phv {
        let pkt = PacketBuilder::new().dst_port(53).wire_len(200).build();
        Phv::new(&pkt, 1, 2)
    }

    #[test]
    fn k_masks_into_target_set() {
        let mut k = KModule::new(4);
        k.install(KRule { query: 1, branch: 0, set: SetId::Set2, mask: Field::DstPort.mask() })
            .unwrap();
        let input = phv();
        let mut out = input.clone();
        k.execute(&input, &mut out);
        assert_eq!(FieldVector(out.set(SetId::Set2).op_keys).get(Field::DstPort), 53);
        assert_eq!(FieldVector(out.set(SetId::Set2).op_keys).get(Field::SrcIp), 0);
        assert_eq!(out.set(SetId::Set1).op_keys, 0, "other set untouched");
    }

    #[test]
    fn k_ignores_inactive_branch_and_other_query() {
        let mut k = KModule::new(4);
        k.install(KRule { query: 1, branch: 1, set: SetId::Set1, mask: u128::MAX }).unwrap();
        k.install(KRule { query: 2, branch: 0, set: SetId::Set1, mask: u128::MAX }).unwrap();
        let mut input = phv();
        input.deactivate_branch(1);
        let mut out = input.clone();
        k.execute(&input, &mut out);
        assert_eq!(out.set(SetId::Set1).op_keys, 0);
    }

    #[test]
    fn h_direct_mode_extracts_field() {
        let mut k = KModule::new(4);
        let mut h = HModule::new(4);
        k.install(KRule { query: 1, branch: 0, set: SetId::Set1, mask: Field::DstPort.mask() })
            .unwrap();
        h.install(HRule {
            query: 1,
            branch: 0,
            set: SetId::Set1,
            mode: HashMode::Direct(Field::DstPort),
            offset: 0,
        })
        .unwrap();
        let input = phv();
        let mut mid = input.clone();
        k.execute(&input, &mut mid);
        let mut out = mid.clone();
        h.execute(&mid, &mut out);
        assert_eq!(out.set(SetId::Set1).hash_result, 53);
    }

    #[test]
    fn h_hash_mode_stays_in_range_with_offset() {
        let mut h = HModule::new(4);
        h.install(HRule {
            query: 1,
            branch: 0,
            set: SetId::Set1,
            mode: HashMode::Hash { seed: 3, range: 128 },
            offset: 1000,
        })
        .unwrap();
        let mut input = phv();
        input.set_mut(SetId::Set1).op_keys = 0x1234;
        let mut out = input.clone();
        h.execute(&input, &mut out);
        let r = out.set(SetId::Set1).hash_result;
        assert!((1000..1128).contains(&r), "hash {r} outside sliced range");
    }

    #[test]
    fn s_add_counts_per_index() {
        let mut s = SModule::new(4, 16);
        s.install(SRule {
            query: 1,
            branch: 0,
            set: SetId::Set1,
            op: SaluOp::Add(Operand::Const(1)),
        })
        .unwrap();
        let mut input = phv();
        input.set_mut(SetId::Set1).hash_result = 5;
        let mut out = input.clone();
        s.execute(&input, &mut out);
        assert_eq!(out.set(SetId::Set1).state_result, 1);
        s.execute(&input, &mut out);
        assert_eq!(out.set(SetId::Set1).state_result, 2);
        assert_eq!(s.register(5), 2);
        s.clear_registers();
        assert_eq!(s.register(5), 0);
    }

    #[test]
    fn s_add_field_operand_sums_packet_length() {
        let mut s = SModule::new(4, 8);
        s.install(SRule {
            query: 1,
            branch: 0,
            set: SetId::Set1,
            op: SaluOp::Add(Operand::Field(Field::PktLen)),
        })
        .unwrap();
        let input = phv(); // wire_len = 200
        let mut out = input.clone();
        s.execute(&input, &mut out);
        s.execute(&input, &mut out);
        assert_eq!(out.set(SetId::Set1).state_result, 400);
    }

    #[test]
    fn s_or_returns_old_value_bloom_style() {
        let mut s = SModule::new(4, 8);
        s.install(SRule {
            query: 1,
            branch: 0,
            set: SetId::Set1,
            op: SaluOp::Or(Operand::Const(1)),
        })
        .unwrap();
        let input = phv();
        let mut out = input.clone();
        s.execute(&input, &mut out);
        assert_eq!(out.set(SetId::Set1).state_result, 0, "first touch: old value 0");
        s.execute(&input, &mut out);
        assert_eq!(out.set(SetId::Set1).state_result, 1, "second touch: bit already set");
    }

    #[test]
    fn s_pass_hash_is_stateless() {
        let mut s = SModule::new(4, 8);
        s.install(SRule { query: 1, branch: 0, set: SetId::Set1, op: SaluOp::PassHash }).unwrap();
        let mut input = phv();
        input.set_mut(SetId::Set1).hash_result = 42;
        let mut out = input.clone();
        s.execute(&input, &mut out);
        assert_eq!(out.set(SetId::Set1).state_result, 42);
        assert!(s.registers.iter().all(|&r| r == 0));
    }

    #[test]
    fn s_bank_stats_count_insertions_and_collisions() {
        let mut s = SModule::new(4, 8);
        s.install(SRule {
            query: 1,
            branch: 0,
            set: SetId::Set1,
            op: SaluOp::Add(Operand::Const(1)),
        })
        .unwrap();
        let mut input = phv();
        input.set_mut(SetId::Set1).hash_result = 3;
        let mut out = input.clone();
        s.execute(&input, &mut out); // 0 → 1: insertion
        s.execute(&input, &mut out); // 1 → 2: collision
        assert_eq!(s.stats(), BankStats { insertions: 1, collisions: 1, evictions: 0 });
        assert_eq!(s.take_stats().insertions, 1, "take drains");
        assert_eq!(s.stats(), BankStats::default());
        s.clear_registers();
        s.execute(&input, &mut out); // registers cleared: counts as a fresh insertion
        assert_eq!(s.stats(), BankStats { insertions: 1, collisions: 0, evictions: 0 });
    }

    #[test]
    fn s_bank_stats_count_evictions_on_displacing_writes() {
        let mut s = SModule::new(4, 8);
        // Branch 0 writes 5, branch 1 then maxes with 9: the max displaces
        // a live value (5 → 9), which is one eviction; re-running, max(9, 9)
        // changes nothing, so no further eviction.
        s.install(SRule {
            query: 1,
            branch: 0,
            set: SetId::Set1,
            op: SaluOp::Write(Operand::Const(5)),
        })
        .unwrap();
        s.install(SRule {
            query: 1,
            branch: 1,
            set: SetId::Set1,
            op: SaluOp::Max(Operand::Const(9)),
        })
        .unwrap();
        let mut input = phv();
        input.set_mut(SetId::Set1).hash_result = 2;
        let mut out = input.clone();
        s.execute(&input, &mut out);
        assert_eq!(s.stats(), BankStats { insertions: 1, collisions: 1, evictions: 1 });
        s.execute(&input, &mut out); // write 9→5 evicts, max 5→9 evicts again
        assert_eq!(s.stats(), BankStats { insertions: 1, collisions: 3, evictions: 3 });
    }

    #[test]
    fn r_threshold_report_and_stop() {
        let mut r = RModule::new(8);
        // >= 10 → report; else → stop branch.
        r.install(RRule {
            query: 1,
            branch: 0,
            set: SetId::Set1,
            priority: 10,
            state_match: RMatch::at_least(10),
            global_match: RMatch::ANY,
            actions: vec![RAction::Report],
        })
        .unwrap();
        r.install(RRule {
            query: 1,
            branch: 0,
            set: SetId::Set1,
            priority: 0,
            state_match: RMatch::ANY,
            global_match: RMatch::ANY,
            actions: vec![RAction::StopBranch],
        })
        .unwrap();

        let mut input = phv();
        input.set_mut(SetId::Set1).state_result = 5;
        let mut out = input.clone();
        r.execute(&input, &mut out);
        assert!(out.reports.is_empty());
        assert!(!out.branch_active(0), "below threshold: branch stopped");

        input.set_mut(SetId::Set1).state_result = 10;
        let mut out = input.clone();
        r.execute(&input, &mut out);
        assert_eq!(out.reports.len(), 1);
        assert!(out.branch_active(0));
        assert_eq!(out.reports[0].state_result, 10);
    }

    #[test]
    fn r_global_min_accumulates_across_sets() {
        let mut r = RModule::new(8);
        r.install(RRule {
            query: 1,
            branch: 0,
            set: SetId::Set1,
            priority: 0,
            state_match: RMatch::ANY,
            global_match: RMatch::ANY,
            actions: vec![RAction::GlobalMin],
        })
        .unwrap();
        let mut input = phv();
        input.set_mut(SetId::Set1).state_result = 17;
        let mut out = input.clone();
        r.execute(&input, &mut out);
        assert_eq!(out.global_result, 17, "min(INIT, 17) = 17");
        input.global_result = 17;
        input.set_mut(SetId::Set1).state_result = 30;
        let mut out = input.clone();
        r.execute(&input, &mut out);
        assert_eq!(out.global_result, 17, "min(17, 30) = 17");
    }

    #[test]
    fn r_global_add_treats_init_as_zero() {
        let mut r = RModule::new(8);
        r.install(RRule {
            query: 1,
            branch: 0,
            set: SetId::Set1,
            priority: 0,
            state_match: RMatch::ANY,
            global_match: RMatch::ANY,
            actions: vec![RAction::GlobalAdd],
        })
        .unwrap();
        let mut input = phv();
        input.set_mut(SetId::Set1).state_result = 9;
        let mut out = input.clone();
        r.execute(&input, &mut out);
        assert_eq!(out.global_result, 9);
    }

    #[test]
    fn capacity_and_duplicate_errors() {
        let mut k = KModule::new(1);
        k.install(KRule { query: 1, branch: 0, set: SetId::Set1, mask: 0 }).unwrap();
        assert_eq!(
            k.install(KRule { query: 1, branch: 0, set: SetId::Set1, mask: 1 }),
            Err(InstallError::Duplicate { query: 1, branch: 0 })
        );
        assert_eq!(
            k.install(KRule { query: 2, branch: 0, set: SetId::Set1, mask: 1 }),
            Err(InstallError::CapacityExceeded { capacity: 1 })
        );
        assert_eq!(k.remove_query(1), 1);
        assert_eq!(k.rule_count(), 0);
    }
}
