//! The packet header vector (PHV) as Newton's modules see it.
//!
//! §4.2: "the compact module layout improves the utilization of other
//! resources at the cost of accommodating an additional metadata set and
//! the global result with PHV". A [`Phv`] therefore carries:
//!
//! * the parsed packet fields (immutable during the pipeline walk — every
//!   module can re-read original header fields),
//! * **two** independent [`MetadataSet`]s (operation keys, hash result,
//!   state result) so dependency-free modules of different sets share a
//!   stage,
//! * the **global result**, the cross-set accumulator ℝ matches and
//!   updates,
//! * per-branch activity bits (a stopped branch executes no further
//!   modules), and
//! * the reports mirrored to the analyzer.

use newton_packet::{FieldVector, Packet, SnapshotHeader};

/// Which of the two metadata sets a module instance reads/writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SetId {
    /// The "red" set of Fig. 5.
    Set1,
    /// The "blue" set of Fig. 5.
    Set2,
}

impl SetId {
    pub fn index(self) -> usize {
        match self {
            SetId::Set1 => 0,
            SetId::Set2 => 1,
        }
    }

    /// The other set (vertical composition alternates sets).
    pub fn other(self) -> SetId {
        match self {
            SetId::Set1 => SetId::Set2,
            SetId::Set2 => SetId::Set1,
        }
    }
}

/// One metadata set: operation keys + hash result + state result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetadataSet {
    /// Masked global field vector produced by 𝕂.
    pub op_keys: u128,
    /// Register index produced by ℍ.
    pub hash_result: u32,
    /// SALU output produced by 𝕊.
    pub state_result: u32,
}

/// A monitoring report mirrored to the software analyzer: "the switch
/// shall report the operation keys, hash results, state results and the
/// global result" (§4.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// The reporting query.
    pub query: u32,
    /// The branch whose ℝ fired.
    pub branch: u8,
    /// Operation keys of the reporting set.
    pub op_keys: u128,
    pub hash_result: u32,
    pub state_result: u32,
    pub global_result: u32,
}

/// Initial value of the global result. ℝ's `min` merges require "larger
/// than any count", so the PHV initializes the accumulator to `u32::MAX`.
pub const GLOBAL_INIT: u32 = u32::MAX;

/// The PHV walking the pipeline for one (packet, query) pair.
#[derive(Debug, Clone)]
pub struct Phv {
    /// Parsed packet fields; modules may re-read these at any stage.
    pub fields: FieldVector,
    /// The two metadata sets of the compact layout.
    pub sets: [MetadataSet; 2],
    /// Cross-set accumulator.
    pub global_result: u32,
    /// The query this walk executes.
    pub query: u32,
    /// Bit `b` set ⇔ branch `b` still active.
    pub active_branches: u32,
    /// Reports emitted during this walk.
    pub reports: Vec<Report>,
}

impl Phv {
    /// Fresh PHV for `pkt` executing `query` with `branches` branches all
    /// active.
    pub fn new(pkt: &Packet, query: u32, branches: u8) -> Self {
        let mut phv = Phv::scratch();
        phv.reset(FieldVector::from_packet(pkt), query, branches);
        phv
    }

    /// An inert PHV for reusable scratch buffers — [`reset`](Self::reset)
    /// before every walk.
    pub fn scratch() -> Self {
        Phv {
            fields: FieldVector::default(),
            sets: [MetadataSet::default(); 2],
            global_result: GLOBAL_INIT,
            query: 0,
            active_branches: 0,
            reports: Vec::new(),
        }
    }

    /// Re-initialize in place for a new (packet, query) walk, keeping the
    /// report buffer's capacity — the zero-allocation twin of
    /// [`new`](Self::new).
    pub fn reset(&mut self, fields: FieldVector, query: u32, branches: u8) {
        self.fields = fields;
        self.sets = [MetadataSet::default(); 2];
        self.global_result = GLOBAL_INIT;
        self.query = query;
        self.active_branches = if branches >= 32 { u32::MAX } else { (1u32 << branches) - 1 };
        self.reports.clear();
    }

    /// Copy the walk state (fields, sets, global result, query, branch
    /// mask) from `other`, leaving this PHV's report buffer untouched.
    /// This is the stage-entry snapshot of the double-buffered walk:
    /// modules never read reports, so the copy is pure `memcpy`.
    #[inline]
    pub fn copy_state_from(&mut self, other: &Phv) {
        self.fields = other.fields;
        self.sets = other.sets;
        self.global_result = other.global_result;
        self.query = other.query;
        self.active_branches = other.active_branches;
    }

    /// Restore in-flight state from a result snapshot (CQE ingress parse).
    /// The snapshot carries the *active* set's stateful results, the branch
    /// activity mask and the global result; operation keys are recomputed
    /// by 𝕂 at this hop.
    pub fn restore_snapshot(&mut self, sp: &SnapshotHeader, set: SetId) {
        self.sets[set.index()].hash_result = sp.hash_result as u32;
        self.sets[set.index()].state_result = sp.state_result;
        self.global_result = sp.global_result;
        self.active_branches = sp.active_mask as u32;
    }

    /// Capture the snapshot `newton_fin` piggybacks on egress (CQE).
    pub fn capture_snapshot(&self, cursor: u8, set: SetId) -> SnapshotHeader {
        SnapshotHeader {
            cursor,
            active_mask: (self.active_branches & 0xFF) as u8,
            hash_result: self.sets[set.index()].hash_result as u16,
            state_result: self.sets[set.index()].state_result,
            global_result: self.global_result,
        }
    }

    #[inline]
    pub fn branch_active(&self, branch: u8) -> bool {
        self.active_branches & (1 << branch) != 0
    }

    #[inline]
    pub fn deactivate_branch(&mut self, branch: u8) {
        self.active_branches &= !(1 << branch);
    }

    /// Whether any branch is still executing.
    #[inline]
    pub fn any_active(&self) -> bool {
        self.active_branches != 0
    }

    #[inline]
    pub fn set(&self, id: SetId) -> &MetadataSet {
        &self.sets[id.index()]
    }

    #[inline]
    pub fn set_mut(&mut self, id: SetId) -> &mut MetadataSet {
        &mut self.sets[id.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use newton_packet::PacketBuilder;

    #[test]
    fn new_phv_activates_requested_branches() {
        let pkt = PacketBuilder::new().build();
        let phv = Phv::new(&pkt, 1, 3);
        assert!(phv.branch_active(0) && phv.branch_active(1) && phv.branch_active(2));
        assert!(!phv.branch_active(3));
        assert_eq!(phv.global_result, GLOBAL_INIT);
    }

    #[test]
    fn deactivation_is_per_branch() {
        let pkt = PacketBuilder::new().build();
        let mut phv = Phv::new(&pkt, 1, 2);
        phv.deactivate_branch(0);
        assert!(!phv.branch_active(0));
        assert!(phv.branch_active(1));
        assert!(phv.any_active());
        phv.deactivate_branch(1);
        assert!(!phv.any_active());
    }

    #[test]
    fn snapshot_roundtrip_through_phv() {
        let pkt = PacketBuilder::new().build();
        let mut phv = Phv::new(&pkt, 1, 1);
        phv.set_mut(SetId::Set1).hash_result = 1234;
        phv.set_mut(SetId::Set1).state_result = 99;
        phv.global_result = 7;
        let sp = phv.capture_snapshot(2, SetId::Set1);
        assert_eq!(sp.cursor, 2);

        let mut phv2 = Phv::new(&pkt, 1, 1);
        phv2.restore_snapshot(&sp, SetId::Set1);
        assert_eq!(phv2.set(SetId::Set1).hash_result, 1234);
        assert_eq!(phv2.set(SetId::Set1).state_result, 99);
        assert_eq!(phv2.global_result, 7);
        assert!(phv2.branch_active(0), "active mask travels with the snapshot");
    }

    #[test]
    fn snapshot_preserves_stopped_branches() {
        let pkt = PacketBuilder::new().build();
        let mut phv = Phv::new(&pkt, 1, 3);
        phv.deactivate_branch(1);
        let sp = phv.capture_snapshot(1, SetId::Set1);
        let mut next = Phv::new(&pkt, 1, 3);
        next.restore_snapshot(&sp, SetId::Set1);
        assert!(next.branch_active(0));
        assert!(!next.branch_active(1), "stopped branch must stay stopped downstream");
        assert!(next.branch_active(2));
    }

    #[test]
    fn sets_are_independent() {
        let pkt = PacketBuilder::new().build();
        let mut phv = Phv::new(&pkt, 0, 1);
        phv.set_mut(SetId::Set1).op_keys = 0xAA;
        phv.set_mut(SetId::Set2).op_keys = 0xBB;
        assert_eq!(phv.set(SetId::Set1).op_keys, 0xAA);
        assert_eq!(phv.set(SetId::Set2).op_keys, 0xBB);
        assert_eq!(SetId::Set1.other(), SetId::Set2);
    }

    #[test]
    fn many_branches_saturate_mask() {
        let pkt = PacketBuilder::new().build();
        let phv = Phv::new(&pkt, 0, 32);
        assert!(phv.branch_active(31));
    }
}
