//! Typed table rules — the unit of Newton reconfiguration.
//!
//! "Query reconfigurability requires updating query logic via changing
//! table rules instead of modifying P4 programs" (§4.1). Everything a query
//! does on the data plane is expressed by the rule types below; installing,
//! removing or updating a query only ever adds/removes these plain-data
//! rules from module instances. No code changes, no pipeline reload.

use crate::layout::ModuleAddr;
use newton_packet::Field;

use crate::phv::SetId;

/// Identifier of an installed query (assigned by the controller).
pub type QueryId = u32;

/// Where a SALU / hash operand comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// An immediate constant.
    Const(u32),
    /// A packet header field (read from the original parsed fields, which
    /// the PHV retains through the whole pipeline).
    Field(Field),
}

/// 𝕂 rule: select operation keys by masking the global field vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KRule {
    pub query: QueryId,
    pub branch: u8,
    /// Which metadata set receives the operation keys.
    pub set: SetId,
    /// Bit-mask over the 128-bit global field vector (§4.1's `&` action).
    pub mask: u128,
}

/// ℍ's operating mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HashMode {
    /// Hash the set's operation keys into `0..range`.
    Hash { seed: u64, range: u32 },
    /// Direct mode: use a selected key field's value as the result.
    Direct(Field),
}

/// ℍ rule: produce the hash result for a metadata set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HRule {
    pub query: QueryId,
    pub branch: u8,
    pub set: SetId,
    pub mode: HashMode,
    /// Added to the hash output — lets multiple queries slice one register
    /// array ("flexible register allocation among different queries").
    pub offset: u32,
}

/// The stateful ALU executed by 𝕊 over `register[hash_result]`.
///
/// The paper's 𝕊 supports four ALU kinds (Fig. 2); `PassHash` is the
/// stateless fifth behaviour it also names ("𝕊 can also output the hash
/// result as the state result"), used by `filter`/`map` suites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SaluOp {
    /// `reg += v`; state result = new value (Count-Min rows, counters).
    Add(Operand),
    /// `old = reg; reg |= v`; state result = old value (Bloom-filter bits:
    /// old == 0 means the bit was fresh).
    Or(Operand),
    /// `reg = max(reg, v)`; state result = new value.
    Max(Operand),
    /// `old = reg; reg = v`; state result = old value.
    Write(Operand),
    /// No register access; state result = hash result.
    PassHash,
}

/// 𝕊 rule: which SALU to run for a (query, branch) on this instance's
/// register array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SRule {
    pub query: QueryId,
    pub branch: u8,
    pub set: SetId,
    pub op: SaluOp,
}

/// Inclusive ternary-style range match over a 32-bit result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RMatch {
    pub lo: u32,
    pub hi: u32,
}

impl RMatch {
    pub const ANY: RMatch = RMatch { lo: 0, hi: u32::MAX };

    pub fn at_least(lo: u32) -> RMatch {
        RMatch { lo, hi: u32::MAX }
    }

    pub fn at_most(hi: u32) -> RMatch {
        RMatch { lo: 0, hi }
    }

    pub fn exactly(v: u32) -> RMatch {
        RMatch { lo: v, hi: v }
    }

    pub fn contains(&self, v: u32) -> bool {
        (self.lo..=self.hi).contains(&v)
    }
}

/// Actions ℝ can take when its match fires (Fig. 2: report via mirroring,
/// ALUs over the result, global-result updates, stopping the query).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RAction {
    /// Mirror the metadata set + global result to the analyzer.
    Report,
    /// Stop this branch for the rest of the pipeline.
    StopBranch,
    /// `global = min(global, state_result)`.
    GlobalMin,
    /// `global = max(global, state_result)`.
    GlobalMax,
    /// `global = global + state_result` (saturating; `GLOBAL_INIT` is
    /// treated as 0 first).
    GlobalAdd,
    /// `global = global - state_result` (saturating).
    GlobalSub,
    /// `global = state_result`.
    GlobalSet,
    /// `global = GLOBAL_INIT` — hands a clean accumulator to the next
    /// primitive (e.g. after a `distinct` freshness check).
    GlobalReset,
}

/// ℝ rule: ternary match over (state result, global result) → actions.
/// Rules for the same (query, branch) on one instance are evaluated in
/// descending `priority`; the first whose matches hold fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RRule {
    pub query: QueryId,
    pub branch: u8,
    pub set: SetId,
    pub priority: i32,
    pub state_match: RMatch,
    pub global_match: RMatch,
    pub actions: Vec<RAction>,
}

/// One ternary `newton_init` entry: classify by 5-tuple + TCP flags and
/// activate query branches (§4.1; also absorbs front filters, Opt.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InitRule {
    pub query: QueryId,
    /// Bitmask of branches this entry activates.
    pub branch_mask: u32,
    /// Conjunction of (field, value, mask-over-field-bits) ternary matches;
    /// empty = match everything.
    pub matches: Vec<(Field, u64, u64)>,
}

/// A compiled query as installable rules: every rule bound to the module
/// instance ([`ModuleAddr`]) that must host it. This is the unit the
/// controller installs, removes, and (for CQE) slices across switches.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RuleSet {
    pub init: Vec<InitRule>,
    pub k: Vec<(ModuleAddr, KRule)>,
    pub h: Vec<(ModuleAddr, HRule)>,
    pub s: Vec<(ModuleAddr, SRule)>,
    pub r: Vec<(ModuleAddr, RRule)>,
}

impl RuleSet {
    /// Total module-rule count (excluding `newton_init` entries) — the
    /// "table entries" unit of Fig. 17.
    pub fn module_rule_count(&self) -> usize {
        self.k.len() + self.h.len() + self.s.len() + self.r.len()
    }

    /// Total rule count including `newton_init` entries.
    pub fn total_rule_count(&self) -> usize {
        self.module_rule_count() + self.init.len()
    }

    /// Highest stage index any rule touches, if any.
    pub fn max_stage(&self) -> Option<usize> {
        let stages = self
            .k
            .iter()
            .map(|(a, _)| a.stage)
            .chain(self.h.iter().map(|(a, _)| a.stage))
            .chain(self.s.iter().map(|(a, _)| a.stage))
            .chain(self.r.iter().map(|(a, _)| a.stage));
        stages.max()
    }

    /// Number of distinct stages used.
    pub fn stages_used(&self) -> usize {
        let mut stages: Vec<usize> = self
            .k
            .iter()
            .map(|(a, _)| a.stage)
            .chain(self.h.iter().map(|(a, _)| a.stage))
            .chain(self.s.iter().map(|(a, _)| a.stage))
            .chain(self.r.iter().map(|(a, _)| a.stage))
            .collect();
        stages.sort_unstable();
        stages.dedup();
        stages.len()
    }

    /// Shift every module rule up by `offset` stages (init entries are
    /// stage-less) — used to stack several slices of one query into one
    /// switch's pipeline at disjoint stage ranges.
    pub fn shift_stages(&self, offset: usize) -> RuleSet {
        fn shift<T: Clone>(v: &[(ModuleAddr, T)], offset: usize) -> Vec<(ModuleAddr, T)> {
            v.iter()
                .map(|(a, r)| (ModuleAddr { stage: a.stage + offset, slot: a.slot }, r.clone()))
                .collect()
        }
        RuleSet {
            init: self.init.clone(),
            k: shift(&self.k, offset),
            h: shift(&self.h, offset),
            s: shift(&self.s, offset),
            r: shift(&self.r, offset),
        }
    }

    /// Restrict to the rules whose stage lies in `[lo, hi)`, shifting them
    /// down by `lo` stages — used by CQE slicing (Algorithm 2).
    pub fn slice_stages(&self, lo: usize, hi: usize) -> RuleSet {
        fn keep<T: Clone>(v: &[(ModuleAddr, T)], lo: usize, hi: usize) -> Vec<(ModuleAddr, T)> {
            v.iter()
                .filter(|(a, _)| (lo..hi).contains(&a.stage))
                .map(|(a, r)| (ModuleAddr { stage: a.stage - lo, slot: a.slot }, r.clone()))
                .collect()
        }
        RuleSet {
            init: if lo == 0 { self.init.clone() } else { Vec::new() },
            k: keep(&self.k, lo, hi),
            h: keep(&self.h, lo, hi),
            s: keep(&self.s, lo, hi),
            r: keep(&self.r, lo, hi),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(stage: usize, slot: usize) -> ModuleAddr {
        ModuleAddr { stage, slot }
    }

    fn sample_ruleset() -> RuleSet {
        RuleSet {
            init: vec![InitRule { query: 1, branch_mask: 1, matches: vec![] }],
            k: vec![(addr(0, 0), KRule { query: 1, branch: 0, set: SetId::Set1, mask: u128::MAX })],
            h: vec![(
                addr(1, 1),
                HRule {
                    query: 1,
                    branch: 0,
                    set: SetId::Set1,
                    mode: HashMode::Hash { seed: 1, range: 256 },
                    offset: 0,
                },
            )],
            s: vec![(
                addr(2, 2),
                SRule { query: 1, branch: 0, set: SetId::Set1, op: SaluOp::PassHash },
            )],
            r: vec![(
                addr(3, 3),
                RRule {
                    query: 1,
                    branch: 0,
                    set: SetId::Set1,
                    priority: 0,
                    state_match: RMatch::ANY,
                    global_match: RMatch::ANY,
                    actions: vec![RAction::Report],
                },
            )],
        }
    }

    #[test]
    fn rmatch_ranges() {
        assert!(RMatch::at_least(10).contains(10));
        assert!(!RMatch::at_least(10).contains(9));
        assert!(RMatch::at_most(5).contains(0));
        assert!(!RMatch::at_most(5).contains(6));
        assert!(RMatch::exactly(3).contains(3));
        assert!(!RMatch::exactly(3).contains(4));
        assert!(RMatch::ANY.contains(u32::MAX));
    }

    #[test]
    fn ruleset_counts() {
        let rs = sample_ruleset();
        assert_eq!(rs.module_rule_count(), 4);
        assert_eq!(rs.total_rule_count(), 5);
        assert_eq!(rs.max_stage(), Some(3));
        assert_eq!(rs.stages_used(), 4);
    }

    #[test]
    fn slicing_shifts_stages_and_drops_init_for_later_slices() {
        let rs = sample_ruleset();
        let first = rs.slice_stages(0, 2);
        assert_eq!(first.module_rule_count(), 2);
        assert_eq!(first.init.len(), 1);
        let second = rs.slice_stages(2, 4);
        assert_eq!(second.module_rule_count(), 2);
        assert!(second.init.is_empty());
        // Stages shift down so the slice starts at stage 0.
        assert_eq!(second.s[0].0.stage, 0);
        assert_eq!(second.r[0].0.stage, 1);
    }

    #[test]
    fn empty_ruleset_has_no_stages() {
        let rs = RuleSet::default();
        assert_eq!(rs.max_stage(), None);
        assert_eq!(rs.stages_used(), 0);
    }
}
