//! The report mirror format: how ℝ's reports travel to the analyzer.
//!
//! "The first one is *report* that uploads the metadata set to analyzers
//! via mirroring" (§4.1). On hardware this is a mirrored packet carrying
//! the metadata set; here is the byte format, so overhead accounting uses
//! real message sizes and an out-of-band collector can be wire-compatible.
//!
//! Layout (big-endian), 32 bytes:
//! `query(4) | branch(1) | reserved(3) | op_keys(16) | hash(4) | state(4)`
//! — the global result rides in place of the hash's top bytes? No:
//! `query(4) | branch(1) | rsvd(3) | op_keys(16) | state(4) | global(4)`,
//! with the 32-bit hash result recomputable from the keys and therefore
//! not carried (the analyzer re-hashes when probing anyway).

use crate::phv::Report;

/// Wire length of one mirrored report.
pub const MIRROR_LEN: usize = 32;

/// Encode a report for mirroring.
pub fn encode(report: &Report) -> [u8; MIRROR_LEN] {
    let mut b = [0u8; MIRROR_LEN];
    b[0..4].copy_from_slice(&report.query.to_be_bytes());
    b[4] = report.branch;
    b[8..24].copy_from_slice(&report.op_keys.to_be_bytes());
    b[24..28].copy_from_slice(&report.state_result.to_be_bytes());
    b[28..32].copy_from_slice(&report.global_result.to_be_bytes());
    b
}

/// Errors decoding a mirrored report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MirrorTruncated(pub usize);

impl std::fmt::Display for MirrorTruncated {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "mirrored report truncated: {} of {MIRROR_LEN} bytes", self.0)
    }
}

impl std::error::Error for MirrorTruncated {}

/// Decode a mirrored report. The hash result is not carried on the wire
/// (recomputable from the operation keys); it decodes as 0.
pub fn decode(buf: &[u8]) -> Result<Report, MirrorTruncated> {
    if buf.len() < MIRROR_LEN {
        return Err(MirrorTruncated(buf.len()));
    }
    Ok(Report {
        query: u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]),
        branch: buf[4],
        op_keys: u128::from_be_bytes(buf[8..24].try_into().expect("16 bytes")),
        hash_result: 0,
        state_result: u32::from_be_bytes([buf[24], buf[25], buf[26], buf[27]]),
        global_result: u32::from_be_bytes([buf[28], buf[29], buf[30], buf[31]]),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            query: 7,
            branch: 2,
            op_keys: 0x1234_5678_9ABC_DEF0_1111_2222_3333_4444,
            hash_result: 999, // not carried
            state_result: 40,
            global_result: 77,
        }
    }

    #[test]
    fn roundtrip_modulo_hash() {
        let r = sample();
        let decoded = decode(&encode(&r)).unwrap();
        assert_eq!(decoded.query, r.query);
        assert_eq!(decoded.branch, r.branch);
        assert_eq!(decoded.op_keys, r.op_keys);
        assert_eq!(decoded.state_result, r.state_result);
        assert_eq!(decoded.global_result, r.global_result);
        assert_eq!(decoded.hash_result, 0, "hash is recomputed, not carried");
    }

    #[test]
    fn fixed_32_byte_messages() {
        assert_eq!(encode(&sample()).len(), 32);
        assert!(decode(&[0u8; 31]).is_err());
    }
}
