//! Module layouts: how 𝕂/ℍ/𝕊/ℝ instances are placed into physical stages.
//!
//! The layout is fixed at *initialization time* (it is part of the loaded
//! P4 program); queries then bind rules to the laid-out instances at
//! runtime. Two layouts from §4.2:
//!
//! * **Naïve**: one module instance per stage, cycling 𝕂→ℍ→𝕊→ℝ. Simple,
//!   but at most 25 % of each stage's resources are usable.
//! * **Compact**: one instance of *each* kind per stage. Write-read
//!   dependencies forbid a single metadata set from using two dependent
//!   modules in one stage, but with the two independent metadata sets a
//!   query advances both sets one module per stage (Fig. 5), quadrupling
//!   usable resources.

use crate::resources::{module_costs, ResourceVector};
use std::fmt;

/// The four Newton module kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModuleKind {
    KeySelection,
    HashCalculation,
    StateBank,
    ResultProcess,
}

impl ModuleKind {
    /// All kinds in pipeline-dependency order (𝕂 → ℍ → 𝕊 → ℝ).
    pub const ALL: [ModuleKind; 4] = [
        ModuleKind::KeySelection,
        ModuleKind::HashCalculation,
        ModuleKind::StateBank,
        ModuleKind::ResultProcess,
    ];

    /// Position in the write-read dependency chain (Fig. 4): 𝕂 writes what
    /// ℍ reads, ℍ writes what 𝕊 reads, 𝕊 writes what ℝ reads.
    pub fn depth(self) -> usize {
        match self {
            ModuleKind::KeySelection => 0,
            ModuleKind::HashCalculation => 1,
            ModuleKind::StateBank => 2,
            ModuleKind::ResultProcess => 3,
        }
    }

    /// Whether `self` writes state that `next` reads (same metadata set) —
    /// such pairs cannot share a stage.
    pub fn feeds(self, next: ModuleKind) -> bool {
        next.depth() == self.depth() + 1
    }

    /// Per-instance hardware cost.
    pub fn cost(self) -> ResourceVector {
        match self {
            ModuleKind::KeySelection => module_costs::KEY_SELECTION,
            ModuleKind::HashCalculation => module_costs::HASH_CALCULATION,
            ModuleKind::StateBank => module_costs::STATE_BANK,
            ModuleKind::ResultProcess => module_costs::RESULT_PROCESS,
        }
    }

    /// Single-letter name used in figures (K/H/S/R).
    pub fn letter(self) -> char {
        match self {
            ModuleKind::KeySelection => 'K',
            ModuleKind::HashCalculation => 'H',
            ModuleKind::StateBank => 'S',
            ModuleKind::ResultProcess => 'R',
        }
    }
}

impl fmt::Display for ModuleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.letter())
    }
}

/// Which layout the P4 program was initialized with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayoutKind {
    /// One module per stage (the §4.2 baseline).
    Naive,
    /// One module of each kind per stage (Fig. 5).
    Compact,
}

/// Address of a module instance in the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModuleAddr {
    pub stage: usize,
    /// Slot within the stage (0 in the naïve layout; 0..4 in compact).
    pub slot: usize,
}

impl fmt::Display for ModuleAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}.{}", self.stage, self.slot)
    }
}

/// The static module layout of a pipeline.
#[derive(Debug, Clone)]
pub struct Layout {
    kind: LayoutKind,
    stages: Vec<Vec<ModuleKind>>,
}

impl Layout {
    /// Build a layout over `stages` pipeline stages.
    pub fn new(kind: LayoutKind, stages: usize) -> Self {
        let stages_vec = (0..stages)
            .map(|i| match kind {
                // Naïve: cycle K, H, S, R one per stage.
                LayoutKind::Naive => vec![ModuleKind::ALL[i % 4]],
                // Compact: all four kinds in every stage.
                LayoutKind::Compact => ModuleKind::ALL.to_vec(),
            })
            .collect();
        Layout { kind, stages: stages_vec }
    }

    pub fn kind(&self) -> LayoutKind {
        self.kind
    }

    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// Module kinds in a stage, by slot.
    pub fn stage(&self, stage: usize) -> &[ModuleKind] {
        &self.stages[stage]
    }

    /// The kind at an address, if it exists.
    pub fn kind_at(&self, addr: ModuleAddr) -> Option<ModuleKind> {
        self.stages.get(addr.stage)?.get(addr.slot).copied()
    }

    /// Find the slot of `kind` within `stage`, if present.
    pub fn slot_of(&self, stage: usize, kind: ModuleKind) -> Option<usize> {
        self.stages.get(stage)?.iter().position(|&k| k == kind)
    }

    /// Total module instances in the pipeline.
    pub fn instance_count(&self) -> usize {
        self.stages.iter().map(Vec::len).sum()
    }

    /// Hardware cost of the whole layout (instances only, excluding
    /// `newton_init`).
    pub fn total_cost(&self) -> ResourceVector {
        self.stages.iter().flatten().fold(ResourceVector::ZERO, |acc, k| acc + k.cost())
    }

    /// Per-stage cost of stage `i`.
    pub fn stage_cost(&self, stage: usize) -> ResourceVector {
        self.stages[stage].iter().fold(ResourceVector::ZERO, |acc, k| acc + k.cost())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::StageBudget;

    #[test]
    fn naive_layout_one_module_per_stage() {
        let l = Layout::new(LayoutKind::Naive, 8);
        assert_eq!(l.instance_count(), 8);
        assert_eq!(l.stage(0), &[ModuleKind::KeySelection]);
        assert_eq!(l.stage(1), &[ModuleKind::HashCalculation]);
        assert_eq!(l.stage(4), &[ModuleKind::KeySelection]);
    }

    #[test]
    fn compact_layout_four_modules_per_stage() {
        let l = Layout::new(LayoutKind::Compact, 6);
        assert_eq!(l.instance_count(), 24);
        for s in 0..6 {
            assert_eq!(l.stage(s).len(), 4);
        }
        assert_eq!(l.slot_of(0, ModuleKind::StateBank), Some(2));
    }

    #[test]
    fn compact_stage_fits_budget() {
        let l = Layout::new(LayoutKind::Compact, 1);
        assert!(l.stage_cost(0).fits_within(&StageBudget::capacity()));
    }

    #[test]
    fn compact_quadruples_naive_utilization() {
        // Same stage count: compact packs 4x the instances, hence ~4x the
        // per-stage utilization Table 3 reports.
        let n = Layout::new(LayoutKind::Naive, 12);
        let c = Layout::new(LayoutKind::Compact, 12);
        assert_eq!(c.instance_count(), 4 * n.instance_count());
    }

    #[test]
    fn dependency_chain_matches_fig4() {
        use ModuleKind::*;
        assert!(KeySelection.feeds(HashCalculation));
        assert!(HashCalculation.feeds(StateBank));
        assert!(StateBank.feeds(ResultProcess));
        assert!(!KeySelection.feeds(StateBank));
        assert!(!ResultProcess.feeds(KeySelection));
    }

    #[test]
    fn kind_at_out_of_range_is_none() {
        let l = Layout::new(LayoutKind::Naive, 2);
        assert_eq!(l.kind_at(ModuleAddr { stage: 5, slot: 0 }), None);
        assert_eq!(l.kind_at(ModuleAddr { stage: 0, slot: 1 }), None);
        assert_eq!(l.kind_at(ModuleAddr { stage: 0, slot: 0 }), Some(ModuleKind::KeySelection));
    }
}
