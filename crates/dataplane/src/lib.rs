//! A Tofino-like programmable switch pipeline, and Newton's four
//! reconfigurable modules on top of it.
//!
//! The paper's data-plane contribution (§4) is that the four query
//! primitives decompose into four *rule-configured* modules —
//! key selection (𝕂), hash calculation (ℍ), state bank (𝕊), result
//! process (ℝ) — so installing/removing/updating a query is a table-rule
//! operation, never a P4 reload. This crate models exactly that:
//!
//! * [`resources`] — the seven per-stage resource categories Tofino exposes
//!   (crossbar, SRAM, TCAM, VLIW, hash bits, SALUs, gateways) and the
//!   per-module costs, normalized against a switch.p4-like reference
//!   (Table 3).
//! * [`phv`] — the packet header vector: parsed fields plus the **two
//!   independent metadata sets** and the **global result** of the compact
//!   layout (§4.2, Fig. 5).
//! * [`rules`] — the typed table rules each module accepts. Rules are plain
//!   data: a query is a set of rules, and reconfiguration is rule
//!   install/remove.
//! * [`modules`] — the four module implementations interpreting those
//!   rules, including the four SALU kinds of 𝕊.
//! * [`init`] — the `newton_init` ternary dispatch table (5-tuple + TCP
//!   flags → query) that also absorbs front filters (Opt.1).
//! * [`layout`] — naïve (one module per stage) vs compact (𝕂+ℍ+𝕊+ℝ per
//!   stage) module layouts.
//! * [`switch`] — the full pipeline: parse → `newton_init` → stages →
//!   `newton_fin` (result-snapshot emission for CQE), with per-epoch state
//!   reset and forwarding counters that prove rule operations never disturb
//!   forwarding.
//! * [`exec`] — the configuration/execution split: rule operations compile
//!   a flattened, immutable [`exec::ExecPlan`]; the per-packet path only
//!   walks it, allocation-free, against a reusable [`exec::ExecScratch`].
//! * [`batch`] — the batch-first hot path: packets expand into SoA PHV
//!   lanes ([`batch::PhvBatch`]) and each stage's module instances run
//!   across all live lanes before the pipeline advances
//!   ([`Switch::process_batch`](switch::Switch::process_batch)).

pub mod batch;
pub mod debug;
pub mod exec;
pub mod init;
pub mod layout;
pub mod mirror;
pub mod modules;
pub mod phv;
pub mod resources;
pub mod rules;
pub mod switch;

pub use batch::{BatchOutput, DEFAULT_BATCH_LANES};
pub use exec::{ExecPlan, ExecScratch};
pub use init::InitTable;
pub use layout::{Layout, LayoutKind, ModuleAddr, ModuleKind};
pub use modules::BankStats;
pub use phv::{MetadataSet, Phv, Report, SetId};
pub use resources::{ResourceVector, StageBudget};
pub use rules::{
    HRule, HashMode, InitRule, KRule, Operand, QueryId, RAction, RMatch, RRule, RuleSet, SRule,
    SaluOp,
};
pub use switch::{
    BatchSchedule, PipelineConfig, PipelineOutput, SliceInfo, StageUtilization, Switch, SwitchError,
};
