//! The full switch pipeline: parser → `newton_init` → stages → `newton_fin`.
//!
//! One [`Switch`] models one programmable pipeline. At initialization time
//! it is given a stage count and a module [`Layout`] (this corresponds to
//! loading the P4 program). From then on *everything* is runtime table-rule
//! operations: queries install/remove [`RuleSet`]s, and packet forwarding is
//! never interrupted — [`Switch::process`] keeps counting forwarded packets
//! no matter what rule churn happens between calls (the §6.1 claim).
//!
//! Cross-switch query execution: the controller assigns this switch a
//! [`SliceInfo`] per sliced query. Slice 0 is dispatched by `newton_init`;
//! later slices activate when an incoming result snapshot's cursor matches.
//! `newton_fin` captures an outgoing snapshot while slices remain.

use crate::batch::{BatchOutput, PhvBatch};
use crate::exec::{ExecPlan, ExecScratch};
use crate::init::InitTable;
use crate::layout::{Layout, LayoutKind, ModuleAddr, ModuleKind};
use crate::modules::{
    BankStats, HModule, InstallError, KModule, RModule, SModule, DEFAULT_RULE_CAPACITY,
};
use crate::phv::{Phv, Report, SetId};
use crate::resources::ResourceVector;
use crate::rules::{QueryId, RuleSet};
use newton_packet::{FieldVector, Packet, SnapshotHeader};
use newton_sketch::FastMap;
use newton_telemetry::{Event, NoopSink, Telemetry};

/// Which scheduler drives the batched walk in
/// [`Switch::process_batch`]. Both produce bit-identical results (see
/// `walk_lanes_sequential`'s proof sketch); they differ only in memory
/// access pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchSchedule {
    /// Walk each lane straight through its compiled run list, one lane at
    /// a time. The default: with the pooled `ExecPlan` (~1KB for the
    /// full catalog) and per-instance rule tables L1-resident, this wins
    /// at every measured batch size — there is no cross-lane locality
    /// left for a smarter schedule to harvest.
    #[default]
    Sequential,
    /// Advance stage-major: each stage freezes its live lanes, buckets
    /// their ops per slot, and runs each module instance once over its
    /// whole bucket. Keeps an instance's rule table hot across the batch;
    /// the regime where that pays is large installed rule sets whose
    /// tables spill out of L1, not the evaluation catalog.
    StageMajor,
}

/// Pipeline initialization parameters (the "P4 program" knobs).
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Physical stage count (Tofino: 12).
    pub stages: usize,
    /// Module layout loaded at init time.
    pub layout: LayoutKind,
    /// Registers per 𝕊 instance array.
    pub registers_per_array: usize,
    /// Rule capacity per module instance.
    pub rule_capacity: usize,
    /// Scheduler for the batched walk.
    pub batch_schedule: BatchSchedule,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            stages: 12,
            layout: LayoutKind::Compact,
            registers_per_array: 4096,
            rule_capacity: DEFAULT_RULE_CAPACITY,
            batch_schedule: BatchSchedule::default(),
        }
    }
}

/// One slice of a (possibly CQE-sliced) query held by this switch.
///
/// Resilient placement can assign a switch *several* slices of one query
/// (it may sit at different depths on different possible paths); each
/// slice's rules occupy a distinct stage range of the pipeline, and a
/// packet executes exactly the slice matching its snapshot cursor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceInfo {
    /// 0-based slice index this assignment executes.
    pub index: u8,
    /// Total slices of the query.
    pub total: u8,
    /// The metadata set `newton_fin` snapshots on egress.
    pub capture_set: SetId,
    /// The metadata set the incoming snapshot restores into (the previous
    /// slice's capture set; unused for slice 0).
    pub restore_set: SetId,
    /// Stage range `[lo, hi)` the slice's rules occupy on THIS switch.
    pub stages: (usize, usize),
}

impl SliceInfo {
    /// A whole (unsliced) query occupying the full pipeline.
    pub fn whole() -> Self {
        SliceInfo {
            index: 0,
            total: 1,
            capture_set: SetId::Set1,
            restore_set: SetId::Set1,
            stages: (0, usize::MAX),
        }
    }
}

/// One module instance in a stage.
#[derive(Debug, Clone)]
pub(crate) enum Instance {
    K(KModule),
    H(HModule),
    S(SModule),
    R(RModule),
}

impl Instance {
    fn kind(&self) -> ModuleKind {
        match self {
            Instance::K(_) => ModuleKind::KeySelection,
            Instance::H(_) => ModuleKind::HashCalculation,
            Instance::S(_) => ModuleKind::StateBank,
            Instance::R(_) => ModuleKind::ResultProcess,
        }
    }

    fn rule_count(&self) -> usize {
        match self {
            Instance::K(m) => m.rule_count(),
            Instance::H(m) => m.rule_count(),
            Instance::S(m) => m.rule_count(),
            Instance::R(m) => m.rule_count(),
        }
    }

    /// Append the table indices of this instance's rules belonging to
    /// `query`, in table order (plan compilation).
    fn push_rule_indices(&self, query: QueryId, out: &mut Vec<u32>) {
        fn collect<R>(rules: &[R], out: &mut Vec<u32>, is_query: impl Fn(&R) -> bool) {
            out.extend(
                rules.iter().enumerate().filter(|(_, r)| is_query(r)).map(|(i, _)| i as u32),
            );
        }
        match self {
            Instance::K(m) => collect(m.rules(), out, |r| r.query == query),
            Instance::H(m) => collect(m.rules(), out, |r| r.query == query),
            Instance::S(m) => collect(m.rules(), out, |r| r.query == query),
            Instance::R(m) => collect(m.rules(), out, |r| r.query == query),
        }
    }
}

/// Errors installing a rule set into a switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchError {
    /// The address does not exist in this pipeline's layout.
    NoSuchInstance(ModuleAddr),
    /// The instance at the address hosts a different module kind.
    KindMismatch { addr: ModuleAddr, expected: ModuleKind, found: ModuleKind },
    /// The instance rejected the rule.
    Install(InstallError),
    /// A CQE slice assignment would make snapshot-cursor dispatch
    /// ambiguous: the result snapshot carries no query id, so at most one
    /// slice may resume at each cursor, and a query's slice 0 may be
    /// assigned at most once.
    SliceConflict { query: QueryId, index: u8, existing: QueryId },
}

impl std::fmt::Display for SwitchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwitchError::NoSuchInstance(a) => write!(f, "no module instance at {a}"),
            SwitchError::KindMismatch { addr, expected, found } => {
                write!(f, "instance at {addr} is {found}, rule needs {expected}")
            }
            SwitchError::Install(e) => write!(f, "install failed: {e}"),
            SwitchError::SliceConflict { query, index, existing } => write!(
                f,
                "slice {index} of query {query} conflicts with an existing slice of query \
                 {existing}: snapshots carry no query id, so each resume cursor must be unique"
            ),
        }
    }
}

impl std::error::Error for SwitchError {}

impl From<InstallError> for SwitchError {
    fn from(e: InstallError) -> Self {
        SwitchError::Install(e)
    }
}

/// Marker carried by packets whose queries are fully executed: the cursor
/// matches no slice, so downstream switches neither re-dispatch nor
/// resume; the header is stripped before host delivery.
pub const DEAD_MARKER: SnapshotHeader = SnapshotHeader {
    cursor: u8::MAX,
    active_mask: 0,
    hash_result: 0,
    state_result: 0,
    global_result: 0,
};

/// What one pipeline walk produced.
#[derive(Debug, Clone, Default)]
pub struct PipelineOutput {
    /// Reports mirrored to the analyzer.
    pub reports: Vec<Report>,
    /// Outgoing result snapshot, if the query continues on a later switch.
    pub snapshot: Option<SnapshotHeader>,
}

/// One physical stage's occupancy and resource utilization (see
/// [`Switch::stage_utilization`]) — the per-stage gauge behind the
/// Fig. 10–13 resource curves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageUtilization {
    /// Module instances resident in the stage.
    pub modules: usize,
    /// Table rules installed across those instances.
    pub rules: usize,
    /// Hardware cost: layout cost + amortized rule share, absolute units.
    pub resources: ResourceVector,
}

/// A programmable switch running Newton modules.
#[derive(Debug, Clone)]
pub struct Switch {
    config: PipelineConfig,
    layout: Layout,
    init: InitTable,
    stages: Vec<Vec<Instance>>,
    slices: FastMap<QueryId, Vec<SliceInfo>>,
    forwarded: u64,
    /// Compiled from `init`/`stages`/`slices` on every configuration
    /// mutation; [`process_batch`](Self::process_batch) only reads it.
    plan: ExecPlan,
    /// Reusable buffers of the zero-allocation packet path.
    scratch: ExecScratch,
    /// Reusable output buffer backing the batch-of-1 scalar wrappers
    /// ([`process`](Self::process) / [`process_sink`](Self::process_sink)).
    batch_out: BatchOutput,
}

impl Switch {
    /// Initialize the pipeline (load the "P4 program").
    pub fn new(config: PipelineConfig) -> Self {
        let layout = Layout::new(config.layout, config.stages);
        let stages = (0..config.stages)
            .map(|s| {
                layout
                    .stage(s)
                    .iter()
                    .map(|kind| match kind {
                        ModuleKind::KeySelection => Instance::K(KModule::new(config.rule_capacity)),
                        ModuleKind::HashCalculation => {
                            Instance::H(HModule::new(config.rule_capacity))
                        }
                        ModuleKind::StateBank => Instance::S(SModule::new(
                            config.rule_capacity,
                            config.registers_per_array,
                        )),
                        ModuleKind::ResultProcess => {
                            Instance::R(RModule::new(config.rule_capacity))
                        }
                    })
                    .collect()
            })
            .collect();
        Switch {
            config,
            layout,
            init: InitTable::new(),
            stages,
            slices: FastMap::default(),
            forwarded: 0,
            plan: ExecPlan::default(),
            scratch: ExecScratch::new(),
            batch_out: BatchOutput::default(),
        }
    }

    /// Recompile the execution plan from the current configuration.
    fn rebuild_plan(&mut self) {
        let stage_slots: Vec<usize> = self.stages.iter().map(Vec::len).collect();
        let stages = &self.stages;
        self.plan =
            ExecPlan::build(&self.init, &self.slices, &stage_slots, |stage, slot, q, out| {
                stages[stage][slot].push_rule_indices(q, out)
            });
    }

    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Packets forwarded since construction — rule operations never pause
    /// this counter.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }

    /// Install a compiled rule set. Atomic: on error nothing remains
    /// installed.
    pub fn install(&mut self, rules: &RuleSet) -> Result<(), SwitchError> {
        let query = Self::ruleset_query(rules);
        let result = self.try_install(rules);
        if result.is_err() {
            if let Some(q) = query {
                self.remove_query(q);
            }
        }
        self.rebuild_plan();
        result
    }

    fn ruleset_query(rules: &RuleSet) -> Option<QueryId> {
        rules
            .init
            .first()
            .map(|r| r.query)
            .or_else(|| rules.k.first().map(|(_, r)| r.query))
            .or_else(|| rules.h.first().map(|(_, r)| r.query))
            .or_else(|| rules.s.first().map(|(_, r)| r.query))
            .or_else(|| rules.r.first().map(|(_, r)| r.query))
    }

    fn try_install(&mut self, rules: &RuleSet) -> Result<(), SwitchError> {
        for r in &rules.init {
            self.init.install(r.clone());
        }
        for (addr, rule) in &rules.k {
            match self.instance_mut(*addr)? {
                Instance::K(m) => m.install(*rule)?,
                other => {
                    return Err(SwitchError::KindMismatch {
                        addr: *addr,
                        expected: ModuleKind::KeySelection,
                        found: other.kind(),
                    })
                }
            }
        }
        for (addr, rule) in &rules.h {
            match self.instance_mut(*addr)? {
                Instance::H(m) => m.install(*rule)?,
                other => {
                    return Err(SwitchError::KindMismatch {
                        addr: *addr,
                        expected: ModuleKind::HashCalculation,
                        found: other.kind(),
                    })
                }
            }
        }
        for (addr, rule) in &rules.s {
            match self.instance_mut(*addr)? {
                Instance::S(m) => m.install(*rule)?,
                other => {
                    return Err(SwitchError::KindMismatch {
                        addr: *addr,
                        expected: ModuleKind::StateBank,
                        found: other.kind(),
                    })
                }
            }
        }
        for (addr, rule) in &rules.r {
            match self.instance_mut(*addr)? {
                Instance::R(m) => m.install(rule.clone())?,
                other => {
                    return Err(SwitchError::KindMismatch {
                        addr: *addr,
                        expected: ModuleKind::ResultProcess,
                        found: other.kind(),
                    })
                }
            }
        }
        Ok(())
    }

    fn instance_mut(&mut self, addr: ModuleAddr) -> Result<&mut Instance, SwitchError> {
        self.stages
            .get_mut(addr.stage)
            .and_then(|s| s.get_mut(addr.slot))
            .ok_or(SwitchError::NoSuchInstance(addr))
    }

    /// Remove every rule of a query; returns the number of rules removed
    /// (init entries included).
    pub fn remove_query(&mut self, query: QueryId) -> usize {
        let mut removed = self.init.remove_query(query);
        for stage in &mut self.stages {
            for inst in stage {
                removed += match inst {
                    Instance::K(m) => m.remove_query(query),
                    Instance::H(m) => m.remove_query(query),
                    Instance::S(m) => m.remove_query(query),
                    Instance::R(m) => m.remove_query(query),
                };
            }
        }
        self.slices.remove(&query);
        self.rebuild_plan();
        removed
    }

    /// Find an assignment `slice` would clash with: a later slice resuming
    /// at the same snapshot cursor (of *any* query — the snapshot carries
    /// no query id, making such dispatch ambiguous), or a duplicate
    /// slice-0 assignment of the same query. With `skip_own`, the query's
    /// existing assignments are ignored (they are being replaced).
    fn slice_conflict(&self, query: QueryId, slice: SliceInfo, skip_own: bool) -> Option<QueryId> {
        for (&q, infos) in &self.slices {
            if skip_own && q == query {
                continue;
            }
            for info in infos {
                let ambiguous_resume = slice.index > 0 && info.index == slice.index;
                let duplicate_dispatch = slice.index == 0 && q == query && info.index == 0;
                if ambiguous_resume || duplicate_dispatch {
                    return Some(q);
                }
            }
        }
        None
    }

    /// Assign one CQE slice of `query` to this switch (a switch may hold
    /// several slices of one query at disjoint stage ranges). Rejects
    /// assignments that would make snapshot-cursor dispatch ambiguous.
    pub fn add_slice(&mut self, query: QueryId, slice: SliceInfo) -> Result<(), SwitchError> {
        if let Some(existing) = self.slice_conflict(query, slice, false) {
            return Err(SwitchError::SliceConflict { query, index: slice.index, existing });
        }
        self.slices.entry(query).or_default().push(slice);
        self.rebuild_plan();
        Ok(())
    }

    /// Replace all slice assignments of `query` with a single one. Rejects
    /// assignments that would make snapshot-cursor dispatch ambiguous.
    pub fn set_slice(&mut self, query: QueryId, slice: SliceInfo) -> Result<(), SwitchError> {
        if let Some(existing) = self.slice_conflict(query, slice, true) {
            return Err(SwitchError::SliceConflict { query, index: slice.index, existing });
        }
        self.slices.insert(query, vec![slice]);
        self.rebuild_plan();
        Ok(())
    }

    /// Remove ONE CQE slice of `query` — its module rules (the query's
    /// rules within the slice's stage range), its `newton_init` entries
    /// when it is slice 0, and the [`SliceInfo`] assignment — leaving the
    /// query's other slices untouched. This is the unit the controller's
    /// diff-install path replaces without a full remove+reinstall.
    /// Returns the number of rules removed (0 when the slice is not held).
    ///
    /// Sound because slices of one query occupy disjoint stage ranges, so
    /// a module instance only ever hosts rules of one slice per query.
    pub fn remove_slice(&mut self, query: QueryId, index: u8) -> usize {
        let Some(pos) =
            self.slices.get(&query).and_then(|v| v.iter().position(|i| i.index == index))
        else {
            return 0;
        };
        let (lo, hi) = self.slices[&query][pos].stages;
        let mut removed = self.remove_rules_in_stages(query, lo, hi);
        if index == 0 {
            removed += self.init.remove_query(query);
        }
        let infos = self.slices.get_mut(&query).expect("checked above");
        infos.remove(pos);
        if infos.is_empty() {
            self.slices.remove(&query);
        }
        self.rebuild_plan();
        removed
    }

    /// Remove `query`'s module rules in stages `[lo, hi)`; returns the
    /// count. Init entries are stage-less and not touched here.
    fn remove_rules_in_stages(&mut self, query: QueryId, lo: usize, hi: usize) -> usize {
        let hi = hi.min(self.stages.len());
        let lo = lo.min(hi);
        let mut removed = 0usize;
        for stage in &mut self.stages[lo..hi] {
            for inst in stage {
                removed += match inst {
                    Instance::K(m) => m.remove_query(query),
                    Instance::H(m) => m.remove_query(query),
                    Instance::S(m) => m.remove_query(query),
                    Instance::R(m) => m.remove_query(query),
                };
            }
        }
        removed
    }

    /// The slice assignments for `query` (a whole query if unassigned).
    pub fn slices_of(&self, query: QueryId) -> Vec<SliceInfo> {
        self.slices.get(&query).cloned().unwrap_or_else(|| vec![SliceInfo::whole()])
    }

    /// The slice assignments *explicitly* held for `query` — empty when
    /// the switch holds nothing, unlike [`slices_of`](Self::slices_of)
    /// which defaults to a whole-query view. Repair uses this to tell
    /// "never placed here" apart from "placed as a whole query".
    pub fn assigned_slices(&self, query: QueryId) -> &[SliceInfo] {
        self.slices.get(&query).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total installed rules (init + modules).
    pub fn total_rule_count(&self) -> usize {
        self.init.rule_count()
            + self.stages.iter().flatten().map(Instance::rule_count).sum::<usize>()
    }

    /// Hardware cost of the loaded layout.
    pub fn layout_cost(&self) -> ResourceVector {
        self.layout.total_cost()
    }

    /// Rules installed for one query (init entries included).
    pub fn rules_of_query(&self, query: QueryId) -> usize {
        let init = self.init.rules().iter().filter(|r| r.query == query).count();
        let modules: usize = self
            .stages
            .iter()
            .flatten()
            .map(|inst| match inst {
                Instance::K(m) => m.rules().iter().filter(|r| r.query == query).count(),
                Instance::H(m) => m.rules().iter().filter(|r| r.query == query).count(),
                Instance::S(m) => m.rules().iter().filter(|r| r.query == query).count(),
                Instance::R(m) => m.rules().iter().filter(|r| r.query == query).count(),
            })
            .sum();
        init + modules
    }

    /// Canonical rendering of the switch's installed configuration: every
    /// init entry, every module rule per stage and instance slot, and the
    /// slice assignments sorted by (query, index). Two switches with equal
    /// digests are configured identically — the churn equivalence tests
    /// compare diff-installed switches against from-scratch twins through
    /// this. (Register *contents* are runtime state, not configuration,
    /// and are excluded; run-report comparisons cover them.)
    ///
    /// Each table's rules are stable-sorted by query id before rendering:
    /// inter-query order within a table carries no behavioral weight (the
    /// classifier and resume paths sort by query id, and ℝ tie-breaking is
    /// per-query), but it does differ between a diff install — which leaves
    /// unchanged rules in place — and a from-scratch reinstall, which
    /// appends everything. Intra-query order, which ℝ tie-breaking *does*
    /// observe, is preserved by the stable sort.
    pub fn config_digest(&self) -> String {
        use std::fmt::Write as _;
        fn by_query<R: Clone>(rules: &[R], query: impl Fn(&R) -> QueryId) -> Vec<R> {
            let mut v = rules.to_vec();
            v.sort_by_key(query);
            v
        }
        let mut out = String::new();
        let _ = writeln!(out, "init={:?}", by_query(self.init.rules(), |r| r.query));
        for (si, stage) in self.stages.iter().enumerate() {
            for (ii, inst) in stage.iter().enumerate() {
                let _ = match inst {
                    Instance::K(m) => {
                        writeln!(out, "s{si}i{ii}K={:?}", by_query(m.rules(), |r| r.query))
                    }
                    Instance::H(m) => {
                        writeln!(out, "s{si}i{ii}H={:?}", by_query(m.rules(), |r| r.query))
                    }
                    Instance::S(m) => {
                        writeln!(out, "s{si}i{ii}S={:?}", by_query(m.rules(), |r| r.query))
                    }
                    Instance::R(m) => {
                        writeln!(out, "s{si}i{ii}R={:?}", by_query(m.rules(), |r| r.query))
                    }
                };
            }
        }
        let mut assigns: Vec<(QueryId, SliceInfo)> =
            self.slices.iter().flat_map(|(q, infos)| infos.iter().map(move |i| (*q, *i))).collect();
        assigns.sort_by_key(|(q, i)| (*q, i.index));
        let _ = writeln!(out, "slices={assigns:?}");
        out
    }

    /// Apply `f` to every ℝ rule of `query` across the pipeline — the
    /// in-place rule-update path (§2.1: "operators can update table rules
    /// in running switches"). Returns the number of rules modified.
    pub fn update_r_rules(
        &mut self,
        query: QueryId,
        f: &mut dyn FnMut(&mut crate::rules::RRule),
    ) -> usize {
        let mut touched = 0;
        for stage in &mut self.stages {
            for inst in stage {
                if let Instance::R(m) = inst {
                    touched += m.update_rules(query, f);
                }
            }
        }
        touched
    }

    /// Aggregate hardware usage: the loaded layout's instance costs plus
    /// each installed rule's amortized share of its instance (per the
    /// Table 3 per-primitive accounting: one rule = 1/capacity of the
    /// instance).
    pub fn resource_usage(&self) -> ResourceVector {
        let mut total = self.layout.total_cost();
        for (si, stage) in self.stages.iter().enumerate() {
            for (slot, inst) in stage.iter().enumerate() {
                let kind = self.layout.kind_at(ModuleAddr { stage: si, slot }).expect("laid out");
                let share = inst.rule_count() as f64 / self.config.rule_capacity as f64;
                total += kind.cost() * share;
            }
        }
        total
    }

    /// Worst-case rule-table occupancy across module instances, as a
    /// fraction of capacity — the headroom gauge for "how many more
    /// concurrent queries fit" (§4.1's capacity discussion).
    pub fn peak_table_occupancy(&self) -> f64 {
        self.stages
            .iter()
            .flatten()
            .map(|i| i.rule_count() as f64 / self.config.rule_capacity as f64)
            .fold(0.0, f64::max)
    }

    /// Pre-size the batch scratch for batches of `pkts` packets expanding
    /// to about `lanes` lanes (epoch-loop scratch recycling: sized once
    /// from the epoch's arrival count instead of growing mid-batch).
    pub fn reserve_batch(&mut self, pkts: usize, lanes: usize) {
        self.scratch.batch.reserve(pkts, lanes);
    }

    /// Reset all stateful memory (epoch boundary).
    pub fn clear_state(&mut self) {
        for stage in &mut self.stages {
            for inst in stage {
                if let Instance::S(m) = inst {
                    m.clear_registers();
                }
            }
        }
    }

    /// Drain the state-bank activity counters accumulated since the last
    /// call, summed over every 𝕊 instance (end-of-epoch telemetry; call
    /// *before* [`clear_state`](Self::clear_state)).
    pub fn take_bank_stats(&mut self) -> BankStats {
        let mut total = BankStats::default();
        for stage in &mut self.stages {
            for inst in stage {
                if let Instance::S(m) = inst {
                    total.merge(&m.take_stats());
                }
            }
        }
        total
    }

    /// Occupancy and resource utilization of one physical stage: resident
    /// module instances, their installed rules, and the stage's hardware
    /// cost (layout cost plus each rule's amortized 1/capacity share of
    /// its instance — the same accounting as
    /// [`resource_usage`](Self::resource_usage), per stage).
    pub fn stage_utilization(&self, stage: usize) -> StageUtilization {
        let instances = &self.stages[stage];
        let mut resources = self.layout.stage_cost(stage);
        let mut rules = 0usize;
        for (slot, inst) in instances.iter().enumerate() {
            let kind = self.layout.kind_at(ModuleAddr { stage, slot }).expect("laid out");
            rules += inst.rule_count();
            resources +=
                kind.cost() * (inst.rule_count() as f64 / self.config.rule_capacity as f64);
        }
        StageUtilization { modules: instances.len(), rules, resources }
    }

    /// Process one packet: forward it, execute matching query slices,
    /// return reports and an outgoing snapshot. A batch-of-1 wrapper
    /// around [`process_batch`](Self::process_batch).
    ///
    /// The snapshot header doubles as a **processed marker**: resilient
    /// placement (Algorithm 2) installs slice 0 on *every* edge switch, so
    /// a monitored packet transiting a second slice-0 holder must not
    /// re-execute the query. Slice 0 therefore runs only on SP-less
    /// packets; once any query executed, the packet carries the header
    /// until the last Newton hop strips it (done by `newton-net` before
    /// host delivery). A fully-executed query's marker has
    /// `cursor = u8::MAX`, matching no slice.
    #[inline]
    pub fn process(&mut self, pkt: &Packet, sp_in: Option<&SnapshotHeader>) -> PipelineOutput {
        self.process_sink(pkt, sp_in, &mut NoopSink)
    }

    /// [`process`](Self::process) with a telemetry sink: emits one
    /// [`Event::SwitchReport`] per report the walk produced. Every sink
    /// touch sits behind `T::ENABLED`, a compile-time constant, so with
    /// [`newton_telemetry::NoopSink`] this monomorphizes to the
    /// uninstrumented path — the perf bench gates that at < 2 % overhead
    /// on the pipeline hot path. Both scalar entry points share the single
    /// batched body, so there is no scalar/batch divergence to maintain.
    #[inline]
    pub fn process_sink<T: Telemetry>(
        &mut self,
        pkt: &Packet,
        sp_in: Option<&SnapshotHeader>,
        sink: &mut T,
    ) -> PipelineOutput {
        let mut bout = std::mem::take(&mut self.batch_out);
        self.process_batch(&[(pkt, sp_in.copied())], sink, &mut bout);
        let out = PipelineOutput {
            reports: bout.reports.drain(..).map(|(_, r)| r).collect(),
            snapshot: bout.snapshots.first().copied().flatten(),
        };
        self.batch_out = bout;
        out
    }

    /// Process a whole packet batch through the batch-first execution
    /// path: lanes are expanded packet-major into the SoA [`PhvBatch`] and
    /// walked by the configured [`BatchSchedule`] (per-lane sequential by
    /// default; stage-major runs each module instance across every live
    /// lane of a stage before the pipeline advances).
    ///
    /// Output order is canonical and byte-identical to processing each
    /// packet alone: `out.snapshots[p]` is packet `p`'s outgoing header,
    /// `out.reports` is packet-major then classification order then
    /// execution order, and sink events are emitted in exactly that
    /// report order.
    pub fn process_batch<T: Telemetry>(
        &mut self,
        pkts: &[(&Packet, Option<SnapshotHeader>)],
        sink: &mut T,
        out: &mut BatchOutput,
    ) {
        self.forwarded += pkts.len() as u64;
        out.clear();
        let ExecScratch { classify, batch, run_span, stage_q, cur_lanes, buckets } =
            &mut self.scratch;
        let plan = &self.plan;
        batch.clear();

        // Lane expansion, packet-major. Snapshots are pushed provisionally
        // and finalized from lane egress state after the walk.
        for (p, &(pkt, sp_in)) in pkts.iter().enumerate() {
            let fields = FieldVector::from_packet(pkt);
            batch.fields.push(fields);
            match sp_in {
                None => {
                    // Slice-0 queries dispatched by newton_init.
                    plan.classify_into(&fields, classify);
                    let lane_lo = batch.lanes();
                    for &(query, branch_mask) in classify.iter() {
                        let Some(g) = plan.slice0_idx(query) else { continue };
                        batch.push_lane(p as u32, query, g, branch_mask);
                    }
                    let executed = batch.lanes() > lane_lo;
                    out.snapshots.push(if executed { Some(DEAD_MARKER) } else { None });
                }
                Some(sp) => {
                    // The later slice resumed from the incoming snapshot
                    // cursor (unique by construction); by default the
                    // header passes through unchanged.
                    match plan.resume_idx(sp.cursor) {
                        Some((query, g)) if sp.active_mask != 0 => {
                            let restore = plan.dispatch(g).info.restore_set.index();
                            batch.push_resume_lane(p as u32, query, g, &sp, restore);
                            out.snapshots.push(Some(sp));
                        }
                        // Resumed with nothing active: dead on arrival.
                        Some(_) => out.snapshots.push(Some(DEAD_MARKER)),
                        None => out.snapshots.push(Some(sp)),
                    }
                }
            }
        }

        match self.config.batch_schedule {
            BatchSchedule::Sequential => walk_lanes_sequential(&mut self.stages, plan, batch),
            BatchSchedule::StageMajor => {
                walk_batch(&mut self.stages, plan, batch, run_span, stage_q, cur_lanes, buckets)
            }
        }

        // Finalize per-packet snapshots from lane egress state. Lanes are
        // contiguous per packet by construction.
        let mut l = 0usize;
        for (p, &(_, sp_in)) in pkts.iter().enumerate() {
            let lo = l;
            while l < batch.lanes() && batch.lane_pkt[l] as usize == p {
                l += 1;
            }
            if lo == l {
                continue; // No lanes: the provisional snapshot stands.
            }
            if sp_in.is_some() {
                // A resumed packet holds exactly one lane (cursors are
                // unique): continue to the next slice or die.
                let info = &plan.dispatch(batch.lane_group[lo]).info;
                let next = if info.index + 1 < info.total && batch.cur[lo].active != 0 {
                    batch.capture(lo, info.index + 1, info.capture_set.index())
                } else {
                    DEAD_MARKER
                };
                out.snapshots[p] = Some(next);
            } else {
                // Slice 0: the last classified query still active with
                // slices remaining wins the continuation slot (scalar
                // loop-carried overwrite order).
                let mut continuation: Option<SnapshotHeader> = None;
                for lane in lo..l {
                    let info = &plan.dispatch(batch.lane_group[lane]).info;
                    if info.total > 1 && batch.cur[lane].active != 0 {
                        continuation = Some(batch.capture(lane, 1, info.capture_set.index()));
                    }
                }
                out.snapshots[p] = Some(continuation.unwrap_or(DEAD_MARKER));
            }
        }

        // Reports were tagged (lane, seq) at push time; sorting restores
        // the canonical scalar emission order.
        batch.reports.sort_unstable_by_key(|&(lane, seq, _)| (lane, seq));
        let PhvBatch { reports, lane_pkt, .. } = batch;
        for (lane, _, r) in reports.drain(..) {
            if T::ENABLED {
                sink.record(Event::SwitchReport {
                    query: r.query,
                    branch: r.branch,
                    hash: r.hash_result,
                    state: r.state_result,
                });
            }
            out.reports.push((lane_pkt[lane as usize], r));
        }
    }

    /// The seed (pre-plan) packet path, retained as the behavioural
    /// reference: re-derives dispatch from the mutable rule tables on
    /// every packet and clones the PHV per stage. Equivalence proptests
    /// and `--bench perf` compare [`process`](Self::process) against it.
    pub fn process_reference(
        &mut self,
        pkt: &Packet,
        sp_in: Option<&SnapshotHeader>,
    ) -> PipelineOutput {
        self.forwarded += 1;
        let mut out = PipelineOutput::default();

        match sp_in {
            None => {
                let mut continuation: Option<SnapshotHeader> = None;
                let mut executed = false;
                for (query, branch_mask) in self.init.classify(pkt) {
                    let Some(info) = self.slices_of(query).into_iter().find(|i| i.index == 0)
                    else {
                        continue;
                    };
                    let mut phv = Phv::new(pkt, query, 0);
                    phv.active_branches = branch_mask;
                    self.walk_reference(&mut phv, info.stages);
                    out.reports.append(&mut phv.reports);
                    executed = true;
                    if info.total > 1 && phv.any_active() {
                        continuation = Some(phv.capture_snapshot(1, info.capture_set));
                    }
                }
                out.snapshot = continuation.or(if executed { Some(DEAD_MARKER) } else { None });
            }
            Some(sp) => {
                let mut next = *sp;
                let resume: Vec<(QueryId, SliceInfo)> = self
                    .slices
                    .iter()
                    .flat_map(|(&q, infos)| infos.iter().map(move |&i| (q, i)))
                    .filter(|(_, i)| i.index == sp.cursor && i.index > 0)
                    .collect();
                for (query, info) in resume {
                    let mut phv = Phv::new(pkt, query, 0);
                    phv.restore_snapshot(sp, info.restore_set);
                    if !phv.any_active() {
                        next = DEAD_MARKER;
                        continue;
                    }
                    self.walk_reference(&mut phv, info.stages);
                    out.reports.append(&mut phv.reports);
                    next = if info.index + 1 < info.total && phv.any_active() {
                        phv.capture_snapshot(info.index + 1, info.capture_set)
                    } else {
                        DEAD_MARKER
                    };
                }
                out.snapshot = Some(next);
            }
        }
        out
    }

    /// Walk the PHV through the stages in `range` with per-stage parallel
    /// semantics: every instance in a stage reads the stage-entry PHV and
    /// writes into the stage-exit PHV. Seed implementation kept for
    /// [`process_reference`](Self::process_reference).
    fn walk_reference(&mut self, phv: &mut Phv, range: (usize, usize)) {
        let hi = range.1.min(self.stages.len());
        for stage in self.stages[range.0.min(hi)..hi].iter_mut() {
            if !phv.any_active() {
                break;
            }
            let input = phv.clone();
            for inst in stage.iter_mut() {
                match inst {
                    Instance::K(m) => m.execute(&input, phv),
                    Instance::H(m) => m.execute(&input, phv),
                    Instance::S(m) => m.execute(&input, phv),
                    Instance::R(m) => m.execute(&input, phv),
                }
            }
        }
    }

    /// `newton_init` classification (debug tracing).
    pub(crate) fn classify_for_debug(&self, pkt: &Packet) -> Vec<(QueryId, u32)> {
        self.init.classify(pkt)
    }

    /// Stage count (debug tracing).
    pub(crate) fn stage_count_for_debug(&self) -> usize {
        self.stages.len()
    }

    /// Execute one stage with the usual parallel semantics (debug tracing).
    pub(crate) fn execute_stage_for_debug(&mut self, stage: usize, input: &Phv, out: &mut Phv) {
        for inst in self.stages[stage].iter_mut() {
            match inst {
                Instance::K(m) => m.execute(input, out),
                Instance::H(m) => m.execute(input, out),
                Instance::S(m) => m.execute(input, out),
                Instance::R(m) => m.execute(input, out),
            }
        }
    }

    /// Read an 𝕊 instance's register (tests, analyzer state drains).
    pub fn read_register(&self, addr: ModuleAddr, idx: usize) -> Option<u32> {
        match self.stages.get(addr.stage)?.get(addr.slot)? {
            Instance::S(m) => Some(m.register(idx)),
            _ => None,
        }
    }

    /// Read a register through a query's slice mapping: `addr` is relative
    /// to the slice's own stage numbering; this translates by the slice's
    /// stage offset on this switch. `None` if this switch does not hold
    /// the slice.
    pub fn read_slice_register(
        &self,
        query: QueryId,
        slice_index: u8,
        addr: ModuleAddr,
        idx: usize,
    ) -> Option<u32> {
        let infos = self.slices.get(&query)?;
        let info = infos.iter().find(|i| i.index == slice_index)?;
        let phys = ModuleAddr { stage: info.stages.0.saturating_add(addr.stage), slot: addr.slot };
        self.read_register(phys, idx)
    }
}

/// Below this many lanes even the [`BatchSchedule::StageMajor`] engine
/// falls back to the sequential walk: the stage-major machinery (queues,
/// buckets, per-stage sorts) costs more than it amortizes, and single
/// packets expand to at most one lane per installed query so whole
/// batches-of-1 land under it. Bit-identical either way (see
/// [`walk_lanes_sequential`]).
const SEQUENTIAL_LANE_CUTOFF: usize = 16;

/// Walk every live lane of the batch through its compiled op list,
/// **stage-major** with per-stage parallel semantics: each stage in
/// ascending order freezes its lanes' stage-entry columns, groups their
/// ops into per-slot buckets, and runs each module instance once over its
/// whole bucket. Scheduling is O(total runs): a lane is queued for the
/// stage of its next run and re-queued as its cursor advances, never
/// rescanned. Draining buckets slot-ascending with lanes in ascending
/// lane order reproduces the scalar walk's per-instance operation order
/// exactly — 𝕊 register sequences and [`BankStats`] stay bit-identical.
/// Dead lanes (`cur.active == 0`) are dropped at stage boundaries like
/// the scalar walk's `any_active` gate.
///
/// Free function (not a method) so callers can hold disjoint borrows of
/// the switch's plan, stages and scratch at once.
fn walk_batch(
    stages: &mut [Vec<Instance>],
    plan: &ExecPlan,
    batch: &mut PhvBatch,
    run_span: &mut Vec<(u32, u32)>,
    stage_q: &mut Vec<Vec<u32>>,
    cur_lanes: &mut Vec<u32>,
    buckets: &mut Vec<Vec<(u32, u32, u32)>>,
) {
    if batch.lanes() <= SEQUENTIAL_LANE_CUTOFF {
        walk_lanes_sequential(stages, plan, batch);
        return;
    }
    if stage_q.len() < stages.len() {
        stage_q.resize_with(stages.len(), Vec::new);
    }
    // Seed every live lane into the stage of its first run (ascending
    // lane order by construction).
    run_span.clear();
    for l in 0..batch.lanes() {
        let span = plan.dispatch(batch.lane_group[l]).runs;
        run_span.push(span);
        if batch.cur[l].active != 0 && span.0 < span.1 {
            stage_q[plan.run(span.0).0 as usize].push(l as u32);
        }
    }
    for s in 0..stages.len() {
        if stage_q[s].is_empty() {
            continue;
        }
        // Take the stage's lane list; re-pushed lanes arrive in source-
        // stage order, so restore the canonical ascending lane order.
        std::mem::swap(cur_lanes, &mut stage_q[s]);
        cur_lanes.sort_unstable();
        let insts = &mut stages[s];
        if buckets.len() < insts.len() {
            buckets.resize_with(insts.len(), Vec::new);
        }
        // Freeze stage-entry state, bucket the stage's ops per slot, and
        // queue each lane for its next run's stage.
        for &lq in cur_lanes.iter() {
            let l = lq as usize;
            if batch.cur[l].active == 0 {
                continue; // Died in an earlier stage: the walk ends here.
            }
            let (cursor, end) = run_span[l];
            let (_, lo, hi) = plan.run(cursor);
            batch.entry[l] = batch.cur[l];
            for &(slot, rlo, rhi) in plan.ops(lo, hi) {
                buckets[slot as usize].push((lq, rlo, rhi));
            }
            run_span[l].0 = cursor + 1;
            if cursor + 1 < end {
                stage_q[plan.run(cursor + 1).0 as usize].push(lq);
            }
        }
        cur_lanes.clear();

        // One dispatch per (stage, slot): the instance runs across its
        // whole bucket with the rule table hot.
        for sl in 0..insts.len() {
            if buckets[sl].is_empty() {
                continue;
            }
            let ops = buckets[sl].iter().map(|&(l, rlo, rhi)| (l, plan.rules(rlo, rhi)));
            match &mut insts[sl] {
                Instance::K(m) => m.execute_batch(ops, batch),
                Instance::H(m) => m.execute_batch(ops, batch),
                Instance::S(m) => m.execute_batch(ops, batch),
                Instance::R(m) => m.execute_batch(ops, batch),
            }
            buckets[sl].clear();
        }
    }
}

/// Walk each lane of a small batch straight through its compiled run
/// list, one lane at a time — the degenerate-batch twin of [`walk_batch`]
/// dispatching the same module kernels with single-lane buckets.
///
/// Bit-identical to the stage-major walk for ANY batch, not just small
/// ones: per lane, both walks execute the same ops in the same run order
/// against the same frozen stage-entry state; and the only *shared*
/// mutable state — an 𝕊 instance's registers, [`BankStats`] — is owned by
/// one module instance, which occupies exactly one (stage, slot), so two
/// lanes touching it are ordered by lane index under both schedules.
/// Reports are tagged `(lane, seq)` and re-sorted by the caller either
/// way.
fn walk_lanes_sequential(stages: &mut [Vec<Instance>], plan: &ExecPlan, batch: &mut PhvBatch) {
    for l in 0..batch.lanes() {
        let (lo, hi) = plan.dispatch(batch.lane_group[l]).runs;
        for cursor in lo..hi {
            if batch.cur[l].active == 0 {
                break;
            }
            let (stage, olo, ohi) = plan.run(cursor);
            batch.entry[l] = batch.cur[l];
            let insts = &mut stages[stage as usize];
            for &(slot, rlo, rhi) in plan.ops(olo, ohi) {
                let ops = std::iter::once((l as u32, plan.rules(rlo, rhi)));
                match &mut insts[slot as usize] {
                    Instance::K(m) => m.execute_batch(ops, batch),
                    Instance::H(m) => m.execute_batch(ops, batch),
                    Instance::S(m) => m.execute_batch(ops, batch),
                    Instance::R(m) => m.execute_batch(ops, batch),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Operand;
    use crate::rules::{HRule, HashMode, InitRule, KRule, RAction, RMatch, RRule, SRule, SaluOp};
    use newton_packet::{Field, PacketBuilder, TcpFlags};

    /// Hand-compile a tiny Q1-style query: count SYNs per dst, report ≥ 3.
    fn tiny_q1(query: QueryId) -> RuleSet {
        let set = SetId::Set1;
        RuleSet {
            init: vec![InitRule {
                query,
                branch_mask: 1,
                matches: vec![(Field::Proto, 6, 0xFF), (Field::TcpFlags, 2, 0xFF)],
            }],
            k: vec![(
                ModuleAddr { stage: 0, slot: 0 },
                KRule { query, branch: 0, set, mask: Field::DstIp.mask() },
            )],
            h: vec![(
                ModuleAddr { stage: 1, slot: 1 },
                HRule {
                    query,
                    branch: 0,
                    set,
                    mode: HashMode::Hash { seed: 11, range: 1024 },
                    offset: 0,
                },
            )],
            s: vec![(
                ModuleAddr { stage: 2, slot: 2 },
                SRule { query, branch: 0, set, op: SaluOp::Add(Operand::Const(1)) },
            )],
            r: vec![(
                ModuleAddr { stage: 3, slot: 3 },
                RRule {
                    query,
                    branch: 0,
                    set,
                    priority: 1,
                    state_match: RMatch::at_least(3),
                    global_match: RMatch::ANY,
                    actions: vec![RAction::Report],
                },
            )],
        }
    }

    fn syn_to(dst: u32) -> newton_packet::Packet {
        PacketBuilder::new().dst_ip(dst).tcp_flags(TcpFlags::SYN).build()
    }

    #[test]
    fn install_walk_report() {
        let mut sw = Switch::new(PipelineConfig::default());
        sw.install(&tiny_q1(1)).unwrap();
        // Two SYNs: below threshold.
        assert!(sw.process(&syn_to(9), None).reports.is_empty());
        assert!(sw.process(&syn_to(9), None).reports.is_empty());
        // Third SYN crosses the threshold.
        let out = sw.process(&syn_to(9), None);
        assert_eq!(out.reports.len(), 1);
        assert_eq!(out.reports[0].state_result, 3);
        assert_eq!(out.reports[0].query, 1);
        // Non-matching traffic executes nothing.
        let udp = PacketBuilder::new().protocol(newton_packet::Protocol::Udp).build();
        assert!(sw.process(&udp, None).reports.is_empty());
    }

    #[test]
    fn forwarding_counter_never_pauses_across_rule_ops() {
        let mut sw = Switch::new(PipelineConfig::default());
        for _ in 0..5 {
            sw.process(&syn_to(1), None);
        }
        sw.install(&tiny_q1(1)).unwrap();
        for _ in 0..5 {
            sw.process(&syn_to(1), None);
        }
        sw.remove_query(1);
        for _ in 0..5 {
            sw.process(&syn_to(1), None);
        }
        assert_eq!(sw.forwarded(), 15, "every packet forwarded regardless of rule churn");
    }

    #[test]
    fn remove_query_erases_all_rules_and_behaviour() {
        let mut sw = Switch::new(PipelineConfig::default());
        sw.install(&tiny_q1(1)).unwrap();
        assert_eq!(sw.total_rule_count(), 5);
        let removed = sw.remove_query(1);
        assert_eq!(removed, 5);
        assert_eq!(sw.total_rule_count(), 0);
        for _ in 0..10 {
            assert!(sw.process(&syn_to(9), None).reports.is_empty());
        }
    }

    #[test]
    fn epoch_clear_resets_counts() {
        let mut sw = Switch::new(PipelineConfig::default());
        sw.install(&tiny_q1(1)).unwrap();
        for _ in 0..3 {
            sw.process(&syn_to(9), None);
        }
        sw.clear_state();
        // Counts restart: two more SYNs stay below threshold.
        assert!(sw.process(&syn_to(9), None).reports.is_empty());
        assert!(sw.process(&syn_to(9), None).reports.is_empty());
    }

    #[test]
    fn install_is_atomic_on_error() {
        let mut sw = Switch::new(PipelineConfig::default());
        let mut rs = tiny_q1(1);
        // Sabotage: point the S rule at a K slot.
        rs.s[0].0 = ModuleAddr { stage: 0, slot: 0 };
        assert!(sw.install(&rs).is_err());
        assert_eq!(sw.total_rule_count(), 0, "failed install must leave nothing behind");
    }

    #[test]
    fn bad_address_is_rejected() {
        let mut sw = Switch::new(PipelineConfig { stages: 2, ..Default::default() });
        let mut rs = tiny_q1(1);
        rs.r[0].0 = ModuleAddr { stage: 99, slot: 0 };
        assert!(matches!(sw.install(&rs), Err(SwitchError::NoSuchInstance(_))));
    }

    #[test]
    fn cqe_two_switch_execution() {
        // Slice the tiny query: K+H on switch A (stages 0-1), S+R on
        // switch B (stages 2-3 → shifted to 0-1).
        let full = tiny_q1(1);
        let slice_a = full.slice_stages(0, 2);
        let slice_b = full.slice_stages(2, 4);

        let mut a = Switch::new(PipelineConfig::default());
        let mut b = Switch::new(PipelineConfig::default());
        a.install(&slice_a).unwrap();
        b.install(&slice_b).unwrap();
        a.set_slice(
            1,
            SliceInfo {
                index: 0,
                total: 2,
                capture_set: SetId::Set1,
                restore_set: SetId::Set1,
                stages: (0, 12),
            },
        )
        .unwrap();
        b.set_slice(
            1,
            SliceInfo {
                index: 1,
                total: 2,
                capture_set: SetId::Set1,
                restore_set: SetId::Set1,
                stages: (0, 12),
            },
        )
        .unwrap();

        let mut reports = Vec::new();
        for _ in 0..3 {
            let out_a = a.process(&syn_to(9), None);
            assert!(out_a.reports.is_empty(), "A has no R module");
            let sp = out_a.snapshot.expect("A must emit a snapshot");
            assert_eq!(sp.cursor, 1);
            let out_b = b.process(&syn_to(9), Some(&sp));
            assert_eq!(
                out_b.snapshot,
                Some(DEAD_MARKER),
                "B is the last slice: the header becomes a processed marker"
            );
            reports.extend(out_b.reports);
        }
        assert_eq!(reports.len(), 1, "threshold crossed exactly once at hop B");
        assert_eq!(reports[0].state_result, 3);
    }

    #[test]
    fn naive_layout_hosts_one_module_per_stage() {
        let mut sw = Switch::new(PipelineConfig {
            layout: LayoutKind::Naive,
            stages: 4,
            ..Default::default()
        });
        // The naive layout is K,H,S,R at slots 0 of stages 0..4.
        let mut rs = tiny_q1(1);
        rs.k[0].0 = ModuleAddr { stage: 0, slot: 0 };
        rs.h[0].0 = ModuleAddr { stage: 1, slot: 0 };
        rs.s[0].0 = ModuleAddr { stage: 2, slot: 0 };
        rs.r[0].0 = ModuleAddr { stage: 3, slot: 0 };
        sw.install(&rs).unwrap();
        for _ in 0..2 {
            sw.process(&syn_to(5), None);
        }
        assert_eq!(sw.process(&syn_to(5), None).reports.len(), 1);
    }

    #[test]
    fn conflicting_resume_cursors_rejected() {
        // Regression: the seed `process` silently dropped the first
        // query's continuation when two queries resumed at one cursor
        // (the loop overwrote `next`). The ambiguity is now rejected at
        // assignment time — the snapshot header carries no query id.
        let slice = |index: u8, total: u8| SliceInfo {
            index,
            total,
            capture_set: SetId::Set1,
            restore_set: SetId::Set1,
            stages: (0, 12),
        };
        let mut sw = Switch::new(PipelineConfig::default());
        sw.set_slice(1, slice(1, 3)).unwrap();
        let err = sw.add_slice(2, slice(1, 2)).unwrap_err();
        assert!(
            matches!(err, SwitchError::SliceConflict { query: 2, index: 1, existing: 1 }),
            "cursor-1 resume already taken by query 1, got {err:?}"
        );
        assert!(sw.set_slice(2, slice(1, 2)).is_err(), "set_slice checks other queries too");

        // Duplicate index of the SAME query is just as ambiguous.
        assert!(sw.add_slice(1, slice(1, 3)).is_err());

        // Distinct cursors and slice-0 assignments coexist fine.
        sw.add_slice(1, slice(2, 3)).unwrap();
        sw.set_slice(2, slice(0, 2)).unwrap();
        sw.add_slice(3, slice(0, 2)).unwrap();
        // Replacing a query's own assignment never self-conflicts.
        sw.set_slice(1, slice(1, 3)).unwrap();
    }

    #[test]
    fn planned_process_matches_reference() {
        // Two switches with identical config: one runs the compiled-plan
        // path, the other the seed path; outputs must be bit-identical.
        let mut planned = Switch::new(PipelineConfig::default());
        let mut reference = Switch::new(PipelineConfig::default());
        planned.install(&tiny_q1(1)).unwrap();
        reference.install(&tiny_q1(1)).unwrap();
        for i in 0..8 {
            let pkt = syn_to(i % 3);
            let a = planned.process(&pkt, None);
            let b = reference.process_reference(&pkt, None);
            assert_eq!(a.reports, b.reports);
            assert_eq!(a.snapshot, b.snapshot);
        }
        let s_addr = ModuleAddr { stage: 2, slot: 2 };
        for idx in 0..16 {
            assert_eq!(planned.read_register(s_addr, idx), reference.read_register(s_addr, idx));
        }
    }

    #[test]
    fn dependent_modules_in_same_stage_see_stale_inputs() {
        // Install K and H in the SAME stage: H reads the stage-entry op
        // keys (zero), demonstrating the write-read dependency the compact
        // layout must respect (Fig. 4).
        let mut sw = Switch::new(PipelineConfig::default());
        let mut rs = tiny_q1(1);
        rs.h[0].0 = ModuleAddr { stage: 0, slot: 1 }; // same stage as K
        rs.h[0].1.mode = HashMode::Direct(Field::DstIp);
        sw.install(&rs).unwrap();
        sw.process(&syn_to(0xAABB), None);
        // S indexed by hash of stale (zero) keys → register 0 counted, not
        // the register for dst 0xAABB.
        let s_addr = ModuleAddr { stage: 2, slot: 2 };
        assert_eq!(sw.read_register(s_addr, 0), Some(1));
    }
}
