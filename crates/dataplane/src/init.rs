//! The `newton_init` dispatch table (§4.1).
//!
//! `newton_init` "conducts ternary matching on 5-tuple … and TCP control
//! flag to classify and dispatch traffic for concurrent queries". It also
//! absorbs front `filter` primitives (Opt.1): a front filter on exact
//! 5-tuple/flags values becomes part of the dispatch entry, consuming no
//! module at all.
//!
//! One packet can feed several queries (chained same-traffic queries) and,
//! within a query, several branches — so classification returns *all*
//! matching `(query, branch-mask)` activations, not just the first.

use crate::rules::{InitRule, QueryId};
use newton_packet::{FieldVector, Packet};

/// The `newton_init` ternary table.
#[derive(Debug, Clone, Default)]
pub struct InitTable {
    rules: Vec<InitRule>,
}

impl InitTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Install a dispatch entry.
    pub fn install(&mut self, rule: InitRule) {
        self.rules.push(rule);
    }

    /// Remove all entries of a query; returns how many were removed.
    pub fn remove_query(&mut self, query: QueryId) -> usize {
        let before = self.rules.len();
        self.rules.retain(|r| r.query != query);
        before - self.rules.len()
    }

    /// Number of installed entries.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Installed entries.
    pub fn rules(&self) -> &[InitRule] {
        &self.rules
    }

    /// Classify a packet: the union of branch activations per query across
    /// all matching entries.
    pub fn classify(&self, pkt: &Packet) -> Vec<(QueryId, u32)> {
        let mut out = Vec::new();
        self.classify_into(&FieldVector::from_packet(pkt), &mut out);
        out
    }

    /// No-alloc [`classify`](Self::classify): writes the activations into
    /// `out` (cleared first, capacity reused), sorted by query id. The
    /// sorted-insert keeps per-packet dispatch order identical to the
    /// allocating variant; concurrent query counts are small (tens), so a
    /// binary-searched `Vec` beats a map rebuild.
    pub fn classify_into(&self, fields: &FieldVector, out: &mut Vec<(QueryId, u32)>) {
        out.clear();
        for rule in &self.rules {
            let hit = rule
                .matches
                .iter()
                .all(|&(field, value, mask)| (fields.get(field) & mask) == (value & mask));
            if hit {
                match out.binary_search_by_key(&rule.query, |&(q, _)| q) {
                    Ok(pos) => out[pos].1 |= rule.branch_mask,
                    Err(pos) => out.insert(pos, (rule.query, rule.branch_mask)),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use newton_packet::{Field, PacketBuilder, Protocol, TcpFlags};

    fn tcp_syn() -> Packet {
        PacketBuilder::new().tcp_flags(TcpFlags::SYN).dst_port(80).build()
    }

    fn udp_dns() -> Packet {
        PacketBuilder::new().protocol(Protocol::Udp).src_port(53).build()
    }

    #[test]
    fn empty_table_matches_nothing() {
        assert!(InitTable::new().classify(&tcp_syn()).is_empty());
    }

    #[test]
    fn exact_dispatch_on_proto_and_flags() {
        let mut t = InitTable::new();
        t.install(InitRule {
            query: 1,
            branch_mask: 0b1,
            matches: vec![(Field::Proto, 6, 0xFF), (Field::TcpFlags, 2, 0xFF)],
        });
        assert_eq!(t.classify(&tcp_syn()), vec![(1, 0b1)]);
        assert!(t.classify(&udp_dns()).is_empty());
    }

    #[test]
    fn union_of_branch_masks_across_entries() {
        let mut t = InitTable::new();
        t.install(InitRule { query: 3, branch_mask: 0b01, matches: vec![(Field::Proto, 6, 0xFF)] });
        t.install(InitRule {
            query: 3,
            branch_mask: 0b10,
            matches: vec![(Field::TcpFlags, 2, 0xFF)],
        });
        assert_eq!(t.classify(&tcp_syn()), vec![(3, 0b11)]);
    }

    #[test]
    fn multiple_queries_can_match_one_packet() {
        let mut t = InitTable::new();
        t.install(InitRule { query: 1, branch_mask: 1, matches: vec![(Field::Proto, 6, 0xFF)] });
        t.install(InitRule {
            query: 2,
            branch_mask: 1,
            matches: vec![(Field::DstPort, 80, 0xFFFF)],
        });
        let hits = t.classify(&tcp_syn());
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn ternary_mask_matches_prefixes() {
        let mut t = InitTable::new();
        // Match dst ip in 172.16.0.0/16 via a field-level mask.
        t.install(InitRule {
            query: 9,
            branch_mask: 1,
            matches: vec![(Field::DstIp, 0xAC10_0000, 0xFFFF_0000)],
        });
        let hit = PacketBuilder::new().dst_ip(0xAC10_1234).build();
        let miss = PacketBuilder::new().dst_ip(0x0A00_0001).build();
        assert_eq!(t.classify(&hit).len(), 1);
        assert!(t.classify(&miss).is_empty());
    }

    #[test]
    fn remove_query_clears_its_entries_only() {
        let mut t = InitTable::new();
        t.install(InitRule { query: 1, branch_mask: 1, matches: vec![] });
        t.install(InitRule { query: 2, branch_mask: 1, matches: vec![] });
        assert_eq!(t.remove_query(1), 1);
        assert_eq!(t.rule_count(), 1);
        assert_eq!(t.classify(&tcp_syn()), vec![(2, 1)]);
    }

    #[test]
    fn catch_all_entry_matches_everything() {
        let mut t = InitTable::new();
        t.install(InitRule { query: 5, branch_mask: 1, matches: vec![] });
        assert_eq!(t.classify(&tcp_syn()).len(), 1);
        assert_eq!(t.classify(&udp_dns()).len(), 1);
    }
}
