//! Structure-of-arrays PHV lanes for the batch-first execution path.
//!
//! One [`PhvBatch`] holds every in-flight (packet, query) *lane* of a
//! packet batch as parallel columns instead of an array of [`Phv`]
//! structs: the per-lane state a module touches — one metadata-set pair,
//! one global result, one activity mask — is a single packed
//! `LaneState`, so a kernel reads one cache line per lane and the
//! stage-entry freeze is one contiguous copy. The walk order over lanes
//! is the configured `BatchSchedule` (per-lane sequential by default,
//! stage-major optionally).
//!
//! Lane liveness is the activity mask itself (`cur[l].active == 0` ⇔ the
//! lane is dead); a dead lane is skipped at stage boundaries exactly like
//! the scalar walk's `any_active` gate. Lanes are appended packet-major,
//! in `newton_init` classification order within a packet, which makes the
//! lane index the canonical ordering key: reports are tagged
//! `(lane, seq)` at push time and sorted back into the scalar path's
//! emission order before they leave [`Switch::process_batch`].
//!
//! [`Phv`]: crate::phv::Phv
//! [`Switch::process_batch`]: crate::Switch::process_batch

use crate::phv::{MetadataSet, Report, GLOBAL_INIT};
use crate::rules::QueryId;
use newton_packet::{FieldVector, SnapshotHeader};

/// Default packets-per-batch handed to
/// [`Switch::process_batch`](crate::Switch::process_batch) by the network
/// layer. Chosen by the `--bench perf` batch-size sweep: the sweep is flat
/// within noise from 32 lanes up (the walk is compute-bound on an
/// L1-resident working set), so 64 amortizes the per-call overhead fully
/// while keeping per-switch scratch small.
pub const DEFAULT_BATCH_LANES: usize = 64;

/// Branch test identical to [`Phv::branch_active`](crate::Phv): same shift
/// expression, so debug-overflow and release-masking behaviour match the
/// scalar path bit for bit.
#[inline(always)]
pub(crate) fn lane_branch_active(active: u32, branch: u8) -> bool {
    active & (1 << branch) != 0
}

/// One lane's mutable PHV state, packed so the per-stage entry freeze is
/// a single contiguous copy and a module touches one cache line per lane.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct LaneState {
    /// The two metadata sets (op keys, hash result, state result).
    pub(crate) sets: [MetadataSet; 2],
    /// The global result accumulator.
    pub(crate) global: u32,
    /// Branch-activity mask; `0` ⇔ the lane is dead.
    pub(crate) active: u32,
}

/// The SoA lane columns of one in-flight packet batch.
///
/// The `cur` column is the live stage-exit state; `entry` is the frozen
/// stage-entry snapshot every module instance reads (stage semantics:
/// writers in a stage are invisible to readers in the same stage).
/// Capacity is recycled across batches.
#[derive(Debug, Clone, Default)]
pub struct PhvBatch {
    /// Parsed packet fields, one entry per *packet* of the batch.
    pub(crate) fields: Vec<FieldVector>,
    /// Lane → packet index (into [`fields`](Self::fields)).
    pub(crate) lane_pkt: Vec<u32>,
    /// Lane → executing query.
    pub(crate) lane_query: Vec<QueryId>,
    /// Lane → dispatch index into the plan's dense dispatch table.
    pub(crate) lane_group: Vec<u32>,
    /// Live per-lane state (stage-exit).
    pub(crate) cur: Vec<LaneState>,
    /// Frozen stage-entry per-lane state.
    pub(crate) entry: Vec<LaneState>,
    /// Reports tagged `(lane, seq)` at push time; sorting by that key
    /// reconstructs the scalar path's packet-major emission order.
    pub(crate) reports: Vec<(u32, u32, Report)>,
    /// ℝ per-(lane, op) winner scratch, generation-tagged so it needs no
    /// per-op clearing: `r_tag[b] == r_gen` ⇔ `r_best[b]` is current.
    pub(crate) r_best: [u32; 32],
    pub(crate) r_order: [u8; 32],
    pub(crate) r_tag: [u32; 32],
    pub(crate) r_gen: u32,
}

impl PhvBatch {
    /// Number of lanes in the current batch.
    #[inline]
    pub(crate) fn lanes(&self) -> usize {
        self.lane_pkt.len()
    }

    /// Reset for a new batch, keeping every column's capacity.
    pub(crate) fn clear(&mut self) {
        self.fields.clear();
        self.lane_pkt.clear();
        self.lane_query.clear();
        self.lane_group.clear();
        self.cur.clear();
        self.entry.clear();
        self.reports.clear();
    }

    /// Pre-size the columns for a batch of `pkts` packets expanding to
    /// about `lanes` lanes (epoch-loop scratch recycling).
    pub(crate) fn reserve(&mut self, pkts: usize, lanes: usize) {
        self.fields.reserve(pkts);
        self.lane_pkt.reserve(lanes);
        self.lane_query.reserve(lanes);
        self.lane_group.reserve(lanes);
        self.cur.reserve(lanes);
        self.entry.reserve(lanes);
    }

    /// Append a slice-0 lane: fresh metadata, `active` from the
    /// classification branch mask (the batched twin of `Phv::reset` +
    /// branch-mask assignment).
    #[inline]
    pub(crate) fn push_lane(&mut self, pkt: u32, query: QueryId, group: u32, active: u32) {
        self.lane_pkt.push(pkt);
        self.lane_query.push(query);
        self.lane_group.push(group);
        self.cur.push(LaneState { sets: [MetadataSet::default(); 2], global: GLOBAL_INIT, active });
        self.entry.push(LaneState::default());
    }

    /// Append a resume lane restored from an incoming snapshot (the
    /// batched twin of `Phv::restore_snapshot` into `restore_set`).
    #[inline]
    pub(crate) fn push_resume_lane(
        &mut self,
        pkt: u32,
        query: QueryId,
        group: u32,
        sp: &SnapshotHeader,
        restore_set: usize,
    ) {
        self.push_lane(pkt, query, group, sp.active_mask as u32);
        let cur = self.cur.last_mut().expect("lane just pushed");
        cur.sets[restore_set].hash_result = sp.hash_result as u32;
        cur.sets[restore_set].state_result = sp.state_result;
        cur.global = sp.global_result;
    }

    /// Capture a lane's egress snapshot (the batched twin of
    /// `Phv::capture_snapshot`).
    #[inline]
    pub(crate) fn capture(&self, lane: usize, cursor: u8, capture_set: usize) -> SnapshotHeader {
        let cur = &self.cur[lane];
        SnapshotHeader {
            cursor,
            active_mask: (cur.active & 0xFF) as u8,
            hash_result: cur.sets[capture_set].hash_result as u16,
            state_result: cur.sets[capture_set].state_result,
            global_result: cur.global,
        }
    }

    /// Start a fresh ℝ winner-scratch generation; on wrap, invalidate
    /// every tag so a stale `r_tag` can never alias the new generation.
    #[inline]
    pub(crate) fn r_next_gen(&mut self) -> u32 {
        self.r_gen = self.r_gen.wrapping_add(1);
        if self.r_gen == 0 {
            self.r_tag = [0; 32];
            self.r_gen = 1;
        }
        self.r_gen
    }
}

/// What one [`Switch::process_batch`](crate::Switch::process_batch) call
/// produced, indexed by *packet* position within the input batch.
#[derive(Debug, Clone, Default)]
pub struct BatchOutput {
    /// `(packet index, report)` in canonical order: packet-major, then
    /// classification order, then execution order — byte-identical to
    /// running the scalar path per packet.
    pub reports: Vec<(u32, Report)>,
    /// Per-packet outgoing snapshot, same semantics as
    /// [`PipelineOutput::snapshot`](crate::PipelineOutput).
    pub snapshots: Vec<Option<SnapshotHeader>>,
}

impl BatchOutput {
    /// Reset for reuse, keeping capacity.
    pub fn clear(&mut self) {
        self.reports.clear();
        self.snapshots.clear();
    }
}
