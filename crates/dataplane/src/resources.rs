//! Data-plane resource accounting (Table 3).
//!
//! RMT pipelines slice seven resource categories evenly into physical
//! stages. Newton's evaluation reports module costs *normalized by the
//! resource usage of switch.p4* — the de-facto reference P4 program — so
//! this module does the same: [`ResourceVector`] carries absolute units,
//! [`SWITCH_P4_REFERENCE`] is the normalization denominator, and
//! [`ResourceVector::normalized`] yields Table-3-style percentages.
//!
//! Absolute per-stage budgets follow Tofino's public architecture numbers
//! (per stage: 16 crossbar input slots, 80 SRAM blocks, 24 TCAM blocks,
//! 32 VLIW action slots, 416 hash bits, 4 stateful ALUs, 16 gateways).

use std::fmt;
use std::ops::{Add, AddAssign, Mul};

/// One bundle of the seven per-stage resource categories, in absolute
/// units.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ResourceVector {
    /// Match crossbar input slots.
    pub crossbar: f64,
    /// SRAM blocks (exact-match tables, register arrays).
    pub sram: f64,
    /// TCAM blocks (ternary matches).
    pub tcam: f64,
    /// VLIW action instruction slots.
    pub vliw: f64,
    /// Hash-distribution bits.
    pub hash_bits: f64,
    /// Stateful ALUs.
    pub salu: f64,
    /// Gateways (if/else predication).
    pub gateway: f64,
}

impl ResourceVector {
    pub const ZERO: ResourceVector = ResourceVector {
        crossbar: 0.0,
        sram: 0.0,
        tcam: 0.0,
        vliw: 0.0,
        hash_bits: 0.0,
        salu: 0.0,
        gateway: 0.0,
    };

    /// Construct from the seven categories in declaration order.
    pub const fn new(
        crossbar: f64,
        sram: f64,
        tcam: f64,
        vliw: f64,
        hash_bits: f64,
        salu: f64,
        gateway: f64,
    ) -> Self {
        ResourceVector { crossbar, sram, tcam, vliw, hash_bits, salu, gateway }
    }

    /// Normalize against a reference usage, yielding percentages
    /// (`100 * self / reference`, per category; 0/0 = 0).
    pub fn normalized(&self, reference: &ResourceVector) -> ResourceVector {
        let norm = |a: f64, b: f64| if b == 0.0 { 0.0 } else { 100.0 * a / b };
        ResourceVector {
            crossbar: norm(self.crossbar, reference.crossbar),
            sram: norm(self.sram, reference.sram),
            tcam: norm(self.tcam, reference.tcam),
            vliw: norm(self.vliw, reference.vliw),
            hash_bits: norm(self.hash_bits, reference.hash_bits),
            salu: norm(self.salu, reference.salu),
            gateway: norm(self.gateway, reference.gateway),
        }
    }

    /// Whether every category fits within `budget`.
    pub fn fits_within(&self, budget: &ResourceVector) -> bool {
        self.crossbar <= budget.crossbar
            && self.sram <= budget.sram
            && self.tcam <= budget.tcam
            && self.vliw <= budget.vliw
            && self.hash_bits <= budget.hash_bits
            && self.salu <= budget.salu
            && self.gateway <= budget.gateway
    }

    /// Category values in declaration order, for tabular output.
    pub fn as_array(&self) -> [f64; 7] {
        [self.crossbar, self.sram, self.tcam, self.vliw, self.hash_bits, self.salu, self.gateway]
    }

    /// Category names matching [`ResourceVector::as_array`].
    pub const CATEGORY_NAMES: [&'static str; 7] =
        ["Crossbar", "SRAM", "TCAM", "VLIW", "Hash Bits", "SALU", "Gateway"];
}

impl Add for ResourceVector {
    type Output = ResourceVector;
    fn add(self, o: ResourceVector) -> ResourceVector {
        ResourceVector {
            crossbar: self.crossbar + o.crossbar,
            sram: self.sram + o.sram,
            tcam: self.tcam + o.tcam,
            vliw: self.vliw + o.vliw,
            hash_bits: self.hash_bits + o.hash_bits,
            salu: self.salu + o.salu,
            gateway: self.gateway + o.gateway,
        }
    }
}

impl AddAssign for ResourceVector {
    fn add_assign(&mut self, o: ResourceVector) {
        *self = *self + o;
    }
}

impl Mul<f64> for ResourceVector {
    type Output = ResourceVector;
    fn mul(self, k: f64) -> ResourceVector {
        ResourceVector {
            crossbar: self.crossbar * k,
            sram: self.sram * k,
            tcam: self.tcam * k,
            vliw: self.vliw * k,
            hash_bits: self.hash_bits * k,
            salu: self.salu * k,
            gateway: self.gateway * k,
        }
    }
}

impl fmt::Display for ResourceVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "xbar={:.3} sram={:.3} tcam={:.3} vliw={:.3} hash={:.3} salu={:.3} gw={:.3}",
            self.crossbar, self.sram, self.tcam, self.vliw, self.hash_bits, self.salu, self.gateway
        )
    }
}

/// Per-stage hardware budget (Tofino-like).
#[derive(Debug, Clone, Copy)]
pub struct StageBudget;

impl StageBudget {
    /// Absolute per-stage capacity.
    pub const fn capacity() -> ResourceVector {
        ResourceVector::new(16.0, 80.0, 24.0, 32.0, 416.0, 4.0, 16.0)
    }
}

/// Pipeline stage count of the paper's target ("Tofino has 12 stages per
/// pipeline", §4.3).
pub const TOFINO_STAGES: usize = 12;

/// Reference resource usage of a switch.p4-like program over a full
/// 12-stage pipeline — the Table 3 normalization denominator. switch.p4
/// fills most of the chip; the reference takes ~85 % of every category.
pub const SWITCH_P4_REFERENCE: ResourceVector = ResourceVector::new(
    16.0 * 12.0 * 0.86,  // crossbar slots
    80.0 * 12.0 * 0.89,  // SRAM blocks
    24.0 * 12.0 * 0.81,  // TCAM blocks
    32.0 * 12.0 * 0.74,  // VLIW slots
    416.0 * 12.0 * 0.82, // hash bits
    4.0 * 12.0 * 0.75,   // SALUs
    16.0 * 12.0 * 0.91,  // gateways
);

/// Absolute per-module-instance costs, calibrated so their normalized form
/// reproduces the relative structure of Table 3's per-module rows: 𝕂 is
/// VLIW/gateway-heavy (bit-mask actions, predication), ℍ is crossbar/hash-
/// heavy, 𝕊 dominates SRAM and SALUs, ℝ dominates TCAM and VLIW (ternary
/// matching + result ALUs).
pub mod module_costs {
    use super::ResourceVector;

    /// Key selection 𝕂.
    pub const KEY_SELECTION: ResourceVector =
        ResourceVector::new(0.40, 6.0, 0.0, 6.0, 45.0, 0.0, 2.5);
    /// Hash calculation ℍ.
    pub const HASH_CALCULATION: ResourceVector =
        ResourceVector::new(4.45, 3.0, 0.0, 1.5, 65.0, 0.0, 0.0);
    /// State bank 𝕊 (table + one register array + SALU).
    pub const STATE_BANK: ResourceVector = ResourceVector::new(2.0, 30.0, 5.0, 4.0, 90.0, 2.0, 0.0);
    /// Result process ℝ.
    pub const RESULT_PROCESS: ResourceVector =
        ResourceVector::new(1.0, 3.0, 10.0, 18.0, 0.0, 0.0, 0.0);

    /// Sum of all four (one full module suite).
    pub const SUITE: ResourceVector = ResourceVector::new(
        0.40 + 4.45 + 2.0 + 1.0,
        6.0 + 3.0 + 30.0 + 3.0,
        5.0 + 10.0,
        6.0 + 1.5 + 4.0 + 18.0,
        45.0 + 65.0 + 90.0,
        2.0,
        2.5,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_arithmetic() {
        let a = ResourceVector::new(1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0);
        let b = a + a;
        assert_eq!(b.crossbar, 2.0);
        assert_eq!(b.gateway, 14.0);
        let c = a * 0.5;
        assert_eq!(c.sram, 1.0);
    }

    #[test]
    fn normalization_handles_zero_reference() {
        let a = ResourceVector::new(1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0);
        let n = a.normalized(&ResourceVector::ZERO);
        assert_eq!(n.crossbar, 0.0);
    }

    #[test]
    fn suite_is_sum_of_modules() {
        let sum = module_costs::KEY_SELECTION
            + module_costs::HASH_CALCULATION
            + module_costs::STATE_BANK
            + module_costs::RESULT_PROCESS;
        for (a, b) in sum.as_array().iter().zip(module_costs::SUITE.as_array()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn modules_fit_in_one_stage_together() {
        // The compact layout's premise: one module of each kind fits in a
        // single stage's budget.
        assert!(module_costs::SUITE.fits_within(&StageBudget::capacity()));
    }

    #[test]
    fn per_module_normalized_costs_are_small() {
        // Table 3: each module takes a few percent of switch.p4 at most.
        for m in [
            module_costs::KEY_SELECTION,
            module_costs::HASH_CALCULATION,
            module_costs::STATE_BANK,
            module_costs::RESULT_PROCESS,
        ] {
            let n = m.normalized(&SWITCH_P4_REFERENCE);
            for v in n.as_array() {
                assert!(v < 12.0, "normalized module cost {v:.2}% too large");
            }
        }
    }

    #[test]
    fn resource_profile_matches_table3_structure() {
        let k = module_costs::KEY_SELECTION.normalized(&SWITCH_P4_REFERENCE);
        let h = module_costs::HASH_CALCULATION.normalized(&SWITCH_P4_REFERENCE);
        let s = module_costs::STATE_BANK.normalized(&SWITCH_P4_REFERENCE);
        let r = module_costs::RESULT_PROCESS.normalized(&SWITCH_P4_REFERENCE);
        // ℍ leads crossbar; 𝕊 leads SRAM and owns all SALUs; ℝ leads TCAM
        // and VLIW; 𝕂 owns the gateways.
        assert!(h.crossbar > k.crossbar && h.crossbar > s.crossbar && h.crossbar > r.crossbar);
        assert!(s.sram > k.sram && s.sram > h.sram && s.sram > r.sram);
        assert!(s.salu > 0.0 && k.salu == 0.0 && h.salu == 0.0 && r.salu == 0.0);
        assert!(r.tcam > s.tcam && k.tcam == 0.0 && h.tcam == 0.0);
        assert!(r.vliw > k.vliw);
        assert!(k.gateway > 0.0 && h.gateway == 0.0);
    }
}
