//! The compiled execution plan: configuration split from execution.
//!
//! Newton's data plane is a *fixed* engine reconfigured only by table-rule
//! updates (§4.1) — so the per-packet path should never re-derive dispatch
//! state from the mutable configuration. This module mirrors that split in
//! the simulator: every configuration mutation (`install`, `remove_query`,
//! `add_slice`, `set_slice`) recompiles a flattened, immutable [`ExecPlan`];
//! [`Switch::process`](crate::Switch::process) only *reads* the plan plus a
//! reusable [`ExecScratch`], performing no heap allocation for dispatch.
//!
//! The plan pre-resolves three things the seed path recomputed per packet:
//!
//! * **slice-0 dispatch** — query id → the slice `newton_init` activates
//!   (replacing a `HashMap` lookup + linear scan per classified query),
//! * **resume-by-cursor dispatch** — snapshot cursor → the unique later
//!   slice it resumes (replacing a full scan of every slice assignment;
//!   uniqueness is guaranteed because conflicting assignments are rejected
//!   at configuration time — the snapshot header carries no query id, so
//!   two slices resuming at one cursor would be ambiguous),
//! * **per-stage op lists** — for each (query, slice), the module slots
//!   that actually hold rules of that query, grouped by stage, each with
//!   the table indices of exactly those rules (so execution never scans
//!   other queries' rules); stages with no ops for the query are skipped
//!   entirely.

use crate::init::InitTable;
use crate::phv::Phv;
use crate::rules::QueryId;
use crate::switch::SliceInfo;
use newton_sketch::FastMap;

/// Pre-resolved module ops of one (query, slice): the slots holding rules
/// of the query — each with the rule-table indices of exactly those rules
/// — flattened and grouped by stage.
#[derive(Debug, Clone, Default)]
pub struct OpList {
    /// `(slot, rlo, rhi)` per op in pipeline order: the module slot plus
    /// its pre-resolved rule indices `rule_idx[rlo..rhi]`.
    ops: Vec<(u32, u32, u32)>,
    /// One `(stage, lo, hi)` run per stage with at least one op, where
    /// `ops[lo..hi]` are that stage's ops.
    runs: Vec<(u32, u32, u32)>,
    /// Pooled rule-table indices, shared by every op of the list: the
    /// positions of the query's rules within each instance's table, in
    /// table order.
    rule_idx: Vec<u32>,
}

impl OpList {
    /// The per-stage runs: `(stage, lo, hi)` ranges into [`ops`](Self::ops).
    pub fn runs(&self) -> &[(u32, u32, u32)] {
        &self.runs
    }

    /// The flattened `(slot, rlo, rhi)` ops.
    pub fn ops(&self) -> &[(u32, u32, u32)] {
        &self.ops
    }

    /// An op's pre-resolved rule indices.
    pub fn rules(&self, rlo: u32, rhi: u32) -> &[u32] {
        &self.rule_idx[rlo as usize..rhi as usize]
    }
}

/// One dispatchable slice: its assignment plus its compiled op list.
#[derive(Debug, Clone)]
pub struct SliceDispatch {
    /// The slice assignment (stage range, capture/restore sets, totals).
    pub info: SliceInfo,
    /// The ops the slice executes on this switch.
    pub ops: OpList,
}

/// The immutable execution plan compiled from a switch's configuration.
#[derive(Debug, Clone, Default)]
pub struct ExecPlan {
    /// Sorted by query id: the slice-0 dispatch for every query
    /// `newton_init` can classify. `None` when the switch holds only later
    /// slices of the query (classification then skips it).
    slice0: Vec<(QueryId, Option<SliceDispatch>)>,
    /// Sorted by cursor: the unique later slice resuming at each cursor.
    resume: Vec<(u8, QueryId, SliceDispatch)>,
}

impl ExecPlan {
    /// Compile the plan from the current configuration. `stage_slots[s]`
    /// is the number of module slots in stage `s`; `rules_for(stage, slot,
    /// query, out)` appends the rule-table indices (in table order) of that
    /// instance's rules belonging to the query.
    pub fn build(
        init: &InitTable,
        slices: &FastMap<QueryId, Vec<SliceInfo>>,
        stage_slots: &[usize],
        rules_for: impl Fn(usize, usize, QueryId, &mut Vec<u32>),
    ) -> ExecPlan {
        let compile = |query: QueryId, range: (usize, usize)| -> OpList {
            let hi = range.1.min(stage_slots.len());
            let lo = range.0.min(hi);
            let mut ops = Vec::new();
            let mut runs = Vec::new();
            let mut rule_idx = Vec::new();
            for (stage, &slot_count) in stage_slots.iter().enumerate().take(hi).skip(lo) {
                let start = ops.len();
                for slot in 0..slot_count {
                    let rlo = rule_idx.len();
                    rules_for(stage, slot, query, &mut rule_idx);
                    if rule_idx.len() > rlo {
                        ops.push((slot as u32, rlo as u32, rule_idx.len() as u32));
                    }
                }
                if ops.len() > start {
                    runs.push((stage as u32, start as u32, ops.len() as u32));
                }
            }
            OpList { ops, runs, rule_idx }
        };

        let mut queries: Vec<QueryId> = init.rules().iter().map(|r| r.query).collect();
        queries.sort_unstable();
        queries.dedup();
        let slice0 = queries
            .into_iter()
            .map(|query| {
                let info = match slices.get(&query) {
                    // Unassigned queries execute as a whole pipeline.
                    None => Some(SliceInfo::whole()),
                    Some(infos) => infos.iter().find(|i| i.index == 0).copied(),
                };
                let dispatch =
                    info.map(|info| SliceDispatch { ops: compile(query, info.stages), info });
                (query, dispatch)
            })
            .collect();

        let mut resume: Vec<(u8, QueryId, SliceDispatch)> = Vec::new();
        for (&query, infos) in slices {
            for &info in infos.iter().filter(|i| i.index > 0) {
                resume.push((
                    info.index,
                    query,
                    SliceDispatch { ops: compile(query, info.stages), info },
                ));
            }
        }
        resume.sort_by_key(|&(cursor, query, _)| (cursor, query));
        ExecPlan { slice0, resume }
    }

    /// The slice-0 dispatch for a classified query, if this switch
    /// executes the query's first slice.
    pub fn slice0(&self, query: QueryId) -> Option<&SliceDispatch> {
        self.slice0
            .binary_search_by_key(&query, |&(q, _)| q)
            .ok()
            .and_then(|i| self.slice0[i].1.as_ref())
    }

    /// The slice resuming at `cursor` (exclusive per cursor by
    /// construction), if any.
    pub fn resume(&self, cursor: u8) -> Option<(QueryId, &SliceDispatch)> {
        self.resume
            .binary_search_by_key(&cursor, |&(c, _, _)| c)
            .ok()
            .map(|i| (self.resume[i].1, &self.resume[i].2))
    }
}

/// Reusable per-switch scratch for the zero-allocation packet path.
#[derive(Debug, Clone)]
pub struct ExecScratch {
    /// `newton_init::classify_into` output buffer.
    pub(crate) classify: Vec<(QueryId, u32)>,
    /// The live PHV walking the pipeline.
    pub(crate) cur: Phv,
    /// The frozen stage-entry snapshot of the double-buffered walk.
    pub(crate) entry: Phv,
}

impl ExecScratch {
    pub fn new() -> Self {
        ExecScratch { classify: Vec::new(), cur: Phv::scratch(), entry: Phv::scratch() }
    }
}

impl Default for ExecScratch {
    fn default() -> Self {
        Self::new()
    }
}
