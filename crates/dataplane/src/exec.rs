//! The compiled execution plan: configuration split from execution.
//!
//! Newton's data plane is a *fixed* engine reconfigured only by table-rule
//! updates (§4.1) — so the per-packet path should never re-derive dispatch
//! state from the mutable configuration. This module mirrors that split in
//! the simulator: every configuration mutation (`install`, `remove_query`,
//! `add_slice`, `set_slice`) recompiles a flattened, immutable [`ExecPlan`];
//! [`Switch::process_batch`](crate::Switch::process_batch) only *reads* the
//! plan plus a reusable [`ExecScratch`], performing no heap allocation for
//! dispatch.
//!
//! The plan pre-resolves four things the seed path recomputed per packet:
//!
//! * **classification** — every `newton_init` ternary entry is compiled to
//!   one `(value, mask)` pair over the full 128-bit field vector, so
//!   classifying a packet is a linear scan of `AND`+compare over `u128`s
//!   instead of a per-entry walk of heap-allocated match lists. Entries
//!   that can never match (a required value bit outside its field's width,
//!   or two matches demanding different values of one bit) are dropped at
//!   compile time — the interpreted table rejects them on every packet,
//!   the compiled one pays nothing.
//! * **slice-0 dispatch** — query id → the slice `newton_init` activates
//!   (replacing a `HashMap` lookup + linear scan per classified query),
//! * **resume-by-cursor dispatch** — snapshot cursor → the unique later
//!   slice it resumes (replacing a full scan of every slice assignment;
//!   uniqueness is guaranteed because conflicting assignments are rejected
//!   at configuration time — the snapshot header carries no query id, so
//!   two slices resuming at one cursor would be ambiguous),
//! * **per-stage op lists** — for each (query, slice), the module slots
//!   that actually hold rules of that query, grouped by stage, each with
//!   the table indices of exactly those rules (so execution never scans
//!   other queries' rules); stages with no ops for the query are skipped
//!   entirely.
//!
//! Dispatches live in one dense table ([`ExecPlan::dispatch`]) so the
//! batch path can carry a plain `u32` dispatch index per lane instead of a
//! borrow of the plan.

use crate::batch::PhvBatch;
use crate::init::InitTable;
use crate::rules::QueryId;
use crate::switch::SliceInfo;
use newton_packet::FieldVector;
use newton_sketch::FastMap;

/// One dispatchable slice: its assignment plus the range of its compiled
/// stage runs in the plan's pooled op tables.
///
/// All dispatches share three plan-global pools (`ExecPlan::run`,
/// `ExecPlan::ops`, `ExecPlan::rules`) instead of owning per-slice
/// vectors: for a full query catalog the pools total about a kilobyte, so
/// the entire dispatch structure stays hot in L1 and the batch walk's
/// per-run lookups are single array loads with no pointer chase through
/// per-slice allocations.
#[derive(Debug, Clone)]
pub struct SliceDispatch {
    /// The slice assignment (stage range, capture/restore sets, totals).
    pub info: SliceInfo,
    /// `[lo, hi)` range of this slice's stage runs in the plan's run pool.
    pub(crate) runs: (u32, u32),
}

/// One compiled `newton_init` entry: a ternary match over the whole
/// 128-bit field vector.
#[derive(Debug, Clone, Copy)]
struct CompiledInitRule {
    /// Required values of the masked bits (`value & mask == value`).
    value: u128,
    /// Bits the entry constrains.
    mask: u128,
    query: QueryId,
    branch_mask: u32,
}

/// The immutable execution plan compiled from a switch's configuration.
#[derive(Debug, Clone, Default)]
pub struct ExecPlan {
    /// Every compiled slice dispatch, addressed by index from
    /// [`slice0_idx`](Self::slice0_idx) / [`resume_idx`](Self::resume_idx).
    dispatches: Vec<SliceDispatch>,
    /// Sorted by query id: the slice-0 dispatch for every query
    /// `newton_init` can classify. `None` when the switch holds only later
    /// slices of the query (classification then skips it).
    slice0: Vec<(QueryId, Option<u32>)>,
    /// Sorted by cursor: the unique later slice resuming at each cursor.
    resume: Vec<(u8, QueryId, u32)>,
    /// Compiled `newton_init` entries, in table order (minus entries that
    /// can never match).
    classifier: Vec<CompiledInitRule>,
    /// Pooled stage runs of every dispatch: `(stage, ops_lo, ops_hi)`
    /// where `ops_pool[ops_lo..ops_hi]` are the stage's ops.
    runs_pool: Vec<(u32, u32, u32)>,
    /// Pooled ops: `(slot, rlo, rhi)` — the module slot plus its rule
    /// indices `rules_pool[rlo..rhi]`.
    ops_pool: Vec<(u32, u32, u32)>,
    /// Pooled rule-table indices: the positions of a query's rules within
    /// each instance's table, in table order.
    rules_pool: Vec<u32>,
}

impl ExecPlan {
    /// Compile the plan from the current configuration. `stage_slots[s]`
    /// is the number of module slots in stage `s`; `rules_for(stage, slot,
    /// query, out)` appends the rule-table indices (in table order) of that
    /// instance's rules belonging to the query.
    pub fn build(
        init: &InitTable,
        slices: &FastMap<QueryId, Vec<SliceInfo>>,
        stage_slots: &[usize],
        rules_for: impl Fn(usize, usize, QueryId, &mut Vec<u32>),
    ) -> ExecPlan {
        let mut runs_pool: Vec<(u32, u32, u32)> = Vec::new();
        let mut ops_pool: Vec<(u32, u32, u32)> = Vec::new();
        let mut rules_pool: Vec<u32> = Vec::new();
        let mut compile = |query: QueryId, range: (usize, usize)| -> (u32, u32) {
            let hi = range.1.min(stage_slots.len());
            let lo = range.0.min(hi);
            let runs_start = runs_pool.len();
            for (stage, &slot_count) in stage_slots.iter().enumerate().take(hi).skip(lo) {
                let start = ops_pool.len();
                for slot in 0..slot_count {
                    let rlo = rules_pool.len();
                    rules_for(stage, slot, query, &mut rules_pool);
                    if rules_pool.len() > rlo {
                        ops_pool.push((slot as u32, rlo as u32, rules_pool.len() as u32));
                    }
                }
                if ops_pool.len() > start {
                    runs_pool.push((stage as u32, start as u32, ops_pool.len() as u32));
                }
            }
            (runs_start as u32, runs_pool.len() as u32)
        };

        let mut dispatches: Vec<SliceDispatch> = Vec::new();
        let mut queries: Vec<QueryId> = init.rules().iter().map(|r| r.query).collect();
        queries.sort_unstable();
        queries.dedup();
        let slice0 = queries
            .into_iter()
            .map(|query| {
                let info = match slices.get(&query) {
                    // Unassigned queries execute as a whole pipeline.
                    None => Some(SliceInfo::whole()),
                    Some(infos) => infos.iter().find(|i| i.index == 0).copied(),
                };
                let idx = info.map(|info| {
                    dispatches.push(SliceDispatch { runs: compile(query, info.stages), info });
                    (dispatches.len() - 1) as u32
                });
                (query, idx)
            })
            .collect();

        let mut resume: Vec<(u8, QueryId, u32)> = Vec::new();
        for (&query, infos) in slices {
            for &info in infos.iter().filter(|i| i.index > 0) {
                dispatches.push(SliceDispatch { runs: compile(query, info.stages), info });
                resume.push((info.index, query, (dispatches.len() - 1) as u32));
            }
        }
        resume.sort_by_key(|&(cursor, query, _)| (cursor, query));

        let classifier = init.rules().iter().filter_map(compile_init_rule).collect();
        ExecPlan { dispatches, slice0, resume, classifier, runs_pool, ops_pool, rules_pool }
    }

    /// One pooled stage run: `(stage, ops_lo, ops_hi)`.
    #[inline(always)]
    pub(crate) fn run(&self, idx: u32) -> (u32, u32, u32) {
        self.runs_pool[idx as usize]
    }

    /// A run's pooled ops: `(slot, rlo, rhi)` each.
    #[inline(always)]
    pub(crate) fn ops(&self, lo: u32, hi: u32) -> &[(u32, u32, u32)] {
        &self.ops_pool[lo as usize..hi as usize]
    }

    /// An op's pre-resolved rule-table indices.
    #[inline(always)]
    pub(crate) fn rules(&self, rlo: u32, rhi: u32) -> &[u32] {
        &self.rules_pool[rlo as usize..rhi as usize]
    }

    /// The dispatch behind an index returned by
    /// [`slice0_idx`](Self::slice0_idx) / [`resume_idx`](Self::resume_idx).
    #[inline]
    pub fn dispatch(&self, idx: u32) -> &SliceDispatch {
        &self.dispatches[idx as usize]
    }

    /// Dispatch-table index of a classified query's slice 0, if this
    /// switch executes it.
    #[inline]
    pub fn slice0_idx(&self, query: QueryId) -> Option<u32> {
        self.slice0.binary_search_by_key(&query, |&(q, _)| q).ok().and_then(|i| self.slice0[i].1)
    }

    /// Dispatch-table index of the slice resuming at `cursor` (exclusive
    /// per cursor by construction), if any.
    #[inline]
    pub fn resume_idx(&self, cursor: u8) -> Option<(QueryId, u32)> {
        self.resume
            .binary_search_by_key(&cursor, |&(c, _, _)| c)
            .ok()
            .map(|i| (self.resume[i].1, self.resume[i].2))
    }

    /// The slice-0 dispatch for a classified query, if this switch
    /// executes the query's first slice.
    pub fn slice0(&self, query: QueryId) -> Option<&SliceDispatch> {
        self.slice0_idx(query).map(|i| self.dispatch(i))
    }

    /// The slice resuming at `cursor` (exclusive per cursor by
    /// construction), if any.
    pub fn resume(&self, cursor: u8) -> Option<(QueryId, &SliceDispatch)> {
        self.resume_idx(cursor).map(|(q, i)| (q, self.dispatch(i)))
    }

    /// Compiled `newton_init` classification: the union of branch
    /// activations per query across all matching entries, sorted by query
    /// id — output-identical to
    /// [`InitTable::classify_into`](crate::InitTable::classify_into).
    pub fn classify_into(&self, fields: &FieldVector, out: &mut Vec<(QueryId, u32)>) {
        out.clear();
        for rule in &self.classifier {
            if fields.0 & rule.mask == rule.value {
                match out.binary_search_by_key(&rule.query, |&(q, _)| q) {
                    Ok(pos) => out[pos].1 |= rule.branch_mask,
                    Err(pos) => out.insert(pos, (rule.query, rule.branch_mask)),
                }
            }
        }
    }
}

/// Compile one `newton_init` entry into a `(value, mask)` pair over the
/// full field vector; `None` if the entry can never match.
///
/// The interpreted check per match is
/// `(fields.get(field) & mask) == (value & mask)` where `get` yields only
/// the field's width bits — so a required `value` bit outside the width is
/// unsatisfiable (NOT ignorable: clipping it would turn a never-matching
/// entry into a matching one). Likewise two matches constraining one bit
/// to different values.
fn compile_init_rule(rule: &crate::rules::InitRule) -> Option<CompiledInitRule> {
    let mut mask: u128 = 0;
    let mut value: u128 = 0;
    for &(field, v, m) in &rule.matches {
        let width_mask: u64 = ((1u128 << field.width()) - 1) as u64;
        if v & m & !width_mask != 0 {
            return None;
        }
        let mbits = ((m & width_mask) as u128) << field.shift();
        let vbits = ((v & m & width_mask) as u128) << field.shift();
        let overlap = mask & mbits;
        if value & overlap != vbits & overlap {
            return None;
        }
        mask |= mbits;
        value |= vbits;
    }
    Some(CompiledInitRule { value, mask, query: rule.query, branch_mask: rule.branch_mask })
}

/// Reusable per-switch scratch for the zero-allocation packet path.
#[derive(Debug, Clone, Default)]
pub struct ExecScratch {
    /// Classification output buffer.
    pub(crate) classify: Vec<(QueryId, u32)>,
    /// The SoA lane columns the batch walks.
    pub(crate) batch: PhvBatch,
    /// Per-lane `(cursor, end)` span into the plan's pooled stage runs.
    pub(crate) run_span: Vec<(u32, u32)>,
    /// Stage-indexed lane queues: `stage_q[s]` holds the lanes whose next
    /// run sits in stage `s`, so the walk schedules in O(total runs)
    /// instead of rescanning every lane per stage.
    pub(crate) stage_q: Vec<Vec<u32>>,
    /// The lane list of the stage currently executing (swapped out of
    /// [`stage_q`](Self::stage_q) to keep borrows disjoint).
    pub(crate) cur_lanes: Vec<u32>,
    /// Per-slot `(lane, rlo, rhi)` buckets of the current stage: draining
    /// slot-ascending with lanes in lane order reproduces the scalar
    /// path's per-instance operation order exactly.
    pub(crate) buckets: Vec<Vec<(u32, u32, u32)>>,
}

impl ExecScratch {
    pub fn new() -> Self {
        ExecScratch::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::InitRule;
    use newton_packet::{Field, PacketBuilder, TcpFlags};

    /// The compiled classifier must agree with the interpreted table on
    /// every entry shape — including entries whose required value exceeds
    /// the field width (never match) and overlapping-bit conflicts.
    #[test]
    fn compiled_classifier_matches_interpreted_table() {
        let mut init = InitTable::new();
        let rules = vec![
            InitRule {
                query: 1,
                branch_mask: 0b01,
                matches: vec![(Field::Proto, 6, 0xFF), (Field::TcpFlags, 2, 0xFF)],
            },
            // Prefix match + a second branch of the same query.
            InitRule {
                query: 1,
                branch_mask: 0b10,
                matches: vec![(Field::DstIp, 0xAC10_0000, 0xFFFF_0000)],
            },
            // Catch-all.
            InitRule { query: 2, branch_mask: 1, matches: vec![] },
            // Value bit outside the 8-bit Proto width: never matches.
            InitRule { query: 3, branch_mask: 1, matches: vec![(Field::Proto, 0x1_06, 0x1_FF)] },
            // Same bit constrained to both 0 and 1: never matches.
            InitRule {
                query: 4,
                branch_mask: 1,
                matches: vec![(Field::Proto, 6, 0xFF), (Field::Proto, 7, 0xFF)],
            },
            // Duplicate consistent constraint: still matches.
            InitRule {
                query: 5,
                branch_mask: 1,
                matches: vec![(Field::Proto, 6, 0xFF), (Field::Proto, 6, 0x0F)],
            },
            // Mask bits outside the width but no required value there:
            // matches exactly like the clipped mask.
            InitRule { query: 6, branch_mask: 1, matches: vec![(Field::TcpFlags, 2, 0xFFFF)] },
        ];
        for r in &rules {
            init.install(r.clone());
        }
        let plan = ExecPlan::build(&init, &FastMap::default(), &[], |_, _, _, _| {});

        let packets = [
            PacketBuilder::new().tcp_flags(TcpFlags::SYN).dst_port(80).build(),
            PacketBuilder::new().dst_ip(0xAC10_1234).build(),
            PacketBuilder::new().protocol(newton_packet::Protocol::Udp).build(),
            PacketBuilder::new().dst_ip(0x0A00_0001).tcp_flags(TcpFlags::ACK).build(),
        ];
        let mut compiled = Vec::new();
        for pkt in &packets {
            plan.classify_into(&FieldVector::from_packet(pkt), &mut compiled);
            assert_eq!(compiled, init.classify(pkt), "diverged on {pkt:?}");
        }
    }
}
