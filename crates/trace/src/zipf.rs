//! Zipf-distributed sampling for heavy-tailed flow sizes.
//!
//! Internet flow sizes are famously heavy-tailed: a few elephant flows
//! carry most packets, a long tail of mice carry few. CAIDA/MAWI traces
//! exhibit Zipf-like rank-size behaviour; this module reproduces it.

use rand::Rng;

/// A Zipf(α) distribution over ranks `1..=n`, sampled by inverse-CDF binary
/// search over precomputed cumulative weights.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Build a Zipf distribution over `n` ranks with exponent `alpha`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `alpha` is not finite and non-negative.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(alpha.is_finite() && alpha >= 0.0, "alpha must be finite and >= 0");
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += (rank as f64).powf(-alpha);
            cumulative.push(acc);
        }
        Zipf { cumulative }
    }

    /// Sample a rank in `0..n` (0 = heaviest).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let u: f64 = rng.gen_range(0.0..total);
        self.cumulative.partition_point(|&c| c < u).min(self.cumulative.len() - 1)
    }

    /// The expected share of samples landing on `rank` (0-based).
    pub fn probability(&self, rank: usize) -> f64 {
        let total = *self.cumulative.last().expect("non-empty");
        let prev = if rank == 0 { 0.0 } else { self.cumulative[rank - 1] };
        (self.cumulative[rank] - prev) / total
    }

    /// Deterministic flow-size assignment: split `total` items over `n`
    /// ranks proportionally to the Zipf weights, guaranteeing every rank
    /// gets at least one item and the sizes sum to exactly `total`
    /// (when `total >= n`).
    pub fn partition(&self, total: u64) -> Vec<u64> {
        let n = self.cumulative.len() as u64;
        if total <= n {
            return (0..n).map(|i| u64::from(i < total)).collect();
        }
        let spare = total - n;
        let mut out: Vec<u64> = (0..self.cumulative.len())
            .map(|r| 1 + (self.probability(r) * spare as f64).floor() as u64)
            .collect();
        let mut assigned: u64 = out.iter().sum();
        // Distribute the rounding remainder to the heaviest ranks.
        let len = out.len();
        let mut r = 0;
        while assigned < total {
            out[r % len] += 1;
            assigned += 1;
            r += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_within_range() {
        let z = Zipf::new(100, 1.1);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn rank_zero_dominates() {
        let z = Zipf::new(1000, 1.2);
        let mut rng = StdRng::seed_from_u64(2);
        let mut count0 = 0;
        let n = 20_000;
        for _ in 0..n {
            if z.sample(&mut rng) == 0 {
                count0 += 1;
            }
        }
        let p0 = z.probability(0);
        let measured = count0 as f64 / n as f64;
        assert!((measured - p0).abs() < 0.02, "measured {measured:.3} vs expected {p0:.3}");
        assert!(p0 > 0.1, "rank 0 should be heavy");
    }

    #[test]
    fn alpha_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for r in 0..10 {
            assert!((z.probability(r) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn partition_sums_and_is_monotone() {
        let z = Zipf::new(50, 1.0);
        let sizes = z.partition(10_000);
        assert_eq!(sizes.iter().sum::<u64>(), 10_000);
        assert!(sizes.iter().all(|&s| s >= 1));
        for w in sizes.windows(2) {
            assert!(w[0] >= w[1], "sizes must be non-increasing by rank");
        }
    }

    #[test]
    fn partition_with_tiny_total() {
        let z = Zipf::new(10, 1.0);
        let sizes = z.partition(3);
        assert_eq!(sizes.iter().sum::<u64>(), 3);
        assert_eq!(sizes.len(), 10);
    }

    #[test]
    fn heavier_alpha_concentrates_more() {
        let light = Zipf::new(100, 0.8);
        let heavy = Zipf::new(100, 1.6);
        assert!(heavy.probability(0) > light.probability(0));
    }
}
