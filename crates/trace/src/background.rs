//! Background (benign) traffic generation.
//!
//! Flows are laid out with Zipf sizes; each TCP flow gets a realistic life
//! cycle (SYN, data segments, FIN+ACK). Timestamps interleave flows across
//! the configured duration so per-epoch slices look like a live link.

use crate::zipf::Zipf;
use newton_packet::{Packet, Protocol, TcpFlags};
use newton_sketch::hash::mix64;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for a synthetic trace.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// RNG seed; everything downstream is deterministic in it.
    pub seed: u64,
    /// Total background packets to generate.
    pub packets: usize,
    /// Number of background flows (Zipf sizes, heaviest first).
    pub flows: usize,
    /// Zipf exponent for flow sizes (CAIDA-like ≈ 1.1–1.3).
    pub zipf_exponent: f64,
    /// Fraction of flows that are UDP (the rest are TCP).
    pub udp_fraction: f64,
    /// Trace duration in milliseconds.
    pub duration_ms: u64,
    /// Size of the client address pool.
    pub clients: u32,
    /// Size of the server address pool.
    pub servers: u32,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            seed: 0xC0FFEE,
            packets: 50_000,
            flows: 2_000,
            zipf_exponent: 1.1,
            udp_fraction: 0.2,
            duration_ms: 1_000,
            clients: 5_000,
            servers: 500,
        }
    }
}

/// Client address space: 10.0.0.0/8.
pub const CLIENT_BASE: u32 = 0x0A00_0000;
/// Server address space: 172.16.0.0/12.
pub const SERVER_BASE: u32 = 0xAC10_0000;

/// Common service ports with rough popularity weights.
const SERVICE_PORTS: [(u16, u32); 7] =
    [(80, 35), (443, 30), (53, 10), (22, 5), (8080, 8), (25, 5), (123, 7)];

fn pick_service_port(rng: &mut StdRng) -> u16 {
    let total: u32 = SERVICE_PORTS.iter().map(|&(_, w)| w).sum();
    let mut x = rng.gen_range(0..total);
    for &(port, w) in &SERVICE_PORTS {
        if x < w {
            return port;
        }
        x -= w;
    }
    80
}

/// The fixed shard count of [`generate`]. Shard structure is a pure
/// function of the config — never of the machine — so a trace is
/// bit-identical whether its shards run sequentially or on any number of
/// threads.
const GEN_SHARDS: usize = 8;

/// Below this packet count, shards run on the calling thread (spawning
/// costs more than generating). The output is identical either way.
const PAR_MIN_PACKETS: usize = 16_384;

/// Split `total` into `n` near-equal parts (remainder to the early parts).
fn share(total: usize, n: usize, i: usize) -> usize {
    total / n + usize::from(i < total % n)
}

/// The per-shard configs of a trace: flows and packets split near-evenly,
/// each shard seeded by a value derived from the trace seed and the shard
/// index. Purely config-driven — see `GEN_SHARDS`.
pub(crate) fn shard_plan(cfg: &TraceConfig) -> Vec<TraceConfig> {
    let n = GEN_SHARDS.min(cfg.flows).min(cfg.packets).max(1);
    (0..n)
        .map(|i| TraceConfig {
            seed: mix64(cfg.seed ^ (i as u64 + 1).wrapping_mul(0xB0A0_5EED)),
            packets: share(cfg.packets, n, i),
            flows: share(cfg.flows, n, i),
            ..cfg.clone()
        })
        .collect()
}

/// Generate the background packets described by `cfg`, sorted by timestamp.
///
/// Generation is split into `GEN_SHARDS` config-derived shards, run on
/// threads when the trace is large and cores are available; shard outputs
/// merge in shard order and then stable-sort by timestamp, so the trace is
/// deterministic in the seed regardless of thread count.
pub fn generate(cfg: &TraceConfig) -> Vec<Packet> {
    assert!(cfg.flows > 0 && cfg.packets > 0, "empty trace config");
    assert!(cfg.clients > 0 && cfg.servers > 0, "empty address pools");
    let shards = shard_plan(cfg);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let parts: Vec<Vec<Packet>> = if shards.len() > 1 && cores > 1 && cfg.packets >= PAR_MIN_PACKETS
    {
        std::thread::scope(|s| {
            let handles: Vec<_> =
                shards.iter().map(|sc| s.spawn(move || generate_shard(sc))).collect();
            handles.into_iter().map(|h| h.join().expect("trace shard panicked")).collect()
        })
    } else {
        shards.iter().map(generate_shard).collect()
    };
    let mut packets: Vec<Packet> = Vec::with_capacity(cfg.packets);
    for part in parts {
        packets.extend(part);
    }
    // Stable: equal timestamps keep shard order, so the merge is
    // deterministic no matter how the shards were executed.
    packets.sort_by_key(|p| p.ts_ns);
    packets
}

/// Generate one shard's packets (unsorted).
fn generate_shard(cfg: &TraceConfig) -> Vec<Packet> {
    let mut packets = Vec::with_capacity(cfg.packets);
    generate_shard_into(cfg, &mut packets);
    packets
}

/// [`generate_shard`] appending into a caller-owned buffer — the streaming
/// producer path, where segment buffers are recycled and the producer pool
/// itself is the parallelism (no nested shard threads).
pub(crate) fn generate_shard_into(cfg: &TraceConfig, packets: &mut Vec<Packet>) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let sizes = Zipf::new(cfg.flows, cfg.zipf_exponent).partition(cfg.packets as u64);
    packets.reserve(cfg.packets);
    let duration_ns = cfg.duration_ms * 1_000_000;
    for &size in &sizes {
        let src = CLIENT_BASE + rng.gen_range(0..cfg.clients);
        let dst = SERVER_BASE + rng.gen_range(0..cfg.servers);
        let sport: u16 = rng.gen_range(1024..u16::MAX);
        let dport = pick_service_port(&mut rng);
        let is_udp = rng.gen_bool(cfg.udp_fraction);
        let start = rng.gen_range(0..duration_ns.max(1));
        // Packets of one flow spread over a window proportional to size.
        let window = (size.max(1) * 200_000).min(duration_ns.saturating_sub(start).max(1));

        for i in 0..size {
            let ts = start + if size > 1 { i * window / size } else { 0 };
            let (flags, len, reply) = if is_udp {
                (TcpFlags::NONE, rng.gen_range(64..512) as u16, false)
            } else if i == 0 {
                (TcpFlags::SYN, 64, false)
            } else if i == 1 && size > 2 {
                (TcpFlags::SYN | TcpFlags::ACK, 64, true)
            } else if i + 1 == size && size > 2 {
                (TcpFlags::FIN | TcpFlags::ACK, 64, false)
            } else {
                let data_len = 64 + ((rng.gen_range(0f64..1f64)).powi(3) * 1386.0) as u16;
                (TcpFlags::ACK | TcpFlags::PSH, data_len, rng.gen_bool(0.4))
            };
            let (s_ip, d_ip, s_po, d_po) =
                if reply { (dst, src, dport, sport) } else { (src, dst, sport, dport) };
            let mut p = Packet {
                src_ip: s_ip,
                dst_ip: d_ip,
                src_port: s_po,
                dst_port: d_po,
                protocol: if is_udp { Protocol::Udp } else { Protocol::Tcp },
                tcp_flags: flags,
                wire_len: len,
                ttl: 64,
                ts_ns: ts,
            };
            if is_udp {
                p.tcp_flags = TcpFlags::NONE;
            }
            packets.push(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn small() -> TraceConfig {
        TraceConfig { packets: 5_000, flows: 300, ..Default::default() }
    }

    #[test]
    fn generates_requested_packet_count() {
        let pkts = generate(&small());
        assert_eq!(pkts.len(), 5_000);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = generate(&small());
        let b = generate(&small());
        assert_eq!(a, b);
        let c = generate(&TraceConfig { seed: 999, ..small() });
        assert_ne!(a, c);
    }

    #[test]
    fn sharded_generation_is_execution_order_independent() {
        // Large enough to take the threaded path when cores allow it.
        let cfg = TraceConfig { packets: 20_000, flows: 1_000, ..Default::default() };
        let via_generate = generate(&cfg);
        // Hand-run the shards in REVERSE order, then merge in shard order:
        // the result must match exactly — proving the trace does not
        // depend on when (or where) each shard executed.
        let shards = shard_plan(&cfg);
        let mut parts: Vec<Vec<Packet>> = shards.iter().rev().map(generate_shard).collect();
        parts.reverse();
        let mut manual: Vec<Packet> = parts.into_iter().flatten().collect();
        manual.sort_by_key(|p| p.ts_ns);
        assert_eq!(via_generate, manual);
        assert_eq!(via_generate.len(), cfg.packets);
    }

    #[test]
    fn shard_plan_preserves_totals_and_is_config_pure() {
        for (packets, flows) in [(5_000usize, 300usize), (7usize, 3usize), (1, 1), (100, 999)] {
            let cfg = TraceConfig { packets, flows, ..Default::default() };
            let shards = shard_plan(&cfg);
            assert_eq!(shards.iter().map(|s| s.packets).sum::<usize>(), packets);
            assert_eq!(shards.iter().map(|s| s.flows).sum::<usize>(), flows);
            assert!(shards.iter().all(|s| s.packets > 0 && s.flows > 0));
            assert_eq!(shard_plan(&cfg).len(), shards.len());
        }
    }

    #[test]
    fn sorted_by_timestamp_within_duration() {
        let cfg = small();
        let pkts = generate(&cfg);
        let max_ns = cfg.duration_ms * 1_000_000;
        for w in pkts.windows(2) {
            assert!(w[0].ts_ns <= w[1].ts_ns);
        }
        assert!(pkts.iter().all(|p| p.ts_ns <= max_ns));
    }

    #[test]
    fn tcp_flows_start_with_syn() {
        let pkts = generate(&small());
        // Each TCP flow's earliest packet must be the pure SYN.
        use std::collections::HashMap;
        let mut first: HashMap<_, &Packet> = HashMap::new();
        for p in &pkts {
            if p.protocol == Protocol::Tcp {
                let k = p.flow_key().canonical();
                let e = first.entry(k).or_insert(p);
                if p.ts_ns < e.ts_ns {
                    *e = p;
                }
            }
        }
        let bad = first.values().filter(|p| !p.tcp_flags.is_pure_syn()).count();
        // Replies share the canonical key; allow a tiny fraction of ties.
        assert!(bad * 20 < first.len(), "{bad} of {} flows do not start with SYN", first.len());
    }

    #[test]
    fn flow_sizes_are_heavy_tailed() {
        let pkts = generate(&TraceConfig { packets: 20_000, flows: 1_000, ..Default::default() });
        use std::collections::HashMap;
        let mut sizes: HashMap<_, usize> = HashMap::new();
        for p in &pkts {
            *sizes.entry(p.flow_key().canonical()).or_insert(0) += 1;
        }
        let mut v: Vec<usize> = sizes.values().copied().collect();
        v.sort_unstable_by(|a, b| b.cmp(a));
        let top10: usize = v.iter().take(v.len() / 10).sum();
        let total: usize = v.iter().sum();
        assert!(
            top10 * 2 > total,
            "top 10% of flows should carry >50% of packets (got {top10}/{total})"
        );
    }

    #[test]
    fn udp_fraction_respected_roughly() {
        let pkts = generate(&TraceConfig { udp_fraction: 0.5, ..small() });
        let udp = pkts.iter().filter(|p| p.protocol == Protocol::Udp).count();
        let frac = udp as f64 / pkts.len() as f64;
        // Zipf weighting skews per-packet fractions; just require presence
        // of both protocols in sensible proportion.
        assert!(frac > 0.1 && frac < 0.9, "udp packet fraction {frac}");
    }

    #[test]
    fn addresses_stay_in_pools() {
        let cfg = small();
        let pkts = generate(&cfg);
        let mut clients = HashSet::new();
        for p in &pkts {
            // One side is a client, the other a server (either direction).
            let (c, s) =
                if p.src_ip >= SERVER_BASE { (p.dst_ip, p.src_ip) } else { (p.src_ip, p.dst_ip) };
            assert!((CLIENT_BASE..CLIENT_BASE + cfg.clients).contains(&c), "client {c:#x}");
            assert!((SERVER_BASE..SERVER_BASE + cfg.servers).contains(&s), "server {s:#x}");
            clients.insert(c);
        }
        assert!(clients.len() > 50, "expected many distinct clients");
    }
}
