//! The [`Trace`] container: background + injections, epoch slicing, stats.

use crate::attacks::{inject, AttackKind, InjectSpec, Injection};
use crate::background::{generate, TraceConfig};
use newton_packet::{Packet, Protocol};
use std::collections::HashSet;

/// A complete, timestamp-sorted packet trace with labelled injections.
#[derive(Debug, Clone)]
pub struct Trace {
    packets: Vec<Packet>,
    injections: Vec<Injection>,
}

impl Trace {
    /// Generate background traffic only.
    pub fn background(cfg: &TraceConfig) -> Self {
        Trace { packets: generate(cfg), injections: Vec::new() }
    }

    /// Build an empty trace (useful for hand-crafted tests).
    pub fn from_packets(mut packets: Vec<Packet>) -> Self {
        packets.sort_by_key(|p| p.ts_ns);
        Trace { packets, injections: Vec::new() }
    }

    /// Inject an attack; packets re-sort by timestamp.
    pub fn inject(&mut self, kind: AttackKind, spec: &InjectSpec) -> &Injection {
        let inj = inject(kind, spec, &mut self.packets);
        self.packets.sort_by_key(|p| p.ts_ns);
        self.injections.push(inj);
        self.injections.last().expect("just pushed")
    }

    /// All packets, sorted by timestamp.
    pub fn packets(&self) -> &[Packet] {
        &self.packets
    }

    /// Labelled injections, in injection order.
    pub fn injections(&self) -> &[Injection] {
        &self.injections
    }

    /// The guilty IPs for a given attack kind.
    pub fn guilty(&self, kind: AttackKind) -> HashSet<u32> {
        self.injections.iter().filter(|i| i.kind == kind).map(|i| i.guilty).collect()
    }

    /// Iterate over consecutive `epoch_ms` windows of packets.
    pub fn epochs(&self, epoch_ms: u64) -> impl Iterator<Item = &[Packet]> {
        let epoch_ns = epoch_ms.max(1) * 1_000_000;
        EpochIter { packets: &self.packets, epoch_ns, next_start: 0 }
    }

    /// Basic trace statistics.
    pub fn stats(&self) -> TraceStats {
        let mut flows = HashSet::new();
        let mut bytes: u64 = 0;
        let mut tcp = 0usize;
        let mut udp = 0usize;
        for p in &self.packets {
            flows.insert(p.flow_key());
            bytes += p.wire_len as u64;
            match p.protocol {
                Protocol::Tcp => tcp += 1,
                Protocol::Udp => udp += 1,
                _ => {}
            }
        }
        TraceStats {
            packets: self.packets.len(),
            flows: flows.len(),
            bytes,
            tcp_packets: tcp,
            udp_packets: udp,
            duration_ns: self.packets.last().map(|p| p.ts_ns).unwrap_or(0),
        }
    }
}

/// Summary statistics of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStats {
    pub packets: usize,
    pub flows: usize,
    pub bytes: u64,
    pub tcp_packets: usize,
    pub udp_packets: usize,
    pub duration_ns: u64,
}

struct EpochIter<'a> {
    packets: &'a [Packet],
    epoch_ns: u64,
    next_start: usize,
}

impl<'a> Iterator for EpochIter<'a> {
    type Item = &'a [Packet];

    fn next(&mut self) -> Option<&'a [Packet]> {
        if self.next_start >= self.packets.len() {
            return None;
        }
        let start = self.next_start;
        let epoch_idx = self.packets[start].ts_ns / self.epoch_ns;
        let end_ts = (epoch_idx + 1) * self.epoch_ns;
        let mut end = start;
        while end < self.packets.len() && self.packets[end].ts_ns < end_ts {
            end += 1;
        }
        self.next_start = end;
        Some(&self.packets[start..end])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use newton_packet::PacketBuilder;

    #[test]
    fn epochs_partition_the_trace() {
        let cfg = TraceConfig { packets: 3_000, flows: 100, ..Default::default() };
        let trace = Trace::background(&cfg);
        let total: usize = trace.epochs(100).map(<[Packet]>::len).sum();
        assert_eq!(total, trace.packets().len());
        // 1 second of trace at 100 ms epochs → at most 11 slices.
        assert!(trace.epochs(100).count() <= 11);
    }

    #[test]
    fn epoch_windows_are_time_aligned() {
        let pkts = vec![
            PacketBuilder::new().ts_ns(0).build(),
            PacketBuilder::new().ts_ns(99_999_999).build(),
            PacketBuilder::new().ts_ns(100_000_000).build(),
            PacketBuilder::new().ts_ns(250_000_000).build(),
        ];
        let trace = Trace::from_packets(pkts);
        let epochs: Vec<usize> = trace.epochs(100).map(<[Packet]>::len).collect();
        assert_eq!(epochs, vec![2, 1, 1]);
    }

    #[test]
    fn injections_are_labelled_and_merged() {
        let cfg = TraceConfig { packets: 1_000, flows: 50, ..Default::default() };
        let mut trace = Trace::background(&cfg);
        let n_before = trace.packets().len();
        trace.inject(AttackKind::SynFlood, &InjectSpec { intensity: 123, ..Default::default() });
        assert_eq!(trace.packets().len(), n_before + 123);
        assert_eq!(trace.guilty(AttackKind::SynFlood).len(), 1);
        assert!(trace.guilty(AttackKind::PortScan).is_empty());
        // Still sorted.
        for w in trace.packets().windows(2) {
            assert!(w[0].ts_ns <= w[1].ts_ns);
        }
    }

    #[test]
    fn stats_count_protocols_and_flows() {
        let cfg =
            TraceConfig { packets: 2_000, flows: 100, udp_fraction: 0.3, ..Default::default() };
        let trace = Trace::background(&cfg);
        let s = trace.stats();
        assert_eq!(s.packets, 2_000);
        assert!(s.flows >= 100 && s.flows <= 220, "flows {} (incl. replies)", s.flows);
        assert_eq!(s.tcp_packets + s.udp_packets, s.packets);
        assert!(s.bytes > 0);
    }

    #[test]
    fn empty_trace_has_no_epochs() {
        let trace = Trace::from_packets(Vec::new());
        assert_eq!(trace.epochs(100).count(), 0);
        assert_eq!(trace.stats().packets, 0);
    }
}
