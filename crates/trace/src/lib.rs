//! Synthetic packet traces for the Newton reproduction.
//!
//! The paper evaluates on CAIDA and MAWI captures, which are licensed and
//! not redistributable. This crate generates seeded synthetic traces with
//! the statistical properties those captures contribute to the evaluation:
//!
//! * heavy-tailed (Zipf) flow-size distribution ([`zipf`], [`background`]),
//! * realistic 5-tuple structure and TCP connection life cycles
//!   (SYN → data → FIN/ACK),
//! * injectable attack behaviours for every catalog query
//!   ([`attacks`]) — SYN floods, UDP DDoS, port scans, SSH brute force,
//!   Slowloris, super spreaders, DNS-without-TCP — with the injected
//!   attacker/victim identities recorded so experiments have labelled
//!   ground truth,
//! * presets approximating the two paper traces ([`presets`]),
//! * libpcap import/export ([`pcap`]) so traces open in Wireshark and real
//!   captures can drive the simulator.
//!
//! Everything is deterministic given [`TraceConfig::seed`].

pub mod attacks;
pub mod background;
pub mod pcap;
pub mod presets;
pub mod stats;
pub mod stream;
pub mod trace;
pub mod zipf;

pub use attacks::{AttackKind, Injection};
pub use background::TraceConfig;
pub use presets::{caida_like, mawi_like};
pub use stream::{PulseSpec, ReplayOptions, StreamConfig, StreamMetrics, StreamReplay};
pub use trace::Trace;
