//! Streaming trace generation: bounded-memory replay of traces that
//! never fit in memory.
//!
//! A [`StreamConfig`] describes an arbitrarily long modeled timeline as a
//! sequence of fixed-shape *segments*. Segment `i` is a pure function of
//! `(seed, i)`: its background traffic is the existing sharded generator
//! run with a seed derived from the stream seed and the segment index, its
//! attack pulses fire on a fixed `index % period == phase` schedule, and
//! its timestamps are offset by `i × segment_ns`. Nothing about a segment
//! depends on when, where, or on which thread it was generated — the same
//! determinism argument the sharded generator (PR 2) makes, lifted one
//! level up.
//!
//! [`StreamReplay`] turns that description into a bounded producer/consumer
//! pipeline: each producer thread owns the segment indices congruent to
//! its lane (`index % lanes == lane`) and a bounded SPSC queue of depth
//! `queue_depth`; the consumer pops lanes round-robin **by segment index**,
//! so delivery order is the segment order no matter how producer threads
//! interleave — backpressure stalls can never reorder modeled time. Segment
//! buffers return to their producer through a recycle channel, so after
//! warm-up the pipeline allocates nothing: peak packet-buffer footprint is
//! `lanes × (queue_depth + 2)` segments (queued + being generated + at the
//! consumer), independent of the stream length.

use crate::attacks::{guilty_ip, inject, AttackKind, InjectSpec};
use crate::background::{generate_shard_into, shard_plan, TraceConfig};
use crate::trace::Trace;
use newton_metrics::{Counter, Gauge, MetricsRegistry};
use newton_packet::Packet;
use newton_sketch::hash::mix64;
use std::sync::mpsc;
use std::thread;

/// Headroom kept free at the end of every pulse window: the
/// `CompletedConns` injector emits its ACK/FIN packets up to 2 µs after
/// the connection's SYN timestamp, and a segment's packets must stay
/// strictly inside `[i × segment_ns, (i+1) × segment_ns)`.
const PULSE_MARGIN_NS: u64 = 10_000;

/// An attack pulse that recurs on a fixed segment schedule.
///
/// The pulse fires on every segment whose index satisfies
/// `index % period == phase % period`, spread over the whole segment
/// (minus a small margin, `PULSE_MARGIN_NS`). Its injector seed derives
/// from the stream
/// seed, the segment index, and the pulse's position in
/// [`StreamConfig::pulses`], so two pulses of the same kind draw distinct
/// randomness.
#[derive(Debug, Clone)]
pub struct PulseSpec {
    pub kind: AttackKind,
    /// Attack events per firing segment (see [`InjectSpec::intensity`]).
    pub intensity: u32,
    /// Fire every `period`-th segment (0 is treated as 1: every segment).
    pub period: u64,
    /// Offset of the firing segments within the period.
    pub phase: u64,
}

impl PulseSpec {
    fn fires_at(&self, index: u64) -> bool {
        let period = self.period.max(1);
        index % period == self.phase % period
    }
}

/// A segment-structured stream of traffic: the bounded-memory twin of a
/// materialized [`Trace`].
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Stream seed; every segment and pulse seed derives from it.
    pub seed: u64,
    /// Number of segments in the stream.
    pub segments: u64,
    /// Shape of one segment of background traffic. `seed` is ignored
    /// (overridden per segment); `duration_ms` is the segment length, so
    /// flows are confined to their segment by construction.
    pub segment: TraceConfig,
    /// Recurring attack pulses layered over the background.
    pub pulses: Vec<PulseSpec>,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            seed: 0x57AE_A12D,
            segments: 4,
            segment: TraceConfig { packets: 50_000, duration_ms: 100, ..TraceConfig::default() },
            pulses: Vec::new(),
        }
    }
}

impl StreamConfig {
    /// Length of one segment in nanoseconds of modeled time.
    pub fn segment_ns(&self) -> u64 {
        self.segment.duration_ms.max(1) * 1_000_000
    }

    /// Background packets per segment (pulses add more on their firing
    /// segments — `CompletedConns` emits three packets per event, every
    /// other kind one).
    pub fn segment_packets(&self) -> usize {
        self.segment.packets
    }

    /// The IP ground truth says is guilty for `kind`, if some pulse
    /// injects it. Injected identities are fixed per kind, so labels need
    /// no generation.
    pub fn guilty(&self, kind: AttackKind) -> Option<u32> {
        self.pulses.iter().find(|p| p.kind == kind).map(|_| guilty_ip(kind))
    }

    /// The background config of segment `index` (derived seed, same shape).
    fn segment_cfg(&self, index: u64) -> TraceConfig {
        TraceConfig {
            seed: mix64(self.seed ^ (index + 1).wrapping_mul(0x5E6_3EED)),
            ..self.segment.clone()
        }
    }

    /// Generate segment `index` into `out` (cleared first), sorted by
    /// timestamp, timestamps offset into the segment's slot of the stream
    /// timeline. Pure in `(self, index)`: any thread, any order, any
    /// buffer history produces identical bytes.
    pub fn segment_into(&self, index: u64, out: &mut Vec<Packet>) {
        assert!(index < self.segments, "segment {index} out of range");
        out.clear();
        // Run the config-derived shards sequentially straight into the
        // recycled buffer: the producer pool is the parallelism here, not
        // nested shard threads.
        for sc in shard_plan(&self.segment_cfg(index)) {
            generate_shard_into(&sc, out);
        }
        let window_ns = self.segment_ns().saturating_sub(PULSE_MARGIN_NS);
        assert!(window_ns > 0, "segment too short for a pulse window");
        for (k, pulse) in self.pulses.iter().enumerate() {
            if !pulse.fires_at(index) {
                continue;
            }
            let spec = InjectSpec {
                seed: mix64(
                    self.seed
                        ^ (index + 1).wrapping_mul(0xA77A_C4E5)
                        ^ (k as u64 + 1).wrapping_mul(0x9E37_79B9),
                ),
                intensity: pulse.intensity,
                start_ns: 0,
                window_ns,
            };
            inject(pulse.kind, &spec, out);
        }
        // Stable, like Trace: equal timestamps keep emission order.
        out.sort_by_key(|p| p.ts_ns);
        let base = index * self.segment_ns();
        if base > 0 {
            for p in out.iter_mut() {
                p.ts_ns += base;
            }
        }
    }

    /// Materialize the whole stream as one [`Trace`] — the in-memory twin
    /// streamed runs are proven byte-identical against. Only feasible for
    /// test-sized streams; soak streams never call this.
    pub fn materialize(&self) -> Trace {
        let mut all = Vec::with_capacity(self.segment.packets * self.segments as usize);
        let mut seg = Vec::new();
        for i in 0..self.segments {
            self.segment_into(i, &mut seg);
            all.extend_from_slice(&seg);
        }
        Trace::from_packets(all)
    }
}

/// How a [`StreamReplay`] produces segments.
#[derive(Debug, Clone, Copy)]
pub struct ReplayOptions {
    /// Producer threads. `0` generates segments inline on the consumer
    /// thread (no threads, one recycled buffer — the minimal-footprint
    /// mode and the natural choice on single-core hosts).
    pub producers: usize,
    /// Bounded depth of each producer's segment queue: the backpressure
    /// knob. Peak buffered segments are `producers × (queue_depth + 2)`.
    pub queue_depth: usize,
}

impl Default for ReplayOptions {
    fn default() -> Self {
        ReplayOptions { producers: 1, queue_depth: 4 }
    }
}

/// Live replay-pipeline metrics, registered under `stream_*`. Purely
/// observational: attaching them changes neither segment bytes nor
/// delivery order (the determinism tests run with and without).
#[derive(Debug, Clone, Default)]
pub struct StreamMetrics {
    /// Producer blocked on a full segment queue (backpressure stall).
    pub stalls: Counter,
    /// Producer reused a recycled buffer.
    pub recycle_hits: Counter,
    /// Producer allocated fresh (warm-up, or the consumer skipped
    /// [`StreamReplay::recycle`]).
    pub recycle_misses: Counter,
    /// Per-lane queued-segment occupancy (index = lane).
    pub lane_occupancy: Vec<Gauge>,
}

impl StreamMetrics {
    /// Register the replay metric family for a pool of `lanes` producers.
    pub fn register(reg: &MetricsRegistry, lanes: usize) -> StreamMetrics {
        StreamMetrics {
            stalls: reg.counter(
                "stream_backpressure_stalls_total",
                "Producer sends that blocked on a full segment queue",
            ),
            recycle_hits: reg.counter(
                "stream_recycle_hits_total",
                "Segment buffers reused from the recycle channel",
            ),
            recycle_misses: reg.counter(
                "stream_recycle_misses_total",
                "Segment buffers freshly allocated by producers",
            ),
            lane_occupancy: (0..lanes)
                .map(|lane| {
                    reg.gauge(
                        &format!("stream_lane{lane}_occupancy"),
                        "Segments queued (or in handoff) on this producer lane",
                    )
                })
                .collect(),
        }
    }

    fn lane(&self, lane: usize) -> Gauge {
        self.lane_occupancy.get(lane).cloned().unwrap_or_default()
    }

    /// Recycle hit rate in `[0, 1]` (1.0 when nothing was requested yet).
    pub fn recycle_hit_rate(&self) -> f64 {
        let hits = self.recycle_hits.get();
        let total = hits + self.recycle_misses.get();
        if total == 0 {
            1.0
        } else {
            hits as f64 / total as f64
        }
    }
}

/// One generated segment in flight from a producer to the consumer.
#[derive(Debug)]
pub struct Segment {
    /// The segment's index in the stream.
    pub index: u64,
    packets: Vec<Packet>,
}

impl Segment {
    /// The segment's packets, sorted by timestamp.
    pub fn packets(&self) -> &[Packet] {
        &self.packets
    }
}

/// One producer lane: its bounded segment queue (SPSC by construction —
/// one producer thread, one consumer) and the recycle channel returning
/// spent buffers.
struct Lane {
    rx: mpsc::Receiver<Segment>,
    recycle_tx: mpsc::Sender<Vec<Packet>>,
    handle: thread::JoinHandle<()>,
    /// Consumer half of the lane's occupancy gauge (producer increments
    /// before sending, consumer decrements after receiving).
    occupancy: Gauge,
}

/// A running producer pool delivering a [`StreamConfig`]'s segments in
/// order with bounded memory. See the module docs for the ordering and
/// footprint argument.
pub struct StreamReplay {
    cfg: StreamConfig,
    next: u64,
    /// Inline-mode recycled buffer (`producers == 0`).
    inline_buf: Option<Vec<Packet>>,
    lanes: Vec<Lane>,
    /// Shared counters of the attached metrics family (inline mode
    /// updates them from the consumer thread).
    metrics: StreamMetrics,
}

fn producer(
    cfg: StreamConfig,
    first: u64,
    stride: u64,
    tx: mpsc::SyncSender<Segment>,
    recycle_rx: mpsc::Receiver<Vec<Packet>>,
    metrics: StreamMetrics,
    occupancy: Gauge,
) {
    let mut index = first;
    while index < cfg.segments {
        // Reuse a spent buffer when one has come back; otherwise this is
        // one of the pool's at most `queue_depth + 2` warm-up allocations.
        let mut buf = match recycle_rx.try_recv() {
            Ok(buf) => {
                metrics.recycle_hits.inc();
                buf
            }
            Err(_) => {
                metrics.recycle_misses.inc();
                Vec::new()
            }
        };
        cfg.segment_into(index, &mut buf);
        // Count the segment as queued before handing it over, so the
        // consumer's decrement can never observe the gauge at zero first.
        occupancy.add(1);
        let seg = Segment { index, packets: buf };
        match tx.try_send(seg) {
            Ok(()) => {}
            Err(mpsc::TrySendError::Full(seg)) => {
                // Backpressure: the consumer is behind on this lane. Count
                // the stall, then block — exactly the old behavior.
                metrics.stalls.inc();
                if tx.send(seg).is_err() {
                    occupancy.sub(1);
                    return;
                }
            }
            Err(mpsc::TrySendError::Disconnected(_)) => {
                // Consumer hung up (drop or early stop): exit quietly.
                occupancy.sub(1);
                return;
            }
        }
        index += stride;
    }
}

impl StreamReplay {
    /// Start producing `cfg`'s segments under `opts`, unobserved.
    pub fn start(cfg: StreamConfig, opts: &ReplayOptions) -> StreamReplay {
        Self::start_observed(cfg, opts, StreamMetrics::default())
    }

    /// [`start`](Self::start) with a live metrics family attached
    /// (occupancy gauges, stall and recycle counters). Detached handles
    /// (the `StreamMetrics::default()` the plain constructor passes) make
    /// every update a no-op.
    pub fn start_observed(
        cfg: StreamConfig,
        opts: &ReplayOptions,
        metrics: StreamMetrics,
    ) -> StreamReplay {
        let lanes_n = opts.producers.min(cfg.segments as usize);
        let mut lanes = Vec::with_capacity(lanes_n);
        for lane in 0..lanes_n {
            let (tx, rx) = mpsc::sync_channel(opts.queue_depth.max(1));
            let (recycle_tx, recycle_rx) = mpsc::channel();
            let c = cfg.clone();
            let m = metrics.clone();
            let occupancy = metrics.lane(lane);
            let occ = occupancy.clone();
            let handle = thread::Builder::new()
                .name(format!("newton-stream-{lane}"))
                .spawn(move || producer(c, lane as u64, lanes_n as u64, tx, recycle_rx, m, occ))
                .expect("spawn stream producer");
            lanes.push(Lane { rx, recycle_tx, handle, occupancy });
        }
        StreamReplay { cfg, next: 0, inline_buf: None, lanes, metrics }
    }

    /// The next segment in stream order, or `None` past the end. Blocks on
    /// the owning producer when its queue is empty (and the producers
    /// block on [`StreamReplay::start`]'s bounded queues when the consumer
    /// falls behind — that is the backpressure).
    pub fn next_segment(&mut self) -> Option<Segment> {
        if self.next >= self.cfg.segments {
            return None;
        }
        let index = self.next;
        self.next += 1;
        if self.lanes.is_empty() {
            let mut buf = match self.inline_buf.take() {
                Some(buf) => {
                    self.metrics.recycle_hits.inc();
                    buf
                }
                None => {
                    self.metrics.recycle_misses.inc();
                    Vec::new()
                }
            };
            self.cfg.segment_into(index, &mut buf);
            return Some(Segment { index, packets: buf });
        }
        let lane = &self.lanes[(index % self.lanes.len() as u64) as usize];
        let seg = lane.rx.recv().expect("stream producer died");
        lane.occupancy.sub(1);
        debug_assert_eq!(seg.index, index, "lane delivered out of order");
        Some(seg)
    }

    /// Return a spent segment's buffer to its producer for reuse. Not
    /// calling this is only a performance bug, never a correctness one.
    pub fn recycle(&mut self, seg: Segment) {
        if self.lanes.is_empty() {
            self.inline_buf = Some(seg.packets);
            return;
        }
        let lane = &self.lanes[(seg.index % self.lanes.len() as u64) as usize];
        // A producer that already finished its lane dropped its receiver;
        // the buffer just dies with the send error.
        let _ = lane.recycle_tx.send(seg.packets);
    }
}

impl Drop for StreamReplay {
    fn drop(&mut self) {
        for lane in self.lanes.drain(..) {
            let Lane { rx, recycle_tx, handle, occupancy: _ } = lane;
            // Dropping the receiver unblocks a producer parked on a full
            // queue; it sees the send error and exits.
            drop(rx);
            drop(recycle_tx);
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> StreamConfig {
        StreamConfig {
            seed: 42,
            segments: 5,
            segment: TraceConfig {
                packets: 1_200,
                flows: 80,
                duration_ms: 50,
                ..TraceConfig::default()
            },
            pulses: vec![
                PulseSpec { kind: AttackKind::PortScan, intensity: 40, period: 2, phase: 0 },
                PulseSpec { kind: AttackKind::CompletedConns, intensity: 10, period: 3, phase: 1 },
            ],
        }
    }

    #[test]
    fn segments_are_deterministic_and_buffer_independent() {
        let cfg = small();
        let mut a = Vec::new();
        // Dirty recycled buffer: segment_into must clear it first.
        let mut b = vec![newton_packet::PacketBuilder::new().build(); 7];
        for i in 0..cfg.segments {
            cfg.segment_into(i, &mut a);
            cfg.segment_into(i, &mut b);
            assert_eq!(a, b, "segment {i} depends on buffer history");
            assert!(!a.is_empty());
        }
    }

    #[test]
    fn segments_stay_inside_their_time_slot() {
        let cfg = small();
        let seg_ns = cfg.segment_ns();
        let mut buf = Vec::new();
        for i in 0..cfg.segments {
            cfg.segment_into(i, &mut buf);
            let (lo, hi) = (i * seg_ns, (i + 1) * seg_ns);
            assert!(
                buf.iter().all(|p| (lo..hi).contains(&p.ts_ns)),
                "segment {i} leaked outside [{lo}, {hi})"
            );
            for w in buf.windows(2) {
                assert!(w[0].ts_ns <= w[1].ts_ns, "segment {i} unsorted");
            }
        }
    }

    #[test]
    fn pulses_fire_on_schedule_and_carry_ground_truth() {
        let cfg = small();
        let scanner = cfg.guilty(AttackKind::PortScan).expect("port-scan pulse configured");
        assert_eq!(cfg.guilty(AttackKind::SynFlood), None);
        let mut buf = Vec::new();
        for i in 0..cfg.segments {
            cfg.segment_into(i, &mut buf);
            let scans = buf.iter().filter(|p| p.src_ip == scanner).count();
            if i % 2 == 0 {
                assert_eq!(scans, 40, "segment {i} should carry the scan pulse");
            } else {
                assert_eq!(scans, 0, "segment {i} should be scan-free");
            }
        }
    }

    #[test]
    fn materialize_concatenates_segments_in_order() {
        let cfg = small();
        let trace = cfg.materialize();
        let mut manual = Vec::new();
        let mut seg = Vec::new();
        for i in 0..cfg.segments {
            cfg.segment_into(i, &mut seg);
            manual.extend_from_slice(&seg);
        }
        assert_eq!(trace.packets(), &manual[..], "materialize reorders segments");
    }

    #[test]
    fn replay_matches_materialize_at_any_pool_shape() {
        let cfg = small();
        let expected = cfg.materialize();
        for producers in [0usize, 1, 3, 8] {
            for queue_depth in [1usize, 2, 64] {
                let mut replay =
                    StreamReplay::start(cfg.clone(), &ReplayOptions { producers, queue_depth });
                let mut got: Vec<Packet> = Vec::new();
                let mut indices = Vec::new();
                while let Some(seg) = replay.next_segment() {
                    indices.push(seg.index);
                    got.extend_from_slice(seg.packets());
                    replay.recycle(seg);
                }
                assert_eq!(indices, (0..cfg.segments).collect::<Vec<_>>());
                assert_eq!(
                    got,
                    expected.packets(),
                    "stream diverged at producers={producers} depth={queue_depth}"
                );
            }
        }
    }

    #[test]
    fn observed_replay_is_byte_identical_and_counts_pipeline_events() {
        let cfg = small();
        let expected = cfg.materialize();
        let reg = newton_metrics::MetricsRegistry::new();
        let opts = ReplayOptions { producers: 2, queue_depth: 1 };
        let metrics = StreamMetrics::register(&reg, opts.producers);
        let mut replay = StreamReplay::start_observed(cfg.clone(), &opts, metrics.clone());
        let mut got: Vec<Packet> = Vec::new();
        // Consume slowly enough (recycling every buffer) that producers
        // run ahead into their depth-1 queues.
        while let Some(seg) = replay.next_segment() {
            got.extend_from_slice(seg.packets());
            replay.recycle(seg);
        }
        assert_eq!(got, expected.packets(), "metrics must not change the stream bytes");
        let produced = metrics.recycle_hits.get() + metrics.recycle_misses.get();
        assert_eq!(produced, cfg.segments, "every segment asks for a buffer once");
        assert!(metrics.recycle_misses.get() >= 1, "warm-up allocates at least one buffer");
        assert!(metrics.recycle_hit_rate() <= 1.0);
        for (lane, g) in metrics.lane_occupancy.iter().enumerate() {
            assert_eq!(g.get(), 0, "lane {lane} occupancy must drain to zero");
        }
        // Inline mode recycles through the consumer-held buffer: all hits
        // after the first allocation.
        let reg2 = newton_metrics::MetricsRegistry::new();
        let m2 = StreamMetrics::register(&reg2, 0);
        let mut inline = StreamReplay::start_observed(
            cfg.clone(),
            &ReplayOptions { producers: 0, queue_depth: 1 },
            m2.clone(),
        );
        while let Some(seg) = inline.next_segment() {
            inline.recycle(seg);
        }
        assert_eq!(m2.recycle_misses.get(), 1);
        assert_eq!(m2.recycle_hits.get(), cfg.segments - 1);
    }

    #[test]
    fn dropping_a_replay_mid_stream_does_not_hang() {
        let cfg = StreamConfig { segments: 64, ..small() };
        let mut replay = StreamReplay::start(cfg, &ReplayOptions { producers: 2, queue_depth: 1 });
        let seg = replay.next_segment().expect("first segment");
        replay.recycle(seg);
        drop(replay); // producers parked on full queues must exit
    }

    #[test]
    fn recycled_buffers_are_actually_reused() {
        // Inline mode makes reuse observable: after the first segment the
        // buffer's capacity is carried forward, so a warm replay performs
        // no further segment-buffer allocation.
        let cfg = small();
        let mut replay = StreamReplay::start(cfg, &ReplayOptions { producers: 0, queue_depth: 1 });
        let first = replay.next_segment().expect("segment 0");
        let cap = first.packets.capacity();
        let ptr = first.packets.as_ptr();
        replay.recycle(first);
        let second = replay.next_segment().expect("segment 1");
        assert!(second.packets.capacity() >= cap);
        assert_eq!(second.packets.as_ptr(), ptr, "inline replay must reuse the buffer");
    }
}
