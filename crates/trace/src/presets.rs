//! Trace presets approximating the paper's two captures.
//!
//! | Preset | Models | Character |
//! |---|---|---|
//! | [`caida_like`] | CAIDA Chicago 2014 (backbone) | many flows, strong heavy tail, TCP-dominated |
//! | [`mawi_like`] | MAWI WIDE transit | fewer, longer flows, higher UDP share |
//!
//! Absolute rates are scaled down to laptop size; what experiments consume
//! is the *shape* (flow-size skew, protocol mix, distinct-count behaviour),
//! which these presets control.

use crate::background::TraceConfig;
use crate::trace::Trace;

/// A CAIDA-backbone-like trace: many short flows, strong elephant/mice
/// split, 15 % UDP.
pub fn caida_like(seed: u64, packets: usize) -> Trace {
    Trace::background(&TraceConfig {
        seed,
        packets,
        flows: (packets / 12).max(16),
        zipf_exponent: 1.25,
        udp_fraction: 0.15,
        duration_ms: 1_000,
        clients: 20_000,
        servers: 2_000,
    })
}

/// A MAWI-transit-like trace: fewer but heavier flows, 30 % UDP.
pub fn mawi_like(seed: u64, packets: usize) -> Trace {
    Trace::background(&TraceConfig {
        seed,
        packets,
        flows: (packets / 40).max(16),
        zipf_exponent: 1.05,
        udp_fraction: 0.30,
        duration_ms: 1_000,
        clients: 5_000,
        servers: 800,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_in_flow_density() {
        let c = caida_like(1, 20_000).stats();
        let m = mawi_like(1, 20_000).stats();
        assert!(
            c.flows > m.flows,
            "CAIDA-like should have more flows ({} vs {})",
            c.flows,
            m.flows
        );
    }

    #[test]
    fn presets_differ_in_udp_share() {
        let c = caida_like(1, 20_000).stats();
        let m = mawi_like(1, 20_000).stats();
        let cf = c.udp_packets as f64 / c.packets as f64;
        let mf = m.udp_packets as f64 / m.packets as f64;
        assert!(mf > cf, "MAWI-like should be more UDP-heavy ({mf:.2} vs {cf:.2})");
    }

    #[test]
    fn presets_are_deterministic() {
        assert_eq!(caida_like(9, 5_000).packets(), caida_like(9, 5_000).packets());
    }
}
