//! Attack traffic injectors — one per catalog query scenario.
//!
//! Each injector produces the packets a given attack would contribute and
//! records the identity it makes guilty (victim or attacker), so experiments
//! have labelled ground truth independent of any query implementation.

use crate::background::{CLIENT_BASE, SERVER_BASE};
use newton_packet::{Packet, PacketBuilder, Protocol, TcpFlags};
use newton_sketch::hash::mix64;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The attack behaviours the catalog queries detect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackKind {
    /// Burst of new TCP connections to one server (Q1).
    NewTcpBurst,
    /// SSH brute force against one server (Q2).
    SshBrute,
    /// One source contacting many destinations (Q3).
    SuperSpreader,
    /// One source probing many ports on one host (Q4).
    PortScan,
    /// Many sources flooding one destination with UDP (Q5).
    UdpDdos,
    /// Spoofed SYN flood against one victim (Q6).
    SynFlood,
    /// Complete (SYN…FIN) connections to one server (Q7 positive signal).
    CompletedConns,
    /// Slowloris: many connections, almost no bytes (Q8).
    Slowloris,
    /// DNS responses to a host that never opens TCP connections (Q9).
    DnsNoTcp,
}

/// A labelled injection: what was injected, who is guilty, what was sent.
#[derive(Debug, Clone)]
pub struct Injection {
    pub kind: AttackKind,
    /// The IP the corresponding query should report (victim for floods,
    /// attacker for scans/spreaders, the silent host for Q9).
    pub guilty: u32,
    /// Number of injected packets.
    pub packets: usize,
    /// Injection window start (ns).
    pub start_ns: u64,
}

/// Parameters shared by injectors.
#[derive(Debug, Clone, Copy)]
pub struct InjectSpec {
    /// Seed for the injector's private RNG.
    pub seed: u64,
    /// Intensity: number of attack events (connections, probes, sources…).
    pub intensity: u32,
    /// Window start timestamp (ns).
    pub start_ns: u64,
    /// Window length (ns) the events spread over.
    pub window_ns: u64,
}

impl Default for InjectSpec {
    fn default() -> Self {
        InjectSpec { seed: 7, intensity: 100, start_ns: 0, window_ns: 50_000_000 }
    }
}

fn ts(spec: &InjectSpec, i: u32) -> u64 {
    spec.start_ns + (i as u64) * spec.window_ns / (spec.intensity.max(1) as u64)
}

/// The fixed shard count of [`inject`]: event indices split into this many
/// contiguous ranges, each with a derived RNG. Purely spec-driven, so the
/// injected packets are identical at any thread count.
const ATK_SHARDS: u32 = 8;

/// Below this intensity, shards run on the calling thread.
const PAR_MIN_EVENTS: u32 = 4_096;

/// The IP the corresponding query should report for each attack kind.
/// Fixed per kind, so ground-truth labels exist without generating any
/// packets — the streaming path relies on this.
pub fn guilty_ip(kind: AttackKind) -> u32 {
    match kind {
        AttackKind::NewTcpBurst => SERVER_BASE + 0xFFF0,
        AttackKind::SshBrute => SERVER_BASE + 0xFFF1,
        AttackKind::SuperSpreader => CLIENT_BASE + 0xEEEE,
        AttackKind::PortScan => CLIENT_BASE + 0xDDDD,
        AttackKind::UdpDdos => SERVER_BASE + 0xFFF3,
        AttackKind::SynFlood => SERVER_BASE + 0xFFF4,
        AttackKind::CompletedConns => SERVER_BASE + 0xFFF5,
        AttackKind::Slowloris => SERVER_BASE + 0xFFF6,
        AttackKind::DnsNoTcp => CLIENT_BASE + 0xCCCC,
    }
}

/// Emit attack event `i`'s packet(s). Index-driven values (timestamps,
/// port sweeps) use the global event index; randomized values draw from
/// the shard's RNG.
fn emit(kind: AttackKind, spec: &InjectSpec, i: u32, rng: &mut StdRng, out: &mut Vec<Packet>) {
    let guilty = guilty_ip(kind);
    match kind {
        AttackKind::NewTcpBurst => out.push(
            PacketBuilder::new()
                .src_ip(CLIENT_BASE + rng.gen_range(0..1 << 16))
                .dst_ip(guilty)
                .src_port(rng.gen_range(1024..u16::MAX))
                .dst_port(443)
                .tcp_flags(TcpFlags::SYN)
                .ts_ns(ts(spec, i))
                .build(),
        ),
        AttackKind::SshBrute => out.push(
            // Brute-force tools: one client, many attempts, uniform-ish
            // packet sizes; distinct (dip, sip, len) tuples come from a
            // small set of lengths across many clients.
            PacketBuilder::new()
                .src_ip(CLIENT_BASE + rng.gen_range(0..2048))
                .dst_ip(guilty)
                .src_port(rng.gen_range(1024..u16::MAX))
                .dst_port(22)
                .tcp_flags(TcpFlags::ACK | TcpFlags::PSH)
                .wire_len(96 + (i % 13) as u16)
                .ts_ns(ts(spec, i))
                .build(),
        ),
        AttackKind::SuperSpreader => out.push(
            PacketBuilder::new()
                .src_ip(guilty)
                .dst_ip(SERVER_BASE + i) // a fresh destination each time
                .src_port(40000)
                .dst_port(80)
                .tcp_flags(TcpFlags::SYN)
                .ts_ns(ts(spec, i))
                .build(),
        ),
        AttackKind::PortScan => out.push(
            PacketBuilder::new()
                .src_ip(guilty)
                .dst_ip(SERVER_BASE + 0xFFF2)
                .src_port(41000)
                .dst_port(1 + (i as u16 % 60000)) // sweep ports
                .tcp_flags(TcpFlags::SYN)
                .ts_ns(ts(spec, i))
                .build(),
        ),
        AttackKind::UdpDdos => out.push(
            PacketBuilder::new()
                .src_ip(CLIENT_BASE + rng.gen_range(0..1 << 20)) // botnet
                .dst_ip(guilty)
                .src_port(rng.gen_range(1024..u16::MAX))
                .dst_port(53)
                .protocol(Protocol::Udp)
                .wire_len(512)
                .ts_ns(ts(spec, i))
                .build(),
        ),
        AttackKind::SynFlood => out.push(
            PacketBuilder::new()
                .src_ip(rng.gen()) // spoofed sources
                .dst_ip(guilty)
                .src_port(rng.gen()) // random sports
                .dst_port(80)
                .tcp_flags(TcpFlags::SYN)
                .ts_ns(ts(spec, i))
                .build(),
        ),
        AttackKind::CompletedConns => {
            let client = CLIENT_BASE + rng.gen_range(0..4096);
            let sport = rng.gen_range(1024..u16::MAX);
            let t = ts(spec, i);
            let base =
                PacketBuilder::new().src_ip(client).dst_ip(guilty).src_port(sport).dst_port(80);
            out.push(base.clone().tcp_flags(TcpFlags::SYN).ts_ns(t).build());
            out.push(
                base.clone()
                    .tcp_flags(TcpFlags::ACK | TcpFlags::PSH)
                    .wire_len(700)
                    .ts_ns(t + 1000)
                    .build(),
            );
            out.push(base.tcp_flags(TcpFlags::FIN | TcpFlags::ACK).ts_ns(t + 2000).build());
        }
        AttackKind::Slowloris => out.push(
            // Many connections (distinct sip/sport), headers only.
            PacketBuilder::new()
                .src_ip(CLIENT_BASE + rng.gen_range(0..256))
                .dst_ip(guilty)
                .src_port(20000 + (i as u16 % 40000))
                .dst_port(80)
                .tcp_flags(TcpFlags::ACK | TcpFlags::PSH)
                .wire_len(64)
                .ts_ns(ts(spec, i))
                .build(),
        ),
        AttackKind::DnsNoTcp => out.push(
            // DNS responses arrive; the host never opens a connection.
            PacketBuilder::new()
                .src_ip(0x0808_0808)
                .dst_ip(guilty)
                .src_port(53)
                .dst_port(rng.gen_range(1024..u16::MAX))
                .protocol(Protocol::Udp)
                .wire_len(120)
                .ts_ns(ts(spec, i))
                .build(),
        ),
    }
}

/// One shard's events: indices `lo..hi` emitted with the shard's RNG.
fn inject_shard(kind: AttackKind, spec: &InjectSpec, shard: u32, lo: u32, hi: u32) -> Vec<Packet> {
    let mut rng = StdRng::seed_from_u64(mix64(
        spec.seed ^ (kind as u64).wrapping_mul(0x9E37) ^ (shard as u64 + 1).wrapping_mul(0xA77A),
    ));
    let mut out = Vec::with_capacity((hi - lo) as usize);
    for i in lo..hi {
        emit(kind, spec, i, &mut rng, &mut out);
    }
    out
}

/// Inject an attack of `kind` into `packets`, returning its label.
/// `packets` is re-sorted by timestamp afterwards by [`crate::trace::Trace`].
///
/// Event indices split into `ATK_SHARDS` contiguous ranges with derived
/// per-shard RNGs, run on threads for large intensities and merged in
/// shard order — deterministic in the spec at any thread count.
pub fn inject(kind: AttackKind, spec: &InjectSpec, packets: &mut Vec<Packet>) -> Injection {
    let before = packets.len();
    let n = ATK_SHARDS.min(spec.intensity).max(1);
    let bounds = |s: u32| (s * spec.intensity / n, (s + 1) * spec.intensity / n);
    let cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
    if n > 1 && cores > 1 && spec.intensity >= PAR_MIN_EVENTS {
        let parts: Vec<Vec<Packet>> = std::thread::scope(|sc| {
            let handles: Vec<_> = (0..n)
                .map(|s| {
                    let (lo, hi) = bounds(s);
                    sc.spawn(move || inject_shard(kind, spec, s, lo, hi))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("inject shard panicked")).collect()
        });
        for part in parts {
            packets.extend(part);
        }
    } else {
        for s in 0..n {
            let (lo, hi) = bounds(s);
            packets.extend(inject_shard(kind, spec, s, lo, hi));
        }
    }
    Injection {
        kind,
        guilty: guilty_ip(kind),
        packets: packets.len() - before,
        start_ns: spec.start_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(kind: AttackKind) -> (Injection, Vec<Packet>) {
        let mut pkts = Vec::new();
        let inj = inject(kind, &InjectSpec::default(), &mut pkts);
        (inj, pkts)
    }

    #[test]
    fn every_kind_injects_packets() {
        for kind in [
            AttackKind::NewTcpBurst,
            AttackKind::SshBrute,
            AttackKind::SuperSpreader,
            AttackKind::PortScan,
            AttackKind::UdpDdos,
            AttackKind::SynFlood,
            AttackKind::CompletedConns,
            AttackKind::Slowloris,
            AttackKind::DnsNoTcp,
        ] {
            let (inj, pkts) = run(kind);
            assert!(!pkts.is_empty(), "{kind:?} injected nothing");
            assert_eq!(inj.packets, pkts.len());
            assert_eq!(inj.kind, kind);
        }
    }

    #[test]
    fn syn_flood_is_spoofed_and_pure_syn() {
        let (inj, pkts) = run(AttackKind::SynFlood);
        assert!(pkts.iter().all(|p| p.tcp_flags.is_pure_syn()));
        assert!(pkts.iter().all(|p| p.dst_ip == inj.guilty));
        let distinct_srcs: std::collections::HashSet<_> = pkts.iter().map(|p| p.src_ip).collect();
        assert!(distinct_srcs.len() > 90, "spoofed flood should have many sources");
    }

    #[test]
    fn port_scan_sweeps_distinct_ports() {
        let (inj, pkts) = run(AttackKind::PortScan);
        assert!(pkts.iter().all(|p| p.src_ip == inj.guilty));
        let ports: std::collections::HashSet<_> = pkts.iter().map(|p| p.dst_port).collect();
        assert_eq!(ports.len(), pkts.len(), "each probe must hit a fresh port");
    }

    #[test]
    fn completed_conns_have_full_lifecycle() {
        let (_, pkts) = run(AttackKind::CompletedConns);
        let syns = pkts.iter().filter(|p| p.tcp_flags.is_pure_syn()).count();
        let fins =
            pkts.iter().filter(|p| p.tcp_flags.contains(TcpFlags::FIN | TcpFlags::ACK)).count();
        assert_eq!(syns, fins);
        assert_eq!(pkts.len(), syns * 3);
    }

    #[test]
    fn slowloris_is_low_volume() {
        let (_, pkts) = run(AttackKind::Slowloris);
        assert!(pkts.iter().all(|p| p.wire_len <= 64));
        assert!(pkts.iter().all(|p| p.dst_port == 80));
    }

    #[test]
    fn dns_no_tcp_emits_only_udp() {
        let (inj, pkts) = run(AttackKind::DnsNoTcp);
        assert!(pkts.iter().all(|p| p.protocol == Protocol::Udp && p.src_port == 53));
        assert!(pkts.iter().all(|p| p.dst_ip == inj.guilty));
    }

    #[test]
    fn injection_is_deterministic() {
        let (a, pa) = run(AttackKind::UdpDdos);
        let (b, pb) = run(AttackKind::UdpDdos);
        assert_eq!(pa, pb);
        assert_eq!(a.guilty, b.guilty);
    }

    #[test]
    fn timestamps_respect_window() {
        let spec = InjectSpec { start_ns: 1_000, window_ns: 9_000, ..Default::default() };
        let mut pkts = Vec::new();
        inject(AttackKind::NewTcpBurst, &spec, &mut pkts);
        assert!(pkts.iter().all(|p| (1_000..10_000).contains(&p.ts_ns)));
    }
}
