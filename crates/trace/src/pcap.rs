//! libpcap import/export for synthetic traces.
//!
//! Traces written here open in Wireshark/tcpdump, which makes the
//! synthetic workloads inspectable with standard tooling and lets real
//! captures (converted to the classic pcap format) drive the simulator.
//! Format: the classic little-endian pcap file (magic `0xa1b2c3d4`,
//! version 2.4, LINKTYPE_ETHERNET), microsecond timestamps.

use newton_packet::wire;
use newton_packet::Packet;
use std::io::{self, Read, Write};

const MAGIC: u32 = 0xa1b2_c3d4;
const LINKTYPE_ETHERNET: u32 = 1;

/// Write packets as a pcap file. Frames are synthesized with
/// [`newton_packet::wire::encode`] (no snapshot header — pcap captures are
/// host-visible traffic).
pub fn write_pcap<W: Write>(mut w: W, packets: &[Packet]) -> io::Result<()> {
    // Global header.
    w.write_all(&MAGIC.to_le_bytes())?;
    w.write_all(&2u16.to_le_bytes())?; // major
    w.write_all(&4u16.to_le_bytes())?; // minor
    w.write_all(&0i32.to_le_bytes())?; // thiszone
    w.write_all(&0u32.to_le_bytes())?; // sigfigs
    w.write_all(&65_535u32.to_le_bytes())?; // snaplen
    w.write_all(&LINKTYPE_ETHERNET.to_le_bytes())?;

    for pkt in packets {
        let frame = wire::encode(pkt, None);
        let ts_sec = (pkt.ts_ns / 1_000_000_000) as u32;
        let ts_usec = ((pkt.ts_ns % 1_000_000_000) / 1_000) as u32;
        w.write_all(&ts_sec.to_le_bytes())?;
        w.write_all(&ts_usec.to_le_bytes())?;
        w.write_all(&(frame.len() as u32).to_le_bytes())?;
        w.write_all(&(frame.len() as u32).to_le_bytes())?;
        w.write_all(&frame)?;
    }
    Ok(())
}

/// Errors reading a pcap file.
#[derive(Debug)]
pub enum PcapError {
    Io(io::Error),
    /// Not a classic little-endian pcap file.
    BadMagic(u32),
    /// A frame failed to parse as Ethernet/IPv4/TCP-UDP.
    BadFrame(usize),
}

impl std::fmt::Display for PcapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcapError::Io(e) => write!(f, "io: {e}"),
            PcapError::BadMagic(m) => write!(f, "not a classic LE pcap (magic {m:#010x})"),
            PcapError::BadFrame(i) => write!(f, "frame {i} failed to parse"),
        }
    }
}

impl std::error::Error for PcapError {}

impl From<io::Error> for PcapError {
    fn from(e: io::Error) -> Self {
        PcapError::Io(e)
    }
}

/// Read a classic little-endian pcap file back into packets. Frames that
/// do not parse as the simulator's supported formats are reported, not
/// skipped (garbage in should be loud).
pub fn read_pcap<R: Read>(mut r: R) -> Result<Vec<Packet>, PcapError> {
    let mut hdr = [0u8; 24];
    r.read_exact(&mut hdr)?;
    let magic = u32::from_le_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]);
    if magic != MAGIC {
        return Err(PcapError::BadMagic(magic));
    }

    let mut packets = Vec::new();
    let mut idx = 0usize;
    loop {
        let mut rec = [0u8; 16];
        match r.read_exact(&mut rec) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e.into()),
        }
        let ts_sec = u32::from_le_bytes([rec[0], rec[1], rec[2], rec[3]]) as u64;
        let ts_usec = u32::from_le_bytes([rec[4], rec[5], rec[6], rec[7]]) as u64;
        let incl = u32::from_le_bytes([rec[8], rec[9], rec[10], rec[11]]) as usize;
        let mut frame = vec![0u8; incl];
        r.read_exact(&mut frame)?;
        let mut pkt = wire::decode(&frame).map_err(|_| PcapError::BadFrame(idx))?.packet;
        pkt.ts_ns = ts_sec * 1_000_000_000 + ts_usec * 1_000;
        packets.push(pkt);
        idx += 1;
    }
    Ok(packets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::background::TraceConfig;
    use crate::trace::Trace;

    #[test]
    fn roundtrip_preserves_headers_and_timestamps() {
        let trace =
            Trace::background(&TraceConfig { packets: 500, flows: 40, ..Default::default() });
        let mut buf = Vec::new();
        write_pcap(&mut buf, trace.packets()).unwrap();
        let back = read_pcap(&buf[..]).unwrap();
        assert_eq!(back.len(), trace.packets().len());
        for (a, b) in trace.packets().iter().zip(&back) {
            assert_eq!(a.flow_key(), b.flow_key());
            assert_eq!(a.tcp_flags, b.tcp_flags);
            assert_eq!(a.protocol, b.protocol);
            // Timestamps roundtrip at microsecond precision.
            assert_eq!(a.ts_ns / 1_000, b.ts_ns / 1_000);
        }
    }

    #[test]
    fn file_header_is_classic_pcap() {
        let mut buf = Vec::new();
        write_pcap(&mut buf, &[]).unwrap();
        assert_eq!(buf.len(), 24);
        assert_eq!(&buf[0..4], &0xa1b2_c3d4u32.to_le_bytes());
        assert_eq!(u32::from_le_bytes([buf[20], buf[21], buf[22], buf[23]]), 1, "ethernet");
    }

    #[test]
    fn bad_magic_is_rejected() {
        let garbage = [0u8; 40];
        assert!(matches!(read_pcap(&garbage[..]), Err(PcapError::BadMagic(0))));
    }

    #[test]
    fn truncated_record_is_an_io_error() {
        let trace = Trace::background(&TraceConfig { packets: 3, flows: 2, ..Default::default() });
        let mut buf = Vec::new();
        write_pcap(&mut buf, trace.packets()).unwrap();
        buf.truncate(buf.len() - 5);
        assert!(matches!(read_pcap(&buf[..]), Err(PcapError::Io(_))));
    }
}
