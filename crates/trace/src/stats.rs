//! Flow-level workload statistics.
//!
//! The evaluation cares about the *shape* of a workload — how heavy the
//! elephant flows are, how many mice, the protocol split — because those
//! properties drive every overhead and accuracy result. This module
//! quantifies a trace so experiments can assert their workload looks the
//! way the paper's traces look.

use newton_packet::{FlowKey, Packet, Protocol};
use std::collections::HashMap;

/// Per-flow aggregates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowRecord {
    pub packets: u64,
    pub bytes: u64,
    pub first_ns: u64,
    pub last_ns: u64,
}

/// Flow-level view of a packet sequence.
#[derive(Debug, Clone, Default)]
pub struct FlowTable {
    flows: HashMap<FlowKey, FlowRecord>,
}

impl FlowTable {
    /// Aggregate a packet sequence by canonical (direction-agnostic) flow.
    pub fn build(packets: &[Packet]) -> Self {
        let mut flows: HashMap<FlowKey, FlowRecord> = HashMap::new();
        for p in packets {
            let e = flows.entry(p.flow_key().canonical()).or_insert(FlowRecord {
                packets: 0,
                bytes: 0,
                first_ns: p.ts_ns,
                last_ns: p.ts_ns,
            });
            e.packets += 1;
            e.bytes += p.wire_len as u64;
            e.first_ns = e.first_ns.min(p.ts_ns);
            e.last_ns = e.last_ns.max(p.ts_ns);
        }
        FlowTable { flows }
    }

    pub fn len(&self) -> usize {
        self.flows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// The `k` heaviest flows by packet count, descending.
    pub fn top_k(&self, k: usize) -> Vec<(FlowKey, FlowRecord)> {
        let mut v: Vec<_> = self.flows.iter().map(|(&f, &r)| (f, r)).collect();
        v.sort_by(|a, b| b.1.packets.cmp(&a.1.packets).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    /// Fraction of all packets carried by the heaviest `percent`% of flows
    /// — the heavy-tail gauge (CAIDA-like traces: top 10% ≫ 50%).
    pub fn concentration(&self, percent: f64) -> f64 {
        if self.flows.is_empty() {
            return 0.0;
        }
        let mut sizes: Vec<u64> = self.flows.values().map(|r| r.packets).collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        let take = ((sizes.len() as f64 * percent / 100.0).ceil() as usize).max(1);
        let top: u64 = sizes.iter().take(take).sum();
        let total: u64 = sizes.iter().sum();
        top as f64 / total as f64
    }

    /// Mean flow duration in nanoseconds (flows with one packet count 0).
    pub fn mean_duration_ns(&self) -> f64 {
        if self.flows.is_empty() {
            return 0.0;
        }
        let total: u64 = self.flows.values().map(|r| r.last_ns - r.first_ns).sum();
        total as f64 / self.flows.len() as f64
    }
}

/// Protocol mix of a packet sequence, by packets.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProtocolMix {
    pub tcp: u64,
    pub udp: u64,
    pub other: u64,
}

impl ProtocolMix {
    pub fn of(packets: &[Packet]) -> Self {
        let mut mix = ProtocolMix::default();
        for p in packets {
            match p.protocol {
                Protocol::Tcp => mix.tcp += 1,
                Protocol::Udp => mix.udp += 1,
                _ => mix.other += 1,
            }
        }
        mix
    }

    pub fn udp_fraction(&self) -> f64 {
        let total = self.tcp + self.udp + self.other;
        if total == 0 {
            0.0
        } else {
            self.udp as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{caida_like, mawi_like};
    use newton_packet::PacketBuilder;

    #[test]
    fn flow_table_aggregates_both_directions() {
        let fwd = PacketBuilder::new().src_port(10).dst_port(80).ts_ns(5).build();
        let rev = PacketBuilder::new()
            .src_ip(fwd.dst_ip)
            .dst_ip(fwd.src_ip)
            .src_port(80)
            .dst_port(10)
            .ts_ns(9)
            .build();
        let t = FlowTable::build(&[fwd, rev]);
        assert_eq!(t.len(), 1, "forward and reverse share a canonical flow");
        let (_, rec) = t.top_k(1)[0];
        assert_eq!(rec.packets, 2);
        assert_eq!(rec.first_ns, 5);
        assert_eq!(rec.last_ns, 9);
    }

    #[test]
    fn caida_like_is_more_concentrated_than_uniform() {
        let trace = caida_like(5, 20_000);
        let t = FlowTable::build(trace.packets());
        let c = t.concentration(10.0);
        assert!(c > 0.5, "top 10% of CAIDA-like flows must carry >50% of packets (got {c:.2})");
    }

    #[test]
    fn protocol_mix_matches_presets() {
        let c = ProtocolMix::of(caida_like(5, 10_000).packets());
        let m = ProtocolMix::of(mawi_like(5, 10_000).packets());
        assert!(m.udp_fraction() > c.udp_fraction());
        assert_eq!(c.other, 0);
    }

    #[test]
    fn top_k_orders_by_size() {
        let trace = caida_like(5, 5_000);
        let t = FlowTable::build(trace.packets());
        let top = t.top_k(10);
        for w in top.windows(2) {
            assert!(w[0].1.packets >= w[1].1.packets);
        }
    }

    #[test]
    fn empty_input_is_well_defined() {
        let t = FlowTable::build(&[]);
        assert!(t.is_empty());
        assert_eq!(t.concentration(10.0), 0.0);
        assert_eq!(t.mean_duration_ns(), 0.0);
    }
}
