//! Exact counterparts of the sketches, used as ground truth.
//!
//! Fig. 14 measures accuracy and false-positive rate of the sketch-backed
//! pipeline against the true answer. These hash-map structures compute that
//! true answer from the same key stream.

use std::collections::{HashMap, HashSet};

/// Exact per-key counter (ground truth for `reduce(f=sum)`).
#[derive(Debug, Clone, Default)]
pub struct ExactCounter {
    counts: HashMap<u128, u64>,
}

impl ExactCounter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `count` to `key`; returns the new total.
    pub fn update(&mut self, key: u128, count: u64) -> u64 {
        let e = self.counts.entry(key).or_insert(0);
        *e += count;
        *e
    }

    /// Batched [`update`](Self::update): add `count` to every key; the new
    /// totals land in `totals` (cleared first). Ground-truth twin of the
    /// sketches' batched updates, so accuracy experiments feed both sides
    /// from the same batch.
    pub fn update_many(&mut self, keys: &[u128], count: u64, totals: &mut Vec<u64>) {
        totals.clear();
        totals.extend(keys.iter().map(|&k| self.update(k, count)));
    }

    pub fn query(&self, key: u128) -> u64 {
        self.counts.get(&key).copied().unwrap_or(0)
    }

    /// Keys whose count is ≥ `threshold` (the true heavy-hitter set).
    pub fn keys_at_least(&self, threshold: u64) -> HashSet<u128> {
        self.counts.iter().filter(|&(_, &c)| c >= threshold).map(|(&k, _)| k).collect()
    }

    pub fn len(&self) -> usize {
        self.counts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    pub fn clear(&mut self) {
        self.counts.clear();
    }

    /// Iterate over `(key, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u128, u64)> + '_ {
        self.counts.iter().map(|(&k, &v)| (k, v))
    }
}

/// Exact distinct-set tracker (ground truth for `distinct`).
#[derive(Debug, Clone, Default)]
pub struct ExactDistinct {
    seen: HashSet<u128>,
}

impl ExactDistinct {
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a key; returns `true` iff it was new.
    pub fn insert(&mut self, key: u128) -> bool {
        self.seen.insert(key)
    }

    /// Batched [`insert`](Self::insert): `fresh` (cleared first) receives
    /// each key's was-new flag, duplicates within the batch included.
    pub fn insert_many(&mut self, keys: &[u128], fresh: &mut Vec<bool>) {
        fresh.clear();
        fresh.extend(keys.iter().map(|&k| self.insert(k)));
    }

    pub fn contains(&self, key: u128) -> bool {
        self.seen.contains(&key)
    }

    pub fn len(&self) -> usize {
        self.seen.len()
    }

    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }

    pub fn clear(&mut self) {
        self.seen.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = ExactCounter::new();
        assert_eq!(c.update(1, 2), 2);
        assert_eq!(c.update(1, 3), 5);
        assert_eq!(c.query(1), 5);
        assert_eq!(c.query(2), 0);
    }

    #[test]
    fn threshold_set() {
        let mut c = ExactCounter::new();
        c.update(1, 10);
        c.update(2, 3);
        c.update(3, 10);
        let hh = c.keys_at_least(10);
        assert_eq!(hh.len(), 2);
        assert!(hh.contains(&1) && hh.contains(&3));
    }

    #[test]
    fn distinct_insert_semantics() {
        let mut d = ExactDistinct::new();
        assert!(d.insert(7));
        assert!(!d.insert(7));
        assert_eq!(d.len(), 1);
        d.clear();
        assert!(d.is_empty());
    }

    #[test]
    fn batched_wrappers_match_sequential() {
        let keys: Vec<u128> = (0..100).map(|i| (i % 17) as u128 + 1).collect();
        let mut seq_c = ExactCounter::new();
        let mut bat_c = ExactCounter::new();
        let want: Vec<u64> = keys.iter().map(|&k| seq_c.update(k, 3)).collect();
        let mut totals = Vec::new();
        bat_c.update_many(&keys, 3, &mut totals);
        assert_eq!(totals, want);

        let mut seq_d = ExactDistinct::new();
        let mut bat_d = ExactDistinct::new();
        let want: Vec<bool> = keys.iter().map(|&k| seq_d.insert(k)).collect();
        let mut fresh = Vec::new();
        bat_d.insert_many(&keys, &mut fresh);
        assert_eq!(fresh, want);
        assert_eq!(bat_d.len(), seq_d.len());
    }
}
