//! The seeded hash family used by ℍ and the sketches.
//!
//! Tofino's hash engines compute CRC-family functions over selected PHV
//! bits; what matters for Newton is that (a) each ℍ instance can be
//! configured with an *algorithm* (here: a seed selecting a member of the
//! family) and an *output range* (the register-index width), and (b)
//! different seeds behave as independent functions. A SplitMix64-style
//! finalizer over the 128-bit key gives both properties deterministically
//! and cheaply.

/// A member of the hash family: a seed plus an output range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashFn {
    seed: u64,
    /// Output range; results are in `0..range`. Must be ≥ 1.
    range: u32,
}

impl HashFn {
    /// Create a hash function with the given seed and output range.
    ///
    /// # Panics
    /// Panics if `range == 0`.
    #[inline]
    pub fn new(seed: u64, range: u32) -> Self {
        assert!(range >= 1, "hash output range must be >= 1");
        HashFn { seed, range }
    }

    /// The configured output range.
    pub fn range(&self) -> u32 {
        self.range
    }

    /// The configured seed (identifies the family member).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Hash a 128-bit key (the masked global field vector) into `0..range`.
    #[inline]
    pub fn hash(&self, key: u128) -> u32 {
        let h = mix128(key, self.seed);
        // Multiply-shift range reduction avoids modulo bias for power-of-two
        // and non-power-of-two ranges alike.
        (((h as u128) * (self.range as u128)) >> 64) as u32
    }

    /// Hash a whole key batch into `out` (cleared first) — the grouped
    /// entry point of the batch-first execution path: one function's seed
    /// and range stay in registers across the run instead of being
    /// re-loaded per packet. Element `i` equals `self.hash(keys[i])`.
    pub fn hash_many(&self, keys: &[u128], out: &mut Vec<u32>) {
        out.clear();
        out.extend(keys.iter().map(|&k| self.hash(k)));
    }

    /// Hash raw bytes (used by baseline systems hashing flow keys).
    pub fn hash_bytes(&self, bytes: &[u8]) -> u32 {
        let mut acc = self.seed ^ (bytes.len() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            acc = mix64(acc ^ u64::from_le_bytes(word));
        }
        (((acc as u128) * (self.range as u128)) >> 64) as u32
    }
}

/// A [`std::hash::Hasher`] built on [`mix64`]: deterministic across runs,
/// processes, and platforms — unlike the `RandomState` SipHash default —
/// and much cheaper on the small fixed-width keys (query ids, node ids,
/// report keys) the hot paths index by.
///
/// Determinism matters beyond speed: map iteration order feeds derived
/// structures (recompiled execution plans, epoch report sets), and
/// reproducibility of whole-system runs is part of the simulator's
/// contract.
#[derive(Debug, Clone, Copy)]
pub struct Mix64Hasher {
    state: u64,
}

impl std::hash::Hasher for Mix64Hasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.state = mix64(self.state ^ u64::from_le_bytes(word) ^ chunk.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.write_u64(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.write_u64(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.write_u64(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.state = mix64(self.state ^ i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.write_u64(i as u64);
        self.write_u64((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

/// [`std::hash::BuildHasher`] for [`Mix64Hasher`]; every build starts from
/// the same state, so equal keys hash equally in every map and every run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BuildMix64;

impl std::hash::BuildHasher for BuildMix64 {
    type Hasher = Mix64Hasher;

    #[inline]
    fn build_hasher(&self) -> Mix64Hasher {
        Mix64Hasher { state: 0x9E37_79B9_7F4A_7C15 }
    }
}

/// A `HashMap` keyed by the deterministic [`Mix64Hasher`] — the hot-path
/// replacement for SipHash maps. Construct with `FastMap::default()`.
pub type FastMap<K, V> = std::collections::HashMap<K, V, BuildMix64>;

/// The companion `HashSet`. Construct with `FastSet::default()`.
pub type FastSet<T> = std::collections::HashSet<T, BuildMix64>;

/// SplitMix64 finalizer.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mix a 128-bit key with a seed into 64 bits.
#[inline]
pub fn mix128(key: u128, seed: u64) -> u64 {
    let lo = key as u64;
    let hi = (key >> 64) as u64;
    mix64(mix64(lo ^ seed) ^ hi.rotate_left(32) ^ seed.wrapping_mul(0xA24B_AED4_963E_E407))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_stay_in_range() {
        for range in [1u32, 2, 3, 255, 256, 4096, 1 << 20] {
            let h = HashFn::new(7, range);
            for k in 0..1000u128 {
                assert!(h.hash(k * 0x1234_5678_9ABC) < range);
            }
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = HashFn::new(42, 4096);
        let b = HashFn::new(42, 4096);
        for k in 0..100u128 {
            assert_eq!(a.hash(k), b.hash(k));
        }
    }

    #[test]
    fn different_seeds_disagree() {
        let a = HashFn::new(1, 1 << 20);
        let b = HashFn::new(2, 1 << 20);
        let collisions = (0..1000u128).filter(|&k| a.hash(k) == b.hash(k)).count();
        // Independent functions over a 2^20 range should almost never agree.
        assert!(collisions < 5, "too many collisions: {collisions}");
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let h = HashFn::new(9, 16);
        let mut buckets = [0u32; 16];
        for k in 0..16_000u128 {
            buckets[h.hash(k) as usize] += 1;
        }
        for &b in &buckets {
            // Expect 1000 per bucket; allow ±25 %.
            assert!((750..1250).contains(&b), "bucket count {b} far from uniform");
        }
    }

    #[test]
    fn hash_many_matches_scalar() {
        let h = HashFn::new(21, 4096);
        let keys: Vec<u128> = (0..500).map(|i| i as u128 * 0xABCD + 3).collect();
        let mut out = vec![1, 2, 3]; // stale contents must be cleared
        h.hash_many(&keys, &mut out);
        assert_eq!(out, keys.iter().map(|&k| h.hash(k)).collect::<Vec<u32>>());
    }

    #[test]
    fn hash_bytes_matches_length_sensitivity() {
        let h = HashFn::new(3, 1 << 24);
        assert_ne!(h.hash_bytes(b"abc"), h.hash_bytes(b"abcd"));
        assert_eq!(h.hash_bytes(b"abc"), h.hash_bytes(b"abc"));
    }

    #[test]
    #[should_panic(expected = "range must be >= 1")]
    fn zero_range_panics() {
        let _ = HashFn::new(0, 0);
    }

    #[test]
    fn fast_map_is_deterministic_and_order_stable() {
        let build = |keys: &[u64]| {
            let mut m: FastMap<u64, usize> = FastMap::default();
            for (i, &k) in keys.iter().enumerate() {
                m.insert(k, i);
            }
            m.keys().copied().collect::<Vec<u64>>()
        };
        let keys: Vec<u64> = (0..200).map(|i| i * 7 + 3).collect();
        // Same insertion sequence → same iteration order, every time.
        assert_eq!(build(&keys), build(&keys));
        let mut set: FastSet<u64> = FastSet::default();
        assert!(set.insert(42));
        assert!(!set.insert(42));
        assert!(set.contains(&42));
    }

    #[test]
    fn mix64_hasher_separates_nearby_keys() {
        use std::hash::{BuildHasher, Hasher};
        let hash_one = |k: u64| BuildMix64.hash_one(k);
        let hashes: std::collections::HashSet<u64> = (0..10_000u64).map(hash_one).collect();
        assert_eq!(hashes.len(), 10_000, "sequential keys must not collide");
        // Byte-stream writes are length-sensitive.
        let mut a = BuildMix64.build_hasher();
        a.write(b"ab");
        let mut b = BuildMix64.build_hasher();
        b.write(b"abc");
        assert_ne!(a.finish(), b.finish());
    }
}
