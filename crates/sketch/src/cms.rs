//! Count-Min sketch backing the `reduce(f=sum)` primitive.
//!
//! On the data plane, "reduce could leverage several module suites to
//! implement a multi-array CM" (Fig. 3): each row is one 𝕊 register array
//! updated with the `+` SALU at an independent hash index, and ℝ takes the
//! running minimum across rows via the global result. This struct is the
//! reference implementation.

use crate::hash::HashFn;

/// A Count-Min sketch with `depth` rows of `width` counters.
///
/// ```
/// use newton_sketch::CountMinSketch;
/// let mut cm = CountMinSketch::new(2, 1024, 7);
/// cm.update(0xBEEF, 3);
/// cm.update(0xBEEF, 2);
/// assert!(cm.query(0xBEEF) >= 5, "never underestimates");
/// ```
#[derive(Debug, Clone)]
pub struct CountMinSketch {
    rows: Vec<Vec<u32>>,
    hashes: Vec<HashFn>,
    width: u32,
    updates: u64,
}

impl CountMinSketch {
    /// Create a sketch with `depth` rows × `width` counters, seeded from
    /// `seed`.
    ///
    /// # Panics
    /// Panics if `depth == 0` or `width == 0`.
    pub fn new(depth: usize, width: u32, seed: u64) -> Self {
        assert!(depth > 0, "CM sketch needs at least one row");
        assert!(width > 0, "CM sketch needs at least one counter per row");
        CountMinSketch {
            rows: vec![vec![0u32; width as usize]; depth],
            hashes: (0..depth)
                .map(|i| HashFn::new(seed.wrapping_add(0x5151 * i as u64), width))
                .collect(),
            width,
            updates: 0,
        }
    }

    pub fn depth(&self) -> usize {
        self.rows.len()
    }

    pub fn width(&self) -> u32 {
        self.width
    }

    /// Add `count` to a key and return the *post-update estimate* — the
    /// minimum across rows, which is what the query's ℝ threshold check
    /// sees after the packet's update.
    pub fn update(&mut self, key: u128, count: u32) -> u32 {
        self.updates += 1;
        let mut est = u32::MAX;
        for (row, h) in self.rows.iter_mut().zip(&self.hashes) {
            let idx = h.hash(key) as usize;
            row[idx] = row[idx].saturating_add(count);
            est = est.min(row[idx]);
        }
        est
    }

    /// Batched [`update`](Self::update): add `count` to every key and
    /// write each key's post-update estimate into `est` (cleared first).
    ///
    /// Row-major schedule — each row is updated across the whole key batch
    /// before the next row — so a row's counters and hash seed stay hot
    /// instead of being re-fetched per key. Results are bit-identical to
    /// the sequential loop even with duplicate keys in the batch: within
    /// any (row, counter) the update order is key order under both
    /// schedules, and a key's estimate reads each row immediately after
    /// its own update there.
    pub fn update_many(&mut self, keys: &[u128], count: u32, est: &mut Vec<u32>) {
        self.updates += keys.len() as u64;
        est.clear();
        est.resize(keys.len(), u32::MAX);
        for (row, h) in self.rows.iter_mut().zip(&self.hashes) {
            for (e, &key) in est.iter_mut().zip(keys) {
                let idx = h.hash(key) as usize;
                row[idx] = row[idx].saturating_add(count);
                *e = (*e).min(row[idx]);
            }
        }
    }

    /// Point query: the count-min estimate for a key.
    pub fn query(&self, key: u128) -> u32 {
        self.rows
            .iter()
            .zip(&self.hashes)
            .map(|(row, h)| row[h.hash(key) as usize])
            .min()
            .unwrap_or(0)
    }

    /// Batched [`query`](Self::query), row-major like
    /// [`update_many`](Self::update_many); `out` is cleared first.
    pub fn query_many(&self, keys: &[u128], out: &mut Vec<u32>) {
        out.clear();
        out.resize(keys.len(), u32::MAX);
        for (row, h) in self.rows.iter().zip(&self.hashes) {
            for (o, &key) in out.iter_mut().zip(keys) {
                *o = (*o).min(row[h.hash(key) as usize]);
            }
        }
    }

    /// Reset all counters (100 ms epoch reset).
    pub fn clear(&mut self) {
        for row in &mut self.rows {
            row.fill(0);
        }
        self.updates = 0;
    }

    /// Number of updates since the last clear.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Total stateful memory in 32-bit register words.
    pub fn register_words(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_underestimates() {
        let mut cm = CountMinSketch::new(3, 128, 77);
        let keys: Vec<(u128, u32)> =
            (0..300).map(|i| (i as u128 * 131 + 7, (i % 5) as u32 + 1)).collect();
        let mut truth = std::collections::HashMap::new();
        for &(k, c) in &keys {
            cm.update(k, c);
            *truth.entry(k).or_insert(0u32) += c;
        }
        for (&k, &t) in &truth {
            assert!(cm.query(k) >= t, "CM underestimated key {k}: {} < {t}", cm.query(k));
        }
    }

    #[test]
    fn exact_when_not_loaded() {
        let mut cm = CountMinSketch::new(4, 1 << 16, 5);
        for i in 0..50u128 {
            cm.update(i + 1, 2);
        }
        for i in 0..50u128 {
            assert_eq!(cm.query(i + 1), 2);
        }
        assert_eq!(cm.query(0xDEAD), 0);
    }

    #[test]
    fn update_returns_post_update_estimate() {
        let mut cm = CountMinSketch::new(2, 1024, 9);
        assert_eq!(cm.update(99, 1), 1);
        assert_eq!(cm.update(99, 1), 2);
        assert_eq!(cm.update(99, 3), 5);
    }

    #[test]
    fn saturating_counters_do_not_wrap() {
        let mut cm = CountMinSketch::new(1, 4, 0);
        cm.update(1, u32::MAX);
        assert_eq!(cm.update(1, 10), u32::MAX);
    }

    #[test]
    fn clear_resets() {
        let mut cm = CountMinSketch::new(2, 64, 1);
        cm.update(5, 9);
        cm.clear();
        assert_eq!(cm.query(5), 0);
        assert_eq!(cm.updates(), 0);
    }

    #[test]
    fn narrower_sketch_overestimates_more() {
        // With the same workload, a 32-counter sketch must show at least as
        // much total error as a 4096-counter sketch — the memory/accuracy
        // trade-off behind Fig. 14.
        let mut narrow = CountMinSketch::new(2, 32, 3);
        let mut wide = CountMinSketch::new(2, 4096, 3);
        let keys: Vec<u128> = (0..500).map(|i| i as u128 * 977 + 13).collect();
        for &k in &keys {
            narrow.update(k, 1);
            wide.update(k, 1);
        }
        let err_narrow: u64 = keys.iter().map(|&k| (narrow.query(k) - 1) as u64).sum();
        let err_wide: u64 = keys.iter().map(|&k| (wide.query(k) - 1) as u64).sum();
        assert!(err_narrow > err_wide, "narrow {err_narrow} <= wide {err_wide}");
    }

    #[test]
    fn register_word_accounting() {
        assert_eq!(CountMinSketch::new(3, 256, 0).register_words(), 768);
    }

    #[test]
    fn batched_update_matches_sequential() {
        // Duplicate-heavy batch: the row-major schedule must reproduce the
        // sequential post-update estimates and final counters exactly.
        let keys: Vec<u128> = (0..257).map(|i| (i % 41) as u128 * 977 + 13).collect();
        let mut seq = CountMinSketch::new(3, 64, 7);
        let mut bat = CountMinSketch::new(3, 64, 7);
        let expected: Vec<u32> = keys.iter().map(|&k| seq.update(k, 2)).collect();
        let mut est = Vec::new();
        bat.update_many(&keys, 2, &mut est);
        assert_eq!(est, expected);
        assert_eq!(bat.updates(), seq.updates());
        let mut queried = Vec::new();
        bat.query_many(&keys, &mut queried);
        let seq_q: Vec<u32> = keys.iter().map(|&k| seq.query(k)).collect();
        assert_eq!(queried, seq_q);
    }
}
