//! Bloom filter backing the `distinct` primitive.
//!
//! The data plane realizes a Bloom filter as `k` register arrays (one 𝕊
//! suite each), each updated with the `|` SALU at an independent hash index.
//! This struct is the reference implementation the pipeline's register-level
//! execution is tested against, and the structure used by accuracy
//! experiments when a query runs "on CPU".

use crate::hash::HashFn;

/// A Bloom filter over `k` arrays of `m` bits each.
///
/// ```
/// use newton_sketch::BloomFilter;
/// let mut bf = BloomFilter::new(3, 1024, 42);
/// assert!(bf.insert(0xDEAD), "first insert is fresh");
/// assert!(!bf.insert(0xDEAD), "re-insert is not");
/// assert!(bf.contains(0xDEAD));
/// ```
///
/// Using one array per hash function (rather than one shared array) matches
/// the data-plane layout: each hash function owns a register array touched
/// once per packet, which is the transactional-ALU constraint on Tofino.
#[derive(Debug, Clone)]
pub struct BloomFilter {
    arrays: Vec<Vec<u32>>,
    hashes: Vec<HashFn>,
    bits_per_array: u32,
    inserted: u64,
}

impl BloomFilter {
    /// Create a filter with `k` hash functions over `bits_per_array` bits
    /// each, seeded from `seed`.
    ///
    /// # Panics
    /// Panics if `k == 0` or `bits_per_array == 0`.
    pub fn new(k: usize, bits_per_array: u32, seed: u64) -> Self {
        assert!(k > 0, "Bloom filter needs at least one hash function");
        assert!(bits_per_array > 0, "Bloom filter needs at least one bit");
        let words = bits_per_array.div_ceil(32) as usize;
        BloomFilter {
            arrays: vec![vec![0u32; words]; k],
            hashes: (0..k)
                .map(|i| HashFn::new(seed.wrapping_add(i as u64), bits_per_array))
                .collect(),
            bits_per_array,
            inserted: 0,
        }
    }

    /// Number of hash functions.
    pub fn k(&self) -> usize {
        self.hashes.len()
    }

    /// Bits per array.
    pub fn bits_per_array(&self) -> u32 {
        self.bits_per_array
    }

    /// Insert a key. Returns `true` if the key was (possibly) new — i.e. at
    /// least one bit flipped — and `false` if it was definitely already
    /// present-or-colliding. This return value is exactly the state result
    /// the data-plane `distinct` uses to decide whether to continue a query.
    pub fn insert(&mut self, key: u128) -> bool {
        let mut fresh = false;
        for (arr, h) in self.arrays.iter_mut().zip(&self.hashes) {
            let bit = h.hash(key);
            let (w, b) = (bit / 32, bit % 32);
            let word = &mut arr[w as usize];
            if *word & (1 << b) == 0 {
                fresh = true;
                *word |= 1 << b;
            }
        }
        self.inserted += 1;
        fresh
    }

    /// Batched [`insert`](Self::insert): `fresh` (cleared first) receives
    /// each key's at-least-one-bit-flipped flag.
    ///
    /// Array-major schedule — each register array is walked across the
    /// whole key batch before the next — keeping the array and its hash
    /// seed hot. Bit-identical to the sequential loop even with duplicate
    /// keys: per (array, word) the write order is key order under both
    /// schedules, and a key observes each array right before its own
    /// write there.
    pub fn insert_many(&mut self, keys: &[u128], fresh: &mut Vec<bool>) {
        self.inserted += keys.len() as u64;
        fresh.clear();
        fresh.resize(keys.len(), false);
        for (arr, h) in self.arrays.iter_mut().zip(&self.hashes) {
            for (f, &key) in fresh.iter_mut().zip(keys) {
                let bit = h.hash(key);
                let (w, b) = (bit / 32, bit % 32);
                let word = &mut arr[w as usize];
                if *word & (1 << b) == 0 {
                    *f = true;
                    *word |= 1 << b;
                }
            }
        }
    }

    /// Batched [`contains`](Self::contains), array-major like
    /// [`insert_many`](Self::insert_many); `out` is cleared first.
    pub fn contains_many(&self, keys: &[u128], out: &mut Vec<bool>) {
        out.clear();
        out.resize(keys.len(), true);
        for (arr, h) in self.arrays.iter().zip(&self.hashes) {
            for (o, &key) in out.iter_mut().zip(keys) {
                let bit = h.hash(key);
                *o &= arr[(bit / 32) as usize] & (1 << (bit % 32)) != 0;
            }
        }
    }

    /// Query membership without inserting.
    pub fn contains(&self, key: u128) -> bool {
        self.arrays.iter().zip(&self.hashes).all(|(arr, h)| {
            let bit = h.hash(key);
            arr[(bit / 32) as usize] & (1 << (bit % 32)) != 0
        })
    }

    /// Reset all bits (the 100 ms epoch reset in §6 "values ... are
    /// evaluated and reset every 100ms").
    pub fn clear(&mut self) {
        for arr in &mut self.arrays {
            arr.fill(0);
        }
        self.inserted = 0;
    }

    /// Total inserts since the last clear.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// The theoretical false-positive probability given `n` distinct
    /// inserted keys: `(1 - e^{-n/m})^k` with per-array occupancy.
    pub fn theoretical_fpr(&self, n: u64) -> f64 {
        let m = self.bits_per_array as f64;
        (1.0 - (-(n as f64) / m).exp()).powi(self.k() as i32)
    }

    /// Total stateful memory in 32-bit register words (for resource
    /// accounting).
    pub fn register_words(&self) -> usize {
        self.arrays.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut bf = BloomFilter::new(3, 1024, 11);
        let keys: Vec<u128> = (0..200).map(|i| (i as u128) * 0x9E37 + 5).collect();
        for &k in &keys {
            bf.insert(k);
        }
        for &k in &keys {
            assert!(bf.contains(k), "false negative for {k}");
        }
    }

    #[test]
    fn first_insert_reports_fresh() {
        let mut bf = BloomFilter::new(2, 4096, 1);
        assert!(bf.insert(42));
        assert!(!bf.insert(42), "re-insert must not report fresh");
    }

    #[test]
    fn clear_resets_state() {
        let mut bf = BloomFilter::new(2, 256, 1);
        bf.insert(7);
        bf.clear();
        assert!(!bf.contains(7));
        assert_eq!(bf.inserted(), 0);
        assert!(bf.insert(7));
    }

    #[test]
    fn fpr_grows_with_load_and_tracks_theory() {
        let mut bf = BloomFilter::new(2, 1024, 3);
        for i in 0..600u128 {
            bf.insert(i.wrapping_mul(0xABCDEF) + 1);
        }
        // Probe keys never inserted.
        let probes = 4000;
        let fp = (0..probes).filter(|i| bf.contains(0xF000_0000_0000 + *i as u128)).count();
        let measured = fp as f64 / probes as f64;
        let theory = bf.theoretical_fpr(600);
        assert!(
            (measured - theory).abs() < 0.12,
            "measured FPR {measured:.3} far from theoretical {theory:.3}"
        );
    }

    #[test]
    fn small_filter_saturates_to_all_positive() {
        let mut bf = BloomFilter::new(1, 8, 0);
        for i in 0..1000u128 {
            bf.insert(i * 31 + 7);
        }
        let positives = (0..100).filter(|i| bf.contains(0xBEEF + *i as u128)).count();
        assert!(positives > 90, "saturated filter should answer mostly-positive");
    }

    #[test]
    fn register_word_accounting() {
        let bf = BloomFilter::new(3, 1024, 0);
        assert_eq!(bf.register_words(), 3 * 32);
    }

    #[test]
    fn batched_insert_matches_sequential() {
        // Duplicates inside one batch: only the first occurrence may
        // report fresh, exactly like the sequential loop.
        let keys: Vec<u128> = (0..300).map(|i| (i % 73) as u128 * 0x9E37 + 5).collect();
        let mut seq = BloomFilter::new(3, 512, 11);
        let mut bat = BloomFilter::new(3, 512, 11);
        let expected: Vec<bool> = keys.iter().map(|&k| seq.insert(k)).collect();
        let mut fresh = Vec::new();
        bat.insert_many(&keys, &mut fresh);
        assert_eq!(fresh, expected);
        assert_eq!(bat.inserted(), seq.inserted());
        let probes: Vec<u128> = (0..100).map(|i| 0xF000_0000 + i as u128).collect();
        let mut got = Vec::new();
        bat.contains_many(&probes, &mut got);
        let want: Vec<bool> = probes.iter().map(|&k| seq.contains(k)).collect();
        assert_eq!(got, want);
    }
}
