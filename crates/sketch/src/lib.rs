//! Probabilistic data structures used by Newton's state bank (𝕊).
//!
//! The paper adopts "the sketch-based implementation of stateful primitives,
//! e.g. using Bloom Filter for `distinct` and Count-Min Sketch for the sum
//! function of `reduce`" (§4.1). This crate provides:
//!
//! * [`hash`] — the seeded hash family ℍ draws from: deterministic 64-bit
//!   mixers usable as independent hash functions with a configurable output
//!   range (the "reconfigurable elements of ℍ").
//! * [`bloom`] — a Bloom filter over `u32` register words (one register
//!   array per hash function, matching how the data plane builds a BF from
//!   𝕊 suites with the `|` SALU).
//! * [`cms`] — a Count-Min sketch, again expressed as rows of register
//!   arrays updated with the `+` SALU.
//! * [`exact`] — exact (hash-map) counterparts used as ground truth by the
//!   accuracy experiments (Fig. 14).
//!
//! All structures are deterministic given their seeds, and each exposes
//! batched multi-key entry points (`hash_many`, `update_many`,
//! `insert_many`, …) that group work per table row/array for the
//! batch-first execution path — bit-identical to their sequential loops.

pub mod bloom;
pub mod cms;
pub mod exact;
pub mod hash;

pub use bloom::BloomFilter;
pub use cms::CountMinSketch;
pub use exact::{ExactCounter, ExactDistinct};
pub use hash::{BuildMix64, FastMap, FastSet, HashFn, Mix64Hasher};
