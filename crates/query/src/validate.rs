//! Static query validation: reject intents the compiler cannot realize
//! *before* they reach the data plane, with actionable errors.
//!
//! The builder's panics catch structural mistakes at construction; this
//! pass catches *semantic* ones — a `ResultFilter` with no aggregation to
//! filter, merges over mismatched report keys, empty masks, thresholds
//! that can never fire.

use crate::ast::{CmpOp, Merge, Primitive, Query};
use std::fmt;

/// A validation failure, pointing at the offending branch/primitive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// `ResultFilter` appears before any `reduce`/`distinct` produced a
    /// result to filter.
    ResultFilterWithoutAggregate { branch: usize, primitive: usize },
    /// A `map`/`distinct`/`reduce` with an empty key list.
    EmptyKeys { branch: usize, primitive: usize },
    /// A field expression whose prefix is 0 bits (selects nothing).
    EmptyMask { branch: usize, primitive: usize },
    /// A filter comparing a field against a value wider than the field.
    ValueOverflowsField { branch: usize, primitive: usize, width: u32, value: u64 },
    /// A merged query whose branches report different key *widths* —
    /// per-key merging would compare apples to oranges.
    MergeKeyWidthMismatch { width_a: u32, width_b: u32 },
    /// A branch with no primitives at all.
    EmptyBranch { branch: usize },
    /// `count >= 0`-style thresholds match everything.
    VacuousThreshold { branch: usize, primitive: usize },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::ResultFilterWithoutAggregate { branch, primitive } => write!(
                f,
                "branch {branch}, primitive {primitive}: result filter has no preceding reduce/distinct"
            ),
            ValidationError::EmptyKeys { branch, primitive } => {
                write!(f, "branch {branch}, primitive {primitive}: empty key list")
            }
            ValidationError::EmptyMask { branch, primitive } => {
                write!(f, "branch {branch}, primitive {primitive}: zero-bit field prefix selects nothing")
            }
            ValidationError::ValueOverflowsField { branch, primitive, width, value } => write!(
                f,
                "branch {branch}, primitive {primitive}: value {value} does not fit a {width}-bit field"
            ),
            ValidationError::MergeKeyWidthMismatch { width_a, width_b } => write!(
                f,
                "merge compares {width_a}-bit keys against {width_b}-bit keys"
            ),
            ValidationError::EmptyBranch { branch } => write!(f, "branch {branch} is empty"),
            ValidationError::VacuousThreshold { branch, primitive } => write!(
                f,
                "branch {branch}, primitive {primitive}: threshold matches every value (always true)"
            ),
        }
    }
}

impl std::error::Error for ValidationError {}

/// Validate a query; returns every problem found (empty = valid).
pub fn validate(query: &Query) -> Vec<ValidationError> {
    let mut errors = Vec::new();

    for (b, branch) in query.branches.iter().enumerate() {
        if branch.primitives.is_empty() {
            errors.push(ValidationError::EmptyBranch { branch: b });
            continue;
        }
        let mut has_aggregate = false;
        for (p, prim) in branch.primitives.iter().enumerate() {
            match prim {
                Primitive::Filter(preds) => {
                    for pred in preds {
                        if pred.expr.prefix == 0 {
                            errors.push(ValidationError::EmptyMask { branch: b, primitive: p });
                        }
                        let width = pred.expr.prefix.min(pred.expr.field.width());
                        if width < 64 && pred.value >= (1u64 << width) {
                            errors.push(ValidationError::ValueOverflowsField {
                                branch: b,
                                primitive: p,
                                width,
                                value: pred.value,
                            });
                        }
                    }
                }
                Primitive::Map(keys) | Primitive::Distinct(keys) => {
                    if keys.is_empty() {
                        errors.push(ValidationError::EmptyKeys { branch: b, primitive: p });
                    }
                    if keys.iter().any(|k| k.prefix == 0) {
                        errors.push(ValidationError::EmptyMask { branch: b, primitive: p });
                    }
                    if matches!(prim, Primitive::Distinct(_)) {
                        has_aggregate = true;
                    }
                }
                Primitive::Reduce { keys, .. } => {
                    if keys.is_empty() {
                        errors.push(ValidationError::EmptyKeys { branch: b, primitive: p });
                    }
                    has_aggregate = true;
                }
                Primitive::ResultFilter { op, value } => {
                    if !has_aggregate {
                        errors.push(ValidationError::ResultFilterWithoutAggregate {
                            branch: b,
                            primitive: p,
                        });
                    }
                    if *op == CmpOp::Ge && *value == 0 {
                        errors.push(ValidationError::VacuousThreshold { branch: b, primitive: p });
                    }
                }
            }
        }
    }

    if let Some(Merge::Combine { .. } | Merge::And { .. }) = &query.merge {
        let widths: Vec<u32> = query
            .branches
            .iter()
            .filter_map(|br| br.report_keys().first().map(|e| e.field.width()))
            .collect();
        for w in widths.windows(2) {
            if w[0] != w[1] {
                errors
                    .push(ValidationError::MergeKeyWidthMismatch { width_a: w[0], width_b: w[1] });
            }
        }
    }

    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{FieldExpr, ReduceFunc};
    use crate::builder::QueryBuilder;
    use crate::catalog;
    use newton_packet::Field;

    #[test]
    fn catalog_queries_are_all_valid() {
        for q in catalog::all_queries() {
            let errors = validate(&q);
            assert!(errors.is_empty(), "{}: {errors:?}", q.name);
        }
    }

    #[test]
    fn result_filter_without_aggregate_is_rejected() {
        let q =
            QueryBuilder::new("bad").filter_eq(Field::Proto, 6).result_filter(CmpOp::Ge, 5).build();
        assert!(matches!(
            validate(&q)[..],
            [ValidationError::ResultFilterWithoutAggregate { branch: 0, primitive: 1 }]
        ));
    }

    #[test]
    fn oversized_filter_value_is_rejected() {
        let q = QueryBuilder::new("bad").filter_eq(Field::Proto, 999).build();
        assert!(validate(&q).iter().any(|e| matches!(
            e,
            ValidationError::ValueOverflowsField { width: 8, value: 999, .. }
        )));
    }

    #[test]
    fn zero_prefix_mask_is_rejected() {
        let q = QueryBuilder::new("bad")
            .map_exprs(vec![FieldExpr::prefix(Field::SrcIp, 0)])
            .reduce(&[Field::SrcIp], ReduceFunc::Count)
            .build();
        assert!(validate(&q).iter().any(|e| matches!(e, ValidationError::EmptyMask { .. })));
    }

    #[test]
    fn vacuous_threshold_is_flagged() {
        let q = QueryBuilder::new("bad")
            .reduce(&[Field::DstIp], ReduceFunc::Count)
            .result_filter(CmpOp::Ge, 0)
            .build();
        assert!(validate(&q).iter().any(|e| matches!(e, ValidationError::VacuousThreshold { .. })));
    }

    #[test]
    fn merge_width_mismatch_is_flagged() {
        use crate::ast::MergeOp;
        let q = QueryBuilder::new("bad")
            .reduce(&[Field::DstIp], ReduceFunc::Count) // 32-bit key
            .branch()
            .reduce(&[Field::DstPort], ReduceFunc::Count) // 16-bit key
            .merge_combine(MergeOp::Min, CmpOp::Ge, 1)
            .build();
        assert!(validate(&q).iter().any(|e| matches!(
            e,
            ValidationError::MergeKeyWidthMismatch { width_a: 32, width_b: 16 }
        )));
    }

    #[test]
    fn multiple_errors_are_all_reported() {
        let q = QueryBuilder::new("bad")
            .filter_eq(Field::TcpFlags, 4096)
            .result_filter(CmpOp::Ge, 0)
            .build();
        let errors = validate(&q);
        assert!(errors.len() >= 3, "expected 3+ errors, got {errors:?}");
    }
}
