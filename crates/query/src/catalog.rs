//! The nine evaluation queries (Table 2 of the paper).
//!
//! The paper takes its queries from the open-source Sonata repository; the
//! versions here follow the same intents and primitive structure, expressed
//! in this crate's AST. Thresholds are per-100 ms-epoch defaults chosen to
//! separate the injected attack traffic from the synthetic background
//! (`newton-trace` calibrates its injectors against these).
//!
//! | Query | Intent |
//! |-------|--------|
//! | Q1 | Monitor new TCP connections |
//! | Q2 | Monitor hosts under SSH brute-force attacks |
//! | Q3 | Monitor super spreaders |
//! | Q4 | Monitor hosts performing port scanning |
//! | Q5 | Monitor hosts under UDP DDoS attacks |
//! | Q6 | Monitor hosts under SYN flood attacks |
//! | Q7 | Monitor completed TCP connections |
//! | Q8 | Monitor hosts under Slowloris attacks |
//! | Q9 | Monitor hosts that do not create TCP connections after DNS |

use crate::ast::{CmpOp, MergeOp, Query, ReduceFunc};
use crate::builder::QueryBuilder;
use newton_packet::Field;

/// TCP protocol number.
const TCP: u64 = 6;
/// UDP protocol number.
const UDP: u64 = 17;
/// Pure SYN flags byte.
const SYN: u64 = 0x02;
/// FIN+ACK flags byte (connection teardown data point).
const FINACK: u64 = 0x11;

/// Default report thresholds (per 100 ms epoch). Public so that trace
/// generation and experiments can calibrate against them.
pub mod thresholds {
    /// Q1: new connections per destination host.
    pub const NEW_TCP: u64 = 40;
    /// Q2: distinct SSH login attempts per server.
    pub const SSH_BRUTE: u64 = 20;
    /// Q3: distinct destinations per source.
    pub const SUPER_SPREADER: u64 = 50;
    /// Q4: distinct destination ports probed per source.
    pub const PORT_SCAN: u64 = 30;
    /// Q5: distinct UDP sources per destination.
    pub const UDP_DDOS: u64 = 50;
    /// Q6: min(SYN count, distinct SYN sources, distinct SYN sports).
    pub const SYN_FLOOD: u64 = 40;
    /// Q7: completed connections per destination.
    pub const COMPLETED: u64 = 10;
    /// Q8: minimum connection count for a Slowloris suspect...
    pub const SLOWLORIS_CONNS: u64 = 30;
    /// Q8: ...with at most this much byte volume.
    pub const SLOWLORIS_BYTES: u64 = 6000;
    /// Q9: minimum DNS responses received.
    pub const DNS_RESP: u64 = 1;
}

/// Q1 — monitor new TCP connections: hosts receiving many connection
/// attempts (pure SYNs) in an epoch.
pub fn q1_new_tcp() -> Query {
    QueryBuilder::new("q1_new_tcp")
        .filter_eq(Field::Proto, TCP)
        .filter_eq(Field::TcpFlags, SYN)
        .map(&[Field::DstIp])
        .reduce(&[Field::DstIp], ReduceFunc::Count)
        .result_filter(CmpOp::Ge, thresholds::NEW_TCP)
        .build()
}

/// Q2 — monitor hosts under SSH brute-force attacks: servers seeing many
/// distinct (client, packet-length) SSH attempts. Brute-force tools emit
/// uniform-length login packets, so distinct lengths stay low for benign
/// traffic while attempt counts spike under attack.
pub fn q2_ssh_brute() -> Query {
    QueryBuilder::new("q2_ssh_brute")
        .filter_eq(Field::Proto, TCP)
        .filter_eq(Field::DstPort, 22)
        .map(&[Field::DstIp, Field::SrcIp, Field::PktLen])
        .distinct(&[Field::DstIp, Field::SrcIp, Field::PktLen])
        .map(&[Field::DstIp])
        .reduce(&[Field::DstIp], ReduceFunc::Count)
        .result_filter(CmpOp::Ge, thresholds::SSH_BRUTE)
        .build()
}

/// Q3 — monitor super spreaders: sources contacting many distinct
/// destinations.
pub fn q3_super_spreader() -> Query {
    QueryBuilder::new("q3_super_spreader")
        .map(&[Field::SrcIp, Field::DstIp])
        .distinct(&[Field::SrcIp, Field::DstIp])
        .map(&[Field::SrcIp])
        .reduce(&[Field::SrcIp], ReduceFunc::Count)
        .result_filter(CmpOp::Ge, thresholds::SUPER_SPREADER)
        .build()
}

/// Q4 — monitor hosts under port scanning: sources probing many distinct
/// destination ports with SYNs.
pub fn q4_port_scan() -> Query {
    QueryBuilder::new("q4_port_scan")
        .filter_eq(Field::Proto, TCP)
        .filter_eq(Field::TcpFlags, SYN)
        .map(&[Field::SrcIp, Field::DstPort])
        .distinct(&[Field::SrcIp, Field::DstPort])
        .map(&[Field::SrcIp])
        .reduce(&[Field::SrcIp], ReduceFunc::Count)
        .result_filter(CmpOp::Ge, thresholds::PORT_SCAN)
        .build()
}

/// Q5 — monitor hosts under UDP DDoS: destinations receiving UDP traffic
/// from many distinct sources.
pub fn q5_udp_ddos() -> Query {
    QueryBuilder::new("q5_udp_ddos")
        .filter_eq(Field::Proto, UDP)
        .map(&[Field::DstIp, Field::SrcIp])
        .distinct(&[Field::DstIp, Field::SrcIp])
        .map(&[Field::DstIp])
        .reduce(&[Field::DstIp], ReduceFunc::Count)
        .result_filter(CmpOp::Ge, thresholds::UDP_DDOS)
        .build()
}

/// Q6 — monitor hosts under SYN flood attacks (the Fig. 6 query). Three
/// parallel sub-queries over the *same* SYN stream — raw SYN count, distinct
/// SYN sources, distinct SYN source ports — merged with `min` per victim:
/// a true flood scores high on all three. Because every branch consumes the
/// same packets, the merge runs entirely on the data plane, which is why Q6
/// multiplexes modules so effectively (Fig. 15).
pub fn q6_syn_flood() -> Query {
    QueryBuilder::new("q6_syn_flood")
        // Branch 0: SYNs per victim.
        .filter_eq(Field::Proto, TCP)
        .filter_eq(Field::TcpFlags, SYN)
        .map(&[Field::DstIp])
        .reduce(&[Field::DstIp], ReduceFunc::Count)
        .branch()
        // Branch 1: distinct SYN sources per victim.
        .filter_eq(Field::Proto, TCP)
        .filter_eq(Field::TcpFlags, SYN)
        .distinct(&[Field::DstIp, Field::SrcIp])
        .reduce(&[Field::DstIp], ReduceFunc::Count)
        .branch()
        // Branch 2: distinct SYN source ports per victim (spoofed floods
        // randomize sport).
        .filter_eq(Field::Proto, TCP)
        .filter_eq(Field::TcpFlags, SYN)
        .distinct(&[Field::DstIp, Field::SrcPort])
        .reduce(&[Field::DstIp], ReduceFunc::Count)
        .merge_combine(MergeOp::Min, CmpOp::Ge, thresholds::SYN_FLOOD)
        .build()
}

/// Q7 — monitor completed TCP connections: destinations where connections
/// both open (SYN) and close (FIN+ACK) within the epoch. The two branches
/// consume *different* packets, so the merge is completed by the analyzer.
pub fn q7_completed_tcp() -> Query {
    QueryBuilder::new("q7_completed_tcp")
        .filter_eq(Field::Proto, TCP)
        .filter_eq(Field::TcpFlags, SYN)
        .map(&[Field::DstIp])
        .reduce(&[Field::DstIp], ReduceFunc::Count)
        .branch()
        .filter_eq(Field::Proto, TCP)
        .filter_eq(Field::TcpFlags, FINACK)
        .map(&[Field::DstIp])
        .reduce(&[Field::DstIp], ReduceFunc::Count)
        .merge_combine(MergeOp::Min, CmpOp::Ge, thresholds::COMPLETED)
        .build()
}

/// Q8 — monitor hosts under Slowloris attacks: many distinct connections
/// but little byte volume. Branch 0 counts distinct connections per server
/// (with an on-plane ≥ threshold); branch 1 sums bytes per server; the merge
/// requires connections ≥ T₁ *and* bytes ≤ T₂ (the `≤` side is non-monotone
/// and resolves at epoch end on the analyzer).
pub fn q8_slowloris() -> Query {
    QueryBuilder::new("q8_slowloris")
        // Branch 0: distinct connections per web server.
        .filter_eq(Field::Proto, TCP)
        .filter_eq(Field::DstPort, 80)
        .map(&[Field::DstIp, Field::SrcIp, Field::SrcPort])
        .distinct(&[Field::DstIp, Field::SrcIp, Field::SrcPort])
        .map(&[Field::DstIp])
        .reduce(&[Field::DstIp], ReduceFunc::Count)
        .branch()
        // Branch 1: byte volume per web server.
        .filter_eq(Field::Proto, TCP)
        .filter_eq(Field::DstPort, 80)
        .map(&[Field::DstIp, Field::PktLen])
        .reduce(&[Field::DstIp], ReduceFunc::SumField(Field::PktLen))
        .merge_and(
            (CmpOp::Ge, thresholds::SLOWLORIS_CONNS),
            (CmpOp::Le, thresholds::SLOWLORIS_BYTES),
        )
        .build()
}

/// Q9 — monitor hosts that receive DNS responses but never open TCP
/// connections afterwards (possible exfiltration / C&C lookups). Branch 0
/// counts DNS responses per host; branch 1 counts connection attempts *by*
/// that host; the conjunction (≥1 DNS, 0 SYNs) resolves on the analyzer.
pub fn q9_dns_no_tcp() -> Query {
    QueryBuilder::new("q9_dns_no_tcp")
        .filter_eq(Field::Proto, UDP)
        .filter_eq(Field::SrcPort, 53)
        .map(&[Field::DstIp])
        .reduce(&[Field::DstIp], ReduceFunc::Count)
        .branch()
        .filter_eq(Field::Proto, TCP)
        .filter_eq(Field::TcpFlags, SYN)
        .map(&[Field::SrcIp])
        .reduce(&[Field::SrcIp], ReduceFunc::Count)
        .merge_and((CmpOp::Ge, thresholds::DNS_RESP), (CmpOp::Le, 0))
        .build()
}

/// All nine queries in order.
pub fn all_queries() -> Vec<Query> {
    vec![
        q1_new_tcp(),
        q2_ssh_brute(),
        q3_super_spreader(),
        q4_port_scan(),
        q5_udp_ddos(),
        q6_syn_flood(),
        q7_completed_tcp(),
        q8_slowloris(),
        q9_dns_no_tcp(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_queries_build() {
        let qs = all_queries();
        assert_eq!(qs.len(), 9);
        for q in &qs {
            assert!(q.primitive_count() >= 4, "{} too small", q.name);
        }
    }

    #[test]
    fn names_are_unique_and_ordered() {
        let names: Vec<_> = all_queries().iter().map(|q| q.name.clone()).collect();
        for (i, n) in names.iter().enumerate() {
            assert!(n.starts_with(&format!("q{}_", i + 1)), "name {n} out of order");
        }
    }

    #[test]
    fn q6_has_most_primitives_among_singletons_vs_q8() {
        // The paper highlights Q6 (12 primitives) vs Q8 (10): Q6 has more
        // primitives spread over parallel sub-queries.
        let q6 = q6_syn_flood();
        let q8 = q8_slowloris();
        assert_eq!(q6.primitive_count(), 12);
        assert_eq!(q8.primitive_count(), 10);
        assert_eq!(q6.branches.len(), 3);
    }

    #[test]
    fn q6_is_data_plane_mergeable_q7_is_not() {
        assert!(q6_syn_flood().mergeable_on_data_plane());
        assert!(!q7_completed_tcp().mergeable_on_data_plane());
        assert!(!q9_dns_no_tcp().mergeable_on_data_plane());
    }

    #[test]
    fn front_filters_exist_for_eight_of_nine() {
        // §6.4: front-filter replacement applies to 8 of 9 queries — all but
        // the super-spreader query, which starts with a map.
        let qs = all_queries();
        let with_front =
            qs.iter().filter(|q| q.branches.iter().all(|b| b.front_filters() > 0)).count();
        assert_eq!(with_front, 8);
        assert_eq!(q3_super_spreader().branches[0].front_filters(), 0);
    }

    #[test]
    fn report_keys_are_host_addresses() {
        for q in all_queries() {
            for b in &q.branches {
                let keys = b.report_keys();
                assert_eq!(keys.len(), 1, "{}: report key should be one host field", q.name);
            }
        }
    }
}
