//! The Newton query language: intents as stream-processing queries.
//!
//! Operators express monitoring intents with the four primitives the paper
//! adopts from Sonata — `filter`, `map`, `distinct`, `reduce` — plus result
//! thresholds and multi-branch merges (e.g. the SYN-flood query compares a
//! SYN counter with an ACK counter per victim). This crate provides:
//!
//! * [`ast`] — the query AST: [`Query`], [`Branch`], [`Primitive`],
//!   field expressions and predicates.
//! * [`builder`] — a fluent, Spark-flavoured builder API.
//! * [`catalog`] — the nine evaluation queries Q1–Q9 (Table 2).
//! * [`interp`] — a *reference interpreter* giving exact epoch semantics.
//!   It is both the ground truth for accuracy experiments (Fig. 14) and the
//!   oracle the compiled data-plane pipeline is differentially tested
//!   against.
//!
//! The compiler (`newton-compiler`) lowers these ASTs to module rules.

pub mod ast;
pub mod builder;
pub mod catalog;
pub mod interp;
pub mod parse;
pub mod validate;

pub use ast::{Branch, CmpOp, FieldExpr, Merge, MergeOp, Predicate, Primitive, Query, ReduceFunc};
pub use builder::QueryBuilder;
pub use interp::{EpochResult, Interpreter};
pub use parse::{parse_query, to_text, ParseError};
pub use validate::{validate, ValidationError};
