//! The query AST.
//!
//! A [`Query`] is one or more [`Branch`]es of [`Primitive`]s plus an
//! optional [`Merge`] combining the branches' per-key results. Single-branch
//! queries cover Q1–Q5; multi-branch queries with merges cover Q6–Q9
//! (SYN-flood diff, completed-connection min, Slowloris conjunction, DNS
//! non-connector conjunction).

use newton_packet::{Field, FieldVector};
use std::fmt;

/// A (possibly prefix-masked) reference to one global header field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FieldExpr {
    pub field: Field,
    /// How many leading bits of the field to keep; `field.width()` keeps
    /// the whole field, 24 over `DstIp` keeps the /24 prefix, etc.
    pub prefix: u32,
}

impl FieldExpr {
    /// The whole field, unmasked.
    pub fn whole(field: Field) -> Self {
        FieldExpr { field, prefix: field.width() }
    }

    /// The top `prefix` bits of the field.
    pub fn prefix(field: Field, prefix: u32) -> Self {
        FieldExpr { field, prefix: prefix.min(field.width()) }
    }

    /// The 𝕂-style mask this expression contributes.
    pub fn mask(self) -> u128 {
        self.field.prefix_mask(self.prefix)
    }
}

impl fmt::Display for FieldExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.prefix == self.field.width() {
            write!(f, "{}", self.field)
        } else {
            write!(f, "{}/{}", self.field, self.prefix)
        }
    }
}

/// Combined mask of a key list.
pub fn keys_mask(keys: &[FieldExpr]) -> u128 {
    keys.iter().fold(0u128, |m, k| m | k.mask())
}

/// Comparison operators usable in filters, result thresholds and merges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Ne,
    Ge,
    Gt,
    Le,
    Lt,
}

impl CmpOp {
    /// Apply the comparison.
    pub fn eval(self, lhs: u64, rhs: u64) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Ge => lhs >= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Lt => lhs < rhs,
        }
    }

    /// Whether the predicate `count OP value` is *monotone*: once true for a
    /// growing count it stays true. Monotone thresholds can be checked on
    /// the data plane as counts accumulate; non-monotone ones (`Le`, `Lt`,
    /// `Eq`, `Ne`) are only decidable at epoch end and defer to the analyzer.
    pub fn is_monotone(self) -> bool {
        matches!(self, CmpOp::Ge | CmpOp::Gt)
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Ge => ">=",
            CmpOp::Gt => ">",
            CmpOp::Le => "<=",
            CmpOp::Lt => "<",
        };
        f.write_str(s)
    }
}

/// A packet-field predicate (`pkt.dport == 53`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Predicate {
    pub expr: FieldExpr,
    pub op: CmpOp,
    pub value: u64,
}

impl Predicate {
    /// Evaluate against a packet's field vector.
    pub fn eval(&self, v: FieldVector) -> bool {
        let masked = v.masked(self.expr.mask());
        self.op.eval(
            masked.get(self.expr.field),
            self.value << (self.expr.field.width() - self.expr.prefix),
        )
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pkt.{} {} {}", self.expr, self.op, self.value)
    }
}

/// The aggregation function of `reduce`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceFunc {
    /// Count matching packets.
    Count,
    /// Sum a packet field (e.g. `PktLen` for byte volume).
    SumField(Field),
    /// Running maximum of a packet field (e.g. largest packet per host —
    /// the 𝕊 `max` SALU).
    MaxField(Field),
}

/// One stream-processing primitive.
#[derive(Debug, Clone, PartialEq)]
pub enum Primitive {
    /// Keep only packets satisfying *all* predicates.
    Filter(Vec<Predicate>),
    /// Project the tuple onto the listed (possibly prefix-masked) keys.
    Map(Vec<FieldExpr>),
    /// Pass only the first packet per distinct key tuple per epoch.
    Distinct(Vec<FieldExpr>),
    /// Aggregate per key tuple.
    Reduce { keys: Vec<FieldExpr>, func: ReduceFunc },
    /// Threshold on the running aggregation result of the branch.
    ResultFilter { op: CmpOp, value: u64 },
}

impl Primitive {
    /// Short name, used in reports and figures.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Primitive::Filter(_) => "filter",
            Primitive::Map(_) => "map",
            Primitive::Distinct(_) => "distinct",
            Primitive::Reduce { .. } => "reduce",
            Primitive::ResultFilter { .. } => "rfilter",
        }
    }

    /// Whether the primitive keeps per-epoch state on the data plane.
    pub fn is_stateful(&self) -> bool {
        matches!(self, Primitive::Distinct(_) | Primitive::Reduce { .. })
    }
}

/// How a multi-branch query combines branch results per key.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MergeOp {
    Min,
    Max,
    Sum,
    /// Saturating difference `a - b` (e.g. SYNs minus ACKs).
    Diff,
}

impl MergeOp {
    pub fn eval(self, a: u64, b: u64) -> u64 {
        match self {
            MergeOp::Min => a.min(b),
            MergeOp::Max => a.max(b),
            MergeOp::Sum => a.saturating_add(b),
            MergeOp::Diff => a.saturating_sub(b),
        }
    }
}

/// The merge step of a multi-branch query.
#[derive(Debug, Clone, PartialEq)]
pub enum Merge {
    /// Fold branch results with `op` left-to-right, then report keys where
    /// `folded OP value` holds.
    Combine { op: MergeOp, cmp: CmpOp, value: u64 },
    /// Report keys where branch 0's result satisfies `left` *and* branch 1's
    /// result satisfies `right` (Slowloris: many connections AND few bytes).
    And { left: (CmpOp, u64), right: (CmpOp, u64) },
}

/// A linear chain of primitives within a query.
#[derive(Debug, Clone, PartialEq)]
pub struct Branch {
    pub primitives: Vec<Primitive>,
}

impl Branch {
    pub fn new(primitives: Vec<Primitive>) -> Self {
        Branch { primitives }
    }

    /// The key tuple the branch reports on: the keys of its last key-bearing
    /// primitive (`reduce`/`distinct`/`map`).
    pub fn report_keys(&self) -> Vec<FieldExpr> {
        for p in self.primitives.iter().rev() {
            match p {
                Primitive::Reduce { keys, .. }
                | Primitive::Distinct(keys)
                | Primitive::Map(keys) => return keys.clone(),
                _ => {}
            }
        }
        Vec::new()
    }

    /// Leading filters that test only the 5-tuple and TCP flags — exactly
    /// the predicates `newton_init` can absorb (Opt.1 of §4.3).
    pub fn front_filters(&self) -> usize {
        self.primitives
            .iter()
            .take_while(
                |p| matches!(p, Primitive::Filter(preds) if preds.iter().all(is_init_matchable)),
            )
            .count()
    }
}

/// Whether a predicate can be expressed as a `newton_init` ternary match:
/// equality on a (possibly prefixed) 5-tuple field or the TCP flags.
pub fn is_init_matchable(p: &Predicate) -> bool {
    p.op == CmpOp::Eq
        && matches!(
            p.expr.field,
            Field::SrcIp
                | Field::DstIp
                | Field::SrcPort
                | Field::DstPort
                | Field::Proto
                | Field::TcpFlags
        )
}

/// A complete monitoring query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Human-readable name (e.g. `"q4_port_scan"`).
    pub name: String,
    pub branches: Vec<Branch>,
    pub merge: Option<Merge>,
    /// Stateful-primitive window; the paper evaluates and resets every
    /// 100 ms (§6).
    pub epoch_ms: u64,
}

impl Query {
    /// Total number of primitives across branches — the x-axis unit of
    /// Fig. 15(a).
    pub fn primitive_count(&self) -> usize {
        self.branches.iter().map(|b| b.primitives.len()).sum()
    }

    /// Whether all branches share the same leading filters *and* every
    /// packet that feeds one branch feeds all of them. When true, the merge
    /// can run on the data plane within a single packet's pipeline walk
    /// (Fig. 6); otherwise the merge defers to the analyzer (§7,
    /// limitations).
    pub fn mergeable_on_data_plane(&self) -> bool {
        match &self.merge {
            None => true,
            Some(_) => {
                let first: Vec<_> = self.branches[0]
                    .primitives
                    .iter()
                    .filter_map(|p| match p {
                        Primitive::Filter(preds) => Some(preds.clone()),
                        _ => None,
                    })
                    .collect();
                self.branches.iter().all(|b| {
                    let fs: Vec<_> = b
                        .primitives
                        .iter()
                        .filter_map(|p| match p {
                            Primitive::Filter(preds) => Some(preds.clone()),
                            _ => None,
                        })
                        .collect();
                    fs == first
                })
            }
        }
    }

    /// All stateful primitives in the query.
    pub fn stateful_primitives(&self) -> impl Iterator<Item = &Primitive> {
        self.branches.iter().flat_map(|b| b.primitives.iter()).filter(|p| p.is_stateful())
    }

    /// Whether no packet can feed two branches at once: for every pair of
    /// branches there is a field both equality-filter on, with different
    /// values (e.g. Q9's `proto == 17` vs `proto == 6`). Such branches
    /// never contend for the shared global result, so each may use
    /// multi-row sketches even in a multi-branch query.
    pub fn branches_packet_disjoint(&self) -> bool {
        let front_eqs = |b: &Branch| -> Vec<(Field, u64)> {
            b.primitives
                .iter()
                .take_while(|p| matches!(p, Primitive::Filter(_)))
                .flat_map(|p| match p {
                    Primitive::Filter(preds) => preds.clone(),
                    _ => Vec::new(),
                })
                .filter(|p| p.op == CmpOp::Eq && p.expr.prefix == p.expr.field.width())
                .map(|p| (p.expr.field, p.value))
                .collect()
        };
        let eqs: Vec<Vec<(Field, u64)>> = self.branches.iter().map(front_eqs).collect();
        for i in 0..eqs.len() {
            for j in i + 1..eqs.len() {
                let disjoint =
                    eqs[i].iter().any(|(f, v)| eqs[j].iter().any(|(g, w)| f == g && v != w));
                if !disjoint {
                    return false;
                }
            }
        }
        self.branches.len() >= 2
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "query {} (epoch {}ms):", self.name, self.epoch_ms)?;
        for (i, b) in self.branches.iter().enumerate() {
            write!(f, "  branch {i}: ")?;
            let mut first = true;
            for p in &b.primitives {
                if !first {
                    write!(f, " . ")?;
                }
                first = false;
                write!(f, "{}", p.kind_name())?;
            }
            writeln!(f)?;
        }
        if let Some(m) = &self.merge {
            writeln!(f, "  merge: {m:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use newton_packet::{PacketBuilder, Protocol, TcpFlags};

    #[test]
    fn predicate_eval_equality() {
        let pkt = PacketBuilder::new().protocol(Protocol::Udp).dst_port(53).build();
        let v = FieldVector::from_packet(&pkt);
        let p = Predicate { expr: FieldExpr::whole(Field::DstPort), op: CmpOp::Eq, value: 53 };
        assert!(p.eval(v));
        let p2 = Predicate { expr: FieldExpr::whole(Field::DstPort), op: CmpOp::Eq, value: 54 };
        assert!(!p2.eval(v));
    }

    #[test]
    fn predicate_eval_prefix() {
        let pkt = PacketBuilder::new().dst_ip(0xC0A80115).build();
        let v = FieldVector::from_packet(&pkt);
        // dip in 192.168.1.0/24
        let p =
            Predicate { expr: FieldExpr::prefix(Field::DstIp, 24), op: CmpOp::Eq, value: 0xC0A801 };
        assert!(p.eval(v));
    }

    #[test]
    fn cmp_monotonicity() {
        assert!(CmpOp::Ge.is_monotone());
        assert!(CmpOp::Gt.is_monotone());
        for op in [CmpOp::Le, CmpOp::Lt, CmpOp::Eq, CmpOp::Ne] {
            assert!(!op.is_monotone());
        }
    }

    #[test]
    fn branch_report_keys_from_last_key_primitive() {
        let b = Branch::new(vec![
            Primitive::Filter(vec![]),
            Primitive::Map(vec![FieldExpr::whole(Field::SrcIp)]),
            Primitive::Reduce {
                keys: vec![FieldExpr::whole(Field::DstIp)],
                func: ReduceFunc::Count,
            },
            Primitive::ResultFilter { op: CmpOp::Ge, value: 10 },
        ]);
        assert_eq!(b.report_keys(), vec![FieldExpr::whole(Field::DstIp)]);
    }

    #[test]
    fn front_filters_counts_only_init_matchable() {
        let f_ok = Primitive::Filter(vec![Predicate {
            expr: FieldExpr::whole(Field::Proto),
            op: CmpOp::Eq,
            value: 6,
        }]);
        let f_bad = Primitive::Filter(vec![Predicate {
            expr: FieldExpr::whole(Field::PktLen),
            op: CmpOp::Ge,
            value: 100,
        }]);
        let b = Branch::new(vec![f_ok.clone(), f_bad, f_ok]);
        assert_eq!(b.front_filters(), 1);
    }

    #[test]
    fn merge_ops() {
        assert_eq!(MergeOp::Min.eval(3, 5), 3);
        assert_eq!(MergeOp::Diff.eval(3, 5), 0);
        assert_eq!(MergeOp::Diff.eval(9, 5), 4);
        assert_eq!(MergeOp::Sum.eval(u64::MAX, 5), u64::MAX);
    }

    #[test]
    fn query_display_lists_branches_and_merge() {
        let q = crate::catalog::q6_syn_flood();
        let text = q.to_string();
        assert!(text.contains("q6_syn_flood"));
        assert_eq!(text.matches("branch").count(), 3);
        assert!(text.contains("merge"));
    }

    #[test]
    fn packet_disjointness_detection() {
        assert!(crate::catalog::q9_dns_no_tcp().branches_packet_disjoint());
        assert!(crate::catalog::q7_completed_tcp().branches_packet_disjoint());
        assert!(!crate::catalog::q6_syn_flood().branches_packet_disjoint());
        assert!(!crate::catalog::q8_slowloris().branches_packet_disjoint());
        assert!(!crate::catalog::q1_new_tcp().branches_packet_disjoint(), "single branch");
    }

    #[test]
    fn tcp_flags_predicate() {
        let syn = PacketBuilder::new().tcp_flags(TcpFlags::SYN).build();
        let v = FieldVector::from_packet(&syn);
        let p = Predicate {
            expr: FieldExpr::whole(Field::TcpFlags),
            op: CmpOp::Eq,
            value: TcpFlags::SYN.bits() as u64,
        };
        assert!(p.eval(v));
    }
}
