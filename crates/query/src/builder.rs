//! Fluent, Spark-flavoured query construction.
//!
//! ```
//! use newton_query::builder::QueryBuilder;
//! use newton_query::ast::{CmpOp, ReduceFunc};
//! use newton_packet::Field;
//!
//! // Q1-style: victims receiving many new TCP connections.
//! let q = QueryBuilder::new("new_tcp")
//!     .filter_eq(Field::Proto, 6)
//!     .filter_eq(Field::TcpFlags, 0x02)
//!     .map(&[Field::DstIp])
//!     .reduce(&[Field::DstIp], ReduceFunc::Count)
//!     .result_filter(CmpOp::Ge, 40)
//!     .build();
//! assert_eq!(q.primitive_count(), 5);
//! ```

use crate::ast::{
    Branch, CmpOp, FieldExpr, Merge, MergeOp, Predicate, Primitive, Query, ReduceFunc,
};
use newton_packet::Field;

/// Builder for [`Query`]. Primitives accumulate into the current branch;
/// [`QueryBuilder::branch`] closes it and starts a new one.
#[derive(Debug, Clone)]
pub struct QueryBuilder {
    name: String,
    done: Vec<Branch>,
    current: Vec<Primitive>,
    merge: Option<Merge>,
    epoch_ms: u64,
}

impl QueryBuilder {
    /// Start a query with the paper's default 100 ms epoch.
    pub fn new(name: impl Into<String>) -> Self {
        QueryBuilder {
            name: name.into(),
            done: Vec::new(),
            current: Vec::new(),
            merge: None,
            epoch_ms: 100,
        }
    }

    /// Override the stateful-primitive window.
    pub fn epoch_ms(mut self, ms: u64) -> Self {
        self.epoch_ms = ms;
        self
    }

    /// `filter(pkt.field == value)`.
    pub fn filter_eq(mut self, field: Field, value: u64) -> Self {
        self.current.push(Primitive::Filter(vec![Predicate {
            expr: FieldExpr::whole(field),
            op: CmpOp::Eq,
            value,
        }]));
        self
    }

    /// `filter` with an arbitrary predicate.
    pub fn filter(mut self, expr: FieldExpr, op: CmpOp, value: u64) -> Self {
        self.current.push(Primitive::Filter(vec![Predicate { expr, op, value }]));
        self
    }

    /// `filter` over a conjunction of predicates.
    pub fn filter_all(mut self, preds: Vec<Predicate>) -> Self {
        self.current.push(Primitive::Filter(preds));
        self
    }

    /// `map(pkt => (fields...))`, whole fields.
    pub fn map(mut self, fields: &[Field]) -> Self {
        self.current.push(Primitive::Map(fields.iter().copied().map(FieldExpr::whole).collect()));
        self
    }

    /// `map` with explicit field expressions (prefixes etc.).
    pub fn map_exprs(mut self, exprs: Vec<FieldExpr>) -> Self {
        self.current.push(Primitive::Map(exprs));
        self
    }

    /// `distinct(keys = (fields...))`.
    pub fn distinct(mut self, fields: &[Field]) -> Self {
        self.current
            .push(Primitive::Distinct(fields.iter().copied().map(FieldExpr::whole).collect()));
        self
    }

    /// `reduce(keys = (fields...), f)`.
    pub fn reduce(mut self, fields: &[Field], func: ReduceFunc) -> Self {
        self.current.push(Primitive::Reduce {
            keys: fields.iter().copied().map(FieldExpr::whole).collect(),
            func,
        });
        self
    }

    /// `reduce` with explicit field expressions (prefix-masked keys, e.g.
    /// aggregating by /16 source prefix).
    pub fn reduce_exprs(mut self, keys: Vec<FieldExpr>, func: ReduceFunc) -> Self {
        self.current.push(Primitive::Reduce { keys, func });
        self
    }

    /// `distinct` with explicit field expressions.
    pub fn distinct_exprs(mut self, keys: Vec<FieldExpr>) -> Self {
        self.current.push(Primitive::Distinct(keys));
        self
    }

    /// Threshold on the branch's aggregation result.
    pub fn result_filter(mut self, op: CmpOp, value: u64) -> Self {
        self.current.push(Primitive::ResultFilter { op, value });
        self
    }

    /// Close the current branch and start another.
    ///
    /// # Panics
    /// Panics if the current branch is empty.
    pub fn branch(mut self) -> Self {
        assert!(!self.current.is_empty(), "cannot close an empty branch");
        self.done.push(Branch::new(std::mem::take(&mut self.current)));
        self
    }

    /// Merge branch results: fold with `op`, report keys where the folded
    /// value satisfies `cmp value`.
    pub fn merge_combine(mut self, op: MergeOp, cmp: CmpOp, value: u64) -> Self {
        self.merge = Some(Merge::Combine { op, cmp, value });
        self
    }

    /// Merge two branches with a conjunction of per-branch thresholds.
    pub fn merge_and(mut self, left: (CmpOp, u64), right: (CmpOp, u64)) -> Self {
        self.merge = Some(Merge::And { left, right });
        self
    }

    /// Finish the query.
    ///
    /// # Panics
    /// Panics if the query has no primitives, or has a merge but fewer than
    /// two branches.
    pub fn build(mut self) -> Query {
        if !self.current.is_empty() {
            self.done.push(Branch::new(self.current));
        }
        assert!(!self.done.is_empty(), "query {:?} has no primitives", self.name);
        if self.merge.is_some() {
            assert!(
                self.done.len() >= 2,
                "query {:?} has a merge but only {} branch(es)",
                self.name,
                self.done.len()
            );
        }
        Query { name: self.name, branches: self.done, merge: self.merge, epoch_ms: self.epoch_ms }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_branch_build() {
        let q = QueryBuilder::new("t").filter_eq(Field::Proto, 17).map(&[Field::DstIp]).build();
        assert_eq!(q.branches.len(), 1);
        assert_eq!(q.primitive_count(), 2);
        assert_eq!(q.epoch_ms, 100);
    }

    #[test]
    fn multi_branch_with_merge() {
        let q = QueryBuilder::new("t")
            .filter_eq(Field::TcpFlags, 2)
            .reduce(&[Field::DstIp], ReduceFunc::Count)
            .branch()
            .filter_eq(Field::TcpFlags, 16)
            .reduce(&[Field::DstIp], ReduceFunc::Count)
            .merge_combine(MergeOp::Diff, CmpOp::Ge, 50)
            .build();
        assert_eq!(q.branches.len(), 2);
        assert!(q.merge.is_some());
    }

    #[test]
    #[should_panic(expected = "has a merge but only 1")]
    fn merge_requires_two_branches() {
        let _ = QueryBuilder::new("t")
            .filter_eq(Field::Proto, 6)
            .merge_combine(MergeOp::Min, CmpOp::Ge, 1)
            .build();
    }

    #[test]
    #[should_panic(expected = "no primitives")]
    fn empty_query_panics() {
        let _ = QueryBuilder::new("t").build();
    }

    #[test]
    #[should_panic(expected = "empty branch")]
    fn empty_branch_panics() {
        let _ = QueryBuilder::new("t").branch();
    }
}
