//! Reference interpreter: exact epoch semantics for queries.
//!
//! This is the *specification* the rest of the system is measured against:
//!
//! * the compiled data-plane pipeline is differentially tested against it
//!   (same trace in, same report set out — modulo sketch error), and
//! * Fig. 14's accuracy/FPR numbers use it as ground truth.
//!
//! Semantics, per epoch (`Query::epoch_ms`):
//! 1. Each packet walks each branch's primitive chain. `filter` drops,
//!    `map` projects, `distinct` passes only first occurrences, `reduce`
//!    accumulates into an exact per-key table. Aggregation reads field
//!    values from the original packet (the PHV keeps all header fields
//!    even after a projection — same as the hardware).
//! 2. At epoch end, trailing `ResultFilter`s apply to the final counts, and
//!    the merge (if any) combines the branches per report-key *value*.
//!
//! The interpreter is exact: no sketches, no memory limits.

use crate::ast::{Branch, Merge, Primitive, Query, ReduceFunc};
use newton_packet::{FieldVector, Packet};
use std::collections::{HashMap, HashSet};

/// Exact result of one epoch.
#[derive(Debug, Clone, Default)]
pub struct EpochResult {
    /// Per-branch table: report-key value → final aggregate.
    pub branch_tables: Vec<HashMap<u64, u64>>,
    /// Report-key values the query flags this epoch.
    pub reported: HashSet<u64>,
}

/// Per-branch interpreter state for the current epoch.
#[derive(Debug, Clone)]
struct BranchState {
    /// One seen-set per `distinct` primitive (indexed by position).
    distinct_seen: Vec<HashSet<u128>>,
    /// One exact table per `reduce` primitive.
    reduce_tables: Vec<HashMap<u128, u64>>,
}

impl BranchState {
    fn new(branch: &Branch) -> Self {
        let d = branch.primitives.iter().filter(|p| matches!(p, Primitive::Distinct(_))).count();
        let r = branch.primitives.iter().filter(|p| matches!(p, Primitive::Reduce { .. })).count();
        BranchState {
            distinct_seen: vec![HashSet::new(); d],
            reduce_tables: vec![HashMap::new(); r],
        }
    }

    fn clear(&mut self) {
        for s in &mut self.distinct_seen {
            s.clear();
        }
        for t in &mut self.reduce_tables {
            t.clear();
        }
    }
}

/// Streaming reference interpreter for one query.
#[derive(Debug, Clone)]
pub struct Interpreter {
    query: Query,
    states: Vec<BranchState>,
}

impl Interpreter {
    pub fn new(query: Query) -> Self {
        let states = query.branches.iter().map(BranchState::new).collect();
        Interpreter { query, states }
    }

    pub fn query(&self) -> &Query {
        &self.query
    }

    /// Feed one packet into every branch.
    pub fn observe(&mut self, pkt: &Packet) {
        let orig = FieldVector::from_packet(pkt);
        for (branch, state) in self.query.branches.iter().zip(&mut self.states) {
            Self::walk(branch, state, orig);
        }
    }

    fn walk(branch: &Branch, state: &mut BranchState, orig: FieldVector) {
        let mut v = orig;
        let mut d_idx = 0;
        let mut r_idx = 0;
        let mut last_count: Option<u64> = None;
        for prim in &branch.primitives {
            match prim {
                Primitive::Filter(preds) => {
                    if !preds.iter().all(|p| p.eval(v)) {
                        return;
                    }
                }
                Primitive::Map(keys) => {
                    v = v.masked(crate::ast::keys_mask(keys));
                }
                Primitive::Distinct(keys) => {
                    let key = orig.masked(crate::ast::keys_mask(keys));
                    let fresh = state.distinct_seen[d_idx].insert(key.0);
                    d_idx += 1;
                    if !fresh {
                        return;
                    }
                    v = key;
                }
                Primitive::Reduce { keys, func } => {
                    let key = orig.masked(crate::ast::keys_mask(keys));
                    let e = state.reduce_tables[r_idx].entry(key.0).or_insert(0);
                    match func {
                        ReduceFunc::Count => *e += 1,
                        ReduceFunc::SumField(f) => *e += orig.get(*f),
                        ReduceFunc::MaxField(f) => *e = (*e).max(orig.get(*f)),
                    }
                    last_count = Some(*e);
                    r_idx += 1;
                    v = key;
                }
                Primitive::ResultFilter { .. } => {
                    // Thresholds are applied exactly at epoch end; during the
                    // stream they never remove state, so nothing to do here.
                    let _ = last_count;
                }
            }
        }
    }

    /// Close the epoch: compute the result and reset all state.
    pub fn end_epoch(&mut self) -> EpochResult {
        let mut branch_tables = Vec::with_capacity(self.query.branches.len());
        for (branch, state) in self.query.branches.iter().zip(&self.states) {
            branch_tables.push(Self::branch_result(branch, state));
        }

        let reported = match &self.query.merge {
            None => {
                // Single-branch query: the table already had its trailing
                // thresholds applied.
                branch_tables[0].keys().copied().collect()
            }
            Some(Merge::Combine { op, cmp, value }) => {
                let mut keys: HashSet<u64> = HashSet::new();
                for t in &branch_tables {
                    keys.extend(t.keys().copied());
                }
                keys.into_iter()
                    .filter(|k| {
                        let mut it = branch_tables.iter().map(|t| t.get(k).copied().unwrap_or(0));
                        let first = it.next().unwrap_or(0);
                        let folded = it.fold(first, |acc, x| op.eval(acc, x));
                        cmp.eval(folded, *value)
                    })
                    .collect()
            }
            Some(Merge::And { left, right }) => {
                // Candidate keys come from branch 0 (the "driver" branch):
                // an absent key means "no evidence", which must not satisfy
                // the conjunction by accident.
                branch_tables[0]
                    .iter()
                    .filter(|&(k, &a)| {
                        let b = branch_tables.get(1).and_then(|t| t.get(k)).copied().unwrap_or(0);
                        left.0.eval(a, left.1) && right.0.eval(b, right.1)
                    })
                    .map(|(&k, _)| k)
                    .collect()
            }
        };

        for s in &mut self.states {
            s.clear();
        }
        EpochResult { branch_tables, reported }
    }

    /// Final per-report-key table of one branch with trailing thresholds
    /// applied.
    fn branch_result(branch: &Branch, state: &BranchState) -> HashMap<u64, u64> {
        let report_keys = branch.report_keys();
        let report_field = report_keys.first().map(|e| e.field);

        // The final aggregate: the last reduce table if any; otherwise the
        // last distinct set (count 1 per key); otherwise nothing stateful —
        // report every key seen is not meaningful without state, so empty.
        let mut table: HashMap<u128, u64> = if let Some(t) = state.reduce_tables.last() {
            t.clone()
        } else if let Some(s) = state.distinct_seen.last() {
            s.iter().map(|&k| (k, 1)).collect()
        } else {
            HashMap::new()
        };

        // Trailing thresholds (all ResultFilters after the last reduce).
        let mut past_last_reduce = false;
        let reduces = state.reduce_tables.len();
        let mut seen_reduces = 0;
        for prim in &branch.primitives {
            match prim {
                Primitive::Reduce { .. } => {
                    seen_reduces += 1;
                    past_last_reduce = seen_reduces == reduces;
                }
                Primitive::ResultFilter { op, value } if past_last_reduce || reduces == 0 => {
                    table.retain(|_, c| op.eval(*c, *value));
                }
                _ => {}
            }
        }

        // Project onto the report key value.
        match report_field {
            Some(f) => {
                let mut out: HashMap<u64, u64> = HashMap::new();
                for (k, c) in table {
                    let val = FieldVector(k).get(f);
                    let e = out.entry(val).or_insert(0);
                    // Multiple masked keys can share a report value only when
                    // the report key is coarser than the aggregate key; sum.
                    *e += c;
                }
                out
            }
            None => HashMap::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{self, thresholds};
    use newton_packet::{PacketBuilder, Protocol, TcpFlags};

    fn syn(src: u32, dst: u32, sport: u16) -> Packet {
        PacketBuilder::new()
            .src_ip(src)
            .dst_ip(dst)
            .src_port(sport)
            .dst_port(80)
            .tcp_flags(TcpFlags::SYN)
            .build()
    }

    #[test]
    fn q1_reports_victim_over_threshold() {
        let mut interp = Interpreter::new(catalog::q1_new_tcp());
        let victim = 0x0A00_0099;
        for i in 0..thresholds::NEW_TCP {
            interp.observe(&syn(0x0B00_0000 + i as u32, victim, 1000 + i as u16));
        }
        // A quiet host below threshold.
        interp.observe(&syn(1, 2, 3));
        let r = interp.end_epoch();
        assert!(r.reported.contains(&(victim as u64)));
        assert!(!r.reported.contains(&2));
    }

    #[test]
    fn q1_ignores_non_syn_packets() {
        let mut interp = Interpreter::new(catalog::q1_new_tcp());
        let victim = 7;
        for i in 0..200 {
            let mut p = syn(i, victim, 999);
            p.tcp_flags = TcpFlags::ACK;
            interp.observe(&p);
        }
        assert!(interp.end_epoch().reported.is_empty());
    }

    #[test]
    fn distinct_deduplicates_within_epoch_and_resets_across() {
        let mut interp = Interpreter::new(catalog::q4_port_scan());
        let scanner = 0xDEAD;
        // Same port probed many times: only 1 distinct (sip, dport).
        for _ in 0..100 {
            interp.observe(&syn(scanner, 5, 1234));
        }
        let r = interp.end_epoch();
        assert!(r.reported.is_empty());

        // Distinct ports beyond the threshold: reported.
        for port in 0..thresholds::PORT_SCAN as u16 {
            let mut p = syn(scanner, 5, 1234);
            p.dst_port = 1000 + port;
            interp.observe(&p);
        }
        let r = interp.end_epoch();
        assert!(r.reported.contains(&(scanner as u64)));

        // State reset: the next epoch starts from zero.
        interp.observe(&syn(scanner, 5, 1234));
        assert!(interp.end_epoch().reported.is_empty());
    }

    #[test]
    fn q6_min_merge_requires_all_three_signals() {
        let mut interp = Interpreter::new(catalog::q6_syn_flood());
        let victim = 0xBEEF;
        // A flood: many SYNs from many sources and ports.
        for i in 0..thresholds::SYN_FLOOD {
            interp.observe(&syn(0x0C00_0000 + i as u32, victim, 2000 + i as u16));
        }
        // A busy-but-benign host: many SYNs from ONE source/port (e.g. a
        // reconnecting client) — min() stays at 1.
        for _ in 0..500 {
            interp.observe(&syn(42, 0xCAFE, 555));
        }
        let r = interp.end_epoch();
        assert!(r.reported.contains(&(victim as u64)));
        assert!(!r.reported.contains(&0xCAFE));
    }

    #[test]
    fn q8_and_merge_flags_many_small_connections() {
        let mut interp = Interpreter::new(catalog::q8_slowloris());
        let server = 0x5050;
        // Slowloris: many tiny connections.
        for i in 0..thresholds::SLOWLORIS_CONNS {
            let p = PacketBuilder::new()
                .src_ip(0x0D00_0000 + i as u32)
                .dst_ip(server)
                .src_port(3000 + i as u16)
                .tcp_flags(TcpFlags::SYN)
                .wire_len(64)
                .build();
            interp.observe(&p);
        }
        // A healthy server: many connections AND lots of bytes.
        let busy = 0x6060;
        for i in 0..thresholds::SLOWLORIS_CONNS {
            let p = PacketBuilder::new()
                .src_ip(0x0E00_0000 + i as u32)
                .dst_ip(busy)
                .src_port(4000 + i as u16)
                .tcp_flags(TcpFlags::ACK)
                .wire_len(1500)
                .build();
            interp.observe(&p);
        }
        let r = interp.end_epoch();
        assert!(r.reported.contains(&(server as u64)), "slowloris victim not flagged");
        assert!(!r.reported.contains(&(busy as u64)), "healthy busy server wrongly flagged");
    }

    #[test]
    fn q9_flags_dns_clients_without_connections() {
        let mut interp = Interpreter::new(catalog::q9_dns_no_tcp());
        let silent = 0x1111;
        let normal = 0x2222;
        let dns = |host: u32| {
            PacketBuilder::new()
                .src_ip(0x0808_0808)
                .dst_ip(host)
                .src_port(53)
                .dst_port(5353)
                .protocol(Protocol::Udp)
                .build()
        };
        interp.observe(&dns(silent));
        interp.observe(&dns(normal));
        // `normal` follows up with a TCP connection; `silent` does not.
        interp.observe(&syn(normal, 0x3333, 777));
        let r = interp.end_epoch();
        assert!(r.reported.contains(&(silent as u64)));
        assert!(!r.reported.contains(&(normal as u64)));
    }

    #[test]
    fn sum_field_reads_original_packet_length_after_map() {
        let mut interp = Interpreter::new(catalog::q8_slowloris());
        let server = 9;
        let p = PacketBuilder::new().dst_ip(server).tcp_flags(TcpFlags::ACK).wire_len(1000).build();
        interp.observe(&p);
        let r = interp.end_epoch();
        // Branch 1 (bytes) must have summed the real wire length.
        assert_eq!(r.branch_tables[1].get(&(server as u64)), Some(&1000));
    }

    #[test]
    fn branch_tables_expose_exact_counts() {
        let mut interp = Interpreter::new(catalog::q1_new_tcp());
        for i in 0..10 {
            interp.observe(&syn(i, 77, 1000));
        }
        let r = interp.end_epoch();
        // Below threshold: not reported, and (threshold applied) absent from
        // the final table.
        assert!(r.reported.is_empty());
        assert!(r.branch_tables[0].is_empty());
    }
}
