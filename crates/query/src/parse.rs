//! A textual intent language, parsed into the query AST.
//!
//! The paper's operators write queries as code against a stream API; this
//! module gives them a language instead, so intents can live in config
//! files, CLIs and dashboards:
//!
//! ```text
//! filter(proto == 6) | filter(tcp.flags == 2)
//!   | map(dip) | reduce(dip, count) | where >= 40
//! ```
//!
//! Multi-branch queries separate branches with `;` and end with a merge:
//!
//! ```text
//! filter(proto == 6) | reduce(dip, count) ;
//! filter(proto == 6) | distinct(dip, sip) | reduce(dip, count) ;
//! merge min >= 40
//! ```
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! query     := branch (";" branch)* (";" merge)?
//! branch    := primitive ("|" primitive)*
//! primitive := "filter" "(" pred ")"
//!            | "map" "(" keys ")"
//!            | "distinct" "(" keys ")"
//!            | "reduce" "(" keys "," func ")"
//!            | "where" cmp NUMBER
//! pred      := fieldexpr cmp NUMBER
//! keys      := fieldexpr ("," fieldexpr)*
//! fieldexpr := FIELD ("/" NUMBER)?
//! func      := "count" | "sum" "(" FIELD ")" | "max" "(" FIELD ")"
//! merge     := "merge" ( MERGEOP cmp NUMBER
//!                      | "and" "(" cmp NUMBER "," cmp NUMBER ")" )
//! FIELD     := sip dip sport dport len proto tcp.flags
//! MERGEOP   := min max sum diff
//! cmp       := == != >= <= > <
//! ```

use crate::ast::{
    Branch, CmpOp, FieldExpr, Merge, MergeOp, Predicate, Primitive, Query, ReduceFunc,
};
use newton_packet::Field;
use std::fmt;

/// A parse failure with byte position and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub position: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser { src, pos: 0 }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError { position: self.pos, message: message.into() }
    }

    fn skip_ws(&mut self) {
        while self.src[self.pos..].starts_with(|c: char| c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.src[self.pos..].chars().next()
    }

    fn eat(&mut self, token: &str) -> bool {
        self.skip_ws();
        if self.src[self.pos..].starts_with(token) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, token: &str) -> Result<(), ParseError> {
        if self.eat(token) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{token}`")))
        }
    }

    fn word(&mut self) -> String {
        self.skip_ws();
        let start = self.pos;
        for (i, c) in self.src[start..].char_indices() {
            if !(c.is_alphanumeric() || c == '.' || c == '_') {
                self.pos = start + i;
                return self.src[start..self.pos].to_string();
            }
        }
        self.pos = self.src.len();
        self.src[start..].to_string()
    }

    fn number(&mut self) -> Result<u64, ParseError> {
        self.skip_ws();
        let start = self.pos;
        // Hex (0x...) or decimal.
        let rest = &self.src[start..];
        let (digits, radix, skip) =
            if let Some(hex) = rest.strip_prefix("0x") { (hex, 16, 2) } else { (rest, 10, 0) };
        let len = digits
            .char_indices()
            .take_while(|(_, c)| c.is_ascii_hexdigit())
            .map(|(i, c)| i + c.len_utf8())
            .last()
            .unwrap_or(0);
        if len == 0 {
            return Err(self.error("expected a number"));
        }
        let text = &digits[..len];
        self.pos = start + skip + len;
        u64::from_str_radix(text, radix).map_err(|e| self.error(format!("bad number: {e}")))
    }

    fn field(&mut self, name: &str) -> Result<Field, ParseError> {
        match name {
            "sip" => Ok(Field::SrcIp),
            "dip" => Ok(Field::DstIp),
            "sport" => Ok(Field::SrcPort),
            "dport" => Ok(Field::DstPort),
            "len" => Ok(Field::PktLen),
            "proto" => Ok(Field::Proto),
            "tcp.flags" | "flags" => Ok(Field::TcpFlags),
            other => Err(self.error(format!(
                "unknown field `{other}` (expected sip/dip/sport/dport/len/proto/tcp.flags)"
            ))),
        }
    }

    fn field_expr(&mut self) -> Result<FieldExpr, ParseError> {
        let name = self.word();
        if name.is_empty() {
            return Err(self.error("expected a field name"));
        }
        let field = self.field(&name)?;
        if self.eat("/") {
            let prefix = self.number()? as u32;
            if prefix == 0 || prefix > field.width() {
                return Err(self.error(format!(
                    "prefix /{prefix} out of range for {field} (1..={})",
                    field.width()
                )));
            }
            Ok(FieldExpr::prefix(field, prefix))
        } else {
            Ok(FieldExpr::whole(field))
        }
    }

    fn cmp(&mut self) -> Result<CmpOp, ParseError> {
        // Two-char operators first.
        for (tok, op) in [
            ("==", CmpOp::Eq),
            ("!=", CmpOp::Ne),
            (">=", CmpOp::Ge),
            ("<=", CmpOp::Le),
            (">", CmpOp::Gt),
            ("<", CmpOp::Lt),
        ] {
            if self.eat(tok) {
                return Ok(op);
            }
        }
        Err(self.error("expected a comparison (== != >= <= > <)"))
    }

    fn keys(&mut self) -> Result<Vec<FieldExpr>, ParseError> {
        let mut keys = vec![self.field_expr()?];
        loop {
            // `reduce(dip, count)` — after a comma the next word may be the
            // function, not a key; backtrack over the comma if so.
            let save = self.pos;
            if !self.eat(",") {
                break;
            }
            match self.field_expr() {
                Ok(k) => keys.push(k),
                Err(_) => {
                    self.pos = save;
                    break;
                }
            }
        }
        Ok(keys)
    }

    fn reduce_func(&mut self) -> Result<ReduceFunc, ParseError> {
        let name = self.word();
        match name.as_str() {
            "count" => Ok(ReduceFunc::Count),
            "sum" | "max" => {
                self.expect("(")?;
                let fname = self.word();
                let field = self.field(&fname)?;
                self.expect(")")?;
                Ok(if name == "sum" {
                    ReduceFunc::SumField(field)
                } else {
                    ReduceFunc::MaxField(field)
                })
            }
            other => Err(self.error(format!("unknown reduce function `{other}`"))),
        }
    }

    fn primitive(&mut self) -> Result<Primitive, ParseError> {
        let name = self.word();
        match name.as_str() {
            "filter" => {
                self.expect("(")?;
                let expr = self.field_expr()?;
                let op = self.cmp()?;
                let value = self.number()?;
                self.expect(")")?;
                Ok(Primitive::Filter(vec![Predicate { expr, op, value }]))
            }
            "map" => {
                self.expect("(")?;
                let keys = self.keys()?;
                self.expect(")")?;
                Ok(Primitive::Map(keys))
            }
            "distinct" => {
                self.expect("(")?;
                let keys = self.keys()?;
                self.expect(")")?;
                Ok(Primitive::Distinct(keys))
            }
            "reduce" => {
                self.expect("(")?;
                let keys = self.keys()?;
                self.expect(",")?;
                let func = self.reduce_func()?;
                self.expect(")")?;
                Ok(Primitive::Reduce { keys, func })
            }
            "where" => {
                let op = self.cmp()?;
                let value = self.number()?;
                Ok(Primitive::ResultFilter { op, value })
            }
            other => Err(self.error(format!(
                "unknown primitive `{other}` (expected filter/map/distinct/reduce/where)"
            ))),
        }
    }

    fn merge(&mut self) -> Result<Merge, ParseError> {
        let name = self.word();
        match name.as_str() {
            "and" => {
                self.expect("(")?;
                let left = (self.cmp()?, self.number()?);
                self.expect(",")?;
                let right = (self.cmp()?, self.number()?);
                self.expect(")")?;
                Ok(Merge::And { left, right })
            }
            op => {
                let op = match op {
                    "min" => MergeOp::Min,
                    "max" => MergeOp::Max,
                    "sum" => MergeOp::Sum,
                    "diff" => MergeOp::Diff,
                    other => {
                        return Err(
                            self.error(format!("unknown merge `{other}` (min/max/sum/diff/and)"))
                        )
                    }
                };
                let cmp = self.cmp()?;
                let value = self.number()?;
                Ok(Merge::Combine { op, cmp, value })
            }
        }
    }

    fn query(&mut self, name: &str) -> Result<Query, ParseError> {
        let mut branches = Vec::new();
        let mut merge = None;
        loop {
            // A merge instead of a branch?
            let save = self.pos;
            if self.eat("merge") {
                merge = Some(self.merge()?);
                break;
            }
            self.pos = save;

            let mut prims = vec![self.primitive()?];
            while self.eat("|") {
                prims.push(self.primitive()?);
            }
            branches.push(Branch::new(prims));
            if !self.eat(";") {
                break;
            }
            if self.peek().is_none() {
                break; // trailing semicolon
            }
        }
        self.skip_ws();
        if self.pos != self.src.len() {
            return Err(self.error("trailing input"));
        }
        if branches.is_empty() {
            return Err(self.error("query has no branches"));
        }
        if merge.is_some() && branches.len() < 2 {
            return Err(self.error("merge requires at least two branches"));
        }
        Ok(Query { name: name.to_string(), branches, merge, epoch_ms: 100 })
    }
}

/// Parse a textual intent into a [`Query`].
///
/// ```
/// use newton_query::parse_query;
/// let q = parse_query(
///     "new_tcp",
///     "filter(proto == 6) | filter(tcp.flags == 2) | map(dip) \
///      | reduce(dip, count) | where >= 40",
/// ).unwrap();
/// assert_eq!(q.primitive_count(), 5);
/// ```
pub fn parse_query(name: &str, src: &str) -> Result<Query, ParseError> {
    Parser::new(src).query(name)
}

/// Render a query back to the textual intent language. For any query built
/// from this grammar, `parse_query(name, &to_text(q))` reproduces `q`
/// exactly (checked by property test).
pub fn to_text(query: &Query) -> String {
    fn field_name(f: Field) -> &'static str {
        match f {
            Field::SrcIp => "sip",
            Field::DstIp => "dip",
            Field::SrcPort => "sport",
            Field::DstPort => "dport",
            Field::PktLen => "len",
            Field::Proto => "proto",
            Field::TcpFlags => "tcp.flags",
        }
    }
    fn expr(e: &FieldExpr) -> String {
        if e.prefix == e.field.width() {
            field_name(e.field).to_string()
        } else {
            format!("{}/{}", field_name(e.field), e.prefix)
        }
    }
    fn keys(ks: &[FieldExpr]) -> String {
        ks.iter().map(expr).collect::<Vec<_>>().join(", ")
    }
    fn prim(p: &Primitive) -> String {
        match p {
            Primitive::Filter(preds) => preds
                .iter()
                .map(|q| format!("filter({} {} {})", expr(&q.expr), q.op, q.value))
                .collect::<Vec<_>>()
                .join(" | "),
            Primitive::Map(ks) => format!("map({})", keys(ks)),
            Primitive::Distinct(ks) => format!("distinct({})", keys(ks)),
            Primitive::Reduce { keys: ks, func } => {
                let f = match func {
                    ReduceFunc::Count => "count".to_string(),
                    ReduceFunc::SumField(f) => format!("sum({})", field_name(*f)),
                    ReduceFunc::MaxField(f) => format!("max({})", field_name(*f)),
                };
                format!("reduce({}, {f})", keys(ks))
            }
            Primitive::ResultFilter { op, value } => format!("where {op} {value}"),
        }
    }
    let mut parts: Vec<String> = query
        .branches
        .iter()
        .map(|b| b.primitives.iter().map(prim).collect::<Vec<_>>().join(" | "))
        .collect();
    if let Some(m) = &query.merge {
        parts.push(match m {
            Merge::Combine { op, cmp, value } => {
                let op = match op {
                    MergeOp::Min => "min",
                    MergeOp::Max => "max",
                    MergeOp::Sum => "sum",
                    MergeOp::Diff => "diff",
                };
                format!("merge {op} {cmp} {value}")
            }
            Merge::And { left, right } => {
                format!("merge and({} {}, {} {})", left.0, left.1, right.0, right.1)
            }
        });
    }
    parts.join(" ;\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn q1_text_equals_catalog() {
        let q = parse_query(
            "q1_new_tcp",
            "filter(proto == 6) | filter(tcp.flags == 2) | map(dip) \
             | reduce(dip, count) | where >= 40",
        )
        .unwrap();
        assert_eq!(q, catalog::q1_new_tcp());
    }

    #[test]
    fn q6_text_equals_catalog() {
        let q = parse_query(
            "q6_syn_flood",
            "filter(proto == 6) | filter(tcp.flags == 2) | map(dip) | reduce(dip, count) ;
             filter(proto == 6) | filter(tcp.flags == 2) | distinct(dip, sip) | reduce(dip, count) ;
             filter(proto == 6) | filter(tcp.flags == 2) | distinct(dip, sport) | reduce(dip, count) ;
             merge min >= 40",
        )
        .unwrap();
        assert_eq!(q, catalog::q6_syn_flood());
    }

    #[test]
    fn q8_text_equals_catalog() {
        let q = parse_query(
            "q8_slowloris",
            "filter(proto == 6) | filter(dport == 80) | map(dip, sip, sport) \
               | distinct(dip, sip, sport) | map(dip) | reduce(dip, count) ;
             filter(proto == 6) | filter(dport == 80) | map(dip, len) | reduce(dip, sum(len)) ;
             merge and(>= 30, <= 6000)",
        )
        .unwrap();
        assert_eq!(q, catalog::q8_slowloris());
    }

    #[test]
    fn prefixes_and_hex_parse() {
        let q = parse_query(
            "drill",
            "filter(dip/24 == 0xC0A801) | map(sip/16) | reduce(sip/16, count) | where >= 20",
        )
        .unwrap();
        assert_eq!(q.primitive_count(), 4);
        match &q.branches[0].primitives[0] {
            Primitive::Filter(p) => {
                assert_eq!(p[0].expr.prefix, 24);
                assert_eq!(p[0].value, 0xC0A801);
            }
            other => panic!("expected filter, got {other:?}"),
        }
    }

    #[test]
    fn max_function_parses() {
        let q = parse_query("m", "map(dip) | reduce(dip, max(len)) | where >= 1000").unwrap();
        match &q.branches[0].primitives[1] {
            Primitive::Reduce { func, .. } => {
                assert_eq!(*func, ReduceFunc::MaxField(newton_packet::Field::PktLen))
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors_carry_positions_and_messages() {
        let e = parse_query("b", "fitler(proto == 6)").unwrap_err();
        assert!(e.message.contains("unknown primitive"), "{e}");
        let e = parse_query("b", "filter(proot == 6)").unwrap_err();
        assert!(e.message.contains("unknown field"), "{e}");
        let e = parse_query("b", "filter(proto = 6)").unwrap_err();
        assert!(e.message.contains("comparison"), "{e}");
        let e = parse_query("b", "filter(proto == 6) extra").unwrap_err();
        assert!(e.message.contains("trailing"), "{e}");
        let e = parse_query("b", "map(dip/0)").unwrap_err();
        assert!(e.message.contains("out of range"), "{e}");
        let e = parse_query("b", "merge min >= 4").unwrap_err();
        assert!(e.message.contains("no branches"), "{e}");
    }

    #[test]
    fn parsed_queries_compile_and_validate() {
        let q =
            parse_query("t", "filter(proto == 17) | map(dip) | reduce(dip, count) | where >= 50")
                .unwrap();
        assert!(crate::validate::validate(&q).is_empty());
    }

    #[test]
    fn catalog_roundtrips_through_text() {
        for q in catalog::all_queries() {
            let text = super::to_text(&q);
            let back =
                parse_query(&q.name, &text).unwrap_or_else(|e| panic!("{}: {e}\n{text}", q.name));
            assert_eq!(back, q, "{}:\n{text}", q.name);
        }
    }

    #[test]
    fn merge_with_one_branch_is_rejected() {
        let e = parse_query("b", "map(dip) | reduce(dip, count) ; merge min >= 1").unwrap_err();
        assert!(e.message.contains("at least two"), "{e}");
    }
}
