//! # Newton: intent-driven network traffic monitoring
//!
//! A full-system Rust reproduction of *"Newton: Intent-Driven Network
//! Traffic Monitoring"* (CoNEXT 2020). Operators express monitoring intents
//! as stream-processing queries (`filter` / `map` / `distinct` / `reduce`);
//! Newton compiles them to **table rules** for four reconfigurable
//! data-plane modules, so queries install, update and remove at runtime
//! without ever rebooting a switch.
//!
//! This facade re-exports every subsystem:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`packet`] | `newton-packet` | headers, flow keys, global field set, result-snapshot header |
//! | [`sketch`] | `newton-sketch` | hash family, Bloom filter, Count-Min, exact ground truth |
//! | [`trace`] | `newton-trace` | synthetic CAIDA/MAWI-like traces + attack injectors |
//! | [`query`] | `newton-query` | query AST, builder, Q1–Q9 catalog, reference interpreter |
//! | [`dataplane`] | `newton-dataplane` | Tofino-like pipeline, 𝕂/ℍ/𝕊/ℝ modules, resources |
//! | [`compiler`] | `newton-compiler` | decomposition, Algorithm 1 (Opt.1–3), rule generation |
//! | [`net`] | `newton-net` | topologies, routing, failures, cross-switch execution |
//! | [`controller`] | `newton-controller` | rule timing, resilient placement (Algorithm 2) |
//! | [`analyzer`] | `newton-analyzer` | report collection, deferred query parts, accuracy |
//! | [`baselines`] | `newton-baselines` | Sonata, \*Flow, TurboFlow, FlowRadar, Scream models |
//!
//! ## Quickstart
//!
//! ```
//! use newton::compiler::{compile, CompilerConfig};
//! use newton::dataplane::{PipelineConfig, Switch};
//! use newton::query::catalog;
//! use newton::packet::{PacketBuilder, TcpFlags};
//!
//! // Compile the paper's Q1 (new TCP connections) and install it into a
//! // running switch — a pure table-rule operation.
//! let q1 = catalog::q1_new_tcp();
//! let compiled = compile(&q1, 1, &CompilerConfig::default());
//! let mut switch = Switch::new(PipelineConfig::default());
//! switch.install(&compiled.rules).unwrap();
//!
//! // Drive traffic through the pipeline.
//! let syn = PacketBuilder::new().dst_ip(0xAC10_0001).tcp_flags(TcpFlags::SYN).build();
//! let out = switch.process(&syn, None);
//! assert!(out.reports.is_empty(), "one SYN is below Q1's threshold");
//! ```

pub mod report;
pub mod system;

pub use newton_analyzer as analyzer;
pub use newton_baselines as baselines;
pub use newton_compiler as compiler;
pub use newton_controller as controller;
pub use newton_dataplane as dataplane;
pub use newton_metrics as metrics;
pub use newton_net as net;
pub use newton_packet as packet;
pub use newton_query as query;
pub use newton_sketch as sketch;
pub use newton_telemetry as telemetry;
pub use newton_trace as trace;
pub use system::{EpochReport, HostMapping, NewtonSystem, RunReport};
