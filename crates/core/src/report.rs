//! Shared run-report rendering for examples and benches.
//!
//! Every example used to print its own ad-hoc summary; this module gives
//! them one renderer: a run-totals line, a per-epoch time-series table
//! (`--report`), and an optional JSONL telemetry journal (`--json PATH`).
//! The table builds on [`newton_telemetry::render_table`], so example
//! output and bench output share one look.

use crate::system::RunReport;
use crate::NewtonSystem;
use newton_telemetry::render_table;
use std::path::PathBuf;

/// Output switches shared by the examples' command lines.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReportOptions {
    /// `--report`: render the per-epoch time-series table.
    pub table: bool,
    /// `--json PATH`: write the telemetry journal (JSONL) and executor
    /// profile to `PATH`. Implies attaching a recorder before the run.
    pub json: Option<PathBuf>,
}

impl ReportOptions {
    /// Scan the process command line for `--report` and `--json PATH`.
    /// Unknown flags are ignored (examples parse their own, e.g.
    /// `--threads`).
    pub fn from_args() -> Self {
        let mut opts = ReportOptions::default();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--report" => opts.table = true,
                "--json" => {
                    let path = args.next().expect("--json expects a file path");
                    opts.json = Some(PathBuf::from(path));
                }
                _ => {}
            }
        }
        opts
    }

    /// Whether the run needs a recorder attached (journal export).
    pub fn wants_recorder(&self) -> bool {
        self.json.is_some()
    }
}

/// One line of run totals — the line every example used to hand-roll.
pub fn render_summary(report: &RunReport) -> String {
    format!(
        "processed {} packets over {} epochs; {} monitoring messages \
         ({:.6} msgs/pkt), {} snapshot bytes, {} unrouted",
        report.packets,
        report.epochs.len(),
        report.messages,
        report.overhead_ratio(),
        report.snapshot_bytes,
        report.unrouted,
    )
}

/// The per-epoch time series as a right-aligned markdown table.
pub fn render_epochs(report: &RunReport) -> String {
    let rows: Vec<Vec<String>> = report
        .epochs
        .iter()
        .map(|e| {
            let reported: u64 = e.reported.iter().map(|&(_, n)| n).sum();
            vec![
                e.index.to_string(),
                e.packets.to_string(),
                e.messages.to_string(),
                e.message_bytes.to_string(),
                e.unrouted.to_string(),
                e.snapshot_bytes.to_string(),
                reported.to_string(),
            ]
        })
        .collect();
    render_table(
        "per-epoch time series",
        &["epoch", "packets", "messages", "msg bytes", "unrouted", "snapshot bytes", "reported"],
        &rows,
    )
}

/// Per-query final report counts, sorted by query id.
pub fn render_queries(report: &RunReport) -> String {
    let mut rows: Vec<(u32, usize)> =
        report.reported.iter().map(|(&q, keys)| (q, keys.len())).collect();
    rows.sort_unstable_by_key(|&(q, _)| q);
    let rows: Vec<Vec<String>> =
        rows.into_iter().map(|(q, n)| vec![q.to_string(), n.to_string()]).collect();
    render_table("reported keys per query", &["query", "keys"], &rows)
}

/// Print the selected outputs and, when `--json` asked for it, drain the
/// system's recorder to a JSONL journal file (the deterministic journal
/// first, then the explicitly nondeterministic profile as the final line).
pub fn emit(sys: &mut NewtonSystem, report: &RunReport, opts: &ReportOptions) {
    if opts.table {
        print!("{}", render_epochs(report));
        print!("{}", render_queries(report));
    }
    if let Some(path) = &opts.json {
        let Some(rec) = sys.take_recorder() else {
            eprintln!("--json: no recorder attached, journal is empty");
            return;
        };
        let mut out = rec.journal.to_jsonl();
        out.push_str(&rec.profile.to_json());
        out.push('\n');
        std::fs::write(path, out).expect("write --json journal");
        println!("telemetry journal written to {}", path.display());
    }
}
