//! [`NewtonSystem`]: the whole stack behind one handle.
//!
//! Wires together a simulated [`Network`], the [`Controller`]
//! (compile → place → install), and the software [`Analyzer`]
//! (report collection + epoch-end register probing), and drives traces
//! through them in epochs — the loop every evaluation experiment and
//! production deployment shares:
//!
//! ```text
//! per epoch: deliver packets → collect mirrored reports → at the boundary,
//!            probe registers for deferred query parts → reset state
//! ```

use newton_analyzer::{Analyzer, IncidentLog, OverheadMeter};
use newton_compiler::CompilerConfig;
use newton_controller::{Controller, InstallReceipt, RepairOutcome};
use newton_dataplane::{BankStats, PipelineConfig, QueryId};
use newton_metrics::{Counter, Histogram, MetricsRegistry};
use newton_net::{LinkKey, LinkLoad, Network, NodeId, Parallelism, PoolMetrics, Topology};
use newton_packet::FieldVector;
use newton_packet::Packet;
use newton_query::ast::Primitive;
use newton_query::{Interpreter, Query};
use newton_sketch::hash::mix64;
use newton_sketch::{FastMap, FastSet};
use newton_telemetry::{Event, Recorder, Telemetry};
use newton_trace::stream::{ReplayOptions, StreamConfig, StreamMetrics, StreamReplay};
use newton_trace::Trace;
use std::collections::HashMap;

/// How packets map to (ingress, egress) edge switches.
pub enum HostMapping {
    /// Hash src/dst IPs over the edge switches (deterministic per host).
    ByAddress,
    /// A fixed pair — the paper's linear-testbed style.
    Fixed { ingress: NodeId, egress: NodeId },
}

/// One epoch's counters in the [`RunReport`] time series — the per-window
/// view the paper's figures plot (message overhead over time, failure
/// timelines), derived deterministically from modeled time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EpochReport {
    /// Epoch index (0-based) within the run.
    pub index: u64,
    /// Raw packets the window carried.
    pub packets: u64,
    /// Monitoring messages emitted during the window.
    pub messages: u64,
    pub message_bytes: u64,
    /// Packets dropped for lack of a route during the window.
    pub unrouted: u64,
    /// Snapshot-header bytes added on internal links during the window.
    pub snapshot_bytes: u64,
    /// Reported-key count per query this epoch, sorted by query id.
    pub reported: Vec<(QueryId, u64)>,
}

/// Results of running one trace through the system.
///
/// `PartialEq` compares every field (including the f64 repair delay
/// exactly): two runs are equal iff they are the *same deterministic
/// execution* — the relation the streamed-vs-materialized equivalence
/// tests pin.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunReport {
    /// Per query: the union of finally-reported keys across epochs.
    pub reported: FastMap<QueryId, FastSet<u64>>,
    /// Monitoring messages vs raw packets.
    pub messages: u64,
    pub packets: u64,
    /// Per-epoch time series. Normally `epochs.len()` is the epoch count,
    /// but [`NewtonSystem::set_epoch_retention`] may trim the head for
    /// soak-length runs — `epoch_count` is always the true total.
    pub epochs: Vec<EpochReport>,
    /// Total epochs the run closed (immune to retention trimming).
    pub epoch_count: u64,
    /// Extra bytes the snapshot header put on internal links.
    pub snapshot_bytes: u64,
    /// Per-(query, key) incidents with first/last epoch timing.
    pub incidents: IncidentLog,
    /// Packets dropped for lack of a route (failures, partitions) —
    /// traffic no query could observe on the data plane.
    pub unrouted: u64,
    /// Queries that had missing slices re-placed by the controller's
    /// repair loop, summed over repair passes.
    pub repairs: u64,
    /// Modelled rule-channel wall clock spent on repairs, summed over
    /// passes (each pass's delay is the max over its switches).
    pub repair_delay_ms: f64,
    /// (query, epoch) pairs that ran on the software interpreter because a
    /// failure left the live data plane unable to execute the query.
    pub degraded_query_epochs: u64,
    /// Switch failures that destroyed installed rules — each is a
    /// detection gap until the repair loop re-places the lost slices.
    pub state_loss_events: u64,
}

impl RunReport {
    /// Messages per raw packet (the Fig. 12 metric).
    pub fn overhead_ratio(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.messages as f64 / self.packets as f64
        }
    }
}

/// In-flight state of one run of the packet-driven epoch driver
/// (`begin_run` → `ingest_slice`* → `end_run`): everything the old
/// monolithic trace loop kept on its stack, lifted into a cursor so
/// materialized traces and streamed segments share the same loop.
struct RunCursor {
    report: RunReport,
    meter: OverheadMeter,
    /// Cumulative-counter checkpoint of the previous epoch boundary that
    /// turns the run meter into the per-epoch time series.
    prev: EpochReport,
    prev_links: FastMap<LinkKey, LinkLoad>,
    /// Global arrival index of the next packet (the trace-packet hook key).
    pkt_index: u64,
    epoch_ns: u64,
    /// Timestamp window id (`ts_ns / epoch_ns`) of the open epoch, if any.
    window: Option<u64>,
    /// Ordinal of the open epoch among non-empty windows — the
    /// `current_epoch` stamp while it executes and its
    /// [`EpochReport::index`].
    ordinal: u64,
}

/// Live operational metrics of the control path, registered under one
/// [`MetricsRegistry`] by [`NewtonSystem::enable_metrics`].
///
/// Two flavours of instrument live here. The `controller_*_ns` histograms
/// time real wall clock around each control-plane operation — data that is
/// nondeterministic by nature and therefore lives strictly outside the
/// telemetry journal (the journal byte-identity tests pin that metrics
/// on/off changes nothing the journal records). The `compile_cache_*` and
/// `channel_*` counters mirror the controller's own cumulative stats
/// structs ([`Controller::cache_stats`], [`Controller::channel_stats`])
/// into the registry via [`Counter::store_total`] after every operation,
/// so a scrape always sees the same totals the structs would report.
struct SystemMetrics {
    registry: MetricsRegistry,
    install_ns: Histogram,
    update_ns: Histogram,
    remove_ns: Histogram,
    retune_ns: Histogram,
    repair_ns: Histogram,
    cache_hits: Counter,
    cache_misses: Counter,
    channel_rules_installed: Counter,
    channel_rules_removed: Counter,
    channel_rules_modified: Counter,
    channel_messages: Counter,
    channel_bytes: Counter,
}

impl SystemMetrics {
    fn register(reg: &MetricsRegistry) -> Self {
        SystemMetrics {
            registry: reg.clone(),
            install_ns: reg
                .histogram("controller_install_ns", "Wall-clock nanoseconds per query install"),
            update_ns: reg
                .histogram("controller_update_ns", "Wall-clock nanoseconds per in-place update"),
            remove_ns: reg
                .histogram("controller_remove_ns", "Wall-clock nanoseconds per query removal"),
            retune_ns: reg
                .histogram("controller_retune_ns", "Wall-clock nanoseconds per threshold retune"),
            repair_ns: reg
                .histogram("controller_repair_ns", "Wall-clock nanoseconds per repair pass"),
            cache_hits: reg.counter("compile_cache_hits_total", "Compilation-cache lookups served"),
            cache_misses: reg
                .counter("compile_cache_misses_total", "Compilation-cache lookups compiled fresh"),
            channel_rules_installed: reg
                .counter("channel_rules_installed_total", "Rules shipped over the rule channel"),
            channel_rules_removed: reg
                .counter("channel_rules_removed_total", "Rule removals over the rule channel"),
            channel_rules_modified: reg
                .counter("channel_rules_modified_total", "In-place rule edits over the channel"),
            channel_messages: reg
                .counter("channel_messages_total", "Per-switch rule-channel batches issued"),
            channel_bytes: reg.counter("channel_bytes_total", "Modelled rule-channel bytes"),
        }
    }

    /// Mirror the controller's cumulative stats into the registry.
    fn sync_controller(&self, controller: &Controller) {
        let cache = controller.cache_stats();
        self.cache_hits.store_total(cache.hits);
        self.cache_misses.store_total(cache.misses);
        let ch = controller.channel_stats();
        self.channel_rules_installed.store_total(ch.rules_installed);
        self.channel_rules_removed.store_total(ch.rules_removed);
        self.channel_rules_modified.store_total(ch.rules_modified);
        self.channel_messages.store_total(ch.messages);
        self.channel_bytes.store_total(ch.bytes);
    }
}

/// The full Newton stack: network + controller + analyzer.
pub struct NewtonSystem {
    net: Network,
    controller: Controller,
    analyzer: Analyzer,
    mapping: HostMapping,
    stages_per_switch: usize,
    /// Queries whose slices exceed the network's reachable depth run their
    /// logic on the analyzer instead (§5.2): the data plane forwards, the
    /// software executes — at per-packet mirroring cost.
    software_fallback: HashMap<QueryId, (Query, Interpreter)>,
    /// Queries a failure has degraded below data-plane coverage: their
    /// software twins run until a repair pass restores full placement.
    /// Cleared at the start of every trace run.
    degraded: HashMap<QueryId, (Query, Interpreter)>,
    /// The ids the *latest* repair pass still lists as degraded; entries of
    /// `degraded` absent from this set retire at the next epoch boundary.
    degraded_ids: FastSet<QueryId>,
    /// Whether scheduled events trigger the controller's repair loop.
    repair_enabled: bool,
    /// Thread budget of the epoch executor (delivery + epoch reset).
    parallelism: Parallelism,
    /// Telemetry sink: `None` (the default) costs nothing; a [`Recorder`]
    /// journals deterministic per-epoch events plus a nondeterministic
    /// executor profile.
    recorder: Option<Recorder>,
    /// Global packet index to journal a full execution trace for
    /// (the `NEWTON_TRACE_PACKET` hook).
    trace_packet_idx: Option<u64>,
    /// Modeled-time cursor: the epoch currently executing, stamped onto
    /// controller spans and dynamics events.
    current_epoch: u64,
    /// Keep only this many trailing entries of `RunReport::epochs`
    /// (`None` keeps all): bounds a soak run's only per-epoch growth.
    epoch_retention: Option<usize>,
    /// Capacity high-water mark of the per-slice delivery batch, carried
    /// across slices so streamed segments reuse one steady allocation.
    batch_hint: usize,
    /// Live operational metrics (`None`, the default, costs nothing on any
    /// path; see [`NewtonSystem::enable_metrics`]).
    metrics: Option<SystemMetrics>,
}

/// Epoch batches below this size run sequentially even when more threads
/// are configured: spawning workers costs more than the delivery itself.
const PAR_BATCH_MIN: usize = 256;

impl NewtonSystem {
    /// Build a system over `topo` with default pipelines and compiler.
    pub fn new(topo: Topology) -> Self {
        Self::with_config(topo, PipelineConfig::default(), CompilerConfig::default(), 12)
    }

    /// Full-control constructor (8 concurrent-query register slots).
    pub fn with_config(
        topo: Topology,
        pipeline: PipelineConfig,
        compiler: CompilerConfig,
        stages_per_switch: usize,
    ) -> Self {
        Self::with_config_slots(topo, pipeline, compiler, stages_per_switch, 8)
    }

    /// [`with_config`](Self::with_config) with an explicit concurrent-query
    /// slot budget: installs beyond it fail with
    /// [`InstallError::SlotsExhausted`](newton_controller::InstallError)
    /// instead of aliasing register ranges.
    pub fn with_config_slots(
        topo: Topology,
        pipeline: PipelineConfig,
        compiler: CompilerConfig,
        stages_per_switch: usize,
        register_slots: u32,
    ) -> Self {
        NewtonSystem {
            net: Network::new(topo, pipeline),
            controller: Controller::with_slots(compiler, 0xA11CE, register_slots),
            analyzer: Analyzer::new(),
            mapping: HostMapping::ByAddress,
            stages_per_switch,
            software_fallback: HashMap::new(),
            degraded: HashMap::new(),
            degraded_ids: FastSet::default(),
            repair_enabled: true,
            parallelism: Parallelism::default(),
            recorder: None,
            trace_packet_idx: std::env::var("NEWTON_TRACE_PACKET")
                .ok()
                .and_then(|v| v.parse().ok()),
            current_epoch: 0,
            epoch_retention: None,
            batch_hint: 0,
            metrics: None,
        }
    }

    /// Attach a live [`MetricsRegistry`]: control-plane operations time
    /// themselves into `controller_*_ns` histograms, the executor pool
    /// feeds the `executor_*` family, streamed replays feed `stream_*`,
    /// and the controller's cache/channel stats mirror into counters.
    ///
    /// Metrics are wall-clock observations and therefore live strictly
    /// outside the telemetry journal: enabling them never changes a byte
    /// of what the [`Recorder`] journals (test-pinned). With no registry
    /// attached every instrument is a no-op handle — one pointer test on
    /// the slow (per-op, per-batch) paths, nothing on the per-packet path.
    pub fn enable_metrics(&mut self, registry: &MetricsRegistry) {
        self.net.set_metrics(Some(PoolMetrics::register(registry)));
        self.metrics = Some(SystemMetrics::register(registry));
    }

    /// The attached metrics registry, if any.
    pub fn metrics_registry(&self) -> Option<&MetricsRegistry> {
        self.metrics.as_ref().map(|m| &m.registry)
    }

    /// Attach (or fetch) the telemetry recorder: subsequent installs,
    /// removes, and trace runs journal into it. With no recorder attached
    /// (the default) telemetry costs nothing.
    pub fn enable_recorder(&mut self) -> &mut Recorder {
        self.recorder.get_or_insert_with(Recorder::new)
    }

    /// The attached recorder, if any.
    pub fn recorder(&self) -> Option<&Recorder> {
        self.recorder.as_ref()
    }

    /// Detach and return the recorder (journal + profile), leaving the
    /// system telemetry-free again.
    pub fn take_recorder(&mut self) -> Option<Recorder> {
        self.recorder.take()
    }

    /// Journal one packet's full execution trace at its ingress switch
    /// during the next run (`None` disables). Defaults from the
    /// `NEWTON_TRACE_PACKET` environment variable; the packet index is
    /// global across the trace. Requires an attached recorder.
    pub fn set_trace_packet(&mut self, idx: Option<u64>) {
        self.trace_packet_idx = idx;
    }

    /// Enable/disable the controller's failure-repair loop (on by
    /// default). With repair off, a switch that crashes and reboots blank
    /// stays blank — the before/after comparison of the Fig. 9 failure
    /// experiments.
    pub fn set_repair(&mut self, enabled: bool) {
        self.repair_enabled = enabled;
    }

    /// Whether the repair loop runs after scheduled events.
    pub fn repair_enabled(&self) -> bool {
        self.repair_enabled
    }

    /// Select the packet → edge-switch mapping.
    pub fn set_mapping(&mut self, mapping: HostMapping) {
        self.mapping = mapping;
    }

    /// Set the epoch executor's thread budget (`Parallelism::sequential()`
    /// restores the single-threaded path). Output is bit-identical at any
    /// setting; only wall-clock changes.
    pub fn set_parallelism(&mut self, parallelism: Parallelism) {
        self.parallelism = parallelism;
    }

    /// The configured thread budget.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Set the delivery engine's packets-per-batch budget — how many
    /// queued packets a switch pipeline executes per batched call.
    /// Output is bit-identical at any setting (the journal byte-identity
    /// tests pin this); only throughput changes.
    pub fn set_batch_lanes(&mut self, lanes: usize) {
        self.net.set_batch_lanes(lanes);
    }

    /// Keep only the trailing `cap` entries of [`RunReport::epochs`]
    /// (`None`, the default, keeps the full time series). The per-epoch
    /// series is the only run output that grows with modeled time, so
    /// capping it makes a soak run's footprint independent of trace
    /// length; [`RunReport::epoch_count`] still counts every epoch, and
    /// the cumulative totals are unaffected.
    pub fn set_epoch_retention(&mut self, cap: Option<usize>) {
        self.epoch_retention = cap;
    }

    /// Threads to use for a delivery batch of `len` packets.
    fn batch_threads(&self, len: usize) -> usize {
        if len < PAR_BATCH_MIN {
            return 1;
        }
        // Workers beyond the machine's cores cannot speed anything up and
        // actively slow the executor down (they time-slice against the
        // peers they wait on), so the configured budget is capped at the
        // effective parallelism. When the cap leaves a single worker —
        // every single-core host — `deliver_batch_parallel` short-circuits
        // to the plain batched path and pays zero parallel overhead.
        self.parallelism.threads.min(newton_net::effective_parallelism())
    }

    /// The underlying network (failure injection, inspection).
    pub fn network(&self) -> &Network {
        &self.net
    }

    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// The controller (timing receipts, installed-query inventory).
    pub fn controller(&self) -> &Controller {
        &self.controller
    }

    /// Mutable controller access (diff-install toggle, channel-stats
    /// resets in benches and equivalence tests).
    pub fn controller_mut(&mut self) -> &mut Controller {
        &mut self.controller
    }

    /// Install a query network-wide; the analyzer learns its plan.
    pub fn install(
        &mut self,
        query: &Query,
    ) -> Result<InstallReceipt, newton_controller::InstallError> {
        let start = self.metrics.as_ref().map(|_| std::time::Instant::now());
        let result = self.controller.install(query, &mut self.net, self.stages_per_switch);
        if let (Some(m), Some(t)) = (self.metrics.as_ref(), start) {
            // Failed installs are timed too: a scrape should see the cost
            // of rejected work, not only the happy path.
            m.install_ns.observe(t.elapsed().as_nanos() as u64);
            m.sync_controller(&self.controller);
        }
        let receipt = result?;
        if let Some(rec) = self.recorder.as_mut() {
            rec.record(Event::Install {
                epoch: self.current_epoch,
                query: receipt.id,
                rules: receipt.rules,
                switches: receipt.switches,
                slices: receipt.slices,
                overflow_slices: receipt.overflow_slices,
                delay_ms: receipt.delay_ms,
            });
        }
        let plan = self.controller.installed()[&receipt.id].plan.clone();
        self.analyzer.register(receipt.id, plan);
        if receipt.overflow_slices > 0 {
            // The query needs more switches than any path offers; its
            // remainder cannot execute on the data plane, so the analyzer
            // runs the whole query in software on mirrored traffic.
            self.software_fallback
                .insert(receipt.id, (query.clone(), Interpreter::new(query.clone())));
        }
        Ok(receipt)
    }

    /// Remove a query everywhere.
    pub fn remove(&mut self, id: QueryId) -> Option<InstallReceipt> {
        self.analyzer.unregister(id);
        self.software_fallback.remove(&id);
        let start = self.metrics.as_ref().map(|_| std::time::Instant::now());
        let receipt = self.controller.remove(id, &mut self.net);
        if let (Some(m), Some(t)) = (self.metrics.as_ref(), start) {
            m.remove_ns.observe(t.elapsed().as_nanos() as u64);
            m.sync_controller(&self.controller);
        }
        if let (Some(r), Some(rec)) = (&receipt, self.recorder.as_mut()) {
            rec.record(Event::Remove {
                epoch: self.current_epoch,
                query: r.id,
                rules: r.rules,
                switches: r.switches,
                delay_ms: r.delay_ms,
            });
        }
        receipt
    }

    /// Update a live query in place: same [`QueryId`], same register
    /// slot, diff-based rule push when the placement shape is unchanged
    /// (see [`Controller::update`]). The analyzer re-learns the plan and
    /// the software-fallback twin is refreshed under the stable id, so
    /// incident attribution and journal spans stay continuous.
    pub fn update(
        &mut self,
        id: QueryId,
        query: &Query,
    ) -> Result<InstallReceipt, newton_controller::UpdateError> {
        let start = self.metrics.as_ref().map(|_| std::time::Instant::now());
        let result = self.controller.update(id, query, &mut self.net, self.stages_per_switch);
        if let (Some(m), Some(t)) = (self.metrics.as_ref(), start) {
            m.update_ns.observe(t.elapsed().as_nanos() as u64);
            m.sync_controller(&self.controller);
        }
        let receipt = result?;
        if let Some(rec) = self.recorder.as_mut() {
            rec.record(Event::Update {
                epoch: self.current_epoch,
                query: receipt.id,
                rules: receipt.rules,
                switches: receipt.switches,
                slices: receipt.slices,
                diff: receipt.diff,
                delay_ms: receipt.delay_ms,
            });
        }
        let plan = self.controller.installed()[&receipt.id].plan.clone();
        self.analyzer.unregister(id);
        self.analyzer.register(receipt.id, plan);
        self.software_fallback.remove(&id);
        if receipt.overflow_slices > 0 {
            self.software_fallback
                .insert(receipt.id, (query.clone(), Interpreter::new(query.clone())));
        }
        Ok(receipt)
    }

    /// Retune a live query's report threshold in place (a handful of rule
    /// modifications; epoch state survives — see
    /// [`Controller::retune_threshold`]).
    pub fn retune_threshold(
        &mut self,
        id: QueryId,
        new_threshold: u64,
    ) -> Result<InstallReceipt, newton_controller::RetuneError> {
        let start = self.metrics.as_ref().map(|_| std::time::Instant::now());
        let result = self.controller.retune_threshold(id, new_threshold, &mut self.net);
        if let (Some(m), Some(t)) = (self.metrics.as_ref(), start) {
            m.retune_ns.observe(t.elapsed().as_nanos() as u64);
            m.sync_controller(&self.controller);
        }
        result
    }

    /// Whether a query fell back to software execution.
    pub fn runs_in_software(&self, id: QueryId) -> bool {
        self.software_fallback.contains_key(&id)
    }

    /// One mirrored message per packet matching any branch's front
    /// filters — what the fallback costs the monitoring plane.
    fn fallback_mirrors(query: &Query, pkt: &Packet) -> bool {
        let v = FieldVector::from_packet(pkt);
        query.branches.iter().any(|b| {
            b.primitives.iter().take_while(|p| matches!(p, Primitive::Filter(_))).all(|p| match p {
                Primitive::Filter(preds) => preds.iter().all(|q| q.eval(v)),
                _ => true,
            })
        })
    }

    /// The (ingress, egress) edge switches a packet enters and leaves
    /// through under the configured [`HostMapping`]. Public so external
    /// harnesses (the soak bench's sequential-delivery baseline) can
    /// replay a trace through [`Network::deliver`] on exactly the routes
    /// the system itself would use.
    pub fn endpoints(&self, pkt: &Packet) -> (NodeId, NodeId) {
        match self.mapping {
            HostMapping::Fixed { ingress, egress } => (ingress, egress),
            HostMapping::ByAddress => {
                let edges = self.net.topology().edge_switches();
                let pick = |ip: u32, salt: u64| {
                    edges[(mix64(ip as u64 ^ salt) % edges.len() as u64) as usize]
                };
                (pick(pkt.src_ip, 0x11), pick(pkt.dst_ip, 0x22))
            }
        }
    }

    /// Run a trace in `epoch_ms` windows; returns the per-query final
    /// report sets and overhead accounting. Data-plane state resets at
    /// every epoch boundary.
    pub fn run_trace(&mut self, trace: &Trace, epoch_ms: u64) -> RunReport {
        self.run_trace_with_events(trace, epoch_ms, &mut newton_net::EventSchedule::new())
    }

    /// [`run_trace`](Self::run_trace) with scheduled network dynamics: each
    /// event fires once simulated time passes its timestamp (Fig. 9's
    /// failure scenarios, scripted). After every advance that fired, the
    /// controller's repair loop re-places slices lost to switch crashes
    /// and degrades unexecutable queries to the software interpreter for
    /// the remainder of the epoch (unless [`set_repair`](Self::set_repair)
    /// disabled it). The schedule is also advanced at each epoch boundary
    /// and drained past trace end, so every event fires exactly once and
    /// `events.pending()` is 0 when this returns.
    pub fn run_trace_with_events(
        &mut self,
        trace: &Trace,
        epoch_ms: u64,
        events: &mut newton_net::EventSchedule,
    ) -> RunReport {
        let mut cur = self.begin_run(epoch_ms);
        self.ingest_slice(trace.packets(), &mut cur, events);
        self.end_run(cur, events)
    }

    /// Run a [`StreamConfig`]'s segments through the epoch loop without
    /// ever materializing the trace: segments are generated on the fly by
    /// [`StreamReplay`]'s bounded producer pool and their buffers recycled
    /// after delivery, so peak memory is `O(producers × queue_depth ×
    /// segment size)` — independent of the stream length. The run is
    /// byte-identical (reports and telemetry journal) to
    /// [`run_trace`](Self::run_trace) over
    /// [`StreamConfig::materialize`]'s trace, at every thread count and
    /// pool shape: the driver below is the same code for both, and segment
    /// boundaries only add extra delivery-batch flushes, which the batched
    /// executor's sequential-equivalence contract makes invisible.
    pub fn run_stream(
        &mut self,
        cfg: &StreamConfig,
        epoch_ms: u64,
        opts: &ReplayOptions,
    ) -> RunReport {
        self.run_stream_with_events(cfg, epoch_ms, opts, &mut newton_net::EventSchedule::new())
    }

    /// [`run_stream`](Self::run_stream) with scheduled network dynamics —
    /// the streamed twin of
    /// [`run_trace_with_events`](Self::run_trace_with_events).
    pub fn run_stream_with_events(
        &mut self,
        cfg: &StreamConfig,
        epoch_ms: u64,
        opts: &ReplayOptions,
        events: &mut newton_net::EventSchedule,
    ) -> RunReport {
        let mut cur = self.begin_run(epoch_ms);
        // With a registry attached the replay reports lane occupancy,
        // backpressure stalls, and buffer-recycle hit rates; the packets
        // it yields are byte-identical either way.
        let stream_metrics = match self.metrics.as_ref() {
            Some(m) => {
                // Same lane count `start_observed` derives, so the gauge
                // family matches the pool exactly (0 lanes = inline mode).
                let lanes = opts.producers.min(cfg.segments as usize);
                StreamMetrics::register(&m.registry, lanes)
            }
            None => StreamMetrics::default(),
        };
        let mut replay = StreamReplay::start_observed(cfg.clone(), opts, stream_metrics);
        while let Some(seg) = replay.next_segment() {
            self.ingest_slice(seg.packets(), &mut cur, events);
            replay.recycle(seg);
        }
        self.end_run(cur, events)
    }

    /// Set up a run of the packet-driven epoch driver: batch scratch
    /// sizing, degraded-set reset, and a fresh [`RunCursor`]. The driver
    /// is `begin_run` → [`ingest_slice`](Self::ingest_slice) (any number
    /// of timestamp-ordered slices) → [`end_run`](Self::end_run); epoch
    /// boundaries are detected per packet from its timestamp window, so
    /// materialized traces and streamed segments share every line of the
    /// loop.
    fn begin_run(&mut self, epoch_ms: u64) -> RunCursor {
        // Size every switch's batch scratch up front: the delivery engine
        // hands at most `batch_lanes` packets per pipeline call, and lane
        // expansion rarely exceeds two live query slices per packet. The
        // scratch is recycled (cleared, never shrunk) across batches and
        // epochs, so this is the only growth the hot path should see.
        let lanes = self.net.batch_lanes();
        for s in 0..self.net.switch_count() {
            self.net.switch_mut(s).reserve_batch(lanes, lanes * 2);
        }
        self.degraded.clear();
        self.degraded_ids.clear();
        self.current_epoch = 0;
        RunCursor {
            report: RunReport::default(),
            meter: OverheadMeter::new(),
            prev: EpochReport::default(),
            prev_links: FastMap::default(),
            pkt_index: 0,
            epoch_ns: epoch_ms.max(1) * 1_000_000,
            window: None,
            ordinal: 0,
        }
    }

    /// Drive one timestamp-ordered slice of packets through the run:
    /// every epoch boundary the slice crosses gets its full boundary work
    /// ([`close_epoch`](Self::close_epoch)), exactly as the materialized
    /// loop performed between `Trace::epochs` windows. The delivery batch
    /// is local to the slice (its `&Packet` borrows must end before a
    /// streamed segment's buffer is recycled) and is flushed on exit; a
    /// segment boundary mid-epoch therefore only splits a delivery batch,
    /// which the executor's sequential-equivalence contract guarantees is
    /// unobservable.
    fn ingest_slice(
        &mut self,
        pkts: &[Packet],
        cur: &mut RunCursor,
        events: &mut newton_net::EventSchedule,
    ) {
        let mut batch: Vec<(&Packet, NodeId, NodeId)> =
            Vec::with_capacity(self.batch_hint.min(pkts.len()));
        for pkt in pkts {
            let w = pkt.ts_ns / cur.epoch_ns;
            match cur.window {
                Some(open) if open == w => {}
                Some(_) => {
                    // The slice crossed into a later window (packets are
                    // sorted): boundary work for the open epoch, then the
                    // new window opens under the next ordinal.
                    self.flush_batch(&mut batch, &mut cur.report, &mut cur.meter);
                    self.close_epoch(cur, events);
                    cur.window = Some(w);
                    cur.ordinal += 1;
                    self.current_epoch = cur.ordinal;
                }
                None => cur.window = Some(w),
            }
            cur.meter.packet();
            // Packets queued so far must route under the pre-event
            // state: flush the batch before any scheduled dynamic
            // fires, then advance the schedule and repair.
            if events.next_ts().is_some_and(|t| pkt.ts_ns >= t) {
                self.flush_batch(&mut batch, &mut cur.report, &mut cur.meter);
                let adv = events.advance_network(pkt.ts_ns, &mut self.net);
                self.apply_dynamics(adv, &mut cur.report, &mut cur.meter);
            }
            let (ingress, egress) = self.endpoints(pkt);
            if self.trace_packet_idx == Some(cur.pkt_index) && self.recorder.is_some() {
                // Flush so the traced packet sees exactly the ingress
                // state it would meet in delivery order, then walk a
                // cloned switch — the real one is untouched.
                self.flush_batch(&mut batch, &mut cur.report, &mut cur.meter);
                let traces: Vec<String> =
                    newton_dataplane::debug::trace_packet(self.net.switch(ingress), pkt)
                        .iter()
                        .map(|t| t.to_string())
                        .collect();
                if let Some(rec) = self.recorder.as_mut() {
                    rec.record(Event::PacketTrace {
                        index: cur.pkt_index,
                        switch: ingress,
                        traces,
                    });
                }
            }
            cur.pkt_index += 1;
            batch.push((pkt, ingress, egress));
            for (query, interp) in self.software_fallback.values_mut() {
                if Self::fallback_mirrors(query, pkt) {
                    cur.meter.message(pkt.wire_len as u64);
                    interp.observe(pkt);
                }
            }
            for (query, interp) in self.degraded.values_mut() {
                if Self::fallback_mirrors(query, pkt) {
                    cur.meter.message(pkt.wire_len as u64);
                    interp.observe(pkt);
                }
            }
        }
        self.flush_batch(&mut batch, &mut cur.report, &mut cur.meter);
        self.batch_hint = self.batch_hint.max(batch.capacity());
    }

    /// The boundary work of the open epoch: fire in-window trailing
    /// events, probe-and-finalize the analyzer, retire healed software
    /// twins, checkpoint the per-epoch time-series entry, journal the
    /// epoch telemetry, and reset data-plane state. The delivery batch
    /// must already be flushed.
    fn close_epoch(&mut self, cur: &mut RunCursor, events: &mut newton_net::EventSchedule) {
        let Some(window) = cur.window else { return };
        let epoch_idx = cur.ordinal;
        // Epochs are timestamp windows; the window's own end, not the
        // last packet's timestamp, is when boundary work happens.
        // Events timestamped after the epoch's last packet still
        // belong to this window: fire them before the boundary probes,
        // exactly as wall-clock hardware would lose state before the
        // epoch read-out.
        let epoch_end_ns = (window + 1) * cur.epoch_ns;
        if events.next_ts().is_some_and(|t| t <= epoch_end_ns) {
            let adv = events.advance_network(epoch_end_ns, &mut self.net);
            self.apply_dynamics(adv, &mut cur.report, &mut cur.meter);
        }
        let report = &mut cur.report;
        let mut epoch_reported: FastMap<QueryId, u64> = FastMap::default();
        for (id, keys) in self.finish_epoch() {
            *epoch_reported.entry(id).or_default() += keys.len() as u64;
            report.incidents.observe_epoch(id, keys.iter().copied());
            report.reported.entry(id).or_default().extend(keys);
        }
        for (&id, (_, interp)) in &mut self.software_fallback {
            let keys = interp.end_epoch().reported;
            *epoch_reported.entry(id).or_default() += keys.len() as u64;
            report.incidents.observe_epoch(id, keys.iter().copied());
            report.reported.entry(id).or_default().extend(keys);
        }
        // Degraded queries report from their software twins; twins the
        // latest repair pass cleared retire here — degradation lasts
        // "the remainder of the epoch".
        let mut healed: Vec<QueryId> = Vec::new();
        for (&id, (_, interp)) in &mut self.degraded {
            report.degraded_query_epochs += 1;
            let keys = interp.end_epoch().reported;
            *epoch_reported.entry(id).or_default() += keys.len() as u64;
            report.incidents.observe_epoch(id, keys.iter().copied());
            report.reported.entry(id).or_default().extend(keys);
            if !self.degraded_ids.contains(&id) {
                healed.push(id);
            }
        }
        // Sorted so heal events journal in a canonical order (the
        // degraded map iterates in hash order).
        healed.sort_unstable();
        for id in healed {
            self.degraded.remove(&id);
            if let Some(rec) = self.recorder.as_mut() {
                rec.record(Event::QueryHealed { epoch: epoch_idx, query: id });
            }
        }
        report.incidents.end_epoch();
        // The epoch's time-series entry: deltas of the cumulative run
        // counters since the previous boundary.
        let mut reported: Vec<(QueryId, u64)> = epoch_reported.into_iter().collect();
        reported.sort_unstable_by_key(|&(q, _)| q);
        let ep = EpochReport {
            index: epoch_idx,
            packets: cur.meter.raw_packets() - cur.prev.packets,
            messages: cur.meter.messages() - cur.prev.messages,
            message_bytes: cur.meter.message_bytes() - cur.prev.message_bytes,
            unrouted: cur.meter.unrouted_packets() - cur.prev.unrouted,
            snapshot_bytes: report.snapshot_bytes - cur.prev.snapshot_bytes,
            reported,
        };
        cur.prev = EpochReport {
            packets: cur.meter.raw_packets(),
            messages: cur.meter.messages(),
            message_bytes: cur.meter.message_bytes(),
            unrouted: cur.meter.unrouted_packets(),
            snapshot_bytes: cur.report.snapshot_bytes,
            ..EpochReport::default()
        };
        if self.recorder.is_some() {
            self.emit_epoch_telemetry(&ep, &mut cur.prev_links);
        }
        cur.report.epoch_count += 1;
        if let Some(cap) = self.epoch_retention {
            while cur.report.epochs.len() >= cap.max(1) {
                cur.report.epochs.remove(0);
            }
        }
        cur.report.epochs.push(ep);
        self.net.clear_state_parallel(self.parallelism.threads);
    }

    /// Close the final epoch, drain the event schedule past the trace end
    /// (schedules always finish empty — replays would otherwise see stale
    /// cursors), and finalize the run totals.
    fn end_run(&mut self, mut cur: RunCursor, events: &mut newton_net::EventSchedule) -> RunReport {
        self.close_epoch(&mut cur, events);
        self.current_epoch = cur.report.epoch_count;
        let adv = events.advance_network(u64::MAX, &mut self.net);
        self.apply_dynamics(adv, &mut cur.report, &mut cur.meter);
        cur.report.messages = cur.meter.messages();
        cur.report.packets = cur.meter.raw_packets();
        cur.report.unrouted = cur.meter.unrouted_packets();
        if let Some(rec) = self.recorder.as_mut() {
            let prof = self.net.take_parallel_profile();
            rec.profile.merge(&prof);
        }
        cur.report
    }

    /// Journal the epoch-boundary telemetry: the epoch summary, then each
    /// switch's state-bank counters and occupied stage gauges (switch-id
    /// order), then the epoch's per-link load deltas (canonical link
    /// order). Every value derives from modeled state that is identical at
    /// any executor thread count, so the journal stays byte-identical.
    fn emit_epoch_telemetry(
        &mut self,
        ep: &EpochReport,
        prev_links: &mut FastMap<LinkKey, LinkLoad>,
    ) {
        let Some(rec) = self.recorder.as_mut() else { return };
        rec.record(Event::EpochSummary {
            epoch: ep.index,
            packets: ep.packets,
            messages: ep.messages,
            message_bytes: ep.message_bytes,
            unrouted: ep.unrouted,
            snapshot_bytes: ep.snapshot_bytes,
            reported: ep.reported.clone(),
        });
        for sw in 0..self.net.switch_count() {
            // Drained before the epoch reset, so the counters cover exactly
            // this window.
            let stats = self.net.switch_mut(sw).take_bank_stats();
            if stats != BankStats::default() {
                rec.record(Event::StateBank {
                    epoch: ep.index,
                    switch: sw,
                    insertions: stats.insertions,
                    collisions: stats.collisions,
                    evictions: stats.evictions,
                });
            }
            let stages = self.net.switch(sw).config().stages;
            for stage in 0..stages {
                let u = self.net.switch(sw).stage_utilization(stage);
                if u.rules == 0 {
                    continue;
                }
                rec.record(Event::StageGauge {
                    epoch: ep.index,
                    switch: sw,
                    stage,
                    modules: u.modules,
                    rules: u.rules,
                    sram: u.resources.sram,
                    tcam: u.resources.tcam,
                    hash_bits: u.resources.hash_bits,
                    salus: u.resources.salu,
                });
            }
        }
        for (key, load) in self.net.link_loads_sorted() {
            let delta = prev_links.get(&key).map_or(load, |p| load.since(p));
            if delta.is_empty() {
                continue;
            }
            let (a, b) = key.endpoints();
            rec.record(Event::LinkLoad {
                epoch: ep.index,
                a,
                b,
                packets: delta.packets,
                payload_bytes: delta.payload_bytes,
                snapshot_bytes: delta.snapshot_bytes,
            });
            prev_links.insert(key, load);
        }
    }

    /// Deliver and drain the queued batch into the report and meter.
    fn flush_batch(
        &mut self,
        batch: &mut Vec<(&Packet, NodeId, NodeId)>,
        report: &mut RunReport,
        meter: &mut OverheadMeter,
    ) {
        let threads = self.batch_threads(batch.len());
        let out = self.net.deliver_batch_parallel(batch, threads);
        batch.clear();
        report.snapshot_bytes += out.snapshot_bytes as u64;
        meter.unrouted(out.unrouted as u64);
        for (_, r) in out.reports {
            meter.message(32);
            self.analyzer.ingest(&r);
        }
    }

    /// Bookkeeping after an [`EventSchedule`](newton_net::EventSchedule)
    /// advance: account state loss, then run the controller's repair pass
    /// and refresh the degraded set. Repair rule pushes are charged to the
    /// meter as control-channel messages and to the report as modelled
    /// rule-channel delay.
    fn apply_dynamics(
        &mut self,
        adv: newton_net::AdvanceOutcome,
        report: &mut RunReport,
        meter: &mut OverheadMeter,
    ) {
        if adv.fired == 0 {
            return;
        }
        report.state_loss_events += adv.state_loss as u64;
        if adv.state_loss > 0 {
            if let Some(rec) = self.recorder.as_mut() {
                rec.record(Event::StateLoss {
                    epoch: self.current_epoch,
                    switches: adv.state_loss,
                });
            }
        }
        if !self.repair_enabled {
            return;
        }
        let outcome = self.repair_pass();
        report.repairs += outcome.repaired.len() as u64;
        report.repair_delay_ms += outcome.delay_ms;
        for _ in 0..outcome.rules_installed {
            meter.message(64);
        }
    }

    /// One controller repair pass over the live topology, with full
    /// telemetry and degraded-twin bookkeeping: re-places slices lost to
    /// switch crashes, journals the span, and swaps software interpreters
    /// in (or marks them for retirement) for queries the live data plane
    /// can or cannot execute. Shared by the in-run event path
    /// ([`apply_dynamics`](Self::apply_dynamics)) and the live service path
    /// ([`repair_now`](Self::repair_now)).
    fn repair_pass(&mut self) -> RepairOutcome {
        let start = self.metrics.as_ref().map(|_| std::time::Instant::now());
        let outcome = self.controller.repair(&mut self.net);
        if let (Some(m), Some(t)) = (self.metrics.as_ref(), start) {
            m.repair_ns.observe(t.elapsed().as_nanos() as u64);
            m.sync_controller(&self.controller);
        }
        if let Some(rec) = self.recorder.as_mut() {
            // `repaired`/`degraded` come out sorted (the repair pass walks
            // query ids in order), so the span is canonical as-is.
            rec.record(Event::Repair {
                epoch: self.current_epoch,
                examined: outcome.examined,
                repaired: outcome.repaired.clone(),
                degraded: outcome.degraded.clone(),
                rules_installed: outcome.rules_installed,
                switches_touched: outcome.switches_touched,
                delay_ms: outcome.delay_ms,
            });
        }
        self.degraded_ids.clear();
        for &id in &outcome.degraded {
            // Overflow queries already run whole in software; no second
            // interpreter.
            if self.software_fallback.contains_key(&id) {
                continue;
            }
            self.degraded_ids.insert(id);
            if !self.degraded.contains_key(&id) {
                if let Some(entry) = self.controller.installed().get(&id) {
                    self.degraded
                        .insert(id, (entry.query.clone(), Interpreter::new(entry.query.clone())));
                    if let Some(rec) = self.recorder.as_mut() {
                        rec.record(Event::QueryDegraded { epoch: self.current_epoch, query: id });
                    }
                }
            }
        }
        outcome
    }

    /// Apply one network dynamic **now** — the live service path (no open
    /// trace run): `newtond` routes operator-injected failures/restores
    /// through here. State loss is journaled exactly as a scheduled event
    /// would be; the caller decides whether to follow with
    /// [`repair_now`](Self::repair_now).
    pub fn inject_event(&mut self, event: newton_net::NetworkEvent) -> newton_net::AdvanceOutcome {
        let mut once = newton_net::EventSchedule::new().at(0, event);
        let adv = once.advance_network(u64::MAX, &mut self.net);
        if adv.state_loss > 0 {
            if let Some(rec) = self.recorder.as_mut() {
                rec.record(Event::StateLoss {
                    epoch: self.current_epoch,
                    switches: adv.state_loss,
                });
            }
        }
        adv
    }

    /// Run a controller repair pass **now** — the live service twin of the
    /// in-run repair triggered by scheduled events. Journals the repair
    /// span and maintains the degraded-query software twins. Note the live
    /// path caveat: software twins only observe traffic inside a
    /// subsequent `run_*` call, and `begin_run` re-derives nothing — a
    /// failure left standing across runs should be repaired (or scheduled
    /// as an in-run event) before the next run starts.
    pub fn repair_now(&mut self) -> RepairOutcome {
        self.repair_pass()
    }

    /// Probe-and-finalize the current epoch without resetting state.
    ///
    /// A key's per-branch counts may split across the switches holding the
    /// probed slice (one per traffic entry point), so register reads SUM
    /// over holders — partial counters add up to the network-wide
    /// aggregate, and Bloom bits saturate harmlessly.
    pub fn finish_epoch(&mut self) -> FastMap<QueryId, FastSet<u64>> {
        let net = &self.net;
        let read = move |query: QueryId,
                         slice: usize,
                         addr: newton_dataplane::ModuleAddr,
                         idx: usize| {
            let mut total: Option<u32> = None;
            for sw in 0..net.switch_count() {
                if let Some(v) = net.switch(sw).read_slice_register(query, slice as u8, addr, idx) {
                    total = Some(total.unwrap_or(0).saturating_add(v));
                }
            }
            total
        };
        self.analyzer.end_epoch(&read)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use newton_query::catalog;
    use newton_trace::attacks::InjectSpec;
    use newton_trace::background::TraceConfig;
    use newton_trace::AttackKind;

    fn attack_trace(kind: AttackKind) -> (Trace, u32) {
        let mut trace = Trace::background(&TraceConfig {
            packets: 8_000,
            flows: 500,
            duration_ms: 200,
            ..Default::default()
        });
        let guilty = trace
            .inject(
                kind,
                &InjectSpec { intensity: 150, window_ns: 90_000_000, ..Default::default() },
            )
            .guilty;
        (trace, guilty)
    }

    #[test]
    fn end_to_end_detection_on_fat_tree() {
        // A port scan has ONE source, so all its packets enter the fabric
        // at one edge switch and the per-ingress query state stays whole.
        // (A many-source flood would fragment across ingresses — the
        // distributed-state limitation §7 acknowledges.)
        let (trace, scanner) = attack_trace(AttackKind::PortScan);
        let mut sys = NewtonSystem::new(Topology::fat_tree(4));
        let receipt = sys.install(&catalog::q4_port_scan()).unwrap();
        let report = sys.run_trace(&trace, 100);
        assert!(report.packets > 0);
        assert!(
            report.reported.get(&receipt.id).is_some_and(|k| k.contains(&(scanner as u64))),
            "scanner {scanner:#x} not reported: {:?}",
            report.reported
        );
        assert!(report.overhead_ratio() < 0.01, "precise exportation expected");
    }

    #[test]
    fn deferred_q9_completes_through_system_probing() {
        // Q9's conjunction resolves by epoch-end register probes routed
        // through the placement — the full production loop.
        let (trace, silent) = attack_trace(AttackKind::DnsNoTcp);
        let mut sys = NewtonSystem::new(Topology::chain(3));
        let receipt = sys.install(&catalog::q9_dns_no_tcp()).unwrap();
        let report = sys.run_trace(&trace, 100);
        let keys = report.reported.get(&receipt.id).cloned().unwrap_or_default();
        assert!(keys.contains(&(silent as u64)), "silent DNS host not flagged: {keys:?}");
    }

    #[test]
    fn batch_threads_clamps_to_cores_and_small_batches_stay_sequential() {
        let mut sys = NewtonSystem::new(Topology::chain(2));
        sys.set_parallelism(Parallelism::new(4096));
        assert_eq!(sys.batch_threads(PAR_BATCH_MIN - 1), 1, "small batches run sequentially");
        let t = sys.batch_threads(PAR_BATCH_MIN);
        assert!(
            t <= newton_net::effective_parallelism(),
            "budget {t} must be capped at the core count"
        );
        sys.set_parallelism(Parallelism::sequential());
        assert_eq!(sys.batch_threads(1 << 20), 1, "threads=1 is always the sequential path");
    }

    #[test]
    fn install_remove_lifecycle() {
        let mut sys = NewtonSystem::new(Topology::chain(2));
        let r = sys.install(&catalog::q1_new_tcp()).unwrap();
        assert!(sys.network().total_rules() > 0);
        assert!(sys.remove(r.id).is_some());
        assert_eq!(sys.network().total_rules(), 0);
        assert!(sys.remove(r.id).is_none());
    }

    #[test]
    fn overflowing_query_falls_back_to_software() {
        // Two switches with 4-stage budgets cannot host Q4's 4 slices
        // (reachable depth = 2), so the system runs it in software —
        // correct answers, but per-packet mirroring cost.
        let (trace, scanner) = attack_trace(AttackKind::PortScan);
        let mut sys = NewtonSystem::with_config(
            Topology::chain(2),
            PipelineConfig::default(),
            CompilerConfig::default(),
            4,
        );
        let receipt = sys.install(&catalog::q4_port_scan()).unwrap();
        assert!(receipt.overflow_slices > 0, "expected overflow on a 2-switch chain");
        assert!(sys.runs_in_software(receipt.id));
        let report = sys.run_trace(&trace, 100);
        assert!(report.reported[&receipt.id].contains(&(scanner as u64)));
        assert!(
            report.overhead_ratio() > 0.05,
            "software fallback must cost per-packet mirroring (got {:.4})",
            report.overhead_ratio()
        );
    }

    #[test]
    fn fixed_mapping_pins_the_path() {
        let (trace, victim) = attack_trace(AttackKind::SynFlood);
        let mut sys = NewtonSystem::new(Topology::chain(3));
        sys.set_mapping(HostMapping::Fixed { ingress: 0, egress: 2 });
        let receipt = sys.install(&catalog::q6_syn_flood()).unwrap();
        let report = sys.run_trace(&trace, 100);
        assert!(report.reported[&receipt.id].contains(&(victim as u64)));
    }
}
