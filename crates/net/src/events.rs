//! Scheduled network dynamics: the failure/recovery timelines of Fig. 9.
//!
//! Experiments inject link and switch events at trace timestamps; the
//! driver applies each event as simulated time passes it. Deterministic by
//! construction.

use crate::routing::Router;
use crate::sim::Network;
use crate::topology::NodeId;

/// One network dynamic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetworkEvent {
    FailLink {
        a: NodeId,
        b: NodeId,
    },
    RestoreLink {
        a: NodeId,
        b: NodeId,
    },
    /// A whole switch crashes: routing excludes it and the device loses
    /// rules, slice assignments, and register state (see
    /// [`Network::fail_switch`]).
    FailSwitch {
        s: NodeId,
    },
    /// The crashed switch reboots *blank*: it forwards again but holds no
    /// rules until the controller repairs placement.
    RestoreSwitch {
        s: NodeId,
    },
}

/// What one [`EventSchedule::advance_network`] call did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdvanceOutcome {
    /// Events applied by this call.
    pub fired: usize,
    /// Switch failures that destroyed installed rules — each is a
    /// potential detection gap until repaired.
    pub state_loss: usize,
}

/// A time-ordered schedule of events (timestamps in trace nanoseconds).
#[derive(Debug, Clone, Default)]
pub struct EventSchedule {
    events: Vec<(u64, NetworkEvent)>,
    cursor: usize,
}

impl EventSchedule {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an event at `ts_ns`; events keep time order regardless of
    /// insertion order.
    pub fn at(mut self, ts_ns: u64, event: NetworkEvent) -> Self {
        self.events.push((ts_ns, event));
        self.events.sort_by_key(|&(t, _)| t);
        self
    }

    /// Number of events not yet applied.
    pub fn pending(&self) -> usize {
        self.events.len() - self.cursor
    }

    /// Timestamp of the next unapplied event — the horizon up to which
    /// batched delivery may run without [`advance`](Self::advance) firing.
    pub fn next_ts(&self) -> Option<u64> {
        self.events.get(self.cursor).map(|&(ts, _)| ts)
    }

    /// Apply every event with `ts ≤ now_ns` to the router; returns how many
    /// fired. Routing-only view: switch events toggle reachability but no
    /// device state exists to wipe — drivers that own a full [`Network`]
    /// should use [`advance_network`](Self::advance_network) instead.
    pub fn advance(&mut self, now_ns: u64, router: &mut Router) -> usize {
        let mut fired = 0;
        while let Some(&(ts, event)) = self.events.get(self.cursor) {
            if ts > now_ns {
                break;
            }
            match event {
                NetworkEvent::FailLink { a, b } => router.fail_link(a, b),
                NetworkEvent::RestoreLink { a, b } => router.restore_link(a, b),
                NetworkEvent::FailSwitch { s } => router.fail_switch(s),
                NetworkEvent::RestoreSwitch { s } => router.restore_switch(s),
            }
            self.cursor += 1;
            fired += 1;
        }
        fired
    }

    /// Apply every event with `ts ≤ now_ns` to the full network: link
    /// events toggle routing, switch failures also wipe the device (rules,
    /// slices, state), and restores bring it back blank.
    pub fn advance_network(&mut self, now_ns: u64, net: &mut Network) -> AdvanceOutcome {
        let mut out = AdvanceOutcome::default();
        while let Some(&(ts, event)) = self.events.get(self.cursor) {
            if ts > now_ns {
                break;
            }
            match event {
                NetworkEvent::FailLink { a, b } => net.router_mut().fail_link(a, b),
                NetworkEvent::RestoreLink { a, b } => net.router_mut().restore_link(a, b),
                NetworkEvent::FailSwitch { s } => {
                    if net.fail_switch(s) {
                        out.state_loss += 1;
                    }
                }
                NetworkEvent::RestoreSwitch { s } => net.restore_switch(s),
            }
            self.cursor += 1;
            out.fired += 1;
        }
        out
    }

    /// Reset to the beginning (replaying a schedule).
    pub fn rewind(&mut self) {
        self.cursor = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;
    use newton_packet::FlowKey;

    fn flow() -> FlowKey {
        FlowKey { src_ip: 1, dst_ip: 2, src_port: 3, dst_port: 4, protocol: 6 }
    }

    #[test]
    fn events_apply_in_time_order() {
        let mut router = Router::new(Topology::fat_tree(4));
        // Insert out of order; fail at t=100, restore at t=200.
        let mut sched = EventSchedule::new()
            .at(200, NetworkEvent::RestoreLink { a: 4, b: 0 })
            .at(100, NetworkEvent::FailLink { a: 4, b: 0 });

        assert_eq!(sched.advance(50, &mut router), 0);
        assert!(router.link_up(4, 0));
        assert_eq!(sched.advance(150, &mut router), 1);
        assert!(!router.link_up(4, 0));
        assert_eq!(sched.advance(250, &mut router), 1);
        assert!(router.link_up(4, 0));
        assert_eq!(sched.pending(), 0);
    }

    #[test]
    fn failure_changes_paths_and_restore_heals() {
        let topo = Topology::chain(3);
        let mut router = Router::new(topo);
        let mut sched = EventSchedule::new()
            .at(10, NetworkEvent::FailLink { a: 1, b: 2 })
            .at(20, NetworkEvent::RestoreLink { a: 1, b: 2 });
        sched.advance(15, &mut router);
        assert!(router.path(0, 2, &flow()).is_none());
        sched.advance(25, &mut router);
        assert_eq!(router.path(0, 2, &flow()).unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn switch_events_wipe_and_restore_blank() {
        use newton_dataplane::PipelineConfig;
        let mut net = Network::new(Topology::chain(3), PipelineConfig::default());
        // Give the middle switch something to lose: a slice assignment.
        net.switch_mut(1)
            .add_slice(7, newton_dataplane::SliceInfo::whole())
            .expect("fresh switch accepts a slice");
        let mut sched = EventSchedule::new()
            .at(10, NetworkEvent::FailSwitch { s: 1 })
            .at(20, NetworkEvent::RestoreSwitch { s: 1 });

        let out = sched.advance_network(15, &mut net);
        assert_eq!(out, AdvanceOutcome { fired: 1, state_loss: 0 }, "slices alone are free");
        assert!(!net.router().switch_up(1));
        assert!(net.router().path(0, 2, &flow()).is_none(), "chain is cut by the dead switch");
        assert!(net.switch(1).assigned_slices(7).is_empty(), "wipe dropped the assignment");

        let out = sched.advance_network(25, &mut net);
        assert_eq!(out.fired, 1);
        assert!(net.router().switch_up(1));
        assert!(net.router().path(0, 2, &flow()).is_some());
        assert!(net.switch(1).assigned_slices(7).is_empty(), "restore comes back blank");
        assert_eq!(sched.pending(), 0);
    }

    #[test]
    fn rewind_replays() {
        let mut router = Router::new(Topology::chain(2));
        let mut sched = EventSchedule::new().at(5, NetworkEvent::FailLink { a: 0, b: 1 });
        assert_eq!(sched.advance(10, &mut router), 1);
        sched.rewind();
        router.restore_link(0, 1);
        assert_eq!(sched.advance(10, &mut router), 1);
        assert!(!router.link_up(0, 1));
    }
}
