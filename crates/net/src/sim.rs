//! Multi-hop delivery through real switch pipelines, with CQE snapshots.
//!
//! [`Network`] owns one `newton-dataplane` [`Switch`] per topology node.
//! Delivering a packet walks its routed path; at each hop the switch
//! pipeline executes, and the 12-byte result snapshot rides between
//! adjacent Newton hops and is stripped before the last hop hands the
//! packet to the destination host (§5.1).

use crate::parallel::{self, ParScratch};
use crate::routing::{RouteScratch, Router};
use crate::topology::{NodeId, Topology};
use newton_dataplane::{PipelineConfig, Report, Switch, DEFAULT_BATCH_LANES};
use newton_packet::{Packet, SnapshotHeader};
use newton_sketch::FastMap;

/// Canonical identifier of an undirected link: `LinkKey::new(a, b)` and
/// `LinkKey::new(b, a)` name the same link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkKey(NodeId, NodeId);

impl LinkKey {
    pub fn new(a: NodeId, b: NodeId) -> Self {
        if a <= b {
            LinkKey(a, b)
        } else {
            LinkKey(b, a)
        }
    }

    /// The link's endpoints, in canonical order.
    pub fn endpoints(self) -> (NodeId, NodeId) {
        (self.0, self.1)
    }
}

/// One delivered packet's observable outcome.
#[derive(Debug, Clone)]
pub struct DeliveryResult {
    /// The path taken (switch ids), empty if unroutable.
    pub path: Vec<NodeId>,
    /// Reports mirrored by each hop, tagged with the reporting switch.
    pub reports: Vec<(NodeId, Report)>,
    /// Extra bytes the snapshot added on in-network links (CQE bandwidth
    /// overhead accounting).
    pub snapshot_bytes: usize,
    /// Whether the packet reached the destination with no snapshot header
    /// attached (it must, always).
    pub clean_delivery: bool,
}

/// Per-link traffic counters: packets carried, payload bytes, and
/// snapshot-header bytes, for bandwidth-overhead accounting (§5.1: "less
/// than 1% bandwidth overhead").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkLoad {
    pub packets: u64,
    pub payload_bytes: u64,
    pub snapshot_bytes: u64,
}

impl LinkLoad {
    /// Snapshot bytes as a fraction of all bytes on the link.
    pub fn overhead_fraction(&self) -> f64 {
        let total = self.payload_bytes + self.snapshot_bytes;
        if total == 0 {
            0.0
        } else {
            self.snapshot_bytes as f64 / total as f64
        }
    }

    /// The counter delta `self - earlier` (per-epoch accounting over the
    /// cumulative map; counters are monotone, so this never underflows
    /// for a genuine earlier snapshot).
    pub fn since(&self, earlier: &LinkLoad) -> LinkLoad {
        LinkLoad {
            packets: self.packets - earlier.packets,
            payload_bytes: self.payload_bytes - earlier.payload_bytes,
            snapshot_bytes: self.snapshot_bytes - earlier.snapshot_bytes,
        }
    }

    /// Whether no traffic is recorded at all.
    pub fn is_empty(&self) -> bool {
        *self == LinkLoad::default()
    }
}

/// Aggregate outcome of a batched delivery ([`Network::deliver_batch`]).
#[derive(Debug, Clone, Default)]
pub struct BatchDelivery {
    /// Reports mirrored by each hop, tagged with the reporting switch, in
    /// packet order.
    pub reports: Vec<(NodeId, Report)>,
    /// Snapshot bytes added on in-network links across the batch.
    pub snapshot_bytes: usize,
    /// Packets that reached their destination.
    pub delivered: usize,
    /// Packets dropped for lack of a route.
    pub unrouted: usize,
}

/// Reusable buffers of the batched delivery path.
#[derive(Debug, Default)]
struct DeliverScratch {
    route: RouteScratch,
    path: Vec<NodeId>,
    /// Per-hop `(link, payload, snapshot)` byte deltas, merged into the
    /// link-load map once per batch — one map operation per distinct link
    /// instead of one per hop per packet.
    deltas: Vec<(LinkKey, u64, u64)>,
}

/// A simulated network of programmable switches.
#[derive(Debug)]
pub struct Network {
    router: Router,
    switches: Vec<Switch>,
    link_load: FastMap<LinkKey, LinkLoad>,
    /// Switches running Newton modules; the rest forward only (§7:
    /// "Newton supports partial deployment, and CQE only works in
    /// adjacent Newton-enabled switches").
    newton_enabled: Vec<bool>,
    scratch: DeliverScratch,
    /// Reusable buffers of the parallel delivery path.
    par: ParScratch,
    /// Packets-per-batch budget of the batch-first pipeline path (see
    /// [`set_batch_lanes`](Self::set_batch_lanes)).
    batch_lanes: usize,
}

impl Network {
    /// Build a network with identical pipelines on every node.
    pub fn new(topo: Topology, pipeline: PipelineConfig) -> Self {
        let n = topo.len();
        Network {
            router: Router::new(topo),
            switches: (0..n).map(|_| Switch::new(pipeline)).collect(),
            link_load: FastMap::default(),
            newton_enabled: vec![true; n],
            scratch: DeliverScratch::default(),
            par: ParScratch::default(),
            batch_lanes: DEFAULT_BATCH_LANES,
        }
    }

    /// Set how many queued packets a switch's batch-first pipeline path
    /// executes per [`Switch::process_batch`] call (clamped to ≥ 1).
    /// Output is bit-identical at every setting — this is purely a
    /// throughput/locality knob; see `newton-dataplane`'s batch module
    /// for the default's rationale.
    pub fn set_batch_lanes(&mut self, lanes: usize) {
        self.batch_lanes = lanes.max(1);
    }

    /// The configured packets-per-batch budget.
    pub fn batch_lanes(&self) -> usize {
        self.batch_lanes
    }

    /// Enable/disable Newton processing at a switch (partial deployment).
    /// Disabled switches still forward every packet — including frames
    /// carrying the snapshot header, which pass through them untouched.
    pub fn set_newton_enabled(&mut self, node: NodeId, enabled: bool) {
        self.newton_enabled[node] = enabled;
    }

    /// Whether a switch runs Newton modules.
    pub fn newton_enabled(&self, node: NodeId) -> bool {
        self.newton_enabled[node]
    }

    /// Byte counters of one (undirected) link.
    pub fn link_load(&self, a: NodeId, b: NodeId) -> LinkLoad {
        self.link_load.get(&LinkKey::new(a, b)).copied().unwrap_or_default()
    }

    /// The worst snapshot-overhead fraction across all loaded links.
    pub fn peak_link_overhead(&self) -> f64 {
        self.link_load.values().map(LinkLoad::overhead_fraction).fold(0.0, f64::max)
    }

    /// Every loaded link's cumulative counters, sorted by canonical link
    /// key — a deterministic view of the (hash-ordered) load map, for
    /// per-epoch telemetry diffing.
    pub fn link_loads_sorted(&self) -> Vec<(LinkKey, LinkLoad)> {
        let mut v: Vec<(LinkKey, LinkLoad)> =
            self.link_load.iter().map(|(&k, &l)| (k, l)).collect();
        v.sort_unstable_by_key(|&(k, _)| k);
        v
    }

    /// Drain the executor profile accumulated by the parallel delivery
    /// path since the last call. **Nondeterministic** (wall clock, queue
    /// depths); belongs in a telemetry `Profile` section, never in the
    /// deterministic journal.
    pub fn take_parallel_profile(&mut self) -> newton_telemetry::Profile {
        std::mem::take(&mut self.par.profile)
    }

    /// Attach (or detach) a live executor-metrics family: every executed
    /// batch feeds it the same deltas the drained profile accumulates.
    /// Metrics are wall-clock observers only — delivery output and the
    /// telemetry journal are byte-identical with or without them.
    pub fn set_metrics(&mut self, metrics: Option<crate::parallel::PoolMetrics>) {
        self.par.metrics = metrics;
    }

    /// The attached executor metrics, if any.
    pub fn metrics(&self) -> Option<&crate::parallel::PoolMetrics> {
        self.par.metrics.as_ref()
    }

    /// Fail a whole switch, as a hardware crash would: the router stops
    /// sending traffic through it, and the device loses *everything* —
    /// installed rules, slice assignments, and per-epoch register state.
    /// Returns `true` if installed rules were lost, so callers can account
    /// the loss. [`restore_switch`](Self::restore_switch)
    /// brings the node back *blank*; the controller must re-place whatever
    /// lived there (see `newton-controller`'s repair pass).
    pub fn fail_switch(&mut self, s: NodeId) -> bool {
        self.router.fail_switch(s);
        let lost = self.switches[s].total_rule_count() > 0;
        self.switches[s] = Switch::new(*self.switches[s].config());
        lost
    }

    /// Bring a failed switch back into the topology. The device rebooted:
    /// it forwards again immediately but carries no rules until the
    /// controller re-installs them.
    pub fn restore_switch(&mut self, s: NodeId) {
        self.router.restore_switch(s);
    }

    /// The healthy subgraph (live switches, live links, live edge set) —
    /// what placement repair must cover.
    pub fn live_topology(&self) -> Topology {
        self.router.live_topology()
    }

    pub fn router(&self) -> &Router {
        &self.router
    }

    pub fn router_mut(&mut self) -> &mut Router {
        &mut self.router
    }

    pub fn topology(&self) -> &Topology {
        self.router.topology()
    }

    pub fn switch(&self, id: NodeId) -> &Switch {
        &self.switches[id]
    }

    pub fn switch_mut(&mut self, id: NodeId) -> &mut Switch {
        &mut self.switches[id]
    }

    pub fn switch_count(&self) -> usize {
        self.switches.len()
    }

    /// Deliver one packet from the host behind `ingress` to the host
    /// behind `egress`. Every hop forwards unconditionally; monitoring is
    /// a pure observer. Thin wrapper over the batched path.
    pub fn deliver(&mut self, pkt: &Packet, ingress: NodeId, egress: NodeId) -> DeliveryResult {
        let mut scratch = std::mem::take(&mut self.scratch);
        let routed = self.router.path_into(
            ingress,
            egress,
            &pkt.flow_key(),
            &mut scratch.route,
            &mut scratch.path,
        );
        if !routed {
            self.scratch = scratch;
            return DeliveryResult {
                path: Vec::new(),
                reports: Vec::new(),
                snapshot_bytes: 0,
                clean_delivery: false,
            };
        }
        let mut reports = Vec::new();
        let snapshot_bytes = self.walk_path(pkt, &scratch.path, &mut reports, &mut scratch.deltas);
        Self::flush_link_deltas(&mut self.link_load, &mut scratch.deltas);
        let path = scratch.path.clone();
        self.scratch = scratch;
        DeliveryResult { path, reports, snapshot_bytes, clean_delivery: true }
    }

    /// Deliver a batch of `(packet, ingress, egress)` triples through the
    /// batch-first pipeline path: one FIFO hop queue per switch in batch
    /// order, with ready head runs handed to
    /// [`Switch::process_batch`] up to
    /// [`batch_lanes`](Self::batch_lanes) packets at a time. Behaviour is
    /// identical to calling [`deliver`](Self::deliver) per packet, in
    /// order; only the aggregate outcome is returned.
    pub fn deliver_batch(&mut self, batch: &[(&Packet, NodeId, NodeId)]) -> BatchDelivery {
        self.deliver_batch_on(batch, 1)
    }

    /// [`deliver_batch`](Self::deliver_batch) on up to `threads` worker
    /// threads — **bit-identical output at any thread count** (see
    /// [`parallel`] for the determinism contract).
    /// Routes are precomputed in parallel chunks, then switches execute as
    /// shards: one FIFO work queue per switch in batch order, snapshot
    /// headers handed between a packet's consecutive hops. Workers come
    /// from a persistent pool owned by the network (the caller's thread
    /// included), so steady-state batches spawn no threads and perform no
    /// allocation beyond the returned reports. Thread counts above
    /// [`effective_parallelism`](crate::effective_parallelism) stay
    /// bit-identical but only cost time; policy layers should clamp.
    ///
    /// `threads <= 1` dispatches to the plain per-packet walk rather than
    /// the single-worker batch engine: the engine's queue/flight-slot
    /// machinery costs more than its stage-major locality gains without a
    /// second core to amortize them (measured ~15% on the Q1–Q9 delivery
    /// workload), and the two paths are bit-identical by contract — so a
    /// one-worker caller should never pay for the coordination.
    pub fn deliver_batch_parallel(
        &mut self,
        batch: &[(&Packet, NodeId, NodeId)],
        threads: usize,
    ) -> BatchDelivery {
        if threads <= 1 || batch.len() <= 1 {
            return self.deliver_batch_sequential(batch);
        }
        self.deliver_batch_on(batch, threads)
    }

    /// The per-packet walk over a whole batch: [`deliver`](Self::deliver)
    /// in order, minus its per-call allocations (one reports vector, no
    /// path clones, link deltas flushed once per batch). Output is
    /// bit-identical to [`deliver_batch`](Self::deliver_batch) — the
    /// batch engine retires each switch's queue in batch order and sorts
    /// report tags back to (packet, hop, report) order, which is exactly
    /// the order this loop emits them in.
    fn deliver_batch_sequential(&mut self, batch: &[(&Packet, NodeId, NodeId)]) -> BatchDelivery {
        let mut scratch = std::mem::take(&mut self.scratch);
        let mut out = BatchDelivery::default();
        for &(pkt, ingress, egress) in batch {
            let routed = self.router.path_into(
                ingress,
                egress,
                &pkt.flow_key(),
                &mut scratch.route,
                &mut scratch.path,
            );
            if !routed {
                out.unrouted += 1;
                continue;
            }
            out.snapshot_bytes +=
                self.walk_path(pkt, &scratch.path, &mut out.reports, &mut scratch.deltas);
            out.delivered += 1;
        }
        Self::flush_link_deltas(&mut self.link_load, &mut scratch.deltas);
        self.scratch = scratch;
        out
    }

    /// The shared delivery engine: route the batch, execute per-switch
    /// hop queues on `threads` workers (1 = the caller's thread, no pool
    /// wake), flush link deltas.
    fn deliver_batch_on(
        &mut self,
        batch: &[(&Packet, NodeId, NodeId)],
        threads: usize,
    ) -> BatchDelivery {
        if batch.is_empty() {
            return BatchDelivery::default();
        }
        let mut par = std::mem::take(&mut self.par);
        self.router.route_batch_into(
            batch.len(),
            |i| {
                let (pkt, ingress, egress) = batch[i];
                (pkt.flow_key(), ingress, egress)
            },
            threads,
            &mut par.paths,
            &mut par.route_shards,
            &mut par.pool,
        );
        let outcome = parallel::execute_batch(
            &mut self.switches,
            &self.newton_enabled,
            self.router.live_switches(),
            batch,
            &mut par,
            threads,
            self.batch_lanes,
        );
        Self::flush_link_deltas(&mut self.link_load, &mut par.deltas);
        self.par = par;
        BatchDelivery {
            reports: outcome.reports,
            snapshot_bytes: outcome.snapshot_bytes,
            delivered: outcome.delivered,
            unrouted: outcome.unrouted,
        }
    }

    /// Walk one routed packet through its hops: execute Newton pipelines,
    /// tag mirrored reports, and record per-link byte deltas. Returns the
    /// snapshot bytes the packet put on the wire.
    fn walk_path(
        &mut self,
        pkt: &Packet,
        path: &[NodeId],
        reports: &mut Vec<(NodeId, Report)>,
        deltas: &mut Vec<(LinkKey, u64, u64)>,
    ) -> usize {
        let mut snapshot: Option<SnapshotHeader> = None;
        let mut snapshot_bytes = 0usize;
        for (i, &hop) in path.iter().enumerate() {
            if self.newton_enabled[hop] && self.router.switch_up(hop) {
                let out = self.switches[hop].process(pkt, snapshot.as_ref());
                reports.extend(out.reports.into_iter().map(|r| (hop, r)));
                snapshot = out.snapshot;
            }
            // A non-Newton (or failed) hop forwards the frame (and any
            // snapshot on it) untouched. The router never routes *through*
            // a dead switch, but a path computed just before the failure
            // may still name one; skipping keeps the sequential and
            // parallel executors in lockstep.
            // The snapshot travels on the wire to the next hop, if any.
            if i + 1 < path.len() {
                let sp = if snapshot.is_some() {
                    snapshot_bytes += newton_packet::SP_HEADER_LEN;
                    newton_packet::SP_HEADER_LEN as u64
                } else {
                    0
                };
                deltas.push((LinkKey::new(hop, path[i + 1]), pkt.wire_len as u64, sp));
            }
        }
        // The last Newton hop strips the header before host delivery; a
        // dangling snapshot means the query wanted more switches than the
        // path had — the remainder defers to the analyzer (§5.2), and the
        // host still receives a clean packet.
        snapshot_bytes
    }

    /// Merge accumulated per-hop byte deltas into the link-load map: sort
    /// by link, then one map operation per distinct link.
    fn flush_link_deltas(
        link_load: &mut FastMap<LinkKey, LinkLoad>,
        deltas: &mut Vec<(LinkKey, u64, u64)>,
    ) {
        deltas.sort_unstable_by_key(|&(key, _, _)| key);
        let mut i = 0;
        while i < deltas.len() {
            let key = deltas[i].0;
            let start = i;
            let (mut payload, mut snapshot) = (0u64, 0u64);
            while i < deltas.len() && deltas[i].0 == key {
                payload += deltas[i].1;
                snapshot += deltas[i].2;
                i += 1;
            }
            let load = link_load.entry(key).or_default();
            load.packets += (i - start) as u64;
            load.payload_bytes += payload;
            load.snapshot_bytes += snapshot;
        }
        deltas.clear();
    }

    /// Reset all stateful memory network-wide (epoch boundary).
    pub fn clear_state(&mut self) {
        for sw in &mut self.switches {
            sw.clear_state();
        }
    }

    /// [`clear_state`](Self::clear_state) with switches cleared by up to
    /// `threads` workers of the persistent pool — register zeroing is
    /// per-switch independent, so epoch boundaries need not serialize,
    /// and the boundary costs a pool wake rather than thread spawns.
    pub fn clear_state_parallel(&mut self, threads: usize) {
        let threads =
            threads.min(parallel::effective_parallelism()).clamp(1, self.switches.len().max(1));
        if threads <= 1 {
            self.clear_state();
            return;
        }
        let n = self.switches.len();
        let chunk = n.div_ceil(threads);
        let base = parallel::SwitchesPtr(self.switches.as_mut_ptr());
        self.par.pool.run(threads, |w, _| {
            // SAFETY: the per-worker chunks are disjoint, and `run` blocks
            // until every worker is done with its slice of the array.
            for i in w * chunk..((w + 1) * chunk).min(n) {
                unsafe { (*base.at(i)).clear_state() };
            }
        });
    }

    /// Total rules installed across all switches.
    pub fn total_rules(&self) -> usize {
        self.switches.iter().map(Switch::total_rule_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use newton_compiler::{compile, CompilerConfig};
    use newton_dataplane::{SetId, SliceInfo};
    use newton_packet::{PacketBuilder, TcpFlags};
    use newton_query::catalog;

    fn syn(dst: u32, sport: u16) -> Packet {
        PacketBuilder::new()
            .dst_ip(dst)
            .src_ip(sport as u32)
            .src_port(sport)
            .tcp_flags(TcpFlags::SYN)
            .build()
    }

    #[test]
    fn unroutable_packets_are_reported_as_such() {
        let mut net = Network::new(Topology::chain(2), PipelineConfig::default());
        net.router_mut().fail_link(0, 1);
        let r = net.deliver(&syn(1, 1), 0, 1);
        assert!(!r.clean_delivery);
        assert!(r.path.is_empty());
    }

    #[test]
    fn forwarding_is_unconditional_without_rules() {
        let mut net = Network::new(Topology::chain(3), PipelineConfig::default());
        let r = net.deliver(&syn(1, 1), 0, 2);
        assert_eq!(r.path, vec![0, 1, 2]);
        assert!(r.reports.is_empty());
        assert_eq!(r.snapshot_bytes, 0);
        assert_eq!(net.switch(1).forwarded(), 1);
    }

    #[test]
    fn whole_query_on_first_hop_reports_there() {
        let q = catalog::q1_new_tcp();
        let compiled = compile(&q, 1, &CompilerConfig::default());
        let mut net = Network::new(Topology::chain(3), PipelineConfig::default());
        net.switch_mut(0).install(&compiled.rules).unwrap();
        let mut hits = Vec::new();
        for i in 0..catalog::thresholds::NEW_TCP as u16 {
            let out = net.deliver(&syn(0xBEEF, 1000 + i), 0, 2);
            hits.extend(out.reports);
        }
        assert_eq!(hits.len(), 1, "threshold crossed once");
        assert_eq!(hits[0].0, 0, "reported by the first hop");
    }

    #[test]
    fn cqe_spans_two_switches_and_strips_snapshot() {
        // Slice Q1 at a stage boundary across switches 0 and 1 of a chain.
        let q = catalog::q1_new_tcp();
        let compiled = compile(&q, 1, &CompilerConfig::default());
        let total_stages = compiled.composition.stages();
        assert!(total_stages >= 2, "need at least 2 stages to slice");
        let cut = total_stages / 2;
        let first = compiled.rules.slice_stages(0, cut);
        let second = compiled.rules.slice_stages(cut, total_stages);

        let mut net = Network::new(Topology::chain(3), PipelineConfig::default());
        net.switch_mut(0).install(&first).unwrap();
        net.switch_mut(1).install(&second).unwrap();
        net.switch_mut(0)
            .set_slice(
                1,
                SliceInfo {
                    index: 0,
                    total: 2,
                    capture_set: SetId::Set1,
                    restore_set: SetId::Set1,
                    stages: (0, 12),
                },
            )
            .unwrap();
        net.switch_mut(1)
            .set_slice(
                1,
                SliceInfo {
                    index: 1,
                    total: 2,
                    capture_set: SetId::Set1,
                    restore_set: SetId::Set1,
                    stages: (0, 12),
                },
            )
            .unwrap();

        let mut reports = Vec::new();
        let mut sp_bytes = 0;
        for i in 0..catalog::thresholds::NEW_TCP as u16 {
            let out = net.deliver(&syn(0xCAFE, 2000 + i), 0, 2);
            assert!(out.clean_delivery);
            reports.extend(out.reports);
            sp_bytes += out.snapshot_bytes;
        }
        assert_eq!(reports.len(), 1, "CQE reports exactly once network-wide");
        assert_eq!(reports[0].0, 1, "the second slice holds the threshold ℝ");
        // The header rode the 0→1 link as a live snapshot and the 1→2 link
        // as the processed marker: 12 bytes per internal link per packet.
        assert_eq!(sp_bytes as u64, catalog::thresholds::NEW_TCP * 12 * 2);
    }

    #[test]
    fn link_load_accounting_is_per_link_and_fractional() {
        let load = LinkLoad { packets: 100, payload_bytes: 1488 * 100, snapshot_bytes: 12 * 100 };
        assert!((load.overhead_fraction() - 0.008).abs() < 1e-9);
        assert_eq!(LinkLoad::default().overhead_fraction(), 0.0);
        let net = Network::new(Topology::chain(2), PipelineConfig::default());
        assert_eq!(net.link_load(0, 1), LinkLoad::default());
        assert_eq!(net.link_load(1, 0), net.link_load(0, 1), "undirected");
    }

    #[test]
    fn link_key_is_undirected() {
        assert_eq!(LinkKey::new(3, 7), LinkKey::new(7, 3));
        assert_eq!(LinkKey::new(3, 7).endpoints(), (3, 7));
        assert_eq!(LinkKey::new(5, 5).endpoints(), (5, 5));
    }

    #[test]
    fn batch_delivery_matches_sequential() {
        let q = catalog::q1_new_tcp();
        let compiled = compile(&q, 1, &CompilerConfig::default());
        let build = || {
            let mut net = Network::new(Topology::fat_tree(4), PipelineConfig::default());
            net.switch_mut(0).install(&compiled.rules).unwrap();
            net
        };
        let topo = Topology::fat_tree(4);
        let edges = topo.edge_switches();
        let pkts: Vec<Packet> = (0..120u16).map(|i| syn(0xBEEF, 1000 + i)).collect();
        let triples: Vec<(&Packet, NodeId, NodeId)> = pkts
            .iter()
            .enumerate()
            .map(|(i, p)| (p, edges[i % edges.len()], edges[(i + 3) % edges.len()]))
            .collect();

        let mut seq = build();
        let mut seq_reports = Vec::new();
        let mut seq_sp = 0usize;
        for &(p, ig, eg) in &triples {
            let r = seq.deliver(p, ig, eg);
            seq_reports.extend(r.reports);
            seq_sp += r.snapshot_bytes;
        }

        let mut bat = build();
        let out = bat.deliver_batch(&triples);
        assert_eq!(out.reports, seq_reports);
        assert_eq!(out.snapshot_bytes, seq_sp);
        assert_eq!(out.delivered, triples.len());
        assert_eq!(out.unrouted, 0);
        for a in 0..seq.switch_count() {
            for b in a + 1..seq.switch_count() {
                assert_eq!(seq.link_load(a, b), bat.link_load(a, b), "link ({a},{b})");
            }
        }
    }

    #[test]
    fn parallel_delivery_is_bit_identical_to_batch() {
        // CQE-sliced Q1 across a chain, a disabled (forward-only) middle
        // hop's cousin topology, plus unroutable packets: the parallel
        // executor must reproduce the sequential batch exactly.
        let q = catalog::q1_new_tcp();
        let compiled = compile(&q, 1, &CompilerConfig::default());
        let total_stages = compiled.composition.stages();
        let cut = total_stages / 2;
        let first = compiled.rules.slice_stages(0, cut);
        let second = compiled.rules.slice_stages(cut, total_stages);
        let slice = |index: u8| SliceInfo {
            index,
            total: 2,
            capture_set: SetId::Set1,
            restore_set: SetId::Set1,
            stages: (0, 12),
        };
        let build = || {
            let mut net = Network::new(Topology::fat_tree(4), PipelineConfig::default());
            let edges: Vec<NodeId> = net.topology().edge_switches().to_vec();
            let (a, b) = (edges[0], edges[1]);
            net.switch_mut(a).install(&first).unwrap();
            net.switch_mut(a).set_slice(1, slice(0)).unwrap();
            net.switch_mut(b).install(&second).unwrap();
            net.switch_mut(b).set_slice(1, slice(1)).unwrap();
            // One forward-only core switch exercises pass-through hops.
            let core = net.switch_count() - 1;
            net.set_newton_enabled(core, false);
            net.router_mut().fail_link(edges[2], edges[2] + 4);
            net
        };
        let topo = Topology::fat_tree(4);
        let edges = topo.edge_switches();
        let pkts: Vec<Packet> = (0..300u16).map(|i| syn(0xBEEF + (i % 5) as u32, i)).collect();
        let triples: Vec<(&Packet, NodeId, NodeId)> = pkts
            .iter()
            .enumerate()
            .map(|(i, p)| (p, edges[i % edges.len()], edges[(i + 3) % edges.len()]))
            .collect();

        let mut seq = build();
        let expected = seq.deliver_batch(&triples);
        for threads in [2, 4, 8] {
            let mut par = build();
            let got = par.deliver_batch_parallel(&triples, threads);
            assert_eq!(got.reports, expected.reports, "threads={threads}");
            assert_eq!(got.snapshot_bytes, expected.snapshot_bytes, "threads={threads}");
            assert_eq!(got.delivered, expected.delivered, "threads={threads}");
            assert_eq!(got.unrouted, expected.unrouted, "threads={threads}");
            for a in 0..seq.switch_count() {
                assert_eq!(seq.switch(a).forwarded(), par.switch(a).forwarded(), "switch {a}");
                for b in a + 1..seq.switch_count() {
                    assert_eq!(seq.link_load(a, b), par.link_load(a, b), "link ({a},{b})");
                }
            }
        }
    }

    #[test]
    fn pool_is_reused_across_epochs_batch_sizes_and_topologies() {
        // One network (one worker pool) drives many epochs with wildly
        // different batch sizes, interleaved with parallel epoch resets;
        // the whole lifecycle must match a sequential twin bit for bit.
        // Repeating on a second topology exercises independent pools.
        let q = catalog::q1_new_tcp();
        let compiled = compile(&q, 1, &CompilerConfig::default());
        for topo_pick in 0..2 {
            let make_topo = || match topo_pick {
                0 => Topology::chain(5),
                _ => Topology::fat_tree(4),
            };
            let edges: Vec<NodeId> = make_topo().edge_switches().to_vec();
            let build = || {
                let mut net = Network::new(make_topo(), PipelineConfig::default());
                net.switch_mut(edges[0]).install(&compiled.rules).unwrap();
                net
            };
            let mut par = build();
            let mut seq = build();
            for (epoch, &size) in [3usize, 180, 41, 260].iter().enumerate() {
                let pkts: Vec<Packet> =
                    (0..size).map(|i| syn(0xBEEF + epoch as u32, i as u16)).collect();
                let triples: Vec<(&Packet, NodeId, NodeId)> = pkts
                    .iter()
                    .enumerate()
                    .map(|(i, p)| (p, edges[i % edges.len()], edges[(i + 1) % edges.len()]))
                    .collect();
                let a = par.deliver_batch_parallel(&triples, 4);
                let b = seq.deliver_batch(&triples);
                assert_eq!(a.reports, b.reports, "epoch {epoch} (size {size})");
                assert_eq!(a.snapshot_bytes, b.snapshot_bytes, "epoch {epoch}");
                assert_eq!((a.delivered, a.unrouted), (b.delivered, b.unrouted), "epoch {epoch}");
                par.clear_state_parallel(4);
                seq.clear_state();
            }
            for a in 0..seq.switch_count() {
                for b in a + 1..seq.switch_count() {
                    assert_eq!(seq.link_load(a, b), par.link_load(a, b), "link ({a},{b})");
                }
            }
        }
    }

    #[test]
    fn parallel_clear_matches_sequential_clear() {
        let q = catalog::q1_new_tcp();
        let compiled = compile(&q, 1, &CompilerConfig::default());
        let mut net = Network::new(Topology::chain(4), PipelineConfig::default());
        for s in 0..4 {
            net.switch_mut(s).install(&compiled.rules).unwrap();
        }
        for i in 0..30u16 {
            net.deliver(&syn(7, 3000 + i), 0, 3);
        }
        net.clear_state_parallel(4);
        let mut reports = 0;
        for i in 0..30u16 {
            reports += net.deliver(&syn(7, 4000 + i), 0, 3).reports.len();
        }
        assert_eq!(reports, 0, "30 SYNs after parallel reset stay below the threshold of 40");
    }

    #[test]
    fn failed_switch_loses_rules_and_packets_route_around_it() {
        let q = catalog::q1_new_tcp();
        let compiled = compile(&q, 1, &CompilerConfig::default());
        let mut net = Network::new(Topology::fat_tree(4), PipelineConfig::default());
        let edges: Vec<NodeId> = net.topology().edge_switches().to_vec();
        let (src, dst) = (edges[0], edges[7]);
        let first_hop = net.router().path(src, dst, &syn(1, 1).flow_key()).unwrap()[1];
        net.switch_mut(first_hop).install(&compiled.rules).unwrap();
        assert!(net.fail_switch(first_hop), "rules were on the box");
        assert_eq!(net.switch(first_hop).total_rule_count(), 0, "crash wipes rules");
        let r = net.deliver(&syn(1, 1), src, dst);
        assert!(r.clean_delivery, "fat-tree routes around the dead switch");
        assert!(!r.path.contains(&first_hop));
        // Restore: blank box forwards but reports nothing.
        net.restore_switch(first_hop);
        for i in 0..200u16 {
            let out = net.deliver(&syn(0xBEEF, i), src, dst);
            assert!(out.reports.is_empty(), "blank switch cannot detect");
        }
    }

    #[test]
    fn parallel_delivery_matches_batch_with_dead_switches() {
        let q = catalog::q1_new_tcp();
        let compiled = compile(&q, 1, &CompilerConfig::default());
        let topo = Topology::fat_tree(4);
        let edges: Vec<NodeId> = topo.edge_switches().to_vec();
        let build = || {
            let mut net = Network::new(Topology::fat_tree(4), PipelineConfig::default());
            net.switch_mut(edges[0]).install(&compiled.rules).unwrap();
            net.switch_mut(edges[1]).install(&compiled.rules).unwrap();
            // One dead transit switch, one dead edge switch (its packets
            // become unroutable), one dead-then-restored switch.
            net.fail_switch(0);
            net.fail_switch(edges[2]);
            net.fail_switch(edges[1]);
            net.restore_switch(edges[1]);
            net
        };
        let pkts: Vec<Packet> = (0..300u16).map(|i| syn(0xBEEF + (i % 5) as u32, i)).collect();
        let triples: Vec<(&Packet, NodeId, NodeId)> = pkts
            .iter()
            .enumerate()
            .map(|(i, p)| (p, edges[i % edges.len()], edges[(i + 3) % edges.len()]))
            .collect();
        let mut seq = build();
        let expected = seq.deliver_batch(&triples);
        assert!(expected.unrouted > 0, "dead edge switch must strand its packets");
        for threads in [2, 4, 8] {
            let mut par = build();
            let got = par.deliver_batch_parallel(&triples, threads);
            assert_eq!(got.reports, expected.reports, "threads={threads}");
            assert_eq!(got.snapshot_bytes, expected.snapshot_bytes, "threads={threads}");
            assert_eq!(got.delivered, expected.delivered, "threads={threads}");
            assert_eq!(got.unrouted, expected.unrouted, "threads={threads}");
        }
    }

    #[test]
    fn epoch_clear_resets_network_state() {
        let q = catalog::q1_new_tcp();
        let compiled = compile(&q, 1, &CompilerConfig::default());
        let mut net = Network::new(Topology::chain(2), PipelineConfig::default());
        net.switch_mut(0).install(&compiled.rules).unwrap();
        for i in 0..30u16 {
            net.deliver(&syn(7, 3000 + i), 0, 1);
        }
        net.clear_state();
        let mut reports = 0;
        for i in 0..30u16 {
            reports += net.deliver(&syn(7, 4000 + i), 0, 1).reports.len();
        }
        assert_eq!(reports, 0, "30 SYNs after reset stay below the threshold of 40");
    }
}
