//! Network substrate: topologies, routing, failures, and multi-hop packet
//! delivery with cross-switch query execution.
//!
//! The paper's network-wide evaluation needs three topology families —
//! linear chains (the 3-switch testbed of Figs. 8/13/14), k-ary fat-trees
//! and an AT&T-like North-America backbone (Fig. 17) — plus shortest-path
//! routing that reroutes around link failures (the resilience scenario of
//! Fig. 9). [`sim`] carries packets hop by hop through real
//! `newton-dataplane` switches, piggybacking the 12-byte result snapshot
//! between Newton hops and stripping it before host delivery.

pub mod events;
pub mod parallel;
pub mod routing;
pub mod sim;
pub mod topology;

pub use events::{AdvanceOutcome, EventSchedule, NetworkEvent};
pub use parallel::{effective_parallelism, Parallelism, PoolMetrics, WorkerPool};
pub use routing::{EcmpMode, PathTable, RouteScratch, Router, ShardScratch};
pub use sim::{BatchDelivery, DeliveryResult, LinkKey, LinkLoad, Network};
pub use topology::{NodeId, Topology};
