//! Deterministic multi-core epoch executor.
//!
//! Newton's own structure makes switches natural shards: each switch owns
//! its state banks 𝕊 exclusively, and cross-switch query state moves
//! *only* via the 12-byte result snapshot riding the packet (§5 CQE). The
//! executor exploits exactly that: switches are partitioned across worker
//! threads (each worker holds exclusive `&mut` access to its switches — no
//! locks around pipeline state), and the only inter-thread dataflow is the
//! snapshot handoff between a packet's consecutive hops.
//!
//! ## Persistent worker pool
//!
//! Workers are spawned **once** (lazily, on the first multi-worker batch)
//! and owned by [`Network`](crate::Network) through its scratch state; batch
//! dispatch is a condvar wake, not a thread creation. The caller's thread
//! participates as worker 0, so a 2-worker batch wakes exactly one pool
//! thread. The same pool also runs batch routing
//! ([`Router::route_batch_into`](crate::Router::route_batch_into)) and the
//! parallel epoch reset, so the steady-state epoch loop creates no OS
//! threads at all.
//!
//! [`WorkerPool::run`] hands a borrowing closure to the pool by erasing its
//! lifetime; this is sound because `run` does not return (or unwind) until
//! every participating worker has finished the job and dropped its handle
//! to the closure — the classic scoped-pool argument, with the scope held
//! open by the job's completion count instead of a `thread::scope` join.
//! The drain itself must therefore be infallible: it takes the state lock
//! through a poison-tolerant helper, so even a poisoned mutex (some thread
//! panicking with the guard held) cannot make `run` unwind early.
//! A panicking participant is caught, recorded, and re-raised on the
//! calling thread after the job drains; the job's `abort` flag is raised so
//! peers blocked on work the dead worker will never produce bail out
//! instead of deadlocking.
//!
//! ## Determinism contract
//!
//! The parallel result is **bit-identical** to the sequential
//! [`deliver_batch`](crate::Network::deliver_batch) at any thread count.
//! Sequential delivery imposes two orders that matter for stateful
//! execution:
//!
//! 1. every switch processes its packets in ascending batch order (switch
//!    state mutates per packet — e.g. which packet crosses a threshold
//!    depends on arrival order), and
//! 2. each packet's hops execute in path order (the snapshot produced at
//!    hop *h* feeds hop *h+1*).
//!
//! Any schedule respecting both produces the same per-hop outputs, because
//! a hop's result depends only on (a) its switch's state, fully determined
//! by the switch's packet order, and (b) its incoming snapshot, fully
//! determined by the packet's previous hop. The executor enforces (1) with
//! one FIFO work queue per switch, filled in batch order, popped only at
//! the head; and (2) with a per-packet hop counter a hop must match before
//! it runs. Everything else — which worker runs which switch, interleaving
//! across switches, thread count — is free parallelism.
//!
//! There is no barrier: a worker sweeps its switches' queue heads and runs
//! every hop whose predecessor finished, so hop *h+1* of packet 0 can
//! execute while hop 0 of packet 50 is still in flight. Progress is
//! guaranteed — take the lowest-numbered packet with unfinished hops: all
//! earlier packets are fully processed, so its next hop sits at the head
//! of its switch's queue with its hop counter matching.
//!
//! ## Lock-free hop handoff
//!
//! The snapshot in flight between a packet's consecutive hops lives in a
//! plain [`UnsafeCell`] slot (`FlightSlot`), not a mutex. The per-packet
//! `done` counter already serializes the slot: hop *h* is the only runnable
//! hop of packet *p* while `done[p] == h`, so at most one worker can touch
//! slot *p* at any instant. The counter's Release store (writer, after the
//! slot write) / Acquire load (reader, before the slot read) edge makes the
//! handoff a happens-before, so the read sees exactly the bytes written —
//! the mutex the seed executor took twice per hop bought nothing but
//! cache-line ping-pong.
//!
//! Merged outputs are made order-independent: reports carry their
//! `(packet, hop, index-within-hop)` coordinates and are sorted into
//! sequential order after the job drains; link-load deltas are summed
//! (commutative); snapshot-byte counters add up.

use crate::routing::PathTable;
use crate::sim::LinkKey;
use crate::topology::NodeId;
use newton_dataplane::{BatchOutput, Report, Switch};
use newton_metrics::{Counter, MaxGauge, MetricsRegistry};
use newton_packet::{Packet, SnapshotHeader, SP_HEADER_LEN};
use newton_telemetry::{NoopSink, Profile};
use std::any::Any;
use std::cell::UnsafeCell;
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU16, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// Cached `std::thread::available_parallelism()` — one syscall for the
/// process lifetime. Dispatch layers clamp their worker budgets here:
/// running more workers than cores cannot go faster, and on a loaded or
/// single-core host it actively goes slower (workers time-slice against
/// the very peers they are waiting on).
pub fn effective_parallelism() -> usize {
    static CORES: OnceLock<usize> = OnceLock::new();
    *CORES.get_or_init(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

/// A report tagged with its `(packet, hop, index-within-hop)` coordinates
/// plus the emitting switch — unique coordinates, so sorting on them
/// rebuilds exactly the sequential emission order.
type TaggedReport = (u32, u16, u16, NodeId, Report);

/// How many threads the epoch executor may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    /// Worker thread budget; `1` is the sequential path.
    pub threads: usize,
}

impl Parallelism {
    pub fn new(threads: usize) -> Self {
        Parallelism { threads: threads.max(1) }
    }

    /// Today's single-threaded path.
    pub fn sequential() -> Self {
        Self::new(1)
    }
}

impl Default for Parallelism {
    /// One worker per available core.
    fn default() -> Self {
        Self::new(effective_parallelism())
    }
}

/// Live executor metrics: the registry-backed twin of the accumulated
/// [`Profile`]. Updated once per executed batch from the same per-worker
/// outputs the profile merges, so the two views always agree; the
/// difference is lifetime — the profile is drained per run
/// ([`Network::take_parallel_profile`](crate::Network::take_parallel_profile)),
/// these counters accumulate for the registry's lifetime and are readable
/// mid-run from other threads.
#[derive(Debug, Clone, Default)]
pub struct PoolMetrics {
    pub batches: Counter,
    pub hops: Counter,
    pub busy_ns: Counter,
    pub spins: Counter,
    pub yields: Counter,
    pub sleeps: Counter,
    pub max_queue_depth: MaxGauge,
}

impl PoolMetrics {
    /// Register the executor metric family under `executor_*`.
    pub fn register(reg: &MetricsRegistry) -> PoolMetrics {
        PoolMetrics {
            batches: reg.counter("executor_batches_total", "Parallel delivery batches executed"),
            hops: reg.counter("executor_hops_total", "Packet-hops executed by pool workers"),
            busy_ns: reg
                .counter("executor_busy_ns_total", "Summed worker busy wall time in nanoseconds"),
            spins: reg.counter(
                "executor_backoff_spins_total",
                "Spin-tier backoff events while waiting on an upstream hop",
            ),
            yields: reg.counter("executor_backoff_yields_total", "Yield-tier backoff events"),
            sleeps: reg.counter("executor_backoff_sleeps_total", "Sleep-tier backoff events"),
            max_queue_depth: reg.max_gauge(
                "executor_max_queue_depth",
                "Deepest per-switch FIFO queue seen at batch setup",
            ),
        }
    }

    /// The counters rendered as a [`Profile`] — the "profile is a view
    /// over the registry" contract: ad-hoc profile plumbing can be
    /// replaced by reading these totals at any time.
    pub fn to_profile(&self) -> Profile {
        Profile {
            batches: self.batches.get(),
            hops: self.hops.get(),
            busy_ns: self.busy_ns.get(),
            max_queue_depth: self.max_queue_depth.get() as usize,
            spins: self.spins.get(),
            yields: self.yields.get(),
            sleeps: self.sleeps.get(),
        }
    }
}

type Task = Arc<dyn Fn(usize) + Send + Sync + 'static>;

#[derive(Default)]
struct PoolState {
    /// The current job's erased closure; `None` between jobs.
    task: Option<Task>,
    /// Job sequence number — lets a waking worker distinguish a fresh job
    /// from the one it just finished.
    seq: u64,
    /// Worker indices `1..workers` participate in the current job.
    workers: usize,
    /// Pool participants still running the current job.
    active: usize,
    /// First panic payload raised by a pool participant of the current job.
    panic: Option<Box<dyn Any + Send>>,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Workers wait here for the next job (or shutdown).
    work_cv: Condvar,
    /// The coordinator waits here for `active == 0`.
    done_cv: Condvar,
    /// Raised when any participant of the current job panics, so peers
    /// blocked on dataflow the dead worker will never produce can bail out
    /// instead of deadlocking. Reset at the start of each job.
    abort: AtomicBool,
}

impl PoolShared {
    /// Lock the pool state, shrugging off poisoning. The soundness of the
    /// lifetime-erased task in [`WorkerPool::run`] requires that `run`
    /// *never* unwinds between publishing the task and draining the job —
    /// a panic there would free the borrowed stack while workers still
    /// hold clones of the closure. A poisoned guard is safe to reuse:
    /// everything mutated under this lock (counters, the task slot, the
    /// panic payload) is written in single statements that cannot be
    /// observed half-done.
    fn lock_state(&self) -> MutexGuard<'_, PoolState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A persistent pool of parked worker threads for scoped fork-join jobs.
///
/// Threads spawn lazily on the first job that needs them and park between
/// jobs; dispatch is a condvar wake. The calling thread always executes
/// worker index 0 inline, so `run(1, ..)` touches no synchronization at
/// all. Jobs may borrow the caller's stack: `run` blocks until every
/// participant is done, and re-raises the first panic any participant hit.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    threads: Vec<JoinHandle<()>>,
}

impl Default for WorkerPool {
    fn default() -> Self {
        WorkerPool {
            shared: Arc::new(PoolShared {
                state: Mutex::new(PoolState::default()),
                work_cv: Condvar::new(),
                done_cv: Condvar::new(),
                abort: AtomicBool::new(false),
            }),
            threads: Vec::new(),
        }
    }
}

impl fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerPool").field("spawned", &self.threads.len()).finish()
    }
}

impl WorkerPool {
    pub fn new() -> Self {
        Self::default()
    }

    /// Pool threads spawned so far (excluding the caller, worker 0).
    pub fn spawned(&self) -> usize {
        self.threads.len()
    }

    fn ensure_threads(&mut self, pool_threads: usize) {
        while self.threads.len() < pool_threads {
            let index = self.threads.len() + 1;
            let shared = Arc::clone(&self.shared);
            let handle = std::thread::Builder::new()
                .name(format!("newton-worker-{index}"))
                .spawn(move || worker_loop(index, shared))
                .expect("spawn delivery worker");
            self.threads.push(handle);
        }
    }

    /// Run `task(w, abort)` once for every worker index `w < workers`,
    /// blocking until all are done. Worker 0 runs on the calling thread;
    /// the rest on parked pool threads (spawned on first use). If any
    /// participant panics, the job's `abort` flag is raised (tasks blocked
    /// on peer progress should poll it and return early) and the first
    /// panic is re-raised here after the job fully drains.
    pub fn run<'env>(
        &mut self,
        workers: usize,
        task: impl Fn(usize, &AtomicBool) + Send + Sync + 'env,
    ) {
        self.shared.abort.store(false, Ordering::Relaxed);
        if workers <= 1 {
            task(0, &self.shared.abort);
            return;
        }
        self.ensure_threads(workers - 1);
        let shared = Arc::clone(&self.shared);
        let task: Arc<dyn Fn(usize) + Send + Sync + 'env> =
            Arc::new(move |w| task(w, &shared.abort));
        // SAFETY: the erased closure is only reachable by this pool's
        // workers, and `run` does not return or unwind before every
        // participant has dropped its clone (`active == 0` below, and
        // workers drop the task before decrementing `active`), so the
        // closure's 'env borrows strictly outlive every use. The captures
        // hold no drop glue beyond the Arc'd `shared`.
        let task: Task =
            unsafe { std::mem::transmute::<Arc<dyn Fn(usize) + Send + Sync + 'env>, Task>(task) };
        {
            let mut st = self.shared.lock_state();
            st.task = Some(Arc::clone(&task));
            st.workers = workers;
            st.active = workers - 1;
            st.seq += 1;
            self.shared.work_cv.notify_all();
        }
        // The coordinator is worker 0. Its panic must not skip the drain
        // below — the pool workers still borrow the caller's stack. Nothing
        // between here and the end of the drain may unwind (the drain locks
        // via `lock_state`, which tolerates poisoning, exactly so).
        let main = catch_unwind(AssertUnwindSafe(|| task(0)));
        if main.is_err() {
            self.shared.abort.store(true, Ordering::Relaxed);
        }
        let pool_panic = {
            let mut st = self.shared.lock_state();
            while st.active > 0 {
                st = self.shared.done_cv.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
            st.task = None;
            st.panic.take()
        };
        drop(task);
        if let Err(payload) = main {
            resume_unwind(payload);
        }
        if let Some(payload) = pool_panic {
            resume_unwind(payload);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.lock_state();
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(index: usize, shared: Arc<PoolShared>) {
    let mut seen = 0u64;
    loop {
        let task: Task = {
            let mut st = shared.lock_state();
            loop {
                if st.shutdown {
                    return;
                }
                if st.seq != seen {
                    // A new job was published since we last looked; join it
                    // if our index participates, otherwise skip it (the
                    // coordinator only waits on participants).
                    seen = st.seq;
                    if index < st.workers {
                        if let Some(task) = &st.task {
                            break Arc::clone(task);
                        }
                    }
                }
                st = shared.work_cv.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        };
        let result = catch_unwind(AssertUnwindSafe(|| task(index)));
        // Drop our handle to the borrowed closure *before* reporting
        // completion — `run` may invalidate the borrows once `active == 0`.
        // A poisoned lock must not unwind this loop either: dying here
        // would leave `active` stuck above zero and the coordinator parked.
        drop(task);
        let mut st = shared.lock_state();
        if let Err(payload) = result {
            shared.abort.store(true, Ordering::Relaxed);
            if st.panic.is_none() {
                st.panic = Some(payload);
            }
        }
        st.active -= 1;
        if st.active == 0 {
            shared.done_cv.notify_one();
        }
    }
}

/// Per-packet snapshot slot handed between a packet's consecutive hops.
///
/// Safety of the unsynchronized interior: a slot for packet *p* is written
/// only by the worker retiring hop *h* (before its Release store of
/// `done[p] = h + 1`) and read only by the worker starting hop *h + 1*
/// (after its Acquire load observed `done[p] == h + 1`). The counter makes
/// at most one hop of a packet runnable at a time, so accesses never
/// overlap, and the Release/Acquire edge orders the write before the read.
#[derive(Default)]
struct FlightSlot(UnsafeCell<Option<SnapshotHeader>>);

// SAFETY: see the type docs — the `done` counter serializes all access.
unsafe impl Sync for FlightSlot {}

/// Shareable base pointer into the switch array. Workers only dereference
/// the switch ids assigned to them, and the greedy partition assigns every
/// switch to at most one worker, so mutable accesses never alias.
#[derive(Clone, Copy)]
pub(crate) struct SwitchesPtr(pub(crate) *mut Switch);

// SAFETY: dereferences are partitioned by switch id across workers (see
// type docs); the pointee array outlives the job (the coordinator blocks
// in `WorkerPool::run` until the job drains).
unsafe impl Send for SwitchesPtr {}
unsafe impl Sync for SwitchesPtr {}

impl SwitchesPtr {
    /// Pointer to switch `i`. Going through a method (not the raw field)
    /// keeps closures capturing the `Sync` wrapper, not the bare pointer.
    /// Dereferencing still requires the partition argument above.
    pub(crate) fn at(self, i: usize) -> *mut Switch {
        self.0.wrapping_add(i)
    }
}

/// One worker's reusable working set: its report/delta output buffers and
/// its per-owned-switch queue cursors.
#[derive(Debug, Default)]
struct WorkerOut {
    reports: Vec<TaggedReport>,
    deltas: Vec<(LinkKey, u64, u64)>,
    snapshot_bytes: usize,
    heads: Vec<usize>,
    /// Wall-clock nanoseconds this worker spent inside the job — profiling
    /// only, never part of the deterministic journal.
    busy_ns: u64,
    /// Backoff events by tier (see [`backoff`]): spin, yield, sleep.
    spins: u64,
    yields: u64,
    sleeps: u64,
}

/// A per-worker slot: worker `w` is the only task that touches slot `w`
/// while a job runs, and the coordinator touches slots only between jobs
/// (through `&mut`, via `get_mut`).
#[derive(Default)]
struct WorkerSlot(UnsafeCell<WorkerOut>);

// SAFETY: see the type docs — slots are indexed by worker, never shared.
unsafe impl Sync for WorkerSlot {}

/// Reusable buffers of the parallel delivery path, owned by
/// [`Network`](crate::Network) so epoch after epoch performs no
/// steady-state allocation — and the pool threads themselves persist right
/// alongside the buffers they work on.
#[derive(Default)]
pub(crate) struct ParScratch {
    /// Precomputed routes of the current batch.
    pub(crate) paths: PathTable,
    /// Per-worker shard buffers of batch routing.
    pub(crate) route_shards: crate::routing::ShardScratch,
    /// The persistent worker pool shared by batch routing, batch delivery,
    /// and the parallel epoch reset.
    pub(crate) pool: WorkerPool,
    /// Merged per-link `(link, payload, snapshot)` byte deltas of the last
    /// executed batch; the caller flushes them into its link-load map.
    pub(crate) deltas: Vec<(LinkKey, u64, u64)>,
    /// Per-switch FIFO work queues: `(packet index, hop position)` in
    /// batch order.
    queues: Vec<Vec<(u32, u16)>>,
    /// Per-packet count of completed hops — a hop `(p, h)` is ready when
    /// `done[p] == h`. Release on store / Acquire on load orders the
    /// flight-slot handoff.
    done: Vec<AtomicU16>,
    /// Per-packet snapshot in flight between consecutive hops; guarded by
    /// `done` (see [`FlightSlot`]).
    flight: Vec<FlightSlot>,
    /// Busy switches of the current batch, heaviest queue first.
    busy: Vec<NodeId>,
    /// Greedy per-worker balance of queued hops.
    load: Vec<usize>,
    /// Per-worker owned switch ids (the shard partition).
    assign: Vec<Vec<NodeId>>,
    /// Per-worker output slots.
    slots: Vec<WorkerSlot>,
    /// Merge buffer for sorting reports back into sequential order.
    tagged: Vec<TaggedReport>,
    /// Accumulated executor profile (wall timings, backoff events) across
    /// batches — explicitly nondeterministic, drained by
    /// [`Network::take_parallel_profile`](crate::Network::take_parallel_profile).
    pub(crate) profile: Profile,
    /// Live registry-backed twin of `profile`, fed the same per-batch
    /// deltas when attached (see
    /// [`Network::set_metrics`](crate::Network::set_metrics)). Strictly a
    /// wall-clock observer: nothing here can reach the journal.
    pub(crate) metrics: Option<PoolMetrics>,
}

impl fmt::Debug for ParScratch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ParScratch")
            .field("pool", &self.pool)
            .field("switch_queues", &self.queues.len())
            .field("packets", &self.done.len())
            .finish()
    }
}

/// What the executor hands back to [`Network`](crate::Network): reports in
/// sequential order and the aggregate counters. Link deltas stay in
/// [`ParScratch::deltas`] so their buffer is reused across batches.
pub(crate) struct ParOutcome {
    pub reports: Vec<(NodeId, Report)>,
    pub snapshot_bytes: usize,
    pub delivered: usize,
    pub unrouted: usize,
}

/// Everything a worker shares read-only (or via guarded slots) with its
/// peers for one batch.
#[derive(Clone, Copy)]
struct BatchCtx<'a, 'p> {
    switches: SwitchesPtr,
    queues: &'a [Vec<(u32, u16)>],
    done: &'a [AtomicU16],
    flight: &'a [FlightSlot],
    paths: &'a PathTable,
    batch: &'a [(&'p Packet, NodeId, NodeId)],
    newton_enabled: &'a [bool],
    /// Per-switch liveness ([`Router::live_switches`]): dead switches
    /// forward without executing, exactly as the sequential walk skips
    /// them.
    alive: &'a [bool],
    /// Packets-per-batch budget of the pipeline's batch-first path: a
    /// worker hands at most this many queued hops to one
    /// [`Switch::process_batch`] call.
    batch_lanes: usize,
}

/// Run one routed batch on up to `threads` workers. `scratch.paths` must
/// already hold the batch's routes. `batch_lanes` caps how many queued
/// hops a worker hands to one [`Switch::process_batch`] call.
pub(crate) fn execute_batch(
    switches: &mut [Switch],
    newton_enabled: &[bool],
    alive: &[bool],
    batch: &[(&Packet, NodeId, NodeId)],
    scratch: &mut ParScratch,
    threads: usize,
    batch_lanes: usize,
) -> ParOutcome {
    let ParScratch {
        paths,
        pool,
        deltas,
        queues,
        done,
        flight,
        busy,
        load,
        assign,
        slots,
        tagged,
        profile,
        metrics,
        ..
    } = scratch;

    // Fill the per-switch queues in batch order (order (1) above).
    queues.resize_with(switches.len(), Vec::new);
    for q in queues.iter_mut() {
        q.clear();
    }
    let mut delivered = 0;
    let mut unrouted = 0;
    for i in 0..batch.len() {
        let path = paths.path(i);
        if path.is_empty() {
            unrouted += 1;
            continue;
        }
        delivered += 1;
        for (h, &node) in path.iter().enumerate() {
            queues[node].push((i as u32, h as u16));
        }
    }
    // Reset hop counters in place (plain stores through `get_mut`: the
    // batch is not visible to any worker yet). Flight slots need no reset —
    // hop 0 never reads its slot, and a read at hop h > 0 is always
    // preceded by hop h-1's write within the same batch.
    done.resize_with(batch.len(), AtomicU16::default);
    for d in done.iter_mut() {
        *d.get_mut() = 0;
    }
    flight.resize_with(batch.len(), FlightSlot::default);

    // Partition switches across workers, greedily balancing queue length:
    // heaviest switches first, each to the least-loaded worker. The
    // partition only affects scheduling, never output, but is kept
    // deterministic anyway (ties break by switch id, then worker index).
    busy.clear();
    busy.extend((0..switches.len()).filter(|&s| !queues[s].is_empty()));
    busy.sort_unstable_by_key(|&s| (std::cmp::Reverse(queues[s].len()), s));
    let workers = threads.clamp(1, busy.len().max(1));
    load.clear();
    load.resize(workers, 0);
    if assign.len() < workers {
        assign.resize_with(workers, Vec::new);
    }
    for a in assign.iter_mut() {
        a.clear();
    }
    for &s in busy.iter() {
        let w = (0..workers).min_by_key(|&w| load[w]).expect("workers >= 1");
        load[w] += queues[s].len();
        assign[w].push(s);
    }

    if slots.len() < workers {
        slots.resize_with(workers, WorkerSlot::default);
    }
    for (w, slot) in slots.iter_mut().enumerate().take(workers) {
        let out = slot.0.get_mut();
        out.reports.clear();
        out.deltas.clear();
        out.snapshot_bytes = 0;
        out.heads.clear();
        out.heads.resize(assign[w].len(), 0);
        out.busy_ns = 0;
        out.spins = 0;
        out.yields = 0;
        out.sleeps = 0;
    }

    {
        let ctx = BatchCtx {
            switches: SwitchesPtr(switches.as_mut_ptr()),
            queues,
            done,
            flight,
            paths,
            batch,
            newton_enabled,
            alive,
            batch_lanes: batch_lanes.max(1),
        };
        let assign: &[Vec<NodeId>] = assign;
        let slots: &[WorkerSlot] = slots;
        pool.run(workers, |w, aborted| {
            // SAFETY: worker `w` is the only task of this job dereferencing
            // slot `w` (see WorkerSlot); the coordinator regains `&mut`
            // access only after the job drains.
            let out = unsafe { &mut *slots[w].0.get() };
            let start = std::time::Instant::now();
            run_worker(&assign[w], ctx, out, aborted);
            out.busy_ns += start.elapsed().as_nanos() as u64;
        });
    }

    // Merge into sequential order: report coordinates `(packet, hop,
    // index-within-hop)` are unique, so the sort reproduces exactly the
    // order the sequential walk emits. Deltas accumulate into the reusable
    // scratch buffer for the caller to flush.
    tagged.clear();
    deltas.clear();
    let mut snapshot_bytes = 0usize;
    let deepest = busy.first().map_or(0, |&s| queues[s].len());
    profile.batches += 1;
    profile.max_queue_depth = profile.max_queue_depth.max(deepest);
    let mut batch = Profile { batches: 1, max_queue_depth: deepest, ..Profile::default() };
    for slot in slots.iter_mut().take(workers) {
        let out = slot.0.get_mut();
        batch.hops += out.heads.iter().map(|&h| h as u64).sum::<u64>();
        batch.busy_ns += out.busy_ns;
        batch.spins += out.spins;
        batch.yields += out.yields;
        batch.sleeps += out.sleeps;
        tagged.append(&mut out.reports);
        deltas.append(&mut out.deltas);
        snapshot_bytes += out.snapshot_bytes;
    }
    profile.hops += batch.hops;
    profile.busy_ns += batch.busy_ns;
    profile.spins += batch.spins;
    profile.yields += batch.yields;
    profile.sleeps += batch.sleeps;
    if let Some(m) = metrics {
        m.batches.inc();
        m.hops.add(batch.hops);
        m.busy_ns.add(batch.busy_ns);
        m.spins.add(batch.spins);
        m.yields.add(batch.yields);
        m.sleeps.add(batch.sleeps);
        m.max_queue_depth.observe(deepest as u64);
    }
    tagged.sort_unstable_by_key(|&(p, h, j, _, _)| (p, h, j));
    let reports = tagged.drain(..).map(|(_, _, _, node, r)| (node, r)).collect();
    ParOutcome { reports, snapshot_bytes, delivered, unrouted }
}

/// One worker: sweep the owned switches' queue heads, running every
/// ready *run* of hops — consecutive queue entries whose predecessor hop
/// has finished — through one [`Switch::process_batch`] call, until all
/// owned work is done.
///
/// Handing the whole run to the batch path is bit-identical to popping
/// entries one at a time: a switch's queue lists packets in batch order,
/// `process_batch` equals sequential `process` per packet (every 𝕊
/// instance lives in one stage, so its register-op order under the
/// stage-major batched walk is lane order = packet order), and a packet
/// queued twice in a row on one switch self-limits the run — its second
/// entry's `done` counter cannot match until the first retires.
fn run_worker(mine: &[NodeId], ctx: BatchCtx<'_, '_>, out: &mut WorkerOut, aborted: &AtomicBool) {
    let total: usize = mine.iter().map(|&node| ctx.queues[node].len()).sum();
    let mut processed = 0usize;
    let mut idle = 0u32;
    let mut sink = NoopSink;
    let mut pkts: Vec<(&Packet, Option<SnapshotHeader>)> = Vec::new();
    let mut bout = BatchOutput::default();
    while processed < total {
        let mut progressed = false;
        for (k, &node) in mine.iter().enumerate() {
            // SAFETY: the partition assigns each switch id to exactly one
            // worker, so this worker holds the only live access to `node`'s
            // switch for the whole job; the caller's `&mut [Switch]` borrow
            // is dormant until the job drains (see SwitchesPtr).
            let sw = unsafe { &mut *ctx.switches.at(node) };
            let q = &ctx.queues[node];
            loop {
                // Collect the ready run at the queue head, capped at the
                // pipeline's batch budget.
                let start = out.heads[k];
                pkts.clear();
                while start + pkts.len() < q.len() && pkts.len() < ctx.batch_lanes {
                    let (p, h) = q[start + pkts.len()];
                    if ctx.done[p as usize].load(Ordering::Acquire) != h {
                        break;
                    }
                    // SAFETY: guarded by the Acquire load above — hop h-1's
                    // writer released this slot before storing `done[p] = h`
                    // (see FlightSlot).
                    let sp_in: Option<SnapshotHeader> =
                        if h == 0 { None } else { unsafe { *ctx.flight[p as usize].0.get() } };
                    pkts.push((ctx.batch[p as usize].0, sp_in));
                }
                if pkts.is_empty() {
                    break;
                }
                let execute = ctx.newton_enabled[node] && ctx.alive[node];
                if execute {
                    sw.process_batch(&pkts, &mut sink, &mut bout);
                }
                // Retire the run in order: reports come back packet-major,
                // so a cursor walk re-tags them with queue coordinates.
                let mut rep = 0usize;
                for (i, &(pkt, sp_in)) in pkts.iter().enumerate() {
                    let (p, h) = q[start + i];
                    let mut sp_out = sp_in;
                    if execute {
                        let mut j = 0u16;
                        while rep < bout.reports.len() && bout.reports[rep].0 as usize == i {
                            out.reports.push((p, h, j, node, bout.reports[rep].1.clone()));
                            j += 1;
                            rep += 1;
                        }
                        sp_out = bout.snapshots[i];
                    }
                    let path = ctx.paths.path(p as usize);
                    let next = h as usize + 1;
                    if next < path.len() {
                        let sp = if sp_out.is_some() {
                            out.snapshot_bytes += SP_HEADER_LEN;
                            SP_HEADER_LEN as u64
                        } else {
                            0
                        };
                        out.deltas.push((LinkKey::new(node, path[next]), pkt.wire_len as u64, sp));
                        // SAFETY: this worker exclusively owns slot `p` while
                        // `done[p] == h`; the Release store below publishes
                        // the write to hop h+1's Acquire load (see
                        // FlightSlot).
                        unsafe { *ctx.flight[p as usize].0.get() = sp_out };
                    }
                    ctx.done[p as usize].store(next as u16, Ordering::Release);
                }
                out.heads[k] += pkts.len();
                processed += pkts.len();
                progressed = true;
            }
        }
        if progressed {
            idle = 0;
        } else if processed < total {
            if aborted.load(Ordering::Relaxed) {
                // A peer panicked: the hops we are waiting on will never
                // retire. Bail out with partial output instead of spinning
                // forever; the pool re-raises the peer's panic.
                return;
            }
            if idle < 16 {
                out.spins += 1;
            } else if idle < 64 {
                out.yields += 1;
            } else {
                out.sleeps += 1;
            }
            backoff(idle);
            idle = idle.saturating_add(1);
        }
    }
}

/// Bounded backoff for a worker whose every queue head waits on a hop
/// owned by another worker: spin briefly (on a genuinely parallel run the
/// dependency retires in nanoseconds), then yield, then sleep in small
/// slices — workers may outnumber cores (determinism tests oversubscribe
/// deliberately), where hot spinning would starve the very peer being
/// waited on.
fn backoff(idle: u32) {
    if idle < 16 {
        std::hint::spin_loop();
    } else if idle < 64 {
        std::thread::yield_now();
    } else {
        std::thread::sleep(Duration::from_micros(50));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn pool_runs_every_participant_and_reuses_threads() {
        let mut pool = WorkerPool::new();
        for workers in 1..=4usize {
            let hits: Vec<AtomicUsize> = (0..workers).map(|_| AtomicUsize::new(0)).collect();
            pool.run(workers, |w, _| {
                hits[w].fetch_add(1, Ordering::Relaxed);
            });
            let counts: Vec<usize> = hits.iter().map(|h| h.load(Ordering::Relaxed)).collect();
            assert_eq!(counts, vec![1; workers], "each participant runs exactly once");
        }
        assert_eq!(pool.spawned(), 3, "pool grows to workers-1 threads and keeps them");
        // Shrinking the worker count reuses the parked threads.
        let hits = AtomicUsize::new(0);
        pool.run(2, |_, _| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 2);
        assert_eq!(pool.spawned(), 3, "no threads spawned or dropped on smaller jobs");
    }

    #[test]
    fn single_worker_jobs_run_inline_without_pool_threads() {
        let mut pool = WorkerPool::new();
        let caller = std::thread::current().id();
        let ran_on = Mutex::new(None);
        pool.run(1, |w, _| {
            assert_eq!(w, 0);
            *ran_on.lock().unwrap() = Some(std::thread::current().id());
        });
        assert_eq!(*ran_on.lock().unwrap(), Some(caller), "worker 0 is the calling thread");
        assert_eq!(pool.spawned(), 0, "no threads for sequential jobs");
    }

    #[test]
    fn worker_panic_propagates_and_unblocks_waiting_peers() {
        let mut pool = WorkerPool::new();
        let payload = catch_unwind(AssertUnwindSafe(|| {
            pool.run(3, |w, aborted| match w {
                1 => panic!("switch exploded"),
                2 => {
                    // Models a worker parked on a hop dependency the
                    // panicking peer would have produced: it must see the
                    // abort flag rather than wait forever.
                    while !aborted.load(Ordering::Relaxed) {
                        std::thread::yield_now();
                    }
                }
                _ => {}
            });
        }))
        .expect_err("the worker panic must reach the caller");
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"switch exploded"));
        // The pool survives the panic and stays usable.
        let ran = AtomicUsize::new(0);
        pool.run(3, |_, _| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 3, "pool reusable after a worker panic");
    }

    #[test]
    fn coordinator_panic_aborts_pool_workers() {
        let mut pool = WorkerPool::new();
        let payload = catch_unwind(AssertUnwindSafe(|| {
            pool.run(2, |w, aborted| {
                if w == 0 {
                    panic!("coordinator died");
                }
                while !aborted.load(Ordering::Relaxed) {
                    std::thread::yield_now();
                }
            });
        }))
        .expect_err("the coordinator panic must propagate");
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"coordinator died"));
        let ran = AtomicUsize::new(0);
        pool.run(2, |_, _| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn default_parallelism_is_the_effective_core_count() {
        assert_eq!(Parallelism::default().threads, effective_parallelism());
        assert!(effective_parallelism() >= 1);
    }
}
