//! Deterministic multi-core epoch executor.
//!
//! Newton's own structure makes switches natural shards: each switch owns
//! its state banks 𝕊 exclusively, and cross-switch query state moves
//! *only* via the 12-byte result snapshot riding the packet (§5 CQE). The
//! executor exploits exactly that: switches are partitioned across worker
//! threads (each worker holds `&mut` to its switches — no locks around
//! pipeline state), and the only inter-thread dataflow is the snapshot
//! handoff between a packet's consecutive hops.
//!
//! ## Determinism contract
//!
//! The parallel result is **bit-identical** to the sequential
//! [`deliver_batch`](crate::Network::deliver_batch) at any thread count.
//! Sequential delivery imposes two orders that matter for stateful
//! execution:
//!
//! 1. every switch processes its packets in ascending batch order (switch
//!    state mutates per packet — e.g. which packet crosses a threshold
//!    depends on arrival order), and
//! 2. each packet's hops execute in path order (the snapshot produced at
//!    hop *h* feeds hop *h+1*).
//!
//! Any schedule respecting both produces the same per-hop outputs, because
//! a hop's result depends only on (a) its switch's state, fully determined
//! by the switch's packet order, and (b) its incoming snapshot, fully
//! determined by the packet's previous hop. The executor enforces (1) with
//! one FIFO work queue per switch, filled in batch order, popped only at
//! the head; and (2) with a per-packet hop counter a hop must match before
//! it runs. Everything else — which worker runs which switch, interleaving
//! across switches, thread count — is free parallelism.
//!
//! There is no barrier: a worker sweeps its switches' queue heads and runs
//! every hop whose predecessor finished, so hop *h+1* of packet 0 can
//! execute while hop 0 of packet 50 is still in flight. Progress is
//! guaranteed — take the lowest-numbered packet with unfinished hops: all
//! earlier packets are fully processed, so its next hop sits at the head
//! of its switch's queue with its hop counter matching.
//!
//! Merged outputs are made order-independent: reports carry their
//! `(packet, hop, index-within-hop)` coordinates and are sorted into
//! sequential order after the scope joins; link-load deltas are summed
//! (commutative); snapshot-byte counters add up.

use crate::routing::PathTable;
use crate::sim::LinkKey;
use crate::topology::NodeId;
use newton_dataplane::{Report, Switch};
use newton_packet::{Packet, SnapshotHeader, SP_HEADER_LEN};
use std::sync::atomic::{AtomicU16, Ordering};
use std::sync::Mutex;

/// A report tagged with its `(packet, hop, index-within-hop)` coordinates
/// plus the emitting switch — unique coordinates, so sorting on them
/// rebuilds exactly the sequential emission order.
type TaggedReport = (u32, u16, u16, NodeId, Report);

/// A worker's contribution to the batch: its tagged reports, per-link
/// load deltas, and snapshot bytes carried across its hops.
type WorkerPart = (Vec<TaggedReport>, Vec<(LinkKey, u64, u64)>, usize);

/// How many threads the epoch executor may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    /// Worker thread budget; `1` is the sequential path.
    pub threads: usize,
}

impl Parallelism {
    pub fn new(threads: usize) -> Self {
        Parallelism { threads: threads.max(1) }
    }

    /// Today's single-threaded path.
    pub fn sequential() -> Self {
        Self::new(1)
    }
}

impl Default for Parallelism {
    /// One worker per available core.
    fn default() -> Self {
        Self::new(std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
    }
}

/// Reusable buffers of the parallel delivery path, owned by
/// [`Network`](crate::Network) so epoch after epoch performs no
/// steady-state allocation.
#[derive(Debug, Default)]
pub(crate) struct ParScratch {
    /// Precomputed routes of the current batch.
    pub(crate) paths: PathTable,
    /// Per-switch FIFO work queues: `(packet index, hop position)` in
    /// batch order.
    queues: Vec<Vec<(u32, u16)>>,
    /// Per-packet count of completed hops — a hop `(p, h)` is ready when
    /// `done[p] == h`. Release on store / Acquire on load orders the
    /// flight-slot handoff.
    done: Vec<AtomicU16>,
    /// Per-packet snapshot in flight between consecutive hops. Only one
    /// hop of a packet runs at a time, so the lock is never contended; it
    /// exists to make the cross-thread handoff safe, with the `done`
    /// counter providing the happens-before edge.
    flight: Vec<Mutex<Option<SnapshotHeader>>>,
}

/// What the executor hands back to [`Network`](crate::Network): reports in
/// sequential order, raw link deltas (flushed by the caller into the
/// link-load map), and the aggregate counters.
pub(crate) struct ParOutcome {
    pub reports: Vec<(NodeId, Report)>,
    pub deltas: Vec<(LinkKey, u64, u64)>,
    pub snapshot_bytes: usize,
    pub delivered: usize,
    pub unrouted: usize,
}

/// Run one routed batch on up to `threads` workers. `scratch.paths` must
/// already hold the batch's routes.
pub(crate) fn execute_batch(
    switches: &mut [Switch],
    newton_enabled: &[bool],
    batch: &[(&Packet, NodeId, NodeId)],
    scratch: &mut ParScratch,
    threads: usize,
) -> ParOutcome {
    let ParScratch { paths, queues, done, flight } = scratch;

    // Fill the per-switch queues in batch order (order (1) above).
    queues.resize_with(switches.len(), Vec::new);
    for q in queues.iter_mut() {
        q.clear();
    }
    let mut delivered = 0;
    let mut unrouted = 0;
    for i in 0..batch.len() {
        let path = paths.path(i);
        if path.is_empty() {
            unrouted += 1;
            continue;
        }
        delivered += 1;
        for (h, &node) in path.iter().enumerate() {
            queues[node].push((i as u32, h as u16));
        }
    }
    done.clear();
    done.extend((0..batch.len()).map(|_| AtomicU16::new(0)));
    flight.clear();
    flight.extend((0..batch.len()).map(|_| Mutex::new(None)));

    // Partition switches across workers, greedily balancing queue length:
    // heaviest switches first, each to the least-loaded worker. The
    // partition only affects scheduling, never output, but is kept
    // deterministic anyway (ties break by switch id, then worker index).
    let mut busy: Vec<NodeId> = (0..switches.len()).filter(|&s| !queues[s].is_empty()).collect();
    busy.sort_unstable_by_key(|&s| (std::cmp::Reverse(queues[s].len()), s));
    let workers = threads.clamp(1, busy.len().max(1));
    let mut owner = vec![usize::MAX; switches.len()];
    let mut load = vec![0usize; workers];
    for &s in &busy {
        let w = (0..workers).min_by_key(|&w| load[w]).expect("workers >= 1");
        owner[s] = w;
        load[w] += queues[s].len();
    }

    // Hand each worker exclusive `&mut` to its switches.
    let mut owned: Vec<Vec<(NodeId, &mut Switch)>> = (0..workers).map(|_| Vec::new()).collect();
    for (node, sw) in switches.iter_mut().enumerate() {
        if owner[node] != usize::MAX {
            owned[owner[node]].push((node, sw));
        }
    }

    let queues = &*queues;
    let done = &*done;
    let flight = &*flight;
    let paths = &*paths;
    let parts: Vec<WorkerPart> = std::thread::scope(|s| {
        let handles: Vec<_> = owned
            .into_iter()
            .map(|mine| {
                s.spawn(move || {
                    run_worker(mine, queues, done, flight, paths, batch, newton_enabled)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("delivery worker panicked")).collect()
    });

    // Merge into sequential order: report coordinates `(packet, hop,
    // index-within-hop)` are unique, so the sort reproduces exactly the
    // order the sequential walk emits.
    let mut tagged: Vec<TaggedReport> = Vec::new();
    let mut deltas: Vec<(LinkKey, u64, u64)> = Vec::new();
    let mut snapshot_bytes = 0usize;
    for (r, d, sp) in parts {
        tagged.extend(r);
        deltas.extend(d);
        snapshot_bytes += sp;
    }
    tagged.sort_unstable_by_key(|&(p, h, j, _, _)| (p, h, j));
    let reports = tagged.into_iter().map(|(_, _, _, node, r)| (node, r)).collect();
    ParOutcome { reports, deltas, snapshot_bytes, delivered, unrouted }
}

/// One worker: sweep the owned switches' queue heads, running every hop
/// whose predecessor has finished, until all owned work is done. Yields
/// the CPU on unproductive sweeps (the machine may have fewer cores than
/// workers).
#[allow(clippy::type_complexity)]
fn run_worker(
    mut mine: Vec<(NodeId, &mut Switch)>,
    queues: &[Vec<(u32, u16)>],
    done: &[AtomicU16],
    flight: &[Mutex<Option<SnapshotHeader>>],
    paths: &PathTable,
    batch: &[(&Packet, NodeId, NodeId)],
    newton_enabled: &[bool],
) -> WorkerPart {
    let total: usize = mine.iter().map(|&(node, _)| queues[node].len()).sum();
    let mut heads = vec![0usize; mine.len()];
    let mut processed = 0usize;
    let mut reports = Vec::new();
    let mut deltas = Vec::new();
    let mut snapshot_bytes = 0usize;

    while processed < total {
        let mut progressed = false;
        for (k, (node, sw)) in mine.iter_mut().enumerate() {
            let q = &queues[*node];
            while heads[k] < q.len() {
                let (p, h) = q[heads[k]];
                if done[p as usize].load(Ordering::Acquire) != h {
                    break;
                }
                let pkt = batch[p as usize].0;
                let path = paths.path(p as usize);
                let sp_in: Option<SnapshotHeader> =
                    if h == 0 { None } else { *flight[p as usize].lock().expect("flight slot") };
                let mut sp_out = sp_in;
                if newton_enabled[*node] {
                    let out = sw.process(pkt, sp_in.as_ref());
                    for (j, r) in out.reports.into_iter().enumerate() {
                        reports.push((p, h, j as u16, *node, r));
                    }
                    sp_out = out.snapshot;
                }
                let next = h as usize + 1;
                if next < path.len() {
                    let sp = if sp_out.is_some() {
                        snapshot_bytes += SP_HEADER_LEN;
                        SP_HEADER_LEN as u64
                    } else {
                        0
                    };
                    deltas.push((LinkKey::new(*node, path[next]), pkt.wire_len as u64, sp));
                    *flight[p as usize].lock().expect("flight slot") = sp_out;
                }
                done[p as usize].store(next as u16, Ordering::Release);
                heads[k] += 1;
                processed += 1;
                progressed = true;
            }
        }
        if !progressed && processed < total {
            std::thread::yield_now();
        }
    }
    (reports, deltas, snapshot_bytes)
}
