//! Topology graphs: chains, k-ary fat-trees, and an ISP backbone.

use std::collections::BTreeSet;

/// Switch identifier within a topology.
pub type NodeId = usize;

/// An undirected switch-level topology with designated edge (host-facing)
/// switches.
///
/// ```
/// use newton_net::Topology;
/// let t = Topology::fat_tree(4);
/// assert_eq!(t.len(), 20);
/// assert_eq!(t.edge_switches().len(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct Topology {
    name: String,
    adjacency: Vec<BTreeSet<NodeId>>,
    edge_switches: Vec<NodeId>,
}

impl Topology {
    /// Build an empty topology with `n` switches.
    pub fn new(name: impl Into<String>, n: usize) -> Self {
        Topology {
            name: name.into(),
            adjacency: vec![BTreeSet::new(); n],
            edge_switches: Vec::new(),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of switches.
    pub fn len(&self) -> usize {
        self.adjacency.len()
    }

    pub fn is_empty(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// Add an undirected link.
    ///
    /// # Panics
    /// Panics on out-of-range nodes or self-loops.
    pub fn add_link(&mut self, a: NodeId, b: NodeId) {
        assert!(a != b, "self-loop at {a}");
        assert!(a < self.len() && b < self.len(), "link ({a},{b}) out of range");
        self.adjacency[a].insert(b);
        self.adjacency[b].insert(a);
    }

    /// Mark a switch as host-facing.
    pub fn mark_edge(&mut self, s: NodeId) {
        assert!(s < self.len());
        if !self.edge_switches.contains(&s) {
            self.edge_switches.push(s);
        }
    }

    /// Neighbors of a switch.
    pub fn neighbors(&self, s: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.adjacency[s].iter().copied()
    }

    /// Host-facing switches.
    pub fn edge_switches(&self) -> &[NodeId] {
        &self.edge_switches
    }

    /// Total undirected links.
    pub fn link_count(&self) -> usize {
        self.adjacency.iter().map(BTreeSet::len).sum::<usize>() / 2
    }

    /// A linear chain of `n` switches (the paper's testbed shape); both
    /// ends are edge switches.
    pub fn chain(n: usize) -> Topology {
        assert!(n >= 1);
        let mut t = Topology::new(format!("chain-{n}"), n);
        for i in 1..n {
            t.add_link(i - 1, i);
        }
        t.mark_edge(0);
        if n > 1 {
            t.mark_edge(n - 1);
        }
        t
    }

    /// A k-ary fat-tree: `(k/2)²` core switches, `k` pods of `k/2`
    /// aggregation + `k/2` edge switches. `k` must be even and ≥ 2.
    ///
    /// Node layout: cores `0..(k/2)²`, then per pod: aggs, then edges.
    pub fn fat_tree(k: usize) -> Topology {
        assert!(k >= 2 && k.is_multiple_of(2), "fat-tree arity must be even and >= 2");
        let half = k / 2;
        let cores = half * half;
        let n = cores + k * k; // + k pods × (half agg + half edge) = k*k
        let mut t = Topology::new(format!("fat-tree-{k}"), n);
        for pod in 0..k {
            let agg0 = cores + pod * k;
            let edge0 = agg0 + half;
            for a in 0..half {
                // Aggregation a of this pod connects to cores
                // [a*half, (a+1)*half).
                for c in 0..half {
                    t.add_link(agg0 + a, a * half + c);
                }
                // Full bipartite agg–edge inside the pod.
                for e in 0..half {
                    t.add_link(agg0 + a, edge0 + e);
                }
            }
            for e in 0..half {
                t.mark_edge(edge0 + e);
            }
        }
        t
    }

    /// An AT&T-like North-America backbone (25 PoPs), reconstructed from
    /// the public OC-768 map the paper cites: a mesh over major US cities.
    /// California PoPs (San Francisco=0, Los Angeles=1, Sacramento=2,
    /// San Diego=3) are edge switches, matching the paper's "traffic
    /// emitted from California" scenario.
    pub fn isp_backbone() -> Topology {
        const N: usize = 25;
        // 0 SF, 1 LA, 2 Sacramento, 3 San Diego, 4 Seattle, 5 Portland,
        // 6 Salt Lake City, 7 Phoenix, 8 Denver, 9 Dallas, 10 Houston,
        // 11 San Antonio, 12 Kansas City, 13 St. Louis, 14 Chicago,
        // 15 Nashville, 16 Atlanta, 17 Orlando, 18 Miami, 19 Charlotte,
        // 20 Washington DC, 21 Philadelphia, 22 New York, 23 Boston,
        // 24 Cleveland.
        let links: &[(usize, usize)] = &[
            (0, 2),
            (0, 1),
            (0, 4),
            (0, 6),
            (1, 3),
            (1, 7),
            (1, 9),
            (2, 4),
            (2, 6),
            (3, 7),
            (4, 5),
            (5, 6),
            (6, 8),
            (7, 9),
            (8, 12),
            (8, 9),
            (8, 14),
            (9, 10),
            (9, 12),
            (10, 11),
            (10, 16),
            (11, 7),
            (12, 13),
            (13, 14),
            (13, 15),
            (14, 24),
            (14, 22),
            (15, 16),
            (16, 17),
            (16, 19),
            (17, 18),
            (19, 20),
            (20, 21),
            (21, 22),
            (22, 23),
            (24, 20),
            (24, 22),
            (13, 16),
            (12, 15),
        ];
        let mut t = Topology::new("isp-na-backbone", N);
        for &(a, b) in links {
            t.add_link(a, b);
        }
        for ca in [0, 1, 2, 3] {
            t.mark_edge(ca);
        }
        t
    }
}

impl Topology {
    /// The classic Abilene research backbone (11 PoPs) — a second,
    /// smaller ISP topology for placement experiments.
    /// Seattle=0, Sunnyvale=1, Los Angeles=2, Denver=3, Kansas City=4,
    /// Houston=5, Chicago=6, Indianapolis=7, Atlanta=8, Washington=9,
    /// New York=10. West-coast PoPs are edge switches.
    pub fn abilene() -> Topology {
        let links: &[(usize, usize)] = &[
            (0, 1),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 5),
            (3, 4),
            (4, 5),
            (4, 7),
            (5, 8),
            (6, 7),
            (6, 10),
            (7, 8),
            (8, 9),
            (9, 10),
        ];
        let mut t = Topology::new("abilene", 11);
        for &(a, b) in links {
            t.add_link(a, b);
        }
        for west in [0, 1, 2] {
            t.mark_edge(west);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_shape() {
        let t = Topology::chain(3);
        assert_eq!(t.len(), 3);
        assert_eq!(t.link_count(), 2);
        assert_eq!(t.edge_switches(), &[0, 2]);
        assert_eq!(t.neighbors(1).collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn single_switch_chain() {
        let t = Topology::chain(1);
        assert_eq!(t.len(), 1);
        assert_eq!(t.edge_switches(), &[0]);
    }

    #[test]
    fn fat_tree_counts() {
        // k=4: 4 cores, 4 pods × (2 agg + 2 edge) = 20 switches; 8 edges.
        let t = Topology::fat_tree(4);
        assert_eq!(t.len(), 4 + 16);
        assert_eq!(t.edge_switches().len(), 8);
        // Links: core-agg = 4 pods × 2 agg × 2 cores = 16; agg-edge = 4
        // pods × 2 × 2 = 16.
        assert_eq!(t.link_count(), 32);
    }

    #[test]
    fn fat_tree_scales() {
        let t8 = Topology::fat_tree(8);
        assert_eq!(t8.len(), 16 + 64);
        assert_eq!(t8.edge_switches().len(), 32);
        let t16 = Topology::fat_tree(16);
        assert_eq!(t16.len(), 64 + 256, "k=16 fat-tree has 320 switches");
    }

    #[test]
    fn fat_tree_edges_touch_aggs_only() {
        let t = Topology::fat_tree(4);
        for &e in t.edge_switches() {
            for n in t.neighbors(e) {
                // Edge switches only connect to aggregation switches
                // (cores are 0..4).
                assert!(n >= 4, "edge {e} wired to core {n}");
            }
        }
    }

    #[test]
    fn isp_backbone_is_connected() {
        let t = Topology::isp_backbone();
        assert_eq!(t.len(), 25);
        // BFS from node 0 must reach everyone.
        let mut seen = vec![false; t.len()];
        let mut queue = vec![0usize];
        seen[0] = true;
        while let Some(s) = queue.pop() {
            for n in t.neighbors(s) {
                if !seen[n] {
                    seen[n] = true;
                    queue.push(n);
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "backbone not connected");
        assert_eq!(t.edge_switches(), &[0, 1, 2, 3]);
    }

    #[test]
    fn abilene_is_connected_and_small() {
        let t = Topology::abilene();
        assert_eq!(t.len(), 11);
        assert_eq!(t.link_count(), 14);
        let mut seen = vec![false; t.len()];
        let mut queue = vec![0usize];
        seen[0] = true;
        while let Some(s) = queue.pop() {
            for n in t.neighbors(s) {
                if !seen[n] {
                    seen[n] = true;
                    queue.push(n);
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(t.edge_switches(), &[0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loops_rejected() {
        Topology::new("t", 2).add_link(1, 1);
    }
}
