//! Shortest-path routing with link failures and deterministic ECMP.
//!
//! The router computes hop-by-hop paths over the live topology (failed
//! links excluded). Ties between equal-cost next hops break by hashing the
//! flow key — deterministic per flow, spreading flows like hardware ECMP.

use crate::parallel::WorkerPool;
use crate::topology::{NodeId, Topology};
use newton_packet::FlowKey;
use newton_sketch::hash::mix64;
use std::cell::UnsafeCell;
use std::collections::{HashSet, VecDeque};
use std::fmt;

/// One route shard's reusable working set: concatenated path nodes, the
/// shard-local `(start, end)` range of each path within them, and the BFS
/// scratch of the worker that fills it.
#[derive(Debug, Default)]
struct RouteShard {
    nodes: Vec<NodeId>,
    ranges: Vec<(u32, u32)>,
    scratch: RouteScratch,
    path: Vec<NodeId>,
}

/// A per-worker shard slot: worker `w` is the only task touching slot `w`
/// while a routing job runs; the coordinator touches slots only between
/// jobs, through `&mut` (`get_mut`).
#[derive(Default)]
struct ShardSlot(UnsafeCell<RouteShard>);

// SAFETY: see the type docs — slots are indexed by worker, never shared.
unsafe impl Sync for ShardSlot {}

/// Reusable per-worker buffers of [`Router::route_batch_into`], owned next
/// to the [`WorkerPool`] so batch routing allocates nothing in steady
/// state.
#[derive(Default)]
pub struct ShardScratch {
    shards: Vec<ShardSlot>,
}

impl fmt::Debug for ShardScratch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardScratch").field("shards", &self.shards.len()).finish()
    }
}

/// What ECMP hashes to break ties between equal-cost next hops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EcmpMode {
    /// Hash the full 5-tuple (the common data-center default).
    #[default]
    FiveTuple,
    /// Hash only the (src ip, dst ip) pair — all traffic between two hosts
    /// shares a path, which keeps cross-switch query state together.
    PairHash,
}

/// Reusable buffers for [`Router::path_into`]: BFS distances, the BFS
/// queue and the ECMP candidate list survive across calls so steady-state
/// routing performs no heap allocation.
#[derive(Debug, Clone, Default)]
pub struct RouteScratch {
    dist: Vec<usize>,
    queue: VecDeque<NodeId>,
    candidates: Vec<NodeId>,
}

/// A batch of precomputed routes, stored flat: one shared node pool plus a
/// `(lo, hi)` range per packet. An empty range means the packet was
/// unroutable. Built by [`Router::route_batch_into`]; the flat layout lets
/// the buffer be reused across epochs and shared read-only by executor
/// threads.
#[derive(Debug, Clone, Default)]
pub struct PathTable {
    nodes: Vec<NodeId>,
    ranges: Vec<(u32, u32)>,
}

impl PathTable {
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.ranges.clear();
    }

    /// Number of routed entries (one per batch packet).
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Packet `i`'s hop sequence; empty if unroutable.
    pub fn path(&self, i: usize) -> &[NodeId] {
        let (lo, hi) = self.ranges[i];
        &self.nodes[lo as usize..hi as usize]
    }
}

/// Routing over a topology with a mutable failure set (links and whole
/// switches).
#[derive(Debug, Clone)]
pub struct Router {
    topo: Topology,
    failed: HashSet<(NodeId, NodeId)>,
    alive: Vec<bool>,
    ecmp: EcmpMode,
}

impl Router {
    pub fn new(topo: Topology) -> Self {
        let alive = vec![true; topo.len()];
        Router { topo, failed: HashSet::new(), alive, ecmp: EcmpMode::default() }
    }

    /// Select the ECMP tie-break mode.
    pub fn set_ecmp_mode(&mut self, mode: EcmpMode) {
        self.ecmp = mode;
    }

    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    fn canon(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Fail a link (both directions).
    pub fn fail_link(&mut self, a: NodeId, b: NodeId) {
        self.failed.insert(Self::canon(a, b));
    }

    /// Restore a failed link.
    pub fn restore_link(&mut self, a: NodeId, b: NodeId) {
        self.failed.remove(&Self::canon(a, b));
    }

    /// Whether the link is currently up. A link with a dead endpoint is
    /// down regardless of its own state.
    pub fn link_up(&self, a: NodeId, b: NodeId) -> bool {
        self.alive[a] && self.alive[b] && !self.failed.contains(&Self::canon(a, b))
    }

    /// Fail a whole switch: every incident link goes dark and the node is
    /// excluded from all paths until restored.
    pub fn fail_switch(&mut self, s: NodeId) {
        self.alive[s] = false;
    }

    /// Bring a failed switch back. Its links recover too, unless they were
    /// failed independently via [`fail_link`](Self::fail_link).
    pub fn restore_switch(&mut self, s: NodeId) {
        self.alive[s] = true;
    }

    /// Whether the switch is currently up.
    pub fn switch_up(&self, s: NodeId) -> bool {
        self.alive[s]
    }

    /// Per-switch liveness, indexed by `NodeId` — shared read-only with
    /// the batch executors so dead switches are skipped identically on
    /// every path.
    pub fn live_switches(&self) -> &[bool] {
        &self.alive
    }

    /// The healthy subgraph as a [`Topology`]: live switches, live links,
    /// and only the live subset of the edge switches. This is what
    /// Algorithm 2 must re-place over after a failure.
    pub fn live_topology(&self) -> Topology {
        let mut live = Topology::new(format!("{}-live", self.topo.name()), self.topo.len());
        for a in 0..self.topo.len() {
            for b in self.topo.neighbors(a) {
                if a < b && self.link_up(a, b) {
                    live.add_link(a, b);
                }
            }
        }
        for &e in self.topo.edge_switches() {
            if self.alive[e] {
                live.mark_edge(e);
            }
        }
        live
    }

    /// Live neighbors of a switch.
    fn live_neighbors(&self, s: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.topo.neighbors(s).filter(move |&n| self.link_up(s, n))
    }

    /// Shortest path from `src` to `dst` over live links, ECMP-tie-broken
    /// by `flow`. Returns the node sequence including both endpoints, or
    /// `None` if disconnected.
    pub fn path(&self, src: NodeId, dst: NodeId, flow: &FlowKey) -> Option<Vec<NodeId>> {
        let mut scratch = RouteScratch::default();
        let mut out = Vec::new();
        self.path_into(src, dst, flow, &mut scratch, &mut out).then_some(out)
    }

    /// No-alloc [`path`](Self::path): writes the node sequence into `out`
    /// (cleared first) using `scratch`'s buffers, returning `false` if
    /// disconnected. Bit-identical routing: same BFS discipline, same
    /// candidate order, same ECMP tie-break.
    pub fn path_into(
        &self,
        src: NodeId,
        dst: NodeId,
        flow: &FlowKey,
        scratch: &mut RouteScratch,
        out: &mut Vec<NodeId>,
    ) -> bool {
        out.clear();
        if !self.alive[src] || !self.alive[dst] {
            return false;
        }
        if src == dst {
            out.push(src);
            return true;
        }
        // BFS from dst: dist[n] = hops to dst.
        let RouteScratch { dist, queue, candidates } = scratch;
        dist.clear();
        dist.resize(self.topo.len(), usize::MAX);
        dist[dst] = 0;
        queue.clear();
        queue.push_back(dst);
        while let Some(s) = queue.pop_front() {
            for nb in self.live_neighbors(s) {
                if dist[nb] == usize::MAX {
                    dist[nb] = dist[s] + 1;
                    queue.push_back(nb);
                }
            }
        }
        if dist[src] == usize::MAX {
            return false;
        }
        // Walk downhill, hashing per the ECMP mode for ties.
        let b = flow.to_bytes();
        let lo = u64::from_le_bytes(b[..8].try_into().expect("8 bytes"));
        let fk = match self.ecmp {
            EcmpMode::FiveTuple => {
                let hi = u64::from_le_bytes([b[8], b[9], b[10], b[11], b[12], 0, 0, 0]);
                mix64(lo) ^ mix64(hi.wrapping_mul(0x9E37_79B9))
            }
            EcmpMode::PairHash => mix64(lo),
        };
        out.push(src);
        let mut cur = src;
        while cur != dst {
            let next_dist = dist[cur] - 1;
            candidates.clear();
            candidates.extend(self.live_neighbors(cur).filter(|&nb| dist[nb] == next_dist));
            let pick = candidates[(mix64(fk ^ (cur as u64).wrapping_mul(0xABCD))
                % candidates.len() as u64) as usize];
            out.push(pick);
            cur = pick;
        }
        true
    }

    /// Precompute the routes of a whole batch into `table` (cleared
    /// first). `item(i)` yields the `(flow, src, dst)` of packet `i`.
    /// Routing is pure (`path_into` takes `&self`), so chunks are computed
    /// by `threads` workers of the persistent `pool` (the caller's thread
    /// included) and merged in chunk order — the table is bit-identical to
    /// sequential routing at any thread count, and the `shards` buffers
    /// are reused so steady-state batch routing neither spawns threads nor
    /// allocates.
    pub fn route_batch_into(
        &self,
        count: usize,
        item: impl Fn(usize) -> (FlowKey, NodeId, NodeId) + Sync,
        threads: usize,
        table: &mut PathTable,
        shards: &mut ShardScratch,
        pool: &mut WorkerPool,
    ) {
        table.clear();
        if count == 0 {
            return;
        }
        let threads = threads.clamp(1, count);
        let chunk = count.div_ceil(threads);
        if shards.shards.len() < threads {
            shards.shards.resize_with(threads, ShardSlot::default);
        }
        for slot in shards.shards.iter_mut().take(threads) {
            let shard = slot.0.get_mut();
            shard.nodes.clear();
            shard.ranges.clear();
        }
        {
            let item = &item;
            let slots: &[ShardSlot] = &shards.shards;
            pool.run(threads, |w, _| {
                // SAFETY: worker `w` is the only task of this job touching
                // slot `w` (see ShardSlot); the coordinator regains `&mut`
                // access only after the job drains.
                let shard = unsafe { &mut *slots[w].0.get() };
                for i in w * chunk..((w + 1) * chunk).min(count) {
                    let (flow, src, dst) = item(i);
                    let start = shard.nodes.len() as u32;
                    if self.path_into(src, dst, &flow, &mut shard.scratch, &mut shard.path) {
                        shard.nodes.extend_from_slice(&shard.path);
                    }
                    shard.ranges.push((start, shard.nodes.len() as u32));
                }
            });
        }
        for slot in shards.shards.iter_mut().take(threads) {
            let shard = slot.0.get_mut();
            let base = table.nodes.len() as u32;
            table.ranges.extend(shard.ranges.iter().map(|&(lo, hi)| (lo + base, hi + base)));
            table.nodes.extend_from_slice(&shard.nodes);
        }
    }

    /// All switches on *any* live shortest path between two endpoints —
    /// what resilient placement must cover for this pair.
    pub fn shortest_path_dag_nodes(&self, src: NodeId, dst: NodeId) -> Vec<NodeId> {
        if !self.alive[src] || !self.alive[dst] {
            return Vec::new();
        }
        let n = self.topo.len();
        let bfs = |root: NodeId| {
            let mut d = vec![usize::MAX; n];
            d[root] = 0;
            let mut q = VecDeque::from([root]);
            while let Some(s) = q.pop_front() {
                for nb in self.live_neighbors(s) {
                    if d[nb] == usize::MAX {
                        d[nb] = d[s] + 1;
                        q.push_back(nb);
                    }
                }
            }
            d
        };
        let ds = bfs(src);
        let dd = bfs(dst);
        if ds[dst] == usize::MAX {
            return Vec::new();
        }
        let total = ds[dst];
        (0..n)
            .filter(|&v| ds[v] != usize::MAX && dd[v] != usize::MAX && ds[v] + dd[v] == total)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(seed: u16) -> FlowKey {
        FlowKey { src_ip: 1, dst_ip: 2, src_port: seed, dst_port: 80, protocol: 6 }
    }

    #[test]
    fn chain_path_is_the_chain() {
        let r = Router::new(Topology::chain(4));
        assert_eq!(r.path(0, 3, &flow(1)).unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(r.path(2, 2, &flow(1)).unwrap(), vec![2]);
    }

    #[test]
    fn failure_reroutes_or_disconnects() {
        let mut r = Router::new(Topology::chain(3));
        r.fail_link(0, 1);
        assert!(r.path(0, 2, &flow(1)).is_none(), "chain has no alternative path");
        r.restore_link(0, 1);
        assert!(r.path(0, 2, &flow(1)).is_some());
    }

    #[test]
    fn fat_tree_reroutes_around_failure() {
        let t = Topology::fat_tree(4);
        let (e1, e2) = (t.edge_switches()[0], t.edge_switches()[7]);
        let mut r = Router::new(t);
        let p = r.path(e1, e2, &flow(9)).unwrap();
        assert_eq!(p.len(), 5, "inter-pod path is edge-agg-core-agg-edge");
        // Fail the first hop used; an alternative must exist.
        r.fail_link(p[0], p[1]);
        let p2 = r.path(e1, e2, &flow(9)).unwrap();
        assert_ne!(p, p2);
        assert_eq!(p2.len(), 5, "fat-tree has equal-cost alternatives");
    }

    #[test]
    fn ecmp_spreads_flows() {
        let t = Topology::fat_tree(4);
        let (e1, e2) = (t.edge_switches()[0], t.edge_switches()[7]);
        let r = Router::new(t);
        let firsts: std::collections::HashSet<NodeId> =
            (0..64).map(|s| r.path(e1, e2, &flow(s)).unwrap()[1]).collect();
        assert!(firsts.len() > 1, "ECMP should use more than one next hop");
    }

    #[test]
    fn ecmp_is_deterministic_per_flow() {
        let t = Topology::fat_tree(4);
        let (e1, e2) = (t.edge_switches()[0], t.edge_switches()[7]);
        let r = Router::new(t);
        assert_eq!(r.path(e1, e2, &flow(5)), r.path(e1, e2, &flow(5)));
    }

    #[test]
    fn route_batch_matches_per_packet_routing_at_any_thread_count() {
        let t = Topology::fat_tree(4);
        let edges = t.edge_switches().to_vec();
        let mut r = Router::new(t);
        // An isolated node makes some pairs unroutable.
        let cut = edges[2];
        let nbrs: Vec<NodeId> = r.topology().neighbors(cut).collect();
        for nb in nbrs {
            r.fail_link(cut, nb);
        }
        let items: Vec<(FlowKey, NodeId, NodeId)> = (0..97u16)
            .map(|i| {
                (flow(i), edges[i as usize % edges.len()], edges[(i as usize + 3) % edges.len()])
            })
            .collect();
        let mut shards = ShardScratch::default();
        let mut pool = WorkerPool::new();
        let mut expect = PathTable::default();
        r.route_batch_into(items.len(), |i| items[i], 1, &mut expect, &mut shards, &mut pool);
        for (i, &(f, src, dst)) in items.iter().enumerate() {
            match r.path(src, dst, &f) {
                Some(p) => assert_eq!(expect.path(i), &p[..]),
                None => assert!(expect.path(i).is_empty()),
            }
        }
        for threads in [2, 3, 8] {
            let mut got = PathTable::default();
            r.route_batch_into(
                items.len(),
                |i| items[i],
                threads,
                &mut got,
                &mut shards,
                &mut pool,
            );
            assert_eq!(got.len(), expect.len(), "threads={threads}");
            for i in 0..items.len() {
                assert_eq!(got.path(i), expect.path(i), "packet {i}, threads={threads}");
            }
        }
    }

    #[test]
    fn dead_switch_is_excluded_from_paths() {
        let t = Topology::fat_tree(4);
        let (e1, e2) = (t.edge_switches()[0], t.edge_switches()[7]);
        let mut r = Router::new(t);
        let p = r.path(e1, e2, &flow(9)).unwrap();
        // Kill the first transit switch; the flow must route around it.
        r.fail_switch(p[1]);
        assert!(!r.switch_up(p[1]));
        let p2 = r.path(e1, e2, &flow(9)).unwrap();
        assert!(!p2.contains(&p[1]), "rerouted path still visits dead switch");
        // A dead endpoint makes the pair unroutable, even src == dst.
        r.fail_switch(e1);
        assert!(r.path(e1, e2, &flow(9)).is_none());
        assert!(r.path(e1, e1, &flow(9)).is_none());
        assert!(r.shortest_path_dag_nodes(e1, e2).is_empty());
        r.restore_switch(e1);
        r.restore_switch(p[1]);
        assert_eq!(r.path(e1, e2, &flow(9)).unwrap(), p, "restore heals routing exactly");
    }

    #[test]
    fn live_topology_drops_dead_switches_and_their_links() {
        let mut r = Router::new(Topology::chain(4));
        r.fail_switch(3);
        r.fail_link(0, 1);
        let live = r.live_topology();
        assert_eq!(live.len(), 4, "node ids keep their meaning");
        assert_eq!(live.link_count(), 1, "only 1-2 survives");
        assert_eq!(live.edge_switches(), &[0], "dead edge switch unmarked");
        assert!(live.neighbors(3).next().is_none());
    }

    #[test]
    fn dag_nodes_cover_all_equal_cost_paths() {
        let t = Topology::fat_tree(4);
        let (e1, e2) = (t.edge_switches()[0], t.edge_switches()[7]);
        let r = Router::new(t);
        let dag = r.shortest_path_dag_nodes(e1, e2);
        // Inter-pod: 2 endpoints + 2 aggs × both pods + 4 cores... at
        // least every node of every flow's path is covered.
        for s in 0..64 {
            for node in r.path(e1, e2, &flow(s)).unwrap() {
                assert!(dag.contains(&node), "path node {node} missing from DAG");
            }
        }
    }
}
