//! Flow identification.
//!
//! `newton_init` (§4.1) dispatches traffic to queries by ternary-matching the
//! 5-tuple plus TCP flags. [`FlowKey`] is the canonical 5-tuple; it is also
//! the aggregation key the baseline systems (TurboFlow, \*Flow, FlowRadar)
//! keep state per.

use std::fmt;

/// The classic 5-tuple identifying a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowKey {
    pub src_ip: u32,
    pub dst_ip: u32,
    pub src_port: u16,
    pub dst_port: u16,
    pub protocol: u8,
}

impl FlowKey {
    /// The reverse-direction key (src/dst swapped), e.g. to pair a TCP SYN
    /// with its SYN-ACK.
    pub fn reversed(self) -> FlowKey {
        FlowKey {
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            src_port: self.dst_port,
            dst_port: self.src_port,
            protocol: self.protocol,
        }
    }

    /// A direction-agnostic canonical form: the lexicographically smaller of
    /// `self` and `self.reversed()`. Both directions of a connection map to
    /// the same canonical key.
    pub fn canonical(self) -> FlowKey {
        let rev = self.reversed();
        if (self.src_ip, self.src_port) <= (rev.src_ip, rev.src_port) {
            self
        } else {
            rev
        }
    }

    /// Pack the key into a 13-byte array (used by hashing and wire export).
    pub fn to_bytes(self) -> [u8; 13] {
        let mut b = [0u8; 13];
        b[0..4].copy_from_slice(&self.src_ip.to_be_bytes());
        b[4..8].copy_from_slice(&self.dst_ip.to_be_bytes());
        b[8..10].copy_from_slice(&self.src_port.to_be_bytes());
        b[10..12].copy_from_slice(&self.dst_port.to_be_bytes());
        b[12] = self.protocol;
        b
    }

    /// Inverse of [`FlowKey::to_bytes`].
    pub fn from_bytes(b: &[u8; 13]) -> FlowKey {
        FlowKey {
            src_ip: u32::from_be_bytes([b[0], b[1], b[2], b[3]]),
            dst_ip: u32::from_be_bytes([b[4], b[5], b[6], b[7]]),
            src_port: u16::from_be_bytes([b[8], b[9]]),
            dst_port: u16::from_be_bytes([b[10], b[11]]),
            protocol: b[12],
        }
    }
}

/// Format an IPv4 address stored as a `u32` in dotted-quad notation.
pub fn fmt_ipv4(ip: u32) -> String {
    format!("{}.{}.{}.{}", ip >> 24, (ip >> 16) & 0xff, (ip >> 8) & 0xff, ip & 0xff)
}

impl fmt::Display for FlowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} -> {}:{} proto={}",
            fmt_ipv4(self.src_ip),
            self.src_port,
            fmt_ipv4(self.dst_ip),
            self.dst_port,
            self.protocol
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> FlowKey {
        FlowKey { src_ip: 0x0A000001, dst_ip: 0x0A000002, src_port: 99, dst_port: 80, protocol: 6 }
    }

    #[test]
    fn reverse_is_involutive() {
        assert_eq!(key().reversed().reversed(), key());
    }

    #[test]
    fn canonical_is_direction_agnostic() {
        assert_eq!(key().canonical(), key().reversed().canonical());
    }

    #[test]
    fn bytes_roundtrip() {
        let k = key();
        assert_eq!(FlowKey::from_bytes(&k.to_bytes()), k);
    }

    #[test]
    fn ipv4_formatting() {
        assert_eq!(fmt_ipv4(0xC0A80101), "192.168.1.1");
        assert_eq!(fmt_ipv4(0), "0.0.0.0");
    }

    #[test]
    fn display_contains_ports() {
        let s = format!("{}", key());
        assert!(s.contains(":99"));
        assert!(s.contains(":80"));
    }
}
