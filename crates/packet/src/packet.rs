//! The parsed packet representation used throughout the simulator.
//!
//! A [`Packet`] is what the simulated switch pipeline sees after its parser
//! has run: the header fields Newton queries can select, plus trace metadata
//! (timestamp, wire length) used by workload generation and overhead
//! accounting. The raw wire format lives in [`crate::wire`].

use crate::flow::FlowKey;
use std::fmt;
use std::ops::BitOr;

/// Transport protocol carried by an IPv4 packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    Tcp,
    Udp,
    Icmp,
    /// Any other IPv4 protocol, identified by its protocol number.
    Other(u8),
}

impl Protocol {
    /// IANA protocol number.
    pub const fn number(self) -> u8 {
        match self {
            Protocol::Icmp => 1,
            Protocol::Tcp => 6,
            Protocol::Udp => 17,
            Protocol::Other(n) => n,
        }
    }

    /// Map a protocol number back to a `Protocol`.
    pub const fn from_number(n: u8) -> Self {
        match n {
            1 => Protocol::Icmp,
            6 => Protocol::Tcp,
            17 => Protocol::Udp,
            other => Protocol::Other(other),
        }
    }
}

/// TCP control flags, stored as the low 8 bits of the flags byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TcpFlags(u8);

impl TcpFlags {
    pub const NONE: TcpFlags = TcpFlags(0);
    pub const FIN: TcpFlags = TcpFlags(0x01);
    pub const SYN: TcpFlags = TcpFlags(0x02);
    pub const RST: TcpFlags = TcpFlags(0x04);
    pub const PSH: TcpFlags = TcpFlags(0x08);
    pub const ACK: TcpFlags = TcpFlags(0x10);
    pub const URG: TcpFlags = TcpFlags(0x20);

    /// Construct from a raw flags byte.
    pub const fn from_bits(bits: u8) -> Self {
        TcpFlags(bits)
    }

    /// The raw flags byte.
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// Whether every flag in `other` is set in `self`.
    pub const fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// A pure SYN (connection-initiating) packet: SYN set, ACK clear.
    pub const fn is_pure_syn(self) -> bool {
        self.0 & Self::SYN.0 != 0 && self.0 & Self::ACK.0 == 0
    }
}

impl BitOr for TcpFlags {
    type Output = TcpFlags;
    fn bitor(self, rhs: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | rhs.0)
    }
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const NAMES: [(u8, char); 6] =
            [(0x01, 'F'), (0x02, 'S'), (0x04, 'R'), (0x08, 'P'), (0x10, 'A'), (0x20, 'U')];
        let mut any = false;
        for (bit, c) in NAMES {
            if self.0 & bit != 0 {
                write!(f, "{c}")?;
                any = true;
            }
        }
        if !any {
            f.write_str("-")?;
        }
        Ok(())
    }
}

/// A parsed packet flowing through the simulated network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// IPv4 source address.
    pub src_ip: u32,
    /// IPv4 destination address.
    pub dst_ip: u32,
    /// Transport source port (0 when the protocol has no ports).
    pub src_port: u16,
    /// Transport destination port (0 when the protocol has no ports).
    pub dst_port: u16,
    /// Transport protocol.
    pub protocol: Protocol,
    /// TCP control flags ([`TcpFlags::NONE`] for non-TCP packets).
    pub tcp_flags: TcpFlags,
    /// Total wire length in bytes, including all headers.
    pub wire_len: u16,
    /// IPv4 TTL.
    pub ttl: u8,
    /// Trace timestamp in nanoseconds since trace start.
    pub ts_ns: u64,
}

impl Packet {
    /// The 5-tuple flow key of this packet.
    pub fn flow_key(&self) -> FlowKey {
        FlowKey {
            src_ip: self.src_ip,
            dst_ip: self.dst_ip,
            src_port: self.src_port,
            dst_port: self.dst_port,
            protocol: self.protocol.number(),
        }
    }

    /// Whether this packet opens a TCP connection (pure SYN).
    pub fn is_tcp_syn(&self) -> bool {
        self.protocol == Protocol::Tcp && self.tcp_flags.is_pure_syn()
    }
}

/// Builder for [`Packet`], with sensible defaults for tests and examples.
///
/// Defaults: TCP, `10.0.0.1:1000 -> 10.0.0.2:80`, no flags, 64-byte frame,
/// TTL 64, timestamp 0.
#[derive(Debug, Clone)]
pub struct PacketBuilder {
    pkt: Packet,
}

impl Default for PacketBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl PacketBuilder {
    pub fn new() -> Self {
        PacketBuilder {
            pkt: Packet {
                src_ip: 0x0A000001,
                dst_ip: 0x0A000002,
                src_port: 1000,
                dst_port: 80,
                protocol: Protocol::Tcp,
                tcp_flags: TcpFlags::NONE,
                wire_len: 64,
                ttl: 64,
                ts_ns: 0,
            },
        }
    }

    pub fn src_ip(mut self, v: u32) -> Self {
        self.pkt.src_ip = v;
        self
    }
    pub fn dst_ip(mut self, v: u32) -> Self {
        self.pkt.dst_ip = v;
        self
    }
    pub fn src_port(mut self, v: u16) -> Self {
        self.pkt.src_port = v;
        self
    }
    pub fn dst_port(mut self, v: u16) -> Self {
        self.pkt.dst_port = v;
        self
    }
    pub fn protocol(mut self, v: Protocol) -> Self {
        self.pkt.protocol = v;
        if v != Protocol::Tcp {
            self.pkt.tcp_flags = TcpFlags::NONE;
        }
        self
    }
    pub fn tcp_flags(mut self, v: TcpFlags) -> Self {
        self.pkt.tcp_flags = v;
        self.pkt.protocol = Protocol::Tcp;
        self
    }
    pub fn wire_len(mut self, v: u16) -> Self {
        self.pkt.wire_len = v;
        self
    }
    pub fn ttl(mut self, v: u8) -> Self {
        self.pkt.ttl = v;
        self
    }
    pub fn ts_ns(mut self, v: u64) -> Self {
        self.pkt.ts_ns = v;
        self
    }

    pub fn build(self) -> Packet {
        self.pkt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_numbers_roundtrip() {
        for p in [Protocol::Tcp, Protocol::Udp, Protocol::Icmp, Protocol::Other(89)] {
            assert_eq!(Protocol::from_number(p.number()), p);
        }
    }

    #[test]
    fn pure_syn_detection() {
        assert!(TcpFlags::SYN.is_pure_syn());
        assert!(!(TcpFlags::SYN | TcpFlags::ACK).is_pure_syn());
        assert!(!TcpFlags::ACK.is_pure_syn());
        assert!(!TcpFlags::NONE.is_pure_syn());
    }

    #[test]
    fn builder_clears_flags_for_non_tcp() {
        let p = PacketBuilder::new().tcp_flags(TcpFlags::SYN).protocol(Protocol::Udp).build();
        assert_eq!(p.tcp_flags, TcpFlags::NONE);
        assert!(!p.is_tcp_syn());
    }

    #[test]
    fn builder_sets_tcp_when_flags_given() {
        let p = PacketBuilder::new().protocol(Protocol::Udp).tcp_flags(TcpFlags::SYN).build();
        assert_eq!(p.protocol, Protocol::Tcp);
        assert!(p.is_tcp_syn());
    }

    #[test]
    fn flow_key_matches_fields() {
        let p = PacketBuilder::new().src_port(42).dst_port(4242).build();
        let k = p.flow_key();
        assert_eq!(k.src_port, 42);
        assert_eq!(k.dst_port, 4242);
        assert_eq!(k.protocol, 6);
    }

    #[test]
    fn flags_display() {
        assert_eq!(format!("{}", TcpFlags::SYN | TcpFlags::ACK), "SA");
        assert_eq!(format!("{}", TcpFlags::NONE), "-");
    }
}
