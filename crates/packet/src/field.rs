//! The global header-field set.
//!
//! Newton's key-selection module (𝕂) takes "a list of global fields as
//! input" and conceals unneeded fields with a bit-mask (§4.1). We model the
//! global field set as a fixed-width bit vector ([`FieldVector`]) formed by
//! concatenating the fields below in a fixed order. A 𝕂 rule is then just a
//! mask over that vector — exactly the `&` action the paper describes — and
//! flexible logic such as "take the /24 prefix of the source address" is a
//! mask too.

use crate::packet::Packet;
use std::fmt;

/// One field from the global header-field set available to queries.
///
/// The order of the variants defines the bit layout of [`FieldVector`]:
/// `SrcIp` occupies the most-significant bits, `TcpFlags` the least.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Field {
    /// IPv4 source address (32 bits).
    SrcIp,
    /// IPv4 destination address (32 bits).
    DstIp,
    /// Transport source port (16 bits); 0 for non-TCP/UDP packets.
    SrcPort,
    /// Transport destination port (16 bits); 0 for non-TCP/UDP packets.
    DstPort,
    /// Total packet wire length in bytes (16 bits); feeds byte-volume
    /// reduces such as the Slowloris query's traffic sum.
    PktLen,
    /// IPv4 protocol number (8 bits).
    Proto,
    /// TCP control flags (8 bits); 0 for non-TCP packets.
    TcpFlags,
}

/// All global fields in bit-layout order.
pub const GLOBAL_FIELDS: [Field; 7] = [
    Field::SrcIp,
    Field::DstIp,
    Field::SrcPort,
    Field::DstPort,
    Field::PktLen,
    Field::Proto,
    Field::TcpFlags,
];

/// Total width of the global field vector in bits.
pub const GLOBAL_FIELD_BITS: u32 = 32 + 32 + 16 + 16 + 16 + 8 + 8;

impl Field {
    /// Width of this field in bits.
    pub const fn width(self) -> u32 {
        match self {
            Field::SrcIp | Field::DstIp => 32,
            Field::SrcPort | Field::DstPort | Field::PktLen => 16,
            Field::Proto | Field::TcpFlags => 8,
        }
    }

    /// Offset of this field's least-significant bit within the global
    /// field vector.
    #[inline]
    pub const fn shift(self) -> u32 {
        match self {
            Field::SrcIp => 96,
            Field::DstIp => 64,
            Field::SrcPort => 48,
            Field::DstPort => 32,
            Field::PktLen => 16,
            Field::Proto => 8,
            Field::TcpFlags => 0,
        }
    }

    /// A mask over the global field vector selecting this entire field.
    pub const fn mask(self) -> u128 {
        ((1u128 << self.width()) - 1) << self.shift()
    }

    /// A mask selecting only the top `prefix` bits of this field
    /// (e.g. `Field::SrcIp.prefix_mask(24)` keeps the /24 prefix).
    ///
    /// `prefix` is clamped to the field width.
    pub const fn prefix_mask(self, prefix: u32) -> u128 {
        let p = if prefix > self.width() { self.width() } else { prefix };
        if p == 0 {
            return 0;
        }
        let keep = ((1u128 << p) - 1) << (self.width() - p);
        keep << self.shift()
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Field::SrcIp => "sip",
            Field::DstIp => "dip",
            Field::SrcPort => "sport",
            Field::DstPort => "dport",
            Field::PktLen => "len",
            Field::Proto => "proto",
            Field::TcpFlags => "tcp.flags",
        };
        f.write_str(s)
    }
}

/// The packed 112-bit global field vector extracted from a packet.
///
/// This is the value that 𝕂 masks and that ℍ hashes. It fits in a `u128`,
/// which keeps the simulated PHV compact and hashing cheap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct FieldVector(pub u128);

impl FieldVector {
    /// Extract the full global field vector from a parsed packet.
    #[inline]
    pub fn from_packet(pkt: &Packet) -> Self {
        let mut v: u128 = 0;
        v |= (pkt.src_ip as u128) << Field::SrcIp.shift();
        v |= (pkt.dst_ip as u128) << Field::DstIp.shift();
        v |= (pkt.src_port as u128) << Field::SrcPort.shift();
        v |= (pkt.dst_port as u128) << Field::DstPort.shift();
        v |= (pkt.wire_len as u128) << Field::PktLen.shift();
        v |= (pkt.protocol.number() as u128) << Field::Proto.shift();
        v |= (pkt.tcp_flags.bits() as u128) << Field::TcpFlags.shift();
        FieldVector(v)
    }

    /// Apply a 𝕂-style bit mask, concealing all unselected bits.
    #[inline]
    pub const fn masked(self, mask: u128) -> Self {
        FieldVector(self.0 & mask)
    }

    /// Read one field's value out of the vector.
    #[inline]
    pub const fn get(self, field: Field) -> u64 {
        ((self.0 >> field.shift()) & ((1u128 << field.width()) - 1)) as u64
    }

    /// Build a mask that selects each field in `fields` entirely.
    pub fn mask_of(fields: &[Field]) -> u128 {
        fields.iter().fold(0u128, |m, f| m | f.mask())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{PacketBuilder, Protocol, TcpFlags};

    fn sample() -> Packet {
        PacketBuilder::new()
            .src_ip(0x0A000001)
            .dst_ip(0xC0A80102)
            .src_port(12345)
            .dst_port(53)
            .protocol(Protocol::Udp)
            .build()
    }

    #[test]
    fn field_widths_sum_to_vector_width() {
        let total: u32 = GLOBAL_FIELDS.iter().map(|f| f.width()).sum();
        assert_eq!(total, GLOBAL_FIELD_BITS);
    }

    #[test]
    fn field_layout_is_contiguous_and_disjoint() {
        let mut acc: u128 = 0;
        for f in GLOBAL_FIELDS {
            assert_eq!(acc & f.mask(), 0, "field {f} overlaps another field");
            acc |= f.mask();
        }
        // The seven fields tile the full 128-bit vector exactly.
        assert_eq!(GLOBAL_FIELD_BITS, 128);
        assert_eq!(acc, u128::MAX);
    }

    #[test]
    fn vector_roundtrips_fields() {
        let pkt = sample();
        let v = FieldVector::from_packet(&pkt);
        assert_eq!(v.get(Field::SrcIp), 0x0A000001);
        assert_eq!(v.get(Field::DstIp), 0xC0A80102);
        assert_eq!(v.get(Field::SrcPort), 12345);
        assert_eq!(v.get(Field::DstPort), 53);
        assert_eq!(v.get(Field::Proto), Protocol::Udp.number() as u64);
        assert_eq!(v.get(Field::TcpFlags), 0);
    }

    #[test]
    fn masking_conceals_unselected_fields() {
        let pkt = sample();
        let v = FieldVector::from_packet(&pkt);
        let m = FieldVector::mask_of(&[Field::DstPort]);
        let masked = v.masked(m);
        assert_eq!(masked.get(Field::DstPort), 53);
        assert_eq!(masked.get(Field::SrcIp), 0);
        assert_eq!(masked.get(Field::DstIp), 0);
    }

    #[test]
    fn prefix_mask_keeps_top_bits() {
        let pkt = sample();
        let v = FieldVector::from_packet(&pkt);
        let m = Field::DstIp.prefix_mask(24);
        assert_eq!(v.masked(m).get(Field::DstIp), 0xC0A80100);
        // /0 conceals everything; over-wide prefixes clamp.
        assert_eq!(Field::DstIp.prefix_mask(0), 0);
        assert_eq!(Field::DstIp.prefix_mask(99), Field::DstIp.mask());
    }

    #[test]
    fn tcp_flags_extracted_for_tcp() {
        let pkt = PacketBuilder::new()
            .protocol(Protocol::Tcp)
            .tcp_flags(TcpFlags::SYN | TcpFlags::ACK)
            .build();
        let v = FieldVector::from_packet(&pkt);
        assert_eq!(v.get(Field::TcpFlags), (TcpFlags::SYN | TcpFlags::ACK).bits() as u64);
    }
}
