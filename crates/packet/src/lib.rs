//! Packet substrate for the Newton reproduction.
//!
//! This crate provides the packet representation used by every other crate:
//!
//! * Wire-format headers ([`headers`]) — Ethernet II, IPv4, TCP, UDP — with
//!   parsing and serialization, the way a P4 parser would see them.
//! * The *global header-field set* ([`field`]) that Newton's key-selection
//!   module (𝕂) selects from via bit masks.
//! * A parsed, simulation-friendly [`Packet`] type ([`packet`]) that carries
//!   the field values plus trace metadata (timestamp, size).
//! * Flow identification ([`flow`]) — the 5-tuple `FlowKey` that
//!   `newton_init` matches on.
//! * The 12-byte **result snapshot (SP) header** ([`snapshot`]) used by
//!   cross-switch query execution (§5.1 of the paper).
//!
//! Everything here is deterministic and allocation-light: a [`Packet`] is a
//! small struct, and header encode/decode round-trips exactly.

pub mod field;
pub mod flow;
pub mod headers;
pub mod packet;
pub mod snapshot;
pub mod wire;

pub use field::{Field, FieldVector, GLOBAL_FIELDS, GLOBAL_FIELD_BITS};
pub use flow::FlowKey;
pub use headers::{EthernetHeader, Ipv4Header, TcpHeader, UdpHeader};
pub use packet::{Packet, PacketBuilder, Protocol, TcpFlags};
pub use snapshot::{SnapshotHeader, SP_HEADER_LEN};
