//! Wire-format header structs with exact encode/decode.
//!
//! These mirror what a P4 parser extracts. The simulator usually works with
//! the parsed [`crate::Packet`], but the wire layer ([`crate::wire`]) uses
//! these to prove that the result-snapshot header composes with real packet
//! formats, and trace tooling can emit byte-accurate frames.

/// Errors from header parsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// The buffer is shorter than the header needs.
    Truncated { needed: usize, got: usize },
    /// A version/length field is inconsistent.
    Malformed(&'static str),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Truncated { needed, got } => {
                write!(f, "truncated header: needed {needed} bytes, got {got}")
            }
            ParseError::Malformed(what) => write!(f, "malformed header: {what}"),
        }
    }
}

impl std::error::Error for ParseError {}

fn need(buf: &[u8], n: usize) -> Result<(), ParseError> {
    if buf.len() < n {
        Err(ParseError::Truncated { needed: n, got: buf.len() })
    } else {
        Ok(())
    }
}

/// Ethernet II header (14 bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EthernetHeader {
    pub dst_mac: [u8; 6],
    pub src_mac: [u8; 6],
    pub ethertype: u16,
}

/// EtherType for IPv4.
pub const ETHERTYPE_IPV4: u16 = 0x0800;
/// EtherType claimed by the Newton result-snapshot header
/// (IEEE 802 local-experimental range).
pub const ETHERTYPE_NEWTON_SP: u16 = 0x88B5;

impl EthernetHeader {
    pub const LEN: usize = 14;

    pub fn parse(buf: &[u8]) -> Result<Self, ParseError> {
        need(buf, Self::LEN)?;
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&buf[0..6]);
        src.copy_from_slice(&buf[6..12]);
        Ok(EthernetHeader {
            dst_mac: dst,
            src_mac: src,
            ethertype: u16::from_be_bytes([buf[12], buf[13]]),
        })
    }

    pub fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.dst_mac);
        out.extend_from_slice(&self.src_mac);
        out.extend_from_slice(&self.ethertype.to_be_bytes());
    }
}

/// IPv4 header (20 bytes, options unsupported — like the paper's pipeline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Header {
    pub total_len: u16,
    pub identification: u16,
    pub ttl: u8,
    pub protocol: u8,
    pub src: u32,
    pub dst: u32,
}

impl Ipv4Header {
    pub const LEN: usize = 20;

    /// RFC 1071 header checksum over the 20-byte header with the checksum
    /// field zeroed.
    pub fn checksum(&self) -> u16 {
        let mut bytes = Vec::with_capacity(Self::LEN);
        self.write_with_checksum(&mut bytes, 0);
        let mut sum: u32 = 0;
        for chunk in bytes.chunks(2) {
            sum += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
        }
        while sum > 0xFFFF {
            sum = (sum & 0xFFFF) + (sum >> 16);
        }
        !(sum as u16)
    }

    fn write_with_checksum(&self, out: &mut Vec<u8>, csum: u16) {
        out.push(0x45); // version 4, IHL 5
        out.push(0); // DSCP/ECN
        out.extend_from_slice(&self.total_len.to_be_bytes());
        out.extend_from_slice(&self.identification.to_be_bytes());
        out.extend_from_slice(&[0, 0]); // flags/fragment offset
        out.push(self.ttl);
        out.push(self.protocol);
        out.extend_from_slice(&csum.to_be_bytes());
        out.extend_from_slice(&self.src.to_be_bytes());
        out.extend_from_slice(&self.dst.to_be_bytes());
    }

    pub fn write(&self, out: &mut Vec<u8>) {
        let csum = self.checksum();
        self.write_with_checksum(out, csum);
    }

    pub fn parse(buf: &[u8]) -> Result<Self, ParseError> {
        need(buf, Self::LEN)?;
        if buf[0] >> 4 != 4 {
            return Err(ParseError::Malformed("IP version is not 4"));
        }
        if buf[0] & 0x0F != 5 {
            return Err(ParseError::Malformed("IPv4 options not supported"));
        }
        let hdr = Ipv4Header {
            total_len: u16::from_be_bytes([buf[2], buf[3]]),
            identification: u16::from_be_bytes([buf[4], buf[5]]),
            ttl: buf[8],
            protocol: buf[9],
            src: u32::from_be_bytes([buf[12], buf[13], buf[14], buf[15]]),
            dst: u32::from_be_bytes([buf[16], buf[17], buf[18], buf[19]]),
        };
        let stored = u16::from_be_bytes([buf[10], buf[11]]);
        if stored != hdr.checksum() {
            return Err(ParseError::Malformed("bad IPv4 checksum"));
        }
        Ok(hdr)
    }
}

/// TCP header (20 bytes, options unsupported).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpHeader {
    pub src_port: u16,
    pub dst_port: u16,
    pub seq: u32,
    pub ack: u32,
    pub flags: u8,
    pub window: u16,
}

impl TcpHeader {
    pub const LEN: usize = 20;

    pub fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&self.ack.to_be_bytes());
        out.push(5 << 4); // data offset 5 words
        out.push(self.flags);
        out.extend_from_slice(&self.window.to_be_bytes());
        out.extend_from_slice(&[0, 0, 0, 0]); // checksum + urgent (not modeled)
    }

    pub fn parse(buf: &[u8]) -> Result<Self, ParseError> {
        need(buf, Self::LEN)?;
        if buf[12] >> 4 != 5 {
            return Err(ParseError::Malformed("TCP options not supported"));
        }
        Ok(TcpHeader {
            src_port: u16::from_be_bytes([buf[0], buf[1]]),
            dst_port: u16::from_be_bytes([buf[2], buf[3]]),
            seq: u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
            ack: u32::from_be_bytes([buf[8], buf[9], buf[10], buf[11]]),
            flags: buf[13],
            window: u16::from_be_bytes([buf[14], buf[15]]),
        })
    }
}

/// UDP header (8 bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpHeader {
    pub src_port: u16,
    pub dst_port: u16,
    pub length: u16,
}

impl UdpHeader {
    pub const LEN: usize = 8;

    pub fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&self.length.to_be_bytes());
        out.extend_from_slice(&[0, 0]); // checksum (optional in IPv4)
    }

    pub fn parse(buf: &[u8]) -> Result<Self, ParseError> {
        need(buf, Self::LEN)?;
        Ok(UdpHeader {
            src_port: u16::from_be_bytes([buf[0], buf[1]]),
            dst_port: u16::from_be_bytes([buf[2], buf[3]]),
            length: u16::from_be_bytes([buf[4], buf[5]]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ethernet_roundtrip() {
        let h = EthernetHeader {
            dst_mac: [1, 2, 3, 4, 5, 6],
            src_mac: [7, 8, 9, 10, 11, 12],
            ethertype: ETHERTYPE_IPV4,
        };
        let mut buf = Vec::new();
        h.write(&mut buf);
        assert_eq!(buf.len(), EthernetHeader::LEN);
        assert_eq!(EthernetHeader::parse(&buf).unwrap(), h);
    }

    #[test]
    fn ipv4_roundtrip_and_checksum() {
        let h = Ipv4Header {
            total_len: 60,
            identification: 0xBEEF,
            ttl: 63,
            protocol: 6,
            src: 0x0A000001,
            dst: 0x0A000002,
        };
        let mut buf = Vec::new();
        h.write(&mut buf);
        assert_eq!(buf.len(), Ipv4Header::LEN);
        assert_eq!(Ipv4Header::parse(&buf).unwrap(), h);
        // Corrupt one byte: checksum must catch it.
        buf[15] ^= 0xFF;
        assert!(Ipv4Header::parse(&buf).is_err());
    }

    #[test]
    fn tcp_roundtrip() {
        let h =
            TcpHeader { src_port: 443, dst_port: 55000, seq: 7, ack: 9, flags: 0x12, window: 1024 };
        let mut buf = Vec::new();
        h.write(&mut buf);
        assert_eq!(buf.len(), TcpHeader::LEN);
        assert_eq!(TcpHeader::parse(&buf).unwrap(), h);
    }

    #[test]
    fn udp_roundtrip() {
        let h = UdpHeader { src_port: 53, dst_port: 3333, length: 30 };
        let mut buf = Vec::new();
        h.write(&mut buf);
        assert_eq!(buf.len(), UdpHeader::LEN);
        assert_eq!(UdpHeader::parse(&buf).unwrap(), h);
    }

    #[test]
    fn truncated_buffers_error() {
        assert!(matches!(
            EthernetHeader::parse(&[0u8; 5]),
            Err(ParseError::Truncated { needed: 14, got: 5 })
        ));
        assert!(Ipv4Header::parse(&[0u8; 19]).is_err());
        assert!(TcpHeader::parse(&[0u8; 19]).is_err());
        assert!(UdpHeader::parse(&[0u8; 7]).is_err());
    }
}
