//! Byte-accurate frame encode/decode, including the SP header.
//!
//! This module proves that the simulator's [`Packet`] + [`SnapshotHeader`]
//! compose with real wire formats: a frame can be emitted as bytes and
//! re-parsed losslessly, with the SP header inserted between Ethernet and
//! IPv4 exactly the way the paper's redesigned parser expects (a dedicated
//! EtherType, [`ETHERTYPE_NEWTON_SP`], announces the 12-byte header, whose
//! presence is transparent to IPv4 below it).

use crate::headers::{
    EthernetHeader, Ipv4Header, ParseError, TcpHeader, UdpHeader, ETHERTYPE_IPV4,
    ETHERTYPE_NEWTON_SP,
};
use crate::packet::{Packet, Protocol, TcpFlags};
use crate::snapshot::{SnapshotHeader, SP_HEADER_LEN};

/// A decoded frame: the parsed packet plus an optional in-flight snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    pub packet: Packet,
    pub snapshot: Option<SnapshotHeader>,
}

/// Errors from frame decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    Header(ParseError),
    Snapshot(crate::snapshot::SnapshotError),
    /// EtherType is neither IPv4 nor Newton-SP.
    UnsupportedEthertype(u16),
    /// The inner ethertype after an SP header must be IPv4.
    BadInnerProtocol,
}

impl From<ParseError> for FrameError {
    fn from(e: ParseError) -> Self {
        FrameError::Header(e)
    }
}

impl From<crate::snapshot::SnapshotError> for FrameError {
    fn from(e: crate::snapshot::SnapshotError) -> Self {
        FrameError::Snapshot(e)
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Header(e) => write!(f, "header: {e}"),
            FrameError::Snapshot(e) => write!(f, "snapshot: {e}"),
            FrameError::UnsupportedEthertype(t) => write!(f, "unsupported ethertype {t:#06x}"),
            FrameError::BadInnerProtocol => f.write_str("SP header not followed by IPv4"),
        }
    }
}

impl std::error::Error for FrameError {}

const DUMMY_MAC_SRC: [u8; 6] = [0x02, 0, 0, 0, 0, 0x01];
const DUMMY_MAC_DST: [u8; 6] = [0x02, 0, 0, 0, 0, 0x02];

/// Encode a packet (and optional snapshot) to wire bytes.
///
/// The payload is zero-filled so the frame's on-wire length matches
/// `packet.wire_len` (plus [`SP_HEADER_LEN`] if a snapshot rides along,
/// mirroring the real bandwidth cost of CQE).
pub fn encode(packet: &Packet, snapshot: Option<&SnapshotHeader>) -> Vec<u8> {
    let mut out = Vec::with_capacity(packet.wire_len as usize + SP_HEADER_LEN);
    let eth = EthernetHeader {
        dst_mac: DUMMY_MAC_DST,
        src_mac: DUMMY_MAC_SRC,
        ethertype: if snapshot.is_some() { ETHERTYPE_NEWTON_SP } else { ETHERTYPE_IPV4 },
    };
    eth.write(&mut out);
    if let Some(sp) = snapshot {
        out.extend_from_slice(&sp.encode());
    }

    let l4_len = match packet.protocol {
        Protocol::Tcp => TcpHeader::LEN,
        Protocol::Udp => UdpHeader::LEN,
        _ => 0,
    };
    let ip_payload = (packet.wire_len as usize)
        .saturating_sub(EthernetHeader::LEN)
        .max(Ipv4Header::LEN + l4_len);
    let ip = Ipv4Header {
        total_len: ip_payload as u16,
        identification: (packet.ts_ns & 0xFFFF) as u16,
        ttl: packet.ttl,
        protocol: packet.protocol.number(),
        src: packet.src_ip,
        dst: packet.dst_ip,
    };
    ip.write(&mut out);

    match packet.protocol {
        Protocol::Tcp => {
            TcpHeader {
                src_port: packet.src_port,
                dst_port: packet.dst_port,
                seq: 0,
                ack: 0,
                flags: packet.tcp_flags.bits(),
                window: 0xFFFF,
            }
            .write(&mut out);
        }
        Protocol::Udp => {
            UdpHeader {
                src_port: packet.src_port,
                dst_port: packet.dst_port,
                length: (ip_payload - Ipv4Header::LEN) as u16,
            }
            .write(&mut out);
        }
        _ => {}
    }

    let body = ip_payload - Ipv4Header::LEN - l4_len;
    out.resize(out.len() + body, 0);
    out
}

/// Decode wire bytes back to a [`Frame`].
///
/// The timestamp cannot be recovered from the wire (it is trace metadata);
/// it is set to 0.
pub fn decode(buf: &[u8]) -> Result<Frame, FrameError> {
    let eth = EthernetHeader::parse(buf)?;
    let mut off = EthernetHeader::LEN;

    let snapshot = match eth.ethertype {
        ETHERTYPE_IPV4 => None,
        ETHERTYPE_NEWTON_SP => {
            let sp = SnapshotHeader::decode(&buf[off..])?;
            off += SP_HEADER_LEN;
            Some(sp)
        }
        other => return Err(FrameError::UnsupportedEthertype(other)),
    };

    let ip = Ipv4Header::parse(&buf[off..])?;
    off += Ipv4Header::LEN;

    let protocol = Protocol::from_number(ip.protocol);
    let (src_port, dst_port, flags) = match protocol {
        Protocol::Tcp => {
            let t = TcpHeader::parse(&buf[off..])?;
            (t.src_port, t.dst_port, TcpFlags::from_bits(t.flags))
        }
        Protocol::Udp => {
            let u = UdpHeader::parse(&buf[off..])?;
            (u.src_port, u.dst_port, TcpFlags::NONE)
        }
        _ => (0, 0, TcpFlags::NONE),
    };

    Ok(Frame {
        packet: Packet {
            src_ip: ip.src,
            dst_ip: ip.dst,
            src_port,
            dst_port,
            protocol,
            tcp_flags: flags,
            wire_len: (EthernetHeader::LEN as u16) + ip.total_len,
            ttl: ip.ttl,
            ts_ns: 0,
        },
        snapshot,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketBuilder;

    #[test]
    fn tcp_frame_roundtrip() {
        let pkt = PacketBuilder::new()
            .tcp_flags(TcpFlags::SYN)
            .src_port(5555)
            .dst_port(80)
            .wire_len(120)
            .build();
        let bytes = encode(&pkt, None);
        assert_eq!(bytes.len(), 120);
        let frame = decode(&bytes).unwrap();
        assert_eq!(frame.snapshot, None);
        assert_eq!(frame.packet.src_port, 5555);
        assert_eq!(frame.packet.tcp_flags, TcpFlags::SYN);
        assert_eq!(frame.packet.wire_len, 120);
    }

    #[test]
    fn udp_frame_roundtrip() {
        let pkt = PacketBuilder::new().protocol(Protocol::Udp).dst_port(53).wire_len(90).build();
        let frame = decode(&encode(&pkt, None)).unwrap();
        assert_eq!(frame.packet.protocol, Protocol::Udp);
        assert_eq!(frame.packet.dst_port, 53);
    }

    #[test]
    fn snapshot_rides_between_ethernet_and_ip() {
        let pkt = PacketBuilder::new().wire_len(100).build();
        let sp = SnapshotHeader {
            cursor: 1,
            active_mask: 0b11,
            hash_result: 77,
            state_result: 9,
            global_result: 3,
        };
        let bytes = encode(&pkt, Some(&sp));
        // The SP header costs exactly 12 extra wire bytes.
        assert_eq!(bytes.len(), 100 + SP_HEADER_LEN);
        let frame = decode(&bytes).unwrap();
        assert_eq!(frame.snapshot, Some(sp));
        assert_eq!(frame.packet.src_ip, pkt.src_ip);
    }

    #[test]
    fn stripping_snapshot_restores_original_length() {
        let pkt = PacketBuilder::new().wire_len(1500).build();
        let with_sp = encode(&pkt, Some(&SnapshotHeader::default()));
        let frame = decode(&with_sp).unwrap();
        let stripped = encode(&frame.packet, None);
        assert_eq!(stripped.len(), 1500);
    }

    #[test]
    fn unknown_ethertype_rejected() {
        let pkt = PacketBuilder::new().build();
        let mut bytes = encode(&pkt, None);
        bytes[12] = 0x86;
        bytes[13] = 0xDD; // IPv6
        assert!(matches!(decode(&bytes), Err(FrameError::UnsupportedEthertype(0x86DD))));
    }

    #[test]
    fn minimum_frames_never_underflow() {
        // wire_len smaller than headers: encoder clamps, decoder still parses.
        let pkt = PacketBuilder::new().wire_len(10).build();
        let bytes = encode(&pkt, None);
        let frame = decode(&bytes).unwrap();
        assert_eq!(frame.packet.src_ip, pkt.src_ip);
    }
}
