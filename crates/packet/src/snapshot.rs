//! The result snapshot (SP) header for cross-switch query execution (§5.1).
//!
//! CQE slices one query's module pipeline across consecutive switches. Only
//! *stateful* intermediate results need to travel with the packet — the
//! operation keys are recomputed at each hop from the packet headers by 𝕂,
//! which is stateless. So the snapshot carries:
//!
//! * which slice of the query the next switch should execute (`cursor`),
//! * which query branches are still active (`active_mask` — a branch
//!   stopped by ℝ at an earlier hop must stay stopped downstream),
//! * the active metadata set's hash result and state result,
//! * the global result (the cross-set accumulator maintained by ℝ, §4.2).
//!
//! The paper reserves **12 bytes** for the SP header and reports < 1 %
//! bandwidth overhead at 1500-byte packets; this encoding is exactly 12
//! bytes. On the wire the header sits between Ethernet and IPv4, announced
//! by a dedicated EtherType (no magic byte needed inside the header).
//! `newton_fin` writes the snapshot on egress; the next switch's parser
//! restores it; the last Newton hop strips it before delivery (handled by
//! `newton-net`).

/// Wire length of the snapshot header in bytes.
pub const SP_HEADER_LEN: usize = 12;

/// The decoded result snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SnapshotHeader {
    /// Index of the next query slice to execute (0-based). A switch holding
    /// slice `c` executes it only when `cursor == c`, then increments.
    pub cursor: u8,
    /// Bit `b` set ⇔ query branch `b` is still active (up to 8 branches).
    pub active_mask: u8,
    /// Hash result of the active metadata set (register index, ≤ 16 bits —
    /// the paper's register arrays hold at most 4096 entries, Fig. 14).
    pub hash_result: u16,
    /// State result of the active metadata set (register/SALU output).
    pub state_result: u32,
    /// The global result accumulated across metadata sets by ℝ.
    pub global_result: u32,
}

/// Errors decoding a snapshot header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotError {
    /// Fewer than [`SP_HEADER_LEN`] bytes available.
    Truncated(usize),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Truncated(got) => {
                write!(f, "snapshot header truncated: got {got} of {SP_HEADER_LEN} bytes")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

impl SnapshotHeader {
    /// Encode to the 12-byte wire format.
    ///
    /// Layout (big-endian):
    /// `cursor(1) | active_mask(1) | hash_result(2) | state_result(4) | global_result(4)`.
    pub fn encode(&self) -> [u8; SP_HEADER_LEN] {
        let mut b = [0u8; SP_HEADER_LEN];
        b[0] = self.cursor;
        b[1] = self.active_mask;
        b[2..4].copy_from_slice(&self.hash_result.to_be_bytes());
        b[4..8].copy_from_slice(&self.state_result.to_be_bytes());
        b[8..12].copy_from_slice(&self.global_result.to_be_bytes());
        b
    }

    /// Decode from wire bytes.
    pub fn decode(buf: &[u8]) -> Result<Self, SnapshotError> {
        if buf.len() < SP_HEADER_LEN {
            return Err(SnapshotError::Truncated(buf.len()));
        }
        Ok(SnapshotHeader {
            cursor: buf[0],
            active_mask: buf[1],
            hash_result: u16::from_be_bytes([buf[2], buf[3]]),
            state_result: u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
            global_result: u32::from_be_bytes([buf[8], buf[9], buf[10], buf[11]]),
        })
    }

    /// Bandwidth overhead of carrying this header on packets of `mtu` bytes,
    /// as a fraction (the paper: < 1 % at 1500 B).
    pub fn overhead_fraction(mtu: u16) -> f64 {
        SP_HEADER_LEN as f64 / mtu as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_is_exactly_12_bytes() {
        assert_eq!(SnapshotHeader::default().encode().len(), SP_HEADER_LEN);
        assert_eq!(SP_HEADER_LEN, 12);
    }

    #[test]
    fn roundtrip() {
        let sp = SnapshotHeader {
            cursor: 3,
            active_mask: 0b101,
            hash_result: 0xBEEF,
            state_result: 0xDEAD_BEEF,
            global_result: 42,
        };
        assert_eq!(SnapshotHeader::decode(&sp.encode()).unwrap(), sp);
    }

    #[test]
    fn decode_rejects_truncation() {
        let b = SnapshotHeader::default().encode();
        assert_eq!(SnapshotHeader::decode(&b[..7]), Err(SnapshotError::Truncated(7)));
    }

    #[test]
    fn overhead_below_one_percent_at_mtu() {
        assert!(SnapshotHeader::overhead_fraction(1500) < 0.01);
    }
}
