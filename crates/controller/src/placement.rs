//! Algorithm 2: resilient module-rule placement.
//!
//! Computing the forwarding path of every monitored flow is intractable
//! and paths mutate under failures, so Newton "places queries in switches
//! along all the possible paths without considering forwarding rules"
//! (§5.2). The composed query is sliced into `M = ⌈|C| / N⌉` parts for
//! `N`-stage switches; a depth-first search from each edge switch assigns
//! slice `d` to every switch reachable at depth `d`, multiplexing so a
//! switch stores each slice at most once. The result is correct under any
//! rerouting event, at a bounded redundancy cost (Fig. 17).

use newton_dataplane::RuleSet;
use newton_net::topology::{NodeId, Topology};
use std::collections::BTreeSet;

/// The outcome of placing one query network-wide.
#[derive(Debug, Clone)]
pub struct Placement {
    /// Slice indices assigned to each switch (`slices[s]` = which of the
    /// `M` query parts switch `s` must hold).
    pub slices: Vec<BTreeSet<usize>>,
    /// Number of slices the query was cut into.
    pub slice_count: usize,
    /// Table-rule count of each slice (what one switch holding that slice
    /// stores).
    pub slice_rules: Vec<usize>,
}

impl Placement {
    /// Total table entries installed network-wide (the Fig. 17 metric).
    pub fn total_entries(&self) -> usize {
        self.slices.iter().map(|set| set.iter().map(|&c| self.slice_rules[c]).sum::<usize>()).sum()
    }

    /// Average entries per switch that holds at least one slice.
    pub fn avg_entries_per_switch(&self) -> f64 {
        let holders = self.slices.iter().filter(|s| !s.is_empty()).count();
        if holders == 0 {
            0.0
        } else {
            self.total_entries() as f64 / holders as f64
        }
    }

    /// Switches holding at least one slice.
    pub fn covered_switches(&self) -> usize {
        self.slices.iter().filter(|s| !s.is_empty()).count()
    }
}

/// Maximum DFS depth reachable from any edge switch — the longest chain of
/// distinct switches a query can span. Slices beyond this depth can never
/// execute on the data plane and must defer to the analyzer (§5.2: "what
/// if the query requires more switches than the hop count").
pub fn reachable_depth(topo: &Topology, edge_switches: &[NodeId]) -> usize {
    // The DFS of Algorithm 2 explores simple paths; the depth bound we
    // need is the longest shortest-path distance from any edge (BFS), as
    // packets follow shortest paths.
    let mut best = 0usize;
    for &e in edge_switches {
        let mut dist = vec![usize::MAX; topo.len()];
        dist[e] = 0;
        let mut q = std::collections::VecDeque::from([e]);
        while let Some(s) = q.pop_front() {
            for n in topo.neighbors(s) {
                if dist[n] == usize::MAX {
                    dist[n] = dist[s] + 1;
                    q.push_back(n);
                }
            }
        }
        best = best.max(dist.iter().filter(|&&d| d != usize::MAX).copied().max().unwrap_or(0));
    }
    best + 1 // depth counts switches, not hops
}

/// Algorithm 2 over pre-sliced parts: `slice_rules[c]` is the table-rule
/// count of part `c`. A depth-first search from each edge switch assigns
/// part `d` to every switch reachable at depth `d`.
pub fn place_parts(
    slice_rules: Vec<usize>,
    topo: &Topology,
    edge_switches: &[NodeId],
) -> Placement {
    let slice_count = slice_rules.len().max(1);
    let mut slices: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); topo.len()];
    let mut discovered = vec![false; topo.len()];
    for &edge in edge_switches {
        topo_dfs(topo, edge, 0, slice_count, &mut slices, &mut discovered);
    }
    Placement { slices, slice_count, slice_rules }
}

/// Amortized Algorithm 2: one DFS per topology instead of one per query.
///
/// The depth assignments of the placement DFS are a pure function of
/// `(topology, edge switches, depth bound)` — independent of any one
/// query's slice sizes. A template explored to `max_depth` therefore
/// serves every query with `slice_count ≤ max_depth`: trimming each
/// switch's depth set to `< slice_count` reproduces exactly what the
/// per-query DFS would have computed, because the bound in `topo_dfs`
/// only prunes *deeper* recursion — switch `s` is assigned depth `d` iff
/// some simple path of length `d` from an edge switch reaches `s`, a
/// property independent of the bound whenever `d` lies below it.
#[derive(Debug, Clone)]
pub struct PlacementTemplate {
    depths: Vec<BTreeSet<usize>>,
    max_depth: usize,
}

impl PlacementTemplate {
    /// Run the DFS once, recording every depth `< max_depth` per switch.
    pub fn build(topo: &Topology, edge_switches: &[NodeId], max_depth: usize) -> Self {
        let max_depth = max_depth.max(1);
        let mut depths: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); topo.len()];
        let mut discovered = vec![false; topo.len()];
        for &edge in edge_switches {
            topo_dfs(topo, edge, 0, max_depth, &mut depths, &mut discovered);
        }
        PlacementTemplate { depths, max_depth }
    }

    /// Depth bound the template was explored to.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Instantiate the template for one query's slice sizes — equivalent
    /// to [`place_parts`] on the same topology.
    ///
    /// # Panics
    /// Panics when the query needs more slices than the template explored
    /// (callers rebuild with a larger `max_depth` instead).
    pub fn place(&self, slice_rules: Vec<usize>) -> Placement {
        let slice_count = slice_rules.len().max(1);
        assert!(
            slice_count <= self.max_depth,
            "template explored to depth {} but query needs {} slices",
            self.max_depth,
            slice_count
        );
        let slices =
            self.depths.iter().map(|set| set.range(..slice_count).copied().collect()).collect();
        Placement { slices, slice_count, slice_rules }
    }
}

/// Stable fingerprint of a topology's structure (adjacency + edge-switch
/// set), used to key cached [`PlacementTemplate`]s. O(E); collisions only
/// cost a wrong template for a *different* topology, so the 64-bit space
/// is ample for the handful of live topologies a controller ever sees.
pub fn topology_fingerprint(topo: &Topology) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    topo.len().hash(&mut h);
    for s in 0..topo.len() {
        0xFFFF_FFFFusize.hash(&mut h); // switch delimiter
        for n in topo.neighbors(s) {
            n.hash(&mut h);
        }
    }
    topo.edge_switches().hash(&mut h);
    h.finish()
}

/// Algorithm 2: place a composed query (as its [`RuleSet`]) over `topo`,
/// starting the DFS from `edge_switches` (the monitored traffic's first
/// hops), with `stages_per_switch` module stages available per switch.
/// (Stage-range slicing variant used for accounting experiments — the
/// controller slices with the snapshot-aware `compile_sliced` instead.)
pub fn place_query(
    rules: &RuleSet,
    topo: &Topology,
    edge_switches: &[NodeId],
    stages_per_switch: usize,
) -> Placement {
    assert!(stages_per_switch >= 1, "switches need at least one stage");
    let total_stages = rules.max_stage().map_or(0, |s| s + 1);
    let slice_count = total_stages.div_ceil(stages_per_switch).max(1);
    let slice_rules: Vec<usize> = (0..slice_count)
        .map(|c| {
            let (lo, hi) = (c * stages_per_switch, ((c + 1) * stages_per_switch).min(total_stages));
            rules.slice_stages(lo, hi).total_rule_count()
        })
        .collect();
    place_parts(slice_rules, topo, edge_switches)
}

/// The recursive DFS of Algorithm 2: assign slice `d` to `s`, then explore
/// undiscovered neighbors at depth `d + 1` while slices remain.
fn topo_dfs(
    topo: &Topology,
    s: NodeId,
    d: usize,
    slice_count: usize,
    slices: &mut [BTreeSet<usize>],
    discovered: &mut [bool],
) {
    if d >= slice_count {
        return;
    }
    slices[s].insert(d);
    discovered[s] = true;
    let neighbors: Vec<NodeId> = topo.neighbors(s).collect();
    for n in neighbors {
        if !discovered[n] {
            topo_dfs(topo, n, d + 1, slice_count, slices, discovered);
        }
    }
    discovered[s] = false;
}

#[cfg(test)]
mod tests {
    use super::*;
    use newton_compiler::{compile, CompilerConfig};
    use newton_net::Router;
    use newton_packet::FlowKey;
    use newton_query::catalog;

    fn q4_rules() -> RuleSet {
        compile(&catalog::q4_port_scan(), 1, &CompilerConfig::default()).rules
    }

    #[test]
    fn whole_query_lands_on_every_edge_and_stays_single_slice() {
        let rules = q4_rules();
        let total = rules.max_stage().unwrap() + 1;
        let topo = Topology::fat_tree(4);
        let p = place_query(&rules, &topo, topo.edge_switches(), total);
        assert_eq!(p.slice_count, 1);
        for &e in topo.edge_switches() {
            assert!(p.slices[e].contains(&0), "edge {e} must hold the query");
        }
    }

    #[test]
    fn slicing_matches_paper_example() {
        // "a query with 10 stages needs 4 3-stage switches to complete".
        let rules = q4_rules();
        let total = rules.max_stage().unwrap() + 1;
        let topo = Topology::fat_tree(4);
        let p = place_query(&rules, &topo, topo.edge_switches(), 3);
        assert_eq!(p.slice_count, total.div_ceil(3));
        // Slice rule counts partition the whole rule set.
        let sum: usize = p.slice_rules.iter().sum();
        assert_eq!(sum, rules.total_rule_count());
    }

    #[test]
    fn placement_covers_every_live_path_prefix() {
        // Resilience: for ANY shortest path from an edge switch, the d-th
        // hop must hold slice d (until slices run out) — even after a
        // failure changes the path.
        let rules = q4_rules();
        let topo = Topology::fat_tree(4);
        let edges = topo.edge_switches().to_vec();
        let p = place_query(&rules, &topo, &edges, 5);
        let mut router = Router::new(topo.clone());
        // Break one core-agg link and reroute.
        router.fail_link(4, 0);
        for (i, &src) in edges.iter().enumerate() {
            for &dst in &edges[i + 1..] {
                for sport in [1u16, 7, 42] {
                    let flow = FlowKey {
                        src_ip: 9,
                        dst_ip: 5,
                        src_port: sport,
                        dst_port: 80,
                        protocol: 6,
                    };
                    let path = router.path(src, dst, &flow).expect("connected");
                    for (d, &hop) in path.iter().enumerate().take(p.slice_count) {
                        assert!(
                            p.slices[hop].contains(&d),
                            "hop {hop} at depth {d} missing slice (path {path:?})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn rule_multiplexing_bounds_redundancy() {
        // A switch appearing at depth d on many flows' paths stores slice
        // d once, so average entries per switch is bounded by the whole
        // query's rule count.
        let rules = q4_rules();
        let topo = Topology::fat_tree(8);
        let p = place_query(&rules, &topo, topo.edge_switches(), 5);
        assert!(p.avg_entries_per_switch() <= rules.total_rule_count() as f64);
        assert!(p.total_entries() > 0);
    }

    #[test]
    fn larger_topologies_stabilize_average_entries() {
        // Fig. 17(b): total entries grow with scale, average per switch
        // approaches a constant.
        let rules = q4_rules();
        let mut prev_total = 0;
        let mut avgs = Vec::new();
        for k in [4usize, 8, 12] {
            let topo = Topology::fat_tree(k);
            let p = place_query(&rules, &topo, topo.edge_switches(), 5);
            assert!(p.total_entries() > prev_total, "total entries must grow with scale");
            prev_total = p.total_entries();
            avgs.push(p.avg_entries_per_switch());
        }
        let spread = (avgs[2] - avgs[1]).abs() / avgs[1];
        assert!(spread < 0.35, "average should stabilize, got {avgs:?}");
    }

    #[test]
    fn template_trim_equals_fresh_placement() {
        // The amortized path must be *exactly* Algorithm 2: for every
        // slice count below the template depth, trimming reproduces the
        // per-query DFS bit for bit.
        for topo in [Topology::fat_tree(4), Topology::chain(5), Topology::abilene()] {
            let edges = topo.edge_switches().to_vec();
            let template = PlacementTemplate::build(&topo, &edges, 5);
            for count in 1..=5usize {
                let slice_rules: Vec<usize> = (0..count).map(|c| 10 + c).collect();
                let fresh = place_parts(slice_rules.clone(), &topo, &edges);
                let amortized = template.place(slice_rules);
                assert_eq!(
                    fresh.slices,
                    amortized.slices,
                    "{}: template trim diverged at {count} slices",
                    topo.name()
                );
                assert_eq!(fresh.slice_count, amortized.slice_count);
                assert_eq!(fresh.slice_rules, amortized.slice_rules);
            }
        }
    }

    #[test]
    fn fingerprint_tracks_structure_not_identity() {
        let a = Topology::fat_tree(4);
        let b = Topology::fat_tree(4);
        assert_eq!(topology_fingerprint(&a), topology_fingerprint(&b));

        let mut c = Topology::fat_tree(4);
        c.add_link(0, 19);
        assert_ne!(topology_fingerprint(&a), topology_fingerprint(&c), "extra link must show");

        let mut d = Topology::fat_tree(4);
        d.mark_edge(4);
        assert_ne!(topology_fingerprint(&a), topology_fingerprint(&d), "edge set must show");
    }

    #[test]
    fn chain_placement_is_prefix_ordered() {
        let rules = q4_rules();
        let topo = Topology::chain(5);
        let p = place_query(&rules, &topo, &[0], 3);
        // On a chain from one edge, switch i holds exactly slice i.
        for (i, s) in p.slices.iter().enumerate().take(p.slice_count) {
            assert_eq!(s.iter().copied().collect::<Vec<_>>(), vec![i]);
        }
        for s in p.slices.iter().skip(p.slice_count) {
            assert!(s.is_empty());
        }
    }
}
