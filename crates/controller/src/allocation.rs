//! Register allocation across concurrent queries.
//!
//! The paper leaves "scheduling concurrent queries to optimally utilize
//! data plane resources" as an open question (§7). This module provides
//! the mechanism the rest of the system already supports (ℍ's range +
//! offset slice the physical arrays) plus two policies:
//!
//! * [`AllocationPolicy::Even`] — every query gets an equal slice (what
//!   the incremental controller does by default);
//! * [`AllocationPolicy::WeightedByState`] — slices proportional to each
//!   query's *stateful demand* (its count of sketch rows), so
//!   distinct-heavy queries get the memory that actually determines their
//!   accuracy and stateless-ish queries stop wasting registers.

use newton_query::ast::Primitive;
use newton_query::Query;

/// How to divide the physical register arrays among a query set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocationPolicy {
    /// Equal slices.
    Even,
    /// Slices proportional to stateful-primitive weight.
    WeightedByState,
}

/// One query's slice of every physical register array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegisterSlice {
    /// Registers available to the query per array (ℍ's range).
    pub range: u32,
    /// First register of the slice (ℍ's offset).
    pub offset: u32,
}

/// A query's stateful demand: one unit per sketch row it will run
/// (`distinct` and `reduce` each expand to one or more rows; stateless
/// queries still get weight 1 so they can run at all).
pub fn state_weight(query: &Query) -> u32 {
    let stateful: usize = query
        .branches
        .iter()
        .flat_map(|b| &b.primitives)
        .map(|p| match p {
            Primitive::Distinct(_) => 2,
            Primitive::Reduce { .. } => 1,
            _ => 0,
        })
        .sum();
    (stateful as u32).max(1)
}

/// Divide `registers_per_array` among `queries` under `policy`. Slices are
/// contiguous, disjoint, cover at most the whole array, and every query
/// gets at least one register.
pub fn allocate(
    queries: &[Query],
    registers_per_array: u32,
    policy: AllocationPolicy,
) -> Vec<RegisterSlice> {
    assert!(!queries.is_empty(), "allocation needs at least one query");
    assert!(registers_per_array as usize >= queries.len(), "fewer registers than queries");
    let weights: Vec<u32> = match policy {
        AllocationPolicy::Even => vec![1; queries.len()],
        AllocationPolicy::WeightedByState => queries.iter().map(state_weight).collect(),
    };
    let total: u64 = weights.iter().map(|&w| w as u64).sum();
    let mut out = Vec::with_capacity(queries.len());
    let mut offset = 0u32;
    for (i, &w) in weights.iter().enumerate() {
        let remaining_queries = (queries.len() - i) as u32;
        let remaining_regs = registers_per_array - offset;
        let mut range = ((registers_per_array as u64 * w as u64) / total) as u32;
        // Every query gets ≥1 register, and later queries must still fit.
        range = range.max(1).min(remaining_regs.saturating_sub(remaining_queries - 1));
        out.push(RegisterSlice { range, offset });
        offset += range;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use newton_query::catalog;

    #[test]
    fn even_split_covers_disjoint_slices() {
        let qs = catalog::all_queries();
        let slices = allocate(&qs, 4096, AllocationPolicy::Even);
        assert_eq!(slices.len(), 9);
        let mut end = 0;
        for s in &slices {
            assert_eq!(s.offset, end, "slices must be contiguous");
            assert!(s.range >= 1);
            end = s.offset + s.range;
        }
        assert!(end <= 4096);
    }

    #[test]
    fn weighted_gives_stateful_queries_more() {
        let qs = vec![catalog::q1_new_tcp(), catalog::q4_port_scan()];
        let slices = allocate(&qs, 4096, AllocationPolicy::WeightedByState);
        // Q4 (distinct + reduce) outweighs Q1 (reduce only).
        assert!(slices[1].range > slices[0].range, "Q4 should get more registers: {slices:?}");
        assert!(state_weight(&qs[1]) > state_weight(&qs[0]));
    }

    #[test]
    fn tiny_arrays_still_give_everyone_a_register() {
        let qs = catalog::all_queries();
        let slices = allocate(&qs, 9, AllocationPolicy::WeightedByState);
        for s in &slices {
            assert!(s.range >= 1);
        }
        let end = slices.last().map(|s| s.offset + s.range).unwrap();
        assert!(end <= 9);
    }

    #[test]
    #[should_panic(expected = "fewer registers than queries")]
    fn impossible_allocation_panics() {
        allocate(&catalog::all_queries(), 4, AllocationPolicy::Even);
    }
}
