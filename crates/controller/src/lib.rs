//! The Newton controller: runtime query operations and network-wide
//! placement.
//!
//! * [`timing`] — the rule-channel cost model behind Fig. 11: installing or
//!   removing a query is a batch of table-rule operations, each with a
//!   deterministic per-rule cost plus seeded jitter, calibrated to the
//!   paper's measurements (Q1 install ≈ 5 ms, all queries ≤ 20 ms). No
//!   operation ever touches the forwarding path.
//! * [`placement`] — **Algorithm 2**: resilient module-rule placement.
//!   A query sliced into `M` parts is placed along *every possible path*
//!   by a depth-first search from the monitored traffic's edge switches,
//!   multiplexing rules so redundancy stays bounded (Figs. 9/17).
//! * [`controller`] — the facade: compile → place → install into a live
//!   [`Network`](newton_net::Network), plus remove/update.

pub mod allocation;
pub mod controller;
pub mod placement;
pub mod timing;

pub use allocation::{allocate, AllocationPolicy, RegisterSlice};
pub use controller::{
    ChannelStats, Controller, InstallError, InstallReceipt, InstalledQuery, RepairOutcome,
    RetuneError, UpdateError,
};
pub use placement::{
    place_parts, place_query, reachable_depth, topology_fingerprint, Placement, PlacementTemplate,
};
pub use timing::RuleTimingModel;
