//! Rule-channel timing model (Fig. 11).
//!
//! Hardware substitution (see DESIGN.md): the paper measures query
//! install/removal latency through the Barefoot runtime's rule channel.
//! Without a Tofino, we model that channel as a deterministic cost —
//! a fixed per-batch overhead plus a per-rule cost, with small seeded
//! jitter reproducing run-to-run variance. Constants are calibrated to the
//! paper's measurements: Q1 (a ~10-rule query) installs in ≈ 5 ms and
//! every catalog query stays ≤ 20 ms.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Cost model for table-rule operations.
#[derive(Debug, Clone)]
pub struct RuleTimingModel {
    /// Fixed cost of one batched rule operation (driver round trip), µs.
    pub batch_overhead_us: f64,
    /// Cost per installed rule, µs.
    pub per_install_us: f64,
    /// Cost per removed rule, µs (removal is cheaper: no action params).
    pub per_remove_us: f64,
    /// Relative jitter amplitude (0.1 = ±10 %).
    pub jitter: f64,
    rng: StdRng,
}

impl RuleTimingModel {
    /// The calibrated default model.
    pub fn new(seed: u64) -> Self {
        RuleTimingModel {
            batch_overhead_us: 1_800.0,
            per_install_us: 320.0,
            per_remove_us: 220.0,
            jitter: 0.08,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn jittered(&mut self, base_us: f64) -> f64 {
        let j = self.rng.gen_range(-self.jitter..=self.jitter);
        base_us * (1.0 + j)
    }

    /// Milliseconds to install `rules` table rules in one batch.
    pub fn install_ms(&mut self, rules: usize) -> f64 {
        self.jittered(self.batch_overhead_us + self.per_install_us * rules as f64) / 1_000.0
    }

    /// Milliseconds to remove `rules` table rules in one batch.
    pub fn remove_ms(&mut self, rules: usize) -> f64 {
        self.jittered(self.batch_overhead_us + self.per_remove_us * rules as f64) / 1_000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use newton_compiler::{compile, CompilerConfig};
    use newton_query::catalog;

    #[test]
    fn q1_installs_in_about_five_ms() {
        let rules =
            compile(&catalog::q1_new_tcp(), 1, &CompilerConfig::default()).rules.total_rule_count();
        let mut t = RuleTimingModel::new(1);
        let ms = t.install_ms(rules);
        assert!((3.0..8.0).contains(&ms), "Q1 install {ms:.1} ms (rules = {rules})");
    }

    #[test]
    fn all_queries_operate_within_twenty_ms() {
        let cfg = CompilerConfig::default();
        let mut t = RuleTimingModel::new(2);
        for q in catalog::all_queries() {
            let rules = compile(&q, 1, &cfg).rules.total_rule_count();
            for _ in 0..100 {
                let i = t.install_ms(rules);
                let r = t.remove_ms(rules);
                assert!(i <= 20.0, "{}: install {i:.1} ms", q.name);
                assert!(r <= 20.0, "{}: removal {r:.1} ms", q.name);
                assert!(r < i, "{}: removal should be cheaper than install", q.name);
            }
        }
    }

    #[test]
    fn jitter_is_bounded_and_seeded() {
        let mut a = RuleTimingModel::new(7);
        let mut b = RuleTimingModel::new(7);
        for _ in 0..50 {
            let (x, y) = (a.install_ms(10), b.install_ms(10));
            assert_eq!(x, y, "same seed, same timing");
            let base = (1_800.0 + 3_200.0) / 1_000.0;
            assert!((x - base).abs() <= base * 0.08 + 1e-9);
        }
    }
}
